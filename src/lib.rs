//! Facade for the dynamic quantum runtime assertion suite — a full
//! reproduction of Zhou & Byrd, *Quantum Circuits for Dynamic Runtime
//! Assertions in Quantum Computation* (ASPLOS 2020).
//!
//! Re-exports every workspace crate under one roof for the examples and
//! integration tests:
//!
//! * [`qassert`] — the paper's contribution: assertion circuits,
//!   instrumentation runtime, filtering, the statistical baseline,
//! * [`qcircuit`] — circuit IR, standard library, QASM, rendering,
//! * [`qsim`] — ideal, trajectory, exact-density, and stabilizer
//!   tableau backends,
//! * [`qnoise`] — channels and the `ibmqx4` calibration,
//! * [`qdevice`] — topologies and the transpiler,
//! * [`qmath`] — complex/matrix/statistics substrate.
//!
//! # Example
//!
//! ```
//! use qassert_suite::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut program = AssertingCircuit::new(qcircuit::library::ghz(3));
//! program.assert_entangled([0, 1, 2], Parity::Even)?;
//! program.measure_data();
//! let session = AssertionSession::new(StatevectorBackend::new()).shot_plan(ShotPlan::Fixed(256));
//! let outcome = session.run(&program)?;
//! assert_eq!(outcome.assertion_error_rate, 0.0);
//! # Ok(())
//! # }
//! ```

pub use qassert;
pub use qcircuit;
pub use qdevice;
pub use qmath;
pub use qnoise;
pub use qsim;

/// The names most programs need, in one import.
pub mod prelude {
    #[cfg(feature = "legacy-api")]
    #[allow(deprecated)]
    pub use qassert::{analyze, run_with_assertions};
    pub use qassert::{
        AssertError, AssertingCircuit, Assertion, AssertionOutcome, AssertionSession,
        AssertionVerdict, EntanglementMode, ErrorReduction, FilterPolicy, Parity, SequentialTest,
        SequentialVerdict, SessionTelemetry, ShotPlan, StatisticalAssertion, StatisticalKind,
        StopReason, SuperpositionBasis, SweepOutcome, SweepPoint,
    };
    pub use qcircuit::{Gate, QuantumCircuit, QubitId};
    pub use qnoise::{Kraus, NoiseModel, ReadoutError};
    pub use qsim::{
        Backend, BackendKind, Counts, DensityMatrixBackend, StabilizerBackend, StateVector,
        StatevectorBackend, TrajectoryBackend,
    };
}
