//! Workspace-level comparison of the two assertion paradigms on shared
//! workloads — the motivating contrast of the paper's introduction.

use qassert_suite::prelude::*;

fn ideal() -> StatevectorBackend {
    StatevectorBackend::new().with_seed(31)
}

/// Both paradigms accept a correct uniform-superposition preparation.
#[test]
fn both_accept_correct_superposition() {
    let prefix = qcircuit::library::uniform_superposition(2);

    // Statistical: batch χ² test on the truncated program.
    let stat =
        StatisticalAssertion::new([0, 1], StatisticalKind::UniformSuperposition, 0.01).unwrap();
    let verdict = stat.check(&ideal(), &prefix, 4000).unwrap();
    assert!(verdict.passed);

    // Dynamic: per-qubit superposition assertions, never firing.
    let mut program = AssertingCircuit::new(prefix);
    program
        .assert_superposition(0, SuperpositionBasis::Plus)
        .unwrap();
    program
        .assert_superposition(1, SuperpositionBasis::Plus)
        .unwrap();
    program.measure_data();
    let outcome = AssertionSession::new(ideal())
        .shots(2000)
        .run(&program)
        .unwrap();
    assert_eq!(outcome.assertion_error_rate, 0.0);
}

/// Both paradigms reject a bugged preparation (T instead of H — a
/// plausible typo leaving the qubit near |0⟩).
#[test]
fn both_reject_bugged_superposition() {
    let mut prefix = QuantumCircuit::new(1, 0);
    prefix.t(0).unwrap(); // bug: should have been h(0)

    let stat = StatisticalAssertion::new([0], StatisticalKind::UniformSuperposition, 0.05).unwrap();
    let verdict = stat.check(&ideal(), &prefix, 4000).unwrap();
    assert!(!verdict.passed, "statistical missed the bug");

    let mut program = AssertingCircuit::new(prefix);
    program
        .assert_superposition(0, SuperpositionBasis::Plus)
        .unwrap();
    program.measure_data();
    let outcome = AssertionSession::new(ideal())
        .shots(4000)
        .run(&program)
        .unwrap();
    let rate = outcome.assertion_error_rate;
    // Theory: a = 1, b = 0 after T on |0⟩ → fires 50% of the time.
    assert!((rate - 0.5).abs() < 0.05, "dynamic rate {rate}");
}

/// The structural difference: dynamic assertions keep the program
/// running and its data usable; statistical assertions consume it.
#[test]
fn only_dynamic_assertions_preserve_downstream_computation() {
    // Program: prepare Bell pair, assert, then CONTINUE computing
    // (apply X to both, swapping 00 and 11 outcomes).
    let mut program = AssertingCircuit::new(qcircuit::library::bell());
    program.assert_entangled([0, 1], Parity::Even).unwrap();
    program.circuit_mut().x(0).unwrap();
    program.circuit_mut().x(1).unwrap();
    program.measure_data();
    let outcome = AssertionSession::new(ideal())
        .shots(1000)
        .run(&program)
        .unwrap();
    // Downstream X's executed on the *still-entangled* state.
    assert_eq!(outcome.assertion_error_rate, 0.0);
    assert_eq!(
        outcome.data_kept.get(0b00) + outcome.data_kept.get(0b11),
        1000
    );

    // The statistical check reports that execution cannot continue.
    let stat = StatisticalAssertion::new([0, 1], StatisticalKind::EntangledGhz, 0.05).unwrap();
    let verdict = stat
        .check(&ideal(), &qcircuit::library::bell(), 500)
        .unwrap();
    assert!(!verdict.program_continues);
}

/// Shots-to-detect: the dynamic assertion detects a deterministic
/// classical bug with a single shot; the statistical test needs a batch.
#[test]
fn dynamic_detects_deterministic_bug_in_one_shot() {
    let mut prefix = QuantumCircuit::new(1, 0);
    prefix.x(0).unwrap(); // bug: qubit should be |0⟩

    let mut program = AssertingCircuit::new(prefix.clone());
    program.assert_classical([0], [false]).unwrap();
    let outcome = AssertionSession::new(ideal())
        .shots(1)
        .filter_policy(FilterPolicy::AllowEmpty)
        .run(&program)
        .unwrap();
    assert_eq!(outcome.assertion_error_rate, 1.0, "one shot suffices");
    assert_eq!(outcome.per_assertion[0].fired, 1);

    let stat = StatisticalAssertion::new(
        [0],
        StatisticalKind::Classical {
            expected: vec![false],
        },
        0.05,
    )
    .unwrap();
    let verdict = stat.check(&ideal(), &prefix, 100).unwrap();
    assert!(!verdict.passed);
    assert_eq!(verdict.shots_used, 100);
}
