//! QASM interop across the stack: instrumented circuits export to
//! OpenQASM 2, re-import, and still simulate and analyze identically.

use qassert_suite::prelude::*;
use qcircuit::qasm;

#[test]
fn instrumented_circuit_round_trips_through_qasm() {
    let mut program = AssertingCircuit::new(qcircuit::library::bell());
    program.assert_entangled([0, 1], Parity::Even).unwrap();
    program.measure_data();

    let src = qasm::to_qasm(program.circuit());
    let parsed = qasm::from_qasm(&src).unwrap();
    assert_eq!(parsed.num_qubits(), program.circuit().num_qubits());
    assert_eq!(parsed.num_clbits(), program.circuit().num_clbits());

    let original = DensityMatrixBackend::ideal()
        .exact_distribution(program.circuit())
        .unwrap();
    let reparsed = DensityMatrixBackend::ideal()
        .exact_distribution(&parsed)
        .unwrap();
    for (key, p) in &original.outcomes {
        assert!((reparsed.probability(*key) - p).abs() < 1e-10);
    }
}

#[test]
fn conditioned_teleportation_round_trips() {
    let circuit = qcircuit::library::teleportation();
    let src = qasm::to_qasm(&circuit);
    assert!(src.contains("if(c1==1)"));
    let parsed = qasm::from_qasm(&src).unwrap();
    assert_eq!(parsed.len(), circuit.len());
    // Conditions preserved?
    let conds: Vec<bool> = parsed
        .instructions()
        .iter()
        .map(|i| i.condition().is_some())
        .collect();
    let expected: Vec<bool> = circuit
        .instructions()
        .iter()
        .map(|i| i.condition().is_some())
        .collect();
    assert_eq!(conds, expected);
}

#[test]
fn transpiled_circuit_exports_valid_qasm() {
    let topo = qdevice::presets::ibmqx4();
    let lowered = qdevice::transpile::transpile(&qcircuit::library::ghz(3), &topo).unwrap();
    let src = qasm::to_qasm(&lowered.circuit);
    let parsed = qasm::from_qasm(&src).unwrap();
    qdevice::verify::check_native(&parsed, &topo).unwrap();
    assert!(qdevice::verify::circuits_equivalent(&lowered.circuit, &parsed, 1e-9).unwrap());
}

#[test]
fn post_select_pragma_survives_round_trip_and_simulation() {
    let mut circuit = QuantumCircuit::new(2, 1);
    circuit.h(0).unwrap();
    circuit.cx(0, 1).unwrap();
    circuit.post_select(1, true).unwrap();
    circuit.measure(0, 0).unwrap();

    let parsed = qasm::from_qasm(&qasm::to_qasm(&circuit)).unwrap();
    let result = StatevectorBackend::new()
        .with_seed(3)
        .run(&parsed, 400)
        .unwrap();
    // Post-selected on the Bell partner being 1 → q0 always 1.
    assert_eq!(result.counts.get(0), 0);
    assert!(result.shots_discarded > 0);
}
