//! Cross-crate property tests.

use proptest::prelude::*;
use qassert_suite::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Correct GHZ(k) programs never fire the entanglement assertion on
    /// the ideal backend, for any width and either instrumentation mode.
    #[test]
    fn correct_ghz_never_fires(k in 2usize..6, strong in any::<bool>()) {
        let mode = if strong {
            EntanglementMode::Strong
        } else {
            EntanglementMode::Paper
        };
        let mut program = AssertingCircuit::new(qcircuit::library::ghz(k)).with_mode(mode);
        program.assert_entangled(0..k, Parity::Even).unwrap();
        let dist = DensityMatrixBackend::ideal()
            .exact_distribution(program.circuit())
            .unwrap();
        prop_assert!((dist.probability(0) - 1.0).abs() < 1e-9);
    }

    /// The classical assertion's firing probability equals sin²(θ/2) for
    /// any Ry(θ) input — the paper's |b|² claim over the whole sweep.
    #[test]
    fn classical_assertion_matches_born_rule(theta in -6.3f64..6.3) {
        let mut base = QuantumCircuit::new(1, 0);
        base.ry(theta, 0).unwrap();
        let mut program = AssertingCircuit::new(base);
        program.assert_classical([0], [false]).unwrap();
        let dist = DensityMatrixBackend::ideal()
            .exact_distribution(program.circuit())
            .unwrap();
        let expected = (theta / 2.0).sin().powi(2);
        prop_assert!((dist.probability(1) - expected).abs() < 1e-9);
    }

    /// Assertion filtering never increases the error rate on the noisy
    /// Bell workload, across noise scales.
    #[test]
    fn filtering_never_hurts_on_bell(scale in 0.1f64..3.0) {
        let mut program = AssertingCircuit::new(qcircuit::library::bell());
        program.assert_entangled([0, 1], Parity::Even).unwrap();
        program.measure_data();
        let noise = qnoise::presets::ibmqx4_scaled(scale);
        let raw = DensityMatrixBackend::new(noise)
            .run(program.circuit(), 4096)
            .unwrap();
        let red = ErrorReduction::compute(
            &raw.counts,
            &program.assertion_clbits(),
            |k| ((k >> 1) & 1) == ((k >> 2) & 1),
        );
        prop_assert!(red.filtered <= red.raw + 1e-9);
    }

    /// Transpiling any GHZ preparation to any of the preset topologies
    /// preserves its unitary (modulo layout).
    #[test]
    fn transpile_preserves_ghz_semantics(k in 2usize..5, topo_idx in 0usize..3) {
        let topo = match topo_idx {
            0 => qdevice::presets::ibmqx4(),
            1 => qdevice::presets::linear(5),
            _ => qdevice::presets::ring(5),
        };
        let ghz = qcircuit::library::ghz(k);
        let result = qdevice::transpile::transpile(&ghz, &topo).unwrap();
        qdevice::verify::check_native(&result.circuit, &topo).unwrap();
        prop_assert!(qdevice::verify::routed_equivalent(
            &ghz,
            &result.circuit,
            &result.final_layout,
            1e-7
        )
        .unwrap());
    }

    /// Superposition assertions on Ry(θ) inputs match the paper's
    /// (2 − 4ab)/4 formula end-to-end through the instrumented API.
    #[test]
    fn superposition_assertion_matches_formula(theta in -6.3f64..6.3) {
        let mut base = QuantumCircuit::new(1, 0);
        base.ry(theta, 0).unwrap();
        let mut program = AssertingCircuit::new(base);
        program.assert_superposition(0, SuperpositionBasis::Plus).unwrap();
        let dist = DensityMatrixBackend::ideal()
            .exact_distribution(program.circuit())
            .unwrap();
        let (a, b) = ((theta / 2.0).cos(), (theta / 2.0).sin());
        let (_, p_err) = qassert::theory::superposition_outcome_probabilities(a, b);
        prop_assert!((dist.probability(1) - p_err).abs() < 1e-9);
    }

    /// Counts filtered on assertion bits partition the total.
    #[test]
    fn assertion_filter_partitions_shots(seed in 0u64..500) {
        let mut program = AssertingCircuit::new(qcircuit::library::bell());
        program.assert_entangled([0, 1], Parity::Even).unwrap();
        program.measure_data();
        let noise = qnoise::presets::uniform(3, 0.01, 0.05, 0.02).unwrap();
        let raw = TrajectoryBackend::new(noise)
            .with_seed(seed)
            .run(program.circuit(), 512)
            .unwrap();
        let kept = qassert::filter_assertion_bits(&raw.counts, &program.assertion_clbits());
        let rate = qassert::assertion_error_rate(&raw.counts, &program.assertion_clbits());
        let flagged = raw.counts.total() - kept.total();
        prop_assert_eq!(flagged, (rate * 512.0).round() as u64);
    }
}
