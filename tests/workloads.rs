//! Standard workloads behave correctly on the simulators, bare and
//! instrumented.

use qassert_suite::prelude::*;
use qcircuit::library::{self, DjOracle};

fn ideal() -> StatevectorBackend {
    StatevectorBackend::new().with_seed(2024)
}

#[test]
fn bernstein_vazirani_recovers_secret_in_one_query() {
    let secret = [true, false, true, true, false];
    let circuit = library::bernstein_vazirani(&secret);
    let result = ideal().run(&circuit, 256).unwrap();
    let mut expected = 0u64;
    for (i, b) in secret.iter().enumerate() {
        if *b {
            expected |= 1 << i;
        }
    }
    assert_eq!(result.counts.get(expected), 256);
}

#[test]
fn deutsch_jozsa_separates_constant_from_balanced() {
    for (oracle, constant) in [
        (DjOracle::ConstantZero, true),
        (DjOracle::ConstantOne, true),
        (DjOracle::BalancedOnFirstBit, false),
        (DjOracle::BalancedParity, false),
    ] {
        let circuit = library::deutsch_jozsa(3, oracle);
        let result = ideal().run(&circuit, 128).unwrap();
        let all_zero = result.counts.get(0);
        if constant {
            assert_eq!(all_zero, 128, "{oracle:?} must measure all zeros");
        } else {
            assert_eq!(all_zero, 0, "{oracle:?} must never measure all zeros");
        }
    }
}

#[test]
fn grover_amplifies_every_marked_state() {
    for marked in 0..4usize {
        let circuit = library::grover(2, marked, 1);
        let result = ideal().run(&circuit, 256).unwrap();
        // One iteration is exact for n = 2.
        assert_eq!(
            result.counts.get(marked as u64),
            256,
            "marked {marked} not amplified"
        );
    }
}

#[test]
fn grover3_beats_uniform_guessing() {
    let circuit = library::grover(3, 0b110, 2);
    let result = ideal().run(&circuit, 2048).unwrap();
    let p = result.counts.probability(0b110);
    assert!(p > 0.85, "grover3 success {p}");
}

#[test]
fn superdense_coding_transmits_both_bits() {
    for (b1, b0) in [(false, false), (false, true), (true, false), (true, true)] {
        let circuit = library::superdense_coding(b1, b0);
        let result = ideal().run(&circuit, 64).unwrap();
        let expected = (u64::from(b1) << 1) | u64::from(b0);
        assert_eq!(
            result.counts.get(expected),
            64,
            "({b1}, {b0}) decoded wrong"
        );
    }
}

#[test]
fn qft_of_basis_state_gives_uniform_magnitudes() {
    let mut circuit = QuantumCircuit::new(3, 0);
    circuit.x(0).unwrap();
    let qft = library::qft(3);
    circuit
        .compose(&qft, &[0.into(), 1.into(), 2.into()], &[])
        .unwrap();
    let state = StatevectorBackend::new().statevector(&circuit).unwrap();
    for p in state.probabilities() {
        assert!((p - 0.125).abs() < 1e-10, "QFT magnitude {p}");
    }
}

#[test]
fn qft_iqft_is_identity() {
    let mut circuit = library::qft(3);
    let inverse = library::iqft(3);
    circuit
        .compose(&inverse, &[0.into(), 1.into(), 2.into()], &[])
        .unwrap();
    let u = qdevice::verify::circuit_unitary(&circuit).unwrap();
    assert!(u.approx_eq(&qmath::CMatrix::identity(8), 1e-9));
}

#[test]
fn w_state_amplitudes_are_uniform_single_excitations() {
    for n in 1..=5usize {
        let circuit = library::w_state(n);
        let state = StatevectorBackend::new().statevector(&circuit).unwrap();
        let expected = (1.0 / n as f64).sqrt();
        for (idx, amp) in state.amplitudes().iter().enumerate() {
            if idx.count_ones() == 1 {
                assert!(
                    (amp.norm() - expected).abs() < 1e-10,
                    "W({n}) index {idx}: |amp| = {}",
                    amp.norm()
                );
            } else {
                assert!(amp.norm() < 1e-10, "W({n}) index {idx} should be empty");
            }
        }
    }
}

#[test]
fn w2_passes_the_odd_parity_entanglement_assertion() {
    // W(2) = (|01⟩ + |10⟩)/√2 is exactly the paper's a|01⟩+b|10⟩ class.
    let mut program = AssertingCircuit::new(library::w_state(2));
    program.assert_entangled([0, 1], Parity::Odd).unwrap();
    let dist = DensityMatrixBackend::ideal()
        .exact_distribution(program.circuit())
        .unwrap();
    assert!((dist.probability(0) - 1.0).abs() < 1e-10);
}

#[test]
fn phase_estimation_exact_binary_fractions() {
    // φ = k/8 with 3 counting qubits resolves deterministically to k.
    for k in [1u64, 3, 5, 7] {
        let phi = k as f64 / 8.0;
        let circuit = library::phase_estimation(phi, 3);
        let result = ideal().run(&circuit, 128).unwrap();
        assert_eq!(
            result.counts.get(k),
            128,
            "phi = {phi} gave {:?}",
            result.counts
        );
    }
}

#[test]
fn phase_estimation_rounds_inexact_phases() {
    // φ = 0.3 with 4 counting qubits: the mode is round(0.3·16) = 5.
    let circuit = library::phase_estimation(0.3, 4);
    let result = ideal().run(&circuit, 4096).unwrap();
    assert_eq!(result.counts.most_frequent(), Some(5));
    // Probability concentrated near the best estimate.
    assert!(result.counts.probability(5) > 0.4);
}

#[test]
fn instrumented_bv_assertion_is_silent_and_answer_unchanged() {
    // Assert the BV ancilla (|−⟩ after preparation) mid-circuit.
    let secret = [true, true, false];
    let mut base = QuantumCircuit::new(4, 3);
    base.x(3).unwrap().h(3).unwrap();
    for q in 0..3 {
        base.h(q).unwrap();
    }
    let mut program = AssertingCircuit::new(base);
    program
        .assert_superposition(3, SuperpositionBasis::Minus)
        .unwrap();
    let c = program.circuit_mut();
    for (q, &bit) in secret.iter().enumerate() {
        if bit {
            c.cx(q, 3).unwrap();
        }
    }
    for q in 0..3 {
        c.h(q).unwrap();
    }
    for q in 0..3 {
        c.measure(q, q).unwrap();
    }
    let outcome = AssertionSession::new(ideal())
        .shots(512)
        .run(&program)
        .unwrap();
    assert_eq!(outcome.assertion_error_rate, 0.0);
    // Secret 011 (LSB first: q0=1, q1=1, q2=0) = key 0b011.
    assert_eq!(outcome.raw.counts.marginal(&[0, 1, 2]).get(0b011), 512);
}

#[test]
fn teleportation_of_random_states_has_unit_fidelity() {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    for _ in 0..10 {
        let u = qmath::random::haar_unitary2(&mut rng);
        let circuit = library::teleportation();
        // Run shot-by-shot (random prep applied directly to the state)
        // and compare the final q2 state to u|0⟩.
        let mut reference = StateVector::zero_state(1);
        reference.apply_mat2(&u, 0.into()).unwrap();
        for shot in 0..8u64 {
            let mut shot_rng = rand::rngs::StdRng::seed_from_u64(shot);
            let mut state = StateVector::zero_state(3);
            state.apply_mat2(&u, 0.into()).unwrap();
            let mut clbits = 0u64;
            for instr in circuit.instructions().iter() {
                match instr.kind() {
                    qcircuit::OpKind::Gate(g) => {
                        let fire = instr
                            .condition()
                            .map(|c| ((clbits >> c.clbit.index()) & 1 == 1) == c.value)
                            .unwrap_or(true);
                        if fire {
                            state.apply_gate(g, instr.qubits()).unwrap();
                        }
                    }
                    qcircuit::OpKind::Measure => {
                        let outcome = state.measure(instr.qubits()[0], &mut shot_rng).unwrap();
                        let c = instr.clbits()[0].index();
                        clbits |= u64::from(outcome) << c;
                    }
                    _ => {}
                }
            }
            // Compare the marginal state of q2 with the reference.
            let rho = qsim::DensityMatrix::from_statevector(&state);
            let reduced = rho.trace_out(&[0.into(), 1.into()]).unwrap();
            let f = reduced.fidelity_pure(&reference).unwrap();
            assert!((f - 1.0).abs() < 1e-9, "teleport fidelity {f}");
        }
    }
}
