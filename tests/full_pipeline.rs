//! End-to-end integration: instrument → transpile → noisy execution →
//! assertion filtering, across all three backends.

use qassert_suite::prelude::*;

/// The Table-2 pipeline on the trajectory backend (the experiments use
/// the exact backend; this checks the sampled path agrees).
#[test]
fn bell_assertion_pipeline_trajectory_vs_exact() {
    let mut program = AssertingCircuit::new(qcircuit::library::bell());
    program.assert_entangled([0, 1], Parity::Even).unwrap();
    program.measure_data();

    let topo = qdevice::presets::ibmqx4();
    let lowered = qdevice::transpile::transpile(program.circuit(), &topo).unwrap();
    qdevice::verify::check_native(&lowered.circuit, &topo).unwrap();

    let noise = qnoise::presets::ibmqx4();
    let exact_session =
        AssertionSession::new(DensityMatrixBackend::new(noise.clone())).shots(1 << 15);
    let sampled_session = AssertionSession::new(TrajectoryBackend::new(noise).with_seed(42))
        .threads(4)
        .shots(1 << 15);
    let exact = exact_session.run_circuit(&lowered.circuit).unwrap();
    let sampled = sampled_session.run_circuit(&lowered.circuit).unwrap();
    let tvd = exact.counts.tvd(&sampled.counts);
    assert!(tvd < 0.015, "trajectory vs exact tvd = {tvd}");

    // Filtering helps on both (analysis is backend-independent, so one
    // session's policy serves both results).
    for raw in [exact, sampled] {
        let outcome = exact_session.analyze(raw, &program).unwrap();
        let correct = |k: u64| ((k >> 1) & 1) == ((k >> 2) & 1);
        let red =
            ErrorReduction::compute(&outcome.raw.counts, &program.assertion_clbits(), correct);
        assert!(
            red.filtered < red.raw,
            "filtering failed: {} -> {}",
            red.raw,
            red.filtered
        );
        assert!(red.relative_reduction() > 0.1);
    }
}

/// Assertions survive transpilation: the rewritten circuit fires the
/// assertion exactly like the abstract one on an ideal backend.
#[test]
fn transpilation_preserves_assertion_semantics() {
    // Buggy program: |+⟩⊗|0⟩ asserted as entangled (fires 50%).
    let mut base = QuantumCircuit::new(2, 0);
    base.h(0).unwrap();
    let mut program = AssertingCircuit::new(base);
    program.assert_entangled([0, 1], Parity::Even).unwrap();
    program.measure_data();

    let abstract_dist = DensityMatrixBackend::ideal()
        .exact_distribution(program.circuit())
        .unwrap();

    let topo = qdevice::presets::ibmqx4();
    let lowered = qdevice::transpile::transpile(program.circuit(), &topo).unwrap();
    let lowered_dist = DensityMatrixBackend::ideal()
        .exact_distribution(&lowered.circuit)
        .unwrap();

    // Classical records are untouched by transpilation: distributions
    // must agree exactly.
    for (key, p) in &abstract_dist.outcomes {
        assert!(
            (lowered_dist.probability(*key) - p).abs() < 1e-9,
            "key {key:03b}: {p} vs {}",
            lowered_dist.probability(*key)
        );
    }
}

/// GHZ(3) with the full stack: route (ancilla needs connectivity),
/// assert, run noisy, filter.
#[test]
fn ghz3_assertion_on_device_reduces_error() {
    let mut program = AssertingCircuit::new(qcircuit::library::ghz(3));
    program.assert_entangled([0, 1, 2], Parity::Even).unwrap();
    program.measure_data();
    // 3 data + 1 ancilla = 4 qubits on the 5-qubit device; routing will
    // need SWAPs for the parity CNOTs.
    let topo = qdevice::presets::ibmqx4();
    let lowered = qdevice::transpile::transpile(program.circuit(), &topo).unwrap();
    qdevice::verify::check_native(&lowered.circuit, &topo).unwrap();

    let session =
        AssertionSession::new(DensityMatrixBackend::new(qnoise::presets::ibmqx4())).shots(1 << 14);
    let raw = session.run_circuit(&lowered.circuit).unwrap();
    let outcome = session.analyze(raw, &program).unwrap();
    assert!(outcome.assertion_error_rate > 0.0);

    // Correct GHZ outcomes: all three data bits agree (clbits 1..4).
    let correct = |k: u64| {
        let bits = [(k >> 1) & 1, (k >> 2) & 1, (k >> 3) & 1];
        bits.iter().all(|b| *b == bits[0])
    };
    let red = ErrorReduction::compute(&outcome.raw.counts, &program.assertion_clbits(), correct);
    assert!(
        red.filtered < red.raw,
        "filtering failed on GHZ3: {} -> {}",
        red.raw,
        red.filtered
    );
}

/// The ideal statevector backend and the exact ideal density backend
/// agree on an instrumented program's distribution.
#[test]
fn ideal_backends_agree_on_asserted_program() {
    let mut program = AssertingCircuit::new(qcircuit::library::bell());
    program.assert_entangled([0, 1], Parity::Even).unwrap();
    program.measure_data();

    let sv = AssertionSession::new(StatevectorBackend::new().with_seed(1))
        .shots(1 << 15)
        .run(&program)
        .unwrap();
    let dm = AssertionSession::new(DensityMatrixBackend::ideal())
        .shots(1 << 15)
        .run(&program)
        .unwrap();
    assert!(sv.raw.counts.tvd(&dm.raw.counts) < 0.02);
}

/// Assertions catch *coherent* errors too: a systematic over-rotation
/// after every gate leaks population the classical assertion sees.
#[test]
fn assertions_detect_coherent_overrotation() {
    let mut program = AssertingCircuit::new(QuantumCircuit::new(1, 0));
    // The program intends the qubit to stay |0⟩ through a few idles.
    for _ in 0..8 {
        program.circuit_mut().id(0).unwrap();
    }
    program.assert_classical([0], [false]).unwrap();

    let mut noise = NoiseModel::with_name("coherent");
    noise.with_default_1q(Kraus::coherent_overrotation(qnoise::RotationAxis::X, 0.15).unwrap());
    let dist = DensityMatrixBackend::new(noise)
        .exact_distribution(program.circuit())
        .unwrap();
    // 8 coherent ε-rotations compose to 8ε = 1.2 rad; the ancilla fires
    // with probability sin²(0.6) ≈ 0.319 — quadratic (coherent) growth,
    // far above the ~8·sin²(ε/2) ≈ 0.045 an incoherent model would give.
    let fired = dist.probability(1);
    let coherent_prediction = (8.0 * 0.15f64 / 2.0).sin().powi(2);
    assert!(
        (fired - coherent_prediction).abs() < 1e-9,
        "fired {fired}, predicted {coherent_prediction}"
    );
    assert!(fired > 0.25);
}

/// A staged-assertion sweep through the session API: each point extends
/// the previous program by one stage plus a fresh assertion, so the
/// sweep compiles incrementally (prefix reuse) while every outcome stays
/// identical to isolated runs.
#[test]
fn staged_assertion_sweep_reuses_prefixes_without_changing_outcomes() {
    // Each stage entangles, asserts, and disentangles, ending on a CX so
    // the stage boundary is never inside a single-qubit fusion run.
    let staged = |stages: usize| {
        let mut program = AssertingCircuit::new(QuantumCircuit::new(2, 0));
        for _ in 0..stages {
            program.circuit_mut().h(0).unwrap();
            program.circuit_mut().cx(0, 1).unwrap();
            program.assert_entangled([0, 1], Parity::Even).unwrap();
            program.circuit_mut().cx(0, 1).unwrap();
        }
        program
    };
    let family: Vec<AssertingCircuit> = (1..=4).map(staged).collect();

    let session = AssertionSession::new(StatevectorBackend::new().with_seed(9)).shots(256);
    let sweep = session.run_sweep(family.clone()).unwrap();
    assert_eq!(sweep.len(), 4);
    assert_eq!(
        sweep.telemetry.prefix_hits, 3,
        "each point after the first should extend its predecessor"
    );
    // Correct program: no assertion ever fires, at any depth.
    for point in sweep.outcomes() {
        assert_eq!(point.assertion_error_rate, 0.0);
    }
    // Bit-identical to isolated, prefix-free sessions.
    for (i, program) in family.iter().enumerate() {
        let isolated = AssertionSession::new(StatevectorBackend::new().with_seed(9))
            .shots(256)
            .prefix_reuse(false)
            .run(program)
            .unwrap();
        assert_eq!(isolated.raw.counts, sweep.outcomes()[i].raw.counts);
    }
}

/// Ancilla reuse halves the qubit cost of sequential assertions without
/// changing outcomes.
#[test]
fn ancilla_reuse_preserves_semantics() {
    let build = |reuse: bool| {
        let mut base = QuantumCircuit::new(2, 0);
        base.x(0).unwrap();
        let mut program = AssertingCircuit::new(base).with_ancilla_reuse(reuse);
        program.assert_classical([0], [true]).unwrap();
        program.assert_classical([1], [false]).unwrap();
        program.measure_data();
        program
    };
    let fresh = build(false);
    let reused = build(true);
    assert_eq!(fresh.circuit().num_qubits(), 4);
    assert_eq!(reused.circuit().num_qubits(), 3);

    let d1 = DensityMatrixBackend::ideal()
        .exact_distribution(fresh.circuit())
        .unwrap();
    let d2 = DensityMatrixBackend::ideal()
        .exact_distribution(reused.circuit())
        .unwrap();
    for (key, p) in &d1.outcomes {
        assert!((d2.probability(*key) - p).abs() < 1e-9);
    }
}
