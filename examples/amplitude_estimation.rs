//! Estimating amplitudes from assertion statistics.
//!
//! ```text
//! cargo run --example amplitude_estimation
//! ```
//!
//! The paper notes that "the probability distribution of assertion
//! errors over repeated runs can be used to estimate a and b, if
//! needed". This example prepares `Ry(θ)|0⟩ = a|0⟩ + b|1⟩` for a hidden
//! angle, runs the classical and superposition assertions many times,
//! and recovers the amplitudes — with Wilson confidence intervals — from
//! nothing but the ancilla statistics.

use qassert::estimate;
use qassert_suite::prelude::*;

/// Shots in which the program's single assertion fired — read straight
/// off the session's per-assertion statistics (counted exactly from the
/// histogram).
fn assertion_fire_count(
    session: &AssertionSession<'_, StatevectorBackend>,
    program: &AssertingCircuit,
) -> Result<u64, Box<dyn std::error::Error>> {
    let outcome = session.run(program)?;
    Ok(outcome.per_assertion[0].fired)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let hidden_theta = 1.23f64;
    let (a_true, b_true) = ((hidden_theta / 2.0).cos(), (hidden_theta / 2.0).sin());
    let shots = 50_000u64;
    let session = AssertionSession::new(StatevectorBackend::new().with_seed(2026))
        .shot_plan(ShotPlan::Fixed(shots))
        .filter_policy(FilterPolicy::AllowEmpty);
    println!("hidden state: {a_true:.4}|0⟩ + {b_true:.4}|1⟩   ({shots} shots per assertion)\n");

    // 1. Classical assertion: P(error) = |b|² (Section 3.1).
    let mut prep = QuantumCircuit::new(1, 0);
    prep.ry(hidden_theta, 0)?;
    let mut program = AssertingCircuit::new(prep.clone());
    program.assert_classical([0], [false])?;
    let fired = assertion_fire_count(&session, &program)?;
    let pop = estimate::excited_population(fired, shots, 1.96);
    println!(
        "classical assertion:   |b|² = {:.4} ∈ [{:.4}, {:.4}]   (truth {:.4}, covered: {})",
        pop.value,
        pop.low,
        pop.high,
        b_true * b_true,
        pop.covers(b_true * b_true)
    );

    // 2. Superposition assertion: P(error) = (2 − 4ab)/4 (Section 3.3),
    //    which pins down the cross term ab …
    let mut program = AssertingCircuit::new(prep);
    program.assert_superposition(0, SuperpositionBasis::Plus)?;
    let fired = assertion_fire_count(&session, &program)?;
    let cross = estimate::cross_term(fired, shots, 1.96);
    println!(
        "superposition assertion: ab = {:.4} ∈ [{:.4}, {:.4}]   (truth {:.4}, covered: {})",
        cross.value,
        cross.low,
        cross.high,
        a_true * b_true,
        cross.covers(a_true * b_true)
    );

    // 3. … and with normalization, the real amplitudes themselves
    //    (up to the a ↔ b ambiguity the assertion cannot resolve).
    let (a_est, b_est) =
        estimate::real_amplitudes_from_cross_term(cross.value).expect("physical cross term");
    println!("\nrecovered amplitudes (larger first): a ≈ {a_est:.4}, b ≈ {b_est:.4}");
    println!(
        "true amplitudes (sorted):            a = {:.4}, b = {:.4}",
        a_true.max(b_true),
        a_true.min(b_true)
    );
    let err = (a_est - a_true.max(b_true))
        .abs()
        .max((b_est - a_true.min(b_true)).abs());
    println!("max amplitude error: {err:.4}");
    assert!(err < 0.02, "estimation drifted: {err}");
    Ok(())
}
