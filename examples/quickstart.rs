//! Quickstart: assert a Bell pair's entanglement at runtime.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Builds the Bell-pair circuit, splices in the paper's entanglement
//! assertion (one ancilla, two CNOTs), runs 1024 shots on the ideal
//! backend, and shows that a correct program never trips the assertion.

use qassert_suite::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A correct Bell-pair program.
    let mut program = AssertingCircuit::new(qcircuit::library::bell());

    // 2. Dynamic assertion: the two qubits must be entangled as
    //    a|00⟩ + b|11⟩ at this point (paper Fig. 3). Execution will NOT
    //    stop here — only an ancilla is measured.
    program.assert_entangled([0, 1], Parity::Even)?;

    // 3. The program continues: measure the data qubits.
    program.measure_data();

    println!("{}", qcircuit::display::render(program.circuit()));

    // 4. Run and analyze through a session: it owns the backend, shot
    //    plan, and program cache, so repeated runs are compile-free.
    let session = AssertionSession::new(StatevectorBackend::new().with_seed(7))
        .shot_plan(ShotPlan::Fixed(1024));
    let outcome = session.run(&program)?;
    println!(
        "assertion error rate: {:.4} (correct program — never fires)",
        outcome.assertion_error_rate
    );
    println!("data outcomes (filtered):\n{}", outcome.data_kept);

    // 5. Now the buggy version: the entangling CNOT is missing.
    let mut buggy = QuantumCircuit::new(2, 0);
    buggy.h(0)?;
    let mut program = AssertingCircuit::new(buggy);
    program.assert_entangled([0, 1], Parity::Even)?;
    program.measure_data();
    let outcome = session.run(&program)?;
    println!(
        "buggy program assertion error rate: {:.3} (theory: 0.5)",
        outcome.assertion_error_rate
    );
    Ok(())
}
