//! Grover search instrumented with a superposition assertion.
//!
//! ```text
//! cargo run --example grover_with_assertions
//! ```
//!
//! The paper's common practice target: "it is a common practice to use
//! Hadamard gates to set the input qubits in the equal/uniform
//! superposition state". We build 2-qubit Grover search, assert the
//! uniform superposition right after the initial H layer, and then run
//! the whole thing on the noisy ibmqx4 model to show assertion-based
//! error filtering improving the search success rate.

use qassert_suite::prelude::*;

fn grover_with_check(marked: usize) -> Result<AssertingCircuit, Box<dyn std::error::Error>> {
    // H layer.
    let mut base = QuantumCircuit::new(2, 0);
    base.h(0)?.h(1)?;
    let mut program = AssertingCircuit::new(base);

    // Assert both qubits in |+⟩ — the dynamic check runs mid-program.
    program.assert_superposition(0, SuperpositionBasis::Plus)?;
    program.assert_superposition(1, SuperpositionBasis::Plus)?;

    // One Grover iteration (exact for 1 of 4 marked states): oracle +
    // diffuser.
    let c = program.circuit_mut();
    for q in 0..2 {
        if (marked >> q) & 1 == 0 {
            c.x(q)?;
        }
    }
    c.cz(0, 1)?;
    for q in 0..2 {
        if (marked >> q) & 1 == 0 {
            c.x(q)?;
        }
    }
    c.h(0)?.h(1)?.x(0)?.x(1)?.cz(0, 1)?.x(0)?.x(1)?.h(0)?.h(1)?;

    program.measure_data();
    Ok(program)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let marked = 0b10usize;
    let program = grover_with_check(marked)?;

    // Ideal: the assertion is silent and Grover finds the marked item.
    let ideal_session = AssertionSession::new(StatevectorBackend::new().with_seed(3))
        .shot_plan(ShotPlan::Fixed(2048));
    let ideal = ideal_session.run(&program)?;
    println!(
        "ideal backend: assertion error rate {:.4}, P(found {marked:02b}) = {:.3}",
        ideal.assertion_error_rate,
        ideal.data_kept.probability(marked as u64)
    );

    // Noisy ibmqx4 model: filtering on the assertion bits improves the
    // search success probability. A sweep over all four marked states
    // runs through one session — every compile after the first marked
    // state's reuses cached lowerings where circuits repeat.
    let session = AssertionSession::new(DensityMatrixBackend::new(qnoise::presets::ibmqx4()))
        .shot_plan(ShotPlan::Fixed(8192));
    let sweep = session.run_sweep(
        (0..4)
            .map(grover_with_check)
            .collect::<Result<Vec<_>, _>>()?,
    )?;
    for point in sweep.iter() {
        let (m, outcome) = (point.index(), point.outcome());
        let p_raw = outcome.data_raw.probability(m as u64);
        let p_kept = outcome.data_kept.probability(m as u64);
        println!(
            "ibmqx4, marked {m:02b}: assertion error rate {:.4}, P(found) {p_raw:.3} → {p_kept:.3} \
             filtered (helps: {})",
            outcome.assertion_error_rate,
            p_kept > p_raw
        );
    }
    println!(
        "sweep telemetry: {} runs, {} cache hits / {} misses",
        sweep.telemetry.runs, sweep.telemetry.cache_hits, sweep.telemetry.cache_misses
    );
    Ok(())
}
