//! Debugging quantum teleportation with dynamic assertions.
//!
//! ```text
//! cargo run --example teleportation_debug
//! ```
//!
//! Teleports `|−⟩` from qubit 0 to qubit 2 and asserts, at runtime, that
//! the teleported qubit is in the `|−⟩` superposition. An injected bug —
//! the missing Bell-pair Hadamard, exactly the bug class Huang &
//! Martonosi catalogued — is caught by the same assertion.
//!
//! Note why the input is `|−⟩` and not `|1⟩`: teleporting a *basis*
//! state succeeds even without entanglement (the CNOTs copy classical
//! bits), so only a superposition input exposes the broken Bell pair.

use qassert_suite::prelude::*;

/// Builds a teleportation run with an optional bug, asserting the
/// output qubit's state.
fn teleport(inject_bug: bool) -> Result<AssertingCircuit, Box<dyn std::error::Error>> {
    let mut base = QuantumCircuit::new(3, 2);
    // State to teleport: |−⟩ on q0.
    base.x(0)?.h(0)?;
    // Shared Bell pair on q1–q2 (the bug drops the Hadamard).
    if !inject_bug {
        base.h(1)?;
    }
    base.cx(1, 2)?;
    // Alice's Bell measurement.
    base.cx(0, 1)?.h(0)?;
    base.measure(0, 0)?.measure(1, 1)?;
    // Bob's classically-controlled corrections.
    base.gate_if(Gate::X, [2usize], 1, true)?;
    base.gate_if(Gate::Z, [2usize], 0, true)?;

    let mut program = AssertingCircuit::new(base);
    // Runtime check: the teleported qubit must be |−⟩ now.
    program.assert_superposition(2, SuperpositionBasis::Minus)?;
    Ok(program)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let session = AssertionSession::new(StatevectorBackend::new().with_seed(11))
        .shot_plan(ShotPlan::Fixed(2048));

    let correct = teleport(false)?;
    let outcome = session.run(&correct)?;
    println!(
        "correct teleportation: assertion error rate {:.4} (expect 0)",
        outcome.assertion_error_rate
    );
    assert!(outcome.assertion_error_rate < 1e-12);

    let buggy = teleport(true)?;
    let outcome = session.run(&buggy)?;
    let rate = outcome.assertion_error_rate;
    println!("buggy teleportation:   assertion error rate {rate:.4} (theory: 0.5 — bug detected!)");
    assert!(rate > 0.4, "the missing-H bug must be visible");

    println!(
        "\ninstrumented circuit:\n{}",
        qcircuit::display::render(correct.circuit())
    );
    Ok(())
}
