//! Serving assertions over HTTP: an in-process `qassert-serve` server
//! on an ephemeral loopback port, and an instrumented GHZ job
//! submitted through the wire protocol.
//!
//! ```text
//! cargo run --example serve_client
//! ```
//!
//! Starts the server, POSTs a seeded GHZ job (entanglement +
//! superposition assertions) to `/v1/jobs`, prints every streamed
//! NDJSON record as it is decoded, and then verifies the verdict,
//! counts, and plan records are **bit-identical** to the same job
//! executed directly through [`AssertionSession`] — the service
//! frontend adds transport, never a different answer. Exits 3 on any
//! divergence, which lets this example double as a smoke check (the
//! same scenario runs inside `repro --quick`).

use qassert_serve::json::Value;
use qassert_serve::protocol::outcome_records;
use qassert_serve::{client, JobSpec, Server, ServerConfig};
use qassert_suite::prelude::*;

const JOB: &str =
    "{\"qasm\": \"OPENQASM 2.0;\\nqreg q[3];\\nh q[0];\\ncx q[0],q[1];\\ncx q[1],q[2];\\n\", \
                   \"seed\": 7, \"plan\": {\"fixed\": 512}, \
                   \"assertions\": [ \
                     {\"kind\": \"entangled\", \"qubits\": [0, 1, 2], \"parity\": \"even\"}, \
                     {\"kind\": \"superposition\", \"qubit\": 0} ]}";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An ephemeral port keeps the example runnable anywhere (CI, a
    // laptop already running a real server on the default port).
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        job_workers: 2,
        conn_workers: 4,
        queue_capacity: 8,
        ..ServerConfig::default()
    })?;
    println!("server listening on http://{}", server.addr());

    println!("\nPOST /v1/jobs  (x-api-token: example-tenant)");
    let response = client::post_job(server.addr(), "example-tenant", JOB)?;
    println!("  -> {} ({})\n", response.status, {
        response.header("content-type").unwrap_or("?").to_string()
    });
    if response.status != 200 {
        eprintln!("job rejected: {}", response.body);
        std::process::exit(3);
    }
    for line in response.ndjson_lines() {
        println!("  {line}");
    }

    let health = client::get(server.addr(), "/healthz")?;
    println!("\nGET /healthz\n  {}", health.body);
    server.shutdown();
    println!("\nserver drained and stopped");

    // The parity check: the wire records must match a direct session
    // run of the same spec byte for byte (telemetry trailer excluded —
    // it carries live server gauges).
    let wire: Vec<&str> = response
        .ndjson_lines()
        .into_iter()
        .filter(|l| !l.contains("\"type\":\"telemetry\""))
        .collect();
    let spec = JobSpec::from_json(JOB).map_err(|e| e.message.clone())?;
    let circuit = spec.build_circuit().map_err(|e| e.message.clone())?;
    let session = AssertionSession::new(StatevectorBackend::new())
        .seed(7)
        .shot_plan(spec.plan);
    let outcome = session.run(&circuit)?;
    let direct: Vec<String> = outcome_records(&outcome, circuit.records())
        .iter()
        .map(Value::render)
        .collect();
    if wire != direct {
        eprintln!("DIVERGENCE: wire records differ from the direct session");
        eprintln!("  wire:   {wire:?}");
        eprintln!("  direct: {direct:?}");
        std::process::exit(3);
    }
    println!(
        "wire records are bit-identical to the direct session — serving adds transport, not noise"
    );
    Ok(())
}
