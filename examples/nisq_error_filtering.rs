//! NISQ error filtering — the paper's Section 4 use case, end to end.
//!
//! ```text
//! cargo run --example nisq_error_filtering
//! ```
//!
//! Reproduces the Table-2 workflow on the simulated `ibmqx4`: prepare a
//! Bell pair, assert its entanglement, transpile to the device's
//! directed coupling graph, run under calibrated noise, and print the
//! paper-style outcome table plus the raw→filtered error-rate reduction.

use qassert::OutcomeTable;
use qassert_suite::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Instrumented program.
    let mut program = AssertingCircuit::new(qcircuit::library::bell());
    program.assert_entangled([0, 1], Parity::Even)?;
    program.measure_data();

    // Lower onto the 5-qubit Tenerife topology the paper ran on. The
    // transpiler fixes CX directions with H sandwiches where needed.
    let topo = qdevice::presets::ibmqx4();
    let lowered = qdevice::transpile::transpile(program.circuit(), &topo)?;
    qdevice::verify::check_native(&lowered.circuit, &topo)?;
    println!(
        "transpiled to ibmqx4: {} ops, depth {}",
        lowered.circuit.len(),
        lowered.circuit.depth()
    );

    // Exact noisy execution: the session runs the *transpiled* circuit
    // and analyzes it against the original instrumented program.
    let session = AssertionSession::new(DensityMatrixBackend::new(qnoise::presets::ibmqx4()))
        .shot_plan(ShotPlan::Fixed(8192));
    let raw = session.run_circuit(&lowered.circuit)?;
    let outcome = session.analyze(raw, &program)?;

    // Paper-style table: ancilla (q0) printed first.
    let table = OutcomeTable::from_counts(
        "entanglement assertion outcomes (ibmqx4 model, 8192 shots)",
        "q0q1q2",
        &outcome.raw.counts,
        &[0, 1, 2],
        |bits| {
            let fired = bits.starts_with('1');
            let ok = &bits[1..] == "00" || &bits[1..] == "11";
            match (fired, ok) {
                (false, true) => "pass, entangled".into(),
                (false, false) => "pass, NOT entangled (false negative)".into(),
                (true, _) => "assertion error (shot discarded)".into(),
            }
        },
    );
    println!("\n{}", table.render());

    // The headline metric: error rate before and after filtering.
    let reduction =
        ErrorReduction::compute(&outcome.raw.counts, &program.assertion_clbits(), |k| {
            ((k >> 1) & 1) == ((k >> 2) & 1)
        });
    println!("raw error rate:      {:.4}", reduction.raw);
    println!("filtered error rate: {:.4}", reduction.filtered);
    println!(
        "relative reduction:  {:.1}%  (paper Table 2: 31.5%)",
        100.0 * reduction.relative_reduction()
    );
    Ok(())
}
