//! Multi-qubit entanglement assertions: the even-CNOT rule and the
//! strong (pairwise) extension.
//!
//! ```text
//! cargo run --example ghz_parity_check
//! ```
//!
//! Asserts GHZ states of growing width, demonstrating (a) the paper's
//! Fig. 4 rule — an even number of CNOTs keeps the ancilla disentangled
//! so the program can continue — and (b) the coverage difference between
//! the paper's single-parity check and the pairwise strong mode against
//! a parity-preserving double bit-flip bug. A final section re-runs the
//! parity check on a 1,024-qubit GHZ state through the stabilizer
//! tableau backend — the assertion circuitry is pure Clifford, so the
//! same session machinery scales three orders of magnitude past the
//! amplitude backends' ceiling.

use qassert_suite::prelude::*;

fn detection_rate(
    session: &AssertionSession<'_, DensityMatrixBackend>,
    mode: EntanglementMode,
    width: usize,
    bug: bool,
) -> Result<f64, Box<dyn std::error::Error>> {
    let mut base = qcircuit::library::ghz(width);
    if bug {
        // Two bit flips preserve total parity — invisible to a single
        // parity ancilla.
        base.x(1)?;
        base.x(2)?;
    }
    let mut program = AssertingCircuit::new(base).with_mode(mode);
    program.assert_entangled(0..width, Parity::Even)?;
    // Lenient filtering: a certain detection flags *every* shot, and
    // that rate is exactly what we want to read off.
    let outcome = session.run(&program)?;
    Ok(outcome.assertion_error_rate)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One session drives every run: exact backend, 4096 shots, lenient
    // filtering so fully-flagged (certain-detection) runs still report.
    let session = AssertionSession::new(DensityMatrixBackend::ideal())
        .shot_plan(ShotPlan::Fixed(4096))
        .filter_policy(FilterPolicy::AllowEmpty);

    // Correct GHZ states: the assertion is silent at every width, and
    // the instrumenter's even-CNOT rule keeps downstream state intact.
    println!("correct GHZ(k): paper-mode assertion error rates");
    for width in 2..=5 {
        let rate = detection_rate(&session, EntanglementMode::Paper, width, false)?;
        let assertion = qassert::Assertion::entanglement(0..width, Parity::Even)?;
        println!(
            "  k = {width}: error rate {rate:.4}, CNOT overhead {} (even rule)",
            assertion.cnot_overhead(EntanglementMode::Paper)
        );
    }

    // Buggy GHZ(4) with a parity-preserving double flip.
    println!("\ndouble bit-flip bug on GHZ(4):");
    let paper = detection_rate(&session, EntanglementMode::Paper, 4, true)?;
    let strong = detection_rate(&session, EntanglementMode::Strong, 4, true)?;
    println!("  paper mode (1 ancilla):  detection probability {paper:.3}");
    println!(
        "  strong mode ({} ancillas): detection probability {strong:.3}",
        3
    );
    assert!(paper < 1e-9 && (strong - 1.0).abs() < 1e-9);
    println!("  → the single parity check is blind to parity-even bugs; strong mode is not.");

    // Visualize the strong-mode instrumented circuit.
    let mut program =
        AssertingCircuit::new(qcircuit::library::ghz(3)).with_mode(EntanglementMode::Strong);
    program.assert_entangled([0, 1, 2], Parity::Even)?;
    println!(
        "\nstrong-mode GHZ(3) check:\n{}",
        qcircuit::display::render(program.circuit())
    );

    // The same parity assertion at 1,024 qubits: the GHZ preparation
    // and the instrumentation are all Clifford, so the stabilizer
    // tableau backend runs it in O(n²) bits where a statevector would
    // need 2^1025 amplitudes. A sequential plan stops as soon as the
    // "holds" verdict is decided.
    let width = 1024;
    let mut big = AssertingCircuit::new(qcircuit::library::ghz(width));
    big.assert_entangled([0, width - 1], Parity::Even)?;
    let big_session = AssertionSession::new(StabilizerBackend::ideal())
        .shot_plan(ShotPlan::Sequential {
            alpha: 0.05,
            min_shots: 64,
            max_shots: 4096,
            tranche: 64,
        })
        .seed(7);
    let outcome = big_session.run(&big)?;
    let record = big_session.record();
    println!(
        "\nGHZ({width}) end-to-end parity on the {} backend ({} qubits instrumented):",
        record.backend_kind, record.max_qubits
    );
    println!(
        "  error rate {:.4}, verdict {:?} after {} of 4096 budgeted shots ({})",
        outcome.assertion_error_rate,
        outcome.verdicts[0].verdict,
        outcome.plan.shots_used,
        outcome.plan.stop
    );
    assert_eq!(outcome.verdicts[0].verdict, AssertionVerdict::Holds);
    assert!(outcome.plan.shots_used < 4096);
    Ok(())
}
