//! Table 2 — entanglement assertion on the `ibmqx4` device model.
//!
//! The paper's circuit: Bell-pair preparation on two data qubits, then a
//! parity check into one ancilla (two CNOTs) and measurement of all
//! three. The table lists the eight joint outcomes; filtering shots with
//! an assertion error reduces the data error rate.

use super::{ibmqx4_session, run_on_ibmqx4, HW_SHOTS};
use qassert::{
    AssertingCircuit, Comparison, ErrorReduction, ExperimentReport, OutcomeTable, Parity,
};
use qcircuit::library;

/// Paper Table 2 percentages in `q0q1q2` row order `000 … 111`
/// (`q0` = assertion ancilla, `q1 q2` = Bell pair).
pub const PAPER_ROWS: [f64; 8] = [39.1, 6.3, 4.4, 34.6, 4.0, 5.6, 2.1, 3.9];
/// Paper raw error rate of the expected entangled state (18.4%).
pub const PAPER_RAW_ERROR: f64 = 0.184;
/// Paper filtered error rate (12.6%).
pub const PAPER_FILTERED_ERROR: f64 = 0.126;
/// Paper relative improvement (31.5%).
pub const PAPER_REDUCTION: f64 = 0.315;
/// Paper assertion-error share (rows with q0 = 1: 15.6%).
pub const PAPER_ASSERTION_RATE: f64 = 0.156;

/// Builds the instrumented Table-2 circuit.
pub fn circuit() -> AssertingCircuit {
    let mut ac = AssertingCircuit::new(library::bell());
    ac.assert_entangled([0, 1], Parity::Even)
        .expect("valid assertion targets");
    ac.measure_data();
    ac
}

/// Runs the experiment.
pub fn run() -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "table2",
        format!("entanglement assertion on a Bell pair, ibmqx4 model, {HW_SHOTS} shots"),
    );
    let ac = circuit();
    let session = ibmqx4_session();
    let outcome = run_on_ibmqx4(&session, &ac);
    report.push_session(session.record());
    report.push_session_telemetry(&session.telemetry());

    // Clbit 0 = ancilla (paper q0), clbits 1–2 = data (paper q1 q2).
    let table = OutcomeTable::from_counts(
        "Table 2 — entanglement assertion outcomes",
        "q0q1q2",
        &outcome.raw.counts,
        &[0, 1, 2],
        |bits| {
            let anc_err = bits.starts_with('1');
            let data = &bits[1..];
            let entangled = data == "00" || data == "11";
            match (anc_err, entangled) {
                (false, true) => "No assertion error, q1 q2 entangled".to_string(),
                (false, false) => {
                    "No assertion error, q1 q2 not entangled (false negative)".to_string()
                }
                (true, true) => "Assertion error (potential false positive)".to_string(),
                (true, false) => "Assertion error, q1 q2 not entangled".to_string(),
            }
        },
    );
    for (row, paper) in table.rows.iter().zip(PAPER_ROWS) {
        report.comparisons.push(Comparison::new(
            format!("P(q0q1q2 = {}) %", row.bits),
            paper,
            row.percent,
        ));
    }
    report.tables.push(table);

    // Correct outcomes: the data bits agree (clbits 1 and 2).
    let reduction = ErrorReduction::compute(&outcome.raw.counts, &ac.assertion_clbits(), |key| {
        ((key >> 1) & 1) == ((key >> 2) & 1)
    });
    report.comparisons.push(Comparison::new(
        "raw data error rate",
        PAPER_RAW_ERROR,
        reduction.raw,
    ));
    report.comparisons.push(Comparison::new(
        "filtered data error rate",
        PAPER_FILTERED_ERROR,
        reduction.filtered,
    ));
    report.comparisons.push(Comparison::new(
        "relative error-rate reduction",
        PAPER_REDUCTION,
        reduction.relative_reduction(),
    ));
    report.comparisons.push(Comparison::new(
        "assertion error rate",
        PAPER_ASSERTION_RATE,
        outcome.assertion_error_rate,
    ));
    report.notes.push(
        "direction fixing adds H sandwiches on ibmqx4's reversed edges, as IBM's compiler did"
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_filtering_reduces_error_rate() {
        let report = run();
        let raw = report
            .comparisons
            .iter()
            .find(|c| c.metric.starts_with("raw"))
            .unwrap()
            .measured;
        let filtered = report
            .comparisons
            .iter()
            .find(|c| c.metric.starts_with("filtered"))
            .unwrap()
            .measured;
        assert!(filtered < raw, "filtering must help: {filtered} vs {raw}");
    }

    #[test]
    fn table2_entangled_outcomes_dominate() {
        let report = run();
        let rows = &report.tables[0].rows;
        // 000 and 011 are the correct pass outcomes and must dominate.
        let good = rows[0].percent + rows[3].percent;
        assert!(good > 50.0, "correct outcomes at {good}%");
    }

    #[test]
    fn table2_shapes_hold_for_headline_metrics() {
        let report = run();
        for c in &report.comparisons {
            if c.metric.contains("error") {
                assert!(c.shape_holds(), "{} diverges: {c:?}", c.metric);
            }
        }
    }
}
