//! One module per paper artifact (table / figure / section), plus the
//! ablations and the statistical-assertion baseline comparison.

pub mod ablation;
pub mod baseline;
pub mod fig6;
pub mod fig7;
pub mod mitigation;
pub mod noise_sweep;
pub mod placement;
pub mod sec43;
pub mod table1;
pub mod table2;
pub mod theory_sweep;

use qassert::{AssertingCircuit, AssertionSession, ShotPlan};
use qcircuit::QuantumCircuit;
use qdevice::transpile::transpile;
use qnoise::NoiseModel;
use qsim::DensityMatrixBackend;

/// Shots used by the hardware-model experiments (the paper used IBM Q's
/// standard 8192).
pub const HW_SHOTS: u64 = 8192;

/// Transpiles an instrumented circuit onto the `ibmqx4` topology
/// (decompose → route → direction-fix → optimize), preserving clbits so
/// the assertion analysis still applies.
///
/// # Panics
///
/// Panics when the circuit does not fit the 5-qubit device — experiment
/// circuits are fixed-size, so this is a programming error.
pub fn to_ibmqx4(circuit: &QuantumCircuit) -> QuantumCircuit {
    transpile(circuit, &qdevice::presets::ibmqx4())
        .expect("experiment circuits fit ibmqx4")
        .circuit
}

/// An [`AssertionSession`] over the exact density-matrix backend under
/// the given noise model, configured with [`HW_SHOTS`] deterministic
/// largest-remainder counts per run.
///
/// Sessions compile through the process-wide program cache, so sweeps
/// that re-analyze one circuit per noise level (and the tests that
/// re-run experiments) lower each `(circuit, noise)` pair once.
pub fn exact_session(noise: NoiseModel) -> AssertionSession<'static, DensityMatrixBackend> {
    AssertionSession::new(DensityMatrixBackend::new(noise)).shot_plan(ShotPlan::Fixed(HW_SHOTS))
}

/// The session the hardware-table experiments run on: exact `ibmqx4`
/// noise, [`HW_SHOTS`] shots.
pub fn ibmqx4_session() -> AssertionSession<'static, DensityMatrixBackend> {
    exact_session(qnoise::presets::ibmqx4())
}

/// Transpiles to `ibmqx4`, runs on the session's exact noise model, and
/// analyzes assertion outcomes.
///
/// # Panics
///
/// Panics on simulation failure.
pub fn run_on_ibmqx4(
    session: &AssertionSession<'_, DensityMatrixBackend>,
    ac: &AssertingCircuit,
) -> qassert::AssertionOutcome {
    let native = to_ibmqx4(ac.circuit());
    let raw = session
        .run_circuit(&native)
        .expect("experiment circuits simulate");
    session
        .analyze(raw, ac)
        .expect("some shots survive filtering")
}

#[cfg(test)]
mod tests {
    use super::*;
    use qassert::Parity;
    use qcircuit::library;

    #[test]
    fn ibmqx4_pipeline_produces_native_circuits() {
        let mut ac = AssertingCircuit::new(library::bell());
        ac.assert_entangled([0, 1], Parity::Even).unwrap();
        ac.measure_data();
        let native = to_ibmqx4(ac.circuit());
        qdevice::verify::check_native(&native, &qdevice::presets::ibmqx4()).unwrap();
        assert_eq!(native.num_clbits(), ac.circuit().num_clbits());
    }

    #[test]
    fn run_on_ibmqx4_keeps_most_shots() {
        let mut ac = AssertingCircuit::new(library::bell());
        ac.assert_entangled([0, 1], Parity::Even).unwrap();
        ac.measure_data();
        let session = ibmqx4_session();
        let outcome = run_on_ibmqx4(&session, &ac);
        assert!(outcome.shots_kept() > HW_SHOTS / 2);
        assert!(outcome.assertion_error_rate > 0.0);
        assert!(outcome.assertion_error_rate < 0.5);
        let t = session.telemetry();
        assert_eq!(t.runs, 1);
        assert_eq!(t.shots, HW_SHOTS);
    }
}
