//! Ancilla placement study (extension).
//!
//! The paper notes: "Due to the constraints on connectivity of the IBM Q
//! computer, we used qubit q2 as the ancilla qubit to assert the qubit
//! (q1 == |0⟩)." This experiment makes that engineering decision
//! quantitative: the Table-1 assertion circuit is placed at every
//! ordered (data, ancilla) pair of `ibmqx4`'s five qubits, transpiled,
//! and scored by post-transpilation CX count — the dominant noise cost.

use qassert::{Comparison, ExperimentReport};
use qcircuit::QuantumCircuit;
use qdevice::transpile::transpile;

/// Post-transpile `(cx, total)` gate counts for the classical-assertion
/// circuit with the data qubit at physical `data` and the ancilla at
/// physical `ancilla`.
pub fn placement_cost(data: u32, ancilla: u32) -> (usize, usize) {
    // The Fig. 2 circuit laid out directly on physical wires.
    let mut circuit = QuantumCircuit::new(5, 2);
    circuit.cx(data, ancilla).expect("distinct physical wires");
    circuit.measure(ancilla, 0).expect("valid");
    circuit.measure(data, 1).expect("valid");
    let lowered =
        transpile(&circuit, &qdevice::presets::ibmqx4()).expect("5-qubit circuit fits the device");
    let cx = lowered.circuit.count_ops().get("cx").copied().unwrap_or(0);
    (cx, lowered.circuit.len())
}

/// Runs the experiment.
pub fn run() -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "placement",
        "ancilla placement cost for the Table-1 assertion on ibmqx4 (paper: 'we used q2')",
    );

    let mut best: Option<(u32, u32, usize)> = None;
    let mut worst: Option<(u32, u32, usize)> = None;
    for data in 0..5u32 {
        for ancilla in 0..5u32 {
            if data == ancilla {
                continue;
            }
            let (cx, _) = placement_cost(data, ancilla);
            if best.map(|(_, _, b)| cx < b).unwrap_or(true) {
                best = Some((data, ancilla, cx));
            }
            if worst.map(|(_, _, w)| cx > w).unwrap_or(true) {
                worst = Some((data, ancilla, cx));
            }
        }
    }
    let (bd, ba, bcx) = best.expect("pairs exist");
    let (wd, wa, wcx) = worst.expect("pairs exist");

    // The paper's choice: data q1, ancilla q2 — a hardware-coupled pair.
    let (paper_cx, _) = placement_cost(1, 2);
    report.comparisons.push(Comparison::new(
        "CX count, paper's placement (data q1, ancilla q2)",
        1.0,
        paper_cx as f64,
    ));
    report.comparisons.push(Comparison::new(
        format!("CX count, best placement (data q{bd}, ancilla q{ba})"),
        1.0,
        bcx as f64,
    ));
    report.comparisons.push(Comparison::new(
        format!("CX count, worst placement (data q{wd}, ancilla q{wa})"),
        wcx as f64,
        wcx as f64,
    ));
    report.comparisons.push(Comparison::new(
        "worst / best CX ratio (routing penalty for bad ancilla choice)",
        wcx as f64 / bcx as f64,
        wcx as f64 / bcx as f64,
    ));
    report.notes.push(
        "connected pairs need 1 CX (plus H sandwiches against the edge direction); \
         disconnected pairs pay 3 CXs per routing SWAP"
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn papers_choice_is_optimal() {
        // q1–q2 are hardware-coupled (edge 2→1): a single CX suffices,
        // which is exactly why the paper picked q2 as the ancilla.
        let (cx, _) = placement_cost(1, 2);
        assert_eq!(cx, 1);
    }

    #[test]
    fn disconnected_pairs_pay_swap_overhead() {
        // q0 and q3 are not coupled on Tenerife (distance 2).
        let (cx, _) = placement_cost(0, 3);
        assert!(cx > 1, "expected SWAP overhead, got {cx} CX");
    }

    #[test]
    fn every_placement_transpiles_and_connected_ones_are_cheap() {
        let topo = qdevice::presets::ibmqx4();
        for data in 0..5u32 {
            for ancilla in 0..5u32 {
                if data == ancilla {
                    continue;
                }
                let (cx, total) = placement_cost(data, ancilla);
                assert!(cx >= 1 && total >= 3);
                let connected = topo.are_connected(
                    qcircuit::QubitId::new(data),
                    qcircuit::QubitId::new(ancilla),
                );
                if connected {
                    assert_eq!(cx, 1, "coupled pair ({data},{ancilla}) should cost 1 CX");
                }
            }
        }
    }

    #[test]
    fn report_shapes_hold() {
        let report = run();
        for c in &report.comparisons {
            assert!(c.shape_holds(), "{} diverges", c.metric);
        }
    }
}
