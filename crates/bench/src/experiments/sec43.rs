//! Section 4.3 — superposition assertion on the `ibmqx4` device model.
//!
//! The paper prepares `|+⟩` with a Hadamard, asserts the uniform
//! superposition, and reports that the assertion fires in 15.6% of the
//! measurements on hardware — capturing erroneous deviations from the
//! expected superposition state.

use super::{ibmqx4_session, run_on_ibmqx4, HW_SHOTS};
use qassert::{AssertingCircuit, Comparison, ExperimentReport, OutcomeTable, SuperpositionBasis};
use qcircuit::QuantumCircuit;

/// Paper assertion-error fraction on hardware.
pub const PAPER_ASSERTION_RATE: f64 = 0.156;

/// Builds the instrumented Section 4.3 circuit.
pub fn circuit() -> AssertingCircuit {
    let mut base = QuantumCircuit::with_name("sec43", 1, 0);
    base.h(0).expect("valid qubit");
    let mut ac = AssertingCircuit::new(base);
    ac.assert_superposition(0, SuperpositionBasis::Plus)
        .expect("valid target");
    ac.measure_data();
    ac
}

/// Runs the experiment.
pub fn run() -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "sec43",
        format!("superposition assertion on H|0⟩, ibmqx4 model, {HW_SHOTS} shots"),
    );
    let ac = circuit();
    let session = ibmqx4_session();
    let outcome = run_on_ibmqx4(&session, &ac);
    report.push_session(session.record());
    report.push_session_telemetry(&session.telemetry());

    report.comparisons.push(Comparison::new(
        "assertion error rate",
        PAPER_ASSERTION_RATE,
        outcome.assertion_error_rate,
    ));

    // Clbit 0 = ancilla, clbit 1 = data qubit.
    report.tables.push(OutcomeTable::from_counts(
        "Section 4.3 — superposition assertion outcomes",
        "q,anc",
        &outcome.raw.counts,
        &[1, 0],
        |bits| {
            if bits.ends_with('0') {
                "no assertion error (measurement of |+⟩ may be 0 or 1)".to_string()
            } else {
                "assertion error: deviation from the uniform superposition".to_string()
            }
        },
    ));
    report.notes.push(
        "the paper notes the data measurement itself cannot distinguish |+⟩ errors; only the \
         ancilla can"
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sec43_assertion_fires_at_noise_scale() {
        let report = run();
        let rate = report.comparisons[0].measured;
        // Must be clearly above zero (noise is present) but far from the
        // 50% that a *wrong state* would produce.
        assert!(rate > 0.005, "rate {rate} too small");
        assert!(rate < 0.35, "rate {rate} suspiciously large");
    }

    #[test]
    fn sec43_shape_holds() {
        let report = run();
        assert!(report.comparisons[0].shape_holds());
    }

    #[test]
    fn sec43_data_marginal_is_balanced() {
        let report = run();
        // |+⟩ measures 0/1 evenly; check the two data-0 rows sum ≈ the
        // two data-1 rows within a few percent.
        let rows = &report.tables[0].rows;
        let zero = rows[0].percent + rows[1].percent;
        let one = rows[2].percent + rows[3].percent;
        assert!((zero - one).abs() < 10.0, "balance {zero} vs {one}");
    }
}
