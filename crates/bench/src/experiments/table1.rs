//! Table 1 — classical assertion on the `ibmqx4` device model.
//!
//! The paper's circuit: data qubit expected in `|0⟩`, one ancilla, one
//! CNOT, measure both. The table reports the four joint outcomes, the
//! raw vs assertion-filtered error rate of the data qubit, and the
//! relative error-rate reduction.

use super::{ibmqx4_session, run_on_ibmqx4, HW_SHOTS};
use qassert::{AssertingCircuit, Comparison, ErrorReduction, ExperimentReport, OutcomeTable};
use qcircuit::QuantumCircuit;

/// Paper Table 1 percentages, in `q1q2` row order `00, 01, 10, 11`
/// (`q1` = data, `q2` = assertion ancilla).
pub const PAPER_ROWS: [f64; 4] = [93.8, 2.7, 2.4, 1.1];
/// Paper raw data-error rate (2.4% + 1.1%).
pub const PAPER_RAW_ERROR: f64 = 0.035;
/// Paper filtered error rate (2.4 / (93.8 + 2.4)).
pub const PAPER_FILTERED_ERROR: f64 = 0.025;
/// Paper relative reduction ("a reduction of 28.5%").
pub const PAPER_REDUCTION: f64 = 0.285;

/// Builds the instrumented Table-1 circuit: one data qubit asserted
/// `== |0⟩`, then measured.
pub fn circuit() -> AssertingCircuit {
    let base = QuantumCircuit::with_name("table1", 1, 0);
    let mut ac = AssertingCircuit::new(base);
    ac.assert_classical([0], [false])
        .expect("valid assertion target");
    ac.measure_data();
    ac
}

/// Runs the experiment.
pub fn run() -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "table1",
        format!("classical assertion (q == |0⟩) on ibmqx4 model, {HW_SHOTS} shots"),
    );
    let ac = circuit();
    let session = ibmqx4_session();
    let outcome = run_on_ibmqx4(&session, &ac);
    report.push_session(session.record());
    report.push_session_telemetry(&session.telemetry());

    // Clbit 0 = ancilla, clbit 1 = data; the paper prints q1q2 =
    // (data, ancilla).
    let table = OutcomeTable::from_counts(
        "Table 1 — classical assertion outcomes",
        "q1q2",
        &outcome.raw.counts,
        &[1, 0],
        |bits| match bits {
            "00" => "No assertion error, q1 is 0".to_string(),
            "01" => "Assertion error, q1 is 0 (potential false positive)".to_string(),
            "10" => "No assertion error, q1 is 1 (false negative)".to_string(),
            "11" => "Assertion error, q1 is 1".to_string(),
            _ => unreachable!("two-bit table"),
        },
    );
    for (row, paper) in table.rows.iter().zip(PAPER_ROWS) {
        report.comparisons.push(Comparison::new(
            format!("P(q1q2 = {}) %", row.bits),
            paper,
            row.percent,
        ));
    }
    report.tables.push(table);

    // Error rates: the data qubit (clbit 1) should read 0.
    let reduction = ErrorReduction::compute(&outcome.raw.counts, &ac.assertion_clbits(), |key| {
        (key >> 1) & 1 == 0
    });
    report.comparisons.push(Comparison::new(
        "raw data error rate",
        PAPER_RAW_ERROR,
        reduction.raw,
    ));
    report.comparisons.push(Comparison::new(
        "filtered data error rate",
        PAPER_FILTERED_ERROR,
        reduction.filtered,
    ));
    report.comparisons.push(Comparison::new(
        "relative error-rate reduction",
        PAPER_REDUCTION,
        reduction.relative_reduction(),
    ));
    report.notes.push(
        "noise model uses era-ballpark ibmqx4 calibration, not the paper's hardware snapshot"
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_filtering_reduces_error_rate() {
        let report = run();
        let raw = report
            .comparisons
            .iter()
            .find(|c| c.metric.starts_with("raw"))
            .unwrap()
            .measured;
        let filtered = report
            .comparisons
            .iter()
            .find(|c| c.metric.starts_with("filtered"))
            .unwrap()
            .measured;
        assert!(filtered < raw, "filtering must help: {filtered} vs {raw}");
    }

    #[test]
    fn table1_shapes_hold() {
        let report = run();
        for c in &report.comparisons {
            assert!(c.shape_holds(), "{} diverges: {c:?}", c.metric);
        }
    }

    #[test]
    fn table1_dominant_outcome_is_all_zero() {
        let report = run();
        let first_row = &report.tables[0].rows[0];
        assert_eq!(first_row.bits, "00");
        assert!(first_row.percent > 85.0);
    }

    #[test]
    fn table1_records_its_session_configuration() {
        let report = run();
        let session = report.session.expect("session recorded");
        assert_eq!(session.shots, HW_SHOTS);
        assert!(session.backend.contains("density matrix"));
        assert!(report.metrics.iter().any(|m| m.name == "session_shots"));
    }
}
