//! Section 3 theory sweep — measured ancilla statistics vs closed forms.
//!
//! For a sweep of input states `Ry(θ)|0⟩ = cos(θ/2)|0⟩ + sin(θ/2)|1⟩`,
//! the exact simulator's assertion-error probabilities are compared to
//! the Section 3 closed forms: `|b|²` (classical), `|c|² + |d|²`
//! (entanglement, on product inputs), and `(2 − 4ab)/4` (superposition).

use qassert::{theory, Comparison, ExperimentReport};
use qcircuit::{Gate, QubitId};
use qmath::Complex;
use qsim::StateVector;

/// Sweep resolution (number of θ samples over `[0, 2π)`).
const STEPS: usize = 32;

fn q(i: u32) -> QubitId {
    QubitId::new(i)
}

/// Runs the experiment.
pub fn run() -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "theory",
        "assertion error probabilities vs Section 3 closed forms over an input sweep",
    );

    let mut max_dev_classical = 0.0f64;
    let mut max_dev_superposition = 0.0f64;
    let mut max_dev_entanglement = 0.0f64;

    for step in 0..STEPS {
        let theta = step as f64 / STEPS as f64 * std::f64::consts::TAU;
        let (a, b) = ((theta / 2.0).cos(), (theta / 2.0).sin());

        // Classical assertion (Fig. 2).
        let mut psi = StateVector::zero_state(2);
        psi.apply_gate(&Gate::Ry(theta), &[q(0)]).expect("valid");
        psi.apply_gate(&Gate::Cx, &[q(0), q(1)]).expect("valid");
        let measured = psi.probability_of_one(q(1)).expect("valid");
        let predicted = theory::classical_error_probability(Complex::real(a), Complex::real(b));
        max_dev_classical = max_dev_classical.max((measured - predicted).abs());

        // Superposition assertion (Fig. 5).
        let mut psi = StateVector::zero_state(2);
        psi.apply_gate(&Gate::Ry(theta), &[q(0)]).expect("valid");
        psi.apply_gate(&Gate::Cx, &[q(0), q(1)]).expect("valid");
        psi.apply_gate(&Gate::H, &[q(0)]).expect("valid");
        psi.apply_gate(&Gate::H, &[q(1)]).expect("valid");
        psi.apply_gate(&Gate::Cx, &[q(0), q(1)]).expect("valid");
        let measured = psi.probability_of_one(q(1)).expect("valid");
        let (_, predicted) = theory::superposition_outcome_probabilities(a, b);
        max_dev_superposition = max_dev_superposition.max((measured - predicted).abs());

        // Entanglement assertion (Fig. 3) on a product input
        // Ry(θ)|0⟩ ⊗ Ry(0.8)|0⟩.
        let mut psi = StateVector::zero_state(3);
        psi.apply_gate(&Gate::Ry(theta), &[q(0)]).expect("valid");
        psi.apply_gate(&Gate::Ry(0.8), &[q(1)]).expect("valid");
        let amp = |i: usize| psi.amplitude(i);
        let (aa, bb, cc, dd) = (amp(0b00), amp(0b11), amp(0b01), amp(0b10));
        psi.apply_gate(&Gate::Cx, &[q(0), q(2)]).expect("valid");
        psi.apply_gate(&Gate::Cx, &[q(1), q(2)]).expect("valid");
        let measured = psi.probability_of_one(q(2)).expect("valid");
        let predicted = theory::entanglement_error_probability(aa, bb, cc, dd);
        max_dev_entanglement = max_dev_entanglement.max((measured - predicted).abs());
    }

    report.comparisons.push(Comparison::new(
        "max |measured − theory| classical (should be 0)",
        0.0,
        max_dev_classical,
    ));
    report.comparisons.push(Comparison::new(
        "max |measured − theory| superposition (should be 0)",
        0.0,
        max_dev_superposition,
    ));
    report.comparisons.push(Comparison::new(
        "max |measured − theory| entanglement (should be 0)",
        0.0,
        max_dev_entanglement,
    ));
    report.notes.push(format!(
        "{STEPS} input angles swept uniformly over [0, 2π) for each assertion family"
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulator_matches_theory_exactly() {
        let report = run();
        for c in &report.comparisons {
            assert!(c.measured < 1e-10, "{}: deviation {}", c.metric, c.measured);
            assert!(c.shape_holds());
        }
    }
}
