//! Section 3 theory sweep — measured ancilla statistics vs closed forms.
//!
//! For a sweep of input states `Ry(θ)|0⟩ = cos(θ/2)|0⟩ + sin(θ/2)|1⟩`,
//! the exact simulator's assertion-error probabilities are compared to
//! the Section 3 closed forms: `|b|²` (classical), `|c|² + |d|²`
//! (entanglement, on product inputs), and `(2 − 4ab)/4` (superposition).
//!
//! Each assertion circuit is built as a `QuantumCircuit`, lowered
//! through an [`AssertionSession`] (process-wide program cache +
//! prefix-aware compilation), and evolved via the compiled op stream
//! ([`StatevectorBackend::statevector_compiled`]). The per-θ circuits
//! share lowered prefixes two ways — the classical circuit is an exact
//! instruction-prefix of the superposition circuit, and the product
//! preparation is a prefix of the entangled circuit — so on a cold
//! cache the sweep records `2 × STEPS` prefix hits, and re-running it
//! (tests, repeated `repro` invocations in one process) is compile-free.
//! The session's telemetry and configuration are exported in the
//! report's metrics block.

use qassert::{theory, AssertionSession, Comparison, ExperimentReport};
use qcircuit::{Gate, QuantumCircuit, QubitId};
use qmath::Complex;
use qsim::{CompiledProgram, ShardPool, StateVector, StatevectorBackend};
use std::sync::{Arc, Mutex};

/// Sweep resolution (number of θ samples over `[0, 2π)`).
const STEPS: usize = 32;

fn q(i: u32) -> QubitId {
    QubitId::new(i)
}

/// The four circuits of one θ point, in the lowering order that makes
/// the superposition circuit extend the classical one and the
/// instrumented entanglement circuit extend the product preparation
/// (two prefix reuses per θ).
fn point_circuits(theta: f64) -> [QuantumCircuit; 4] {
    // Classical assertion (Fig. 2).
    let mut classical = QuantumCircuit::new(2, 0);
    classical.ry(theta, 0).expect("valid");
    classical.cx(0, 1).expect("valid");

    // Superposition assertion (Fig. 5) — extends the classical circuit,
    // so its prefix is reused from the classical lowering.
    let mut superposition = classical.clone();
    superposition.h(0).expect("valid");
    superposition.h(1).expect("valid");
    superposition.cx(0, 1).expect("valid");

    // Entanglement assertion (Fig. 3) on a product input
    // Ry(θ)|0⟩ ⊗ Ry(0.8)|0⟩. The closed form reads the *input*
    // amplitudes, so the prefix and the instrumented circuit are
    // lowered separately — and the instrumented one extends the prefix.
    let mut prefix = QuantumCircuit::new(3, 0);
    prefix.ry(theta, 0).expect("valid");
    prefix.ry(0.8, 1).expect("valid");
    let mut entangled = prefix.clone();
    entangled.gate(Gate::Cx, [q(0), q(2)]).expect("valid");
    entangled.gate(Gate::Cx, [q(1), q(2)]).expect("valid");

    [classical, superposition, prefix, entangled]
}

/// The three per-θ deviations `(classical, superposition, entanglement)`
/// computed by evolving one point's already-lowered programs on
/// `backend`. Pure floating-point evolution — bit-identical wherever
/// (and on whatever thread) it runs.
fn deviations_from(
    backend: &StatevectorBackend,
    theta: f64,
    programs: &[Arc<CompiledProgram>; 4],
) -> (f64, f64, f64) {
    let (a, b) = ((theta / 2.0).cos(), (theta / 2.0).sin());
    let evolve = |program: &Arc<CompiledProgram>| -> StateVector {
        backend
            .statevector_compiled(program)
            .expect("theory circuits are unitary")
    };
    let [classical, superposition, prefix, entangled] = programs;

    let psi = evolve(classical);
    let measured = psi.probability_of_one(q(1)).expect("valid");
    let predicted = theory::classical_error_probability(Complex::real(a), Complex::real(b));
    let dev_classical = (measured - predicted).abs();

    let psi = evolve(superposition);
    let measured = psi.probability_of_one(q(1)).expect("valid");
    let (_, predicted) = theory::superposition_outcome_probabilities(a, b);
    let dev_superposition = (measured - predicted).abs();

    let input = evolve(prefix);
    let amp = |i: usize| input.amplitude(i);
    let (aa, bb, cc, dd) = (amp(0b00), amp(0b11), amp(0b01), amp(0b10));
    let psi = evolve(entangled);
    let measured = psi.probability_of_one(q(2)).expect("valid");
    let predicted = theory::entanglement_error_probability(aa, bb, cc, dd);
    let dev_entanglement = (measured - predicted).abs();

    (dev_classical, dev_superposition, dev_entanglement)
}

/// Lowers one θ point's circuits through the session, in prefix order.
fn lower_point(
    session: &AssertionSession<'_, StatevectorBackend>,
    theta: f64,
) -> [Arc<CompiledProgram>; 4] {
    point_circuits(theta).map(|circuit| session.lower(&circuit).expect("theory circuits compile"))
}

/// The three per-θ deviations measured through `session` (serial
/// lowering + evolution — the reference the tests pin [`run`]'s
/// parallel evolution against).
#[cfg(test)]
fn point_deviations(
    session: &AssertionSession<'_, StatevectorBackend>,
    theta: f64,
) -> (f64, f64, f64) {
    let programs = lower_point(session, theta);
    deviations_from(session.backend(), theta, &programs)
}

/// Runs the experiment.
pub fn run() -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "theory",
        "assertion error probabilities vs Section 3 closed forms over an input sweep",
    );
    let session = AssertionSession::new(StatevectorBackend::new());

    // Lower serially, in θ order: prefix-extension chains (and the
    // 2 × STEPS prefix-hit telemetry) depend on lowering order, so the
    // compile pass stays on this thread — the same 2-D split
    // `AssertionSession::run_sweep` uses.
    let thetas: Vec<f64> = (0..STEPS)
        .map(|step| step as f64 / STEPS as f64 * std::f64::consts::TAU)
        .collect();
    let lowered: Vec<[Arc<CompiledProgram>; 4]> = thetas
        .iter()
        .map(|&theta| lower_point(&session, theta))
        .collect();

    // Evolve the θ points in parallel across the shard pool: pure
    // compiled-program evolution, bit-identical on any worker, reduced
    // in slot order so the report is deterministic. The point count is
    // fixed up front, so the plain batch API fits (run_sweep needs the
    // scope/latch-group machinery; this fan-out doesn't).
    let slots: Vec<Mutex<Option<(f64, f64, f64)>>> = (0..STEPS).map(|_| Mutex::new(None)).collect();
    let backend = session.backend();
    ShardPool::global().run_batch(STEPS, |step| {
        let deviations = deviations_from(backend, thetas[step], &lowered[step]);
        *slots[step].lock().expect("theory slot") = Some(deviations);
    });

    let mut max_dev_classical = 0.0f64;
    let mut max_dev_superposition = 0.0f64;
    let mut max_dev_entanglement = 0.0f64;
    for slot in &slots {
        let (dc, ds, de) = slot
            .lock()
            .expect("theory slot")
            .expect("every point evolved");
        max_dev_classical = max_dev_classical.max(dc);
        max_dev_superposition = max_dev_superposition.max(ds);
        max_dev_entanglement = max_dev_entanglement.max(de);
    }

    report.comparisons.push(Comparison::new(
        "max |measured − theory| classical (should be 0)",
        0.0,
        max_dev_classical,
    ));
    report.comparisons.push(Comparison::new(
        "max |measured − theory| superposition (should be 0)",
        0.0,
        max_dev_superposition,
    ));
    report.comparisons.push(Comparison::new(
        "max |measured − theory| entanglement (should be 0)",
        0.0,
        max_dev_entanglement,
    ));
    report.push_session(session.record());
    report.push_session_telemetry(&session.telemetry());
    report.notes.push(format!(
        "{STEPS} input angles swept uniformly over [0, 2π) for each assertion family"
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulator_matches_theory_exactly() {
        let report = run();
        for c in &report.comparisons {
            assert!(c.measured < 1e-10, "{}: deviation {}", c.metric, c.measured);
            assert!(c.shape_holds());
        }
    }

    #[test]
    fn parallel_evolution_matches_serial_reference_bitwise() {
        // run() evolves θ points across the pool; the maxima it reports
        // must equal a fully serial recompute bit-for-bit (evolution is
        // pure FP over identical compiled programs).
        let report = run();
        let session = AssertionSession::new(StatevectorBackend::new()).private_cache(256);
        let mut maxima = [0.0f64; 3];
        for step in 0..STEPS {
            let theta = step as f64 / STEPS as f64 * std::f64::consts::TAU;
            let (dc, ds, de) = point_deviations(&session, theta);
            maxima[0] = maxima[0].max(dc);
            maxima[1] = maxima[1].max(ds);
            maxima[2] = maxima[2].max(de);
        }
        for (comparison, serial) in report.comparisons.iter().zip(maxima) {
            assert_eq!(
                comparison.measured.to_bits(),
                serial.to_bits(),
                "{} diverges from the serial reference",
                comparison.metric
            );
        }
    }

    #[test]
    fn sweep_reports_cache_telemetry_and_rerun_is_compile_free() {
        let first = run();
        assert!(first
            .metrics
            .iter()
            .any(|m| m.name == "program_cache_hit_rate"));
        assert!(first.metrics.iter().any(|m| m.name == "prefix_hits"));
        assert!(first.session.is_some());
        // Second run in the same process: all 4 programs per θ step are
        // resident in the global cache, so every one of the 4 × STEPS
        // lookups hits. (Other tests share the global cache
        // concurrently, so assert on hits — which only they can inflate
        // — rather than on misses.)
        let second = run();
        let hits = second
            .metrics
            .iter()
            .find(|m| m.name == "program_cache_hits")
            .expect("metric present");
        assert!(
            hits.value >= (4 * STEPS) as f64,
            "re-run should be compile-free, saw {} hits",
            hits.value
        );
    }

    #[test]
    fn cold_cache_sweep_reuses_prefixes_with_bit_identical_states() {
        // A session with its own cold cache must record exactly two
        // prefix reuses per θ (superposition extends classical,
        // entangled extends the product preparation) — and the evolved
        // amplitudes must be bit-identical to fresh unsession'd compiles.
        use qsim::Backend;
        let backend = StatevectorBackend::new();
        let session = AssertionSession::new(StatevectorBackend::new()).private_cache(256);
        for step in 0..STEPS {
            let theta = step as f64 / STEPS as f64 * std::f64::consts::TAU;
            let _ = point_deviations(&session, theta);
            // Bit-identity spot check through the session's lowering.
            let mut entangled = QuantumCircuit::new(3, 0);
            entangled.ry(theta, 0).unwrap();
            entangled.ry(0.8, 1).unwrap();
            entangled.gate(Gate::Cx, [q(0), q(2)]).unwrap();
            entangled.gate(Gate::Cx, [q(1), q(2)]).unwrap();
            let via_session = session
                .backend()
                .statevector_compiled(&session.lower(&entangled).unwrap())
                .unwrap();
            let fresh = backend
                .statevector_compiled(&backend.compile(&entangled).unwrap())
                .unwrap();
            for i in 0..8 {
                let (a, b) = (via_session.amplitude(i), fresh.amplitude(i));
                assert!(
                    a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits(),
                    "amplitude {i} diverges at θ = {theta}"
                );
            }
        }
        let t = session.telemetry();
        assert_eq!(
            t.prefix_hits,
            (2 * STEPS) as u64,
            "expected 2 prefix reuses per θ step"
        );
    }
}
