//! Section 3 theory sweep — measured ancilla statistics vs closed forms.
//!
//! For a sweep of input states `Ry(θ)|0⟩ = cos(θ/2)|0⟩ + sin(θ/2)|1⟩`,
//! the exact simulator's assertion-error probabilities are compared to
//! the Section 3 closed forms: `|b|²` (classical), `|c|² + |d|²`
//! (entanglement, on product inputs), and `(2 − 4ab)/4` (superposition).
//!
//! Each assertion circuit is built as a `QuantumCircuit`, lowered
//! through the process-wide program cache, and evolved via the compiled
//! op stream ([`StatevectorBackend::statevector_compiled`]) — so
//! re-running the sweep (tests, repeated `repro` invocations in one
//! process) is compile-free, with the cache counters exported in the
//! report's metrics block.

use qassert::{theory, Comparison, ExperimentReport};
use qcircuit::{Gate, QuantumCircuit, QubitId};
use qmath::Complex;
use qsim::{Backend, ProgramCache, StateVector, StatevectorBackend};

/// Sweep resolution (number of θ samples over `[0, 2π)`).
const STEPS: usize = 32;

fn q(i: u32) -> QubitId {
    QubitId::new(i)
}

/// Compiles `circuit` through the global cache and evolves it from
/// `|0…0⟩` on the ideal backend.
fn evolve(backend: &StatevectorBackend, circuit: &QuantumCircuit) -> StateVector {
    let program = backend
        .compile_cached(circuit, ProgramCache::global())
        .expect("theory circuits compile");
    backend
        .statevector_compiled(&program)
        .expect("theory circuits are unitary")
}

/// Runs the experiment.
pub fn run() -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "theory",
        "assertion error probabilities vs Section 3 closed forms over an input sweep",
    );
    let backend = StatevectorBackend::new();
    let cache_before = ProgramCache::global().stats();

    let mut max_dev_classical = 0.0f64;
    let mut max_dev_superposition = 0.0f64;
    let mut max_dev_entanglement = 0.0f64;

    for step in 0..STEPS {
        let theta = step as f64 / STEPS as f64 * std::f64::consts::TAU;
        let (a, b) = ((theta / 2.0).cos(), (theta / 2.0).sin());

        // Classical assertion (Fig. 2).
        let mut classical = QuantumCircuit::new(2, 0);
        classical.ry(theta, 0).expect("valid");
        classical.cx(0, 1).expect("valid");
        let psi = evolve(&backend, &classical);
        let measured = psi.probability_of_one(q(1)).expect("valid");
        let predicted = theory::classical_error_probability(Complex::real(a), Complex::real(b));
        max_dev_classical = max_dev_classical.max((measured - predicted).abs());

        // Superposition assertion (Fig. 5).
        let mut superposition = QuantumCircuit::new(2, 0);
        superposition.ry(theta, 0).expect("valid");
        superposition.cx(0, 1).expect("valid");
        superposition.h(0).expect("valid");
        superposition.h(1).expect("valid");
        superposition.cx(0, 1).expect("valid");
        let psi = evolve(&backend, &superposition);
        let measured = psi.probability_of_one(q(1)).expect("valid");
        let (_, predicted) = theory::superposition_outcome_probabilities(a, b);
        max_dev_superposition = max_dev_superposition.max((measured - predicted).abs());

        // Entanglement assertion (Fig. 3) on a product input
        // Ry(θ)|0⟩ ⊗ Ry(0.8)|0⟩. The closed form reads the *input*
        // amplitudes, so the prefix and the instrumented circuit are
        // compiled (and cached) separately.
        let mut prefix = QuantumCircuit::new(3, 0);
        prefix.ry(theta, 0).expect("valid");
        prefix.ry(0.8, 1).expect("valid");
        let input = evolve(&backend, &prefix);
        let amp = |i: usize| input.amplitude(i);
        let (aa, bb, cc, dd) = (amp(0b00), amp(0b11), amp(0b01), amp(0b10));
        let mut entangled = prefix.clone();
        entangled.gate(Gate::Cx, [q(0), q(2)]).expect("valid");
        entangled.gate(Gate::Cx, [q(1), q(2)]).expect("valid");
        let psi = evolve(&backend, &entangled);
        let measured = psi.probability_of_one(q(2)).expect("valid");
        let predicted = theory::entanglement_error_probability(aa, bb, cc, dd);
        max_dev_entanglement = max_dev_entanglement.max((measured - predicted).abs());
    }

    report.comparisons.push(Comparison::new(
        "max |measured − theory| classical (should be 0)",
        0.0,
        max_dev_classical,
    ));
    report.comparisons.push(Comparison::new(
        "max |measured − theory| superposition (should be 0)",
        0.0,
        max_dev_superposition,
    ));
    report.comparisons.push(Comparison::new(
        "max |measured − theory| entanglement (should be 0)",
        0.0,
        max_dev_entanglement,
    ));
    report.push_cache_metrics(ProgramCache::global().stats().since(&cache_before));
    report.notes.push(format!(
        "{STEPS} input angles swept uniformly over [0, 2π) for each assertion family"
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulator_matches_theory_exactly() {
        let report = run();
        for c in &report.comparisons {
            assert!(c.measured < 1e-10, "{}: deviation {}", c.metric, c.measured);
            assert!(c.shape_holds());
        }
    }

    #[test]
    fn sweep_reports_cache_telemetry_and_rerun_is_compile_free() {
        let first = run();
        assert!(first
            .metrics
            .iter()
            .any(|m| m.name == "program_cache_hit_rate"));
        // Second run in the same process: all 4 programs per θ step are
        // resident, so every one of the 4 × STEPS lookups hits. (Other
        // tests share the global cache concurrently, so assert on hits —
        // which only they can inflate — rather than on misses.)
        let second = run();
        let hits = second
            .metrics
            .iter()
            .find(|m| m.name == "program_cache_hits")
            .expect("metric present");
        assert!(
            hits.value >= (4 * STEPS) as f64,
            "re-run should be compile-free, saw {} hits",
            hits.value
        );
    }
}
