//! Mitigation ablation — assertion filtering vs readout-error
//! mitigation vs both (extension).
//!
//! Assertion filtering (the paper's technique) discards flagged shots;
//! readout mitigation inverts the known assignment-error matrices on the
//! histogram. They attack overlapping but distinct error sources: the
//! assertion catches *state* errors (decoherence, gate noise), while
//! mitigation only repairs *measurement* errors. The combination wins.

use super::{exact_session, to_ibmqx4, HW_SHOTS};
use qassert::mitigation::{mitigated_error_rate, ReadoutMitigator};
use qassert::{Comparison, ErrorReduction, ExperimentReport, SessionRecord};
use qcircuit::{OpKind, QuantumCircuit, QubitId};

/// Extracts the qubit measured into each clbit of a lowered circuit.
fn measurement_map(circuit: &QuantumCircuit) -> Vec<QubitId> {
    let mut map = vec![QubitId::new(0); circuit.num_clbits()];
    for instr in circuit.instructions() {
        if matches!(instr.kind(), OpKind::Measure) {
            map[instr.clbits()[0].index()] = instr.qubits()[0];
        }
    }
    map
}

/// All four error rates on the Table-2 workload
/// (`(raw, filtered, mitigated, both)`) plus the session record that
/// produced them.
///
/// The session carries the [`ReadoutMitigator`] built from the device's
/// assignment matrices, so the analyzed outcome brings the mitigated
/// raw/filtered distributions along with the counted ones.
pub fn technique_comparison_with_record() -> ((f64, f64, f64, f64), SessionRecord) {
    let ac = super::table2::circuit();
    let native = to_ibmqx4(ac.circuit());
    let noise = qnoise::presets::ibmqx4();
    let mitigator = ReadoutMitigator::from_noise_model(&noise, &measurement_map(&native));
    let session = exact_session(noise).mitigator(mitigator);
    let raw = session
        .run_circuit(&native)
        .expect("experiment circuits simulate");
    let outcome = session
        .analyze(raw, &ac)
        .expect("some shots survive filtering");

    let correct = |k: u64| ((k >> 1) & 1) == ((k >> 2) & 1);
    let reduction = ErrorReduction::compute(&outcome.raw.counts, &ac.assertion_clbits(), correct);
    let mitigated = outcome.mitigated.as_ref().expect("session has a mitigator");
    let mitigated_rate = mitigated_error_rate(&mitigated.probs, correct);
    let both_rate = mitigated_error_rate(&mitigated.kept, correct);

    (
        (reduction.raw, reduction.filtered, mitigated_rate, both_rate),
        session.record(),
    )
}

/// All four error rates on the Table-2 workload:
/// `(raw, filtered, mitigated, both)`.
pub fn technique_comparison() -> (f64, f64, f64, f64) {
    technique_comparison_with_record().0
}

/// Runs the experiment.
pub fn run() -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "mitigation",
        format!(
            "assertion filtering vs readout mitigation on the Table-2 workload, {HW_SHOTS} shots"
        ),
    );
    let ((raw, filtered, mitigated, both), record) = technique_comparison_with_record();
    report.push_session(record);

    report
        .comparisons
        .push(Comparison::new("raw error rate", raw.max(1e-9), raw));
    report.comparisons.push(Comparison::new(
        "assertion-filtered error rate (paper)",
        filtered.max(1e-9),
        filtered,
    ));
    report.comparisons.push(Comparison::new(
        "readout-mitigated error rate",
        mitigated.max(1e-9),
        mitigated,
    ));
    report.comparisons.push(Comparison::new(
        "filtered + mitigated error rate",
        both.max(1e-9),
        both,
    ));
    report.notes.push(format!(
        "improvements over raw: filtering {:.1}%, mitigation {:.1}%, combined {:.1}%",
        100.0 * (raw - filtered) / raw,
        100.0 * (raw - mitigated) / raw,
        100.0 * (raw - both) / raw,
    ));
    report.notes.push(
        "mitigation repairs measurement errors only; the assertion also catches gate/decoherence \
         errors — the combination dominates either alone"
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_technique_beats_raw() {
        let (raw, filtered, mitigated, both) = technique_comparison();
        assert!(filtered < raw, "filtering: {filtered} vs {raw}");
        assert!(mitigated < raw, "mitigation: {mitigated} vs {raw}");
        assert!(both < raw, "combined: {both} vs {raw}");
    }

    #[test]
    fn combination_beats_each_alone() {
        let (_, filtered, mitigated, both) = technique_comparison();
        assert!(
            both <= filtered + 1e-9,
            "combined {both} worse than filtering {filtered}"
        );
        assert!(
            both <= mitigated + 1e-9,
            "combined {both} worse than mitigation {mitigated}"
        );
    }

    #[test]
    fn measurement_map_extracts_transpiled_qubits() {
        let ac = super::super::table2::circuit();
        let native = to_ibmqx4(ac.circuit());
        let map = measurement_map(&native);
        assert_eq!(map.len(), 3);
        // All measured qubits are distinct physical wires.
        let mut sorted = map.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 3);
    }
}
