//! Mitigation ablation — assertion filtering vs readout-error
//! mitigation vs both (extension).
//!
//! Assertion filtering (the paper's technique) discards flagged shots;
//! readout mitigation inverts the known assignment-error matrices on the
//! histogram. They attack overlapping but distinct error sources: the
//! assertion catches *state* errors (decoherence, gate noise), while
//! mitigation only repairs *measurement* errors. The combination wins.

use super::{run_exact, to_ibmqx4, HW_SHOTS};
use qassert::mitigation::{filter_mitigated, mitigated_error_rate, ReadoutMitigator};
use qassert::{Comparison, ErrorReduction, ExperimentReport};
use qcircuit::{ClbitId, OpKind, QuantumCircuit, QubitId};

/// Extracts the qubit measured into each clbit of a lowered circuit.
fn measurement_map(circuit: &QuantumCircuit) -> Vec<QubitId> {
    let mut map = vec![QubitId::new(0); circuit.num_clbits()];
    for instr in circuit.instructions() {
        if matches!(instr.kind(), OpKind::Measure) {
            map[instr.clbits()[0].index()] = instr.qubits()[0];
        }
    }
    map
}

/// All four error rates on the Table-2 workload:
/// `(raw, filtered, mitigated, both)`.
pub fn technique_comparison() -> (f64, f64, f64, f64) {
    let ac = super::table2::circuit();
    let native = to_ibmqx4(ac.circuit());
    let noise = qnoise::presets::ibmqx4();
    let raw = run_exact(&native, noise.clone());

    let correct = |k: u64| ((k >> 1) & 1) == ((k >> 2) & 1);
    let assertion_bits: Vec<ClbitId> = ac.assertion_clbits();

    let reduction = ErrorReduction::compute(&raw.counts, &assertion_bits, correct);

    let mitigator = ReadoutMitigator::from_noise_model(&noise, &measurement_map(&native));
    let mitigated = mitigator
        .mitigate_clipped(&raw.counts)
        .expect("mitigation keeps mass");
    let mitigated_rate = mitigated_error_rate(&mitigated, correct);

    let both = filter_mitigated(&mitigated, &assertion_bits).expect("some mass passes");
    let both_rate = mitigated_error_rate(&both, correct);

    (reduction.raw, reduction.filtered, mitigated_rate, both_rate)
}

/// Runs the experiment.
pub fn run() -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "mitigation",
        format!(
            "assertion filtering vs readout mitigation on the Table-2 workload, {HW_SHOTS} shots"
        ),
    );
    let (raw, filtered, mitigated, both) = technique_comparison();

    report
        .comparisons
        .push(Comparison::new("raw error rate", raw.max(1e-9), raw));
    report.comparisons.push(Comparison::new(
        "assertion-filtered error rate (paper)",
        filtered.max(1e-9),
        filtered,
    ));
    report.comparisons.push(Comparison::new(
        "readout-mitigated error rate",
        mitigated.max(1e-9),
        mitigated,
    ));
    report.comparisons.push(Comparison::new(
        "filtered + mitigated error rate",
        both.max(1e-9),
        both,
    ));
    report.notes.push(format!(
        "improvements over raw: filtering {:.1}%, mitigation {:.1}%, combined {:.1}%",
        100.0 * (raw - filtered) / raw,
        100.0 * (raw - mitigated) / raw,
        100.0 * (raw - both) / raw,
    ));
    report.notes.push(
        "mitigation repairs measurement errors only; the assertion also catches gate/decoherence \
         errors — the combination dominates either alone"
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_technique_beats_raw() {
        let (raw, filtered, mitigated, both) = technique_comparison();
        assert!(filtered < raw, "filtering: {filtered} vs {raw}");
        assert!(mitigated < raw, "mitigation: {mitigated} vs {raw}");
        assert!(both < raw, "combined: {both} vs {raw}");
    }

    #[test]
    fn combination_beats_each_alone() {
        let (_, filtered, mitigated, both) = technique_comparison();
        assert!(
            both <= filtered + 1e-9,
            "combined {both} worse than filtering {filtered}"
        );
        assert!(
            both <= mitigated + 1e-9,
            "combined {both} worse than mitigation {mitigated}"
        );
    }

    #[test]
    fn measurement_map_extracts_transpiled_qubits() {
        let ac = super::super::table2::circuit();
        let native = to_ibmqx4(ac.circuit());
        let map = measurement_map(&native);
        assert_eq!(map.len(), 3);
        // All measured qubits are distinct physical wires.
        let mut sorted = map.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 3);
    }
}
