//! Baseline comparison — dynamic assertions (this paper) vs statistical
//! assertions (Huang & Martonosi, ISCA'19).
//!
//! Workload: a buggy Bell-pair program whose entangling CNOT was
//! forgotten, leaving `|+⟩ ⊗ |0⟩`. Both techniques detect the bug; the
//! comparison quantifies the paper's motivating difference — the
//! statistical assertion must *stop* the program (its measurement is
//! destructive), while the dynamic assertion lets execution continue and
//! even projects surviving shots into the asserted entangled subspace.

use qassert::{
    AssertingCircuit, AssertionSession, Comparison, ExperimentReport, Parity, ShotPlan,
    StatisticalAssertion, StatisticalKind,
};
use qcircuit::QuantumCircuit;
use qsim::{DensityMatrixBackend, StatevectorBackend};

/// The buggy program: `H(0)` but no `CX(0,1)`.
pub fn buggy_bell() -> QuantumCircuit {
    let mut c = QuantumCircuit::with_name("buggy_bell", 2, 0);
    c.h(0).expect("valid qubit");
    c
}

/// Runs the experiment.
pub fn run() -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "baseline",
        "dynamic vs statistical assertion on a buggy (unentangled) Bell program",
    );

    // --- Dynamic assertion: per-shot detection, program continues. ---
    let mut ac = AssertingCircuit::new(buggy_bell());
    ac.assert_entangled([0, 1], Parity::Even)
        .expect("valid targets");
    ac.measure_data();
    let session =
        AssertionSession::new(DensityMatrixBackend::ideal()).shot_plan(ShotPlan::Fixed(4096));
    let outcome = session.run(&ac).expect("buggy bell simulates");
    let p_detect = outcome.assertion_error_rate;
    // Theory (Sec. 3.2): |+⟩⊗|0⟩ has odd-parity mass 1/2.
    report.comparisons.push(Comparison::new(
        "dynamic: per-shot detection probability",
        0.5,
        p_detect,
    ));
    let shots_for_99 = (0.01f64.ln() / (1.0 - p_detect).ln()).ceil();
    report.comparisons.push(Comparison::new(
        "dynamic: shots for 99% detection confidence",
        7.0,
        shots_for_99,
    ));

    // Surviving shots are *forced* into the entangled subspace: data
    // bits agree in every kept outcome (the session already filtered
    // them onto the data marginal).
    let kept_correlated = outcome.data_kept.get(0b00) + outcome.data_kept.get(0b11);
    report.comparisons.push(Comparison::new(
        "dynamic: P(data correlated | passed) — projection effect",
        1.0,
        kept_correlated as f64 / outcome.shots_kept() as f64,
    ));
    report.comparisons.push(Comparison::new(
        "dynamic: program continues after check (1 = yes)",
        1.0,
        1.0,
    ));
    report.push_session(session.record());
    report.push_session_telemetry(&session.telemetry());

    // --- Statistical baseline: batch test, program halts. ---
    let stat = StatisticalAssertion::new([0, 1], StatisticalKind::EntangledGhz, 0.05)
        .expect("valid assertion");
    let verdict = stat
        .check(&StatevectorBackend::new().with_seed(7), &buggy_bell(), 2000)
        .expect("check runs");
    report.comparisons.push(Comparison::new(
        "statistical: bug detected (1 = yes)",
        1.0,
        f64::from(u8::from(!verdict.passed)),
    ));
    report.comparisons.push(Comparison::new(
        "statistical: program continues after check (1 = yes)",
        0.0,
        f64::from(u8::from(verdict.program_continues)),
    ));
    report.comparisons.push(Comparison::new(
        "statistical: shots consumed by one check",
        2000.0,
        verdict.shots_used as f64,
    ));

    report.notes.push(
        "the statistical baseline measures the data qubits themselves, so the checked state is \
         destroyed — the limitation dynamic assertions remove (paper Sec. 1)"
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_techniques_detect_the_bug() {
        let report = run();
        let dynamic = report
            .comparisons
            .iter()
            .find(|c| c.metric.starts_with("dynamic: per-shot"))
            .unwrap();
        assert!((dynamic.measured - 0.5).abs() < 1e-10);
        let statistical = report
            .comparisons
            .iter()
            .find(|c| c.metric.starts_with("statistical: bug detected"))
            .unwrap();
        assert_eq!(statistical.measured, 1.0);
    }

    #[test]
    fn only_dynamic_assertions_continue() {
        let report = run();
        let dyn_cont = report
            .comparisons
            .iter()
            .find(|c| c.metric.starts_with("dynamic: program continues"))
            .unwrap();
        let stat_cont = report
            .comparisons
            .iter()
            .find(|c| c.metric.starts_with("statistical: program continues"))
            .unwrap();
        assert_eq!(dyn_cont.measured, 1.0);
        assert_eq!(stat_cont.measured, 0.0);
    }

    #[test]
    fn projection_forces_surviving_shots_into_subspace() {
        let report = run();
        let proj = report
            .comparisons
            .iter()
            .find(|c| c.metric.contains("projection effect"))
            .unwrap();
        assert!((proj.measured - 1.0).abs() < 1e-10);
    }
}
