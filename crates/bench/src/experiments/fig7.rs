//! Figure 7 — verifying the superposition assertion circuit on the ideal
//! simulator.
//!
//! Input set to a classical state (a bug relative to the asserted `|+⟩`):
//! the ancilla flags an error 50% of the time, and — whichever outcome is
//! measured — the tested qubit is forced into an equal-magnitude
//! superposition (`|k| = 1/√2`).

use qassert::{
    theory, AssertingCircuit, AssertionSession, Comparison, ExperimentReport, FilterPolicy,
    OutcomeTable, ShotPlan,
};
use qcircuit::{Gate, QuantumCircuit, QubitId};
use qsim::{Counts, DensityMatrixBackend, StateVector};

/// Runs the experiment.
pub fn run() -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig7",
        "superposition assertion on a classical |0⟩ input (QUIRK substitute)",
    );

    let q0 = QubitId::new(0);
    let anc = QubitId::new(1);

    // Fig. 5 circuit on classical input |0⟩.
    let mut psi = StateVector::zero_state(2);
    psi.apply_gate(&Gate::Cx, &[q0, anc]).expect("valid qubits");
    psi.apply_gate(&Gate::H, &[q0]).expect("valid qubit");
    psi.apply_gate(&Gate::H, &[anc]).expect("valid qubit");
    psi.apply_gate(&Gate::Cx, &[q0, anc]).expect("valid qubits");

    let p_error = psi.probability_of_one(anc).expect("valid qubit");
    let (theory_p0, theory_p1) = theory::superposition_outcome_probabilities(1.0, 0.0);
    report.comparisons.push(Comparison::new(
        "assertion error probability on classical input",
        theory_p1,
        p_error,
    ));
    report.comparisons.push(Comparison::new(
        "pass probability on classical input",
        theory_p0,
        1.0 - p_error,
    ));

    // Both ancilla outcomes force |k| = 1/√2 on the tested qubit.
    let k2 = theory::superposition_forced_magnitude().powi(2);
    for outcome in [false, true] {
        let mut branch = psi.clone();
        branch
            .post_select(anc, outcome)
            .expect("both branches weighted");
        let p1 = branch.probability_of_one(q0).expect("valid qubit");
        report.comparisons.push(Comparison::new(
            format!("P(q = 1) after ancilla measured {}", u8::from(outcome)),
            k2,
            p1,
        ));
    }

    // Cross-check through the instrumented API + exact backend, run
    // end-to-end via a session (lenient filtering — half the shots are
    // flagged by construction, and that rate is the measurement).
    let mut ac = AssertingCircuit::new(QuantumCircuit::new(1, 0));
    ac.assert_superposition(0, qassert::SuperpositionBasis::Plus)
        .expect("valid target");
    let session = AssertionSession::new(DensityMatrixBackend::ideal())
        .shot_plan(ShotPlan::Fixed(8192))
        .filter_policy(FilterPolicy::AllowEmpty);
    let outcome = session.run(&ac).expect("fig7 circuit simulates");
    report.comparisons.push(Comparison::new(
        "instrumented API assertion error rate",
        0.5,
        outcome.assertion_error_rate,
    ));
    report.push_session(session.record());
    report.push_session_telemetry(&session.telemetry());

    let mut counts = Counts::new(2);
    for (idx, p) in psi.probabilities().iter().enumerate() {
        counts.record(idx as u64, (p * 10_000.0).round() as u64);
    }
    report.tables.push(OutcomeTable::from_counts(
        "Joint distribution after the Fig. 5 circuit (10k pseudo-shots)",
        "q,anc",
        &counts,
        &[0, 1],
        |bits| {
            if bits.ends_with('0') {
                "pass branch: qubit forced into |+⟩-like state".to_string()
            } else {
                "error branch: qubit forced into |−⟩-like state".to_string()
            }
        },
    ));
    report
        .notes
        .push("the classical input is the paper's buggy case; |+⟩ input never fires".to_string());
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_fifty_fifty_and_forced_magnitude() {
        let report = run();
        for c in &report.comparisons {
            assert!(c.shape_holds(), "{} diverges: {c:?}", c.metric);
            // The ideal simulator must match theory exactly.
            assert!(
                (c.measured - c.paper).abs() < 1e-10,
                "{}: {} vs {}",
                c.metric,
                c.measured,
                c.paper
            );
        }
    }
}
