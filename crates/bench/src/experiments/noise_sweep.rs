//! Noise sweep — filtering benefit vs device noise scale.
//!
//! The Table-2 circuit (Bell pair + entanglement assertion) is run on
//! the `ibmqx4` model with every error magnitude scaled by a factor in
//! {0.25, 0.5, 1, 2, 4}. The sweep shows (a) the raw error rate growing
//! with noise, (b) assertion filtering helping at every scale, and (c)
//! the assertion's own 2-CNOT overhead eating into the benefit as noise
//! grows.
//!
//! Every point compiles through the process-wide program cache: the
//! circuit is fixed and only the noise model varies, so each of the five
//! `(circuit, noise)` pairs lowers once per process — the headline
//! re-evaluation at x1.00 (and any re-run) is compile-free. The report's
//! metrics block exports the cache counters observed during the sweep.

use super::{run_exact, to_ibmqx4, HW_SHOTS};
use qassert::{Comparison, ErrorReduction, ExperimentReport};
use qsim::ProgramCache;

/// The swept noise scale factors.
pub const FACTORS: [f64; 5] = [0.25, 0.5, 1.0, 2.0, 4.0];

/// One sweep point: `(factor, raw error, filtered error, reduction)`.
pub fn sweep_point(factor: f64) -> (f64, f64, f64, f64) {
    let ac = super::table2::circuit();
    let native = to_ibmqx4(ac.circuit());
    let raw = run_exact(&native, qnoise::presets::ibmqx4_scaled(factor));
    let reduction = ErrorReduction::compute(&raw.counts, &ac.assertion_clbits(), |key| {
        ((key >> 1) & 1) == ((key >> 2) & 1)
    });
    (
        factor,
        reduction.raw,
        reduction.filtered,
        reduction.relative_reduction(),
    )
}

/// Runs the experiment.
pub fn run() -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "sweep",
        format!("Table-2 circuit under scaled ibmqx4 noise, {HW_SHOTS} shots per point"),
    );
    let cache_before = ProgramCache::global().stats();
    let mut prev_raw = 0.0;
    for factor in FACTORS {
        let (f, raw, filtered, reduction) = sweep_point(factor);
        report.comparisons.push(Comparison::new(
            format!("x{f:.2}: raw error rate"),
            raw.max(1e-9), // the "paper" column doubles as the reference (self-comparison)
            raw,
        ));
        report.comparisons.push(Comparison::new(
            format!("x{f:.2}: filtered error rate"),
            filtered.max(1e-9),
            filtered,
        ));
        report.comparisons.push(Comparison::new(
            format!("x{f:.2}: relative reduction"),
            reduction.max(1e-9),
            reduction,
        ));
        assert!(raw >= prev_raw - 1e-9, "raw error must grow with noise");
        prev_raw = raw;
    }
    // The headline anchor: at x1.00 the reduction should sit in the
    // paper's regime (Table 2 reports 31.5%).
    let (_, _, _, at_nominal) = sweep_point(1.0);
    report.comparisons.push(Comparison::new(
        "reduction at nominal noise (paper Table 2)",
        0.315,
        at_nominal,
    ));
    report.push_cache_metrics(ProgramCache::global().stats().since(&cache_before));
    report.notes.push(
        "scaling multiplies gate/readout error probabilities and divides T1/T2 by the factor"
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_error_grows_monotonically_with_noise() {
        let mut prev = -1.0;
        for f in FACTORS {
            let (_, raw, _, _) = sweep_point(f);
            assert!(raw > prev, "raw error not monotone at x{f}");
            prev = raw;
        }
    }

    #[test]
    fn filtering_helps_at_every_scale() {
        for f in FACTORS {
            let (_, raw, filtered, _) = sweep_point(f);
            assert!(
                filtered < raw,
                "filtering failed to help at x{f}: {filtered} vs {raw}"
            );
        }
    }

    #[test]
    fn repeated_points_are_compile_free() {
        let _ = sweep_point(1.0); // ensure the program is resident
        let before = ProgramCache::global().stats();
        let _ = sweep_point(1.0);
        let delta = ProgramCache::global().stats().since(&before);
        assert!(
            delta.hits >= 1,
            "re-evaluating a sweep point should hit the program cache"
        );
    }

    #[test]
    fn nominal_point_matches_table2_regime() {
        let (_, _, _, reduction) = sweep_point(1.0);
        assert!(
            (0.05..=0.9).contains(&reduction),
            "reduction {reduction} outside plausible regime"
        );
    }
}
