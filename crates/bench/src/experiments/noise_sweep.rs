//! Noise sweep — filtering benefit vs device noise scale.
//!
//! The Table-2 circuit (Bell pair + entanglement assertion) is run on
//! the `ibmqx4` model with every error magnitude scaled by a factor in
//! {0.25, 0.5, 1, 2, 4}. The sweep shows (a) the raw error rate growing
//! with noise, (b) assertion filtering helping at every scale, and (c)
//! the assertion's own 2-CNOT overhead eating into the benefit as noise
//! grows.
//!
//! Each factor runs through an [`qassert::AssertionSession`] over the
//! exact backend at that scale, and the five factor points fan out
//! across the shard pool; all sessions share the process-wide program
//! cache, so each of the five `(circuit, noise)` pairs lowers once per
//! process and any re-run is compile-free. The sessions' merged
//! telemetry (pool activity attributed via the sweep's latch group)
//! and the session configuration are exported in the report's metrics
//! block.

use super::{exact_session, to_ibmqx4, HW_SHOTS};
use qassert::{Comparison, ErrorReduction, ExperimentReport, SessionRecord, SessionTelemetry};
use qsim::ShardPool;
use std::sync::Mutex;

/// The swept noise scale factors.
pub const FACTORS: [f64; 5] = [0.25, 0.5, 1.0, 2.0, 4.0];

/// One sweep point plus the telemetry and configuration record of the
/// session that produced it.
///
/// The returned telemetry's pool counters are zeroed: factor points run
/// concurrently (see [`run`]), and a per-point delta of the
/// *process-wide* pool counters would cross-count the other points'
/// tasks — the racy pattern the sweep-level latch group replaces. The
/// experiment attributes pool activity once, for the whole sweep, via
/// [`ShardPool::scope`].
fn sweep_point_with_telemetry(
    factor: f64,
) -> ((f64, f64, f64, f64), SessionTelemetry, SessionRecord) {
    let ac = super::table2::circuit();
    let native = to_ibmqx4(ac.circuit());
    let session = exact_session(qnoise::presets::ibmqx4_scaled(factor));
    let raw = session
        .run_circuit(&native)
        .expect("experiment circuits simulate");
    let reduction = ErrorReduction::compute(&raw.counts, &ac.assertion_clbits(), |key| {
        ((key >> 1) & 1) == ((key >> 2) & 1)
    });
    // The fresh session's own counters are exact for this point; only
    // the pool snapshot is shared state.
    let telemetry = SessionTelemetry {
        pool_tasks: 0,
        pool_steals: 0,
        ..session.telemetry()
    };
    (
        (
            factor,
            reduction.raw,
            reduction.filtered,
            reduction.relative_reduction(),
        ),
        telemetry,
        session.record(),
    )
}

/// One sweep point: `(factor, raw error, filtered error, reduction)`.
pub fn sweep_point(factor: f64) -> (f64, f64, f64, f64) {
    sweep_point_with_telemetry(factor).0
}

/// Runs the experiment.
pub fn run() -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "sweep",
        format!("Table-2 circuit under scaled ibmqx4 noise, {HW_SHOTS} shots per point"),
    );
    // Fan the factor points out across the shard pool (each owns its
    // session and backend, so points are independent; the exact backend
    // makes every number deterministic regardless of scheduling) and
    // reduce in factor order. The scope's latch group yields the pool
    // activity of exactly this sweep — per-point global-counter deltas
    // would cross-count concurrent points.
    type Point = ((f64, f64, f64, f64), SessionTelemetry, SessionRecord);
    let slots: Vec<Mutex<Option<Point>>> = FACTORS.iter().map(|_| Mutex::new(None)).collect();
    let ((), pool_stats) = ShardPool::global().scope(|scope| {
        let slots = &slots;
        for (i, &factor) in FACTORS.iter().enumerate() {
            scope.submit(move || {
                *slots[i].lock().expect("sweep slot") = Some(sweep_point_with_telemetry(factor));
            });
        }
    });

    let mut telemetry = SessionTelemetry::default();
    let mut prev_raw = 0.0;
    let mut nominal: Option<(f64, SessionRecord)> = None;
    for slot in &slots {
        let ((f, raw, filtered, reduction), t, record) =
            slot.lock().expect("sweep slot").take().expect("point ran");
        telemetry.merge(&t);
        if f == 1.0 {
            // The headline anchor rides along with its factor point —
            // no need to re-simulate x1.00 just to report it.
            nominal = Some((reduction, record));
        }
        report.comparisons.push(Comparison::new(
            format!("x{f:.2}: raw error rate"),
            raw.max(1e-9), // the "paper" column doubles as the reference (self-comparison)
            raw,
        ));
        report.comparisons.push(Comparison::new(
            format!("x{f:.2}: filtered error rate"),
            filtered.max(1e-9),
            filtered,
        ));
        report.comparisons.push(Comparison::new(
            format!("x{f:.2}: relative reduction"),
            reduction.max(1e-9),
            reduction,
        ));
        assert!(raw >= prev_raw - 1e-9, "raw error must grow with noise");
        prev_raw = raw;
    }
    // The headline anchor: at x1.00 the reduction should sit in the
    // paper's regime (Table 2 reports 31.5%).
    let (at_nominal, nominal_record) = nominal.expect("1.0 is a swept factor");
    telemetry.pool_tasks += pool_stats.tasks_run;
    telemetry.pool_steals += pool_stats.steals;
    report.comparisons.push(Comparison::new(
        "reduction at nominal noise (paper Table 2)",
        0.315,
        at_nominal,
    ));
    // The per-factor sessions differ only in noise content; record the
    // nominal one as the representative configuration.
    report.push_session(nominal_record);
    report.push_session_telemetry(&telemetry);
    report.notes.push(
        "scaling multiplies gate/readout error probabilities and divides T1/T2 by the factor"
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim::ProgramCache;

    #[test]
    fn raw_error_grows_monotonically_with_noise() {
        let mut prev = -1.0;
        for f in FACTORS {
            let (_, raw, _, _) = sweep_point(f);
            assert!(raw > prev, "raw error not monotone at x{f}");
            prev = raw;
        }
    }

    #[test]
    fn filtering_helps_at_every_scale() {
        for f in FACTORS {
            let (_, raw, filtered, _) = sweep_point(f);
            assert!(
                filtered < raw,
                "filtering failed to help at x{f}: {filtered} vs {raw}"
            );
        }
    }

    #[test]
    fn repeated_points_are_compile_free() {
        let _ = sweep_point(1.0); // ensure the program is resident
        let before = ProgramCache::global().stats();
        let (_, t, _) = sweep_point_with_telemetry(1.0);
        let delta = ProgramCache::global().stats().since(&before);
        assert!(
            delta.hits >= 1,
            "re-evaluating a sweep point should hit the program cache"
        );
        assert_eq!(t.cache_hits, 1, "the session observed its own hit");
        assert_eq!(t.runs, 1);
    }

    #[test]
    fn nominal_point_matches_table2_regime() {
        let (_, _, _, reduction) = sweep_point(1.0);
        assert!(
            (0.05..=0.9).contains(&reduction),
            "reduction {reduction} outside plausible regime"
        );
    }

    #[test]
    fn report_merges_telemetry_across_factor_sessions() {
        let report = run();
        assert!(report.session.is_some());
        let runs = report
            .metrics
            .iter()
            .find(|m| m.name == "session_runs")
            .expect("session telemetry exported");
        // One run per factor; the nominal anchor reuses the x1.00
        // point instead of re-simulating it.
        assert_eq!(runs.value, 5.0);
    }
}
