//! Figure 6 — verifying the classical assertion circuit on the ideal
//! simulator (the paper used QUIRK with a post-select display operator).
//!
//! Input `|+⟩`, assert `(ψ == |0⟩)`, post-select the ancilla on 0: the
//! tested qubit must come out projected to `|0⟩` even though the input
//! was a superposition.

use qassert::{
    theory, AssertingCircuit, AssertionSession, Comparison, ExperimentReport, OutcomeTable,
    ShotPlan,
};
use qcircuit::{Gate, QuantumCircuit, QubitId};
use qmath::{Complex, FRAC_1_SQRT_2};
use qsim::{Counts, DensityMatrixBackend, StateVector};

/// Runs the experiment.
pub fn run() -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig6",
        "classical assertion on |+⟩ input, post-selected on the ancilla (QUIRK substitute)",
    );

    let q0 = QubitId::new(0);
    let anc = QubitId::new(1);

    // |+⟩ input, then the Fig. 2 assertion circuit.
    let mut psi = StateVector::zero_state(2);
    psi.apply_gate(&Gate::H, &[q0]).expect("valid qubit");
    let p_one_before = psi.probability_of_one(q0).expect("valid qubit");
    psi.apply_gate(&Gate::Cx, &[q0, anc]).expect("valid qubits");

    // QUIRK's post-select operator: keep only ancilla = 0 runs.
    let p_pass = 1.0 - psi.probability_of_one(anc).expect("valid qubit");
    let mut projected = psi.clone();
    projected
        .post_select(anc, false)
        .expect("pass branch has weight");
    let p_one_after = projected.probability_of_one(q0).expect("valid qubit");

    // The paper's claim: the |+⟩ input is forced to |0⟩ after the check.
    report.comparisons.push(Comparison::new(
        "P(q under test = 1) before assertion",
        0.5,
        p_one_before,
    ));
    report.comparisons.push(Comparison::new(
        "P(q under test = 1) after passing check",
        0.0,
        p_one_after,
    ));
    let predicted_error = theory::classical_error_probability(
        Complex::real(FRAC_1_SQRT_2),
        Complex::real(FRAC_1_SQRT_2),
    );
    report.comparisons.push(Comparison::new(
        "assertion error probability (|b|^2)",
        predicted_error,
        1.0 - p_pass,
    ));

    // Cross-check through the instrumented API: run the same Fig. 2
    // circuit end-to-end on the exact backend and read the filtered
    // data marginal — passing shots must be projected to |0⟩.
    let mut base = QuantumCircuit::new(1, 0);
    base.h(0).expect("valid qubit");
    let mut program = AssertingCircuit::new(base);
    program
        .assert_classical([0], [false])
        .expect("valid target");
    program.measure_data();
    let session =
        AssertionSession::new(DensityMatrixBackend::ideal()).shot_plan(ShotPlan::Fixed(8192));
    let outcome = session.run(&program).expect("fig6 circuit simulates");
    report.comparisons.push(Comparison::new(
        "instrumented API assertion error rate",
        predicted_error,
        outcome.assertion_error_rate,
    ));
    report.comparisons.push(Comparison::new(
        "instrumented API P(q = 1 | passed)",
        0.0,
        outcome.data_kept.probability(1),
    ));
    report.push_session(session.record());
    report.push_session_telemetry(&session.telemetry());

    // Outcome table of the pre-post-selection joint distribution.
    let probs = psi.probabilities();
    let mut counts = Counts::new(2);
    for (idx, p) in probs.iter().enumerate() {
        counts.record(idx as u64, (p * 10_000.0).round() as u64);
    }
    report.tables.push(OutcomeTable::from_counts(
        "Joint distribution before post-selection (10k pseudo-shots)",
        "q,anc",
        &counts,
        &[0, 1],
        |bits| match bits {
            "00" => "pass branch, qubit projected to |0⟩".to_string(),
            "11" => "assertion-error branch, qubit projected to |1⟩".to_string(),
            _ => "forbidden by entanglement".to_string(),
        },
    ));

    report.notes.push(
        "QUIRK is replaced by the qsim state-vector backend; post-select is the same operator"
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_shapes_hold() {
        let report = run();
        for c in &report.comparisons {
            assert!(c.shape_holds(), "{} diverges: {c:?}", c.metric);
        }
    }

    #[test]
    fn fig6_projection_is_exact() {
        let report = run();
        let after = report
            .comparisons
            .iter()
            .find(|c| c.metric.contains("after passing"))
            .unwrap();
        assert!(after.measured.abs() < 1e-12);
    }
}
