//! Ablations on the entanglement-assertion design.
//!
//! Part A — the even-CNOT rule (paper Fig. 4): with an odd number of
//! CNOTs the ancilla stays entangled with the qubits under test,
//! corrupting downstream computation (data purity and fidelity drop to
//! 1/2); with the even count both stay exactly 1.
//!
//! Part B — single-ancilla (paper) vs pairwise "strong" mode: a
//! *double* bit-flip bug preserves total parity, so the paper's single
//! parity check can never see it, while the pairwise extension catches
//! it with certainty.

use qassert::{
    AssertingCircuit, AssertionSession, Comparison, EntanglementMode, ExperimentReport, Parity,
};
use qcircuit::{library, Gate, QuantumCircuit, QubitId};
use qsim::{DensityMatrix, DensityMatrixBackend, StateVector};

fn q(i: u32) -> QubitId {
    QubitId::new(i)
}

/// Downstream data purity and GHZ fidelity after checking GHZ(k) parity
/// into one ancilla with `cnots` CNOTs (controls cycling over the data
/// qubits).
fn parity_check_effect(k: usize, cnots: usize) -> (f64, f64) {
    let mut psi = StateVector::zero_state(k + 1);
    psi.apply_gate(&Gate::H, &[q(0)]).expect("valid");
    for i in 1..k {
        psi.apply_gate(&Gate::Cx, &[q(0), q(i as u32)])
            .expect("valid");
    }
    let reference = {
        let mut r = StateVector::zero_state(k);
        r.apply_gate(&Gate::H, &[q(0)]).expect("valid");
        for i in 1..k {
            r.apply_gate(&Gate::Cx, &[q(0), q(i as u32)])
                .expect("valid");
        }
        r
    };
    let anc = q(k as u32);
    for c in 0..cnots {
        psi.apply_gate(&Gate::Cx, &[q((c % k) as u32), anc])
            .expect("valid");
    }
    let rho = DensityMatrix::from_statevector(&psi);
    let data = rho.trace_out(&[anc]).expect("valid ancilla");
    let purity = data.purity();
    let fidelity = data.fidelity_pure(&reference).expect("same width");
    (purity, fidelity)
}

/// Detection probability of a bug by an instrumented GHZ(4) entanglement
/// assertion in the given mode. `bug` mutates the prepared state.
///
/// The instrumented circuit lowers through the session (process-wide
/// program cache): the same `(mode, bug)` pair evaluated again (tests
/// re-running the ablation, repeated `repro` invocations) skips
/// lowering entirely.
fn detection_probability(
    session: &AssertionSession<'_, DensityMatrixBackend>,
    mode: EntanglementMode,
    bug: impl Fn(&mut QuantumCircuit),
) -> f64 {
    let mut base = library::ghz(4);
    bug(&mut base);
    let mut ac = AssertingCircuit::new(base).with_mode(mode);
    ac.assert_entangled([0, 1, 2, 3], Parity::Even)
        .expect("valid targets");
    let program = session
        .lower(ac.circuit())
        .expect("ablation circuits compile");
    let dist = session
        .backend()
        .exact_distribution_compiled(&program)
        .expect("simulates");
    // Any assertion clbit reading 1 = detected.
    let clear_key = 0u64;
    1.0 - dist.probability(clear_key)
}

/// Runs the experiment.
pub fn run() -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "ablation",
        "even-CNOT rule (Fig. 4) and strong-mode coverage ablations",
    );
    let session = AssertionSession::new(DensityMatrixBackend::ideal());

    // Part A: even vs odd CNOT count on GHZ(3).
    let (purity_even, fidelity_even) = parity_check_effect(3, 4);
    let (purity_odd, fidelity_odd) = parity_check_effect(3, 3);
    report.comparisons.push(Comparison::new(
        "GHZ(3) data purity, even CNOTs (paper rule)",
        1.0,
        purity_even,
    ));
    report.comparisons.push(Comparison::new(
        "GHZ(3) data fidelity, even CNOTs",
        1.0,
        fidelity_even,
    ));
    report.comparisons.push(Comparison::new(
        "GHZ(3) data purity, odd CNOTs (rule violated)",
        0.5,
        purity_odd,
    ));
    report.comparisons.push(Comparison::new(
        "GHZ(3) data fidelity, odd CNOTs",
        0.5,
        fidelity_odd,
    ));

    // Larger k: the rule generalizes.
    for k in [4usize, 5] {
        let even_cnots = (k + 1) & !1;
        let (p_even, _) = parity_check_effect(k, even_cnots);
        report.comparisons.push(Comparison::new(
            format!("GHZ({k}) data purity, even CNOTs"),
            1.0,
            p_even,
        ));
    }

    // Part B: bug coverage, paper vs strong mode.
    let single_flip = |c: &mut QuantumCircuit| {
        c.x(1).expect("valid");
    };
    let double_flip = |c: &mut QuantumCircuit| {
        c.x(1).expect("valid");
        c.x(2).expect("valid");
    };
    report.comparisons.push(Comparison::new(
        "single bit-flip detection, paper mode",
        1.0,
        detection_probability(&session, EntanglementMode::Paper, single_flip),
    ));
    report.comparisons.push(Comparison::new(
        "single bit-flip detection, strong mode",
        1.0,
        detection_probability(&session, EntanglementMode::Strong, single_flip),
    ));
    report.comparisons.push(Comparison::new(
        "double bit-flip detection, paper mode (parity-blind)",
        0.0,
        detection_probability(&session, EntanglementMode::Paper, double_flip),
    ));
    report.comparisons.push(Comparison::new(
        "double bit-flip detection, strong mode",
        1.0,
        detection_probability(&session, EntanglementMode::Strong, double_flip),
    ));

    report.push_session(session.record());
    report.push_session_telemetry(&session.telemetry());
    report.notes.push(
        "strong mode spends k−1 ancillas instead of 1; the overhead buys parity-blind bug \
         coverage"
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_rule_preserves_data_exactly() {
        let (purity, fidelity) = parity_check_effect(3, 4);
        assert!((purity - 1.0).abs() < 1e-10);
        assert!((fidelity - 1.0).abs() < 1e-10);
    }

    #[test]
    fn odd_rule_violation_halves_purity() {
        let (purity, fidelity) = parity_check_effect(3, 3);
        assert!((purity - 0.5).abs() < 1e-10);
        assert!((fidelity - 0.5).abs() < 1e-10);
    }

    #[test]
    fn paper_mode_is_blind_to_double_flips() {
        let session = AssertionSession::new(DensityMatrixBackend::ideal());
        let p = detection_probability(&session, EntanglementMode::Paper, |c| {
            c.x(1).unwrap();
            c.x(2).unwrap();
        });
        assert!(p < 1e-10, "paper mode detected parity-even bug: {p}");
    }

    #[test]
    fn strong_mode_catches_double_flips() {
        let session = AssertionSession::new(DensityMatrixBackend::ideal());
        let p = detection_probability(&session, EntanglementMode::Strong, |c| {
            c.x(1).unwrap();
            c.x(2).unwrap();
        });
        assert!((p - 1.0).abs() < 1e-10, "strong mode missed: {p}");
    }

    #[test]
    fn all_shapes_hold() {
        let report = run();
        for c in &report.comparisons {
            assert!(c.shape_holds(), "{} diverges: {c:?}", c.metric);
        }
    }
}
