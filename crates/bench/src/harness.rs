//! Shared plumbing for the `harness = false` throughput benches
//! (`sweep_throughput`, `batch_throughput`, `psweep_throughput`): CLI
//! flag parsing and baseline-JSON field extraction, factored here (like
//! [`crate::workloads`]) so the three gate binaries cannot drift apart.

/// Whether `name` appears among the arguments.
pub fn flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

/// The value following `name`, unless it is itself a flag (cargo
/// appends `--bench` to bench argument lists).
pub fn value_of(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .filter(|v| !v.starts_with("--"))
        .cloned()
}

/// Extracts `"key": number` from a flat JSON object. The baseline files
/// are written by the benches themselves, so a full parser is
/// unnecessary — but the needle includes the quotes and colon, so key
/// names appearing inside string values (the baselines' `note` fields)
/// cannot match.
pub fn json_number_field(body: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = body.find(&needle)? + needle.len();
    let rest = &body[at..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn flags_and_values_parse_like_the_benches_expect() {
        let a = args(&["--quick", "--out", "x.json", "--check", "--bench"]);
        assert!(flag(&a, "--quick"));
        assert!(!flag(&a, "--full"));
        assert_eq!(value_of(&a, "--out").as_deref(), Some("x.json"));
        // A flag followed by another flag has no value.
        assert_eq!(value_of(&a, "--check"), None);
        assert_eq!(value_of(&a, "--missing"), None);
    }

    #[test]
    fn json_fields_extract_without_matching_note_text() {
        let body = r#"{"note":"per_shot_ns is documented here","per_shot_ns":1200.5,"min_speedup":2.0,"neg":-3e-2}"#;
        assert_eq!(json_number_field(body, "per_shot_ns"), Some(1200.5));
        assert_eq!(json_number_field(body, "min_speedup"), Some(2.0));
        assert_eq!(json_number_field(body, "neg"), Some(-0.03));
        assert_eq!(json_number_field(body, "absent"), None);
    }
}
