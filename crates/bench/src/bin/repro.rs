//! Regenerates the paper's tables and figures.
//!
//! ```text
//! repro                # run every experiment
//! repro table1 fig7    # run selected experiments
//! repro --list         # list experiment ids
//! repro --json out.json  # additionally export reports as JSON
//! repro --quick        # CI smoke: fast experiment subset, exit 3 on
//!                      # any diverging paper-vs-measured shape
//! ```

use qassert_bench::{registry, run_by_id};
use qsim::Backend;

/// The fast, simulator-only subset `--quick` runs (CI smoke — seconds,
/// not minutes, but still end-to-end through circuits, compiler, cache,
/// and backends).
const QUICK_IDS: [&str; 3] = ["fig6", "fig7", "theory"];

/// `--quick` additionally smokes the batched execution path: a wide
/// shallow instrumented circuit (the shape the batch planner exists
/// for, shared with the `batch_throughput` bench via
/// [`qassert_bench::workloads`]) must actually batch, and its batched
/// counts must be bit-identical to per-op sequential execution.
fn batch_smoke() -> Result<String, String> {
    let circuit = qassert_bench::workloads::wide_instrumented(10, 4)
        .circuit()
        .clone();
    let noise = qassert_bench::workloads::readout_noise(10);
    let batched = qsim::TrajectoryBackend::new(noise.clone())
        .with_seed(3)
        .with_threads(2);
    let unbatched = qsim::TrajectoryBackend::new(noise)
        .with_seed(3)
        .with_threads(2)
        .with_batching(false);
    let program = batched.compile(&circuit).map_err(|e| e.to_string())?;
    if program.batched_ops() == 0 {
        return Err("wide instrumented circuit did not batch".to_string());
    }
    let a = batched
        .run_compiled(&program, 400)
        .map_err(|e| e.to_string())?;
    let b = unbatched.run(&circuit, 400).map_err(|e| e.to_string())?;
    if a.counts != b.counts {
        return Err("batched counts diverge from sequential counts".to_string());
    }
    Ok(format!(
        "batch smoke: {} of {} ops batched into {} passes, counts bit-identical",
        program.batched_ops(),
        program.ops().len(),
        program.batch_passes()
    ))
}

/// `--quick` also smokes the SIMD dispatch layer: the same seeded
/// instrumented workload executed once with every amplitude kernel
/// forced onto the scalar reference loops and once on the detected
/// vector ISA must produce bit-identical counts — the end-to-end CI
/// twin of the `simd_equivalence` property suite (exit 3 on
/// divergence).
fn simd_smoke() -> Result<String, String> {
    let circuit = qassert_bench::workloads::wide_instrumented(10, 4)
        .circuit()
        .clone();
    let noise = qassert_bench::workloads::readout_noise(10);
    let backend = qsim::TrajectoryBackend::new(noise)
        .with_seed(5)
        .with_threads(2);
    let vector = qsim::simd::detected_backend();
    let run_on = |be: qsim::SimdBackend| {
        qsim::simd::set_backend_override(Some(be));
        let result = backend.run(&circuit, 400).map_err(|e| e.to_string());
        qsim::simd::set_backend_override(None);
        result
    };
    let scalar_counts = run_on(qsim::SimdBackend::Scalar)?.counts;
    let vector_counts = run_on(vector)?.counts;
    if scalar_counts != vector_counts {
        return Err(format!(
            "forced-scalar counts diverge from {} counts",
            vector.name()
        ));
    }
    Ok(format!(
        "simd smoke: scalar vs {} counts bit-identical (active backend: {})",
        vector.name(),
        qsim::simd::active_backend().name()
    ))
}

/// `--quick` also smokes the parallel sweep path: a seeded multi-point
/// sweep dispatched across the `ShardPool` must reproduce the serial
/// path bit-for-bit — counts, kept histograms, and the deterministic
/// telemetry fields. This is the end-to-end CI twin of the
/// `sweep_equivalence` property suite (exit 3 on divergence).
fn psweep_smoke() -> Result<String, String> {
    use qassert::{AssertingCircuit, AssertionSession, Parity, SweepPolicy};
    let circuits = || -> Vec<AssertingCircuit> {
        (0..24)
            .map(|i| {
                let mut prep = qcircuit::QuantumCircuit::new(2, 0);
                prep.ry(0.2 + i as f64 * 0.26, 0).expect("valid");
                prep.cx(0, 1).expect("valid");
                let mut ac = AssertingCircuit::new(prep);
                ac.assert_entangled([0, 1], Parity::Even).expect("valid");
                ac.measure_data();
                ac
            })
            .collect()
    };
    let noise = qnoise::presets::uniform(3, 0.01, 0.04, 0.02).expect("valid noise");
    let proto = qsim::TrajectoryBackend::new(noise);
    let run = |policy: SweepPolicy| {
        AssertionSession::new(&proto)
            .private_cache(32)
            .shots(64)
            .threads(2)
            .seed(7)
            .sweep_policy(policy)
            .run_sweep(circuits())
            .map_err(|e| e.to_string())
    };
    let serial = run(SweepPolicy::Serial)?;
    let parallel = run(SweepPolicy::Parallel)?;
    for (a, b) in parallel.iter().zip(serial.iter()) {
        if a.outcome().raw.counts != b.outcome().raw.counts || a.outcome().kept != b.outcome().kept
        {
            return Err(format!(
                "point {} diverges between parallel and serial",
                a.index()
            ));
        }
    }
    let (pt, st) = (&parallel.telemetry, &serial.telemetry);
    if (
        pt.runs,
        pt.shots,
        pt.cache_hits,
        pt.cache_misses,
        pt.prefix_hits,
    ) != (
        st.runs,
        st.shots,
        st.cache_hits,
        st.cache_misses,
        st.prefix_hits,
    ) {
        return Err("sweep telemetry diverges between parallel and serial".to_string());
    }
    Ok(format!(
        "psweep smoke: {} points bit-identical across policies ({} pool tasks, {} steals)",
        parallel.len(),
        pt.pool_tasks,
        pt.pool_steals
    ))
}

/// `--quick` also smokes the sequential shot plan: a clear-cut seeded
/// sweep under `ShotPlan::Sequential` must reach the same verdict at
/// every point as the full fixed budget while spending meaningfully
/// fewer shots, and must reproduce itself bit-for-bit across sweep
/// policies. The end-to-end CI twin of the `esweep_throughput` gate
/// (exit 3 on divergence).
fn esweep_smoke() -> Result<String, String> {
    use qassert::{
        AssertingCircuit, AssertionSession, FilterPolicy, Parity, ShotPlan, StopReason, SweepPolicy,
    };
    // Alternating clear-cut points: correct Even-parity bell assertions
    // (noise-level firing → Holds) and structurally violated Odd ones
    // (every shot fires → Violated).
    let circuits = || -> Vec<AssertingCircuit> {
        (0..16)
            .map(|i| {
                let mut ac = AssertingCircuit::new(qcircuit::library::bell());
                let parity = if i % 2 == 0 {
                    Parity::Even
                } else {
                    Parity::Odd
                };
                ac.assert_entangled([0, 1], parity).expect("valid");
                ac.measure_data();
                ac
            })
            .collect()
    };
    let noise = qnoise::presets::uniform(3, 0.005, 0.02, 0.01).expect("valid noise");
    let proto = qsim::TrajectoryBackend::new(noise);
    let plan = ShotPlan::Sequential {
        alpha: 0.05,
        min_shots: 64,
        max_shots: 2048,
        tranche: 64,
    };
    let run = |plan: ShotPlan, policy: SweepPolicy| {
        AssertionSession::new(&proto)
            .private_cache(32)
            .filter_policy(FilterPolicy::AllowEmpty)
            .shot_plan(plan)
            .threads(2)
            .seed(11)
            .sweep_policy(policy)
            .run_sweep(circuits())
            .map_err(|e| e.to_string())
    };
    let sequential = run(plan, SweepPolicy::Serial)?;
    let replay = run(plan, SweepPolicy::Parallel)?;
    let fixed = run(ShotPlan::Fixed(2048), SweepPolicy::Serial)?;
    for ((s, r), f) in sequential.iter().zip(replay.iter()).zip(fixed.iter()) {
        let p = s.index();
        if s.outcome().raw.counts != r.outcome().raw.counts
            || s.shots_used() != r.shots_used()
            || s.stop() != r.stop()
        {
            return Err(format!("sequential point {p} is not policy-reproducible"));
        }
        if s.stop() != StopReason::Decided {
            return Err(format!("clear-cut point {p} failed to stop early"));
        }
        for (sv, fv) in s.verdicts().iter().zip(f.verdicts()) {
            if sv.verdict != fv.verdict {
                return Err(format!(
                    "point {p}: sequential verdict {:?} != fixed verdict {:?}",
                    sv.verdict, fv.verdict
                ));
            }
        }
    }
    let (used, budget) = (sequential.shots_used(), fixed.shots_used());
    if used * 4 > budget {
        return Err(format!(
            "sequential plan saved too little: {used} of {budget} shots"
        ));
    }
    Ok(format!(
        "esweep smoke: verdicts match fixed plan, {used} of {budget} shots spent \
         ({:.1}x saved), {} early stops",
        budget as f64 / used as f64,
        sequential.telemetry.early_stops
    ))
}

/// `--quick` also smokes the stabilizer tableau backend at the scale
/// it exists for: a 1,024-qubit assertion-instrumented GHZ parity run
/// through the full `AssertionSession` machinery must hold its verdict
/// and stop early, and at small n the tableau's counts must agree with
/// the exact distribution. The end-to-end CI twin of the
/// `stabilizer_equivalence` suite and the `stab_throughput` gate (exit
/// 3 on divergence).
fn stabilizer_smoke() -> Result<String, String> {
    use qassert::{AssertingCircuit, AssertionSession, AssertionVerdict, Parity, ShotPlan};
    use qsim::Backend;

    // The scale leg: GHZ(1024) with an even-parity assertion between
    // the end qubits (1,025 qubits instrumented).
    let mut big = AssertingCircuit::new(qcircuit::library::ghz(1024));
    big.assert_entangled([0, 1023], Parity::Even)
        .expect("valid assertion");
    let session = AssertionSession::new(qsim::StabilizerBackend::ideal())
        .private_cache(4)
        .shot_plan(ShotPlan::Sequential {
            alpha: 0.05,
            min_shots: 64,
            max_shots: 2048,
            tranche: 64,
        })
        .seed(7)
        .threads(2);
    let outcome = session.run(&big).map_err(|e| e.to_string())?;
    if outcome.verdicts[0].verdict != AssertionVerdict::Holds {
        return Err(format!(
            "1024-qubit ghz parity verdict {:?}, expected Holds",
            outcome.verdicts[0].verdict
        ));
    }
    if outcome.plan.shots_used >= 2048 {
        return Err("1024-qubit clear-cut run failed to stop early".to_string());
    }
    let record = session.record();

    // The small-n cross-check: stabilizer counts vs the exact
    // distribution on a mid-measure Clifford workload.
    let mut small = qcircuit::QuantumCircuit::new(5, 5);
    small.h(0).expect("valid");
    for q in 0..4 {
        small.cx(q, q + 1).expect("valid");
    }
    small.measure(0, 0).expect("valid");
    small.s(1).expect("valid");
    small.sdg(1).expect("valid");
    small.measure_all();
    let stab = qsim::StabilizerBackend::ideal().with_seed(5);
    let counts = stab.run(&small, 8192).map_err(|e| e.to_string())?.counts;
    let exact = qsim::DensityMatrixBackend::ideal()
        .exact_distribution(&small)
        .map_err(|e| e.to_string())?;
    let tvd: f64 = (0..32u64)
        .map(|k| (counts.probability(k) - exact.probability(k)).abs() / 2.0)
        .sum();
    if tvd > 0.02 {
        return Err(format!(
            "stabilizer counts diverge from exact distribution: tvd {tvd:.4}"
        ));
    }
    Ok(format!(
        "stabilizer smoke: {} backend at {} qubits, verdict Holds after {} of 2048 \
         shots, small-n tvd {tvd:.4}",
        record.backend_kind, record.max_qubits, outcome.plan.shots_used
    ))
}

/// `--quick` also smokes hybrid Clifford routing on the workload it
/// exists for: an assertion-instrumented Clifford-dominated circuit
/// with a non-Clifford island run through the full `AssertionSession`
/// machinery must hold its verdict, and at small n a routed program
/// (profitable plan asserted) must agree with the exact distribution.
/// The end-to-end CI twin of the `hybrid_equivalence` suite and the
/// `hybrid_throughput` gate (exit 3 on divergence).
fn hybrid_smoke() -> Result<String, String> {
    use qassert::{AssertingCircuit, AssertionSession, AssertionVerdict, Parity, ShotPlan};
    use qsim::Backend;

    // The session leg: GHZ(12) with Clifford padding and a T·T† island
    // (identity, so the parity assertion must still hold), instrumented
    // and run end to end on the hybrid backend.
    let mut base = qcircuit::library::ghz(12);
    for q in 0..12 {
        base.s(q).expect("valid");
        base.sdg(q).expect("valid");
    }
    base.t(0).expect("valid");
    base.tdg(0).expect("valid");
    let mut asserted = AssertingCircuit::new(base);
    asserted
        .assert_entangled([0, 11], Parity::Even)
        .expect("valid assertion");
    let session = AssertionSession::new(qsim::HybridBackend::ideal())
        .shot_plan(ShotPlan::Fixed(512))
        .seed(7)
        .threads(2);
    let outcome = session.run(&asserted).map_err(|e| e.to_string())?;
    if outcome.verdicts[0].verdict != AssertionVerdict::Holds {
        return Err(format!(
            "ghz parity verdict through the hybrid backend: {:?}, expected Holds",
            outcome.verdicts[0].verdict
        ));
    }
    let record = session.record();

    // The small-n cross-check: a circuit the cost model must actually
    // route (profitable plan asserted, so this cannot silently test the
    // statevector fallback), sampled against the exact distribution.
    let n = 10;
    let mut small = qcircuit::QuantumCircuit::new(n, 3);
    small.h(0).expect("valid");
    for q in 0..n - 1 {
        small.cx(q, q + 1).expect("valid");
    }
    for q in 0..n {
        small.s(q).expect("valid");
        small.sdg(q).expect("valid");
    }
    small.t(0).expect("valid");
    small.h(0).expect("valid");
    for q in 0..3 {
        small.measure(q, q).expect("valid");
    }
    let hybrid = qsim::HybridBackend::ideal();
    let program = hybrid.compile(&small).map_err(|e| e.to_string())?;
    let plan = program
        .hybrid()
        .ok_or("no clifford prefix recorded on the routed workload")?;
    if !plan.profitable() {
        return Err(format!(
            "{}-op clifford prefix judged unprofitable at n={n}",
            plan.prefix().ops().len()
        ));
    }
    let counts = hybrid
        .run_compiled_seeded(&program, 8192, Some(5), Some(2))
        .map_err(|e| e.to_string())?
        .counts;
    let exact = qsim::DensityMatrixBackend::ideal()
        .exact_distribution(&small)
        .map_err(|e| e.to_string())?;
    let tvd: f64 = (0..8u64)
        .map(|k| (counts.probability(k) - exact.probability(k)).abs() / 2.0)
        .sum();
    if tvd > 0.03 {
        return Err(format!(
            "routed counts diverge from exact distribution: tvd {tvd:.4}"
        ));
    }
    Ok(format!(
        "hybrid smoke: {} backend, verdict Holds through the session, routed \
         small-n plan cuts at instruction {} ({}-op tableau prefix), tvd {tvd:.4}",
        record.backend_kind,
        plan.boundary(),
        plan.prefix().ops().len()
    ))
}

/// `--quick` also smokes the assertion service end to end: an
/// in-process `qassert-serve` server on an ephemeral loopback port, an
/// instrumented GHZ job submitted over real HTTP, and the streamed
/// NDJSON verdict/counts/plan records compared **bit-identical** to
/// the same spec executed directly through `AssertionSession` — the CI
/// twin of the `serve_throughput` gate and `examples/serve_client.rs`
/// (exit 3 on divergence).
fn serve_smoke() -> Result<String, String> {
    use qassert::AssertionSession;
    use qassert_serve::json::Value;
    use qassert_serve::protocol::outcome_records;
    use qassert_serve::{client, JobSpec, Server, ServerConfig};

    let body =
        "{\"qasm\": \"OPENQASM 2.0;\\nqreg q[3];\\nh q[0];\\ncx q[0],q[1];\\ncx q[1],q[2];\\n\", \
                \"seed\": 7, \"plan\": {\"fixed\": 512}, \
                \"assertions\": [ \
                  {\"kind\": \"entangled\", \"qubits\": [0, 1, 2], \"parity\": \"even\"}, \
                  {\"kind\": \"superposition\", \"qubit\": 0} ]}";

    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        job_workers: 2,
        conn_workers: 4,
        queue_capacity: 8,
        ..ServerConfig::default()
    })
    .map_err(|e| format!("server start: {e}"))?;
    let response =
        client::post_job(server.addr(), "repro", body).map_err(|e| format!("wire job: {e}"))?;
    if response.status != 200 {
        return Err(format!(
            "wire job failed: status {} body {}",
            response.status, response.body
        ));
    }
    let wire: Vec<&str> = response
        .ndjson_lines()
        .into_iter()
        .filter(|l| !l.contains("\"type\":\"telemetry\""))
        .collect();
    server.shutdown();

    let spec = JobSpec::from_json(body).map_err(|e| format!("spec: {}", e.message))?;
    let circuit = spec
        .build_circuit()
        .map_err(|e| format!("circuit: {}", e.message))?;
    let session = AssertionSession::new(qsim::StatevectorBackend::new())
        .seed(7)
        .shot_plan(spec.plan);
    let outcome = session.run(&circuit).map_err(|e| e.to_string())?;
    let direct: Vec<String> = outcome_records(&outcome, circuit.records())
        .iter()
        .map(Value::render)
        .collect();
    if wire != direct {
        return Err(format!(
            "wire records diverge from the direct session\n  wire:   {wire:?}\n  direct: {direct:?}"
        ));
    }
    Ok(format!(
        "serve smoke: {} NDJSON records over loopback HTTP, bit-identical to the \
         direct session",
        wire.len()
    ))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    if args.iter().any(|a| a == "--list") {
        for (id, description, _) in registry() {
            println!("{id:<10} {description}");
        }
        return;
    }

    let quick = args.iter().any(|a| a == "--quick");

    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1).cloned());

    let mut selected: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .filter(|a| json_path.as_deref() != Some(a.as_str()))
        .cloned()
        .collect();
    if quick && selected.is_empty() {
        selected = QUICK_IDS.iter().map(|s| s.to_string()).collect();
    }
    if quick {
        // The batched hot path is part of the CI smoke gate.
        match batch_smoke() {
            Ok(summary) => println!("{summary}"),
            Err(why) => {
                eprintln!("batch smoke FAILED: {why}");
                std::process::exit(3);
            }
        }
        // So is scalar-vs-vector bit-identity of the SIMD kernels.
        match simd_smoke() {
            Ok(summary) => println!("{summary}"),
            Err(why) => {
                eprintln!("simd smoke FAILED: {why}");
                std::process::exit(3);
            }
        }
        // So is parallel-sweep bit-identity.
        match psweep_smoke() {
            Ok(summary) => println!("{summary}"),
            Err(why) => {
                eprintln!("psweep smoke FAILED: {why}");
                std::process::exit(3);
            }
        }
        // And sequential-plan early termination.
        match esweep_smoke() {
            Ok(summary) => println!("{summary}"),
            Err(why) => {
                eprintln!("esweep smoke FAILED: {why}");
                std::process::exit(3);
            }
        }
        // And the stabilizer tableau backend at scale.
        match stabilizer_smoke() {
            Ok(summary) => println!("{summary}"),
            Err(why) => {
                eprintln!("stabilizer smoke FAILED: {why}");
                std::process::exit(3);
            }
        }
        // And hybrid Clifford routing end to end.
        match hybrid_smoke() {
            Ok(summary) => println!("{summary}"),
            Err(why) => {
                eprintln!("hybrid smoke FAILED: {why}");
                std::process::exit(3);
            }
        }
        // And the assertion service over real loopback HTTP.
        match serve_smoke() {
            Ok(summary) => println!("{summary}"),
            Err(why) => {
                eprintln!("serve smoke FAILED: {why}");
                std::process::exit(3);
            }
        }
    }

    let mut reports = Vec::new();
    if selected.is_empty() {
        for (id, _, runner) in registry() {
            eprintln!("running {id} ...");
            reports.push(runner());
        }
    } else {
        for id in &selected {
            match run_by_id(id) {
                Some(report) => reports.push(report),
                None => {
                    eprintln!("unknown experiment '{id}'; use --list to see ids");
                    std::process::exit(2);
                }
            }
        }
    }

    for report in &reports {
        println!("{}", report.render());
    }

    let diverging: Vec<String> = reports
        .iter()
        .flat_map(|r| {
            r.comparisons
                .iter()
                .filter(|c| !c.shape_holds())
                .map(move |c| format!("{}: {}", r.id, c.metric))
        })
        .collect();
    // Export before any gate exit so a diverging --quick run still
    // leaves the JSON evidence behind.
    if let Some(path) = json_path {
        let body: Vec<String> = reports.iter().map(|r| r.to_json()).collect();
        let json = format!("[{}]", body.join(","));
        std::fs::write(&path, json).unwrap_or_else(|e| {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        });
        println!("wrote {path}");
    }

    if diverging.is_empty() {
        println!("all paper-vs-measured shapes hold.");
    } else {
        println!("DIVERGING metrics:");
        for d in &diverging {
            println!("  {d}");
        }
        if quick {
            // --quick is the CI smoke gate: a diverging shape fails it.
            std::process::exit(3);
        }
    }
}
