//! Experiment harness regenerating every table and figure of the paper.
//!
//! Each experiment in [`experiments`] builds the paper's circuit with the
//! public `qassert` API, runs it on the appropriate backend (ideal
//! state-vector for the QUIRK figures, exact-density `ibmqx4` model for
//! the hardware tables), and emits an [`qassert::ExperimentReport`] with
//! paper-vs-measured comparisons.
//!
//! Run everything with:
//!
//! ```text
//! cargo run -p qassert-bench --bin repro            # all experiments
//! cargo run -p qassert-bench --bin repro -- table1  # one experiment
//! ```

pub mod experiments;
pub mod harness;
pub mod workloads;

use qassert::ExperimentReport;

/// One registry entry: `(id, description, runner)`.
pub type Experiment = (&'static str, &'static str, fn() -> ExperimentReport);

/// The experiment registry: `(id, description, runner)`.
///
/// Ids match the per-experiment index in `DESIGN.md`.
pub fn registry() -> Vec<Experiment> {
    vec![
        (
            "fig6",
            "Fig. 6 — classical assertion verified on the ideal simulator (QUIRK substitute)",
            experiments::fig6::run,
        ),
        (
            "table1",
            "Table 1 — classical assertion on the ibmqx4 noise model",
            experiments::table1::run,
        ),
        (
            "table2",
            "Table 2 — entanglement assertion on the ibmqx4 noise model",
            experiments::table2::run,
        ),
        (
            "fig7",
            "Fig. 7 — superposition assertion verified on the ideal simulator",
            experiments::fig7::run,
        ),
        (
            "sec43",
            "Sec. 4.3 — superposition assertion on the ibmqx4 noise model",
            experiments::sec43::run,
        ),
        (
            "theory",
            "Sec. 3 proofs — measured ancilla statistics vs closed forms over an input sweep",
            experiments::theory_sweep::run,
        ),
        (
            "ablation",
            "Fig. 4 ablation — even vs odd CNOT parity, and strong (pairwise) assertion coverage",
            experiments::ablation::run,
        ),
        (
            "baseline",
            "Baseline — dynamic assertions vs statistical assertions (Huang & Martonosi)",
            experiments::baseline::run,
        ),
        (
            "sweep",
            "Noise sweep — error-rate reduction from filtering vs device noise scale",
            experiments::noise_sweep::run,
        ),
        (
            "mitigation",
            "Extension — assertion filtering vs readout mitigation vs both",
            experiments::mitigation::run,
        ),
        (
            "placement",
            "Extension — ancilla placement cost on ibmqx4 (the paper's 'we used q2' remark)",
            experiments::placement::run,
        ),
    ]
}

/// Runs one experiment by id.
pub fn run_by_id(id: &str) -> Option<ExperimentReport> {
    registry()
        .into_iter()
        .find(|(eid, _, _)| *eid == id)
        .map(|(_, _, f)| f())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique() {
        let mut ids: Vec<&str> = registry().iter().map(|(id, _, _)| *id).collect();
        let before = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), before);
    }

    #[test]
    fn unknown_id_returns_none() {
        assert!(run_by_id("nonsense").is_none());
    }
}
