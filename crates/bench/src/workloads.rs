//! Shared benchmark/smoke workload builders.
//!
//! The batched-apply surfaces (the `batch_throughput` bench and
//! `repro --quick`'s batch smoke) exercise the same shape — a wide
//! shallow instrumented circuit under readout-only noise — so there is
//! exactly one definition of it here.

use qassert::{AssertingCircuit, Parity};

/// The wide shallow instrumented circuit the batch planner exists for:
/// `rounds` repetitions of a full-width 1q layer followed by a disjoint
/// CX layer (offset every other round so columns cannot fuse away), an
/// entanglement assertion, and full data measurement.
pub fn wide_instrumented(qubits: usize, rounds: usize) -> AssertingCircuit {
    let mut prep = qcircuit::QuantumCircuit::new(qubits, 0);
    for round in 0..rounds {
        for q in 0..qubits {
            match (q + round) % 4 {
                0 => prep.h(q).expect("in range"),
                1 => prep.t(q).expect("in range"),
                2 => prep.s(q).expect("in range"),
                _ => prep.x(q).expect("in range"),
            };
        }
        let mut a = round % 2;
        while a + 1 < qubits {
            prep.cx(a, a + 1).expect("in range");
            a += 2;
        }
    }
    let mut ac = AssertingCircuit::new(prep);
    ac.assert_entangled([0, 1], Parity::Even)
        .expect("valid assertion targets");
    ac.measure_data();
    ac
}

/// Readout-only noise over `qubits` data qubits plus one assertion
/// ancilla: gates stay ideal (and batchable), measurements sample per
/// shot — the Table-1 execution shape without a sample-once escape
/// hatch.
pub fn readout_noise(qubits: usize) -> qnoise::NoiseModel {
    let mut model = qnoise::NoiseModel::new();
    for q in 0..qubits + 1 {
        model.with_readout_error(
            q,
            qnoise::ReadoutError::new(0.02, 0.01).expect("valid rates"),
        );
    }
    model
}
