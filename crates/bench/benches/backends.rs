//! Backend comparison: exact density-matrix executor vs Monte-Carlo
//! trajectory sampling (single- and multi-threaded) on the paper's
//! Table-2 workload.

use criterion::{criterion_group, criterion_main, Criterion};
use qassert::{AssertingCircuit, Parity};
use qcircuit::library;
use qsim::{Backend, DensityMatrixBackend, TrajectoryBackend};

fn table2_circuit() -> qcircuit::QuantumCircuit {
    let mut ac = AssertingCircuit::new(library::bell());
    ac.assert_entangled([0, 1], Parity::Even).unwrap();
    ac.measure_data();
    ac.circuit().clone()
}

fn bench_backends(c: &mut Criterion) {
    let circuit = table2_circuit();
    let noise = qnoise::presets::ibmqx4();

    let mut group = c.benchmark_group("table2_1024_shots");
    group.sample_size(10);

    group.bench_function("density_exact", |b| {
        let backend = DensityMatrixBackend::new(noise.clone());
        b.iter(|| std::hint::black_box(backend.run(&circuit, 1024).unwrap().counts.total()));
    });
    group.bench_function("trajectory_1_thread", |b| {
        let backend = TrajectoryBackend::new(noise.clone()).with_seed(1);
        b.iter(|| std::hint::black_box(backend.run(&circuit, 1024).unwrap().counts.total()));
    });
    group.bench_function("trajectory_4_threads", |b| {
        let backend = TrajectoryBackend::new(noise.clone())
            .with_seed(1)
            .with_threads(4);
        b.iter(|| std::hint::black_box(backend.run(&circuit, 1024).unwrap().counts.total()));
    });
    group.finish();
}

fn bench_exact_distribution(c: &mut Criterion) {
    let circuit = table2_circuit();
    let noise = qnoise::presets::ibmqx4();
    c.bench_function("table2_exact_distribution", |b| {
        let backend = DensityMatrixBackend::new(noise.clone());
        b.iter(|| {
            std::hint::black_box(backend.exact_distribution(&circuit).unwrap().outcomes.len())
        });
    });
}

criterion_group!(benches, bench_backends, bench_exact_distribution);
criterion_main!(benches);
