//! Assertion-service throughput: an in-process `qassert-serve`
//! [`Server`] on a loopback ephemeral port, driven by a concurrent
//! load generator issuing a **mixed job set** — statevector GHZ jobs
//! with entanglement + superposition assertions, a sequential-plan
//! superposition job, and a Clifford Bell job on the stabilizer
//! backend — through the crate's own blocking HTTP client, so every
//! timed request pays the full wire cost: connect, HTTP parse, JSON
//! decode, QASM parse, admission, session execution over the shared
//! cache/prefix registry, and chunked NDJSON streaming.
//!
//! Correctness before speed, asserted before any number is reported
//! (exit 2): for every distinct job in the mix, the NDJSON verdict,
//! counts, and plan records fetched over the wire must be
//! **bit-identical** to the same spec executed directly through
//! [`AssertionSession`] with the same seed and plan.
//!
//! Results go to `BENCH_serve.json` (override with `--out`);
//! `--check <baseline.json>` turns the run into a CI gate:
//!
//! * sustained throughput must clear the baseline's `min_jobs_per_sec`
//!   derated by `BENCH_TOLERANCE_PCT` (default 25%) for slower
//!   runners, and
//! * p99 request latency must stay under `max_p99_ms` widened by the
//!   same tolerance.
//!
//! ```text
//! cargo bench -p qassert-bench --bench serve_throughput -- --quick --check
//! ```

use qassert::AssertionSession;
use qassert_serve::json::Value;
use qassert_serve::protocol::outcome_records;
use qassert_serve::{client, JobSpec, Server, ServerConfig};
use qsim::{BackendKind, StabilizerBackend, StatevectorBackend};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

struct Config {
    mode: &'static str,
    jobs: usize,
    clients: usize,
}

const GHZ_QASM: &str = "OPENQASM 2.0;\\nqreg q[3];\\nh q[0];\\ncx q[0],q[1];\\ncx q[1],q[2];\\n";
const BELL_QASM: &str = "OPENQASM 2.0;\\nqreg q[2];\\nh q[0];\\ncx q[0],q[1];\\n";
const PLUS_QASM: &str = "OPENQASM 2.0;\\nqreg q[1];\\nh q[0];\\n";

/// The mixed job set: amplitude and tableau backends, fixed and
/// sequential plans, all seeded so wire-vs-direct parity is exact.
fn job_mix() -> Vec<String> {
    vec![
        format!(
            "{{\"qasm\": \"{GHZ_QASM}\", \"seed\": 11, \"plan\": {{\"fixed\": 256}}, \
             \"assertions\": [ \
               {{\"kind\": \"entangled\", \"qubits\": [0, 1, 2], \"parity\": \"even\"}}, \
               {{\"kind\": \"superposition\", \"qubit\": 0}} ]}}"
        ),
        format!(
            "{{\"qasm\": \"{BELL_QASM}\", \"backend\": \"stabilizer\", \"seed\": 13, \
             \"plan\": {{\"fixed\": 512}}, \
             \"assertions\": [ \
               {{\"kind\": \"entangled\", \"qubits\": [0, 1], \"parity\": \"even\"}} ]}}"
        ),
        format!(
            "{{\"qasm\": \"{PLUS_QASM}\", \"seed\": 17, \
             \"plan\": {{\"sequential\": {{\"alpha\": 0.05, \"min_shots\": 64, \
             \"max_shots\": 1024, \"tranche\": 64}}}}, \
             \"assertions\": [ \
               {{\"kind\": \"superposition\", \"qubit\": 0, \"basis\": \"plus\"}} ]}}"
        ),
    ]
}

/// Renders the direct-session record stream for `body` — the parity
/// reference the wire response must match byte for byte (telemetry
/// trailer excluded: it carries live server gauges).
fn direct_lines(body: &str) -> Vec<String> {
    let spec = JobSpec::from_json(body).expect("bench job parses");
    let circuit = spec.build_circuit().expect("bench job builds");
    let run = |spec: &JobSpec| match spec.backend {
        BackendKind::Stabilizer => {
            let session = AssertionSession::new(StabilizerBackend::ideal())
                .seed(spec.seed.expect("seeded"))
                .shot_plan(spec.plan)
                .filter_policy(spec.filter);
            session.run(&circuit).expect("direct run")
        }
        _ => {
            let session = AssertionSession::new(StatevectorBackend::new())
                .seed(spec.seed.expect("seeded"))
                .shot_plan(spec.plan)
                .filter_policy(spec.filter);
            session.run(&circuit).expect("direct run")
        }
    };
    let outcome = run(&spec);
    outcome_records(&outcome, circuit.records())
        .iter()
        .map(Value::render)
        .collect()
}

fn wire_lines(addr: SocketAddr, body: &str) -> Vec<String> {
    let response = client::post_job(addr, "bench", body).expect("wire job");
    assert_eq!(response.status, 200, "wire job failed: {}", response.body);
    response
        .ndjson_lines()
        .into_iter()
        .filter(|l| !l.contains("\"type\":\"telemetry\""))
        .map(str::to_string)
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| qassert_bench::harness::flag(&args, name);
    let value_of = |name: &str| qassert_bench::harness::value_of(&args, name);
    let json_number_field = qassert_bench::harness::json_number_field;

    let quick = flag("--quick");
    let cfg = if quick {
        Config {
            mode: "quick",
            jobs: 240,
            clients: 4,
        }
    } else {
        Config {
            mode: "full",
            jobs: 2_400,
            clients: 8,
        }
    };
    let out_path = value_of("--out").unwrap_or_else(|| "BENCH_serve.json".to_string());
    let check_path = match (flag("--check"), value_of("--check")) {
        (true, Some(path)) => Some(path),
        (true, None) => {
            Some(concat!(env!("CARGO_MANIFEST_DIR"), "/serve_baseline.json").to_string())
        }
        (false, _) => None,
    };

    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        job_workers: cfg.clients,
        conn_workers: 2 * cfg.clients,
        queue_capacity: 4 * cfg.clients,
        ..ServerConfig::default()
    })
    .expect("server starts");
    let addr = server.addr();
    let mix = job_mix();

    // Correctness before speed: wire records must be bit-identical to
    // the direct session for every job in the mix.
    for (i, body) in mix.iter().enumerate() {
        let wire = wire_lines(addr, body);
        let direct = direct_lines(body);
        if wire != direct {
            eprintln!(
                "SERVE PARITY BROKEN: job {i} wire records differ from the direct \
                 session\n  wire:   {wire:?}\n  direct: {direct:?}"
            );
            std::process::exit(2);
        }
    }

    // Warm the shared cache/registry and the connection path.
    for body in &mix {
        let _ = wire_lines(addr, body);
    }

    // The load generator: `clients` threads pull job indices from one
    // shared counter and record per-request wall time.
    let next = AtomicUsize::new(0);
    let started = Instant::now();
    let latencies: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.clients)
            .map(|_| {
                let next = &next;
                let mix = &mix;
                scope.spawn(move || {
                    let mut mine = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= cfg.jobs {
                            return mine;
                        }
                        let body = &mix[i % mix.len()];
                        let t0 = Instant::now();
                        let response = client::post_job(addr, "bench", body).expect("load job");
                        assert_eq!(response.status, 200, "load job failed");
                        mine.push(t0.elapsed().as_secs_f64() * 1e3);
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    let elapsed = started.elapsed().as_secs_f64();
    server.shutdown();

    assert_eq!(latencies.len(), cfg.jobs);
    let jobs_per_sec = cfg.jobs as f64 / elapsed;
    let mut sorted = latencies.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let pct =
        |p: f64| sorted[(((sorted.len() as f64) * p).ceil() as usize - 1).min(sorted.len() - 1)];
    let p50_ms = pct(0.50);
    let p99_ms = pct(0.99);

    println!(
        "serve_throughput [{}]: {} mixed jobs over {} loopback clients \
         ({} job workers)",
        cfg.mode, cfg.jobs, cfg.clients, cfg.clients,
    );
    println!(
        "  throughput: {jobs_per_sec:>8.1} jobs/s   p50 {p50_ms:>7.2} ms   \
         p99 {p99_ms:>7.2} ms"
    );

    let json = format!(
        "{{\"bench\":\"serve_throughput\",\"mode\":\"{}\",\"jobs\":{},\"clients\":{},\
         \"jobs_per_sec\":{:.1},\"p50_ms\":{:.3},\"p99_ms\":{:.3},\"parity\":true}}",
        cfg.mode, cfg.jobs, cfg.clients, jobs_per_sec, p50_ms, p99_ms,
    );
    std::fs::write(&out_path, &json).unwrap_or_else(|e| {
        eprintln!("failed to write {out_path}: {e}");
        std::process::exit(1);
    });
    println!("  wrote {out_path}");

    if let Some(baseline_path) = check_path {
        let tolerance_pct: f64 = std::env::var("BENCH_TOLERANCE_PCT")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(25.0);
        let baseline = std::fs::read_to_string(&baseline_path).unwrap_or_else(|e| {
            eprintln!("failed to read baseline {baseline_path}: {e}");
            std::process::exit(1);
        });
        let min_jobs = json_number_field(&baseline, "min_jobs_per_sec").unwrap_or_else(|| {
            eprintln!("baseline {baseline_path} has no min_jobs_per_sec field");
            std::process::exit(1);
        });
        let max_p99 = json_number_field(&baseline, "max_p99_ms").unwrap_or_else(|| {
            eprintln!("baseline {baseline_path} has no max_p99_ms field");
            std::process::exit(1);
        });
        // Derate both gates for runners slower than the baseline host.
        let jobs_floor = min_jobs / (1.0 + tolerance_pct / 100.0);
        let p99_limit = max_p99 * (1.0 + tolerance_pct / 100.0);
        println!(
            "  throughput gate: {jobs_per_sec:.1} jobs/s vs floor {jobs_floor:.1} \
             (baseline {min_jobs:.1}, -{tolerance_pct}%)"
        );
        if jobs_per_sec < jobs_floor {
            eprintln!(
                "PERF REGRESSION: serve throughput {jobs_per_sec:.1} jobs/s is below \
                 the derated floor {jobs_floor:.1} jobs/s"
            );
            std::process::exit(4);
        }
        println!(
            "  p99 gate: {p99_ms:.2} ms vs limit {p99_limit:.2} \
             (baseline {max_p99:.2}, +{tolerance_pct}%)"
        );
        if p99_ms > p99_limit {
            eprintln!(
                "PERF REGRESSION: serve p99 latency {p99_ms:.2} ms exceeds the widened \
                 limit {p99_limit:.2} ms"
            );
            std::process::exit(4);
        }
        println!("  gates: ok");
    }
}
