//! Transpiler performance: full pipeline onto `ibmqx4` and the
//! individual passes on representative workloads.

use criterion::{criterion_group, criterion_main, Criterion};
use qcircuit::library;
use qdevice::transpile::{transpile, DecomposePass, OptimizePass, Pass};

fn bench_full_pipeline(c: &mut Criterion) {
    let topo = qdevice::presets::ibmqx4();
    let mut group = c.benchmark_group("transpile_ibmqx4");
    group.sample_size(30);
    for (name, circuit) in [
        ("bell", library::bell()),
        ("ghz5", library::ghz(5)),
        ("qft4", library::qft(4)),
        ("grover3", library::grover(3, 0b101, 2)),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| std::hint::black_box(transpile(&circuit, &topo).unwrap().circuit.len()));
        });
    }
    group.finish();
}

fn bench_passes(c: &mut Criterion) {
    c.bench_function("decompose_grover3", |b| {
        let circuit = library::grover(3, 0b011, 2);
        b.iter(|| std::hint::black_box(DecomposePass.run(&circuit).unwrap().len()));
    });
    c.bench_function("optimize_cancellation_chain", |b| {
        // A circuit with many adjacent cancelling pairs.
        let mut circuit = qcircuit::QuantumCircuit::new(4, 0);
        for _ in 0..32 {
            circuit.h(0).unwrap().h(0).unwrap();
            circuit.cx(0, 1).unwrap().cx(0, 1).unwrap();
            circuit.s(2).unwrap().sdg(2).unwrap();
            circuit.rz(0.25, 3).unwrap().rz(-0.25, 3).unwrap();
        }
        b.iter(|| std::hint::black_box(OptimizePass.run(&circuit).unwrap().len()));
    });
}

criterion_group!(benches, bench_full_pipeline, bench_passes);
criterion_main!(benches);
