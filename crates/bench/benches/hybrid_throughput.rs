//! Hybrid Clifford-routing throughput: `HybridBackend` (tableau
//! prefix, amplitude handoff at the first non-Clifford island) vs the
//! pure per-shot statevector path on the workload the router exists
//! for — a Clifford-dominated circuit with a small T island near the
//! end.
//!
//! The workload is a 12-qubit circuit of H/CX/S layer rounds with one
//! mid-circuit measurement (fast-path defeating, and it proves clbits
//! survive the handoff), a two-op T island, and a 4-qubit readout. The
//! statevector replays every prefix layer over all 4,096 amplitudes per
//! shot; the hybrid backend runs the prefix on the `O(n²)`-bit tableau
//! and only touches amplitudes from the island on.
//!
//! Correctness before speed, asserted before any number is reported
//! (exit 2):
//!
//! * the compiled program carries a **profitable** hybrid plan (the
//!   routed path is actually exercised, not the fallback);
//! * hybrid counts land within TVD 0.03 of the same-seed statevector
//!   sample (both 8,192-shot empirical distributions over 16 keys);
//! * seeded hybrid runs are bit-reproducible call-to-call.
//!
//! Results go to `BENCH_hybrid.json` (override with `--out`);
//! `--check <baseline.json>` turns the run into a CI gate on the
//! same-run **hybrid-vs-statevector per-shot speedup**, which must
//! clear the baseline's `min_speedup`. Both paths are timed in the
//! same process on the same machine, so the floor needs no per-host
//! derating.
//!
//! ```text
//! cargo bench -p qassert-bench --bench hybrid_throughput -- --quick --check
//! ```

use qcircuit::QuantumCircuit;
use qsim::{Backend, HybridBackend, StatevectorBackend};
use std::time::Instant;

struct Config {
    mode: &'static str,
    shots: u64,
}

/// The routed workload: `rounds` H/CX/S Clifford layers over `n`
/// qubits with one mid-circuit measurement, then a two-op T island and
/// a 4-qubit readout (narrow readout keeps the TVD probe's outcome
/// space small).
fn clifford_dominated(n: usize, rounds: usize) -> QuantumCircuit {
    let mut c = QuantumCircuit::new(n, 4);
    for r in 0..rounds {
        for q in 0..n {
            c.h(q).expect("valid qubit");
        }
        for q in 0..n - 1 {
            c.cx(q, q + 1).expect("valid qubits");
        }
        for q in 0..n {
            c.s(q).expect("valid qubit");
        }
        if r == 0 {
            c.measure(0, 0).expect("valid measurement"); // defeats the fast path
        }
    }
    c.t(0).expect("valid qubit"); // the island
    c.t(1).expect("valid qubit");
    for q in 0..4 {
        c.measure(q, q).expect("valid measurement");
    }
    c
}

/// Times `shots` seeded shots of `program` on `backend`, returning
/// (seconds, counts).
fn run_timed<B: Backend>(
    backend: &B,
    program: &qsim::CompiledProgram,
    shots: u64,
) -> (f64, qsim::Counts) {
    let start = Instant::now();
    let result = backend
        .run_compiled_seeded(program, shots, Some(7), Some(1))
        .expect("workload runs");
    (start.elapsed().as_secs_f64(), result.counts)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| qassert_bench::harness::flag(&args, name);
    let value_of = |name: &str| qassert_bench::harness::value_of(&args, name);
    let json_number_field = qassert_bench::harness::json_number_field;

    let quick = flag("--quick");
    let cfg = if quick {
        Config {
            mode: "quick",
            shots: 4_000,
        }
    } else {
        Config {
            mode: "full",
            shots: 20_000,
        }
    };
    let out_path = value_of("--out").unwrap_or_else(|| "BENCH_hybrid.json".to_string());
    let check_path = match (flag("--check"), value_of("--check")) {
        (true, Some(path)) => Some(path),
        (true, None) => {
            Some(concat!(env!("CARGO_MANIFEST_DIR"), "/hybrid_baseline.json").to_string())
        }
        (false, _) => None,
    };

    let n = 12;
    let rounds = 6;
    let circuit = clifford_dominated(n, rounds);
    let hybrid = HybridBackend::ideal();
    let sv = StatevectorBackend::new();
    let program = hybrid.compile(&circuit).expect("workload compiles");

    // Correctness before speed. (a) The cost model must actually route
    // this workload — otherwise the numbers below compare the
    // statevector against itself.
    let plan = program.hybrid().unwrap_or_else(|| {
        eprintln!("HYBRID ROUTING BROKEN: no clifford prefix recorded");
        std::process::exit(2);
    });
    if !plan.profitable() {
        eprintln!(
            "HYBRID ROUTING BROKEN: {}-op clifford prefix judged unprofitable at n={n}",
            plan.prefix().ops().len()
        );
        std::process::exit(2);
    }
    // (b) Distributional parity with the statevector path (the streams
    // differ by contract, so agreement is TVD, not bit-identity).
    let probe_shots = 8_192;
    let (_, hybrid_probe) = run_timed(&hybrid, &program, probe_shots);
    let (_, sv_probe) = run_timed(&sv, &program, probe_shots);
    let tvd: f64 = (0..16u64)
        .map(|k| (hybrid_probe.probability(k) - sv_probe.probability(k)).abs() / 2.0)
        .sum();
    // (c) Seeded hybrid runs are bit-reproducible.
    let (_, once) = run_timed(&hybrid, &program, cfg.shots);
    let (_, again) = run_timed(&hybrid, &program, cfg.shots);
    let reproducible = once == again;
    if tvd > 0.03 || !reproducible {
        eprintln!(
            "HYBRID BACKEND BROKEN: tvd {tvd:.4} vs statevector (limit 0.03), \
             reproducible {reproducible}"
        );
        std::process::exit(2);
    }

    // Warm both paths, then time them on the same program.
    let _ = run_timed(&sv, &program, cfg.shots / 4);
    let _ = run_timed(&hybrid, &program, cfg.shots / 4);
    let (sv_secs, sv_counts) = run_timed(&sv, &program, cfg.shots);
    let (hybrid_secs, hybrid_counts) = run_timed(&hybrid, &program, cfg.shots);
    assert_eq!(sv_counts.total(), hybrid_counts.total());
    let sv_per_shot = sv_secs * 1e9 / cfg.shots as f64;
    let hybrid_per_shot = hybrid_secs * 1e9 / cfg.shots as f64;
    let speedup = sv_per_shot / hybrid_per_shot;

    let prefix_ops = plan.prefix().ops().len();
    println!(
        "hybrid_throughput [{}]: n={n} clifford-dominated workload ({} prefix ops, \
         boundary {}), {} shots/path",
        cfg.mode,
        prefix_ops,
        plan.boundary(),
        cfg.shots,
    );
    println!(
        "  statevector per-shot: {sv_per_shot:>10.0} ns   hybrid per-shot: \
         {hybrid_per_shot:>10.0} ns   speedup {speedup:.2}x"
    );
    println!("  tvd vs statevector {tvd:.4}");

    let json = format!(
        "{{\"bench\":\"hybrid_throughput\",\"mode\":\"{}\",\"qubits\":{n},\"shots\":{},\
         \"prefix_ops\":{prefix_ops},\"boundary\":{},\
         \"sv_per_shot_ns\":{:.0},\"hybrid_per_shot_ns\":{:.0},\"speedup\":{:.3},\
         \"tvd\":{:.5},\"reproducible\":{}}}",
        cfg.mode,
        cfg.shots,
        plan.boundary(),
        sv_per_shot,
        hybrid_per_shot,
        speedup,
        tvd,
        reproducible,
    );
    std::fs::write(&out_path, &json).unwrap_or_else(|e| {
        eprintln!("failed to write {out_path}: {e}");
        std::process::exit(1);
    });
    println!("  wrote {out_path}");

    if let Some(baseline_path) = check_path {
        let baseline = std::fs::read_to_string(&baseline_path).unwrap_or_else(|e| {
            eprintln!("failed to read baseline {baseline_path}: {e}");
            std::process::exit(1);
        });
        let min_speedup = json_number_field(&baseline, "min_speedup").unwrap_or_else(|| {
            eprintln!("baseline {baseline_path} has no min_speedup field");
            std::process::exit(1);
        });
        println!("  speedup gate: {speedup:.2}x vs required {min_speedup:.2}x");
        if speedup < min_speedup {
            eprintln!(
                "PERF REGRESSION: hybrid routing ran only {speedup:.2}x faster than the \
                 per-shot statevector path, below the {min_speedup:.2}x floor"
            );
            std::process::exit(4);
        }
        println!("  speedup gate: ok");
    }
}
