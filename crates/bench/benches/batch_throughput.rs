//! Batched-apply throughput: layer-planned blocked kernels vs per-op
//! compiled execution.
//!
//! The paper's instrumented circuits are wide and shallow — many
//! disjoint 1q/controlled ops per DAG layer. This bench builds exactly
//! that shape (alternating full-width 1q layers and disjoint CX layers,
//! assertion-instrumented, executed per-shot under readout noise so the
//! sample-once fast path stays out of the picture) and times the same
//! compiled circuit with batching on vs off:
//!
//! * **unbatched** — PR 1 semantics: every op is one full sweep over the
//!   amplitude array (`CompileOptions { batching: false }`),
//! * **batched** — the default compiled path: the planner groups each
//!   wide layer into one `BatchedApply` node and the blocked SoA kernels
//!   execute it in a single pass.
//!
//! Counts are verified **bit-identical** before any number is reported.
//! Results are written to `BENCH_batch.json` (override with `--out`);
//! `--check <baseline.json>` turns the run into a CI gate that fails
//! when
//!
//! * the batched-vs-unbatched speedup measured in this very run falls
//!   below the baseline's `min_speedup` floor (machine-independent), or
//! * batched per-shot time regresses more than the tolerance (default
//!   25%, override with `BENCH_TOLERANCE_PCT`) against the baseline's
//!   `per_shot_ns`. The absolute gate is hard — it catches kernel
//!   pessimizations that slow batched and unbatched paths equally,
//!   which the speedup floor cannot see; widen `BENCH_TOLERANCE_PCT`
//!   on runners slower than the (single-core) baseline machine, or
//! * the SIMD speedup (the unbatched sweep program forced onto the
//!   scalar reference loops vs the dispatched vector ISA, same binary,
//!   same run) falls below `simd_baseline.json`'s `min_speedup` —
//!   derated to its `scalar_floor` when no vector ISA is active (a
//!   feature-less runner, or `QSIM_SIMD=scalar`, cannot show a vector
//!   win). The sweep path is where vector width shows: its long
//!   contiguous runs are compute-bound. The batched blocked path is
//!   already L1-resident and load/store-port bound on the dominant
//!   (phase/real) gate classes, so its scalar-vs-vector ratio sits near
//!   1 by construction and is not gated. Scalar and vector counts are
//!   asserted bit-identical first.
//!
//! ```text
//! cargo bench -p qassert-bench --bench batch_throughput -- --quick --check
//! ```

use qassert_bench::workloads::{readout_noise, wide_instrumented};
use qsim::{simd, Backend, Counts, ShardPool, SimdBackend, TrajectoryBackend};
use std::time::Instant;

/// One bench configuration.
struct Config {
    mode: &'static str,
    qubits: usize,
    rounds: usize,
    shots: u64,
    threads: usize,
}

/// Times `shots` per-shot executions of one compiled program.
fn run_timed(
    backend: &TrajectoryBackend,
    program: &qsim::CompiledProgram,
    shots: u64,
) -> (f64, Counts) {
    let start = Instant::now();
    let result = backend.run_compiled(program, shots).expect("runs");
    (start.elapsed().as_secs_f64(), result.counts)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| qassert_bench::harness::flag(&args, name);
    let value_of = |name: &str| qassert_bench::harness::value_of(&args, name);
    let json_number_field = qassert_bench::harness::json_number_field;

    let quick = flag("--quick");
    let cfg = if quick {
        Config {
            mode: "quick",
            qubits: 14,
            rounds: 8,
            shots: 600,
            threads: 4,
        }
    } else {
        Config {
            mode: "full",
            qubits: 14,
            rounds: 8,
            shots: 3000,
            threads: 4,
        }
    };
    let out_path = value_of("--out").unwrap_or_else(|| "BENCH_batch.json".to_string());
    let check_path = match (flag("--check"), value_of("--check")) {
        (true, Some(path)) => Some(path),
        (true, None) => {
            Some(concat!(env!("CARGO_MANIFEST_DIR"), "/batch_baseline.json").to_string())
        }
        (false, _) => None,
    };

    let ac = wide_instrumented(cfg.qubits, cfg.rounds);
    let circuit = ac.circuit().clone();
    let noise = readout_noise(cfg.qubits);
    let batched_backend = TrajectoryBackend::new(noise.clone())
        .with_seed(7)
        .with_threads(cfg.threads);
    let unbatched_backend = TrajectoryBackend::new(noise)
        .with_seed(7)
        .with_threads(cfg.threads)
        .with_batching(false);

    let batched_program = batched_backend.compile(&circuit).expect("compiles");
    let unbatched_program = unbatched_backend.compile(&circuit).expect("compiles");
    assert_eq!(
        batched_program.ops().len(),
        unbatched_program.ops().len(),
        "the two compilations must differ only in the plan"
    );
    assert!(batched_program.fast_path().is_none() || batched_program.is_noisy());
    assert!(
        batched_program.batched_ops() > 0,
        "the wide layers must batch"
    );

    // Warm up: fault in the pool workers and settle both code paths.
    let _ = run_timed(&unbatched_backend, &unbatched_program, cfg.shots / 8);
    let _ = run_timed(&batched_backend, &batched_program, cfg.shots / 8);

    let (unbatched_secs, unbatched_counts) =
        run_timed(&unbatched_backend, &unbatched_program, cfg.shots);
    let (batched_secs, batched_counts) = run_timed(&batched_backend, &batched_program, cfg.shots);

    // Correctness before speed: blocked kernels must reproduce per-op
    // execution bit-for-bit.
    let identical = batched_counts == unbatched_counts;
    assert!(
        identical,
        "batched counts diverge from sequential counts — bit-identity broken"
    );

    // Third leg: the unbatched sweep program with every kernel forced
    // onto the scalar reference loops — the dispatched unbatched run
    // above is the "after", this is the "before", both from one binary
    // in one run.
    let dispatched_simd = simd::active_backend();
    simd::set_backend_override(Some(SimdBackend::Scalar));
    let _ = run_timed(&unbatched_backend, &unbatched_program, cfg.shots / 8);
    let (scalar_secs, scalar_counts) = run_timed(&unbatched_backend, &unbatched_program, cfg.shots);
    simd::set_backend_override(None);
    assert_eq!(
        scalar_counts, unbatched_counts,
        "forced-scalar counts diverge from dispatched counts — SIMD bit-identity broken"
    );

    let per_shot_ns = batched_secs * 1e9 / cfg.shots as f64;
    let speedup = unbatched_secs / batched_secs;
    let simd_speedup = scalar_secs / unbatched_secs;

    println!(
        "batch_throughput [{}]: {} qubits x {} rounds, {} shots, {} shards, pool workers {}",
        cfg.mode,
        cfg.qubits,
        cfg.rounds,
        cfg.shots,
        cfg.threads,
        ShardPool::global().workers(),
    );
    println!(
        "  program: {} ops, {} batched into {} passes",
        batched_program.ops().len(),
        batched_program.batched_ops(),
        batched_program.batch_passes(),
    );
    println!(
        "  unbatched: {:>9.3} ms   batched: {:>9.3} ms   speedup {:.2}x   per-shot {:.0} ns",
        unbatched_secs * 1e3,
        batched_secs * 1e3,
        speedup,
        per_shot_ns,
    );
    println!(
        "  simd [{} -> {}]: scalar sweeps {:>9.3} ms   dispatched sweeps {:>9.3} ms   \
         simd speedup {:.2}x",
        SimdBackend::Scalar.name(),
        dispatched_simd.name(),
        scalar_secs * 1e3,
        unbatched_secs * 1e3,
        simd_speedup,
    );

    let json = format!(
        "{{\"bench\":\"batch_throughput\",\"mode\":\"{}\",\"qubits\":{},\"rounds\":{},\
         \"shots\":{},\"threads\":{},\"pool_workers\":{},\"ops\":{},\"batched_ops\":{},\
         \"batch_passes\":{},\"unbatched_ms\":{:.3},\"batched_ms\":{:.3},\"speedup\":{:.3},\
         \"per_shot_ns\":{:.1},\"counts_identical\":{},\"simd\":\"{}\",\"detected_simd\":\"{}\",\
         \"scalar_unbatched_ms\":{:.3},\"simd_speedup\":{:.3}}}",
        cfg.mode,
        cfg.qubits,
        cfg.rounds,
        cfg.shots,
        cfg.threads,
        ShardPool::global().workers(),
        batched_program.ops().len(),
        batched_program.batched_ops(),
        batched_program.batch_passes(),
        unbatched_secs * 1e3,
        batched_secs * 1e3,
        speedup,
        per_shot_ns,
        identical,
        dispatched_simd.name(),
        simd::detected_backend().name(),
        scalar_secs * 1e3,
        simd_speedup,
    );
    std::fs::write(&out_path, &json).unwrap_or_else(|e| {
        eprintln!("failed to write {out_path}: {e}");
        std::process::exit(1);
    });
    println!("  wrote {out_path}");

    if let Some(baseline_path) = check_path {
        let tolerance_pct: f64 = std::env::var("BENCH_TOLERANCE_PCT")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(25.0);
        let baseline = std::fs::read_to_string(&baseline_path).unwrap_or_else(|e| {
            eprintln!("failed to read baseline {baseline_path}: {e}");
            std::process::exit(1);
        });
        let baseline_ns = json_number_field(&baseline, "per_shot_ns").unwrap_or_else(|| {
            eprintln!("baseline {baseline_path} has no per_shot_ns field");
            std::process::exit(1);
        });
        let floor = json_number_field(&baseline, "min_speedup").unwrap_or(1.5);

        // Machine-independent primary gate: the batched path must beat
        // the unbatched path measured in this same run.
        println!("  speedup gate: {speedup:.2}x vs required {floor:.2}x");
        if speedup < floor {
            eprintln!(
                "PERF REGRESSION: batched speedup {speedup:.2}x is below the {floor:.2}x floor"
            );
            std::process::exit(4);
        }

        // Absolute per-shot time gate. Unlike sweep_throughput this has
        // no speedup fallback — the speedup floor above already passed,
        // so a fallback here would make this gate unfailable. It
        // catches regressions that slow batched and unbatched equally
        // (the speedup gate is blind to those); the baseline is
        // generous (single-core reference machine) and
        // BENCH_TOLERANCE_PCT widens it for slower runners.
        let limit = baseline_ns * (1.0 + tolerance_pct / 100.0);
        println!(
            "  regression gate: {per_shot_ns:.1} ns vs baseline {baseline_ns:.1} ns \
             (limit {limit:.1} ns, +{tolerance_pct}%)"
        );
        if per_shot_ns > limit {
            eprintln!(
                "PERF REGRESSION: batched per-shot time {per_shot_ns:.1} ns exceeds baseline \
                 {baseline_ns:.1} ns by more than {tolerance_pct}%"
            );
            std::process::exit(4);
        }
        println!("  regression gate: ok");

        // SIMD gate: scalar-vs-dispatched from this same run, against
        // the committed floor. Derated (psweep-style) to scalar_floor
        // when no vector ISA is active — forced-scalar vs scalar is
        // ~1.0x by construction and a floor above 1 would be
        // unmeetable there.
        let simd_baseline_path = concat!(env!("CARGO_MANIFEST_DIR"), "/simd_baseline.json");
        let simd_baseline = std::fs::read_to_string(simd_baseline_path).unwrap_or_else(|e| {
            eprintln!("failed to read SIMD baseline {simd_baseline_path}: {e}");
            std::process::exit(1);
        });
        let simd_floor = json_number_field(&simd_baseline, "min_speedup").unwrap_or_else(|| {
            eprintln!("SIMD baseline {simd_baseline_path} has no min_speedup field");
            std::process::exit(1);
        });
        let scalar_floor = json_number_field(&simd_baseline, "scalar_floor").unwrap_or(0.5);
        let required = if dispatched_simd == SimdBackend::Scalar {
            scalar_floor
        } else {
            simd_floor
        };
        println!(
            "  simd gate: {simd_speedup:.2}x vs required {required:.2}x \
             (baseline floor {simd_floor:.2}x, dispatched {})",
            dispatched_simd.name(),
        );
        if simd_speedup < required {
            eprintln!(
                "PERF REGRESSION: SIMD speedup {simd_speedup:.2}x ({} vs scalar) is below the \
                 {required:.2}x floor",
                dispatched_simd.name(),
            );
            std::process::exit(4);
        }
        println!("  simd gate: ok");
    }
}
