//! Parallel-points sweep throughput: `AssertionSession::run_sweep`
//! under `SweepPolicy::Parallel` vs `SweepPolicy::Serial`.
//!
//! The companion of `sweep_throughput` (which times the pooled+cached
//! execution of many *independent seeded calls*): this bench times the
//! sweep API itself on the paper's 500-point shape — one instrumented
//! circuit re-run across 500 derived per-point seeds
//! (`qsim::sweep_point_seed`) through a single session — and compares
//! serial point execution against fanning whole points out across the
//! `ShardPool` (the 2-D points × shots plan). Per-point counts and the
//! deterministic telemetry fields are asserted **bit-identical** before
//! any number is reported; `.threads(1)` pins within-point sharding off
//! so the comparison isolates the point-level lever.
//!
//! Results go to `BENCH_psweep.json` (override with `--out`);
//! `--check <baseline.json>` turns the run into a CI gate:
//!
//! * **speedup floor** (primary, machine-independent *given cores*):
//!   the same-run parallel-vs-serial speedup must clear the baseline's
//!   `min_speedup`, derated to `cores / 2` on machines with fewer than
//!   `2 × min_speedup` cores — a 1-core container cannot show 2×, but
//!   parallel dispatch must still not cost more than pool overhead
//!   (floor 0.5), while the 4-core CI runners enforce the full 2×.
//! * **absolute per-shot time** vs the baseline's `per_shot_ns`
//!   (+tolerance, `BENCH_TOLERANCE_PCT` override), with the same-run
//!   speedup as the cross-machine fallback, like the other benches.
//!
//! ```text
//! cargo bench -p qassert-bench --bench psweep_throughput -- --quick --check
//! ```

use qassert::{AssertingCircuit, AssertionSession, Parity, SweepOutcome, SweepPolicy};
use qcircuit::library;
use qsim::{ShardPool, TrajectoryBackend};
use std::time::Instant;

/// One sweep configuration.
struct Config {
    mode: &'static str,
    points: usize,
    shots: u64,
}

fn instrumented() -> AssertingCircuit {
    let mut ac = AssertingCircuit::new(library::bell());
    ac.assert_entangled([0, 1], Parity::Even)
        .expect("valid assertion targets");
    ac.measure_data();
    ac
}

fn backend() -> TrajectoryBackend {
    // Mild uniform noise keeps every point on the per-shot path (no
    // sample-once fast path) without drowning the timing in Kraus
    // sampling — the same workload profile as sweep_throughput.
    TrajectoryBackend::new(
        qnoise::presets::uniform(3, 0.005, 0.02, 0.01).expect("valid noise parameters"),
    )
}

/// Runs the 500-point sweep under one policy, timing the whole
/// `run_sweep` call (lowering + dispatch + merge).
fn run_policy(cfg: &Config, proto: &TrajectoryBackend, policy: SweepPolicy) -> (f64, SweepOutcome) {
    let session = AssertionSession::new(proto)
        .private_cache(8)
        .shots(cfg.shots)
        .threads(1)
        .seed(12345)
        .sweep_policy(policy);
    let circuits: Vec<AssertingCircuit> = (0..cfg.points).map(|_| instrumented()).collect();
    let start = Instant::now();
    let sweep = session.run_sweep(circuits).expect("sweep runs");
    (start.elapsed().as_secs_f64(), sweep)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| qassert_bench::harness::flag(&args, name);
    let value_of = |name: &str| qassert_bench::harness::value_of(&args, name);
    let json_number_field = qassert_bench::harness::json_number_field;

    let quick = flag("--quick");
    let cfg = if quick {
        Config {
            mode: "quick",
            points: 500,
            shots: 32,
        }
    } else {
        Config {
            mode: "full",
            points: 500,
            shots: 256,
        }
    };
    let out_path = value_of("--out").unwrap_or_else(|| "BENCH_psweep.json".to_string());
    let check_path = match (flag("--check"), value_of("--check")) {
        (true, Some(path)) => Some(path),
        (true, None) => {
            Some(concat!(env!("CARGO_MANIFEST_DIR"), "/psweep_baseline.json").to_string())
        }
        (false, _) => None,
    };

    let proto = backend();
    // Warm up: fault in the pool workers and settle both paths.
    let warmup = Config {
        mode: "warmup",
        points: 32,
        shots: cfg.shots,
    };
    let _ = run_policy(&warmup, &proto, SweepPolicy::Serial);
    let _ = run_policy(&warmup, &proto, SweepPolicy::Parallel);

    let (serial_secs, serial) = run_policy(&cfg, &proto, SweepPolicy::Serial);
    let (parallel_secs, parallel) = run_policy(&cfg, &proto, SweepPolicy::Parallel);

    // Correctness before speed: bit-identical points and deterministic
    // telemetry under both policies.
    let mut identical = parallel.len() == serial.len();
    for (a, b) in parallel.outcomes().iter().zip(serial.outcomes()) {
        identical &= a.raw.counts == b.raw.counts && a.kept == b.kept;
    }
    identical &= parallel.telemetry.runs == serial.telemetry.runs
        && parallel.telemetry.shots == serial.telemetry.shots
        && parallel.telemetry.cache_hits == serial.telemetry.cache_hits
        && parallel.telemetry.cache_misses == serial.telemetry.cache_misses
        && parallel.telemetry.prefix_hits == serial.telemetry.prefix_hits;
    if !identical {
        eprintln!("DETERMINISM BROKEN: parallel sweep diverges from serial sweep");
        std::process::exit(2);
    }

    let total_shots = cfg.points as u64 * cfg.shots;
    let per_shot_ns = parallel_secs * 1e9 / total_shots as f64;
    let speedup = serial_secs / parallel_secs;
    let workers = ShardPool::global().workers();
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);

    println!(
        "psweep_throughput [{}]: {} points x {} shots, threads 1, pool workers {workers} ({cores} cores)",
        cfg.mode, cfg.points, cfg.shots,
    );
    println!(
        "  serial points: {:>9.3} ms   parallel points: {:>9.3} ms   speedup {:.2}x",
        serial_secs * 1e3,
        parallel_secs * 1e3,
        speedup
    );
    println!(
        "  per-shot {per_shot_ns:.1} ns   sweep pool tasks {} (steals {})",
        parallel.telemetry.pool_tasks, parallel.telemetry.pool_steals
    );

    let json = format!(
        "{{\"bench\":\"psweep_throughput\",\"mode\":\"{}\",\"points\":{},\"shots_per_point\":{},\
         \"pool_workers\":{},\"cores\":{},\"serial_ms\":{:.3},\"parallel_ms\":{:.3},\
         \"speedup\":{:.3},\"per_shot_ns\":{:.1},\"counts_identical\":{},\
         \"pool_tasks\":{},\"pool_steals\":{}}}",
        cfg.mode,
        cfg.points,
        cfg.shots,
        workers,
        cores,
        serial_secs * 1e3,
        parallel_secs * 1e3,
        speedup,
        per_shot_ns,
        identical,
        parallel.telemetry.pool_tasks,
        parallel.telemetry.pool_steals,
    );
    std::fs::write(&out_path, &json).unwrap_or_else(|e| {
        eprintln!("failed to write {out_path}: {e}");
        std::process::exit(1);
    });
    println!("  wrote {out_path}");

    if let Some(baseline_path) = check_path {
        let tolerance_pct: f64 = std::env::var("BENCH_TOLERANCE_PCT")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(25.0);
        let baseline = std::fs::read_to_string(&baseline_path).unwrap_or_else(|e| {
            eprintln!("failed to read baseline {baseline_path}: {e}");
            std::process::exit(1);
        });
        let baseline_ns = json_number_field(&baseline, "per_shot_ns").unwrap_or_else(|| {
            eprintln!("baseline {baseline_path} has no per_shot_ns field");
            std::process::exit(1);
        });
        let min_speedup = json_number_field(&baseline, "min_speedup").unwrap_or_else(|| {
            eprintln!("baseline {baseline_path} has no min_speedup field");
            std::process::exit(1);
        });

        // Primary gate: the speedup floor, derated on machines without
        // enough cores to reach it (a parallelism floor is meaningless
        // on a 1-core container; cores/2 keeps it demanding exactly
        // where parallelism is available).
        let required = min_speedup.min(cores as f64 / 2.0);
        println!(
            "  speedup gate: {speedup:.2}x vs required {required:.2}x \
             (baseline floor {min_speedup:.2}x, {cores} cores)"
        );
        if speedup < required {
            eprintln!(
                "PERF REGRESSION: parallel-points speedup {speedup:.2}x is below the \
                 {required:.2}x floor for this machine"
            );
            std::process::exit(4);
        }

        let limit = baseline_ns * (1.0 + tolerance_pct / 100.0);
        println!(
            "  per-shot gate: {per_shot_ns:.1} ns vs baseline {baseline_ns:.1} ns \
             (limit {limit:.1} ns, +{tolerance_pct}%)"
        );
        if per_shot_ns > limit {
            if speedup >= min_speedup {
                println!(
                    "  per-shot gate: absolute time over limit on this machine, but \
                     same-run speedup {speedup:.2}x >= baseline floor {min_speedup:.2}x — ok"
                );
            } else {
                eprintln!(
                    "PERF REGRESSION: per-shot time {per_shot_ns:.1} ns exceeds baseline \
                     {baseline_ns:.1} ns by more than {tolerance_pct}%, and speedup \
                     {speedup:.2}x is below the {min_speedup:.2}x floor"
                );
                std::process::exit(4);
            }
        } else {
            println!("  per-shot gate: ok");
        }
    }
}
