//! Sequential shot-plan throughput: `ShotPlan::Sequential` early
//! termination vs the full `ShotPlan::Fixed` budget on the paper's
//! 500-point sweep shape.
//!
//! The companion of `psweep_throughput` (which times point-level
//! parallel dispatch): this bench measures the *statistical* lever —
//! anytime-valid sequential tests let clear-cut points stop after a few
//! tranches instead of burning the whole fixed budget. The workload
//! alternates correct Even-parity bell assertions (noise-level firing →
//! `Holds`) with structurally violated Odd ones (every shot fires →
//! `Violated`), so every point is clear-cut and the sequential plan
//! should decide early at all of them.
//!
//! Correctness before speed, asserted before any number is reported:
//!
//! * every sequential point reaches the **same verdict** as the fixed
//!   plan at the same point (early stopping must not flip decisions);
//! * the sequential sweep is **bit-reproducible** across sweep
//!   policies (Serial vs Parallel): identical counts, shots used, and
//!   stop reasons (exit 2 on divergence).
//!
//! Results go to `BENCH_esweep.json` (override with `--out`);
//! `--check <baseline.json>` turns the run into a CI gate on the
//! machine-independent **shots-saved ratio** (fixed budget ÷ sequential
//! shots actually spent), which must clear the baseline's `min_ratio`.
//! The ratio is a pure property of the seeded count streams and the
//! e-process thresholds — no derating for cores or wall clock needed.
//!
//! ```text
//! cargo bench -p qassert-bench --bench esweep_throughput -- --quick --check
//! ```

use qassert::{
    AssertingCircuit, AssertionSession, FilterPolicy, Parity, ShotPlan, StopReason, SweepOutcome,
    SweepPolicy,
};
use qcircuit::library;
use qsim::TrajectoryBackend;
use std::time::Instant;

/// One sweep configuration.
struct Config {
    mode: &'static str,
    points: usize,
    max_shots: u64,
}

/// Clear-cut alternating family: even points assert the parity the bell
/// state satisfies, odd points assert its negation.
fn family(points: usize) -> Vec<AssertingCircuit> {
    (0..points)
        .map(|i| {
            let mut ac = AssertingCircuit::new(library::bell());
            let parity = if i % 2 == 0 {
                Parity::Even
            } else {
                Parity::Odd
            };
            ac.assert_entangled([0, 1], parity)
                .expect("valid assertion targets");
            ac.measure_data();
            ac
        })
        .collect()
}

fn backend() -> TrajectoryBackend {
    // Mild uniform noise keeps every point on the per-shot path without
    // drowning the verdicts — the same profile as psweep_throughput.
    TrajectoryBackend::new(
        qnoise::presets::uniform(3, 0.005, 0.02, 0.01).expect("valid noise parameters"),
    )
}

/// Runs the sweep under one plan, timing the whole `run_sweep` call.
fn run_plan(
    cfg: &Config,
    proto: &TrajectoryBackend,
    plan: ShotPlan,
    policy: SweepPolicy,
) -> (f64, SweepOutcome) {
    let session = AssertionSession::new(proto)
        .private_cache(8)
        .filter_policy(FilterPolicy::AllowEmpty)
        .shot_plan(plan)
        .threads(1)
        .seed(12345)
        .sweep_policy(policy);
    let start = Instant::now();
    let sweep = session.run_sweep(family(cfg.points)).expect("sweep runs");
    (start.elapsed().as_secs_f64(), sweep)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| qassert_bench::harness::flag(&args, name);
    let value_of = |name: &str| qassert_bench::harness::value_of(&args, name);
    let json_number_field = qassert_bench::harness::json_number_field;

    let quick = flag("--quick");
    let cfg = if quick {
        Config {
            mode: "quick",
            points: 500,
            max_shots: 1024,
        }
    } else {
        Config {
            mode: "full",
            points: 500,
            max_shots: 4096,
        }
    };
    let plan = ShotPlan::Sequential {
        alpha: 0.05,
        min_shots: 64,
        max_shots: cfg.max_shots,
        tranche: 64,
    };
    let out_path = value_of("--out").unwrap_or_else(|| "BENCH_esweep.json".to_string());
    let check_path = match (flag("--check"), value_of("--check")) {
        (true, Some(path)) => Some(path),
        (true, None) => {
            Some(concat!(env!("CARGO_MANIFEST_DIR"), "/esweep_baseline.json").to_string())
        }
        (false, _) => None,
    };

    let proto = backend();
    // Warm up: fault in the pool workers and settle both paths.
    let warmup = Config {
        mode: "warmup",
        points: 32,
        max_shots: cfg.max_shots,
    };
    let _ = run_plan(&warmup, &proto, plan, SweepPolicy::Serial);
    let _ = run_plan(
        &warmup,
        &proto,
        ShotPlan::Fixed(cfg.max_shots),
        SweepPolicy::Parallel,
    );

    let (fixed_secs, fixed) = run_plan(
        &cfg,
        &proto,
        ShotPlan::Fixed(cfg.max_shots),
        SweepPolicy::Serial,
    );
    let (seq_secs, sequential) = run_plan(&cfg, &proto, plan, SweepPolicy::Serial);
    let (_, replay) = run_plan(&cfg, &proto, plan, SweepPolicy::Parallel);

    // Correctness before speed: verdict parity with the fixed plan and
    // bit-reproducibility across sweep policies.
    let mut sound = sequential.len() == fixed.len() && replay.len() == sequential.len();
    let mut early_stops = 0usize;
    for ((s, r), f) in sequential.iter().zip(replay.iter()).zip(fixed.iter()) {
        sound &= s.outcome().raw.counts == r.outcome().raw.counts
            && s.shots_used() == r.shots_used()
            && s.stop() == r.stop();
        sound &= s
            .verdicts()
            .iter()
            .zip(f.verdicts())
            .all(|(sv, fv)| sv.verdict == fv.verdict);
        early_stops += usize::from(s.stop() == StopReason::Decided);
    }
    if !sound {
        eprintln!(
            "SEQUENTIAL PLAN BROKEN: verdicts diverge from the fixed plan or the \
             sweep is not policy-reproducible"
        );
        std::process::exit(2);
    }

    let budget = fixed.shots_used();
    let used = sequential.shots_used();
    let ratio = budget as f64 / used as f64;
    let decided_pct = early_stops as f64 * 100.0 / cfg.points as f64;

    println!(
        "esweep_throughput [{}]: {} points, fixed budget {} shots/point, \
         sequential alpha 0.05 min 64 tranche 64",
        cfg.mode, cfg.points, cfg.max_shots,
    );
    println!(
        "  fixed plan: {:>9.3} ms / {budget} shots   sequential: {:>9.3} ms / {used} shots",
        fixed_secs * 1e3,
        seq_secs * 1e3,
    );
    println!(
        "  shots saved {ratio:.2}x   early stops {early_stops}/{} ({decided_pct:.1}%)   \
         tranches {}",
        cfg.points, sequential.telemetry.tranches,
    );

    let json = format!(
        "{{\"bench\":\"esweep_throughput\",\"mode\":\"{}\",\"points\":{},\"max_shots\":{},\
         \"fixed_shots\":{},\"sequential_shots\":{},\"shots_saved_ratio\":{:.3},\
         \"early_stops\":{},\"tranches\":{},\"fixed_ms\":{:.3},\"sequential_ms\":{:.3},\
         \"verdicts_match\":{}}}",
        cfg.mode,
        cfg.points,
        cfg.max_shots,
        budget,
        used,
        ratio,
        early_stops,
        sequential.telemetry.tranches,
        fixed_secs * 1e3,
        seq_secs * 1e3,
        sound,
    );
    std::fs::write(&out_path, &json).unwrap_or_else(|e| {
        eprintln!("failed to write {out_path}: {e}");
        std::process::exit(1);
    });
    println!("  wrote {out_path}");

    if let Some(baseline_path) = check_path {
        let baseline = std::fs::read_to_string(&baseline_path).unwrap_or_else(|e| {
            eprintln!("failed to read baseline {baseline_path}: {e}");
            std::process::exit(1);
        });
        let min_ratio = json_number_field(&baseline, "min_ratio").unwrap_or_else(|| {
            eprintln!("baseline {baseline_path} has no min_ratio field");
            std::process::exit(1);
        });
        println!("  shots-saved gate: {ratio:.2}x vs required {min_ratio:.2}x");
        if ratio < min_ratio {
            eprintln!(
                "PERF REGRESSION: sequential plan saved only {ratio:.2}x shots, below the \
                 {min_ratio:.2}x floor — early termination has regressed"
            );
            std::process::exit(4);
        }
        println!("  shots-saved gate: ok");
    }
}
