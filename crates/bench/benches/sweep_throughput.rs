//! Assertion-sweep throughput: session (pooled + cached) vs scoped +
//! fresh-compile.
//!
//! The paper's assertion sweeps issue thousands of short `run_compiled`
//! calls — one instrumented circuit per assertion point per noise
//! level. This bench reproduces that call pattern (many small seeded
//! runs of one instrumented circuit) and times the two execution
//! strategies against each other:
//!
//! * **scoped** — PR 1 semantics: every call compiles the circuit
//!   afresh and spawns scoped shard threads
//!   (`run_compiled_sharded_scoped`),
//! * **session** — the public execution API: each call runs through an
//!   `AssertionSession` that compiles through the shared keyed
//!   `ProgramCache` (one miss, then hits) and executes shards on the
//!   persistent work-stealing `ShardPool`. Per-call session
//!   construction is part of the timed path on purpose — sessions must
//!   stay cheap enough to build around a single seeded call.
//!
//! Both strategies are verified to produce **bit-identical counts** for
//! every call before any number is reported. Results are written to
//! `BENCH_sweep.json` (override with `--out`); `--check <baseline.json>`
//! turns the run into a CI gate that fails when session per-shot time
//! regresses more than the tolerance (default 25%, override with
//! `BENCH_TOLERANCE_PCT`) against the checked-in baseline — unless the
//! machine-independent same-run speedup still clears the baseline's
//! `min_speedup` floor, which keeps the gate meaningful on CI runners
//! whose absolute clock differs from the baseline machine's.
//!
//! ```text
//! cargo bench -p qassert-bench --bench sweep_throughput -- --quick --check
//! ```
//!
//! Cargo runs bench binaries with the package directory as CWD;
//! `--check` with no path uses the checked-in `sweep_baseline.json`
//! next to this bench (resolved via `CARGO_MANIFEST_DIR`), and relative
//! `--out`/`--check` paths resolve against `crates/bench/`.

use qassert::{AssertingCircuit, AssertionSession, Parity};
use qcircuit::library;
use qsim::{run_compiled_sharded_scoped, Backend, ProgramCache, ShardPool, TrajectoryBackend};
use std::time::Instant;

/// One sweep configuration.
struct Config {
    mode: &'static str,
    calls: usize,
    shots: u64,
    threads: usize,
}

/// Results of timing one strategy over the whole sweep.
struct Timing {
    wall_secs: f64,
}

fn instrumented() -> AssertingCircuit {
    let mut ac = AssertingCircuit::new(library::bell());
    ac.assert_entangled([0, 1], Parity::Even)
        .expect("valid assertion targets");
    ac.measure_data();
    ac
}

fn instrumented_circuit() -> qcircuit::QuantumCircuit {
    instrumented().circuit().clone()
}

fn backend() -> TrajectoryBackend {
    // Mild uniform noise keeps the per-shot path honest (no sample-once
    // fast path) without drowning the timing in Kraus sampling.
    TrajectoryBackend::new(
        qnoise::presets::uniform(3, 0.005, 0.02, 0.01).expect("valid noise parameters"),
    )
}

/// The scoped reference strategy: fresh compile + scoped threads, per call.
fn run_scoped(cfg: &Config) -> (Timing, Vec<qsim::Counts>) {
    let circuit = instrumented_circuit();
    let backend = backend();
    let mut all_counts = Vec::with_capacity(cfg.calls);
    let start = Instant::now();
    for call in 0..cfg.calls {
        let program = backend.compile(&circuit).expect("compiles");
        let (counts, _) =
            run_compiled_sharded_scoped(&program, cfg.shots, call as u64, cfg.threads)
                .expect("runs");
        all_counts.push(counts);
    }
    (
        Timing {
            wall_secs: start.elapsed().as_secs_f64(),
        },
        all_counts,
    )
}

/// The session strategy: per-call `AssertionSession` over a shared
/// cache, executing on the persistent work-stealing pool. Each call
/// builds its own session around a *borrowed* backend and overrides the
/// seed per run (`AssertionSession::seed` → the
/// `Backend::run_compiled_seeded` hook), so a seed sweep neither
/// rebuilds nor clones the backend; session construction cost is
/// included in the timing on purpose.
fn run_session(cfg: &Config, cache: &ProgramCache) -> (Timing, Vec<qsim::Counts>) {
    let ac = instrumented();
    let proto = backend();
    let mut all_counts = Vec::with_capacity(cfg.calls);
    let start = Instant::now();
    for call in 0..cfg.calls {
        let session = AssertionSession::new(&proto)
            .seed(call as u64)
            .cache(cache)
            .threads(cfg.threads)
            .shots(cfg.shots)
            // One-shot session per seeded call: prefix registration
            // could never pay off, so skip it (the recommended pattern
            // for single-run sessions).
            .prefix_reuse(false);
        let outcome = session.run(&ac).expect("runs");
        all_counts.push(outcome.raw.counts);
    }
    (
        Timing {
            wall_secs: start.elapsed().as_secs_f64(),
        },
        all_counts,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| qassert_bench::harness::flag(&args, name);
    let value_of = |name: &str| qassert_bench::harness::value_of(&args, name);
    let json_number_field = qassert_bench::harness::json_number_field;

    let quick = flag("--quick");
    let cfg = if quick {
        Config {
            mode: "quick",
            calls: 500,
            shots: 32,
            threads: 4,
        }
    } else {
        Config {
            mode: "full",
            calls: 500,
            shots: 256,
            threads: 4,
        }
    };
    let out_path = value_of("--out").unwrap_or_else(|| "BENCH_sweep.json".to_string());
    let check_path = match (flag("--check"), value_of("--check")) {
        (true, Some(path)) => Some(path),
        (true, None) => {
            Some(concat!(env!("CARGO_MANIFEST_DIR"), "/sweep_baseline.json").to_string())
        }
        (false, _) => None,
    };

    // Warm up: fault in the shard pool's workers and let the CPU settle
    // on both code paths, outside the timed windows.
    let warmup = Config {
        mode: "warmup",
        calls: 16,
        shots: cfg.shots,
        threads: cfg.threads,
    };
    let _ = run_scoped(&warmup);
    let _ = run_session(&warmup, &ProgramCache::new(8));

    let (scoped, scoped_counts) = run_scoped(&cfg);
    let cache = ProgramCache::new(8); // fresh: the sweep's own hit/miss profile
    let (session, session_counts) = run_session(&cfg, &cache);

    // Correctness before speed: the two strategies must agree
    // shot-for-shot on every call of the sweep.
    let identical = scoped_counts == session_counts;
    assert!(
        identical,
        "session counts diverge from scoped counts — determinism broken"
    );

    let total_shots = cfg.calls as u64 * cfg.shots;
    let per_shot_ns = session.wall_secs * 1e9 / total_shots as f64;
    let speedup = scoped.wall_secs / session.wall_secs;
    let stats = cache.stats();

    println!(
        "sweep_throughput [{}]: {} calls x {} shots, {} shards, pool workers {}",
        cfg.mode,
        cfg.calls,
        cfg.shots,
        cfg.threads,
        ShardPool::global().workers(),
    );
    println!(
        "  scoped+fresh-compile: {:>9.3} ms   session (pooled+cached): {:>9.3} ms   speedup {:.2}x",
        scoped.wall_secs * 1e3,
        session.wall_secs * 1e3,
        speedup
    );
    println!(
        "  per-shot {per_shot_ns:.1} ns   cache hits {} misses {} (hit rate {:.4})",
        stats.hits,
        stats.misses,
        stats.hit_rate()
    );

    let json = format!(
        "{{\"bench\":\"sweep_throughput\",\"mode\":\"{}\",\"calls\":{},\"shots_per_call\":{},\
         \"threads\":{},\"pool_workers\":{},\"scoped_ms\":{:.3},\"pooled_ms\":{:.3},\
         \"speedup\":{:.3},\"per_shot_ns\":{:.1},\"counts_identical\":{},\
         \"cache\":{{\"hits\":{},\"misses\":{},\"evictions\":{},\"hit_rate\":{:.4}}}}}",
        cfg.mode,
        cfg.calls,
        cfg.shots,
        cfg.threads,
        ShardPool::global().workers(),
        scoped.wall_secs * 1e3,
        session.wall_secs * 1e3,
        speedup,
        per_shot_ns,
        identical,
        stats.hits,
        stats.misses,
        stats.evictions,
        stats.hit_rate()
    );
    std::fs::write(&out_path, &json).unwrap_or_else(|e| {
        eprintln!("failed to write {out_path}: {e}");
        std::process::exit(1);
    });
    println!("  wrote {out_path}");

    if let Some(baseline_path) = check_path {
        let tolerance_pct: f64 = std::env::var("BENCH_TOLERANCE_PCT")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(25.0);
        let baseline = std::fs::read_to_string(&baseline_path).unwrap_or_else(|e| {
            eprintln!("failed to read baseline {baseline_path}: {e}");
            std::process::exit(1);
        });
        let baseline_ns = json_number_field(&baseline, "per_shot_ns").unwrap_or_else(|| {
            eprintln!("baseline {baseline_path} has no per_shot_ns field");
            std::process::exit(1);
        });
        let limit = baseline_ns * (1.0 + tolerance_pct / 100.0);
        println!(
            "  regression gate: {per_shot_ns:.1} ns vs baseline {baseline_ns:.1} ns \
             (limit {limit:.1} ns, +{tolerance_pct}%)"
        );
        if per_shot_ns > limit {
            // Absolute per-shot time is machine-dependent (CI runners
            // differ in core count and clock from the machine that
            // produced the baseline), so before failing, consult the
            // machine-independent signal measured in this very run: if
            // pooled still beats scoped by the baseline's min_speedup,
            // the pooled path itself has not regressed — a genuine
            // regression in pool/cache code drags both metrics down.
            let min_speedup = json_number_field(&baseline, "min_speedup");
            match min_speedup {
                Some(floor) if speedup >= floor => {
                    println!(
                        "  regression gate: absolute time over limit on this machine, but \
                         same-run speedup {speedup:.2}x >= required {floor:.2}x — ok"
                    );
                }
                _ => {
                    eprintln!(
                        "PERF REGRESSION: per-shot time {per_shot_ns:.1} ns exceeds baseline \
                         {baseline_ns:.1} ns by more than {tolerance_pct}%{}",
                        match min_speedup {
                            Some(floor) => format!(
                                ", and speedup {speedup:.2}x is below the {floor:.2}x floor"
                            ),
                            None => String::new(),
                        }
                    );
                    std::process::exit(4);
                }
            }
        } else {
            println!("  regression gate: ok");
        }
    }
}
