//! Stabilizer tableau throughput: `StabilizerBackend` vs the
//! per-shot statevector path on a Clifford workload, plus the scale
//! leg the backend exists for — a 1,024-qubit assertion-shaped GHZ
//! parity circuit no amplitude backend can represent.
//!
//! The workload is a mid-circuit-measure Clifford circuit (GHZ chain,
//! S-dressed CX layers, one mid measurement): the measurement defeats
//! the statevector sample-once fast path, so both backends run the
//! honest per-shot loop and the comparison isolates tableau vs
//! amplitude per-shot cost at equal semantics.
//!
//! Correctness before speed, asserted before any number is reported
//! (exit 2):
//!
//! * stabilizer counts at n=10 land within TVD 0.02 of the exact
//!   distribution (`DensityMatrixBackend::exact_distribution`);
//! * seeded stabilizer runs are bit-reproducible call-to-call;
//! * every shot of the 1,024-qubit GHZ parity leg has even end-to-end
//!   parity (the two measured clbits agree).
//!
//! Results go to `BENCH_stab.json` (override with `--out`);
//! `--check <baseline.json>` turns the run into a CI gate on the
//! same-run **stabilizer-vs-statevector per-shot speedup**, which must
//! clear the baseline's `min_speedup`. Both paths are timed in the
//! same process on the same machine, so the floor needs no per-host
//! derating.
//!
//! ```text
//! cargo bench -p qassert-bench --bench stab_throughput -- --quick --check
//! ```

use qcircuit::QuantumCircuit;
use qsim::{Backend, DensityMatrixBackend, StabilizerBackend, StatevectorBackend};
use std::time::Instant;

struct Config {
    mode: &'static str,
    shots: u64,
    big_shots: u64,
}

/// The comparison workload: an n-qubit GHZ chain with one mid-circuit
/// measurement (fast-path defeating) and two S-dressed CX layers, all
/// Clifford, fully measured.
fn clifford_workload(n: usize) -> QuantumCircuit {
    let mut c = QuantumCircuit::new(n, n);
    c.h(0).expect("valid qubit");
    for q in 0..n - 1 {
        c.cx(q, q + 1).expect("valid qubits");
    }
    c.measure(0, 0).expect("valid measurement"); // defeats the fast path
    for q in 0..n {
        c.s(q).expect("valid qubit");
    }
    for q in (1..n - 1).step_by(2) {
        c.cx(q, q + 1).expect("valid qubits");
    }
    for q in 0..n {
        c.sdg(q).expect("valid qubit");
    }
    c.measure_all();
    c
}

/// The scale leg: a 1,024-qubit GHZ state with the end qubits measured
/// into two clbits — the assertion-shaped parity probe of
/// `examples/ghz_parity_check.rs` at a width only the tableau holds.
fn ghz_parity_1024() -> QuantumCircuit {
    let mut c = qcircuit::library::ghz(1024);
    c.add_clbit();
    c.add_clbit();
    c.measure(0, 0).expect("valid measurement");
    c.measure(1023, 1).expect("valid measurement");
    c
}

/// Times `shots` seeded shots of `program` on `backend`, returning
/// (seconds, counts).
fn run_timed<B: Backend>(
    backend: &B,
    program: &qsim::CompiledProgram,
    shots: u64,
) -> (f64, qsim::Counts) {
    let start = Instant::now();
    let result = backend
        .run_compiled_seeded(program, shots, Some(7), Some(1))
        .expect("workload runs");
    (start.elapsed().as_secs_f64(), result.counts)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| qassert_bench::harness::flag(&args, name);
    let value_of = |name: &str| qassert_bench::harness::value_of(&args, name);
    let json_number_field = qassert_bench::harness::json_number_field;

    let quick = flag("--quick");
    let cfg = if quick {
        Config {
            mode: "quick",
            shots: 2_000,
            big_shots: 256,
        }
    } else {
        Config {
            mode: "full",
            shots: 20_000,
            big_shots: 2_048,
        }
    };
    let out_path = value_of("--out").unwrap_or_else(|| "BENCH_stab.json".to_string());
    let check_path = match (flag("--check"), value_of("--check")) {
        (true, Some(path)) => Some(path),
        (true, None) => {
            Some(concat!(env!("CARGO_MANIFEST_DIR"), "/stab_baseline.json").to_string())
        }
        (false, _) => None,
    };

    let n = 10;
    let circuit = clifford_workload(n);
    let stab = StabilizerBackend::ideal();
    let sv = StatevectorBackend::new();
    let program = stab.compile(&circuit).expect("clifford workload compiles");
    assert!(
        program.is_clifford(),
        "the comparison workload must be clifford-eligible"
    );

    // Correctness before speed. (a) Distribution agreement with the
    // exact backend at a TVD a 20k-shot sample clears comfortably.
    let exact = DensityMatrixBackend::ideal()
        .exact_distribution(&circuit)
        .expect("exact distribution");
    let (_, probe) = run_timed(&stab, &program, cfg.shots.max(8_192));
    let tvd: f64 = (0..(1u64 << n))
        .map(|k| (probe.probability(k) - exact.probability(k)).abs() / 2.0)
        .sum();
    // (b) Seeded runs are bit-reproducible.
    let (_, once) = run_timed(&stab, &program, cfg.shots);
    let (_, again) = run_timed(&stab, &program, cfg.shots);
    let reproducible = once == again;
    if tvd > 0.02 || !reproducible {
        eprintln!(
            "STABILIZER BACKEND BROKEN: tvd {tvd:.4} vs exact (limit 0.02), \
             reproducible {reproducible}"
        );
        std::process::exit(2);
    }

    // Warm both paths, then time them on the same program.
    let _ = run_timed(&sv, &program, cfg.shots / 4);
    let _ = run_timed(&stab, &program, cfg.shots / 4);
    let (sv_secs, sv_counts) = run_timed(&sv, &program, cfg.shots);
    let (stab_secs, stab_counts) = run_timed(&stab, &program, cfg.shots);
    assert_eq!(sv_counts.total(), stab_counts.total());
    let sv_per_shot = sv_secs * 1e9 / cfg.shots as f64;
    let stab_per_shot = stab_secs * 1e9 / cfg.shots as f64;
    let speedup = sv_per_shot / stab_per_shot;

    // The scale leg: 1,024-qubit GHZ parity, stabilizer only. Every
    // shot must have matching end qubits (even parity).
    let big = ghz_parity_1024();
    let big_program = stab.compile(&big).expect("1024-qubit ghz compiles");
    let warm = run_timed(&stab, &big_program, cfg.big_shots.min(32)).1;
    let (big_secs, big_counts) = run_timed(&stab, &big_program, cfg.big_shots);
    let parity_ok = [&warm, &big_counts]
        .iter()
        .all(|counts| counts.iter().all(|(key, _)| key == 0b00 || key == 0b11));
    if !parity_ok {
        eprintln!("STABILIZER BACKEND BROKEN: odd parity in the 1,024-qubit GHZ leg");
        std::process::exit(2);
    }
    let big_per_shot = big_secs * 1e9 / cfg.big_shots as f64;

    println!(
        "stab_throughput [{}]: n={n} clifford workload, {} shots/path; \
         1024-qubit ghz parity, {} shots",
        cfg.mode, cfg.shots, cfg.big_shots,
    );
    println!(
        "  statevector per-shot: {sv_per_shot:>10.0} ns   stabilizer per-shot: \
         {stab_per_shot:>10.0} ns   speedup {speedup:.2}x"
    );
    println!("  1024-qubit stabilizer per-shot: {big_per_shot:>10.0} ns   tvd vs exact {tvd:.4}");

    let json = format!(
        "{{\"bench\":\"stab_throughput\",\"mode\":\"{}\",\"qubits\":{n},\"shots\":{},\
         \"sv_per_shot_ns\":{:.0},\"stab_per_shot_ns\":{:.0},\"speedup\":{:.3},\
         \"big_qubits\":1024,\"big_shots\":{},\"big_per_shot_ns\":{:.0},\
         \"tvd\":{:.5},\"reproducible\":{}}}",
        cfg.mode,
        cfg.shots,
        sv_per_shot,
        stab_per_shot,
        speedup,
        cfg.big_shots,
        big_per_shot,
        tvd,
        reproducible,
    );
    std::fs::write(&out_path, &json).unwrap_or_else(|e| {
        eprintln!("failed to write {out_path}: {e}");
        std::process::exit(1);
    });
    println!("  wrote {out_path}");

    if let Some(baseline_path) = check_path {
        let baseline = std::fs::read_to_string(&baseline_path).unwrap_or_else(|e| {
            eprintln!("failed to read baseline {baseline_path}: {e}");
            std::process::exit(1);
        });
        let min_speedup = json_number_field(&baseline, "min_speedup").unwrap_or_else(|| {
            eprintln!("baseline {baseline_path} has no min_speedup field");
            std::process::exit(1);
        });
        println!("  speedup gate: {speedup:.2}x vs required {min_speedup:.2}x");
        if speedup < min_speedup {
            eprintln!(
                "PERF REGRESSION: stabilizer ran only {speedup:.2}x faster than the \
                 per-shot statevector path, below the {min_speedup:.2}x floor"
            );
            std::process::exit(4);
        }
        println!("  speedup gate: ok");
    }
}
