//! Assertion costs: instrumentation overhead in gates and the runtime
//! cost of executing asserted vs bare circuits (plus the fig6/fig7
//! verification circuits themselves).

use criterion::{criterion_group, criterion_main, Criterion};
use qassert::{AssertingCircuit, AssertionSession, Parity, SuperpositionBasis};
use qcircuit::library;
use qsim::{Backend, StatevectorBackend};

fn bench_instrumentation(c: &mut Criterion) {
    c.bench_function("instrument_bell_entanglement", |b| {
        b.iter(|| {
            let mut ac = AssertingCircuit::new(library::bell());
            ac.assert_entangled([0, 1], Parity::Even).unwrap();
            ac.measure_data();
            std::hint::black_box(ac.circuit().len())
        });
    });
    c.bench_function("instrument_ghz5_strong", |b| {
        b.iter(|| {
            let mut ac =
                AssertingCircuit::new(library::ghz(5)).with_mode(qassert::EntanglementMode::Strong);
            ac.assert_entangled([0, 1, 2, 3, 4], Parity::Even).unwrap();
            ac.measure_data();
            std::hint::black_box(ac.circuit().len())
        });
    });
}

fn bench_runtime_overhead(c: &mut Criterion) {
    let backend = StatevectorBackend::new().with_seed(3);
    let mut group = c.benchmark_group("run_1024_shots");
    group.sample_size(20);

    group.bench_function("bell_bare", |b| {
        let mut bare = library::bell();
        bare.measure_all();
        b.iter(|| std::hint::black_box(backend.run(&bare, 1024).unwrap().counts.total()));
    });
    group.bench_function("bell_asserted", |b| {
        let mut ac = AssertingCircuit::new(library::bell());
        ac.assert_entangled([0, 1], Parity::Even).unwrap();
        ac.measure_data();
        let session = AssertionSession::new(&backend).shots(1024);
        b.iter(|| std::hint::black_box(session.run(&ac).unwrap().shots_kept()));
    });
    group.finish();
}

fn bench_verification_circuits(c: &mut Criterion) {
    let backend = StatevectorBackend::new().with_seed(5);
    c.bench_function("fig6_classical_assert_quirk", |b| {
        let mut base = qcircuit::QuantumCircuit::new(1, 0);
        base.h(0).unwrap();
        let mut ac = AssertingCircuit::new(base);
        ac.assert_classical([0], [false]).unwrap();
        ac.measure_data();
        b.iter(|| std::hint::black_box(backend.run(ac.circuit(), 256).unwrap().counts.total()));
    });
    c.bench_function("fig7_superposition_assert_quirk", |b| {
        let mut ac = AssertingCircuit::new(qcircuit::QuantumCircuit::new(1, 0));
        ac.assert_superposition(0, SuperpositionBasis::Plus)
            .unwrap();
        ac.measure_data();
        b.iter(|| std::hint::black_box(backend.run(ac.circuit(), 256).unwrap().counts.total()));
    });
}

criterion_group!(
    benches,
    bench_instrumentation,
    bench_runtime_overhead,
    bench_verification_circuits
);
criterion_main!(benches);
