//! Simulator performance: state-vector gate application scaling and
//! density-matrix evolution cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qcircuit::{Gate, QubitId};
use qsim::{DensityMatrix, StateVector};

/// One layer of H on every qubit plus a CX chain.
fn entangling_layer(psi: &mut StateVector) {
    let n = psi.num_qubits();
    for q in 0..n {
        psi.apply_gate(&Gate::H, &[QubitId::from(q)]).unwrap();
    }
    for q in 0..n - 1 {
        psi.apply_gate(&Gate::Cx, &[QubitId::from(q), QubitId::from(q + 1)])
            .unwrap();
    }
}

fn bench_statevector_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("statevector_layer");
    group.sample_size(20);
    for n in [4usize, 8, 12, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut psi = StateVector::zero_state(n);
                entangling_layer(&mut psi);
                std::hint::black_box(psi.norm_sqr())
            });
        });
    }
    group.finish();
}

fn bench_density_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("density_layer");
    group.sample_size(10);
    for n in [2usize, 3, 4, 5] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut rho = DensityMatrix::zero_state(n);
                for q in 0..n {
                    rho.apply_gate(&Gate::H, &[QubitId::from(q)]).unwrap();
                }
                for q in 0..n - 1 {
                    rho.apply_gate(&Gate::Cx, &[QubitId::from(q), QubitId::from(q + 1)])
                        .unwrap();
                }
                std::hint::black_box(rho.purity())
            });
        });
    }
    group.finish();
}

fn bench_kraus_application(c: &mut Criterion) {
    let dep1 = qnoise::Kraus::depolarizing(0.01).unwrap();
    let dep2 = qnoise::Kraus::depolarizing2(0.05).unwrap();
    c.bench_function("kraus_1q_on_4q_density", |b| {
        b.iter(|| {
            let mut rho = DensityMatrix::zero_state(4);
            rho.apply_kraus(&dep1, &[QubitId::new(2)]).unwrap();
            std::hint::black_box(rho.trace())
        });
    });
    c.bench_function("kraus_2q_on_4q_density", |b| {
        b.iter(|| {
            let mut rho = DensityMatrix::zero_state(4);
            rho.apply_kraus(&dep2, &[QubitId::new(1), QubitId::new(2)])
                .unwrap();
            std::hint::black_box(rho.trace())
        });
    });
}

fn bench_measurement_sampling(c: &mut Criterion) {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    c.bench_function("sample_1024_from_12q_state", |b| {
        let mut psi = StateVector::zero_state(12);
        entangling_layer(&mut psi);
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            let mut acc = 0usize;
            for _ in 0..1024 {
                acc ^= psi.sample_index(&mut rng);
            }
            std::hint::black_box(acc)
        });
    });
}

criterion_group!(
    benches,
    bench_statevector_scaling,
    bench_density_scaling,
    bench_kraus_application,
    bench_measurement_sampling
);
criterion_main!(benches);
