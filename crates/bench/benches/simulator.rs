//! Simulator performance: state-vector gate application scaling,
//! density-matrix evolution cost, and the compiled execution layer
//! (compile-vs-interpret and fused-vs-unfused).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qcircuit::{Gate, QuantumCircuit, QubitId};
use qsim::{
    compile_with, run_compiled_shot, run_shot, Backend, CompileOptions, DensityMatrix, StateVector,
    StatevectorBackend, TrajectoryBackend,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One layer of H on every qubit plus a CX chain.
fn entangling_layer(psi: &mut StateVector) {
    let n = psi.num_qubits();
    for q in 0..n {
        psi.apply_gate(&Gate::H, &[QubitId::from(q)]).unwrap();
    }
    for q in 0..n - 1 {
        psi.apply_gate(&Gate::Cx, &[QubitId::from(q), QubitId::from(q + 1)])
            .unwrap();
    }
}

fn bench_statevector_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("statevector_layer");
    group.sample_size(20);
    for n in [4usize, 8, 12, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut psi = StateVector::zero_state(n);
                entangling_layer(&mut psi);
                std::hint::black_box(psi.norm_sqr())
            });
        });
    }
    group.finish();
}

fn bench_density_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("density_layer");
    group.sample_size(10);
    for n in [2usize, 3, 4, 5] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut rho = DensityMatrix::zero_state(n);
                for q in 0..n {
                    rho.apply_gate(&Gate::H, &[QubitId::from(q)]).unwrap();
                }
                for q in 0..n - 1 {
                    rho.apply_gate(&Gate::Cx, &[QubitId::from(q), QubitId::from(q + 1)])
                        .unwrap();
                }
                std::hint::black_box(rho.purity())
            });
        });
    }
    group.finish();
}

fn bench_kraus_application(c: &mut Criterion) {
    let dep1 = qnoise::Kraus::depolarizing(0.01).unwrap();
    let dep2 = qnoise::Kraus::depolarizing2(0.05).unwrap();
    c.bench_function("kraus_1q_on_4q_density", |b| {
        b.iter(|| {
            let mut rho = DensityMatrix::zero_state(4);
            rho.apply_kraus(&dep1, &[QubitId::new(2)]).unwrap();
            std::hint::black_box(rho.trace())
        });
    });
    c.bench_function("kraus_2q_on_4q_density", |b| {
        b.iter(|| {
            let mut rho = DensityMatrix::zero_state(4);
            rho.apply_kraus(&dep2, &[QubitId::new(1), QubitId::new(2)])
                .unwrap();
            std::hint::black_box(rho.trace())
        });
    });
}

fn bench_measurement_sampling(c: &mut Criterion) {
    c.bench_function("sample_1024_from_12q_state", |b| {
        let mut psi = StateVector::zero_state(12);
        entangling_layer(&mut psi);
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            let mut acc = 0usize;
            for _ in 0..1024 {
                acc ^= psi.sample_index(&mut rng);
            }
            std::hint::black_box(acc)
        });
    });
}

/// A 1q-heavy per-shot workload: teleportation-style conditioning defeats
/// the fast path, so every shot walks the full op stream.
fn per_shot_workload(n: usize, depth: usize) -> QuantumCircuit {
    let mut c = QuantumCircuit::new(n, n);
    for d in 0..depth {
        for q in 0..n {
            c.h(q).unwrap();
            c.t(q).unwrap();
            c.rz(0.1 * d as f64, q).unwrap();
        }
        for q in 0..n - 1 {
            c.cx(q, q + 1).unwrap();
        }
    }
    // Mid-circuit measurement + conditioned correction force per-shot
    // execution on every backend.
    c.measure(0, 0).unwrap();
    c.gate_if(Gate::X, [n - 1], 0, true).unwrap();
    for q in 0..n {
        c.measure(q, q).unwrap();
    }
    c
}

/// Compile-once-execute-many vs interpret-per-shot: the tentpole of the
/// compiled execution layer. Both sides execute the same 1000 shots with
/// the same seed; the compiled side pays lowering once outside the loop.
fn bench_compile_vs_interpret(c: &mut Criterion) {
    let circuit = per_shot_workload(6, 6);
    let noise = qnoise::presets::uniform(6, 0.005, 0.02, 0.01).unwrap();
    let mut group = c.benchmark_group("run_1000_shots_6q");
    group.sample_size(10);

    group.bench_function("interpret_ideal", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            let mut acc = 0u64;
            for _ in 0..1000 {
                if let Some(r) = run_shot(&circuit, None, &mut rng).unwrap() {
                    acc ^= r.clbits;
                }
            }
            std::hint::black_box(acc)
        });
    });
    group.bench_function("compiled_ideal", |b| {
        let program = compile_with(&circuit, None, CompileOptions::default()).unwrap();
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            let mut acc = 0u64;
            for _ in 0..1000 {
                if let Some(r) = run_compiled_shot(&program, &mut rng).unwrap() {
                    acc ^= r.clbits;
                }
            }
            std::hint::black_box(acc)
        });
    });
    group.bench_function("interpret_noisy", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            let mut acc = 0u64;
            for _ in 0..1000 {
                if let Some(r) = run_shot(&circuit, Some(&noise), &mut rng).unwrap() {
                    acc ^= r.clbits;
                }
            }
            std::hint::black_box(acc)
        });
    });
    group.bench_function("compiled_noisy", |b| {
        let program = compile_with(&circuit, Some(&noise), CompileOptions::default()).unwrap();
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            let mut acc = 0u64;
            for _ in 0..1000 {
                if let Some(r) = run_compiled_shot(&program, &mut rng).unwrap() {
                    acc ^= r.clbits;
                }
            }
            std::hint::black_box(acc)
        });
    });
    group.finish();

    c.bench_function("compile_6q_depth6", |b| {
        b.iter(|| {
            std::hint::black_box(
                compile_with(&circuit, None, CompileOptions::default())
                    .unwrap()
                    .ops()
                    .len(),
            )
        });
    });
}

/// Fused vs unfused execution through the public backend API.
fn bench_fused_vs_unfused(c: &mut Criterion) {
    let circuit = per_shot_workload(6, 6);
    let mut group = c.benchmark_group("statevector_1000_shots");
    group.sample_size(10);
    group.bench_function("fused", |b| {
        let backend = StatevectorBackend::new().with_seed(2);
        let program = backend.compile(&circuit).unwrap();
        b.iter(|| {
            std::hint::black_box(backend.run_compiled(&program, 1000).unwrap().counts.total())
        });
    });
    group.bench_function("unfused", |b| {
        let backend = StatevectorBackend::new().with_seed(2).with_fusion(false);
        let program = backend.compile(&circuit).unwrap();
        b.iter(|| {
            std::hint::black_box(backend.run_compiled(&program, 1000).unwrap().counts.total())
        });
    });
    group.finish();

    let noise = qnoise::presets::uniform(6, 0.005, 0.02, 0.01).unwrap();
    let mut group = c.benchmark_group("trajectory_500_shots");
    group.sample_size(10);
    group.bench_function("fused", |b| {
        let backend = TrajectoryBackend::new(noise.clone()).with_seed(2);
        let program = backend.compile(&circuit).unwrap();
        b.iter(|| {
            std::hint::black_box(backend.run_compiled(&program, 500).unwrap().counts.total())
        });
    });
    group.bench_function("unfused", |b| {
        let backend = TrajectoryBackend::new(noise.clone())
            .with_seed(2)
            .with_fusion(false);
        let program = backend.compile(&circuit).unwrap();
        b.iter(|| {
            std::hint::black_box(backend.run_compiled(&program, 500).unwrap().counts.total())
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_statevector_scaling,
    bench_density_scaling,
    bench_kraus_application,
    bench_measurement_sampling,
    bench_compile_vs_interpret,
    bench_fused_vs_unfused
);
criterion_main!(benches);
