//! Offline, deterministic subset of the `rand` crate API.
//!
//! The build environment has no access to a crates.io mirror, so this
//! workspace-local shim provides exactly the surface the suite uses:
//!
//! * [`Rng::gen`] for `f64` (uniform in `[0, 1)`), `u64`, `u32`, and
//!   `bool`,
//! * [`SeedableRng::seed_from_u64`],
//! * [`rngs::StdRng`] — a xoshiro256++ generator seeded through
//!   SplitMix64.
//!
//! Determinism is a feature here, not a limitation: every simulator seed
//! in the suite maps to one reproducible shot sequence on every platform,
//! which the cross-backend equivalence tests rely on.

/// Types that can be drawn uniformly from an RNG.
///
/// This replaces rand's `Standard` distribution machinery for the small
/// set of types the suite samples.
pub trait Uniform: Sized {
    /// Draws one value from `rng`.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Uniform for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Uniform for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Uniform for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Uniform for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (the standard
    /// `u64 >> 11` construction).
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// The raw generator interface (object-safe).
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

// Forwarding impl: lets `rng.gen()` resolve through auto-ref when the
// caller holds `&mut R` with `R: Rng + ?Sized` (mirrors rand proper).
impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// The user-facing sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one uniformly distributed value.
    fn gen<T: Uniform>(&mut self) -> T {
        T::from_rng(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seeding interface (only the `u64` entry point the suite uses).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The suite's standard deterministic generator: xoshiro256++ with
    /// SplitMix64 seed expansion.
    ///
    /// Unlike rand's `StdRng` this stream is guaranteed stable across
    /// versions — simulator results for a given seed never change.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step (Blackman & Vigna).
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 4);
    }

    #[test]
    fn f64_is_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.02, "mean = {mean}");
    }

    #[test]
    fn works_through_unsized_references() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(3);
        let a = draw(&mut rng);
        let b = draw(&mut rng);
        assert_ne!(a, b);
    }
}
