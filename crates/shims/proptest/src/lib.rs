//! Offline, deterministic subset of the `proptest` API.
//!
//! The build environment cannot fetch crates, so this shim implements the
//! slice of proptest the suite's property tests use:
//!
//! * [`Strategy`] over numeric ranges, tuples, [`Just`], mapped/filtered
//!   strategies, and [`collection::vec`],
//! * `any::<bool>()` / `any::<u64>()`,
//! * the [`proptest!`] macro with optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]`,
//! * `prop_oneof!`, `prop_assert!`, `prop_assert_eq!`.
//!
//! Unlike proptest proper there is **no shrinking** and generation is
//! fully deterministic (a fixed seed per test body), which makes failures
//! reproducible by construction and keeps CI stable.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;

/// The RNG handed to strategies by the [`proptest!`] runner.
pub type TestRng = StdRng;

/// A value generator.
///
/// Implementors produce one value per [`Strategy::pick`] call; the
/// [`proptest!`] macro drives `cases` picks per test.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn pick(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (proptest's `prop_map`).
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Rejects values failing `pred`, resampling up to a bounded number
    /// of times (proptest's `prop_filter`).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            pred,
            reason,
        }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A heap-allocated, type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn pick(&self, rng: &mut TestRng) -> T {
        (**self).pick(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn pick(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn pick(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.pick(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    pred: F,
    reason: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn pick(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.pick(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter '{}' rejected 1000 consecutive samples",
            self.reason
        );
    }
}

/// Uniform choice between boxed alternatives (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics on an empty option list.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn pick(&self, rng: &mut TestRng) -> T {
        let i = (rng.gen::<u64>() % self.options.len() as u64) as usize;
        self.options[i].pick(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn pick(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.gen::<u64>() % span) as $t
            }
        }
    )+};
}

int_range_strategy!(u64, u32, usize, i64, i32);

impl Strategy for Range<f64> {
    type Value = f64;
    fn pick(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.gen::<f64>() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn pick(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.pick(rng),)+)
            }
        }
    )+};
}

tuple_strategy!((A, B), (A, B, C), (A, B, C, D));

/// The `any::<T>()` entry point for the types the suite samples.
pub trait Arbitrary: Sized {
    /// A full-domain strategy for the type.
    fn arbitrary() -> BoxedStrategy<Self>;
}

/// A strategy over all values of `T`.
pub fn any<T: Arbitrary>() -> BoxedStrategy<T> {
    T::arbitrary()
}

struct AnyOf<T>(fn(&mut TestRng) -> T);

impl<T> Strategy for AnyOf<T> {
    type Value = T;
    fn pick(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary() -> BoxedStrategy<bool> {
        Box::new(AnyOf(|rng| rng.gen::<bool>()))
    }
}

impl Arbitrary for u64 {
    fn arbitrary() -> BoxedStrategy<u64> {
        Box::new(AnyOf(|rng| rng.gen::<u64>()))
    }
}

impl Arbitrary for u32 {
    fn arbitrary() -> BoxedStrategy<u32> {
        Box::new(AnyOf(|rng| rng.gen::<u32>()))
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// A strategy producing vectors whose length is drawn from `len` and
    /// whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// proptest's `collection::vec`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn pick(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + (rng.gen::<u64>() % span) as usize;
            (0..n).map(|_| self.element.pick(rng)).collect()
        }
    }
}

/// Per-`proptest!` configuration (only the case count is honored).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` iterations per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Everything a property-test file needs in one import.
pub mod prelude {
    pub use super::{
        any, collection, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, Union,
    };
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Deterministic seed for a test body, derived from its name.
pub fn seed_for(name: &str) -> u64 {
    // FNV-1a over the test name: stable across runs and platforms.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The deterministic per-test generator used by [`proptest!`] (named so
/// the macro does not require `rand` in the consuming crate).
pub fn rng_for(name: &str) -> TestRng {
    TestRng::seed_from_u64(seed_for(name))
}

/// Defines deterministic property tests.
///
/// Mirrors proptest's surface syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn addition_commutes(a in 0u64..100, b in 0u64..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (@cfg ($config:expr) ) => {};
    (
        @cfg ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::rng_for(stringify!($name));
            for case in 0..config.cases {
                $(let $pat = $crate::Strategy::pick(&($strat), &mut rng);)+
                let run = || -> () { $body };
                let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run));
                if let Err(payload) = outcome {
                    eprintln!(
                        "proptest case {}/{} of `{}` failed",
                        case + 1,
                        config.cases,
                        stringify!($name)
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    ( $($rest:tt)* ) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// proptest's `prop_oneof!`: uniform choice between strategies of a
/// common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Asserts inside a property body (no shrinking, so this is `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = <super::TestRng as rand::SeedableRng>::seed_from_u64(1);
        for _ in 0..200 {
            let x = Strategy::pick(&(3usize..9), &mut rng);
            assert!((3..9).contains(&x));
            let y = Strategy::pick(&(-1.5f64..2.5), &mut rng);
            assert!((-1.5..2.5).contains(&y));
        }
    }

    #[test]
    fn oneof_and_map_compose() {
        let strat = prop_oneof![Just(0u64), (1u64..10).prop_map(|x| x * 100),];
        let mut rng = <super::TestRng as rand::SeedableRng>::seed_from_u64(2);
        let mut saw_zero = false;
        let mut saw_mapped = false;
        for _ in 0..100 {
            match Strategy::pick(&strat, &mut rng) {
                0 => saw_zero = true,
                x if (100..1000).contains(&x) && x % 100 == 0 => saw_mapped = true,
                other => panic!("unexpected {other}"),
            }
        }
        assert!(saw_zero && saw_mapped);
    }

    #[test]
    fn vec_strategy_respects_length_range() {
        let strat = collection::vec(0u64..5, 2..6);
        let mut rng = <super::TestRng as rand::SeedableRng>::seed_from_u64(3);
        for _ in 0..50 {
            let v = Strategy::pick(&strat, &mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|x| *x < 5));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_runnable_tests(a in 0u64..50, flip in any::<bool>()) {
            let b = if flip { a } else { a + 1 };
            prop_assert!(b >= a);
        }

        #[test]
        fn tuple_patterns_destructure((x, y) in (0u32..4, 0u32..4)) {
            prop_assert!(x < 4 && y < 4);
        }
    }
}
