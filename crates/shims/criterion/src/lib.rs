//! Offline subset of the `criterion` benchmarking API.
//!
//! The build environment cannot fetch crates, so this shim provides the
//! surface the suite's benches use — [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`BenchmarkId`], `criterion_group!`,
//! `criterion_main!` — backed by a simple calibrated wall-clock harness:
//! each benchmark is warmed up, then timed over enough iterations to fill
//! a measurement window, and the per-iteration median of several samples
//! is printed.
//!
//! Statistical machinery (outlier analysis, HTML reports) is out of
//! scope; the numbers are good enough to compare compiled-vs-interpreted
//! execution within one run on one machine, which is what the suite's
//! benches are for.

use std::time::{Duration, Instant};

/// Target wall-clock time for one measurement sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(40);
/// Warm-up budget per benchmark.
const WARMUP_TARGET: Duration = Duration::from_millis(20);

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    samples: Vec<f64>,
    iters_per_sample: u64,
    sample_count: usize,
}

impl Bencher {
    fn new(sample_count: usize) -> Self {
        Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            sample_count,
        }
    }

    /// Benchmarks `f`, keeping its return value alive via
    /// [`std::hint::black_box`].
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up while estimating the iteration count per sample.
        let mut iters = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= WARMUP_TARGET {
                let per_iter = elapsed.as_secs_f64() / iters as f64;
                self.iters_per_sample =
                    ((SAMPLE_TARGET.as_secs_f64() / per_iter).ceil() as u64).max(1);
                break;
            }
            iters = iters.saturating_mul(2);
        }
        // Measurement samples.
        self.samples.clear();
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                std::hint::black_box(f());
            }
            self.samples
                .push(start.elapsed().as_secs_f64() / self.iters_per_sample as f64);
        }
    }

    fn median_ns(&self) -> f64 {
        let mut s = self.samples.clone();
        s.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        if s.is_empty() {
            return f64::NAN;
        }
        s[s.len() / 2] * 1e9
    }
}

fn report(name: &str, bencher: &Bencher) {
    let ns = bencher.median_ns();
    let (value, unit) = if ns < 1_000.0 {
        (ns, "ns")
    } else if ns < 1_000_000.0 {
        (ns / 1_000.0, "µs")
    } else {
        (ns / 1_000_000.0, "ms")
    };
    println!(
        "bench {name:<52} {value:>10.3} {unit}/iter  ({} samples × {} iters)",
        bencher.samples.len(),
        bencher.iters_per_sample
    );
}

/// Parameterized benchmark identifiers (`group/parameter`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id rendering as `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{parameter}", function.into()),
        }
    }

    /// An id rendering as just the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// The top-level benchmark driver.
pub struct Criterion {
    sample_count: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_count: 11 }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher::new(self.sample_count);
        f(&mut bencher);
        report(name, &bencher);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_count = self.sample_count;
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_count,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_count: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measurement samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = n.max(3);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher::new(self.sample_count);
        f(&mut bencher);
        report(&format!("{}/{id}", self.name), &bencher);
        self
    }

    /// Runs one parameterized benchmark inside the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher::new(self.sample_count);
        f(&mut bencher, input);
        report(&format!("{}/{id}", self.name), &bencher);
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {
        let _ = self.criterion;
    }
}

/// Prevents the optimizer from eliding a value (re-export of
/// `std::hint::black_box` under criterion's name).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group function running each listed benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_produces_positive_medians() {
        let mut b = Bencher::new(3);
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..100u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        assert!(b.median_ns() > 0.0);
        assert_eq!(b.samples.len(), 3);
    }

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(BenchmarkId::from_parameter(12).to_string(), "12");
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
    }
}
