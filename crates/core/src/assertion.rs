//! Assertion types.
//!
//! The paper defines three assertion families (Section 3); [`Assertion`]
//! is their declarative description, independent of where ancillas get
//! allocated. Synthesis into circuit fragments lives in
//! [`crate::instrument`].

use crate::error::AssertError;
use qcircuit::QubitId;
use std::fmt;

/// Which GHZ-type parity class an entanglement assertion expects
/// (Section 3.2).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Parity {
    /// `a|0…0⟩ + b|1…1⟩` — all qubits agree (ancilla initialized `|0⟩`).
    #[default]
    Even,
    /// `a|01⟩ + b|10⟩` — qubits anti-correlated (ancilla initialized
    /// `|1⟩`).
    Odd,
}

/// Which equal-superposition state a superposition assertion expects
/// (Section 3.3).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum SuperpositionBasis {
    /// `|+⟩ = (|0⟩ + |1⟩)/√2`.
    #[default]
    Plus,
    /// `|−⟩ = (|0⟩ − |1⟩)/√2`.
    Minus,
}

/// How entanglement assertions allocate ancillas.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum EntanglementMode {
    /// The paper's design: one ancilla accumulating an even number of
    /// CNOTs (Figures 3–4).
    #[default]
    Paper,
    /// Extension: `k−1` ancillas checking each adjacent pair — catches
    /// bugs the single-parity check cannot (e.g. a corrupted middle
    /// qubit whose parity error cancels), at the cost of more ancillas.
    Strong,
}

/// A dynamic runtime assertion (the paper's contribution).
///
/// # Example
///
/// ```
/// use qassert::{Assertion, Parity};
/// let a = Assertion::entanglement([0, 1, 2], Parity::Even)?;
/// assert_eq!(a.qubits().len(), 3);
/// assert_eq!(a.num_ancillas(Default::default()), 1);
/// # Ok::<(), qassert::AssertError>(())
/// ```
#[derive(Clone, Debug, PartialEq)]
pub enum Assertion {
    /// Assert that each qubit holds a classical value (Section 3.1,
    /// Figure 2): one ancilla and one CNOT per qubit.
    Classical {
        /// The qubits under test.
        qubits: Vec<QubitId>,
        /// The expected classical bit per qubit.
        expected: Vec<bool>,
    },
    /// Assert GHZ-type entanglement (Section 3.2, Figures 3–4): a parity
    /// computation into one ancilla with an even number of CNOTs.
    Entanglement {
        /// The qubits under test (at least two).
        qubits: Vec<QubitId>,
        /// The expected correlation class.
        parity: Parity,
    },
    /// Assert an equal superposition (Section 3.3, Figure 5):
    /// `CX(q,a); H⊗H; CX(q,a)` and measure the ancilla.
    Superposition {
        /// The qubit under test.
        qubit: QubitId,
        /// Whether `|+⟩` or `|−⟩` is expected.
        basis: SuperpositionBasis,
    },
}

impl Assertion {
    /// Builds a classical-value assertion.
    ///
    /// # Errors
    ///
    /// Returns [`AssertError::ExpectedLengthMismatch`] when the lists
    /// differ in length, [`AssertError::TooFewQubits`] for an empty
    /// list, or [`AssertError::DuplicateQubit`].
    pub fn classical<Q: Into<QubitId>>(
        qubits: impl IntoIterator<Item = Q>,
        expected: impl IntoIterator<Item = bool>,
    ) -> Result<Self, AssertError> {
        let qubits: Vec<QubitId> = qubits.into_iter().map(Into::into).collect();
        let expected: Vec<bool> = expected.into_iter().collect();
        if qubits.is_empty() {
            return Err(AssertError::TooFewQubits { got: 0, needed: 1 });
        }
        if qubits.len() != expected.len() {
            return Err(AssertError::ExpectedLengthMismatch {
                qubits: qubits.len(),
                expected: expected.len(),
            });
        }
        check_distinct(&qubits)?;
        Ok(Assertion::Classical { qubits, expected })
    }

    /// Builds an entanglement assertion over at least two qubits.
    ///
    /// # Errors
    ///
    /// Returns [`AssertError::TooFewQubits`] or
    /// [`AssertError::DuplicateQubit`].
    pub fn entanglement<Q: Into<QubitId>>(
        qubits: impl IntoIterator<Item = Q>,
        parity: Parity,
    ) -> Result<Self, AssertError> {
        let qubits: Vec<QubitId> = qubits.into_iter().map(Into::into).collect();
        if qubits.len() < 2 {
            return Err(AssertError::TooFewQubits {
                got: qubits.len(),
                needed: 2,
            });
        }
        check_distinct(&qubits)?;
        Ok(Assertion::Entanglement { qubits, parity })
    }

    /// Builds a superposition assertion on one qubit.
    pub fn superposition(qubit: impl Into<QubitId>, basis: SuperpositionBasis) -> Self {
        Assertion::Superposition {
            qubit: qubit.into(),
            basis,
        }
    }

    /// The qubits under test.
    pub fn qubits(&self) -> Vec<QubitId> {
        match self {
            Assertion::Classical { qubits, .. } | Assertion::Entanglement { qubits, .. } => {
                qubits.clone()
            }
            Assertion::Superposition { qubit, .. } => vec![*qubit],
        }
    }

    /// Number of ancilla qubits (and classical bits) the assertion
    /// consumes under the given entanglement mode.
    pub fn num_ancillas(&self, mode: EntanglementMode) -> usize {
        match self {
            Assertion::Classical { qubits, .. } => qubits.len(),
            Assertion::Entanglement { qubits, .. } => match mode {
                EntanglementMode::Paper => 1,
                EntanglementMode::Strong => qubits.len() - 1,
            },
            Assertion::Superposition { .. } => 1,
        }
    }

    /// Number of CNOT gates the synthesized fragment adds under the
    /// given mode (the paper's overhead metric).
    pub fn cnot_overhead(&self, mode: EntanglementMode) -> usize {
        match self {
            Assertion::Classical { qubits, .. } => qubits.len(),
            Assertion::Entanglement { qubits, .. } => match mode {
                // Even number of CNOTs: k rounded up to even (Fig. 4).
                EntanglementMode::Paper => (qubits.len() + 1) & !1,
                EntanglementMode::Strong => 2 * (qubits.len() - 1),
            },
            Assertion::Superposition { .. } => 2,
        }
    }

    /// A short name for reports.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Assertion::Classical { .. } => "classical",
            Assertion::Entanglement { .. } => "entanglement",
            Assertion::Superposition { .. } => "superposition",
        }
    }
}

fn check_distinct(qubits: &[QubitId]) -> Result<(), AssertError> {
    for (i, q) in qubits.iter().enumerate() {
        if qubits[i + 1..].contains(q) {
            return Err(AssertError::DuplicateQubit { qubit: q.index() });
        }
    }
    Ok(())
}

impl fmt::Display for Assertion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Assertion::Classical { qubits, expected } => {
                let parts: Vec<String> = qubits
                    .iter()
                    .zip(expected)
                    .map(|(q, e)| format!("{q}=={}", u8::from(*e)))
                    .collect();
                write!(f, "assert_classical({})", parts.join(", "))
            }
            Assertion::Entanglement { qubits, parity } => {
                let qs: Vec<String> = qubits.iter().map(|q| q.to_string()).collect();
                write!(f, "assert_entangled({}; {:?})", qs.join(", "), parity)
            }
            Assertion::Superposition { qubit, basis } => {
                let sign = match basis {
                    SuperpositionBasis::Plus => "+",
                    SuperpositionBasis::Minus => "-",
                };
                write!(f, "assert_superposition({qubit} == |{sign}⟩)")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classical_builder_validates() {
        assert!(Assertion::classical([0, 1], [true, false]).is_ok());
        assert!(matches!(
            Assertion::classical([0, 1], [true]),
            Err(AssertError::ExpectedLengthMismatch {
                qubits: 2,
                expected: 1
            })
        ));
        assert!(matches!(
            Assertion::classical(Vec::<u32>::new(), Vec::new()),
            Err(AssertError::TooFewQubits { .. })
        ));
        assert!(matches!(
            Assertion::classical([1, 1], [true, true]),
            Err(AssertError::DuplicateQubit { qubit: 1 })
        ));
    }

    #[test]
    fn entanglement_builder_validates() {
        assert!(Assertion::entanglement([0, 1], Parity::Even).is_ok());
        assert!(matches!(
            Assertion::entanglement([0], Parity::Even),
            Err(AssertError::TooFewQubits { got: 1, needed: 2 })
        ));
    }

    #[test]
    fn ancilla_counts_follow_paper() {
        let c = Assertion::classical([0, 1, 2], [false, false, false]).unwrap();
        assert_eq!(c.num_ancillas(EntanglementMode::Paper), 3);

        let e2 = Assertion::entanglement([0, 1], Parity::Even).unwrap();
        assert_eq!(e2.num_ancillas(EntanglementMode::Paper), 1);
        let e4 = Assertion::entanglement([0, 1, 2, 3], Parity::Even).unwrap();
        assert_eq!(e4.num_ancillas(EntanglementMode::Paper), 1);
        assert_eq!(e4.num_ancillas(EntanglementMode::Strong), 3);

        let s = Assertion::superposition(0, SuperpositionBasis::Plus);
        assert_eq!(s.num_ancillas(EntanglementMode::Paper), 1);
    }

    #[test]
    fn cnot_overhead_uses_even_rule() {
        // Fig. 3: two qubits → 2 CNOTs; Fig. 4: three qubits → 4 CNOTs.
        let e2 = Assertion::entanglement([0, 1], Parity::Even).unwrap();
        assert_eq!(e2.cnot_overhead(EntanglementMode::Paper), 2);
        let e3 = Assertion::entanglement([0, 1, 2], Parity::Even).unwrap();
        assert_eq!(e3.cnot_overhead(EntanglementMode::Paper), 4);
        let e5 = Assertion::entanglement([0, 1, 2, 3, 4], Parity::Even).unwrap();
        assert_eq!(e5.cnot_overhead(EntanglementMode::Paper), 6);
        assert_eq!(e3.cnot_overhead(EntanglementMode::Strong), 4);
    }

    #[test]
    fn display_is_readable() {
        let a = Assertion::classical([1], [false]).unwrap();
        assert_eq!(a.to_string(), "assert_classical(q1==0)");
        let s = Assertion::superposition(2, SuperpositionBasis::Minus);
        assert!(s.to_string().contains("|-⟩"));
    }

    #[test]
    fn kind_names() {
        assert_eq!(
            Assertion::superposition(0, SuperpositionBasis::Plus).kind_name(),
            "superposition"
        );
        assert_eq!(
            Assertion::entanglement([0, 1], Parity::Odd)
                .unwrap()
                .kind_name(),
            "entanglement"
        );
    }

    #[test]
    fn qubits_accessor_collects() {
        let a = Assertion::entanglement([3, 1, 2], Parity::Even).unwrap();
        let qs: Vec<usize> = a.qubits().iter().map(|q| q.index()).collect();
        assert_eq!(qs, vec![3, 1, 2]);
    }
}
