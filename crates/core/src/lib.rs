//! Dynamic runtime assertions for quantum programs.
//!
//! This crate implements the primary contribution of Zhou & Byrd,
//! *Quantum Circuits for Dynamic Runtime Assertions in Quantum
//! Computation* (ASPLOS 2020): runtime assertions that check quantum
//! program state **without stopping execution**, by entangling an ancilla
//! qubit with the qubits under test and measuring only the ancilla.
//!
//! Three assertion families (paper Section 3):
//!
//! * [`Assertion::Classical`] — `(ψ == |0⟩)` / `(ψ == |1⟩)` per qubit
//!   (Fig. 2): one CNOT into a per-qubit ancilla,
//! * [`Assertion::Entanglement`] — GHZ-type parity (Figs. 3–4): CNOTs
//!   from each qubit into one ancilla, with the even-count rule so the
//!   ancilla disentangles,
//! * [`Assertion::Superposition`] — `(ψ == |+⟩/|−⟩)` (Fig. 5):
//!   `CX; H⊗H; CX`.
//!
//! An ancilla measuring **1 signals an assertion error**. Beyond
//! debugging, the measurements filter erroneous NISQ shots
//! ([`filter::ErrorReduction`], paper Section 4 / Tables 1–2), and the
//! ancilla measurement can *project* the tested qubits into the asserted
//! subspace ([`theory`], verified against the Section 3 proofs).
//!
//! The stop-and-measure [`statistical`] baseline (Huang & Martonosi,
//! ISCA'19) is included for comparison; its verdicts report
//! `program_continues = false`, the limitation dynamic assertions
//! remove.
//!
//! # Quickstart
//!
//! Execution goes through an [`AssertionSession`]: it owns the backend,
//! program cache, shard policy, shot plan, and filter settings, so sweep
//! loops configure everything once and every run is compile-free after
//! the first.
//!
//! ```
//! use qassert::{AssertionSession, AssertingCircuit, Parity};
//! use qcircuit::library;
//! use qsim::StatevectorBackend;
//!
//! # fn main() -> Result<(), qassert::AssertError> {
//! // Build a Bell pair, assert its entanglement mid-circuit, keep going.
//! let mut program = AssertingCircuit::new(library::bell());
//! program.assert_entangled([0, 1], Parity::Even)?;
//! program.measure_data();
//!
//! let session = AssertionSession::new(StatevectorBackend::new())
//!     .shot_plan(qassert::ShotPlan::Fixed(1024));
//! let outcome = session.run(&program)?;
//! assert_eq!(outcome.assertion_error_rate, 0.0); // correct program
//! # Ok(())
//! # }
//! ```
//!
//! The shot budget is a [`ShotPlan`]: `Fixed(n)` (the default, and what
//! the `.shots(n)` shim sets) runs the whole budget in one backend call;
//! [`ShotPlan::Sequential`] runs tranches and stops each run as soon as
//! every assertion's anytime-valid verdict
//! ([`statistical::SequentialTest`]) is decided — see
//! [`session`]'s module docs.
//!
//! Migrating from the pre-session free functions
//! (`run_with_assertions` & co., now behind the off-by-default
//! `legacy-api` cargo feature):
//!
//! | old | new |
//! |---|---|
//! | `run_with_assertions(&b, &ac, n)` | `AssertionSession::new(&b).shots(n).run(&ac)` |
//! | `run_with_assertions_cached(&b, &ac, n, &cache)` | `AssertionSession::new(&b).shots(n).cache(&cache).run(&ac)` |
//! | `analyze(raw, &ac)` | `session.analyze(raw, &ac)` |
//! | `b.run(circuit, n)` then `analyze` | `session.run_circuit(circuit)` then `session.analyze` |
//! | per-point loop + `push_cache_metrics` | `session.run_sweep(circuits)` → `SweepOutcome::telemetry` |
//! | `.shots(n)` | `.shot_plan(ShotPlan::Fixed(n))`, or keep the shim |
//! | `sweep.points[i]` | `sweep.point(i)` / `sweep.iter()` / `sweep.outcomes()` |

pub mod assertion;
pub mod error;
pub mod estimate;
pub mod filter;
pub mod instrument;
pub mod mitigation;
pub mod plan;
pub mod report;
pub mod runtime;
pub mod session;
pub mod statistical;
pub mod theory;

pub use assertion::{Assertion, EntanglementMode, Parity, SuperpositionBasis};
pub use error::AssertError;
pub use estimate::Estimate;
pub use filter::{
    assertion_error_rate, assertion_fired_shots, error_rate, filter_assertion_bits, ErrorReduction,
};
pub use instrument::{AssertingCircuit, AssertionId, AssertionRecord};
pub use mitigation::ReadoutMitigator;
pub use plan::{
    PlanTrace, ShotPlan, StopReason, DEFAULT_SEQUENTIAL_MAX_SHOTS, DEFAULT_SEQUENTIAL_MIN_SHOTS,
    DEFAULT_SEQUENTIAL_TRANCHE,
};
pub use report::{Comparison, ExperimentReport, Metric, OutcomeRow, OutcomeTable, SessionRecord};
#[cfg(feature = "legacy-api")]
#[allow(deprecated)]
pub use runtime::{analyze, run_with_assertions, run_with_assertions_cached};
pub use runtime::{AssertionOutcome, AssertionStats, FilterPolicy, MitigatedOutcome};
pub use session::{
    AssertionSession, SessionTelemetry, SweepOutcome, SweepPoint, SweepPolicy, DEFAULT_SHOTS,
};
pub use statistical::{
    AssertionVerdict, SequentialTest, SequentialVerdict, StatisticalAssertion, StatisticalKind,
    StatisticalVerdict, DEFAULT_VERDICT_ALPHA, DEFAULT_VERDICT_THRESHOLD,
};
