//! Assertion instrumentation.
//!
//! [`AssertingCircuit`] wraps a [`QuantumCircuit`] under construction and
//! splices in the paper's assertion fragments at the current program
//! point, allocating ancilla qubits and classical bits as it goes:
//!
//! * **classical** (Fig. 2) — per asserted qubit: fresh ancilla,
//!   optional `X` (to assert `== |1⟩`), `CX(q → a)`, measure `a`,
//! * **entanglement** (Figs. 3–4) — one ancilla, optional `X` (odd
//!   parity), CNOTs from the qubits under test with the **even-count
//!   rule** (`k` odd ⇒ the last CNOT is repeated so the ancilla
//!   disentangles), measure,
//! * **superposition** (Fig. 5) — `CX(q,a); H(q); H(a); CX(q,a)`,
//!   optional `X(a)` to expect `|−⟩`, measure.
//!
//! The uniform runtime convention is: **an assertion clbit reading 1
//! means assertion error** — exactly the paper's convention.

use crate::assertion::{Assertion, EntanglementMode, Parity, SuperpositionBasis};
use crate::error::AssertError;
use qcircuit::{ClbitId, QuantumCircuit, QubitId};

/// Identifier of an instrumented assertion within one circuit.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AssertionId(usize);

impl AssertionId {
    /// The index of this assertion in [`AssertingCircuit::records`].
    pub fn index(self) -> usize {
        self.0
    }
}

/// Bookkeeping for one instrumented assertion.
#[derive(Clone, Debug, PartialEq)]
pub struct AssertionRecord {
    /// The assertion that was instrumented.
    pub assertion: Assertion,
    /// The ancilla qubits it allocated (or reused).
    pub ancillas: Vec<QubitId>,
    /// The classical bits its ancilla measurements landed in; a bit
    /// reading 1 at runtime means this assertion fired.
    pub clbits: Vec<ClbitId>,
}

/// A circuit plus its instrumented assertions.
///
/// # Example
///
/// ```
/// use qassert::{AssertingCircuit, Parity};
/// use qcircuit::library;
///
/// # fn main() -> Result<(), qassert::AssertError> {
/// let mut ac = AssertingCircuit::new(library::bell());
/// ac.assert_entangled([0, 1], Parity::Even)?;
/// ac.measure_data();
/// // 2 data qubits + 1 ancilla
/// assert_eq!(ac.circuit().num_qubits(), 3);
/// assert_eq!(ac.records().len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct AssertingCircuit {
    circuit: QuantumCircuit,
    data_qubits: usize,
    records: Vec<AssertionRecord>,
    mode: EntanglementMode,
    reuse_ancillas: bool,
    free_ancillas: Vec<QubitId>,
}

impl AssertingCircuit {
    /// Wraps a base circuit; all of its current qubits are treated as
    /// data qubits.
    pub fn new(base: QuantumCircuit) -> Self {
        let data_qubits = base.num_qubits();
        AssertingCircuit {
            circuit: base,
            data_qubits,
            records: Vec::new(),
            mode: EntanglementMode::Paper,
            reuse_ancillas: false,
            free_ancillas: Vec::new(),
        }
    }

    /// Selects the entanglement-assertion ancilla strategy.
    #[must_use]
    pub fn with_mode(mut self, mode: EntanglementMode) -> Self {
        self.mode = mode;
        self
    }

    /// Enables ancilla recycling: measured ancillas are reset and reused
    /// by later assertions, trading circuit depth for width (an
    /// extension beyond the paper).
    #[must_use]
    pub fn with_ancilla_reuse(mut self, reuse: bool) -> Self {
        self.reuse_ancillas = reuse;
        self
    }

    /// The instrumented circuit so far.
    pub fn circuit(&self) -> &QuantumCircuit {
        &self.circuit
    }

    /// Mutable access to keep appending program logic between
    /// assertions.
    pub fn circuit_mut(&mut self) -> &mut QuantumCircuit {
        &mut self.circuit
    }

    /// Consumes the wrapper, returning the instrumented circuit and the
    /// assertion records.
    pub fn into_parts(self) -> (QuantumCircuit, Vec<AssertionRecord>) {
        (self.circuit, self.records)
    }

    /// The instrumented assertions in insertion order.
    pub fn records(&self) -> &[AssertionRecord] {
        &self.records
    }

    /// Number of original (data) qubits.
    pub fn num_data_qubits(&self) -> usize {
        self.data_qubits
    }

    /// All classical bits carrying assertion outcomes.
    pub fn assertion_clbits(&self) -> Vec<ClbitId> {
        self.records
            .iter()
            .flat_map(|r| r.clbits.iter().copied())
            .collect()
    }

    /// The classical bits *not* used by assertions (the program's own
    /// measurement results).
    pub fn data_clbits(&self) -> Vec<ClbitId> {
        let assertion: Vec<ClbitId> = self.assertion_clbits();
        (0..self.circuit.num_clbits())
            .map(ClbitId::from)
            .filter(|c| !assertion.contains(c))
            .collect()
    }

    fn validate_targets(&self, qubits: &[QubitId]) -> Result<(), AssertError> {
        for q in qubits {
            if q.index() >= self.circuit.num_qubits() {
                return Err(AssertError::QubitOutOfRange {
                    qubit: q.index(),
                    num_qubits: self.circuit.num_qubits(),
                });
            }
        }
        Ok(())
    }

    /// Acquires an ancilla: recycled when reuse is on, fresh otherwise.
    fn acquire_ancilla(&mut self) -> QubitId {
        if self.reuse_ancillas {
            if let Some(a) = self.free_ancillas.pop() {
                return a;
            }
        }
        self.circuit.add_qubit()
    }

    /// Measures an ancilla into a fresh clbit and (optionally) recycles
    /// it.
    fn measure_ancilla(&mut self, ancilla: QubitId) -> Result<ClbitId, AssertError> {
        let clbit = self.circuit.add_clbit();
        self.circuit.measure(ancilla, clbit)?;
        if self.reuse_ancillas {
            self.circuit.reset(ancilla)?;
            self.free_ancillas.push(ancilla);
        }
        Ok(clbit)
    }

    /// Instruments the given assertion at the current program point.
    ///
    /// # Errors
    ///
    /// Returns an [`AssertError`] when targets are invalid.
    pub fn assert_now(&mut self, assertion: Assertion) -> Result<AssertionId, AssertError> {
        self.validate_targets(&assertion.qubits())?;
        let (ancillas, clbits) = match &assertion {
            Assertion::Classical { qubits, expected } => {
                let mut ancillas = Vec::with_capacity(qubits.len());
                let mut clbits = Vec::with_capacity(qubits.len());
                for (q, e) in qubits.clone().iter().zip(expected.clone()) {
                    let a = self.acquire_ancilla();
                    if e {
                        // Paper: initialize the ancilla to |1⟩ to assert
                        // (ψ == |1⟩).
                        self.circuit.x(a)?;
                    }
                    self.circuit.cx(*q, a)?;
                    clbits.push(self.measure_ancilla(a)?);
                    ancillas.push(a);
                }
                (ancillas, clbits)
            }
            Assertion::Entanglement { qubits, parity } => match self.mode {
                EntanglementMode::Paper => {
                    let a = self.acquire_ancilla();
                    if *parity == Parity::Odd {
                        self.circuit.x(a)?;
                    }
                    for q in qubits.clone() {
                        self.circuit.cx(q, a)?;
                    }
                    // Even-count rule (Fig. 4): an odd number of CNOTs
                    // would leave the ancilla entangled with the qubits
                    // under test, corrupting later computation.
                    if qubits.len() % 2 == 1 {
                        self.circuit.cx(*qubits.last().expect("nonempty"), a)?;
                    }
                    let clbit = self.measure_ancilla(a)?;
                    (vec![a], vec![clbit])
                }
                EntanglementMode::Strong => {
                    let mut ancillas = Vec::new();
                    let mut clbits = Vec::new();
                    let qubits = qubits.clone();
                    let parity = *parity;
                    for pair in qubits.windows(2) {
                        let a = self.acquire_ancilla();
                        if parity == Parity::Odd {
                            self.circuit.x(a)?;
                        }
                        self.circuit.cx(pair[0], a)?;
                        self.circuit.cx(pair[1], a)?;
                        clbits.push(self.measure_ancilla(a)?);
                        ancillas.push(a);
                    }
                    (ancillas, clbits)
                }
            },
            Assertion::Superposition { qubit, basis } => {
                let q = *qubit;
                let basis = *basis;
                let a = self.acquire_ancilla();
                self.circuit.cx(q, a)?;
                self.circuit.h(q)?;
                self.circuit.h(a)?;
                self.circuit.cx(q, a)?;
                if basis == SuperpositionBasis::Minus {
                    // |−⟩ drives the raw ancilla to 1; flip so the
                    // uniform "1 = error" convention holds.
                    self.circuit.x(a)?;
                    // The Fig. 5 circuit maps |−⟩ to |+⟩ on the qubit
                    // under test (the paper's |ψ4⟩ = |+⟩⊗|1⟩). Restore
                    // the asserted state with a Z so the program can
                    // keep using it; this is sound because the
                    // post-measurement data state always has equal
                    // coefficient magnitudes (Section 3.3).
                    self.circuit.z(q)?;
                }
                let clbit = self.measure_ancilla(a)?;
                (vec![a], vec![clbit])
            }
        };
        let id = AssertionId(self.records.len());
        self.records.push(AssertionRecord {
            assertion,
            ancillas,
            clbits,
        });
        Ok(id)
    }

    /// Asserts `(qᵢ == expectedᵢ)` for each listed qubit (Section 3.1).
    ///
    /// # Errors
    ///
    /// Returns an [`AssertError`] for invalid targets.
    pub fn assert_classical<Q: Into<QubitId>>(
        &mut self,
        qubits: impl IntoIterator<Item = Q>,
        expected: impl IntoIterator<Item = bool>,
    ) -> Result<AssertionId, AssertError> {
        self.assert_now(Assertion::classical(qubits, expected)?)
    }

    /// Asserts GHZ-type entanglement across the listed qubits
    /// (Section 3.2).
    ///
    /// # Errors
    ///
    /// Returns an [`AssertError`] for invalid targets.
    pub fn assert_entangled<Q: Into<QubitId>>(
        &mut self,
        qubits: impl IntoIterator<Item = Q>,
        parity: Parity,
    ) -> Result<AssertionId, AssertError> {
        self.assert_now(Assertion::entanglement(qubits, parity)?)
    }

    /// Asserts the qubit is in `|+⟩` (or `|−⟩`) (Section 3.3).
    ///
    /// # Errors
    ///
    /// Returns an [`AssertError`] for invalid targets.
    pub fn assert_superposition(
        &mut self,
        qubit: impl Into<QubitId>,
        basis: SuperpositionBasis,
    ) -> Result<AssertionId, AssertError> {
        self.assert_now(Assertion::superposition(qubit, basis))
    }

    /// Measures every data qubit `i` into a data clbit, growing the
    /// classical register as needed (call once at the end of the
    /// program).
    pub fn measure_data(&mut self) -> &mut Self {
        for q in 0..self.data_qubits {
            let clbit = self.circuit.add_clbit();
            self.circuit
                .measure(q, clbit)
                .expect("data qubits are in range");
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcircuit::library;
    use qcircuit::Gate;

    #[test]
    fn classical_assertion_adds_one_ancilla_per_qubit() {
        let mut ac = AssertingCircuit::new(QuantumCircuit::new(2, 0));
        ac.assert_classical([0, 1], [false, true]).unwrap();
        assert_eq!(ac.circuit().num_qubits(), 4);
        assert_eq!(ac.circuit().num_clbits(), 2);
        // Expected-one qubit gets an X prep on its ancilla.
        assert_eq!(ac.circuit().count_ops()["x"], 1);
        assert_eq!(ac.circuit().count_ops()["cx"], 2);
        assert_eq!(ac.circuit().count_ops()["measure"], 2);
    }

    #[test]
    fn entanglement_assertion_even_qubits_uses_k_cnots() {
        let mut ac = AssertingCircuit::new(library::bell());
        ac.assert_entangled([0, 1], Parity::Even).unwrap();
        // Bell prep has 1 cx; the assertion adds exactly 2.
        assert_eq!(ac.circuit().count_ops()["cx"], 3);
        assert_eq!(ac.records()[0].ancillas.len(), 1);
    }

    #[test]
    fn entanglement_assertion_odd_qubits_duplicates_last_cnot() {
        let mut ac = AssertingCircuit::new(library::ghz(3));
        ac.assert_entangled([0, 1, 2], Parity::Even).unwrap();
        // GHZ(3) prep has 2 cx; the even-count rule adds 4, not 3.
        assert_eq!(ac.circuit().count_ops()["cx"], 6);
    }

    #[test]
    fn odd_parity_prepends_x_on_ancilla() {
        let mut ac = AssertingCircuit::new(QuantumCircuit::new(2, 0));
        ac.assert_entangled([0, 1], Parity::Odd).unwrap();
        assert_eq!(ac.circuit().count_ops()["x"], 1);
    }

    #[test]
    fn superposition_assertion_structure() {
        let mut ac = AssertingCircuit::new(QuantumCircuit::new(1, 0));
        ac.assert_superposition(0, SuperpositionBasis::Plus)
            .unwrap();
        let ops = ac.circuit().count_ops();
        assert_eq!(ops["cx"], 2);
        assert_eq!(ops["h"], 2);
        assert_eq!(ops.get("x"), None);

        let mut ac = AssertingCircuit::new(QuantumCircuit::new(1, 0));
        ac.assert_superposition(0, SuperpositionBasis::Minus)
            .unwrap();
        assert_eq!(ac.circuit().count_ops()["x"], 1);
        // The |−⟩ variant also restores the tested qubit with a Z.
        assert_eq!(ac.circuit().count_ops()["z"], 1);
    }

    #[test]
    fn minus_assertion_preserves_minus_state_for_reuse() {
        // |−⟩ in, assert Minus, then H should yield |1⟩ deterministically
        // — only true if the assertion restored |−⟩.
        let mut base = QuantumCircuit::new(1, 0);
        base.x(0).unwrap().h(0).unwrap(); // |−⟩
        let mut ac = AssertingCircuit::new(base);
        ac.assert_superposition(0, SuperpositionBasis::Minus)
            .unwrap();
        ac.circuit_mut().h(0).unwrap();
        ac.measure_data();
        let dist = qsim::DensityMatrixBackend::ideal()
            .exact_distribution(ac.circuit())
            .unwrap();
        // clbit 0 = assertion (0 = pass), clbit 1 = data (must be 1).
        assert!((dist.probability(0b10) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn strong_mode_uses_pairwise_ancillas() {
        let mut ac = AssertingCircuit::new(library::ghz(4)).with_mode(EntanglementMode::Strong);
        ac.assert_entangled([0, 1, 2, 3], Parity::Even).unwrap();
        assert_eq!(ac.records()[0].ancillas.len(), 3);
        assert_eq!(ac.records()[0].clbits.len(), 3);
        // 3 GHZ-prep CXs + 2 per pair × 3 pairs.
        assert_eq!(ac.circuit().count_ops()["cx"], 9);
    }

    #[test]
    fn ancilla_reuse_recycles_wires() {
        let mut ac = AssertingCircuit::new(QuantumCircuit::new(1, 0)).with_ancilla_reuse(true);
        ac.assert_classical([0], [false]).unwrap();
        ac.assert_classical([0], [false]).unwrap();
        // One shared ancilla wire, two clbits, a reset between uses.
        assert_eq!(ac.circuit().num_qubits(), 2);
        assert_eq!(ac.circuit().num_clbits(), 2);
        assert!(ac.circuit().count_ops()["reset"] >= 1);
        assert_eq!(ac.records()[0].ancillas, ac.records()[1].ancillas);
    }

    #[test]
    fn without_reuse_each_assertion_gets_fresh_ancilla() {
        let mut ac = AssertingCircuit::new(QuantumCircuit::new(1, 0));
        ac.assert_classical([0], [false]).unwrap();
        ac.assert_classical([0], [false]).unwrap();
        assert_eq!(ac.circuit().num_qubits(), 3);
        assert_ne!(ac.records()[0].ancillas, ac.records()[1].ancillas);
    }

    #[test]
    fn clbit_partition_separates_assertion_and_data_bits() {
        let mut ac = AssertingCircuit::new(library::bell());
        ac.assert_entangled([0, 1], Parity::Even).unwrap();
        ac.measure_data();
        let assertion_bits = ac.assertion_clbits();
        let data_bits = ac.data_clbits();
        assert_eq!(assertion_bits.len(), 1);
        assert_eq!(data_bits.len(), 2);
        assert_eq!(
            assertion_bits.len() + data_bits.len(),
            ac.circuit().num_clbits()
        );
    }

    #[test]
    fn invalid_targets_are_rejected() {
        let mut ac = AssertingCircuit::new(QuantumCircuit::new(1, 0));
        assert!(matches!(
            ac.assert_classical([5], [false]),
            Err(AssertError::QubitOutOfRange {
                qubit: 5,
                num_qubits: 1
            })
        ));
    }

    #[test]
    fn out_of_range_targets_rejected_for_every_assertion_family() {
        let mut ac = AssertingCircuit::new(QuantumCircuit::new(2, 0));
        assert!(matches!(
            ac.assert_entangled([0, 7], Parity::Even),
            Err(AssertError::QubitOutOfRange {
                qubit: 7,
                num_qubits: 2
            })
        ));
        assert!(matches!(
            ac.assert_superposition(9, SuperpositionBasis::Plus),
            Err(AssertError::QubitOutOfRange {
                qubit: 9,
                num_qubits: 2
            })
        ));
        // A failed assertion leaves no partial instrumentation behind.
        assert_eq!(ac.circuit().num_qubits(), 2);
        assert_eq!(ac.circuit().num_clbits(), 0);
        assert!(ac.records().is_empty());
    }

    #[test]
    fn duplicate_qubits_rejected_in_entanglement_assertions() {
        let mut ac = AssertingCircuit::new(library::ghz(3));
        assert!(matches!(
            ac.assert_entangled([0, 1, 0], Parity::Even),
            Err(AssertError::DuplicateQubit { qubit: 0 })
        ));
        // Strong mode validates through the same constructor.
        let mut strong = AssertingCircuit::new(library::ghz(3)).with_mode(EntanglementMode::Strong);
        assert!(matches!(
            strong.assert_entangled([2, 2], Parity::Even),
            Err(AssertError::DuplicateQubit { qubit: 2 })
        ));
        assert!(ac.records().is_empty());
        assert_eq!(ac.circuit().num_qubits(), 3);
    }

    #[test]
    fn assertions_after_measure_data_keep_the_clbit_partition_straight() {
        // measure_data first, then a late assertion: the assertion's
        // clbit lands *after* the data clbits and the partition helpers
        // must still separate them correctly.
        let mut ac = AssertingCircuit::new(library::bell());
        ac.assert_entangled([0, 1], Parity::Even).unwrap();
        ac.measure_data();
        ac.assert_classical([0], [false]).unwrap();
        assert_eq!(ac.circuit().num_clbits(), 4);
        let assertion_bits = ac.assertion_clbits();
        let data_bits = ac.data_clbits();
        assert_eq!(assertion_bits.len(), 2);
        assert_eq!(data_bits.len(), 2);
        // First assertion's clbit precedes the data bits, the late
        // assertion's follows them.
        assert_eq!(assertion_bits[0].index(), 0);
        assert_eq!(assertion_bits[1].index(), 3);
        assert_eq!(
            data_bits.iter().map(|c| c.index()).collect::<Vec<_>>(),
            vec![1, 2]
        );
        // The late assertion observes the post-measurement state: a
        // collapsed Bell pair leaves q0 half |1⟩, so it fires ~50%.
        let dist = qsim::DensityMatrixBackend::ideal()
            .exact_distribution(ac.circuit())
            .unwrap();
        let late_fired: f64 = dist
            .outcomes
            .iter()
            .filter(|(k, _)| (k >> 3) & 1 == 1)
            .map(|(_, p)| p)
            .sum();
        assert!((late_fired - 0.5).abs() < 1e-9, "late rate {late_fired}");
    }

    #[test]
    fn ancilla_reuse_with_mixed_assertion_families_is_semantics_preserving() {
        // Entanglement + superposition + classical assertions sharing
        // one recycled ancilla wire must produce exactly the joint
        // distribution of the fresh-ancilla instrumentation.
        let build = |reuse: bool| {
            let mut base = QuantumCircuit::new(2, 0);
            base.h(0).unwrap();
            base.cx(0, 1).unwrap();
            let mut ac = AssertingCircuit::new(base).with_ancilla_reuse(reuse);
            ac.assert_entangled([0, 1], Parity::Even).unwrap();
            ac.circuit_mut().h(0).unwrap();
            ac.assert_superposition(0, SuperpositionBasis::Plus)
                .unwrap();
            ac.assert_classical([1], [false]).unwrap();
            ac.measure_data();
            ac
        };
        let fresh = build(false);
        let reused = build(true);
        assert_eq!(fresh.circuit().num_qubits(), 5);
        assert_eq!(reused.circuit().num_qubits(), 3);
        assert_eq!(fresh.circuit().num_clbits(), reused.circuit().num_clbits());
        // Records agree on clbits even though ancilla wires differ.
        for (a, b) in fresh.records().iter().zip(reused.records()) {
            assert_eq!(a.clbits, b.clbits);
            assert_eq!(a.assertion, b.assertion);
        }
        assert_eq!(reused.records()[0].ancillas, reused.records()[1].ancillas);
        let d1 = qsim::DensityMatrixBackend::ideal()
            .exact_distribution(fresh.circuit())
            .unwrap();
        let d2 = qsim::DensityMatrixBackend::ideal()
            .exact_distribution(reused.circuit())
            .unwrap();
        for (key, p) in &d1.outcomes {
            assert!(
                (d2.probability(*key) - p).abs() < 1e-9,
                "key {key:b}: {p} vs {}",
                d2.probability(*key)
            );
        }
    }

    #[test]
    fn program_logic_can_continue_after_assertion() {
        let mut ac = AssertingCircuit::new(QuantumCircuit::new(2, 0));
        ac.circuit_mut().h(0).unwrap();
        ac.assert_superposition(0, SuperpositionBasis::Plus)
            .unwrap();
        // Keep computing on the data qubits after the check.
        ac.circuit_mut().cx(0, 1).unwrap();
        ac.measure_data();
        assert!(ac.circuit().len() > 5);
    }

    #[test]
    fn into_parts_returns_everything() {
        let mut ac = AssertingCircuit::new(library::bell());
        ac.assert_entangled([0, 1], Parity::Even).unwrap();
        let (circuit, records) = ac.into_parts();
        assert_eq!(records.len(), 1);
        assert!(circuit.num_qubits() == 3);
    }

    #[test]
    fn assertion_gates_touch_only_expected_wires() {
        let mut ac = AssertingCircuit::new(library::bell());
        ac.assert_entangled([0, 1], Parity::Even).unwrap();
        let anc = ac.records()[0].ancillas[0];
        // Every CX added by the assertion targets the ancilla.
        let assertion_cxs: Vec<_> = ac
            .circuit()
            .instructions()
            .iter()
            .filter(|i| i.as_gate() == Some(&Gate::Cx) && i.qubits()[1] == anc)
            .collect();
        assert_eq!(assertion_cxs.len(), 2);
    }
}
