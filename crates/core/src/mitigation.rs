//! Readout-error mitigation (extension).
//!
//! On the `ibmqx4` generation, measurement assignment error was the
//! single largest error source — it is a big part of what the paper's
//! assertion filtering removes. This module implements the standard
//! complementary technique: invert the known per-qubit assignment
//! matrices on the measured histogram. Because the full `2^n × 2^n`
//! calibration matrix is a tensor product of per-qubit 2×2 matrices, the
//! inverse is applied bitwise in `O(n·2^n)` without building it.
//!
//! The `mitigation` ablation compares assertion filtering, readout
//! mitigation, and their combination on the Table-2 workload.

use crate::error::AssertError;
use qcircuit::ClbitId;
use qnoise::{NoiseModel, ReadoutError};
use qsim::Counts;

/// Inverts per-clbit readout assignment errors on measured histograms.
///
/// # Example
///
/// ```
/// use qassert::mitigation::ReadoutMitigator;
/// use qnoise::ReadoutError;
/// use qsim::Counts;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // True distribution: always 0; readout flips 10% of them to 1.
/// let observed = Counts::from_pairs(1, [(0, 900), (1, 100)]);
/// let mitigator = ReadoutMitigator::new(vec![ReadoutError::new(0.1, 0.0)?]);
/// let corrected = mitigator.mitigate(&observed);
/// assert!((corrected[0] - 1.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct ReadoutMitigator {
    /// Assignment error of clbit `i` (the error of the qubit measured
    /// into it).
    per_clbit: Vec<ReadoutError>,
}

impl ReadoutMitigator {
    /// Builds a mitigator from explicit per-clbit readout errors.
    pub fn new(per_clbit: Vec<ReadoutError>) -> Self {
        ReadoutMitigator { per_clbit }
    }

    /// Builds a mitigator for a circuit's measurement map under a noise
    /// model: `qubit_of_clbit[i]` names the qubit measured into clbit
    /// `i`.
    pub fn from_noise_model(model: &NoiseModel, qubit_of_clbit: &[qcircuit::QubitId]) -> Self {
        ReadoutMitigator {
            per_clbit: qubit_of_clbit
                .iter()
                .map(|q| model.readout_error(*q))
                .collect(),
        }
    }

    /// Number of classical bits covered.
    pub fn num_bits(&self) -> usize {
        self.per_clbit.len()
    }

    /// Applies the inverse assignment map, returning quasi-probabilities
    /// over all `2^n` outcomes (entries may be slightly negative due to
    /// statistical noise; see [`ReadoutMitigator::mitigate_clipped`]).
    ///
    /// # Panics
    ///
    /// Panics when the histogram's width differs from the mitigator's.
    pub fn mitigate(&self, observed: &Counts) -> Vec<f64> {
        assert_eq!(
            observed.num_bits(),
            self.per_clbit.len(),
            "histogram width does not match mitigator"
        );
        let mut p = observed.probabilities_vec();
        for (bit, ro) in self.per_clbit.iter().enumerate() {
            if ro.is_ideal() {
                continue;
            }
            // Per-bit assignment matrix M = [[1−ε₀, ε₁], [ε₀, 1−ε₁]];
            // apply M⁻¹ = 1/det · [[1−ε₁, −ε₁], [−ε₀, 1−ε₀]] on the bit.
            let e0 = ro.p_meas1_given0();
            let e1 = ro.p_meas0_given1();
            let det = 1.0 - e0 - e1;
            assert!(
                det.abs() > 1e-9,
                "assignment matrix for bit {bit} is singular (ε₀ + ε₁ ≈ 1)"
            );
            let stride = 1usize << bit;
            let len = p.len();
            let mut base = 0usize;
            while base < len {
                for offset in base..base + stride {
                    let lo = p[offset];
                    let hi = p[offset + stride];
                    p[offset] = ((1.0 - e1) * lo - e1 * hi) / det;
                    p[offset + stride] = (-e0 * lo + (1.0 - e0) * hi) / det;
                }
                base += 2 * stride;
            }
        }
        p
    }

    /// Like [`ReadoutMitigator::mitigate`] but clips negative
    /// quasi-probabilities to zero and renormalizes — the standard
    /// projection back onto the probability simplex.
    ///
    /// # Errors
    ///
    /// Returns [`AssertError::NoShotsKept`] when everything clips to
    /// zero (pathological input).
    pub fn mitigate_clipped(&self, observed: &Counts) -> Result<Vec<f64>, AssertError> {
        let mut p = self.mitigate(observed);
        let mut total = 0.0;
        for v in &mut p {
            if *v < 0.0 {
                *v = 0.0;
            }
            total += *v;
        }
        if total <= 0.0 {
            return Err(AssertError::NoShotsKept);
        }
        for v in &mut p {
            *v /= total;
        }
        Ok(p)
    }
}

/// Error rate of a mitigated probability vector under a correctness
/// predicate over outcome keys.
pub fn mitigated_error_rate(probs: &[f64], is_correct: impl Fn(u64) -> bool) -> f64 {
    probs
        .iter()
        .enumerate()
        .filter(|(k, _)| !is_correct(*k as u64))
        .map(|(_, p)| p.max(0.0))
        .sum()
}

/// Convenience: restrict a mitigated probability vector to the shots
/// passing the assertion bits, renormalized — combining both techniques.
///
/// # Errors
///
/// Returns [`AssertError::NoShotsKept`] when no probability mass passes.
pub fn filter_mitigated(
    probs: &[f64],
    assertion_clbits: &[ClbitId],
) -> Result<Vec<f64>, AssertError> {
    let mut out = vec![0.0; probs.len()];
    let mut kept = 0.0;
    for (k, p) in probs.iter().enumerate() {
        let pass = assertion_clbits.iter().all(|c| (k >> c.index()) & 1 == 0);
        if pass && *p > 0.0 {
            out[k] = *p;
            kept += *p;
        }
    }
    if kept <= 0.0 {
        return Err(AssertError::NoShotsKept);
    }
    for v in &mut out {
        *v /= kept;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_inversion_recovers_true_distribution() {
        // True distribution 70/30 over 1 bit; known readout error.
        let ro = ReadoutError::new(0.08, 0.12).unwrap();
        let p_true = [0.7f64, 0.3f64];
        // Forward-apply the assignment matrix.
        let observed0 = (1.0 - 0.08) * p_true[0] + 0.12 * p_true[1];
        let observed1 = 0.08 * p_true[0] + (1.0 - 0.12) * p_true[1];
        let counts = Counts::from_pairs(
            1,
            [
                (0, (observed0 * 1e6).round() as u64),
                (1, (observed1 * 1e6).round() as u64),
            ],
        );
        let corrected = ReadoutMitigator::new(vec![ro]).mitigate(&counts);
        assert!((corrected[0] - 0.7).abs() < 1e-4);
        assert!((corrected[1] - 0.3).abs() < 1e-4);
    }

    #[test]
    fn multi_bit_inversion_is_tensor_structured() {
        // Two bits with different errors; true distribution all on 0b10.
        let ro0 = ReadoutError::new(0.05, 0.05).unwrap();
        let ro1 = ReadoutError::new(0.10, 0.02).unwrap();
        // Forward model applied manually to point mass on (b1=1, b0=0).
        let mut observed = [0.0f64; 4];
        for rec0 in 0..2usize {
            for rec1 in 0..2usize {
                let p = ro0.p_record(false, rec0 == 1) * ro1.p_record(true, rec1 == 1);
                observed[rec0 + 2 * rec1] += p;
            }
        }
        let counts = Counts::from_pairs(
            2,
            observed
                .iter()
                .enumerate()
                .map(|(k, p)| (k as u64, (p * 1e7).round() as u64)),
        );
        let corrected = ReadoutMitigator::new(vec![ro0, ro1]).mitigate(&counts);
        assert!((corrected[0b10] - 1.0).abs() < 1e-4, "{corrected:?}");
    }

    #[test]
    fn ideal_mitigator_is_identity() {
        let counts = Counts::from_pairs(2, [(0, 10), (3, 30)]);
        let m = ReadoutMitigator::new(vec![ReadoutError::ideal(); 2]);
        let p = m.mitigate(&counts);
        assert!((p[0] - 0.25).abs() < 1e-12);
        assert!((p[3] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn clipping_projects_back_to_simplex() {
        // Overcorrection can push small probabilities negative.
        let ro = ReadoutError::new(0.3, 0.3).unwrap();
        let counts = Counts::from_pairs(1, [(0, 999), (1, 1)]);
        let m = ReadoutMitigator::new(vec![ro]);
        let raw = m.mitigate(&counts);
        assert!(raw[1] < 0.0, "expected a negative quasi-probability");
        let clipped = m.mitigate_clipped(&counts).unwrap();
        assert!(clipped.iter().all(|p| *p >= 0.0));
        assert!((clipped.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "singular")]
    fn singular_assignment_matrix_panics() {
        let ro = ReadoutError::new(0.5, 0.5).unwrap();
        let counts = Counts::from_pairs(1, [(0, 1)]);
        let _ = ReadoutMitigator::new(vec![ro]).mitigate(&counts);
    }

    #[test]
    fn from_noise_model_picks_per_qubit_errors() {
        let mut model = NoiseModel::new();
        model.with_readout_error(2, ReadoutError::symmetric(0.07).unwrap());
        let m = ReadoutMitigator::from_noise_model(
            &model,
            &[qcircuit::QubitId::new(2), qcircuit::QubitId::new(0)],
        );
        assert_eq!(m.num_bits(), 2);
        // clbit 0 ← qubit 2 (noisy), clbit 1 ← qubit 0 (ideal).
        let counts = Counts::from_pairs(2, [(0, 93), (1, 7)]);
        let p = m.mitigate(&counts);
        assert!(p[0] > 0.93);
    }

    #[test]
    fn mitigated_error_rate_counts_wrong_mass() {
        let probs = [0.8, 0.15, 0.05, 0.0];
        let rate = mitigated_error_rate(&probs, |k| k == 0);
        assert!((rate - 0.2).abs() < 1e-12);
    }

    #[test]
    fn filter_mitigated_combines_both_techniques() {
        // Bit 1 is the assertion bit.
        let probs = [0.5, 0.2, 0.2, 0.1];
        let kept = filter_mitigated(&probs, &[ClbitId::new(1)]).unwrap();
        assert!((kept[0] - 0.5 / 0.7).abs() < 1e-12);
        assert!((kept[1] - 0.2 / 0.7).abs() < 1e-12);
        assert_eq!(kept[2], 0.0);
        assert_eq!(kept[3], 0.0);
    }

    #[test]
    fn filter_mitigated_rejects_empty_pass_set() {
        let probs = [0.0, 0.0, 0.6, 0.4];
        assert!(matches!(
            filter_mitigated(&probs, &[ClbitId::new(1)]),
            Err(AssertError::NoShotsKept)
        ));
    }
}
