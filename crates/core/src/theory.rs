//! Closed-form predictions from the paper's Section 3 proofs.
//!
//! Each assertion's proof derives the exact probability of the ancilla
//! flagging an error as a function of the input amplitudes, plus the
//! state the qubits under test are *forced into* by the ancilla
//! measurement. These formulas back the `theory` experiment and the
//! paper-proof test suite: the simulator must match them to machine
//! precision on ideal backends.

use qmath::Complex;

/// Section 3.1 — classical assertion `(ψ == |0⟩)` on
/// `|ψ⟩ = a|0⟩ + b|1⟩`: the ancilla reads 1 (assertion error) with
/// probability `|b|²`.
pub fn classical_error_probability(a: Complex, b: Complex) -> f64 {
    let _ = a;
    b.norm_sqr()
}

/// Section 3.1 — the state the qubit under test collapses to after the
/// ancilla measurement: `|0⟩` on pass, `|1⟩` on error. Returned as the
/// probability pair `(P(pass), P(error))` with the forced classical
/// outcomes implied.
pub fn classical_outcome_probabilities(a: Complex, b: Complex) -> (f64, f64) {
    (a.norm_sqr(), b.norm_sqr())
}

/// Section 3.2 — entanglement assertion on a general two-qubit state
/// `a|00⟩ + b|11⟩ + c|10⟩ + d|01⟩`: the ancilla flags an error with
/// probability `|c|² + |d|²` (the odd-parity mass).
pub fn entanglement_error_probability(a: Complex, b: Complex, c: Complex, d: Complex) -> f64 {
    let _ = (a, b);
    c.norm_sqr() + d.norm_sqr()
}

/// Section 3.3 — superposition assertion `(ψ == |+⟩)` on real
/// amplitudes `a`, `b` (the paper's derivation assumes real
/// coefficients): returns `(P(ancilla = 0), P(ancilla = 1))` =
/// `((2 + 4ab)/4, (2 − 4ab)/4)`.
pub fn superposition_outcome_probabilities(a: f64, b: f64) -> (f64, f64) {
    ((2.0 + 4.0 * a * b) / 4.0, (2.0 - 4.0 * a * b) / 4.0)
}

/// Section 3.3 — for complex amplitudes the general form is
/// `P(0) = |a + b|²/2`, `P(1) = |a − b|²/2` (which reduces to the real
/// formula above).
pub fn superposition_outcome_probabilities_complex(a: Complex, b: Complex) -> (f64, f64) {
    let p0 = (a + b).norm_sqr() / 2.0;
    let p1 = (a - b).norm_sqr() / 2.0;
    (p0, p1)
}

/// Section 3.3 — after the superposition assertion's ancilla is
/// measured, the qubit under test is forced into an equal-magnitude
/// superposition `k|0⟩ + k|1⟩` (ancilla 0) or `k|0⟩ − k|1⟩` (ancilla 1)
/// with `|k| = 1/√2`. Returns that magnitude.
pub fn superposition_forced_magnitude() -> f64 {
    std::f64::consts::FRAC_1_SQRT_2
}

#[cfg(test)]
mod tests {
    use super::*;
    use qmath::FRAC_1_SQRT_2;

    fn c(re: f64) -> Complex {
        Complex::real(re)
    }

    #[test]
    fn classical_error_is_excited_population() {
        assert_eq!(classical_error_probability(c(1.0), c(0.0)), 0.0);
        assert_eq!(classical_error_probability(c(0.0), c(1.0)), 1.0);
        let p = classical_error_probability(c(0.6), c(0.8));
        assert!((p - 0.64).abs() < 1e-12);
    }

    #[test]
    fn classical_outcomes_partition() {
        let (p0, p1) = classical_outcome_probabilities(c(0.6), c(0.8));
        assert!((p0 + p1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn entanglement_error_is_odd_parity_mass() {
        // Perfect Bell state: never fires.
        let s = FRAC_1_SQRT_2;
        assert_eq!(
            entanglement_error_probability(c(s), c(s), c(0.0), c(0.0)),
            0.0
        );
        // Fully odd-parity state: always fires.
        assert!((entanglement_error_probability(c(0.0), c(0.0), c(s), c(s)) - 1.0).abs() < 1e-12);
        // Mixed case.
        let p = entanglement_error_probability(c(0.5), c(0.5), c(0.5), c(0.5));
        assert!((p - 0.5).abs() < 1e-12);
    }

    #[test]
    fn superposition_plus_never_fires() {
        let s = FRAC_1_SQRT_2;
        let (p0, p1) = superposition_outcome_probabilities(s, s);
        assert!((p0 - 1.0).abs() < 1e-12);
        assert!(p1.abs() < 1e-12);
    }

    #[test]
    fn superposition_minus_always_fires() {
        let s = FRAC_1_SQRT_2;
        let (p0, p1) = superposition_outcome_probabilities(s, -s);
        assert!(p0.abs() < 1e-12);
        assert!((p1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn superposition_classical_input_is_fifty_fifty() {
        // Paper: "In the case of |ψ⟩ being in a classical state ... equal
        // probability of 50%".
        for (a, b) in [(1.0, 0.0), (0.0, 1.0)] {
            let (p0, p1) = superposition_outcome_probabilities(a, b);
            assert!((p0 - 0.5).abs() < 1e-12);
            assert!((p1 - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn complex_form_reduces_to_real_form() {
        // The reduction requires normalized amplitudes (a² + b² = 1).
        for (a, b) in [(0.6, 0.8), (0.28, -0.96), (FRAC_1_SQRT_2, FRAC_1_SQRT_2)] {
            let (r0, r1) = superposition_outcome_probabilities(a, b);
            let (c0, c1) = superposition_outcome_probabilities_complex(c(a), c(b));
            assert!((r0 - c0).abs() < 1e-9, "({a},{b}): {r0} vs {c0}");
            assert!((r1 - c1).abs() < 1e-9);
        }
    }

    #[test]
    fn complex_probabilities_partition_for_unit_states() {
        // a, b on the unit circle with |a|²+|b|² = 1.
        let a = Complex::from_polar(0.6, 0.4);
        let b = Complex::from_polar(0.8, -1.1);
        let (p0, p1) = superposition_outcome_probabilities_complex(a, b);
        assert!((p0 + p1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn forced_magnitude_is_equal_superposition() {
        assert!((superposition_forced_magnitude() - FRAC_1_SQRT_2).abs() < 1e-15);
    }
}
