//! Post-selection filtering and error-rate accounting.
//!
//! The paper's NISQ use case (Section 4): run the instrumented circuit,
//! *discard* every shot whose assertion ancilla measured 1, and compare
//! the error rate of the remaining distribution against the unfiltered
//! one. Tables 1–2 report exactly the quantities computed here.

use qcircuit::ClbitId;
use qsim::Counts;

/// Keeps only shots where every listed assertion clbit reads 0
/// (no assertion error).
pub fn filter_assertion_bits(counts: &Counts, assertion_clbits: &[ClbitId]) -> Counts {
    counts.filter(|key| assertion_clbits.iter().all(|c| (key >> c.index()) & 1 == 0))
}

/// The exact number of shots flagged by at least one of the listed
/// assertion clbits.
///
/// This is the integer the per-assertion `fired` statistics report —
/// counted directly from the histogram, never reconstructed from a
/// floating-point rate (which drifts off by one once totals exceed
/// `f64`'s 2⁵³ integer range).
pub fn assertion_fired_shots(counts: &Counts, assertion_clbits: &[ClbitId]) -> u64 {
    counts
        .iter()
        .filter(|(key, _)| assertion_clbits.iter().any(|c| (key >> c.index()) & 1 == 1))
        .map(|(_, n)| n)
        .sum()
}

/// The fraction of shots flagged by at least one assertion bit.
///
/// Returns 0 for empty histograms.
pub fn assertion_error_rate(counts: &Counts, assertion_clbits: &[ClbitId]) -> f64 {
    let total = counts.total();
    if total == 0 {
        return 0.0;
    }
    assertion_fired_shots(counts, assertion_clbits) as f64 / total as f64
}

/// The fraction of shots whose outcome `is_correct` rejects.
///
/// Returns 0 for empty histograms.
pub fn error_rate(counts: &Counts, is_correct: impl Fn(u64) -> bool) -> f64 {
    let total = counts.total();
    if total == 0 {
        return 0.0;
    }
    let wrong: u64 = counts
        .iter()
        .filter(|(key, _)| !is_correct(*key))
        .map(|(_, n)| n)
        .sum();
    wrong as f64 / total as f64
}

/// Raw-vs-filtered error rates and the relative reduction the paper
/// reports (e.g. Table 1: 3.5% → 2.5%, "a reduction of 28.5%").
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ErrorReduction {
    /// Error rate over all shots.
    pub raw: f64,
    /// Error rate over assertion-filtered shots.
    pub filtered: f64,
}

impl ErrorReduction {
    /// Computes both error rates for a run.
    ///
    /// `is_correct` judges an outcome *by its data bits*; assertion bits
    /// are ignored for correctness but drive the filtering.
    pub fn compute(
        counts: &Counts,
        assertion_clbits: &[ClbitId],
        is_correct: impl Fn(u64) -> bool + Copy,
    ) -> ErrorReduction {
        let raw = error_rate(counts, is_correct);
        let kept = filter_assertion_bits(counts, assertion_clbits);
        let filtered = error_rate(&kept, is_correct);
        ErrorReduction { raw, filtered }
    }

    /// Relative improvement `(raw − filtered) / raw`; 0 when the raw
    /// rate is 0.
    pub fn relative_reduction(&self) -> f64 {
        if self.raw <= 0.0 {
            0.0
        } else {
            (self.raw - self.filtered) / self.raw
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Mirror of the paper's Table 1 counts (scaled to 1000 shots):
    /// bit 0 = q1 (data), bit 1 = q2 (assertion ancilla).
    fn table1_counts() -> Counts {
        Counts::from_pairs(
            2,
            [
                (0b00, 938), // no error, q1 = 0
                (0b10, 27),  // assertion error, q1 = 0
                (0b01, 24),  // no assertion error, q1 = 1 (false negative)
                (0b11, 11),  // assertion error, q1 = 1
            ],
        )
    }

    #[test]
    fn filtering_drops_flagged_shots() {
        let counts = table1_counts();
        let kept = filter_assertion_bits(&counts, &[ClbitId::new(1)]);
        assert_eq!(kept.total(), 938 + 24);
        assert_eq!(kept.get(0b10), 0);
        assert_eq!(kept.get(0b11), 0);
    }

    #[test]
    fn assertion_error_rate_counts_any_flag() {
        let counts = table1_counts();
        let rate = assertion_error_rate(&counts, &[ClbitId::new(1)]);
        assert!((rate - 0.038).abs() < 1e-12);
    }

    #[test]
    fn error_reduction_reproduces_table1_arithmetic() {
        // Paper: raw error 3.5%, filtered 24/(938+24) = 2.5%,
        // reduction ≈ 28.5%.
        let counts = table1_counts();
        let red = ErrorReduction::compute(&counts, &[ClbitId::new(1)], |key| key & 1 == 0);
        assert!((red.raw - 0.035).abs() < 1e-12);
        assert!((red.filtered - 24.0 / 962.0).abs() < 1e-12);
        assert!((red.relative_reduction() - 0.2871).abs() < 0.01);
    }

    #[test]
    fn fired_shots_are_counted_exactly_beyond_f64_precision() {
        // 2⁵³ + 1 flagged shots: reconstructing the count from
        // `rate * total` cannot represent the +1; direct counting can.
        let flagged = (1u64 << 53) + 1;
        let counts = Counts::from_pairs(2, [(0b00, 3), (0b10, flagged)]);
        let fired = assertion_fired_shots(&counts, &[ClbitId::new(1)]);
        assert_eq!(fired, flagged);
        let rate = assertion_error_rate(&counts, &[ClbitId::new(1)]);
        let reconstructed = (rate * counts.total() as f64).round() as u64;
        assert_ne!(
            reconstructed, flagged,
            "rate round-trip should drift here — direct counting is the fix"
        );
    }

    #[test]
    fn multiple_assertion_bits_all_must_be_clear() {
        let counts = Counts::from_pairs(3, [(0b000, 10), (0b010, 5), (0b100, 5), (0b110, 2)]);
        let kept = filter_assertion_bits(&counts, &[ClbitId::new(1), ClbitId::new(2)]);
        assert_eq!(kept.total(), 10);
    }

    #[test]
    fn empty_counts_are_harmless() {
        let counts = Counts::new(2);
        assert_eq!(assertion_error_rate(&counts, &[ClbitId::new(0)]), 0.0);
        assert_eq!(error_rate(&counts, |_| true), 0.0);
        let red = ErrorReduction {
            raw: 0.0,
            filtered: 0.0,
        };
        assert_eq!(red.relative_reduction(), 0.0);
    }

    #[test]
    fn zero_error_rate_when_all_correct() {
        let counts = Counts::from_pairs(1, [(0, 100)]);
        assert_eq!(error_rate(&counts, |k| k == 0), 0.0);
        assert_eq!(error_rate(&counts, |k| k == 1), 1.0);
    }
}
