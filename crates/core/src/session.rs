//! [`AssertionSession`] — the execution API of the suite.
//!
//! The paper's workflow is inherently *many runs of one instrumented
//! circuit family*: noise sweeps, ablations, error-filtering tables.
//! A session owns everything those runs share — the backend, the
//! [`ProgramCache`], the shard/thread policy, the shot plan, and the
//! filter/mitigation settings — so call sites stop hand-wiring them
//! through free-function parameters:
//!
//! ```
//! use qassert::{AssertionSession, AssertingCircuit, Parity};
//! use qcircuit::library;
//! use qsim::StatevectorBackend;
//!
//! # fn main() -> Result<(), qassert::AssertError> {
//! let mut program = AssertingCircuit::new(library::bell());
//! program.assert_entangled([0, 1], Parity::Even)?;
//! program.measure_data();
//!
//! let session =
//!     AssertionSession::new(StatevectorBackend::new()).shot_plan(qassert::ShotPlan::Fixed(1024));
//! let outcome = session.run(&program)?;
//! assert_eq!(outcome.assertion_error_rate, 0.0);
//! # Ok(())
//! # }
//! ```
//!
//! # Shot plans
//!
//! The budget every run spends is a [`ShotPlan`], set with
//! [`AssertionSession::shot_plan`] ([`AssertionSession::shots`] is a
//! shim for [`ShotPlan::Fixed`], which stays the bit-identical
//! default). [`ShotPlan::Sequential`] runs shots in tranches and stops
//! as soon as every assertion's anytime-valid sequential verdict
//! ([`crate::statistical::SequentialTest`]) is decided — clear-cut
//! points finish in hundreds of shots instead of the full budget, and
//! [`AssertionOutcome::plan`] / [`AssertionOutcome::verdicts`] record
//! how and why each run stopped. Tranche boundaries are a pure function
//! of the accumulated counts and tranche `k` draws its RNG streams from
//! [`qsim::tranche_seed`]`(base, k)`, so sequential results are
//! bit-reproducible for any `(seed, plan, threads, policy, workers)` —
//! pinned, like fixed plans, by the `sweep_equivalence` property suite.
//!
//! # Migrating from the free functions
//!
//! | old | new |
//! |---|---|
//! | `run_with_assertions(&b, &ac, n)` | `AssertionSession::new(&b).shots(n).run(&ac)` |
//! | `run_with_assertions_cached(&b, &ac, n, &cache)` | `AssertionSession::new(&b).shots(n).cache(&cache).run(&ac)` |
//! | `analyze(raw, &ac)` | `session.analyze(raw, &ac)` |
//! | `b.run(circuit, n)` then `analyze` | `session.run_circuit(circuit)` then `session.analyze` |
//! | per-point loop + `push_cache_metrics` | `session.run_sweep(circuits)` → [`SweepOutcome::telemetry`] |
//! | `.shots(n)` | `.shot_plan(ShotPlan::Fixed(n))`, or keep the shim |
//! | `sweep.points[i]` | `sweep.point(i)` / `sweep.iter()` / `sweep.outcomes()` |
//!
//! # Prefix-aware sweeps
//!
//! Every circuit lowered through a session is also registered in a
//! [`qsim::PrefixRegistry`]. When a later circuit of the same session
//! *extends* an earlier one (the per-θ theory circuits do — each
//! assertion fragment appends to a shared preparation), only the suffix
//! is lowered and the compiled prefix is reused; `prefix_hits` in the
//! session telemetry counts those reuses. Reuse is bit-exact: the
//! registry only splits where no gate-fusion run crosses the boundary,
//! so the op stream is identical to a fresh compile.
//!
//! # Parallel sweeps
//!
//! [`AssertionSession::run_sweep`] executes its points across the
//! process-wide [`qsim::ShardPool`] by default ([`SweepPolicy`]),
//! making the shot plan two-dimensional: whole points are pool tasks,
//! and each point's shot shards are nested tasks under the sweep's
//! latch group — so the work-stealing scheduler splits the machine
//! between points and shots adaptively. Scheduling never changes
//! results: lowering stays serial in input order, per-point seeds are
//! pure functions of `(session seed, point index)`
//! ([`qsim::sweep_point_seed`]), and per-point counts are bit-identical
//! for any `(seed, threads, policy, worker count)`. Sweep telemetry is
//! assembled from per-point traces plus the latch group's own pool
//! counters, so it stays exact even when several sweeps run
//! concurrently — which also makes concurrent [`qsim::ProgramCache`]
//! and [`qsim::PrefixRegistry`] access from pool workers a routine,
//! tested path.

use crate::error::AssertError;
use crate::instrument::AssertingCircuit;
use crate::mitigation::ReadoutMitigator;
use crate::plan::{PlanTrace, ShotPlan, StopReason};
use crate::report::SessionRecord;
use crate::runtime::{analyze_with_policy, AssertionOutcome, FilterPolicy};
use crate::statistical::{
    SequentialTest, SequentialVerdict, DEFAULT_VERDICT_ALPHA, DEFAULT_VERDICT_THRESHOLD,
};
use qcircuit::QuantumCircuit;
use qsim::{
    sweep_point_seed, tranche_seed, Backend, CompiledProgram, PrefixRegistry, ProgramCache,
    ProgramKey, RunResult, ShardPool, SimError,
};
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Default fixed shot budget when neither [`AssertionSession::shots`]
/// nor [`AssertionSession::shot_plan`] is called.
pub const DEFAULT_SHOTS: u64 = 1024;

/// Bound on the session's registered-key memo — matches the prefix
/// registry's own registration cap, beyond which registering is a no-op
/// anyway, so remembering more keys buys nothing.
const REGISTERED_MEMO_CAP: usize = 1024;

/// How [`AssertionSession::run_sweep`] schedules its points.
///
/// Scheduling never changes results: for any policy, worker count, and
/// thread count, per-point counts and the sweep telemetry's
/// deterministic fields are bit-identical — pinned by the
/// `sweep_equivalence` property suite across all three backends.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SweepPolicy {
    /// Points execute one after another on the calling thread (the
    /// pre-parallel behavior). Within a point, shots still shard across
    /// the pool under the session's thread plan.
    Serial,
    /// Points fan out across the shard pool as whole-point tasks
    /// (default), the second dimension of the 2-D `points × shots`
    /// plan. Each point's shot shards submit *nested* pool tasks, so
    /// the work-stealing scheduler adapts automatically: with few
    /// points, idle workers steal a point's shot shards (shot-level
    /// parallelism); with many points, every worker is busy with its
    /// own point and drains its own shards inline (point-level
    /// parallelism).
    #[default]
    Parallel,
}

/// Which program cache a session compiles through.
enum CacheRef<'c> {
    /// The process-wide [`ProgramCache::global`] (default).
    Global,
    /// A caller-owned cache — isolated hit/miss accounting, shared
    /// across sessions at the caller's discretion.
    Borrowed(&'c ProgramCache),
    /// A cache owned by this session.
    Owned(ProgramCache),
}

/// Counters a session accumulates across its lifetime.
///
/// Snapshots are taken with [`AssertionSession::telemetry`]; deltas
/// (e.g. for one sweep) with [`SessionTelemetry::since`]. Sweep
/// harnesses export these into report metrics via
/// [`crate::ExperimentReport::push_session_telemetry`], replacing the
/// old ad-hoc `push_cache_metrics` plumbing around global cache stats.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionTelemetry {
    /// Circuits executed (each [`AssertionSession::run`] or
    /// [`AssertionSession::run_circuit`] call).
    pub runs: u64,
    /// Total shots *requested* across those runs (post-selection may
    /// discard some of them; per-run discards are on
    /// [`qsim::RunResult::shots_discarded`]). Under a sequential plan
    /// this is the shots actually spent, not the budget.
    pub shots: u64,
    /// Backend calls the shot plan made across those runs — one per run
    /// under [`ShotPlan::Fixed`], one per tranche under
    /// [`ShotPlan::Sequential`].
    pub tranches: u64,
    /// Sequential runs that stopped with every verdict decided before
    /// exhausting their budget ([`StopReason::Decided`]).
    pub early_stops: u64,
    /// Lowerings served whole from the program cache.
    pub cache_hits: u64,
    /// Lowerings that had to compile (fully or by prefix extension).
    pub cache_misses: u64,
    /// Compiles that reused a previously lowered prefix, lowering only
    /// the suffix.
    pub prefix_hits: u64,
    /// Ops covered by batched plan nodes across executed programs
    /// (summed per run, not per shot). Per-shot backends execute these
    /// through the blocked SoA kernels; the exact density-matrix
    /// executor compiles plans but walks ops per branch, so for it
    /// this counts plan *coverage*, not kernel executions.
    pub batched_ops: u64,
    /// Batched plan nodes across executed programs (summed per run,
    /// not per shot) — blocked apply passes per shot on the per-shot
    /// backends.
    pub batch_passes: u64,
    /// Shard-pool tasks executed since the session was created
    /// ([`qsim::PoolStats::tasks_run`] deltas against the session's
    /// creation-time baseline). The global pool serves every session,
    /// so the count is attributable to this session only while nothing
    /// else submits concurrently.
    pub pool_tasks: u64,
    /// Shard-pool steals since the session was created
    /// ([`qsim::PoolStats::steals`]); same attribution caveat as
    /// [`SessionTelemetry::pool_tasks`].
    pub pool_steals: u64,
    /// The SIMD backend name the amplitude kernels dispatch to
    /// ([`qsim::simd::active_backend`] at snapshot time; `""` until a
    /// snapshot is taken). Provenance, not a counter: every backend is
    /// bit-identical, so this never changes results — it records which
    /// ISA produced the throughput numbers next to it.
    pub simd_backend: &'static str,
}

impl SessionTelemetry {
    /// Cache hits over total lookups (0 when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// The activity between `earlier` and `self` (counters are
    /// monotonic, so a plain field-wise difference).
    pub fn since(&self, earlier: &SessionTelemetry) -> SessionTelemetry {
        SessionTelemetry {
            runs: self.runs - earlier.runs,
            shots: self.shots - earlier.shots,
            tranches: self.tranches - earlier.tranches,
            early_stops: self.early_stops - earlier.early_stops,
            cache_hits: self.cache_hits - earlier.cache_hits,
            cache_misses: self.cache_misses - earlier.cache_misses,
            prefix_hits: self.prefix_hits - earlier.prefix_hits,
            batched_ops: self.batched_ops - earlier.batched_ops,
            batch_passes: self.batch_passes - earlier.batch_passes,
            pool_tasks: self.pool_tasks - earlier.pool_tasks,
            pool_steals: self.pool_steals - earlier.pool_steals,
            simd_backend: self.simd_backend,
        }
    }

    /// Accumulates another session's (or sweep's) counters into this
    /// one — experiments that build one session per noise point merge
    /// before reporting. (Merge *deltas* when pool counters matter:
    /// they are process-wide snapshots, so merging two raw snapshots
    /// double-counts the pool.)
    pub fn merge(&mut self, other: &SessionTelemetry) {
        self.runs += other.runs;
        self.shots += other.shots;
        self.tranches += other.tranches;
        self.early_stops += other.early_stops;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.prefix_hits += other.prefix_hits;
        self.batched_ops += other.batched_ops;
        self.batch_passes += other.batch_passes;
        self.pool_tasks += other.pool_tasks;
        self.pool_steals += other.pool_steals;
        if self.simd_backend.is_empty() {
            self.simd_backend = other.simd_backend;
        }
    }
}

/// What one [`AssertionSession::lower`]-family call observed — the
/// per-call attribution sweeps aggregate into exact telemetry.
#[derive(Clone, Copy, Debug)]
struct LowerTrace {
    /// The lowering was served whole from the program cache.
    cache_hit: bool,
    /// The compile reused a registered prefix (miss path only).
    prefix_hit: bool,
}

/// The result of [`AssertionSession::run_sweep`]: per-point outcomes
/// plus the cache/prefix/pool telemetry aggregated over the sweep.
///
/// Read points through the structured accessors —
/// [`SweepOutcome::point`], [`SweepOutcome::iter`],
/// [`SweepOutcome::outcomes`] — rather than poking the deprecated
/// `points` field: a [`SweepPoint`] carries the point index next to the
/// verdicts, shots spent, and stop reason, so harness code stops
/// re-deriving them from raw histograms.
#[derive(Debug)]
pub struct SweepOutcome {
    /// One analyzed outcome per swept circuit, in input order.
    #[deprecated(
        note = "use SweepOutcome::point/iter/outcomes instead of poking the raw vec directly"
    )]
    pub points: Vec<AssertionOutcome>,
    /// Cache and prefix activity attributable to this sweep.
    pub telemetry: SessionTelemetry,
}

impl SweepOutcome {
    /// Assembles a sweep outcome (the only place the deprecated field
    /// is written).
    #[allow(deprecated)]
    fn assemble(points: Vec<AssertionOutcome>, telemetry: SessionTelemetry) -> Self {
        SweepOutcome { points, telemetry }
    }

    /// Number of sweep points.
    pub fn len(&self) -> usize {
        self.outcomes().len()
    }

    /// Whether the sweep had no points.
    pub fn is_empty(&self) -> bool {
        self.outcomes().is_empty()
    }

    /// The structured view of point `index`.
    ///
    /// # Panics
    ///
    /// Panics when `index >= self.len()`.
    pub fn point(&self, index: usize) -> SweepPoint<'_> {
        SweepPoint {
            index,
            outcome: &self.outcomes()[index],
        }
    }

    /// Iterates the points in input order as structured views.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = SweepPoint<'_>> {
        self.outcomes()
            .iter()
            .enumerate()
            .map(|(index, outcome)| SweepPoint { index, outcome })
    }

    /// The analyzed outcomes, in input order.
    pub fn outcomes(&self) -> &[AssertionOutcome] {
        #[allow(deprecated)]
        &self.points
    }

    /// Consumes the sweep into its outcome vector (for harnesses that
    /// need owned outcomes).
    pub fn into_outcomes(self) -> Vec<AssertionOutcome> {
        #[allow(deprecated)]
        self.points
    }

    /// Total shots the sweep actually requested across all points —
    /// under a sequential plan, the number the early stops saved from.
    pub fn shots_used(&self) -> u64 {
        self.outcomes().iter().map(|o| o.plan.shots_used).sum()
    }
}

/// One sweep point's analyzed outcome with its position and shot-plan
/// attribution — what [`SweepOutcome::point`]/[`SweepOutcome::iter`]
/// hand out instead of a bare vec entry.
#[derive(Clone, Copy, Debug)]
pub struct SweepPoint<'a> {
    index: usize,
    outcome: &'a AssertionOutcome,
}

impl<'a> SweepPoint<'a> {
    /// The point's position in the swept input.
    pub fn index(&self) -> usize {
        self.index
    }

    /// The full analyzed outcome.
    pub fn outcome(&self) -> &'a AssertionOutcome {
        self.outcome
    }

    /// Per-assertion sequential verdicts, in instrumentation order.
    pub fn verdicts(&self) -> &'a [SequentialVerdict] {
        &self.outcome.verdicts
    }

    /// Shots the plan requested for this point.
    pub fn shots_used(&self) -> u64 {
        self.outcome.plan.shots_used
    }

    /// Backend calls the plan made for this point.
    pub fn tranches(&self) -> u64 {
        self.outcome.plan.tranches
    }

    /// Why this point stopped requesting shots.
    pub fn stop(&self) -> StopReason {
        self.outcome.plan.stop
    }

    /// Whether every assertion's verdict is decided at this point.
    pub fn decided(&self) -> bool {
        self.outcome.decided()
    }
}

/// A configured execution context for instrumented circuits.
///
/// Construct with [`AssertionSession::new`] (the backend moves in;
/// references to backends are backends too, so `new(&backend)` borrows)
/// and chain builder methods. All execution methods take `&self`: a
/// session is shareable across threads when its backend is.
pub struct AssertionSession<'c, B: Backend> {
    backend: B,
    cache: CacheRef<'c>,
    plan: ShotPlan,
    /// Firing-rate threshold of the analysis verdicts (see
    /// [`AssertionSession::verdict_threshold`]).
    threshold: f64,
    threads: Option<usize>,
    seed: Option<u64>,
    filter: FilterPolicy,
    mitigator: Option<ReadoutMitigator>,
    sweep_policy: SweepPolicy,
    /// The pool sweeps dispatch on (`None` = the process-wide
    /// [`ShardPool::global`]); injectable so tests pin behavior across
    /// worker counts.
    pool: Option<&'c ShardPool>,
    prefix_reuse: bool,
    /// The prefix registry lowering compiles through. Owned by default;
    /// [`AssertionSession::prefix_registry`] shares one across sessions
    /// (the multi-tenant server shape), which is why hits are counted
    /// per-session in `prefix_hits` rather than read off the registry.
    prefixes: Arc<PrefixRegistry>,
    /// Prefix reuses observed by *this session's* lowerings. The
    /// registry's own [`PrefixRegistry::hits`] aggregates every sharer,
    /// so telemetry reads this session-local counter instead.
    prefix_hits: AtomicU64,
    /// Keys already registered in `prefixes` — repeated cache hits on a
    /// hot sweep circuit skip recomputing its prefix-hash chain. Capped
    /// (see [`REGISTERED_MEMO_CAP`]); the registry itself refreshes
    /// dead registrations on the miss path, so a stale memo entry can
    /// only delay re-registration until the next cache miss.
    registered: Mutex<HashSet<ProgramKey>>,
    /// The backend's noise fingerprint, hashed once on first use —
    /// fingerprinting walks the model's whole Kraus content, far too
    /// expensive to repeat on every lookup of a sweep.
    noise_fp: OnceLock<Option<u128>>,
    runs: AtomicU64,
    shots_run: AtomicU64,
    tranches_run: AtomicU64,
    early_stops: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    batched_ops: AtomicU64,
    batch_passes: AtomicU64,
    /// The widest program (qubit count) executed so far — reported in
    /// [`SessionRecord::max_qubits`] so repro artifacts show the scale
    /// a backend actually ran at.
    max_qubits: AtomicU64,
    /// Global-pool counters at session creation: [`Self::telemetry`]
    /// reports pool activity *since then*, so per-experiment sessions
    /// don't attribute earlier workloads' tasks to themselves.
    pool_baseline: qsim::PoolStats,
}

impl<'c, B: Backend> AssertionSession<'c, B> {
    /// Creates a session over `backend` with the defaults: the global
    /// program cache, a fixed [`DEFAULT_SHOTS`]-shot plan, the
    /// backend's own thread policy, strict filtering, no mitigation,
    /// prefix reuse on.
    pub fn new(backend: B) -> Self {
        AssertionSession {
            backend,
            cache: CacheRef::Global,
            plan: ShotPlan::default(),
            threshold: DEFAULT_VERDICT_THRESHOLD,
            threads: None,
            seed: None,
            filter: FilterPolicy::default(),
            mitigator: None,
            sweep_policy: SweepPolicy::default(),
            pool: None,
            prefix_reuse: true,
            prefixes: Arc::new(PrefixRegistry::new()),
            prefix_hits: AtomicU64::new(0),
            registered: Mutex::new(HashSet::new()),
            noise_fp: OnceLock::new(),
            runs: AtomicU64::new(0),
            shots_run: AtomicU64::new(0),
            tranches_run: AtomicU64::new(0),
            early_stops: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            batched_ops: AtomicU64::new(0),
            batch_passes: AtomicU64::new(0),
            max_qubits: AtomicU64::new(0),
            pool_baseline: qsim::ShardPool::global_stats(),
        }
    }

    /// Compiles through `cache` instead of the process-wide one
    /// (isolated hit/miss accounting; share one cache across sessions
    /// by passing the same reference).
    #[must_use]
    pub fn cache(mut self, cache: &'c ProgramCache) -> Self {
        self.cache = CacheRef::Borrowed(cache);
        self
    }

    /// Compiles through a cache owned by this session, holding at most
    /// `capacity` programs.
    ///
    /// # Panics
    ///
    /// Panics when `capacity == 0`.
    #[must_use]
    pub fn private_cache(mut self, capacity: usize) -> Self {
        self.cache = CacheRef::Owned(ProgramCache::new(capacity));
        self
    }

    /// Sets the shot plan for every run (default
    /// [`ShotPlan::Fixed`]`(`[`DEFAULT_SHOTS`]`)`).
    ///
    /// [`ShotPlan::Fixed`] runs its whole budget in one backend call —
    /// bit-identical to the pre-plan behavior. [`ShotPlan::Sequential`]
    /// runs tranches and stops each run as soon as every assertion's
    /// anytime-valid verdict is decided (see the module docs); its
    /// `alpha` also becomes the significance of the analysis verdicts.
    ///
    /// # Panics
    ///
    /// Panics when the plan's parameters are invalid
    /// ([`ShotPlan::validate`]).
    #[must_use]
    pub fn shot_plan(mut self, plan: ShotPlan) -> Self {
        if let Err(why) = plan.validate() {
            panic!("invalid shot plan: {why}");
        }
        self.plan = plan;
        self
    }

    /// Shim for [`AssertionSession::shot_plan`] with
    /// [`ShotPlan::Fixed`]`(shots)` — the pre-plan surface, kept for
    /// the one-line fixed-budget case.
    #[must_use]
    pub fn shots(self, shots: u64) -> Self {
        self.shot_plan(ShotPlan::Fixed(shots))
    }

    /// Sets the firing-rate threshold the per-assertion verdicts test
    /// against (default
    /// [`DEFAULT_VERDICT_THRESHOLD`](crate::statistical::DEFAULT_VERDICT_THRESHOLD)):
    /// rates decisively below it report
    /// [`AssertionVerdict::Holds`](crate::statistical::AssertionVerdict::Holds),
    /// decisively above it
    /// [`AssertionVerdict::Violated`](crate::statistical::AssertionVerdict::Violated).
    /// Set it between the backend's noise-level firing rate and the
    /// structural rate of a genuinely violated assertion.
    ///
    /// # Panics
    ///
    /// Panics unless `threshold` is in `(0, 1)`.
    #[must_use]
    pub fn verdict_threshold(mut self, threshold: f64) -> Self {
        assert!(
            threshold > 0.0 && threshold < 1.0,
            "verdict threshold must be in (0, 1), got {threshold}"
        );
        self.threshold = threshold;
        self
    }

    /// Overrides the backend's shard/thread count for per-shot
    /// execution. Backends without a shard concept (the exact
    /// density-matrix executor) ignore this.
    ///
    /// # Panics
    ///
    /// Panics when `threads == 0`.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "at least one thread required");
        self.threads = Some(threads);
        self
    }

    /// Overrides the backend's RNG seed for every run of this session
    /// (via [`qsim::Backend::run_compiled_seeded`]). Seed sweeps build
    /// one cheap session per seed around a *borrowed* backend instead
    /// of rebuilding (or cloning) the backend per call. Backends that
    /// draw no sampling randomness (the exact density-matrix executor)
    /// ignore the override.
    ///
    /// [`AssertionSession::run_sweep`] derives **per-point** seeds from
    /// this value through [`qsim::sweep_point_seed`] (point `p` runs
    /// under `sweep_point_seed(seed, p)`), so sweep points draw
    /// statistically independent streams while staying a pure function
    /// of `(seed, point)` — identical under serial and parallel
    /// scheduling. Without a session seed, every sweep point runs under
    /// the backend's own seed, as single runs do.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Sets how [`AssertionSession::run_sweep`] schedules its points
    /// (default [`SweepPolicy::Parallel`]). Results are bit-identical
    /// under every policy; `Serial` exists for equivalence tests and
    /// for callers that must not occupy the pool.
    #[must_use]
    pub fn sweep_policy(mut self, policy: SweepPolicy) -> Self {
        self.sweep_policy = policy;
        self
    }

    /// Dispatches this session's sweeps on an explicit pool instead of
    /// the process-wide [`ShardPool::global`]. Scheduling never changes
    /// results (see [`SweepPolicy`]); tests use explicit pools to pin
    /// worker-count independence, benchmarks to isolate interference.
    ///
    /// Only whole-point sweep tasks move to this pool: shot shards
    /// *within* a run still execute wherever the backend's sharding
    /// harness puts them (the global pool), nested under the sweep's
    /// latch group either way.
    #[must_use]
    pub fn pool(mut self, pool: &'c ShardPool) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Sets what analysis does when filtering removes every shot
    /// (default [`FilterPolicy::RequireKept`]).
    #[must_use]
    pub fn filter_policy(mut self, policy: FilterPolicy) -> Self {
        self.filter = policy;
        self
    }

    /// Attaches a readout mitigator: every analyzed outcome additionally
    /// carries mitigated raw/filtered distributions
    /// ([`crate::runtime::MitigatedOutcome`]).
    #[must_use]
    pub fn mitigator(mut self, mitigator: ReadoutMitigator) -> Self {
        self.mitigator = Some(mitigator);
        self
    }

    /// Enables or disables compiled-prefix reuse across this session's
    /// lowerings (on by default).
    ///
    /// Turn it off for one-shot sessions (a single run can never reuse
    /// a prefix, so registration is pure overhead — the deprecated
    /// free-function shims do this), for equivalence tests pinning
    /// reuse bit-identical to fresh compilation, and for backends that
    /// override [`qsim::Backend::compile`] with custom lowering: the
    /// prefix path lowers through the default
    /// `compile_with(noise_model(), compile_options())` pipeline, the
    /// same contract [`qsim::Backend::compile_cached`] documents. (With
    /// reuse off, the session lowers through [`qsim::Backend::compile`]
    /// itself, honoring such overrides.)
    #[must_use]
    pub fn prefix_reuse(mut self, reuse: bool) -> Self {
        self.prefix_reuse = reuse;
        self
    }

    /// Compiles through a shared [`PrefixRegistry`] instead of a
    /// session-owned one: sessions built around the same `Arc` reuse
    /// each other's compiled prefixes, the cross-tenant amortization
    /// the assertion server runs on (many users submitting variants of
    /// the same instrumented families).
    ///
    /// Sharing never changes results — prefix reuse is bit-identical
    /// to fresh compilation by construction — and telemetry stays
    /// exactly attributed: [`SessionTelemetry::prefix_hits`] counts
    /// only *this* session's reuses, not the registry-wide total.
    #[must_use]
    pub fn prefix_registry(mut self, registry: Arc<PrefixRegistry>) -> Self {
        self.prefixes = registry;
        self
    }

    /// The backend this session executes on.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// The program cache this session compiles through.
    pub fn program_cache(&self) -> &ProgramCache {
        match &self.cache {
            CacheRef::Global => ProgramCache::global(),
            CacheRef::Borrowed(cache) => cache,
            CacheRef::Owned(cache) => cache,
        }
    }

    /// The session's effective configuration, for embedding in
    /// experiment reports ([`crate::ExperimentReport::push_session`]) so
    /// repro artifacts record how they were produced.
    pub fn record(&self) -> SessionRecord {
        SessionRecord {
            backend: self.backend.name().to_string(),
            backend_kind: self.backend.kind().as_str().to_string(),
            threads: self.threads,
            threads_effective: self.backend.effective_threads(self.threads),
            seed: self.seed,
            shots: self.plan.budget(),
            max_qubits: self.max_qubits.load(Ordering::Relaxed),
            plan: self.plan.to_string(),
            cache_capacity: self.program_cache().capacity(),
            simd: qsim::simd::active_backend().name().to_string(),
        }
    }

    /// A snapshot of this session's lifetime counters, plus the global
    /// shard pool's activity since this session was created
    /// (process-wide pool — see [`SessionTelemetry::pool_tasks`]).
    /// Reading counters never spawns the pool.
    pub fn telemetry(&self) -> SessionTelemetry {
        let pool = qsim::ShardPool::global_stats().since(&self.pool_baseline);
        SessionTelemetry {
            runs: self.runs.load(Ordering::Relaxed),
            shots: self.shots_run.load(Ordering::Relaxed),
            tranches: self.tranches_run.load(Ordering::Relaxed),
            early_stops: self.early_stops.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            prefix_hits: self.prefix_hits.load(Ordering::Relaxed),
            batched_ops: self.batched_ops.load(Ordering::Relaxed),
            batch_passes: self.batch_passes.load(Ordering::Relaxed),
            pool_tasks: pool.tasks_run,
            pool_steals: pool.steals,
            simd_backend: qsim::simd::active_backend().name(),
        }
    }

    /// Records the first sight of a lowered key, bounding the memo;
    /// returns whether this call was the first.
    fn memo_first_sight(&self, key: ProgramKey) -> bool {
        let mut memo = self.registered.lock().expect("session lock");
        if memo.len() >= REGISTERED_MEMO_CAP && !memo.contains(&key) {
            // The prefix registry stops accepting new registrations at
            // the same cap, so stop attempting (and stop growing).
            return false;
        }
        memo.insert(key)
    }

    /// Lowers a circuit through the session's cache and prefix registry
    /// without executing it — sweep harnesses that evolve compiled
    /// programs directly (e.g. exact statevector evolution) use this to
    /// get compile-free, prefix-aware lowering with session telemetry.
    ///
    /// The program is bound to the backend's noise model and compile
    /// options, exactly like [`qsim::Backend::compile_cached`] — and
    /// with the same contract: the prefix-reuse path assumes the
    /// backend's default lowering pipeline. Backends overriding
    /// [`qsim::Backend::compile`] must run with
    /// [`AssertionSession::prefix_reuse`]`(false)`, which lowers
    /// through `compile` itself and so honors the override.
    ///
    /// # Errors
    ///
    /// Returns [`AssertError::Sim`] when lowering fails.
    pub fn lower(&self, circuit: &QuantumCircuit) -> Result<Arc<CompiledProgram>, AssertError> {
        self.lower_traced(circuit).map(|(program, _)| program)
    }

    /// [`AssertionSession::lower`] additionally reporting what *this*
    /// call observed (cache hit vs miss, prefix reuse). Sweeps build
    /// per-point telemetry from these traces instead of shared-counter
    /// deltas, which would cross-attribute under concurrent use.
    fn lower_traced(
        &self,
        circuit: &QuantumCircuit,
    ) -> Result<(Arc<CompiledProgram>, LowerTrace), AssertError> {
        let noise = self.backend.noise_model();
        let options = self.backend.compile_options();
        let cache = self.program_cache();
        let noise_fp = *self
            .noise_fp
            .get_or_init(|| noise.map(qnoise::NoiseModel::fingerprint));
        let key = ProgramKey::from_fingerprint(circuit, noise_fp, options);
        if let Some(program) = cache.lookup(&key) {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            if self.prefix_reuse && self.memo_first_sight(key) {
                // A cache-served program is still prefix fodder for
                // longer circuits later in the sweep (first sight only —
                // repeat hits skip the prefix-hash computation).
                self.prefixes
                    .register_with_fingerprint(circuit, noise_fp, options, &program);
            }
            return Ok((
                program,
                LowerTrace {
                    cache_hit: true,
                    prefix_hit: false,
                },
            ));
        }
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
        let (program, prefix_hit) = if self.prefix_reuse {
            // The registry registers (and revives an eviction-killed
            // registration for) this circuit itself.
            let (compiled, reused) = self
                .prefixes
                .compile_traced_with_fingerprint(circuit, noise, noise_fp, options)?;
            self.memo_first_sight(key);
            if reused {
                self.prefix_hits.fetch_add(1, Ordering::Relaxed);
            }
            (compiled, reused)
        } else {
            // Honors a Backend::compile override (the prefix path above
            // cannot — see the method docs).
            (Arc::new(self.backend.compile(circuit)?), false)
        };
        Ok((
            cache.insert(key, program),
            LowerTrace {
                cache_hit: false,
                prefix_hit,
            },
        ))
    }

    /// The sequential test the session's verdicts evaluate under: the
    /// session's firing threshold at the plan's significance (fixed
    /// plans use [`DEFAULT_VERDICT_ALPHA`]).
    fn verdict_test(&self) -> SequentialTest {
        SequentialTest::new(
            self.threshold,
            self.plan.alpha().unwrap_or(DEFAULT_VERDICT_ALPHA),
        )
    }

    /// Lowers and executes a bare circuit, returning the raw backend
    /// result. Runs the plan's full budget in one backend call: a bare
    /// circuit carries no assertion records, so a sequential plan has no
    /// verdicts to stop on — use [`AssertionSession::run`] with the
    /// instrumented circuit for early termination.
    ///
    /// This is the entry point for circuits that were rewritten after
    /// instrumentation (e.g. transpiled to a device topology): run the
    /// native circuit here, then feed the result to
    /// [`AssertionSession::analyze`] with the original
    /// [`AssertingCircuit`].
    ///
    /// # Errors
    ///
    /// Returns [`AssertError::Sim`] when lowering or execution fails.
    pub fn run_circuit(&self, circuit: &QuantumCircuit) -> Result<RunResult, AssertError> {
        let program = self.lower(circuit)?;
        let shots = self.plan.budget();
        let raw = self
            .backend
            .run_compiled_seeded(&program, shots, self.seed, self.threads)?;
        self.record_run(&program, &PlanTrace::fixed(shots));
        Ok(raw)
    }

    /// Bumps the session's lifetime counters for one executed run.
    fn record_run(&self, program: &CompiledProgram, trace: &PlanTrace) {
        self.runs.fetch_add(1, Ordering::Relaxed);
        self.max_qubits
            .fetch_max(program.num_qubits() as u64, Ordering::Relaxed);
        self.shots_run
            .fetch_add(trace.shots_used, Ordering::Relaxed);
        self.tranches_run
            .fetch_add(trace.tranches, Ordering::Relaxed);
        if trace.stop == StopReason::Decided {
            self.early_stops.fetch_add(1, Ordering::Relaxed);
        }
        self.batched_ops
            .fetch_add(program.batched_ops() as u64, Ordering::Relaxed);
        self.batch_passes
            .fetch_add(program.batch_passes() as u64, Ordering::Relaxed);
    }

    /// Executes one instrumented program under the session's shot plan.
    ///
    /// [`ShotPlan::Fixed`] is exactly one backend call under
    /// `base_seed` — bit-identical to the pre-plan behavior, including
    /// `base_seed = None` deferring to the backend's own seed.
    /// [`ShotPlan::Sequential`] runs tranches, tranche `k` under
    /// [`qsim::tranche_seed`]`(base, k)` where `base` is `base_seed` or
    /// 0 (the derivation needs *some* base so tranches draw independent
    /// streams even on unseeded sessions), folds the accumulated counts
    /// into every assertion's sequential test once `min_shots` have
    /// been requested, and stops when all verdicts are decided or the
    /// budget runs out. The stop point is a pure function of the
    /// accumulated counts — never timing or worker count.
    ///
    /// A tranche that discards every shot
    /// ([`qsim::SimError::AllShotsDiscarded`]) contributes zero
    /// recorded shots but still counts against the budget; the error
    /// only propagates if *every* accumulated shot was discarded.
    fn run_planned(
        &self,
        program: &Arc<CompiledProgram>,
        asserting: &AssertingCircuit,
        base_seed: Option<u64>,
    ) -> Result<(RunResult, PlanTrace), AssertError> {
        let (raw, trace) = match self.plan {
            ShotPlan::Fixed(shots) => {
                let raw =
                    self.backend
                        .run_compiled_seeded(program, shots, base_seed, self.threads)?;
                (raw, PlanTrace::fixed(shots))
            }
            ShotPlan::Sequential {
                min_shots,
                max_shots,
                tranche,
                ..
            } => {
                let test = self.verdict_test();
                let base = base_seed.unwrap_or(0);
                let records = asserting.records();
                let mut accumulated: Option<RunResult> = None;
                let mut requested = 0u64;
                let mut discarded = 0u64;
                let mut tranches = 0u64;
                let mut stop = StopReason::Budget;
                while requested < max_shots {
                    let shots = tranche.min(max_shots - requested);
                    let seed = Some(tranche_seed(base, tranches as usize));
                    tranches += 1;
                    requested += shots;
                    match self
                        .backend
                        .run_compiled_seeded(program, shots, seed, self.threads)
                    {
                        Ok(result) => {
                            discarded += result.shots_discarded;
                            accumulated = Some(match accumulated {
                                Some(mut acc) => {
                                    acc.counts.absorb(result.counts);
                                    acc
                                }
                                None => result,
                            });
                        }
                        // A fully-discarded tranche is evidence, not
                        // failure: record zero kept shots and continue.
                        Err(SimError::AllShotsDiscarded) => discarded += shots,
                        Err(error) => return Err(error.into()),
                    }
                    if requested >= min_shots {
                        let total = accumulated.as_ref().map_or(0, |acc| acc.counts.total());
                        let all_decided = records.iter().all(|record| {
                            let fired = accumulated.as_ref().map_or(0, |acc| {
                                crate::filter::assertion_fired_shots(&acc.counts, &record.clbits)
                            });
                            test.evaluate(total, fired).decided()
                        });
                        if all_decided {
                            stop = StopReason::Decided;
                            break;
                        }
                    }
                }
                let mut raw = accumulated.ok_or(AssertError::Sim(SimError::AllShotsDiscarded))?;
                raw.shots_requested = requested;
                raw.shots_discarded = discarded;
                (
                    raw,
                    PlanTrace {
                        shots_used: requested,
                        tranches,
                        stop,
                    },
                )
            }
        };
        self.record_run(program, &trace);
        Ok((raw, trace))
    }

    /// Runs an instrumented circuit under the session's shot plan and
    /// analyzes its assertion outcomes under the session's filter and
    /// mitigation settings. Under [`ShotPlan::Sequential`] this is the
    /// early-terminating path: the run stops as soon as every
    /// assertion's verdict is decided, and the outcome's
    /// [`AssertionOutcome::plan`] records how it stopped.
    ///
    /// # Errors
    ///
    /// Returns [`AssertError::Sim`] when execution fails and
    /// [`AssertError::NoShotsKept`] when filtering removes every shot
    /// under [`FilterPolicy::RequireKept`].
    pub fn run(&self, asserting: &AssertingCircuit) -> Result<AssertionOutcome, AssertError> {
        let program = self.lower(asserting.circuit())?;
        let (raw, trace) = self.run_planned(&program, asserting, self.seed)?;
        self.analyze_traced(raw, asserting, trace)
    }

    /// Analyzes an existing backend result against an asserting
    /// circuit's records under the session's filter and mitigation
    /// settings (no execution — for results the caller produced, e.g.
    /// from a transpiled circuit via [`AssertionSession::run_circuit`]).
    /// The result is treated as one fixed run of `raw.shots_requested`
    /// shots.
    ///
    /// # Errors
    ///
    /// Returns [`AssertError::NoShotsKept`] when filtering removes every
    /// shot under [`FilterPolicy::RequireKept`].
    pub fn analyze(
        &self,
        raw: RunResult,
        asserting: &AssertingCircuit,
    ) -> Result<AssertionOutcome, AssertError> {
        let trace = PlanTrace::fixed(raw.shots_requested);
        self.analyze_traced(raw, asserting, trace)
    }

    /// [`AssertionSession::analyze`] with an explicit plan trace — the
    /// internal path for planned runs. Verdicts are recomputed from the
    /// final accumulated counts, which equals the tranche loop's stop
    /// state exactly because the sequential test is a pure function of
    /// the running totals.
    fn analyze_traced(
        &self,
        raw: RunResult,
        asserting: &AssertingCircuit,
        trace: PlanTrace,
    ) -> Result<AssertionOutcome, AssertError> {
        analyze_with_policy(
            raw,
            asserting,
            self.filter,
            self.mitigator.as_ref(),
            &self.verdict_test(),
            trace,
        )
    }

    /// The base seed sweep point `p` runs under. A fixed plan keeps the
    /// exact legacy semantics: derived only when the session has a seed,
    /// `None` (backend's own seed) otherwise. A sequential plan *always*
    /// derives — its tranche streams come from
    /// `tranche_seed(base, k)`, so without a per-point base every point
    /// of an unseeded sweep would replay the same streams.
    fn sweep_point_base_seed(&self, point: usize) -> Option<u64> {
        if self.plan.is_sequential() {
            Some(sweep_point_seed(self.seed.unwrap_or(0), point))
        } else {
            self.seed.map(|s| sweep_point_seed(s, point))
        }
    }

    /// Executes an already-lowered sweep point under the session's shot
    /// plan: point `p` runs under the base seed
    /// [`qsim::sweep_point_seed`]`(session_seed, p)` (see
    /// [`AssertionSession::sweep_point_base_seed`] for the unseeded
    /// cases), then analyzes under the session's filter and mitigation
    /// settings. Pure function of `(program, point, session config)`,
    /// which is what makes scheduling-independent sweeps possible.
    fn run_sweep_point(
        &self,
        program: &Arc<CompiledProgram>,
        point: usize,
        asserting: &AssertingCircuit,
    ) -> Result<AssertionOutcome, AssertError> {
        let base = self.sweep_point_base_seed(point);
        let (raw, trace) = self.run_planned(program, asserting, base)?;
        self.analyze_traced(raw, asserting, trace)
    }

    /// Runs a family of instrumented circuits, returning per-point
    /// outcomes plus the cache/prefix/pool telemetry aggregated over
    /// exactly this sweep.
    ///
    /// # The 2-D shot plan
    ///
    /// Every circuit is lowered **on the calling thread, in input
    /// order** (so the cache hit/miss sequence and prefix-extension
    /// chains are identical under every policy — circuits sharing a
    /// lowered prefix compile incrementally, see the module docs), then
    /// points execute according to the session's [`SweepPolicy`]:
    /// serially, or fanned out across the shard pool with each point's
    /// shot shards nested under the same latch group. Point `p` runs
    /// under the derived seed [`qsim::sweep_point_seed`]`(seed, p)`
    /// when the session has a seed (statistically independent streams
    /// per point), under the backend's own seed otherwise. Counts are
    /// **bit-identical** for any `(seed, threads, policy, worker
    /// count)`.
    ///
    /// # Telemetry
    ///
    /// Aggregated from per-point traces and the sweep's own pool latch
    /// group — not from shared-counter snapshots — so it stays exact
    /// even when other sweeps or sessions run concurrently.
    /// `pool_tasks`/`pool_steals` cover exactly this sweep's tasks
    /// (whole-point tasks under [`SweepPolicy::Parallel`] plus nested
    /// shot shards under either policy); `pool_steals` (and under
    /// `Parallel` also `pool_tasks`' split between stolen and home
    /// pops) is scheduling-dependent, every other field is
    /// deterministic.
    ///
    /// # Memory
    ///
    /// [`SweepPolicy::Serial`] streams — one lowered program is alive
    /// at a time beyond the cache, exactly like a hand-written
    /// lower/run loop. [`SweepPolicy::Parallel`] must materialize all
    /// lowered points before dispatch (worst case `O(points)` programs
    /// beyond the cache's LRU bound, released point by point as they
    /// finish executing) — prefer `Serial` for sweeps of very many
    /// very large distinct circuits.
    ///
    /// # Errors
    ///
    /// Returns the lowest-indexed point's error, if any. Under
    /// [`SweepPolicy::Serial`] the sweep stops at the first failure
    /// (points before it have executed, as in a hand-written loop);
    /// under [`SweepPolicy::Parallel`] a lowering error surfaces before
    /// anything executes, and an execution error does not prevent
    /// other points from executing first. Either way the `Err` carries
    /// no partial outcomes or telemetry.
    pub fn run_sweep<I>(&self, circuits: I) -> Result<SweepOutcome, AssertError>
    where
        I: IntoIterator<Item = AssertingCircuit>,
        B: Sync,
    {
        let circuits: Vec<AssertingCircuit> = circuits.into_iter().collect();
        if circuits.is_empty() {
            return Ok(SweepOutcome::assemble(
                Vec::new(),
                SessionTelemetry::default(),
            ));
        }
        let pool = match self.pool {
            Some(pool) => pool,
            None => ShardPool::global(),
        };
        // Either policy lowers on the calling thread, in input order,
        // accumulating exact per-call traces — so cache/prefix
        // telemetry (and prefix reuse itself) is policy-independent.
        // Run/shot/tranche accounting is assembled from per-point plan
        // traces *after* execution: under a sequential plan the shots a
        // point spends aren't known at lowering time.
        let mut telemetry = SessionTelemetry::default();
        let mut record_lowering = |trace: LowerTrace, program: &CompiledProgram| {
            telemetry.cache_hits += u64::from(trace.cache_hit);
            telemetry.cache_misses += u64::from(!trace.cache_hit);
            telemetry.prefix_hits += u64::from(trace.prefix_hit);
            telemetry.batched_ops += program.batched_ops() as u64;
            telemetry.batch_passes += program.batch_passes() as u64;
        };

        let (points, pool_stats) = match self.sweep_policy {
            SweepPolicy::Serial => {
                // Stream lower → run per point: one lowered program
                // alive at a time, the pre-parallel loop semantics.
                let mut points = Vec::with_capacity(circuits.len());
                let mut failure = None;
                let ((), pool_stats) = pool.scope(|scope| {
                    scope.run_attributed(|| {
                        for (point, asserting) in circuits.iter().enumerate() {
                            let attempt = self.lower_traced(asserting.circuit()).and_then(
                                |(program, trace)| {
                                    record_lowering(trace, &program);
                                    self.run_sweep_point(&program, point, asserting)
                                },
                            );
                            match attempt {
                                Ok(outcome) => points.push(outcome),
                                Err(error) => {
                                    failure = Some(error);
                                    break;
                                }
                            }
                        }
                    })
                });
                if let Some(error) = failure {
                    return Err(error);
                }
                (points, pool_stats)
            }
            SweepPolicy::Parallel => {
                // Phase 1 — lower every point up front (execution can't
                // start before its program exists); a lowering error
                // returns before anything executes.
                let mut programs: Vec<Mutex<Option<Arc<CompiledProgram>>>> =
                    Vec::with_capacity(circuits.len());
                for asserting in &circuits {
                    let (program, trace) = self.lower_traced(asserting.circuit())?;
                    record_lowering(trace, &program);
                    programs.push(Mutex::new(Some(program)));
                }

                // Phase 2 — execute the points under one pool latch
                // group, so the group's stats are exactly this sweep's
                // pool activity. Each task takes its program out of the
                // slot, releasing memory as the sweep progresses.
                let slots: Vec<Mutex<Option<Result<AssertionOutcome, AssertError>>>> =
                    circuits.iter().map(|_| Mutex::new(None)).collect();
                let ((), pool_stats) = pool.scope(|scope| {
                    let (slots, programs) = (&slots, &programs);
                    for (point, asserting) in circuits.iter().enumerate() {
                        scope.submit(move || {
                            let program = programs[point]
                                .lock()
                                .expect("program slot")
                                .take()
                                .expect("each point's program is taken once");
                            let result = self.run_sweep_point(&program, point, asserting);
                            *slots[point].lock().expect("sweep slot") = Some(result);
                        });
                    }
                });

                let mut points = Vec::with_capacity(slots.len());
                for slot in slots {
                    match slot.into_inner().expect("sweep slot") {
                        Some(Ok(outcome)) => points.push(outcome),
                        Some(Err(error)) => return Err(error),
                        None => unreachable!("scope drained with an unexecuted point"),
                    }
                }
                (points, pool_stats)
            }
        };
        // Run/shot/tranche accounting from the per-point plan traces —
        // exact under any plan, policy, or concurrent session activity.
        telemetry.runs = points.len() as u64;
        telemetry.shots = points.iter().map(|p| p.plan.shots_used).sum();
        telemetry.tranches = points.iter().map(|p| p.plan.tranches).sum();
        telemetry.early_stops = points
            .iter()
            .filter(|p| p.plan.stop == StopReason::Decided)
            .count() as u64;
        telemetry.pool_tasks = pool_stats.tasks_run;
        telemetry.pool_steals = pool_stats.steals;
        telemetry.simd_backend = qsim::simd::active_backend().name();
        Ok(SweepOutcome::assemble(points, telemetry))
    }
}

impl<B: Backend> std::fmt::Debug for AssertionSession<'_, B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let t = self.telemetry();
        write!(
            f,
            "AssertionSession {{ backend: {:?}, plan: {}, threads: {:?}, runs: {}, \
             cache {}h/{}m, prefix_hits: {} }}",
            self.backend.name(),
            self.plan,
            self.threads,
            t.runs,
            t.cache_hits,
            t.cache_misses,
            t.prefix_hits
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assertion::Parity;
    use qcircuit::library;
    use qsim::{DensityMatrixBackend, StatevectorBackend, TrajectoryBackend};

    fn bell_assertion() -> AssertingCircuit {
        let mut ac = AssertingCircuit::new(library::bell());
        ac.assert_entangled([0, 1], Parity::Even).unwrap();
        ac.measure_data();
        ac
    }

    /// One θ point of a staged-assertion sweep: a program asserted after
    /// its first stage, and the same program grown by a second stage and
    /// a second assertion — the longer circuit's instruction stream
    /// extends the shorter's exactly (the assertion ancilla and clbit it
    /// adds widen the registers, which prefix reuse tolerates).
    fn theta_pair(theta: f64) -> (AssertingCircuit, AssertingCircuit) {
        let mut prep = QuantumCircuit::new(2, 0);
        prep.ry(theta, 0).unwrap();
        prep.cx(0, 1).unwrap();
        let mut first = AssertingCircuit::new(prep);
        first.assert_entangled([0, 1], Parity::Even).unwrap();
        let mut second = first.clone();
        second.circuit_mut().x(0).unwrap();
        second.circuit_mut().x(1).unwrap();
        second.assert_entangled([0, 1], Parity::Even).unwrap();
        (first, second)
    }

    #[test]
    #[should_panic(expected = "invalid shot plan")]
    fn zero_shot_fixed_plan_is_rejected_at_the_session() {
        // Regression: core validation owns the zero-budget rejection
        // (it used to live as a serve-side special case).
        let _ = AssertionSession::new(DensityMatrixBackend::ideal()).shots(0);
    }

    #[test]
    fn borrowed_and_owned_backends_agree() {
        let ac = bell_assertion();
        let backend = StatevectorBackend::new().with_seed(11);
        let owned = AssertionSession::new(backend.clone()).shots(300);
        let borrowed = AssertionSession::new(&backend).shots(300);
        let a = owned.run(&ac).unwrap();
        let b = borrowed.run(&ac).unwrap();
        assert_eq!(a.raw.counts, b.raw.counts);
    }

    #[test]
    fn threads_override_preserves_seeded_counts() {
        // `threads` fixes the shard split, so the session override must
        // reproduce a backend configured with the same count.
        let ac = bell_assertion();
        let noise = qnoise::presets::uniform(3, 0.01, 0.04, 0.02).unwrap();
        let configured = TrajectoryBackend::new(noise.clone())
            .with_seed(5)
            .with_threads(4);
        let overridden = AssertionSession::new(TrajectoryBackend::new(noise).with_seed(5))
            .threads(4)
            .shots(801);
        let a = AssertionSession::new(configured)
            .shots(801)
            .run(&ac)
            .unwrap();
        let b = overridden.run(&ac).unwrap();
        assert_eq!(a.raw.counts, b.raw.counts);
    }

    #[test]
    fn private_cache_isolates_accounting() {
        let ac = bell_assertion();
        let session = AssertionSession::new(StatevectorBackend::new().with_seed(2))
            .private_cache(4)
            .shots(100);
        session.run(&ac).unwrap();
        session.run(&ac).unwrap();
        let t = session.telemetry();
        assert_eq!((t.cache_hits, t.cache_misses), (1, 1));
        assert_eq!(t.runs, 2);
        assert_eq!(t.shots, 200);
        assert_eq!(session.program_cache().stats().entries, 1);
    }

    #[test]
    fn sweep_over_a_circuit_family_reuses_prefixes_bit_identically() {
        let circuits = |steps: usize| {
            let mut family = Vec::new();
            for step in 0..steps {
                let theta = step as f64 / steps as f64 * std::f64::consts::TAU;
                let (a, b) = theta_pair(theta);
                family.push(a);
                family.push(b);
            }
            family
        };
        let with_prefix = AssertionSession::new(StatevectorBackend::new().with_seed(3))
            .private_cache(64)
            .shots(128);
        let without_prefix = AssertionSession::new(StatevectorBackend::new().with_seed(3))
            .private_cache(64)
            .shots(128)
            .prefix_reuse(false);
        let a = with_prefix.run_sweep(circuits(6)).unwrap();
        let b = without_prefix.run_sweep(circuits(6)).unwrap();
        assert!(
            a.telemetry.prefix_hits >= 6,
            "each longer circuit should extend its θ's shorter one, got {}",
            a.telemetry.prefix_hits
        );
        assert_eq!(b.telemetry.prefix_hits, 0);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.outcomes().iter().zip(b.outcomes()) {
            assert_eq!(x.raw.counts, y.raw.counts, "prefix reuse changed counts");
            assert_eq!(x.kept, y.kept);
        }
    }

    #[test]
    fn sweep_telemetry_covers_exactly_the_sweep() {
        let session = AssertionSession::new(StatevectorBackend::new().with_seed(4))
            .private_cache(16)
            .shots(64);
        session.run(&bell_assertion()).unwrap(); // outside the sweep
        let sweep = session
            .run_sweep(vec![bell_assertion(), bell_assertion()])
            .unwrap();
        assert_eq!(sweep.len(), 2);
        assert_eq!(sweep.telemetry.runs, 2);
        assert_eq!(sweep.telemetry.shots, 128);
        assert_eq!(sweep.telemetry.tranches, 2);
        assert_eq!(sweep.telemetry.early_stops, 0);
        assert_eq!(sweep.shots_used(), 128);
        // Both sweep points hit the program cached by the pre-sweep run.
        assert_eq!(sweep.telemetry.cache_hits, 2);
        assert_eq!(sweep.telemetry.cache_misses, 0);
    }

    #[test]
    fn lower_is_compile_free_on_repeat_and_feeds_statevector_evolution() {
        let backend = StatevectorBackend::new();
        let session = AssertionSession::new(&backend).private_cache(8);
        let mut prep = QuantumCircuit::new(2, 0);
        prep.ry(0.9, 0).unwrap();
        prep.cx(0, 1).unwrap();
        let p1 = session.lower(&prep).unwrap();
        let p2 = session.lower(&prep).unwrap();
        assert!(Arc::ptr_eq(&p1, &p2));
        let psi = backend.statevector_compiled(&p1).unwrap();
        let direct = backend.statevector(&prep).unwrap();
        for i in 0..4 {
            assert_eq!(psi.amplitude(i), direct.amplitude(i));
        }
    }

    #[test]
    fn record_reports_the_effective_configuration() {
        let session = AssertionSession::new(DensityMatrixBackend::ideal())
            .shots(4096)
            .threads(3)
            .private_cache(32);
        let record = session.record();
        assert_eq!(record.backend, "density matrix (exact ideal)");
        // The requested override is recorded even though the exact
        // backend ignores it; threads_effective carries what took hold.
        assert_eq!(record.threads, Some(3));
        assert_eq!(record.threads_effective, None);
        assert_eq!(record.shots, 4096);
        assert_eq!(record.plan, "fixed(4096)");
        assert_eq!(record.cache_capacity, 32);
        let sharded = AssertionSession::new(StatevectorBackend::new())
            .threads(3)
            .record();
        assert_eq!(sharded.threads, Some(3));
        assert_eq!(sharded.threads_effective, Some(3));
        let sequential = AssertionSession::new(DensityMatrixBackend::ideal())
            .shot_plan(ShotPlan::sequential(0.05))
            .record();
        assert_eq!(sequential.shots, 8192);
        assert_eq!(
            sequential.plan,
            "sequential(alpha=0.05, min=64, max=8192, tranche=256)"
        );
    }

    #[test]
    fn mitigator_attaches_mitigated_distributions() {
        use qnoise::ReadoutError;
        let mut base = QuantumCircuit::new(1, 0);
        base.h(0).unwrap();
        let mut ac = AssertingCircuit::new(base);
        ac.assert_classical([0], [false]).unwrap();
        ac.measure_data();
        let mut noise = qnoise::NoiseModel::new();
        for q in 0..2 {
            noise.with_readout_error(q, ReadoutError::new(0.05, 0.05).unwrap());
        }
        let mitigator = ReadoutMitigator::from_noise_model(
            &noise,
            &[qcircuit::QubitId::new(1), qcircuit::QubitId::new(0)],
        );
        let backend = DensityMatrixBackend::new(noise);
        let session = AssertionSession::new(backend)
            .shots(1 << 14)
            .mitigator(mitigator);
        let outcome = session.run(&ac).unwrap();
        let mitigated = outcome.mitigated.as_ref().expect("mitigator attached");
        assert_eq!(mitigated.probs.len(), 4);
        let sum: f64 = mitigated.probs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        let kept_sum: f64 = mitigated.kept.iter().sum();
        assert!((kept_sum - 1.0).abs() < 1e-9);
        // Filtered mass only on outcomes whose assertion bit is clear.
        for (k, p) in mitigated.kept.iter().enumerate() {
            if k & 1 == 1 {
                assert_eq!(*p, 0.0);
            }
        }
    }

    #[test]
    fn telemetry_merge_and_hit_rate() {
        let mut a = SessionTelemetry {
            runs: 2,
            shots: 100,
            tranches: 2,
            early_stops: 0,
            cache_hits: 3,
            cache_misses: 1,
            prefix_hits: 1,
            batched_ops: 10,
            batch_passes: 2,
            pool_tasks: 8,
            pool_steals: 1,
            simd_backend: "",
        };
        let b = SessionTelemetry {
            runs: 1,
            shots: 50,
            tranches: 4,
            early_stops: 1,
            cache_hits: 1,
            cache_misses: 3,
            prefix_hits: 0,
            batched_ops: 5,
            batch_passes: 1,
            pool_tasks: 4,
            pool_steals: 0,
            simd_backend: "avx2",
        };
        a.merge(&b);
        assert_eq!(a.runs, 3);
        assert_eq!(a.shots, 150);
        assert_eq!(a.tranches, 6);
        assert_eq!(a.early_stops, 1);
        assert_eq!(a.batched_ops, 15);
        assert_eq!(a.batch_passes, 3);
        assert_eq!(a.pool_tasks, 12);
        assert_eq!(a.pool_steals, 1);
        // An empty backend slot takes the merged-in one.
        assert_eq!(a.simd_backend, "avx2");
        assert!((a.hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(SessionTelemetry::default().hit_rate(), 0.0);
    }

    #[test]
    fn seed_override_matches_a_reseeded_backend() {
        // One session per seed over a *borrowed* backend must reproduce
        // rebuilding the backend with that seed — the point of the
        // per-run seed hook.
        let ac = bell_assertion();
        let noise = qnoise::presets::uniform(3, 0.01, 0.04, 0.02).unwrap();
        let proto = TrajectoryBackend::new(noise.clone());
        for seed in [0u64, 7, 1234] {
            let via_session = AssertionSession::new(&proto)
                .seed(seed)
                .shots(301)
                .run(&ac)
                .unwrap();
            let via_backend =
                AssertionSession::new(TrajectoryBackend::new(noise.clone()).with_seed(seed))
                    .shots(301)
                    .run(&ac)
                    .unwrap();
            assert_eq!(
                via_session.raw.counts, via_backend.raw.counts,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn sweep_policies_and_worker_counts_agree_bit_identically() {
        let noise = qnoise::presets::uniform(3, 0.01, 0.04, 0.02).unwrap();
        let family = || {
            (0..5)
                .map(|i| {
                    let mut prep = QuantumCircuit::new(2, 0);
                    prep.ry(0.3 + i as f64 * 0.4, 0).unwrap();
                    prep.cx(0, 1).unwrap();
                    let mut ac = AssertingCircuit::new(prep);
                    ac.assert_entangled([0, 1], Parity::Even).unwrap();
                    ac.measure_data();
                    ac
                })
                .collect::<Vec<_>>()
        };
        let backend = TrajectoryBackend::new(noise);
        let reference = AssertionSession::new(&backend)
            .private_cache(16)
            .shots(150)
            .seed(9)
            .threads(2)
            .sweep_policy(SweepPolicy::Serial)
            .run_sweep(family())
            .unwrap();
        for workers in [0, 3] {
            let pool = qsim::ShardPool::new(workers);
            let sweep = AssertionSession::new(&backend)
                .private_cache(16)
                .shots(150)
                .seed(9)
                .threads(2)
                .sweep_policy(SweepPolicy::Parallel)
                .pool(&pool)
                .run_sweep(family())
                .unwrap();
            assert_eq!(sweep.len(), reference.len());
            for (a, b) in sweep.outcomes().iter().zip(reference.outcomes()) {
                assert_eq!(a.raw.counts, b.raw.counts, "{workers} workers");
                assert_eq!(a.kept, b.kept);
            }
            // Deterministic telemetry fields agree exactly; pool fields
            // differ by construction (parallel adds the point tasks) and
            // steals are scheduling-dependent.
            assert_eq!(sweep.telemetry.runs, reference.telemetry.runs);
            assert_eq!(sweep.telemetry.shots, reference.telemetry.shots);
            assert_eq!(sweep.telemetry.cache_hits, reference.telemetry.cache_hits);
            assert_eq!(
                sweep.telemetry.cache_misses,
                reference.telemetry.cache_misses
            );
            assert_eq!(sweep.telemetry.prefix_hits, reference.telemetry.prefix_hits);
        }
    }

    #[test]
    fn sweep_derives_independent_per_point_seeds() {
        // With a session seed, point p must run under
        // sweep_point_seed(seed, p) — reproducible by a single-run
        // session configured with that exact seed — and distinct points
        // draw distinct streams even for identical circuits.
        let noise = qnoise::presets::uniform(3, 0.01, 0.05, 0.02).unwrap();
        let backend = TrajectoryBackend::new(noise);
        let ac = bell_assertion();
        let sweep = AssertionSession::new(&backend)
            .private_cache(4)
            .shots(300)
            .seed(42)
            .run_sweep(vec![ac.clone(), ac.clone()])
            .unwrap();
        for point in sweep.iter() {
            let isolated = AssertionSession::new(&backend)
                .private_cache(4)
                .shots(300)
                .seed(qsim::sweep_point_seed(42, point.index()))
                .run(&ac)
                .unwrap();
            assert_eq!(
                point.outcome().raw.counts,
                isolated.raw.counts,
                "point {}",
                point.index()
            );
        }
        assert_ne!(
            sweep.outcomes()[0].raw.counts,
            sweep.outcomes()[1].raw.counts,
            "identical circuits at different points must draw distinct streams"
        );
    }

    #[test]
    fn concurrent_sweeps_keep_exact_pool_telemetry() {
        // The satellite regression: two sweeps running concurrently on
        // one process must each report exactly their own pool activity
        // (latch-group attribution), not racy global-counter deltas
        // that cross-count each other's tasks. With .threads(2) every
        // point contributes 1 point task + 2 shard tasks = 3.
        let noise = qnoise::presets::uniform(3, 0.01, 0.04, 0.02).unwrap();
        let backend = TrajectoryBackend::new(noise);
        let family = |n: usize| {
            (0..n)
                .map(|_| bell_assertion())
                .collect::<Vec<AssertingCircuit>>()
        };
        std::thread::scope(|threads| {
            for n in [4usize, 9] {
                let backend = &backend;
                threads.spawn(move || {
                    let sweep = AssertionSession::new(backend)
                        .private_cache(4)
                        .shots(64)
                        .threads(2)
                        .run_sweep(family(n))
                        .unwrap();
                    assert_eq!(
                        sweep.telemetry.pool_tasks,
                        3 * n as u64,
                        "sweep of {n} points must count exactly its own tasks"
                    );
                });
            }
        });
    }

    #[test]
    fn batched_telemetry_counts_per_run() {
        // A wide ideal layer batches; two runs double the counters.
        let mut prep = QuantumCircuit::new(4, 0);
        for _ in 0..2 {
            for q in 0..4 {
                prep.h(q).unwrap();
            }
            for q in 0..2 {
                prep.cx(q, q + 2).unwrap();
            }
        }
        let mut ac = AssertingCircuit::new(prep);
        ac.assert_classical([0], [false]).unwrap();
        ac.measure_data();
        let session = AssertionSession::new(StatevectorBackend::new().with_seed(1))
            .private_cache(4)
            .shots(64);
        session.run(&ac).unwrap();
        let t1 = session.telemetry();
        assert!(t1.batched_ops > 0, "wide layers must batch");
        assert!(t1.batch_passes > 0);
        session.run(&ac).unwrap();
        let t2 = session.telemetry();
        assert_eq!(t2.batched_ops, 2 * t1.batched_ops);
        assert_eq!(t2.batch_passes, 2 * t1.batch_passes);
    }

    /// A bell pair asserted with the *wrong* parity: the assertion fires
    /// on essentially every shot, the clearest possible violation.
    fn violated_bell_assertion() -> AssertingCircuit {
        let mut ac = AssertingCircuit::new(library::bell());
        ac.assert_entangled([0, 1], Parity::Odd).unwrap();
        ac.measure_data();
        ac
    }

    #[test]
    fn sequential_plan_stops_clear_cut_runs_early() {
        let plan = ShotPlan::Sequential {
            alpha: 0.05,
            min_shots: 64,
            max_shots: 4096,
            tranche: 64,
        };
        let session = AssertionSession::new(StatevectorBackend::new())
            .private_cache(4)
            .shot_plan(plan)
            .seed(7);
        let outcome = session.run(&bell_assertion()).unwrap();
        assert_eq!(outcome.plan.stop, StopReason::Decided);
        assert!(
            outcome.plan.shots_used < 4096,
            "a clean run must stop before the budget, used {}",
            outcome.plan.shots_used
        );
        assert_eq!(outcome.plan.tranches, outcome.plan.shots_used / 64);
        assert_eq!(
            outcome.verdicts[0].verdict,
            crate::statistical::AssertionVerdict::Holds
        );
        assert!(outcome.decided());
        let t = session.telemetry();
        assert_eq!(t.runs, 1);
        assert_eq!(t.shots, outcome.plan.shots_used);
        assert_eq!(t.tranches, outcome.plan.tranches);
        assert_eq!(t.early_stops, 1);

        // A violated assertion fires on every shot — one tranche past
        // the floor decides it.
        let violated = AssertionSession::new(StatevectorBackend::new())
            .private_cache(4)
            .filter_policy(FilterPolicy::AllowEmpty)
            .shot_plan(plan)
            .seed(7)
            .run(&violated_bell_assertion())
            .unwrap();
        assert_eq!(violated.plan.stop, StopReason::Decided);
        assert_eq!(violated.plan.shots_used, 64);
        assert_eq!(
            violated.verdicts[0].verdict,
            crate::statistical::AssertionVerdict::Violated
        );
    }

    #[test]
    fn sequential_plan_exhausts_budget_near_the_threshold() {
        // A state firing at exactly the 10% verdict threshold can never
        // decide; the plan must stop at max_shots with Budget.
        let theta = 2.0 * (0.1f64.sqrt()).asin();
        let mut prep = QuantumCircuit::new(2, 0);
        prep.ry(theta, 0).unwrap();
        let mut ac = AssertingCircuit::new(prep);
        ac.assert_entangled([0, 1], Parity::Even).unwrap();
        ac.measure_data();
        let outcome = AssertionSession::new(StatevectorBackend::new())
            .private_cache(4)
            .shot_plan(ShotPlan::Sequential {
                alpha: 0.05,
                min_shots: 64,
                max_shots: 512,
                tranche: 64,
            })
            .seed(3)
            .run(&ac)
            .unwrap();
        assert_eq!(outcome.plan.stop, StopReason::Budget);
        assert_eq!(outcome.plan.shots_used, 512);
        assert_eq!(outcome.plan.tranches, 8);
        assert!(!outcome.decided());
        assert_eq!(
            outcome.verdicts[0].verdict,
            crate::statistical::AssertionVerdict::Undecided
        );
    }

    #[test]
    fn sequential_verdicts_match_fixed_plan_verdicts() {
        // Early termination must never change *what* is decided, only
        // how many shots it takes: a clear-cut circuit gets the same
        // verdict from a sequential plan and a full fixed budget.
        for (ac, expected) in [
            (
                bell_assertion(),
                crate::statistical::AssertionVerdict::Holds,
            ),
            (
                violated_bell_assertion(),
                crate::statistical::AssertionVerdict::Violated,
            ),
        ] {
            let sequential = AssertionSession::new(StatevectorBackend::new())
                .private_cache(4)
                .filter_policy(FilterPolicy::AllowEmpty)
                .shot_plan(ShotPlan::Sequential {
                    alpha: 0.05,
                    min_shots: 64,
                    max_shots: 2048,
                    tranche: 64,
                })
                .seed(11)
                .run(&ac)
                .unwrap();
            let fixed = AssertionSession::new(StatevectorBackend::new())
                .private_cache(4)
                .filter_policy(FilterPolicy::AllowEmpty)
                .shots(2048)
                .seed(11)
                .run(&ac)
                .unwrap();
            assert_eq!(sequential.verdicts[0].verdict, expected);
            assert_eq!(fixed.verdicts[0].verdict, expected);
            assert!(sequential.plan.shots_used < fixed.plan.shots_used);
        }
    }

    #[test]
    fn sequential_sweeps_are_policy_and_worker_independent() {
        // The determinism contract extended to sequential plans: for a
        // fixed (seed, plan, threads), per-point counts, shots_used,
        // tranches, and stop reasons are bit-identical under every
        // sweep policy and worker count.
        let noise = qnoise::presets::uniform(3, 0.005, 0.02, 0.01).unwrap();
        let backend = TrajectoryBackend::new(noise);
        let family = || {
            (0..6)
                .map(|i| {
                    let mut prep = QuantumCircuit::new(2, 0);
                    prep.ry(0.2 + i as f64 * 0.5, 0).unwrap();
                    prep.cx(0, 1).unwrap();
                    let mut ac = AssertingCircuit::new(prep);
                    ac.assert_entangled([0, 1], Parity::Even).unwrap();
                    ac.measure_data();
                    ac
                })
                .collect::<Vec<_>>()
        };
        let plan = ShotPlan::Sequential {
            alpha: 0.05,
            min_shots: 64,
            max_shots: 1024,
            tranche: 64,
        };
        let reference = AssertionSession::new(&backend)
            .private_cache(16)
            .shot_plan(plan)
            .seed(13)
            .threads(2)
            .sweep_policy(SweepPolicy::Serial)
            .run_sweep(family())
            .unwrap();
        assert!(
            reference.telemetry.early_stops > 0,
            "clean family points must stop early"
        );
        for workers in [0, 3] {
            let pool = qsim::ShardPool::new(workers);
            let sweep = AssertionSession::new(&backend)
                .private_cache(16)
                .shot_plan(plan)
                .seed(13)
                .threads(2)
                .sweep_policy(SweepPolicy::Parallel)
                .pool(&pool)
                .run_sweep(family())
                .unwrap();
            assert_eq!(sweep.len(), reference.len());
            for (a, b) in sweep.iter().zip(reference.iter()) {
                assert_eq!(
                    a.outcome().raw.counts,
                    b.outcome().raw.counts,
                    "{workers} workers, point {}",
                    a.index()
                );
                assert_eq!(a.shots_used(), b.shots_used());
                assert_eq!(a.tranches(), b.tranches());
                assert_eq!(a.stop(), b.stop());
                assert_eq!(
                    a.verdicts()[0].verdict,
                    b.verdicts()[0].verdict,
                    "{workers} workers"
                );
            }
            assert_eq!(sweep.telemetry.shots, reference.telemetry.shots);
            assert_eq!(sweep.telemetry.tranches, reference.telemetry.tranches);
            assert_eq!(sweep.telemetry.early_stops, reference.telemetry.early_stops);
            assert_eq!(sweep.shots_used(), reference.shots_used());
        }
    }

    #[test]
    fn unseeded_sequential_sweep_points_draw_distinct_streams() {
        // Without a session seed a sequential sweep still derives
        // per-point bases (from 0): identical circuits at different
        // points must not replay the same tranche streams.
        let noise = qnoise::presets::uniform(3, 0.01, 0.05, 0.02).unwrap();
        let backend = TrajectoryBackend::new(noise);
        let ac = bell_assertion();
        let sweep = AssertionSession::new(&backend)
            .private_cache(4)
            .shot_plan(ShotPlan::Sequential {
                alpha: 0.05,
                min_shots: 256,
                max_shots: 256,
                tranche: 64,
            })
            .run_sweep(vec![ac.clone(), ac])
            .unwrap();
        assert_ne!(
            sweep.outcomes()[0].raw.counts,
            sweep.outcomes()[1].raw.counts,
            "unseeded sequential points must still draw distinct streams"
        );
    }
}
