//! The assertion runtime: execute an instrumented circuit and analyze
//! its assertion outcomes.

use crate::error::AssertError;
use crate::filter::{assertion_error_rate, filter_assertion_bits};
use crate::instrument::{AssertingCircuit, AssertionRecord};
use qcircuit::ClbitId;
use qsim::{Backend, Counts, ProgramCache, RunResult};

/// Per-assertion runtime statistics.
#[derive(Clone, Debug, PartialEq)]
pub struct AssertionStats {
    /// The record describing the instrumented assertion.
    pub record: AssertionRecord,
    /// Fraction of shots in which this assertion fired (any of its
    /// clbits read 1).
    pub error_rate: f64,
    /// Absolute number of shots in which it fired.
    pub fired: u64,
}

/// The analyzed outcome of running an asserting circuit.
#[derive(Clone, Debug)]
pub struct AssertionOutcome {
    /// The backend's raw result (all shots, full classical register).
    pub raw: RunResult,
    /// Shots surviving assertion filtering (full keys preserved).
    pub kept: Counts,
    /// Raw counts marginalized onto the data clbits (bit `j` of a key is
    /// `data_clbits[j]`).
    pub data_raw: Counts,
    /// Kept counts marginalized onto the data clbits.
    pub data_kept: Counts,
    /// Fraction of shots flagged by at least one assertion.
    pub assertion_error_rate: f64,
    /// Per-assertion firing statistics, in instrumentation order.
    pub per_assertion: Vec<AssertionStats>,
    /// The data clbit indices backing `data_raw`/`data_kept` keys.
    pub data_clbits: Vec<ClbitId>,
}

impl AssertionOutcome {
    /// Shots surviving the filter.
    pub fn shots_kept(&self) -> u64 {
        self.kept.total()
    }
}

/// Runs an instrumented circuit on `backend` and analyzes assertion
/// outcomes.
///
/// The instrumented circuit is **lowered at most once per process**: the
/// backend compiles it to a `qsim::CompiledProgram` (gate matrices
/// materialized, adjacent single-qubit gates fused, noise channels
/// pre-bound) through the global [`ProgramCache`], so sweep loops that
/// re-analyze the same circuit × noise model pay compilation once and
/// execute compiled programs thereafter. Caching cannot change results:
/// compilation is deterministic and the cache key covers everything
/// lowering reads (circuit structure, noise content, options).
/// Instrumentation ancillas and assertion clbits pass through
/// compilation untouched, so the analysis below reads the same classical
/// record as interpreted execution.
///
/// # Errors
///
/// Returns [`AssertError::Sim`] when execution fails and
/// [`AssertError::NoShotsKept`] when the filter removes everything.
///
/// # Example
///
/// ```
/// use qassert::{run_with_assertions, AssertingCircuit, Parity};
/// use qcircuit::library;
/// use qsim::StatevectorBackend;
///
/// # fn main() -> Result<(), qassert::AssertError> {
/// let mut ac = AssertingCircuit::new(library::bell());
/// ac.assert_entangled([0, 1], Parity::Even)?;
/// ac.measure_data();
/// let outcome = run_with_assertions(&StatevectorBackend::new(), &ac, 500)?;
/// // A correct Bell pair never trips the assertion on an ideal backend.
/// assert_eq!(outcome.assertion_error_rate, 0.0);
/// # Ok(())
/// # }
/// ```
pub fn run_with_assertions<B: Backend + ?Sized>(
    backend: &B,
    asserting: &AssertingCircuit,
    shots: u64,
) -> Result<AssertionOutcome, AssertError> {
    run_with_assertions_cached(backend, asserting, shots, ProgramCache::global())
}

/// [`run_with_assertions`] through an explicit program cache (callers
/// that want isolated hit/miss accounting, e.g. benchmarks and tests,
/// pass their own).
///
/// # Errors
///
/// Returns [`AssertError::Sim`] when execution fails and
/// [`AssertError::NoShotsKept`] when the filter removes everything.
pub fn run_with_assertions_cached<B: Backend + ?Sized>(
    backend: &B,
    asserting: &AssertingCircuit,
    shots: u64,
    cache: &ProgramCache,
) -> Result<AssertionOutcome, AssertError> {
    let program = backend.compile_cached(asserting.circuit(), cache)?;
    let raw = backend.run_compiled(&program, shots)?;
    analyze(raw, asserting)
}

/// Analyzes an existing backend result against an asserting circuit's
/// records (useful when the caller ran the circuit itself, e.g. after
/// transpilation).
///
/// # Errors
///
/// Returns [`AssertError::NoShotsKept`] when filtering removes every
/// shot.
pub fn analyze(
    raw: RunResult,
    asserting: &AssertingCircuit,
) -> Result<AssertionOutcome, AssertError> {
    let assertion_clbits = asserting.assertion_clbits();
    let data_clbits = asserting.data_clbits();

    let kept = filter_assertion_bits(&raw.counts, &assertion_clbits);
    if raw.counts.total() > 0 && kept.total() == 0 {
        return Err(AssertError::NoShotsKept);
    }
    let overall = assertion_error_rate(&raw.counts, &assertion_clbits);

    let per_assertion = asserting
        .records()
        .iter()
        .map(|record| {
            let rate = assertion_error_rate(&raw.counts, &record.clbits);
            let fired = (rate * raw.counts.total() as f64).round() as u64;
            AssertionStats {
                record: record.clone(),
                error_rate: rate,
                fired,
            }
        })
        .collect();

    let data_bit_indices: Vec<usize> = data_clbits.iter().map(|c| c.index()).collect();
    let data_raw = raw.counts.marginal(&data_bit_indices);
    let data_kept = kept.marginal(&data_bit_indices);

    Ok(AssertionOutcome {
        raw,
        kept,
        data_raw,
        data_kept,
        assertion_error_rate: overall,
        per_assertion,
        data_clbits,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assertion::{Parity, SuperpositionBasis};
    use qcircuit::{library, QuantumCircuit};
    use qnoise::presets;
    use qsim::{DensityMatrixBackend, StatevectorBackend};

    #[test]
    fn correct_bell_never_fires_on_ideal_backend() {
        let mut ac = AssertingCircuit::new(library::bell());
        ac.assert_entangled([0, 1], Parity::Even).unwrap();
        ac.measure_data();
        let outcome =
            run_with_assertions(&StatevectorBackend::new().with_seed(1), &ac, 1000).unwrap();
        assert_eq!(outcome.assertion_error_rate, 0.0);
        assert_eq!(outcome.shots_kept(), 1000);
        // Data marginal still shows the Bell correlation.
        assert_eq!(outcome.data_kept.get(0b01) + outcome.data_kept.get(0b10), 0);
    }

    #[test]
    fn cached_analysis_is_identical_and_compile_free_on_repeat() {
        let mut ac = AssertingCircuit::new(library::bell());
        ac.assert_entangled([0, 1], Parity::Even).unwrap();
        ac.measure_data();
        let backend = StatevectorBackend::new().with_seed(9);
        let direct = {
            let program = backend.compile(ac.circuit()).unwrap();
            analyze(backend.run_compiled(&program, 400).unwrap(), &ac).unwrap()
        };
        let cache = qsim::ProgramCache::new(8);
        let first = run_with_assertions_cached(&backend, &ac, 400, &cache).unwrap();
        let second = run_with_assertions_cached(&backend, &ac, 400, &cache).unwrap();
        assert_eq!(first.raw.counts, direct.raw.counts);
        assert_eq!(second.raw.counts, direct.raw.counts);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn classical_assertion_on_wrong_value_always_fires() {
        let mut base = QuantumCircuit::new(1, 0);
        base.x(0).unwrap(); // |1⟩, but we assert == |0⟩
        let mut ac = AssertingCircuit::new(base);
        ac.assert_classical([0], [false]).unwrap();
        ac.measure_data();
        let outcome = run_with_assertions(&StatevectorBackend::new().with_seed(2), &ac, 64);
        // Every shot fires the assertion → filter removes everything.
        assert!(matches!(outcome, Err(AssertError::NoShotsKept)));
    }

    #[test]
    fn classical_assertion_expected_one_passes() {
        let mut base = QuantumCircuit::new(1, 0);
        base.x(0).unwrap();
        let mut ac = AssertingCircuit::new(base);
        ac.assert_classical([0], [true]).unwrap();
        ac.measure_data();
        let outcome =
            run_with_assertions(&StatevectorBackend::new().with_seed(3), &ac, 200).unwrap();
        assert_eq!(outcome.assertion_error_rate, 0.0);
    }

    #[test]
    fn superposition_on_classical_input_fires_half_the_time() {
        // Fig. 7: classical input asserted as |+⟩ → 50% assertion error.
        let mut ac = AssertingCircuit::new(QuantumCircuit::new(1, 0));
        ac.assert_superposition(0, SuperpositionBasis::Plus)
            .unwrap();
        ac.measure_data();
        let outcome =
            run_with_assertions(&StatevectorBackend::new().with_seed(4), &ac, 4000).unwrap();
        assert!(
            (outcome.assertion_error_rate - 0.5).abs() < 0.03,
            "rate = {}",
            outcome.assertion_error_rate
        );
    }

    #[test]
    fn per_assertion_stats_are_separated() {
        // First assertion correct (never fires), second wrong (always
        // fires) — per-assertion stats must distinguish them.
        let mut base = QuantumCircuit::new(2, 0);
        base.x(1).unwrap();
        let mut ac = AssertingCircuit::new(base);
        ac.assert_classical([0], [false]).unwrap(); // holds
        ac.assert_classical([1], [false]).unwrap(); // violated
        ac.measure_data();
        let raw = StatevectorBackend::new()
            .with_seed(5)
            .run(ac.circuit(), 100)
            .unwrap();
        let outcome = analyze(raw, &ac);
        // Filtering removes everything (second always fires)...
        assert!(matches!(outcome, Err(AssertError::NoShotsKept)));
        // ...so check stats without filtering via a fresh run keeping raw.
        let raw = StatevectorBackend::new()
            .with_seed(5)
            .run(ac.circuit(), 100)
            .unwrap();
        let assertion_bits = ac.assertion_clbits();
        assert_eq!(assertion_bits.len(), 2);
        let first_rate = assertion_error_rate(&raw.counts, &ac.records()[0].clbits);
        let second_rate = assertion_error_rate(&raw.counts, &ac.records()[1].clbits);
        assert_eq!(first_rate, 0.0);
        assert_eq!(second_rate, 1.0);
    }

    #[test]
    fn noisy_backend_shows_filtering_benefit() {
        // Bell pair under depolarizing noise: filtered error < raw error.
        let mut ac = AssertingCircuit::new(library::bell());
        ac.assert_entangled([0, 1], Parity::Even).unwrap();
        ac.measure_data();
        let backend = DensityMatrixBackend::new(presets::uniform(3, 0.003, 0.03, 0.02).unwrap());
        let outcome = run_with_assertions(&backend, &ac, 100_000).unwrap();
        assert!(outcome.assertion_error_rate > 0.0);

        // Data bits: bit 0 = q0, bit 1 = q1; correct Bell outcomes agree.
        let correct = |key: u64| (key & 1) == ((key >> 1) & 1);
        let raw_err = crate::filter::error_rate(&outcome.data_raw, correct);
        let kept_err = crate::filter::error_rate(&outcome.data_kept, correct);
        assert!(
            kept_err < raw_err,
            "filtering did not help: raw {raw_err}, kept {kept_err}"
        );
    }

    #[test]
    fn data_marginals_use_data_bit_order() {
        let mut ac = AssertingCircuit::new(library::bell());
        ac.assert_entangled([0, 1], Parity::Even).unwrap();
        ac.measure_data();
        let outcome =
            run_with_assertions(&StatevectorBackend::new().with_seed(6), &ac, 500).unwrap();
        assert_eq!(outcome.data_raw.num_bits(), 2);
        assert_eq!(outcome.data_clbits.len(), 2);
        // All mass on 00/11 in data space.
        assert_eq!(outcome.data_raw.get(0b00) + outcome.data_raw.get(0b11), 500);
    }
}
