//! The assertion runtime: analyzed outcomes of instrumented circuits,
//! plus the legacy free-function entry points that predate
//! [`AssertionSession`](crate::session::AssertionSession).
//!
//! New code executes through a session — it owns the backend, program
//! cache, shard policy, shot plan, and filter/mitigation settings in one
//! place. The long-deprecated free functions (`run_with_assertions` &
//! co.) are gated behind the **`legacy-api`** cargo feature (off by
//! default): enable it only while migrating pre-session callers.

use crate::error::AssertError;
use crate::filter::{assertion_fired_shots, filter_assertion_bits};
use crate::instrument::{AssertingCircuit, AssertionRecord};
use crate::mitigation::ReadoutMitigator;
use crate::plan::PlanTrace;
use crate::statistical::{SequentialTest, SequentialVerdict};
use qcircuit::ClbitId;
use qsim::{Counts, RunResult};

/// What [`analyze`]-family calls do when assertion filtering removes
/// every shot.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FilterPolicy {
    /// Error with [`AssertError::NoShotsKept`] — the paper's NISQ
    /// filtering workflow has nothing left to report (default).
    #[default]
    RequireKept,
    /// Return the outcome with empty `kept` histograms — debugging
    /// workflows asserting *known-bad* programs (detection-probability
    /// studies) read the error rate, not the filtered data.
    AllowEmpty,
}

/// Per-assertion runtime statistics.
#[derive(Clone, Debug, PartialEq)]
pub struct AssertionStats {
    /// The record describing the instrumented assertion.
    pub record: AssertionRecord,
    /// Fraction of shots in which this assertion fired (any of its
    /// clbits read 1).
    pub error_rate: f64,
    /// Absolute number of shots in which it fired (counted exactly from
    /// the histogram, not reconstructed from `error_rate`).
    pub fired: u64,
}

/// Readout-mitigated outcome distributions, attached when the session
/// carries a [`ReadoutMitigator`].
#[derive(Clone, Debug)]
pub struct MitigatedOutcome {
    /// Quasi-probabilities over the full classical register after
    /// inverting the per-clbit assignment matrices (clipped to the
    /// physical simplex).
    pub probs: Vec<f64>,
    /// The mitigated distribution additionally filtered on the
    /// assertion clbits and renormalized; all zeros when filtering
    /// removed every outcome under [`FilterPolicy::AllowEmpty`].
    pub kept: Vec<f64>,
}

/// The analyzed outcome of running an asserting circuit.
#[derive(Clone, Debug)]
pub struct AssertionOutcome {
    /// The backend's raw result (all shots, full classical register).
    pub raw: RunResult,
    /// Shots surviving assertion filtering (full keys preserved).
    pub kept: Counts,
    /// Raw counts marginalized onto the data clbits (bit `j` of a key is
    /// `data_clbits[j]`).
    pub data_raw: Counts,
    /// Kept counts marginalized onto the data clbits.
    pub data_kept: Counts,
    /// Fraction of shots flagged by at least one assertion.
    pub assertion_error_rate: f64,
    /// Per-assertion firing statistics, in instrumentation order.
    pub per_assertion: Vec<AssertionStats>,
    /// The data clbit indices backing `data_raw`/`data_kept` keys.
    pub data_clbits: Vec<ClbitId>,
    /// Readout-mitigated distributions (sessions with a mitigator only).
    pub mitigated: Option<MitigatedOutcome>,
    /// Per-assertion anytime-valid verdicts (instrumentation order),
    /// evaluated at the final counts under the session's
    /// [`SequentialTest`]. Sequential plans stop on these; fixed plans
    /// still report them, so fixed and sequential runs of the same
    /// program are comparable verdict-for-verdict.
    pub verdicts: Vec<SequentialVerdict>,
    /// How the shot plan actually spent its budget on this run.
    pub plan: PlanTrace,
}

impl AssertionOutcome {
    /// Shots surviving the filter.
    pub fn shots_kept(&self) -> u64 {
        self.kept.total()
    }

    /// Whether every assertion's sequential verdict is decided.
    pub fn decided(&self) -> bool {
        self.verdicts.iter().all(SequentialVerdict::decided)
    }
}

/// Runs an instrumented circuit on `backend` and analyzes assertion
/// outcomes.
///
/// Equivalent to
/// `AssertionSession::new(backend).shots(shots).run(asserting)`.
///
/// Only available with the `legacy-api` cargo feature.
///
/// # Errors
///
/// Returns [`AssertError::Sim`] when execution fails and
/// [`AssertError::NoShotsKept`] when the filter removes everything.
#[cfg(feature = "legacy-api")]
#[deprecated(note = "use qassert::AssertionSession::new(backend).shots(shots).run(..)")]
pub fn run_with_assertions<B: qsim::Backend + ?Sized>(
    backend: &B,
    asserting: &AssertingCircuit,
    shots: u64,
) -> Result<AssertionOutcome, AssertError> {
    // One-shot session: a single run can never reuse a prefix, so skip
    // the registration work.
    crate::session::AssertionSession::new(backend)
        .shots(shots)
        .prefix_reuse(false)
        .run(asserting)
}

/// [`run_with_assertions`] through an explicit program cache.
///
/// Equivalent to
/// `AssertionSession::new(backend).shots(shots).cache(cache).run(asserting)`.
///
/// Only available with the `legacy-api` cargo feature.
///
/// # Errors
///
/// Returns [`AssertError::Sim`] when execution fails and
/// [`AssertError::NoShotsKept`] when the filter removes everything.
#[cfg(feature = "legacy-api")]
#[deprecated(note = "use qassert::AssertionSession with .cache(..)")]
pub fn run_with_assertions_cached<B: qsim::Backend + ?Sized>(
    backend: &B,
    asserting: &AssertingCircuit,
    shots: u64,
    cache: &qsim::ProgramCache,
) -> Result<AssertionOutcome, AssertError> {
    crate::session::AssertionSession::new(backend)
        .shots(shots)
        .cache(cache)
        .prefix_reuse(false)
        .run(asserting)
}

/// Analyzes an existing backend result against an asserting circuit's
/// records under the default (strict) filter policy.
///
/// Equivalent to `session.analyze(raw, asserting)` on a session with
/// [`FilterPolicy::RequireKept`].
///
/// Only available with the `legacy-api` cargo feature.
///
/// # Errors
///
/// Returns [`AssertError::NoShotsKept`] when filtering removes every
/// shot.
#[cfg(feature = "legacy-api")]
#[deprecated(note = "use qassert::AssertionSession::analyze, which applies the session's policy")]
pub fn analyze(
    raw: RunResult,
    asserting: &AssertingCircuit,
) -> Result<AssertionOutcome, AssertError> {
    let trace = PlanTrace::fixed(raw.shots_requested);
    analyze_with_policy(
        raw,
        asserting,
        FilterPolicy::RequireKept,
        None,
        &SequentialTest::default(),
        trace,
    )
}

/// The analysis shared by sessions and the legacy free functions.
/// `test` produces the per-assertion verdicts from the final counts;
/// `plan` records how the shot plan spent its budget producing `raw`.
pub(crate) fn analyze_with_policy(
    raw: RunResult,
    asserting: &AssertingCircuit,
    policy: FilterPolicy,
    mitigator: Option<&ReadoutMitigator>,
    test: &SequentialTest,
    plan: PlanTrace,
) -> Result<AssertionOutcome, AssertError> {
    let assertion_clbits = asserting.assertion_clbits();
    let data_clbits = asserting.data_clbits();

    let kept = filter_assertion_bits(&raw.counts, &assertion_clbits);
    if policy == FilterPolicy::RequireKept && raw.counts.total() > 0 && kept.total() == 0 {
        return Err(AssertError::NoShotsKept);
    }
    let total = raw.counts.total();
    let overall_fired = assertion_fired_shots(&raw.counts, &assertion_clbits);
    let overall = if total == 0 {
        0.0
    } else {
        overall_fired as f64 / total as f64
    };

    let per_assertion: Vec<AssertionStats> = asserting
        .records()
        .iter()
        .map(|record| {
            let fired = assertion_fired_shots(&raw.counts, &record.clbits);
            AssertionStats {
                record: record.clone(),
                error_rate: if total == 0 {
                    0.0
                } else {
                    fired as f64 / total as f64
                },
                fired,
            }
        })
        .collect();

    // Verdicts are a pure function of each assertion's accumulated
    // (recorded, fired) totals, so evaluating here reproduces exactly
    // the state a sequential tranche loop stopped on.
    let verdicts = per_assertion
        .iter()
        .map(|stats| test.evaluate(total, stats.fired))
        .collect();

    let mitigated = match mitigator {
        Some(m) => {
            let probs = m.mitigate_clipped(&raw.counts)?;
            let kept = match crate::mitigation::filter_mitigated(&probs, &assertion_clbits) {
                Ok(kept) => kept,
                Err(AssertError::NoShotsKept) if policy == FilterPolicy::AllowEmpty => {
                    vec![0.0; probs.len()]
                }
                Err(e) => return Err(e),
            };
            Some(MitigatedOutcome { probs, kept })
        }
        None => None,
    };

    let data_bit_indices: Vec<usize> = data_clbits.iter().map(|c| c.index()).collect();
    let data_raw = raw.counts.marginal(&data_bit_indices);
    let data_kept = kept.marginal(&data_bit_indices);

    Ok(AssertionOutcome {
        raw,
        kept,
        data_raw,
        data_kept,
        assertion_error_rate: overall,
        per_assertion,
        data_clbits,
        mitigated,
        verdicts,
        plan,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assertion::{Parity, SuperpositionBasis};
    use crate::session::AssertionSession;
    use qcircuit::{library, QuantumCircuit};
    use qnoise::presets;
    use qsim::{Backend, DensityMatrixBackend, StatevectorBackend};

    fn session<B: Backend>(backend: B, shots: u64) -> AssertionSession<'static, B> {
        AssertionSession::new(backend).shots(shots)
    }

    #[test]
    fn correct_bell_never_fires_on_ideal_backend() {
        let mut ac = AssertingCircuit::new(library::bell());
        ac.assert_entangled([0, 1], Parity::Even).unwrap();
        ac.measure_data();
        let outcome = session(StatevectorBackend::new().with_seed(1), 1000)
            .run(&ac)
            .unwrap();
        assert_eq!(outcome.assertion_error_rate, 0.0);
        assert_eq!(outcome.shots_kept(), 1000);
        // Data marginal still shows the Bell correlation.
        assert_eq!(outcome.data_kept.get(0b01) + outcome.data_kept.get(0b10), 0);
        // A clean 1000-shot stream is decided Holds even on a fixed
        // plan, and the trace records the single fixed call.
        assert_eq!(outcome.verdicts.len(), 1);
        assert_eq!(
            outcome.verdicts[0].verdict,
            crate::statistical::AssertionVerdict::Holds
        );
        assert!(outcome.decided());
        assert_eq!(outcome.plan.shots_used, 1000);
        assert_eq!(outcome.plan.tranches, 1);
        assert_eq!(outcome.plan.stop, crate::plan::StopReason::Fixed);
    }

    #[cfg(feature = "legacy-api")]
    #[test]
    #[allow(deprecated)]
    fn deprecated_wrappers_delegate_to_the_session() {
        let mut ac = AssertingCircuit::new(library::bell());
        ac.assert_entangled([0, 1], Parity::Even).unwrap();
        ac.measure_data();
        let backend = StatevectorBackend::new().with_seed(9);
        let via_session = session(&backend, 400).run(&ac).unwrap();
        let via_free = run_with_assertions(&backend, &ac, 400).unwrap();
        assert_eq!(via_free.raw.counts, via_session.raw.counts);
        assert_eq!(via_free.kept, via_session.kept);

        let cache = qsim::ProgramCache::new(8);
        let via_cached = run_with_assertions_cached(&backend, &ac, 400, &cache).unwrap();
        assert_eq!(via_cached.raw.counts, via_session.raw.counts);
        assert!(cache.stats().misses >= 1);

        let raw = backend.run(ac.circuit(), 400).unwrap();
        let via_analyze = analyze(raw, &ac).unwrap();
        assert_eq!(via_analyze.raw.counts, via_session.raw.counts);
    }

    #[test]
    fn cached_analysis_is_identical_and_compile_free_on_repeat() {
        let mut ac = AssertingCircuit::new(library::bell());
        ac.assert_entangled([0, 1], Parity::Even).unwrap();
        ac.measure_data();
        let backend = StatevectorBackend::new().with_seed(9);
        let direct = {
            let program = backend.compile(ac.circuit()).unwrap();
            analyze_with_policy(
                backend.run_compiled(&program, 400).unwrap(),
                &ac,
                FilterPolicy::RequireKept,
                None,
                &SequentialTest::default(),
                PlanTrace::fixed(400),
            )
            .unwrap()
        };
        let cache = qsim::ProgramCache::new(8);
        let s = session(&backend, 400).cache(&cache);
        let first = s.run(&ac).unwrap();
        let second = s.run(&ac).unwrap();
        assert_eq!(first.raw.counts, direct.raw.counts);
        assert_eq!(second.raw.counts, direct.raw.counts);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn classical_assertion_on_wrong_value_always_fires() {
        let mut base = QuantumCircuit::new(1, 0);
        base.x(0).unwrap(); // |1⟩, but we assert == |0⟩
        let mut ac = AssertingCircuit::new(base);
        ac.assert_classical([0], [false]).unwrap();
        ac.measure_data();
        let outcome = session(StatevectorBackend::new().with_seed(2), 64).run(&ac);
        // Every shot fires the assertion → filter removes everything.
        assert!(matches!(outcome, Err(AssertError::NoShotsKept)));
    }

    #[test]
    fn allow_empty_policy_reports_instead_of_erroring() {
        let mut base = QuantumCircuit::new(1, 0);
        base.x(0).unwrap();
        let mut ac = AssertingCircuit::new(base);
        ac.assert_classical([0], [false]).unwrap();
        ac.measure_data();
        let outcome = session(StatevectorBackend::new().with_seed(2), 64)
            .filter_policy(FilterPolicy::AllowEmpty)
            .run(&ac)
            .unwrap();
        assert_eq!(outcome.assertion_error_rate, 1.0);
        assert_eq!(outcome.shots_kept(), 0);
        assert_eq!(outcome.per_assertion[0].fired, 64);
        assert_eq!(
            outcome.verdicts[0].verdict,
            crate::statistical::AssertionVerdict::Violated
        );
    }

    #[test]
    fn classical_assertion_expected_one_passes() {
        let mut base = QuantumCircuit::new(1, 0);
        base.x(0).unwrap();
        let mut ac = AssertingCircuit::new(base);
        ac.assert_classical([0], [true]).unwrap();
        ac.measure_data();
        let outcome = session(StatevectorBackend::new().with_seed(3), 200)
            .run(&ac)
            .unwrap();
        assert_eq!(outcome.assertion_error_rate, 0.0);
    }

    #[test]
    fn superposition_on_classical_input_fires_half_the_time() {
        // Fig. 7: classical input asserted as |+⟩ → 50% assertion error.
        let mut ac = AssertingCircuit::new(QuantumCircuit::new(1, 0));
        ac.assert_superposition(0, SuperpositionBasis::Plus)
            .unwrap();
        ac.measure_data();
        let outcome = session(StatevectorBackend::new().with_seed(4), 4000)
            .run(&ac)
            .unwrap();
        assert!(
            (outcome.assertion_error_rate - 0.5).abs() < 0.03,
            "rate = {}",
            outcome.assertion_error_rate
        );
    }

    #[test]
    fn per_assertion_stats_are_separated() {
        // First assertion correct (never fires), second wrong (always
        // fires) — per-assertion stats must distinguish them, and the
        // lenient policy lets the outcome report it directly.
        let mut base = QuantumCircuit::new(2, 0);
        base.x(1).unwrap();
        let mut ac = AssertingCircuit::new(base);
        ac.assert_classical([0], [false]).unwrap(); // holds
        ac.assert_classical([1], [false]).unwrap(); // violated
        ac.measure_data();
        let strict = session(StatevectorBackend::new().with_seed(5), 100).run(&ac);
        assert!(matches!(strict, Err(AssertError::NoShotsKept)));

        let outcome = session(StatevectorBackend::new().with_seed(5), 100)
            .filter_policy(FilterPolicy::AllowEmpty)
            .run(&ac)
            .unwrap();
        assert_eq!(outcome.per_assertion.len(), 2);
        assert_eq!(outcome.per_assertion[0].fired, 0);
        assert_eq!(outcome.per_assertion[0].error_rate, 0.0);
        assert_eq!(outcome.per_assertion[1].fired, 100);
        assert_eq!(outcome.per_assertion[1].error_rate, 1.0);
    }

    #[test]
    fn fired_counts_are_exact_integers_from_the_histogram() {
        use qcircuit::ClbitId;
        // Synthetic raw result with a total beyond f64's exact-integer
        // range: `fired` must come out exact, not `rate * total`.
        let flagged = (1u64 << 53) + 1;
        let mut ac = AssertingCircuit::new(QuantumCircuit::new(1, 0));
        ac.assert_classical([0], [false]).unwrap();
        ac.measure_data();
        assert_eq!(ac.assertion_clbits(), vec![ClbitId::new(0)]);
        let raw = RunResult {
            counts: Counts::from_pairs(2, [(0b00, 5), (0b01, flagged)]),
            shots_requested: flagged + 5,
            shots_discarded: 0,
        };
        let outcome = analyze_with_policy(
            raw,
            &ac,
            FilterPolicy::RequireKept,
            None,
            &SequentialTest::default(),
            PlanTrace::fixed(flagged + 5),
        )
        .unwrap();
        assert_eq!(outcome.per_assertion[0].fired, flagged);
    }

    #[test]
    fn noisy_backend_shows_filtering_benefit() {
        // Bell pair under depolarizing noise: filtered error < raw error.
        let mut ac = AssertingCircuit::new(library::bell());
        ac.assert_entangled([0, 1], Parity::Even).unwrap();
        ac.measure_data();
        let backend = DensityMatrixBackend::new(presets::uniform(3, 0.003, 0.03, 0.02).unwrap());
        let outcome = session(backend, 100_000).run(&ac).unwrap();
        assert!(outcome.assertion_error_rate > 0.0);

        // Data bits: bit 0 = q0, bit 1 = q1; correct Bell outcomes agree.
        let correct = |key: u64| (key & 1) == ((key >> 1) & 1);
        let raw_err = crate::filter::error_rate(&outcome.data_raw, correct);
        let kept_err = crate::filter::error_rate(&outcome.data_kept, correct);
        assert!(
            kept_err < raw_err,
            "filtering did not help: raw {raw_err}, kept {kept_err}"
        );
    }

    #[test]
    fn data_marginals_use_data_bit_order() {
        let mut ac = AssertingCircuit::new(library::bell());
        ac.assert_entangled([0, 1], Parity::Even).unwrap();
        ac.measure_data();
        let outcome = session(StatevectorBackend::new().with_seed(6), 500)
            .run(&ac)
            .unwrap();
        assert_eq!(outcome.data_raw.num_bits(), 2);
        assert_eq!(outcome.data_clbits.len(), 2);
        // All mass on 00/11 in data space.
        assert_eq!(outcome.data_raw.get(0b00) + outcome.data_raw.get(0b11), 500);
    }
}
