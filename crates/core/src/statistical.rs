//! The statistical-assertion baseline (Huang & Martonosi, ISCA'19).
//!
//! The paper positions its dynamic assertions against the prior
//! statistical approach: stop the program at the assertion point, measure
//! the qubits of interest over many repeated truncated runs, and apply a
//! χ² hypothesis test against the asserted distribution. The fundamental
//! limitation (the paper's motivation) is reproduced faithfully here:
//! a statistical assertion **consumes the measured state**, so the
//! program cannot continue past the check — see
//! [`StatisticalVerdict::program_continues`], which is always `false`.

use crate::error::AssertError;
use qcircuit::{QuantumCircuit, QubitId};
use qmath::stats::{chi2_goodness_of_fit, Chi2Outcome};
use qsim::Backend;

/// The distribution class a statistical assertion tests against.
#[derive(Clone, Debug, PartialEq)]
pub enum StatisticalKind {
    /// All mass on one classical value per qubit.
    Classical {
        /// Expected bit per asserted qubit.
        expected: Vec<bool>,
    },
    /// The uniform distribution over all `2^k` outcomes of the asserted
    /// qubits.
    UniformSuperposition,
    /// GHZ-type correlation: equal mass on all-zeros and all-ones,
    /// nothing elsewhere.
    EntangledGhz,
}

/// A stop-and-measure statistical assertion.
#[derive(Clone, Debug, PartialEq)]
pub struct StatisticalAssertion {
    qubits: Vec<QubitId>,
    kind: StatisticalKind,
    alpha: f64,
}

/// The verdict of a statistical assertion.
#[derive(Clone, Debug, PartialEq)]
pub struct StatisticalVerdict {
    /// The χ² test outcome (statistic, dof, p-value).
    pub chi2: Chi2Outcome,
    /// `true` when the observed histogram is consistent with the
    /// asserted distribution at the configured significance level.
    pub passed: bool,
    /// Shots consumed by the check (all measured destructively).
    pub shots_used: u64,
    /// Whether the program can continue after the check. Statistical
    /// assertions measure the data qubits themselves, so this is always
    /// `false` — the limitation dynamic assertions remove.
    pub program_continues: bool,
}

impl StatisticalAssertion {
    /// Creates a statistical assertion over `qubits` at significance
    /// level `alpha` (e.g. 0.05).
    ///
    /// # Errors
    ///
    /// Returns [`AssertError::TooFewQubits`] for an empty qubit list or
    /// [`AssertError::ExpectedLengthMismatch`] for a classical kind with
    /// the wrong number of expected bits.
    pub fn new<Q: Into<QubitId>>(
        qubits: impl IntoIterator<Item = Q>,
        kind: StatisticalKind,
        alpha: f64,
    ) -> Result<Self, AssertError> {
        let qubits: Vec<QubitId> = qubits.into_iter().map(Into::into).collect();
        if qubits.is_empty() {
            return Err(AssertError::TooFewQubits { got: 0, needed: 1 });
        }
        if let StatisticalKind::Classical { expected } = &kind {
            if expected.len() != qubits.len() {
                return Err(AssertError::ExpectedLengthMismatch {
                    qubits: qubits.len(),
                    expected: expected.len(),
                });
            }
        }
        Ok(StatisticalAssertion {
            qubits,
            kind,
            alpha,
        })
    }

    /// The asserted qubits.
    pub fn qubits(&self) -> &[QubitId] {
        &self.qubits
    }

    /// The expected probability of each of the `2^k` outcomes, indexed
    /// with asserted-qubit `j` at bit `j`.
    pub fn expected_distribution(&self) -> Vec<f64> {
        let k = self.qubits.len();
        let dim = 1usize << k;
        match &self.kind {
            StatisticalKind::Classical { expected } => {
                let mut target = 0usize;
                for (j, e) in expected.iter().enumerate() {
                    if *e {
                        target |= 1 << j;
                    }
                }
                let mut p = vec![0.0; dim];
                p[target] = 1.0;
                p
            }
            StatisticalKind::UniformSuperposition => vec![1.0 / dim as f64; dim],
            StatisticalKind::EntangledGhz => {
                let mut p = vec![0.0; dim];
                p[0] = 0.5;
                p[dim - 1] = 0.5;
                p
            }
        }
    }

    /// Runs the statistical check: truncates the program at the
    /// assertion point (i.e. takes `prefix` as-is), appends destructive
    /// measurements of the asserted qubits, executes `shots` repetitions,
    /// and χ²-tests the histogram.
    ///
    /// # Errors
    ///
    /// Returns [`AssertError::Sim`] on execution failure or a wrapped
    /// statistics error for degenerate histograms.
    pub fn check<B: Backend + ?Sized>(
        &self,
        backend: &B,
        prefix: &QuantumCircuit,
        shots: u64,
    ) -> Result<StatisticalVerdict, AssertError> {
        // Destructive measurement of the asserted qubits only.
        let mut measured = prefix.clone();
        let mut clbits = Vec::with_capacity(self.qubits.len());
        for q in &self.qubits {
            let c = measured.add_clbit();
            measured.measure(*q, c)?;
            clbits.push(c);
        }
        let result = backend.run(&measured, shots)?;

        // Histogram over the asserted qubits in assertion order.
        let bit_indices: Vec<usize> = clbits.iter().map(|c| c.index()).collect();
        let marginal = result.counts.marginal(&bit_indices);
        let dim = 1usize << self.qubits.len();
        let observed: Vec<u64> = (0..dim as u64).map(|k| marginal.get(k)).collect();

        let expected = self.expected_distribution();
        let chi2 = match chi2_goodness_of_fit(&observed, &expected) {
            Ok(outcome) => outcome,
            // A point-mass expectation with every observation on the
            // expected value leaves fewer than two testable categories —
            // that is a perfect match, not a test failure.
            Err(qmath::stats::StatsError::DegenerateCategories) => Chi2Outcome {
                statistic: 0.0,
                dof: 1,
                p_value: 1.0,
            },
            Err(_) => return Err(AssertError::Sim(qsim::SimError::AllShotsDiscarded)),
        };
        Ok(StatisticalVerdict {
            passed: chi2.p_value >= self.alpha,
            chi2,
            shots_used: shots,
            program_continues: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcircuit::library;
    use qsim::StatevectorBackend;

    fn backend() -> StatevectorBackend {
        StatevectorBackend::new().with_seed(99)
    }

    #[test]
    fn constructor_validates() {
        assert!(StatisticalAssertion::new(
            [0, 1],
            StatisticalKind::Classical {
                expected: vec![true]
            },
            0.05
        )
        .is_err());
        assert!(
            StatisticalAssertion::new(Vec::<u32>::new(), StatisticalKind::EntangledGhz, 0.05)
                .is_err()
        );
    }

    #[test]
    fn expected_distributions_are_normalized() {
        let cases = [
            StatisticalAssertion::new(
                [0, 1],
                StatisticalKind::Classical {
                    expected: vec![true, false],
                },
                0.05,
            )
            .unwrap(),
            StatisticalAssertion::new([0, 1, 2], StatisticalKind::UniformSuperposition, 0.05)
                .unwrap(),
            StatisticalAssertion::new([0, 1], StatisticalKind::EntangledGhz, 0.05).unwrap(),
        ];
        for a in cases {
            let p = a.expected_distribution();
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn classical_expected_distribution_places_mass_correctly() {
        let a = StatisticalAssertion::new(
            [0, 1],
            StatisticalKind::Classical {
                expected: vec![true, false],
            },
            0.05,
        )
        .unwrap();
        let p = a.expected_distribution();
        // qubit 0 expected 1, qubit 1 expected 0 → index 0b01.
        assert_eq!(p[0b01], 1.0);
    }

    #[test]
    fn correct_classical_state_passes() {
        let mut prefix = QuantumCircuit::new(2, 0);
        prefix.x(1).unwrap();
        let a = StatisticalAssertion::new(
            [0, 1],
            StatisticalKind::Classical {
                expected: vec![false, true],
            },
            0.05,
        )
        .unwrap();
        let verdict = a.check(&backend(), &prefix, 500).unwrap();
        assert!(verdict.passed, "p = {}", verdict.chi2.p_value);
        assert!(!verdict.program_continues);
        assert_eq!(verdict.shots_used, 500);
    }

    #[test]
    fn wrong_classical_state_fails() {
        let mut prefix = QuantumCircuit::new(1, 0);
        prefix.x(0).unwrap();
        let a = StatisticalAssertion::new(
            [0],
            StatisticalKind::Classical {
                expected: vec![false],
            },
            0.05,
        )
        .unwrap();
        let verdict = a.check(&backend(), &prefix, 500).unwrap();
        assert!(!verdict.passed);
        assert_eq!(verdict.chi2.p_value, 0.0);
    }

    #[test]
    fn uniform_superposition_passes_on_h_layer() {
        let prefix = library::uniform_superposition(3);
        let a = StatisticalAssertion::new([0, 1, 2], StatisticalKind::UniformSuperposition, 0.01)
            .unwrap();
        let verdict = a.check(&backend(), &prefix, 4000).unwrap();
        assert!(verdict.passed, "p = {}", verdict.chi2.p_value);
    }

    #[test]
    fn uniform_superposition_fails_on_biased_state() {
        let mut prefix = QuantumCircuit::new(2, 0);
        prefix.h(0).unwrap(); // qubit 1 stays |0⟩ → not uniform over 4
        let a =
            StatisticalAssertion::new([0, 1], StatisticalKind::UniformSuperposition, 0.05).unwrap();
        let verdict = a.check(&backend(), &prefix, 2000).unwrap();
        assert!(!verdict.passed);
    }

    #[test]
    fn ghz_correlation_passes_on_bell_and_fails_on_product() {
        let a = StatisticalAssertion::new([0, 1], StatisticalKind::EntangledGhz, 0.01).unwrap();
        let verdict = a.check(&backend(), &library::bell(), 3000).unwrap();
        assert!(verdict.passed, "p = {}", verdict.chi2.p_value);

        // |+⟩⊗|+⟩ has the same marginals but no correlation.
        let product = library::uniform_superposition(2);
        let verdict = a.check(&backend(), &product, 3000).unwrap();
        assert!(!verdict.passed);
    }

    #[test]
    fn statistical_assertions_cannot_continue_the_program() {
        // The baseline's structural limitation: the verdict reports that
        // execution stopped.
        let a = StatisticalAssertion::new([0, 1], StatisticalKind::EntangledGhz, 0.05).unwrap();
        let verdict = a.check(&backend(), &library::bell(), 100).unwrap();
        assert!(!verdict.program_continues);
    }
}
