//! The statistical-assertion baseline (Huang & Martonosi, ISCA'19),
//! plus the anytime-valid sequential tests behind
//! [`ShotPlan::Sequential`](crate::ShotPlan::Sequential).
//!
//! The paper positions its dynamic assertions against the prior
//! statistical approach: stop the program at the assertion point, measure
//! the qubits of interest over many repeated truncated runs, and apply a
//! χ² hypothesis test against the asserted distribution. The fundamental
//! limitation (the paper's motivation) is reproduced faithfully here:
//! a statistical assertion **consumes the measured state**, so the
//! program cannot continue past the check — see
//! [`StatisticalVerdict::program_continues`], which is always `false`.
//!
//! # Anytime-valid sequential verdicts
//!
//! A dynamic assertion's runtime observable is Bernoulli: each recorded
//! shot either fires the ancilla or not. [`SequentialTest`] turns that
//! stream into an anytime-valid verdict via two one-sided mixture
//! e-processes (the discrete-mixture mSPRT): one accumulating evidence
//! that the firing rate exceeds the threshold (the assertion is
//! *violated*), one that it is below (the assertion *holds*). Each
//! e-process is a nonnegative supermartingale with initial value 1 under
//! its composite null, so by Ville's inequality the probability that it
//! *ever* crosses `1/alpha` under the null is at most `alpha` — which is
//! exactly the license a sequential shot plan needs to peek after every
//! tranche and stop at the first decided verdict without inflating the
//! error rate (optional stopping is safe at any data-dependent time).

use crate::error::AssertError;
use qcircuit::{QuantumCircuit, QubitId};
use qmath::stats::{chi2_goodness_of_fit, Chi2Outcome};
use qsim::Backend;

/// The distribution class a statistical assertion tests against.
#[derive(Clone, Debug, PartialEq)]
pub enum StatisticalKind {
    /// All mass on one classical value per qubit.
    Classical {
        /// Expected bit per asserted qubit.
        expected: Vec<bool>,
    },
    /// The uniform distribution over all `2^k` outcomes of the asserted
    /// qubits.
    UniformSuperposition,
    /// GHZ-type correlation: equal mass on all-zeros and all-ones,
    /// nothing elsewhere.
    EntangledGhz,
}

/// A stop-and-measure statistical assertion.
#[derive(Clone, Debug, PartialEq)]
pub struct StatisticalAssertion {
    qubits: Vec<QubitId>,
    kind: StatisticalKind,
    alpha: f64,
}

/// The verdict of a statistical assertion.
#[derive(Clone, Debug, PartialEq)]
pub struct StatisticalVerdict {
    /// The χ² test outcome (statistic, dof, p-value).
    pub chi2: Chi2Outcome,
    /// `true` when the observed histogram is consistent with the
    /// asserted distribution at the configured significance level.
    pub passed: bool,
    /// Shots consumed by the check (all measured destructively).
    pub shots_used: u64,
    /// Whether the program can continue after the check. Statistical
    /// assertions measure the data qubits themselves, so this is always
    /// `false` — the limitation dynamic assertions remove.
    pub program_continues: bool,
}

impl StatisticalAssertion {
    /// Creates a statistical assertion over `qubits` at significance
    /// level `alpha` (e.g. 0.05).
    ///
    /// # Errors
    ///
    /// Returns [`AssertError::TooFewQubits`] for an empty qubit list or
    /// [`AssertError::ExpectedLengthMismatch`] for a classical kind with
    /// the wrong number of expected bits.
    pub fn new<Q: Into<QubitId>>(
        qubits: impl IntoIterator<Item = Q>,
        kind: StatisticalKind,
        alpha: f64,
    ) -> Result<Self, AssertError> {
        let qubits: Vec<QubitId> = qubits.into_iter().map(Into::into).collect();
        if qubits.is_empty() {
            return Err(AssertError::TooFewQubits { got: 0, needed: 1 });
        }
        if let StatisticalKind::Classical { expected } = &kind {
            if expected.len() != qubits.len() {
                return Err(AssertError::ExpectedLengthMismatch {
                    qubits: qubits.len(),
                    expected: expected.len(),
                });
            }
        }
        Ok(StatisticalAssertion {
            qubits,
            kind,
            alpha,
        })
    }

    /// The asserted qubits.
    pub fn qubits(&self) -> &[QubitId] {
        &self.qubits
    }

    /// The expected probability of each of the `2^k` outcomes, indexed
    /// with asserted-qubit `j` at bit `j`.
    pub fn expected_distribution(&self) -> Vec<f64> {
        let k = self.qubits.len();
        let dim = 1usize << k;
        match &self.kind {
            StatisticalKind::Classical { expected } => {
                let mut target = 0usize;
                for (j, e) in expected.iter().enumerate() {
                    if *e {
                        target |= 1 << j;
                    }
                }
                let mut p = vec![0.0; dim];
                p[target] = 1.0;
                p
            }
            StatisticalKind::UniformSuperposition => vec![1.0 / dim as f64; dim],
            StatisticalKind::EntangledGhz => {
                let mut p = vec![0.0; dim];
                p[0] = 0.5;
                p[dim - 1] = 0.5;
                p
            }
        }
    }

    /// Runs the statistical check: truncates the program at the
    /// assertion point (i.e. takes `prefix` as-is), appends destructive
    /// measurements of the asserted qubits, executes `shots` repetitions,
    /// and χ²-tests the histogram.
    ///
    /// # Errors
    ///
    /// Returns [`AssertError::Sim`] on execution failure or a wrapped
    /// statistics error for degenerate histograms.
    pub fn check<B: Backend + ?Sized>(
        &self,
        backend: &B,
        prefix: &QuantumCircuit,
        shots: u64,
    ) -> Result<StatisticalVerdict, AssertError> {
        // Destructive measurement of the asserted qubits only.
        let mut measured = prefix.clone();
        let mut clbits = Vec::with_capacity(self.qubits.len());
        for q in &self.qubits {
            let c = measured.add_clbit();
            measured.measure(*q, c)?;
            clbits.push(c);
        }
        let result = backend.run(&measured, shots)?;

        // Histogram over the asserted qubits in assertion order.
        let bit_indices: Vec<usize> = clbits.iter().map(|c| c.index()).collect();
        let marginal = result.counts.marginal(&bit_indices);
        let dim = 1usize << self.qubits.len();
        let observed: Vec<u64> = (0..dim as u64).map(|k| marginal.get(k)).collect();

        let expected = self.expected_distribution();
        let chi2 = match chi2_goodness_of_fit(&observed, &expected) {
            Ok(outcome) => outcome,
            // A point-mass expectation with every observation on the
            // expected value leaves fewer than two testable categories —
            // that is a perfect match, not a test failure.
            Err(qmath::stats::StatsError::DegenerateCategories) => Chi2Outcome {
                statistic: 0.0,
                dof: 1,
                p_value: 1.0,
            },
            Err(_) => return Err(AssertError::Sim(qsim::SimError::AllShotsDiscarded)),
        };
        Ok(StatisticalVerdict {
            passed: chi2.p_value >= self.alpha,
            chi2,
            shots_used: shots,
            program_continues: false,
        })
    }
}

/// Default significance level for analysis verdicts when the session's
/// plan does not carry one (i.e. under [`ShotPlan::Fixed`]).
///
/// [`ShotPlan::Fixed`]: crate::ShotPlan::Fixed
pub const DEFAULT_VERDICT_ALPHA: f64 = 0.05;

/// Default firing-rate threshold separating a holding assertion from a
/// violated one.
///
/// The paper's NISQ workloads fire correct assertions at the *noise*
/// level (a few percent on the era's calibrations) and violated ones at
/// a structural level (25–100%, e.g. 50% for a `|+⟩` assertion on a
/// classical qubit) — 10% sits between the two regimes.
pub const DEFAULT_VERDICT_THRESHOLD: f64 = 0.1;

/// Grid points in each one-sided alternative mixture.
///
/// More points track the true rate's best likelihood ratio more closely
/// (faster decisions) at `O(points)` cost per evaluation; 8 keeps the
/// worst-case drift penalty under ~15% of the optimal exponent.
const MIXTURE_POINTS: usize = 8;

/// The decision of one assertion's sequential test.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AssertionVerdict {
    /// The firing rate is below the threshold at the configured
    /// confidence: the asserted property holds.
    Holds,
    /// The firing rate exceeds the threshold at the configured
    /// confidence: the assertion is violated.
    Violated,
    /// Neither e-process has crossed `1/alpha` yet.
    Undecided,
}

/// One assertion's sequential verdict with the evidence behind it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SequentialVerdict {
    /// The decision at the observed counts.
    pub verdict: AssertionVerdict,
    /// Natural log of the e-value for "the firing rate exceeds the
    /// threshold" ([`AssertionVerdict::Violated`] at `ln(1/alpha)`).
    pub log_e_violated: f64,
    /// Natural log of the e-value for "the firing rate is below the
    /// threshold" ([`AssertionVerdict::Holds`] at `ln(1/alpha)`).
    pub log_e_holds: f64,
    /// Recorded shots the verdict is based on.
    pub shots: u64,
    /// How many of them fired this assertion.
    pub fired: u64,
}

impl SequentialVerdict {
    /// Whether the test reached a decision.
    pub fn decided(&self) -> bool {
        self.verdict != AssertionVerdict::Undecided
    }
}

/// An anytime-valid sequential test on one assertion's firing rate.
///
/// Two one-sided discrete-mixture e-processes over the Bernoulli firing
/// observations (see the module docs): `evaluate(n, k)` is a pure
/// function of the accumulated totals, so folding tranche after tranche
/// and evaluating at the final counts give the same verdict — the
/// property that makes sequential shot plans deterministic and lets the
/// final analysis recompute verdicts without threading test state.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SequentialTest {
    threshold: f64,
    alpha: f64,
}

impl Default for SequentialTest {
    fn default() -> Self {
        SequentialTest {
            threshold: DEFAULT_VERDICT_THRESHOLD,
            alpha: DEFAULT_VERDICT_ALPHA,
        }
    }
}

impl SequentialTest {
    /// Creates a test of the firing rate against `threshold` at
    /// significance `alpha`.
    ///
    /// # Panics
    ///
    /// Panics unless `threshold` and `alpha` are both in `(0, 1)`.
    pub fn new(threshold: f64, alpha: f64) -> Self {
        assert!(
            threshold > 0.0 && threshold < 1.0,
            "verdict threshold must be in (0, 1), got {threshold}"
        );
        assert!(
            alpha > 0.0 && alpha < 1.0,
            "verdict alpha must be in (0, 1), got {alpha}"
        );
        SequentialTest { threshold, alpha }
    }

    /// The firing-rate threshold under test.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The significance level.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The decision boundary both e-processes are compared against.
    pub fn log_decision_bound(&self) -> f64 {
        (1.0 / self.alpha).ln()
    }

    /// Evaluates both e-processes at accumulated totals (`shots`
    /// recorded, `fired` of them firing) and returns the verdict.
    ///
    /// When *both* e-values sit above the bound — possible only
    /// transiently on tiny samples with extreme parameters — the larger
    /// evidence wins.
    pub fn evaluate(&self, shots: u64, fired: u64) -> SequentialVerdict {
        debug_assert!(fired <= shots, "fired {fired} exceeds shots {shots}");
        let log_e_violated = self.log_e_violated(shots, fired);
        let log_e_holds = self.log_e_holds(shots, fired);
        let bound = self.log_decision_bound();
        let verdict = if log_e_violated >= bound && log_e_violated >= log_e_holds {
            AssertionVerdict::Violated
        } else if log_e_holds >= bound {
            AssertionVerdict::Holds
        } else {
            AssertionVerdict::Undecided
        };
        SequentialVerdict {
            verdict,
            log_e_violated,
            log_e_holds,
            shots,
            fired,
        }
    }

    /// ln E for the alternative "rate above threshold" (composite null:
    /// rate ≤ threshold). Mixture alternatives sit on an even grid of
    /// `(threshold, 1)`.
    pub fn log_e_violated(&self, shots: u64, fired: u64) -> f64 {
        let theta = self.threshold;
        self.log_mixture_e(shots, fired, |j| {
            theta + (1.0 - theta) * j as f64 / (MIXTURE_POINTS + 1) as f64
        })
    }

    /// ln E for the alternative "rate below threshold" (composite null:
    /// rate ≥ threshold). Mixture alternatives sit on an even grid of
    /// `(0, threshold)`.
    pub fn log_e_holds(&self, shots: u64, fired: u64) -> f64 {
        let theta = self.threshold;
        self.log_mixture_e(shots, fired, |j| {
            theta * j as f64 / (MIXTURE_POINTS + 1) as f64
        })
    }

    /// ln of the average over grid alternatives `p_j` of the Bernoulli
    /// likelihood ratio `(p_j/θ)^k ((1-p_j)/(1-θ))^(n-k)` — computed in
    /// log space with log-sum-exp so centuries of shots cannot
    /// overflow. Each component is a nonnegative supermartingale under
    /// the one-sided null (per-step expectation ≤ 1 for every null
    /// rate), hence so is the mixture.
    fn log_mixture_e(&self, shots: u64, fired: u64, alternative: impl Fn(usize) -> f64) -> f64 {
        let theta = self.threshold;
        let n = shots as f64;
        let k = fired as f64;
        let mut log_terms = [0.0f64; MIXTURE_POINTS];
        for (j, term) in log_terms.iter_mut().enumerate() {
            let p = alternative(j + 1);
            // k·ln(p/θ) with the 0·ln(0) = 0 convention (p = 0 only
            // reachable with k = 0, where the factor is absent).
            let fired_part = if fired == 0 {
                0.0
            } else {
                k * (p / theta).ln()
            };
            let held_part = if shots == fired {
                0.0
            } else {
                (n - k) * ((1.0 - p) / (1.0 - theta)).ln()
            };
            *term = fired_part + held_part;
        }
        let max = log_terms.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        if !max.is_finite() {
            // Every component is -inf (e.g. an impossible k for the
            // whole grid): no evidence either way.
            return f64::NEG_INFINITY;
        }
        let sum: f64 = log_terms.iter().map(|&t| (t - max).exp()).sum();
        max + sum.ln() - (MIXTURE_POINTS as f64).ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcircuit::library;
    use qsim::StatevectorBackend;

    fn backend() -> StatevectorBackend {
        StatevectorBackend::new().with_seed(99)
    }

    #[test]
    fn constructor_validates() {
        assert!(StatisticalAssertion::new(
            [0, 1],
            StatisticalKind::Classical {
                expected: vec![true]
            },
            0.05
        )
        .is_err());
        assert!(
            StatisticalAssertion::new(Vec::<u32>::new(), StatisticalKind::EntangledGhz, 0.05)
                .is_err()
        );
    }

    #[test]
    fn expected_distributions_are_normalized() {
        let cases = [
            StatisticalAssertion::new(
                [0, 1],
                StatisticalKind::Classical {
                    expected: vec![true, false],
                },
                0.05,
            )
            .unwrap(),
            StatisticalAssertion::new([0, 1, 2], StatisticalKind::UniformSuperposition, 0.05)
                .unwrap(),
            StatisticalAssertion::new([0, 1], StatisticalKind::EntangledGhz, 0.05).unwrap(),
        ];
        for a in cases {
            let p = a.expected_distribution();
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn classical_expected_distribution_places_mass_correctly() {
        let a = StatisticalAssertion::new(
            [0, 1],
            StatisticalKind::Classical {
                expected: vec![true, false],
            },
            0.05,
        )
        .unwrap();
        let p = a.expected_distribution();
        // qubit 0 expected 1, qubit 1 expected 0 → index 0b01.
        assert_eq!(p[0b01], 1.0);
    }

    #[test]
    fn correct_classical_state_passes() {
        let mut prefix = QuantumCircuit::new(2, 0);
        prefix.x(1).unwrap();
        let a = StatisticalAssertion::new(
            [0, 1],
            StatisticalKind::Classical {
                expected: vec![false, true],
            },
            0.05,
        )
        .unwrap();
        let verdict = a.check(&backend(), &prefix, 500).unwrap();
        assert!(verdict.passed, "p = {}", verdict.chi2.p_value);
        assert!(!verdict.program_continues);
        assert_eq!(verdict.shots_used, 500);
    }

    #[test]
    fn wrong_classical_state_fails() {
        let mut prefix = QuantumCircuit::new(1, 0);
        prefix.x(0).unwrap();
        let a = StatisticalAssertion::new(
            [0],
            StatisticalKind::Classical {
                expected: vec![false],
            },
            0.05,
        )
        .unwrap();
        let verdict = a.check(&backend(), &prefix, 500).unwrap();
        assert!(!verdict.passed);
        assert_eq!(verdict.chi2.p_value, 0.0);
    }

    #[test]
    fn uniform_superposition_passes_on_h_layer() {
        let prefix = library::uniform_superposition(3);
        let a = StatisticalAssertion::new([0, 1, 2], StatisticalKind::UniformSuperposition, 0.01)
            .unwrap();
        let verdict = a.check(&backend(), &prefix, 4000).unwrap();
        assert!(verdict.passed, "p = {}", verdict.chi2.p_value);
    }

    #[test]
    fn uniform_superposition_fails_on_biased_state() {
        let mut prefix = QuantumCircuit::new(2, 0);
        prefix.h(0).unwrap(); // qubit 1 stays |0⟩ → not uniform over 4
        let a =
            StatisticalAssertion::new([0, 1], StatisticalKind::UniformSuperposition, 0.05).unwrap();
        let verdict = a.check(&backend(), &prefix, 2000).unwrap();
        assert!(!verdict.passed);
    }

    #[test]
    fn ghz_correlation_passes_on_bell_and_fails_on_product() {
        let a = StatisticalAssertion::new([0, 1], StatisticalKind::EntangledGhz, 0.01).unwrap();
        let verdict = a.check(&backend(), &library::bell(), 3000).unwrap();
        assert!(verdict.passed, "p = {}", verdict.chi2.p_value);

        // |+⟩⊗|+⟩ has the same marginals but no correlation.
        let product = library::uniform_superposition(2);
        let verdict = a.check(&backend(), &product, 3000).unwrap();
        assert!(!verdict.passed);
    }

    #[test]
    fn statistical_assertions_cannot_continue_the_program() {
        // The baseline's structural limitation: the verdict reports that
        // execution stopped.
        let a = StatisticalAssertion::new([0, 1], StatisticalKind::EntangledGhz, 0.05).unwrap();
        let verdict = a.check(&backend(), &library::bell(), 100).unwrap();
        assert!(!verdict.program_continues);
    }

    #[test]
    fn sequential_test_starts_undecided_with_unit_e_values() {
        let test = SequentialTest::default();
        let v = test.evaluate(0, 0);
        assert_eq!(v.verdict, AssertionVerdict::Undecided);
        assert_eq!(v.log_e_violated, 0.0);
        assert_eq!(v.log_e_holds, 0.0);
        assert!(!v.decided());
    }

    #[test]
    fn clean_stream_decides_holds_within_a_hundred_shots() {
        // A never-firing assertion (the correct-program case) must be
        // decided Holds comfortably inside the default sequential
        // min/max window.
        let test = SequentialTest::default();
        let decided_at = (1..=128)
            .find(|&n| test.evaluate(n, 0).verdict == AssertionVerdict::Holds)
            .expect("a clean stream must decide within 128 shots");
        assert!(
            decided_at <= 100,
            "clean stream took {decided_at} shots to decide"
        );
        // And the decision is monotone: more clean shots keep it Holds.
        assert_eq!(test.evaluate(1000, 0).verdict, AssertionVerdict::Holds);
    }

    #[test]
    fn saturated_stream_decides_violated_within_a_tranche() {
        // An always-firing assertion (structural violation) decides in a
        // handful of shots.
        let test = SequentialTest::default();
        let decided_at = (1..=32)
            .find(|&n| test.evaluate(n, n).verdict == AssertionVerdict::Violated)
            .expect("a saturated stream must decide within 32 shots");
        assert!(decided_at <= 8, "took {decided_at} shots");
    }

    #[test]
    fn near_threshold_stream_stays_undecided() {
        // Firing exactly at the threshold matches both nulls: neither
        // e-process should accumulate decisive evidence.
        let test = SequentialTest::new(0.1, 0.05);
        for n in [10u64, 100, 1000, 10_000] {
            let v = test.evaluate(n, n / 10);
            assert_eq!(v.verdict, AssertionVerdict::Undecided, "n = {n}");
        }
    }

    #[test]
    fn evaluate_is_a_pure_function_of_totals() {
        // The property the tranche loop relies on: evidence at the
        // final accumulated counts is independent of how they were
        // split into tranches.
        let test = SequentialTest::new(0.2, 0.01);
        let a = test.evaluate(500, 37);
        let b = test.evaluate(500, 37);
        assert_eq!(a, b);
        assert_eq!(a.shots, 500);
        assert_eq!(a.fired, 37);
    }

    #[test]
    fn e_processes_are_supermartingales_under_their_nulls() {
        // Per-step validity check: for every mixture component p1 and
        // every null rate p on the null side, the one-step expected
        // likelihood-ratio factor p·(p1/θ) + (1-p)·((1-p1)/(1-θ)) is
        // ≤ 1 (with equality only at p = θ). Linearity in p means
        // checking the boundary p = θ suffices — this pins the algebra
        // Ville's inequality (and thus anytime validity) rests on.
        let theta = 0.1;
        for j in 1..=8 {
            let above = theta + (1.0 - theta) * j as f64 / 9.0;
            let below = theta * j as f64 / 9.0;
            for p1 in [above, below] {
                let boundary = theta * (p1 / theta) + (1.0 - theta) * ((1.0 - p1) / (1.0 - theta));
                assert!(
                    boundary <= 1.0 + 1e-12,
                    "component {p1} is not a supermartingale at the null boundary: {boundary}"
                );
            }
        }
    }

    #[test]
    fn false_verdict_rate_respects_alpha_under_optional_stopping() {
        // Simulate the exact tranche protocol on a null-side stream
        // (true rate well below threshold) and count how often the test
        // *ever* declares Violated — must be ≤ alpha up to simulation
        // noise. Deterministic LCG keeps the test reproducible.
        let test = SequentialTest::new(0.1, 0.05);
        let mut state = 0x4d595df4d0f33173u64;
        let mut rand01 = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut false_verdicts = 0;
        let trials = 400;
        for _ in 0..trials {
            let mut fired = 0u64;
            for n in 1..=2048u64 {
                // True firing rate 2% — the assertion genuinely holds.
                if rand01() < 0.02 {
                    fired += 1;
                }
                if n % 64 == 0 {
                    match test.evaluate(n, fired).verdict {
                        AssertionVerdict::Violated => {
                            false_verdicts += 1;
                            break;
                        }
                        AssertionVerdict::Holds => break,
                        AssertionVerdict::Undecided => {}
                    }
                }
            }
        }
        // 5% of 400 = 20; a sound e-process stays far below that (the
        // mixture bound is conservative). 5x headroom on zero expected.
        assert!(
            false_verdicts <= 8,
            "{false_verdicts}/{trials} null streams were declared Violated"
        );
    }
}
