//! Shot plans: how a session spends a run's shot budget.
//!
//! The paper's workflow burns a fixed shot count per run, but its
//! assertions are *statistical* checks on measured ancillas — most runs
//! reach a clear verdict long before a fixed budget is spent. A
//! [`ShotPlan`] makes the budget a first-class session setting:
//!
//! * [`ShotPlan::Fixed`] — the default. Exactly `n` shots in one
//!   backend call, bit-identical to the pre-plan `.shots(n)` behavior.
//! * [`ShotPlan::Sequential`] — shots run in tranches; after each
//!   tranche every assertion's anytime-valid sequential test
//!   ([`crate::statistical::SequentialTest`]) is folded over the
//!   accumulated counts, and the run stops as soon as every verdict is
//!   decided at confidence `1 - alpha` (or the budget is exhausted).
//!
//! Sequential execution is deterministic by construction: tranche
//! boundaries are a pure function of the accumulated counts (never
//! timing or worker count), and tranche `k` draws its RNG streams from
//! [`qsim::tranche_seed`]`(base, k)` — so results reproduce exactly for
//! any `(seed, plan, threads, sweep policy, pool size)`.

use std::fmt;

/// Default `min_shots` for [`ShotPlan::sequential`].
pub const DEFAULT_SEQUENTIAL_MIN_SHOTS: u64 = 64;
/// Default `max_shots` for [`ShotPlan::sequential`].
pub const DEFAULT_SEQUENTIAL_MAX_SHOTS: u64 = 8192;
/// Default `tranche` for [`ShotPlan::sequential`].
pub const DEFAULT_SEQUENTIAL_TRANCHE: u64 = 256;

/// How a session spends a run's shot budget.
///
/// Construct a plan and hand it to
/// [`AssertionSession::shot_plan`](crate::AssertionSession::shot_plan);
/// the legacy `.shots(n)` builder is a shim for `Fixed(n)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ShotPlan {
    /// Run exactly this many shots in one backend call — bit-identical
    /// to the pre-plan behavior, and the default
    /// ([`crate::session::DEFAULT_SHOTS`]).
    Fixed(u64),
    /// Run shots in tranches, stopping as soon as every assertion's
    /// anytime-valid sequential verdict is decided.
    Sequential {
        /// Significance level of the per-assertion sequential tests: a
        /// verdict is declared when its e-value reaches `1 / alpha`, so
        /// by Ville's inequality each assertion's probability of *ever*
        /// declaring a wrong verdict is at most `alpha`, no matter when
        /// the plan stops. Also the significance the analysis verdicts
        /// report.
        alpha: f64,
        /// No verdict is declared before this many shots have been
        /// requested — a floor against deciding on a handful of shots
        /// when tranches are small.
        min_shots: u64,
        /// Hard budget: the run stops here with
        /// [`StopReason::Budget`] if verdicts are still undecided
        /// (firing rates near the test threshold may never decide).
        max_shots: u64,
        /// Shots per tranche — the granularity at which verdicts are
        /// re-evaluated. Smaller tranches stop earlier but re-test more
        /// often; pool-shard-sized tranches (a few hundred) amortize
        /// dispatch without overshooting much.
        tranche: u64,
    },
}

impl Default for ShotPlan {
    fn default() -> Self {
        ShotPlan::Fixed(crate::session::DEFAULT_SHOTS)
    }
}

impl ShotPlan {
    /// A sequential plan at significance `alpha` with the default
    /// floor/budget/tranche
    /// ([`DEFAULT_SEQUENTIAL_MIN_SHOTS`]/[`DEFAULT_SEQUENTIAL_MAX_SHOTS`]/
    /// [`DEFAULT_SEQUENTIAL_TRANCHE`]).
    pub fn sequential(alpha: f64) -> Self {
        ShotPlan::Sequential {
            alpha,
            min_shots: DEFAULT_SEQUENTIAL_MIN_SHOTS,
            max_shots: DEFAULT_SEQUENTIAL_MAX_SHOTS,
            tranche: DEFAULT_SEQUENTIAL_TRANCHE,
        }
    }

    /// The most shots this plan can spend on one run: `n` for
    /// `Fixed(n)`, `max_shots` for `Sequential`.
    pub fn budget(&self) -> u64 {
        match *self {
            ShotPlan::Fixed(n) => n,
            ShotPlan::Sequential { max_shots, .. } => max_shots,
        }
    }

    /// Whether this plan evaluates verdicts between tranches.
    pub fn is_sequential(&self) -> bool {
        matches!(self, ShotPlan::Sequential { .. })
    }

    /// The sequential significance level, if this plan has one.
    pub fn alpha(&self) -> Option<f64> {
        match *self {
            ShotPlan::Fixed(_) => None,
            ShotPlan::Sequential { alpha, .. } => Some(alpha),
        }
    }

    /// Checks the plan's parameters: every plan needs a non-zero shot
    /// budget, and `Sequential` additionally needs `alpha` in `(0, 1)`,
    /// `tranche >= 1`, and `1 <= min_shots <= max_shots`. A plan that
    /// can never run a shot can never produce a verdict, so the core
    /// rejects it here — frontends must not need their own special
    /// cases.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            ShotPlan::Fixed(0) => Err(String::from("fixed plan must request at least one shot")),
            ShotPlan::Fixed(_) => Ok(()),
            ShotPlan::Sequential {
                alpha,
                min_shots,
                max_shots,
                tranche,
            } => {
                if !(alpha > 0.0 && alpha < 1.0) {
                    return Err(format!("sequential alpha must be in (0, 1), got {alpha}"));
                }
                if tranche == 0 {
                    return Err(String::from("sequential tranche must be at least 1"));
                }
                if min_shots == 0 {
                    return Err(String::from("sequential min_shots must be at least 1"));
                }
                if min_shots > max_shots {
                    return Err(format!(
                        "sequential min_shots ({min_shots}) must not exceed max_shots ({max_shots})"
                    ));
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for ShotPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ShotPlan::Fixed(n) => write!(f, "fixed({n})"),
            ShotPlan::Sequential {
                alpha,
                min_shots,
                max_shots,
                tranche,
            } => write!(
                f,
                "sequential(alpha={alpha}, min={min_shots}, max={max_shots}, tranche={tranche})"
            ),
        }
    }
}

/// Why a run stopped requesting shots.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// A fixed plan ran its whole budget in one call (the only reason a
    /// [`ShotPlan::Fixed`] run ever reports).
    Fixed,
    /// Every assertion's sequential verdict was decided, so the
    /// remaining budget was not spent.
    Decided,
    /// The sequential budget (`max_shots`) was exhausted with at least
    /// one verdict still undecided.
    Budget,
}

impl fmt::Display for StopReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            StopReason::Fixed => "fixed",
            StopReason::Decided => "decided",
            StopReason::Budget => "budget",
        })
    }
}

/// How one run actually spent its plan — attached to every
/// [`AssertionOutcome`](crate::AssertionOutcome).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlanTrace {
    /// Shots requested from the backend (post-selection may have
    /// discarded some; recorded shots are `raw.counts.total()`).
    pub shots_used: u64,
    /// Backend calls the plan made (1 for a fixed plan).
    pub tranches: u64,
    /// Why the run stopped.
    pub stop: StopReason,
}

impl PlanTrace {
    /// The trace of a fixed-budget run.
    pub(crate) fn fixed(shots: u64) -> Self {
        PlanTrace {
            shots_used: shots,
            tranches: 1,
            stop: StopReason::Fixed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_the_fixed_default_budget() {
        assert_eq!(
            ShotPlan::default(),
            ShotPlan::Fixed(crate::session::DEFAULT_SHOTS)
        );
        assert!(!ShotPlan::default().is_sequential());
        assert_eq!(ShotPlan::default().alpha(), None);
    }

    #[test]
    fn sequential_constructor_uses_documented_defaults() {
        let plan = ShotPlan::sequential(0.05);
        assert_eq!(
            plan,
            ShotPlan::Sequential {
                alpha: 0.05,
                min_shots: DEFAULT_SEQUENTIAL_MIN_SHOTS,
                max_shots: DEFAULT_SEQUENTIAL_MAX_SHOTS,
                tranche: DEFAULT_SEQUENTIAL_TRANCHE,
            }
        );
        assert!(plan.is_sequential());
        assert_eq!(plan.alpha(), Some(0.05));
        assert_eq!(plan.budget(), DEFAULT_SEQUENTIAL_MAX_SHOTS);
        assert!(plan.validate().is_ok());
    }

    #[test]
    fn validate_rejects_degenerate_parameters() {
        assert!(ShotPlan::sequential(0.0).validate().is_err());
        assert!(ShotPlan::sequential(1.0).validate().is_err());
        assert!(ShotPlan::Sequential {
            alpha: 0.05,
            min_shots: 10,
            max_shots: 100,
            tranche: 0,
        }
        .validate()
        .is_err());
        assert!(ShotPlan::Sequential {
            alpha: 0.05,
            min_shots: 0,
            max_shots: 100,
            tranche: 16,
        }
        .validate()
        .is_err());
        assert!(ShotPlan::Sequential {
            alpha: 0.05,
            min_shots: 200,
            max_shots: 100,
            tranche: 16,
        }
        .validate()
        .is_err());
        assert!(ShotPlan::Fixed(0).validate().is_err());
        assert!(ShotPlan::Fixed(1).validate().is_ok());
    }

    #[test]
    fn display_names_the_plan_shape() {
        assert_eq!(ShotPlan::Fixed(1024).to_string(), "fixed(1024)");
        assert_eq!(
            ShotPlan::sequential(0.05).to_string(),
            "sequential(alpha=0.05, min=64, max=8192, tranche=256)"
        );
        assert_eq!(StopReason::Decided.to_string(), "decided");
    }
}
