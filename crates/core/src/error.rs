//! Error types for the assertion library.

use qcircuit::CircuitError;
use qsim::SimError;
use std::fmt;

/// Error produced when building or running assertions.
#[derive(Clone, Debug, PartialEq)]
pub enum AssertError {
    /// An assertion references a qubit outside the circuit.
    QubitOutOfRange {
        /// The offending qubit index.
        qubit: usize,
        /// The circuit's qubit count.
        num_qubits: usize,
    },
    /// An assertion lists the same qubit twice.
    DuplicateQubit {
        /// The repeated qubit index.
        qubit: usize,
    },
    /// A classical assertion's expected-bit list does not match its
    /// qubit list.
    ExpectedLengthMismatch {
        /// Number of qubits asserted.
        qubits: usize,
        /// Number of expected bits supplied.
        expected: usize,
    },
    /// Entanglement assertions need at least two qubits.
    TooFewQubits {
        /// Qubits supplied.
        got: usize,
        /// Minimum required.
        needed: usize,
    },
    /// Circuit construction failed while splicing the assertion.
    Circuit(CircuitError),
    /// Simulation failed while executing the instrumented circuit.
    Sim(SimError),
    /// The outcome analysis needs at least one kept shot.
    NoShotsKept,
}

impl fmt::Display for AssertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AssertError::QubitOutOfRange { qubit, num_qubits } => {
                write!(
                    f,
                    "asserted qubit q{qubit} out of range for {num_qubits} qubits"
                )
            }
            AssertError::DuplicateQubit { qubit } => {
                write!(f, "qubit q{qubit} listed more than once in one assertion")
            }
            AssertError::ExpectedLengthMismatch { qubits, expected } => {
                write!(
                    f,
                    "classical assertion over {qubits} qubit(s) got {expected} expected bit(s)"
                )
            }
            AssertError::TooFewQubits { got, needed } => {
                write!(f, "assertion needs at least {needed} qubits, got {got}")
            }
            AssertError::Circuit(e) => write!(f, "circuit construction failed: {e}"),
            AssertError::Sim(e) => write!(f, "simulation failed: {e}"),
            AssertError::NoShotsKept => write!(f, "no shots survived assertion filtering"),
        }
    }
}

impl std::error::Error for AssertError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AssertError::Circuit(e) => Some(e),
            AssertError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CircuitError> for AssertError {
    fn from(e: CircuitError) -> Self {
        AssertError::Circuit(e)
    }
}

impl From<SimError> for AssertError {
    fn from(e: SimError) -> Self {
        AssertError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = AssertError::ExpectedLengthMismatch {
            qubits: 2,
            expected: 3,
        };
        assert!(e.to_string().contains("2 qubit(s)"));
        let e = AssertError::TooFewQubits { got: 1, needed: 2 };
        assert!(e.to_string().contains("at least 2"));
    }

    #[test]
    fn conversions_wrap_sources() {
        let ce: AssertError = CircuitError::DuplicateQubit { qubit: 1 }.into();
        assert!(matches!(ce, AssertError::Circuit(_)));
        let se: AssertError = SimError::AllShotsDiscarded.into();
        assert!(matches!(se, AssertError::Sim(_)));
    }
}
