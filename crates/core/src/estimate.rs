//! Amplitude estimation from assertion statistics.
//!
//! The paper notes, for each assertion family, that "the probability
//! distribution of assertion errors over repeated runs can be used to
//! estimate a and b, if needed". This module implements exactly that:
//!
//! * **classical** assertion errors estimate `|b|²` directly (Sec. 3.1),
//! * **superposition** assertion errors estimate the real cross term
//!   `ab` via `P(error) = (2 − 4ab)/4` (Sec. 3.3); combined with
//!   normalization this pins down real amplitudes up to the (a ↔ b)
//!   ambiguity,
//! * **entanglement** assertion errors estimate the odd-parity mass
//!   `|c|² + |d|²` (Sec. 3.2).
//!
//! Estimates carry Wilson-score confidence intervals.

use qmath::stats::wilson_interval;

/// A probability estimated from assertion outcomes, with a confidence
/// interval.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Estimate {
    /// Point estimate.
    pub value: f64,
    /// Lower bound of the confidence interval.
    pub low: f64,
    /// Upper bound of the confidence interval.
    pub high: f64,
}

impl Estimate {
    /// Builds an estimate from `fired` assertion errors out of `shots`
    /// at confidence `z` (1.96 ≈ 95%).
    ///
    /// # Panics
    ///
    /// Panics when `shots == 0` or `fired > shots`.
    pub fn from_counts(fired: u64, shots: u64, z: f64) -> Estimate {
        let (low, high) = wilson_interval(fired, shots, z);
        Estimate {
            value: fired as f64 / shots as f64,
            low,
            high,
        }
    }

    /// Width of the confidence interval.
    pub fn uncertainty(&self) -> f64 {
        self.high - self.low
    }

    /// Returns `true` when `truth` lies inside the interval.
    pub fn covers(&self, truth: f64) -> bool {
        (self.low..=self.high).contains(&truth)
    }
}

/// Section 3.1: from classical-assertion error statistics, estimate
/// `|b|²` (the excited-state population of `a|0⟩ + b|1⟩`).
pub fn excited_population(fired: u64, shots: u64, z: f64) -> Estimate {
    Estimate::from_counts(fired, shots, z)
}

/// Section 3.3: from superposition-assertion error statistics on a
/// **real-amplitude** state, estimate the cross term `ab` via
/// `P(error) = (2 − 4ab)/4 ⇒ ab = (2 − 4·P)/4`.
///
/// The interval maps monotonically (decreasing), so the bounds swap.
pub fn cross_term(fired: u64, shots: u64, z: f64) -> Estimate {
    let p = Estimate::from_counts(fired, shots, z);
    let map = |x: f64| (2.0 - 4.0 * x) / 4.0;
    Estimate {
        value: map(p.value),
        low: map(p.high),
        high: map(p.low),
    }
}

/// Section 3.3 continued: recover real amplitude magnitudes `(|a|, |b|)`
/// from an estimated cross term, using `a² + b² = 1` and `a·b = t`:
/// `a, b = √((1 ± √(1 − 4t²))/2)`. Returns `None` when `|t| > 1/2`
/// (unphysical, can happen from sampling noise).
///
/// The assignment of which root is `a` is ambiguous (the assertion
/// cannot distinguish `a ↔ b`); the larger magnitude is returned first.
pub fn real_amplitudes_from_cross_term(t: f64) -> Option<(f64, f64)> {
    let disc = 1.0 - 4.0 * t * t;
    if disc < 0.0 {
        return None;
    }
    let root = disc.sqrt();
    let a2 = (1.0 + root) / 2.0;
    let b2 = (1.0 - root) / 2.0;
    let (a, b) = (a2.max(0.0).sqrt(), b2.max(0.0).sqrt());
    // ab must reproduce t's sign: if t < 0 the smaller amplitude is
    // negative.
    Some(if t >= 0.0 { (a, b) } else { (a, -b) })
}

/// Section 3.2: from entanglement-assertion error statistics, estimate
/// the odd-parity mass `|c|² + |d|²` of
/// `a|00⟩ + b|11⟩ + c|10⟩ + d|01⟩`.
pub fn odd_parity_mass(fired: u64, shots: u64, z: f64) -> Estimate {
    Estimate::from_counts(fired, shots, z)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qmath::FRAC_1_SQRT_2;

    #[test]
    fn estimate_from_counts_brackets_truth() {
        let e = Estimate::from_counts(300, 1000, 1.96);
        assert!((e.value - 0.3).abs() < 1e-12);
        assert!(e.covers(0.3));
        assert!(e.low < 0.3 && 0.3 < e.high);
        assert!(e.uncertainty() < 0.07);
    }

    #[test]
    fn excited_population_is_direct() {
        let e = excited_population(500, 1000, 1.96);
        assert!(e.covers(0.5));
    }

    #[test]
    fn cross_term_maps_error_rate() {
        // |+⟩: P(error) = 0 → ab = 1/2.
        let e = cross_term(0, 10_000, 1.96);
        assert!((e.value - 0.5).abs() < 1e-12);
        assert!(e.low <= e.high);
        // Classical state: P(error) = 1/2 → ab = 0.
        let e = cross_term(5_000, 10_000, 1.96);
        assert!(e.covers(0.0));
        // |−⟩: P(error) = 1 → ab = −1/2.
        let e = cross_term(10_000, 10_000, 1.96);
        assert!((e.value + 0.5).abs() < 1e-12);
    }

    #[test]
    fn amplitudes_recover_from_cross_term() {
        // |+⟩: t = 1/2 → a = b = 1/√2.
        let (a, b) = real_amplitudes_from_cross_term(0.5).unwrap();
        assert!((a - FRAC_1_SQRT_2).abs() < 1e-12);
        assert!((b - FRAC_1_SQRT_2).abs() < 1e-12);
        // Classical: t = 0 → (1, 0).
        let (a, b) = real_amplitudes_from_cross_term(0.0).unwrap();
        assert!((a - 1.0).abs() < 1e-12 && b.abs() < 1e-12);
        // |−⟩: t = −1/2 → (1/√2, −1/√2).
        let (a, b) = real_amplitudes_from_cross_term(-0.5).unwrap();
        assert!((a - FRAC_1_SQRT_2).abs() < 1e-12);
        assert!((b + FRAC_1_SQRT_2).abs() < 1e-12);
        // Round trip on a generic angle.
        let theta = 0.73f64;
        let (ta, tb) = ((theta / 2.0).cos(), (theta / 2.0).sin());
        let (ra, rb) = real_amplitudes_from_cross_term(ta * tb).unwrap();
        // Ambiguity: larger magnitude first.
        assert!((ra - ta.max(tb)).abs() < 1e-12);
        assert!((rb - ta.min(tb)).abs() < 1e-12);
        // Normalization always holds.
        assert!((ra * ra + rb * rb - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unphysical_cross_terms_rejected() {
        assert!(real_amplitudes_from_cross_term(0.51).is_none());
        assert!(real_amplitudes_from_cross_term(-0.6).is_none());
    }

    #[test]
    fn end_to_end_estimation_against_simulator() {
        // Run the classical assertion on Ry(θ)|0⟩ many times and check
        // the estimate brackets sin²(θ/2).
        use crate::AssertingCircuit;
        use qsim::Backend;
        let theta = 1.1f64;
        let truth = (theta / 2.0).sin().powi(2);
        let mut base = qcircuit::QuantumCircuit::new(1, 0);
        base.ry(theta, 0).unwrap();
        let mut ac = AssertingCircuit::new(base);
        ac.assert_classical([0], [false]).unwrap();
        let raw = qsim::StatevectorBackend::new()
            .with_seed(17)
            .run(ac.circuit(), 20_000)
            .unwrap();
        let fired: u64 = raw
            .counts
            .iter()
            .filter(|(k, _)| k & 1 == 1)
            .map(|(_, n)| n)
            .sum();
        let est = excited_population(fired, 20_000, 2.58); // 99%
        assert!(est.covers(truth), "estimate {est:?} missed {truth}");
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_shots_panics() {
        let _ = Estimate::from_counts(0, 0, 1.96);
    }
}
