//! Paper-style result tables and serializable experiment reports.
//!
//! The experiment harness prints the same table shapes as the paper
//! (Table 1's `q1q2 / % / Meaning` rows, Table 2's `q0q1q2` rows) and
//! exports machine-readable records for `EXPERIMENTS.md`.

use qsim::Counts;

/// One row of a paper-style outcome table.
#[derive(Clone, Debug, PartialEq)]
pub struct OutcomeRow {
    /// The outcome bits rendered in the table's qubit order.
    pub bits: String,
    /// Share of shots, in percent.
    pub percent: f64,
    /// Interpretation of the outcome (e.g. "assertion error, q1 is 1").
    pub meaning: String,
}

/// A paper-style outcome table.
#[derive(Clone, Debug, PartialEq)]
pub struct OutcomeTable {
    /// Table caption.
    pub title: String,
    /// Header of the bits column (e.g. "q1q2").
    pub bits_header: String,
    /// The rows, in ascending outcome order.
    pub rows: Vec<OutcomeRow>,
}

impl OutcomeTable {
    /// Builds a table from counts.
    ///
    /// `bit_order[j]` names the clbit printed at string position `j`
    /// (leftmost first), matching how the paper orders its columns.
    /// `meaning` maps each rendered bitstring to its interpretation.
    pub fn from_counts(
        title: impl Into<String>,
        bits_header: impl Into<String>,
        counts: &Counts,
        bit_order: &[usize],
        meaning: impl Fn(&str) -> String,
    ) -> OutcomeTable {
        let total = counts.total().max(1) as f64;
        let k = bit_order.len();
        let mut rows = Vec::with_capacity(1 << k);
        for pattern in 0..(1u64 << k) {
            // `pattern` enumerates rendered strings in lexicographic
            // order: bit j of the string (from the left) set means a '1'
            // at position j.
            let bits: String = (0..k)
                .map(|j| {
                    if (pattern >> (k - 1 - j)) & 1 == 1 {
                        '1'
                    } else {
                        '0'
                    }
                })
                .collect();
            // Accumulate all keys that render to this pattern.
            let n: u64 = counts
                .iter()
                .filter(|(key, _)| counts.bitstring_custom(*key, bit_order) == bits)
                .map(|(_, n)| n)
                .sum();
            rows.push(OutcomeRow {
                meaning: meaning(&bits),
                percent: 100.0 * n as f64 / total,
                bits,
            });
        }
        OutcomeTable {
            title: title.into(),
            bits_header: bits_header.into(),
            rows,
        }
    }

    /// Renders the table as aligned text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{}\n", self.title));
        out.push_str(&format!(
            "{:>8} {:>8}  {}\n",
            self.bits_header, "%", "Meaning"
        ));
        for row in &self.rows {
            out.push_str(&format!(
                "{:>8} {:>7.2}%  {}\n",
                row.bits, row.percent, row.meaning
            ));
        }
        out
    }
}

/// A paper-vs-measured comparison line for `EXPERIMENTS.md`.
#[derive(Clone, Debug, PartialEq)]
pub struct Comparison {
    /// What is being compared (e.g. "raw error rate").
    pub metric: String,
    /// The value the paper reports.
    pub paper: f64,
    /// The value this reproduction measured.
    pub measured: f64,
}

impl Comparison {
    /// Creates a comparison line.
    pub fn new(metric: impl Into<String>, paper: f64, measured: f64) -> Self {
        Comparison {
            metric: metric.into(),
            paper,
            measured,
        }
    }

    /// Whether the measured value has the same sign of effect and the
    /// same order of magnitude — the reproduction bar for a simulated
    /// substrate (absolute hardware numbers are not recoverable).
    pub fn shape_holds(&self) -> bool {
        if self.paper == 0.0 {
            return self.measured.abs() < 1e-6;
        }
        let ratio = self.measured / self.paper;
        ratio > 0.0 && (0.1..=10.0).contains(&ratio)
    }
}

/// A named scalar measurement attached to a report (runtime telemetry
/// rather than paper comparisons: cache hit rates, shard counts,
/// wall-clock figures).
#[derive(Clone, Debug, PartialEq)]
pub struct Metric {
    /// Metric name (e.g. "program_cache_hit_rate").
    pub name: String,
    /// Measured value.
    pub value: f64,
}

impl Metric {
    /// Creates a metric.
    pub fn new(name: impl Into<String>, value: f64) -> Self {
        Metric {
            name: name.into(),
            value,
        }
    }
}

/// The effective configuration of the [`AssertionSession`] that
/// produced an experiment's numbers — embedded in report JSON so repro
/// artifacts record how they were run.
///
/// Produced by [`AssertionSession::record`].
///
/// [`AssertionSession`]: crate::session::AssertionSession
/// [`AssertionSession::record`]: crate::session::AssertionSession::record
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SessionRecord {
    /// The backend's human-readable name.
    pub backend: String,
    /// The backend's kind ([`qsim::BackendKind::as_str`] — e.g.
    /// `"statevector"` or `"stabilizer"`), a stable machine-readable
    /// label where the name above is free-form prose.
    pub backend_kind: String,
    /// The shard/thread override *requested* on the session (`None` =
    /// backend default). Always records what the caller asked for, even
    /// when the backend ignores it — `threads_effective` below says
    /// what actually took effect.
    pub threads: Option<usize>,
    /// The shard/thread count the backend *actually honors*
    /// ([`qsim::Backend::effective_threads`]): equal to `threads` on
    /// the per-shot backends, `None` on backends without a shard
    /// concept (the exact density-matrix executor) whatever was
    /// requested.
    pub threads_effective: Option<usize>,
    /// The per-run RNG seed override *requested* on the session
    /// (`None` = backend default). Backends without sampling randomness
    /// ignore the request.
    pub seed: Option<u64>,
    /// The plan's shot budget per run ([`crate::ShotPlan::budget`]):
    /// the exact count under a fixed plan, `max_shots` under a
    /// sequential one.
    pub shots: u64,
    /// The widest program (qubit count) the session had executed when
    /// the record was taken — `0` if nothing ran yet. Together with
    /// `backend_kind` this tells a reader whether a result came from an
    /// amplitude backend near its ~30-qubit ceiling or from the
    /// stabilizer tableau at thousands of qubits.
    pub max_qubits: u64,
    /// The session's shot plan, rendered
    /// ([`crate::ShotPlan`]'s `Display` — e.g. `fixed(1024)` or
    /// `sequential(alpha=0.05, min=64, max=8192, tranche=256)`).
    pub plan: String,
    /// Capacity of the program cache the session compiled through.
    pub cache_capacity: usize,
    /// The SIMD backend the amplitude kernels dispatched to
    /// ([`qsim::simd::active_backend`] at record time) — which ISA path
    /// produced the numbers. All backends are bit-identical; this is
    /// provenance for perf artifacts, not a correctness knob.
    pub simd: String,
}

/// A complete experiment report.
#[derive(Clone, Debug, PartialEq)]
pub struct ExperimentReport {
    /// Experiment id from DESIGN.md (e.g. "table1").
    pub id: String,
    /// What the experiment reproduces.
    pub description: String,
    /// Rendered outcome tables.
    pub tables: Vec<OutcomeTable>,
    /// Paper-vs-measured comparisons.
    pub comparisons: Vec<Comparison>,
    /// Runtime telemetry (cache hit/miss counters, throughput figures).
    pub metrics: Vec<Metric>,
    /// The session configuration the experiment executed under, when it
    /// ran through an `AssertionSession`.
    pub session: Option<SessionRecord>,
    /// Free-form notes (calibration caveats, etc.).
    pub notes: Vec<String>,
}

impl ExperimentReport {
    /// Creates an empty report.
    pub fn new(id: impl Into<String>, description: impl Into<String>) -> Self {
        ExperimentReport {
            id: id.into(),
            description: description.into(),
            tables: Vec::new(),
            comparisons: Vec::new(),
            metrics: Vec::new(),
            session: None,
            notes: Vec::new(),
        }
    }

    /// Records the session configuration that produced this report
    /// (backend name, threads, shots, cache capacity) — serialized into
    /// the JSON artifact and rendered in the text output.
    pub fn push_session(&mut self, record: SessionRecord) {
        self.session = Some(record);
    }

    /// Appends the standard session telemetry block: program-cache
    /// hits/misses/hit-rate plus prefix reuses, runs, and total shots —
    /// the counters a session (or one sweep of it) accumulated, as
    /// reported by [`crate::session::AssertionSession::telemetry`] or
    /// [`crate::session::SweepOutcome`].
    pub fn push_session_telemetry(&mut self, t: &crate::session::SessionTelemetry) {
        self.metrics
            .push(Metric::new("program_cache_hits", t.cache_hits as f64));
        self.metrics
            .push(Metric::new("program_cache_misses", t.cache_misses as f64));
        self.metrics
            .push(Metric::new("program_cache_hit_rate", t.hit_rate()));
        self.metrics
            .push(Metric::new("prefix_hits", t.prefix_hits as f64));
        self.metrics
            .push(Metric::new("session_runs", t.runs as f64));
        self.metrics
            .push(Metric::new("session_shots", t.shots as f64));
        self.metrics
            .push(Metric::new("session_tranches", t.tranches as f64));
        self.metrics
            .push(Metric::new("session_early_stops", t.early_stops as f64));
        self.metrics
            .push(Metric::new("batched_ops", t.batched_ops as f64));
        self.metrics
            .push(Metric::new("batch_passes", t.batch_passes as f64));
        self.metrics
            .push(Metric::new("pool_tasks", t.pool_tasks as f64));
        self.metrics
            .push(Metric::new("pool_steals", t.pool_steals as f64));
    }

    /// Appends the standard program-cache telemetry block (hits, misses,
    /// hit rate) from a stats delta, as reported by
    /// [`qsim::CacheStats::since`] — for callers tracking a
    /// [`qsim::ProgramCache`] directly rather than through a session.
    pub fn push_cache_metrics(&mut self, delta: qsim::CacheStats) {
        self.metrics
            .push(Metric::new("program_cache_hits", delta.hits as f64));
        self.metrics
            .push(Metric::new("program_cache_misses", delta.misses as f64));
        self.metrics
            .push(Metric::new("program_cache_hit_rate", delta.hit_rate()));
    }

    /// Serializes the report as a compact JSON object (the suite runs in
    /// environments without a serde dependency, so this is hand-rolled;
    /// field order matches declaration order).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"id\":{}", json_string(&self.id)));
        out.push_str(&format!(
            ",\"description\":{}",
            json_string(&self.description)
        ));
        out.push_str(",\"tables\":[");
        for (i, t) in self.tables.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"title\":{},\"bits_header\":{},\"rows\":[",
                json_string(&t.title),
                json_string(&t.bits_header)
            ));
            for (j, r) in t.rows.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"bits\":{},\"percent\":{},\"meaning\":{}}}",
                    json_string(&r.bits),
                    json_number(r.percent),
                    json_string(&r.meaning)
                ));
            }
            out.push_str("]}");
        }
        out.push_str("],\"comparisons\":[");
        for (i, c) in self.comparisons.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"metric\":{},\"paper\":{},\"measured\":{}}}",
                json_string(&c.metric),
                json_number(c.paper),
                json_number(c.measured)
            ));
        }
        out.push_str("],\"metrics\":[");
        for (i, m) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":{},\"value\":{}}}",
                json_string(&m.name),
                json_number(m.value)
            ));
        }
        out.push_str("],\"session\":");
        match &self.session {
            Some(s) => {
                out.push_str(&format!(
                    "{{\"backend\":{},\"backend_kind\":{},\"threads\":{},\"threads_effective\":{},\"seed\":{},\"shots\":{},\"max_qubits\":{},\"plan\":{},\"cache_capacity\":{},\"simd\":{}}}",
                    json_string(&s.backend),
                    json_string(&s.backend_kind),
                    match s.threads {
                        Some(t) => t.to_string(),
                        None => String::from("null"),
                    },
                    match s.threads_effective {
                        Some(t) => t.to_string(),
                        None => String::from("null"),
                    },
                    match s.seed {
                        Some(v) => v.to_string(),
                        None => String::from("null"),
                    },
                    s.shots,
                    s.max_qubits,
                    json_string(&s.plan),
                    s.cache_capacity,
                    json_string(&s.simd)
                ));
            }
            None => out.push_str("null"),
        }
        out.push_str(",\"notes\":[");
        for (i, n) in self.notes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_string(n));
        }
        out.push_str("]}");
        out
    }

    /// Renders the report as text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("=== {} — {}\n", self.id, self.description));
        for t in &self.tables {
            out.push('\n');
            out.push_str(&t.render());
        }
        if !self.comparisons.is_empty() {
            out.push_str("\npaper vs measured:\n");
            for c in &self.comparisons {
                out.push_str(&format!(
                    "  {:<38} paper {:>8.3}  measured {:>8.3}  [{}]\n",
                    c.metric,
                    c.paper,
                    c.measured,
                    if c.shape_holds() {
                        "shape ok"
                    } else {
                        "DIVERGES"
                    }
                ));
            }
        }
        if !self.metrics.is_empty() {
            out.push_str("\nmetrics:\n");
            for m in &self.metrics {
                out.push_str(&format!("  {:<38} {:.6}\n", m.name, m.value));
            }
        }
        if let Some(s) = &self.session {
            out.push_str(&format!(
                "\nsession: backend \"{}\" ({}), max qubits {}, plan {}, threads requested {} \
                 (effective {}), seed requested {}, cache capacity {}, simd \"{}\"\n",
                s.backend,
                s.backend_kind,
                s.max_qubits,
                s.plan,
                match s.threads {
                    Some(t) => t.to_string(),
                    None => String::from("backend default"),
                },
                match s.threads_effective {
                    Some(t) => t.to_string(),
                    None => String::from("backend default"),
                },
                match s.seed {
                    Some(v) => v.to_string(),
                    None => String::from("backend default"),
                },
                s.cache_capacity,
                s.simd
            ));
        }
        for n in &self.notes {
            out.push_str(&format!("note: {n}\n"));
        }
        out
    }
}

/// JSON-escapes a string (quotes, backslashes, control characters).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders a float as a JSON number (JSON has no NaN/Inf; those become
/// null).
fn json_number(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        String::from("null")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table1_counts() -> Counts {
        // bit 0 = q1 data, bit 1 = q2 ancilla.
        Counts::from_pairs(2, [(0b00, 938), (0b10, 27), (0b01, 24), (0b11, 11)])
    }

    #[test]
    fn table_rows_cover_all_patterns_in_order() {
        let t = OutcomeTable::from_counts(
            "Table 1",
            "q1q2",
            &table1_counts(),
            &[0, 1], // q1 printed first, ancilla q2 second
            |bits| format!("outcome {bits}"),
        );
        assert_eq!(t.rows.len(), 4);
        assert_eq!(t.rows[0].bits, "00");
        assert_eq!(t.rows[3].bits, "11");
        // 0b00 key renders "00": 93.8%.
        assert!((t.rows[0].percent - 93.8).abs() < 1e-9);
        // key 0b10 (ancilla=1, q1=0) renders "01" in q1q2 order: 2.7%.
        assert!((t.rows[1].percent - 2.7).abs() < 1e-9);
    }

    #[test]
    fn percentages_sum_to_hundred() {
        let t = OutcomeTable::from_counts("t", "b", &table1_counts(), &[0, 1], |_| String::new());
        let sum: f64 = t.rows.iter().map(|r| r.percent).sum();
        assert!((sum - 100.0).abs() < 1e-9);
    }

    #[test]
    fn render_is_aligned_and_complete() {
        let t = OutcomeTable::from_counts("Table X", "q1q2", &table1_counts(), &[0, 1], |b| {
            format!("m{b}")
        });
        let s = t.render();
        assert!(s.contains("Table X"));
        assert!(s.contains("93.80%"));
        assert!(s.contains("m00"));
    }

    #[test]
    fn comparison_shape_check() {
        assert!(Comparison::new("x", 0.285, 0.31).shape_holds());
        assert!(Comparison::new("x", 0.285, 0.04).shape_holds()); // same order-ish
        assert!(!Comparison::new("x", 0.285, -0.2).shape_holds()); // wrong sign
        assert!(!Comparison::new("x", 0.285, 9.0).shape_holds()); // 30x off
        assert!(Comparison::new("zero", 0.0, 0.0).shape_holds());
    }

    #[test]
    fn report_renders_sections() {
        let mut r = ExperimentReport::new("table1", "classical assertion");
        r.comparisons
            .push(Comparison::new("raw error", 0.035, 0.031));
        r.notes.push("calibration is era-ballpark".to_string());
        let s = r.render();
        assert!(s.contains("=== table1"));
        assert!(s.contains("shape ok"));
        assert!(s.contains("note: calibration"));
    }

    #[test]
    fn reports_serialize_to_json() {
        let mut r = ExperimentReport::new("fig6", "quirk classical");
        r.comparisons
            .push(Comparison::new("err \"rate\"", 0.5, 0.25));
        r.notes.push("line1\nline2".to_string());
        let json = r.to_json();
        assert!(json.contains("\"id\":\"fig6\""));
        assert!(json.contains("\"metric\":\"err \\\"rate\\\"\""));
        assert!(json.contains("\"line1\\nline2\""));
        assert!(json.contains("\"paper\":0.5"));
        assert!(json.contains("\"metrics\":[]"));
    }

    #[test]
    fn session_record_serializes_and_renders() {
        let mut r = ExperimentReport::new("table1", "classical assertion");
        assert!(r.to_json().contains("\"session\":null"));
        r.push_session(SessionRecord {
            backend: "density matrix (exact noisy)".to_string(),
            backend_kind: "density-matrix".to_string(),
            threads: Some(4),
            threads_effective: None,
            seed: None,
            shots: 8192,
            max_qubits: 3,
            plan: "fixed(8192)".to_string(),
            cache_capacity: 256,
            simd: "avx2".to_string(),
        });
        let json = r.to_json();
        // The requested override is recorded even though the exact
        // backend ignores it; the effective field says it didn't take.
        assert!(json.contains(
            "\"session\":{\"backend\":\"density matrix (exact noisy)\",\
             \"backend_kind\":\"density-matrix\",\"threads\":4,\
             \"threads_effective\":null,\
             \"seed\":null,\"shots\":8192,\"max_qubits\":3,\"plan\":\"fixed(8192)\",\
             \"cache_capacity\":256,\"simd\":\"avx2\"}"
        ));
        let text = r.render();
        assert!(text.contains("session: backend \"density matrix (exact noisy)\" (density-matrix)"));
        assert!(text.contains("max qubits 3"));
        assert!(text.contains("plan fixed(8192)"));
        assert!(text.contains("threads requested 4 (effective backend default)"));
        assert!(text.contains("seed requested backend default"));
        assert!(text.contains("simd \"avx2\""));

        let mut threaded = ExperimentReport::new("x", "y");
        threaded.push_session(SessionRecord {
            backend: "trajectory (noisy)".to_string(),
            backend_kind: "trajectory".to_string(),
            threads: Some(4),
            threads_effective: Some(4),
            seed: Some(17),
            shots: 100,
            max_qubits: 1024,
            plan: "sequential(alpha=0.05, min=64, max=100, tranche=32)".to_string(),
            cache_capacity: 8,
            simd: "scalar".to_string(),
        });
        assert!(threaded.to_json().contains("\"threads\":4"));
        assert!(threaded.to_json().contains("\"seed\":17"));
        assert!(threaded.to_json().contains("\"max_qubits\":1024"));
        assert!(threaded
            .to_json()
            .contains("\"backend_kind\":\"trajectory\""));
        assert!(threaded
            .to_json()
            .contains("\"plan\":\"sequential(alpha=0.05, min=64, max=100, tranche=32)\""));
    }

    #[test]
    fn session_telemetry_exports_the_standard_metrics() {
        let mut r = ExperimentReport::new("sweep", "telemetry");
        r.push_session_telemetry(&crate::session::SessionTelemetry {
            runs: 5,
            shots: 500,
            tranches: 9,
            early_stops: 2,
            cache_hits: 3,
            cache_misses: 1,
            prefix_hits: 2,
            batched_ops: 40,
            batch_passes: 10,
            pool_tasks: 20,
            pool_steals: 3,
            simd_backend: "scalar",
        });
        let json = r.to_json();
        assert!(json.contains("\"name\":\"program_cache_hit_rate\",\"value\":0.75"));
        assert!(json.contains("\"name\":\"prefix_hits\",\"value\":2"));
        assert!(json.contains("\"name\":\"session_runs\",\"value\":5"));
        assert!(json.contains("\"name\":\"session_shots\",\"value\":500"));
        assert!(json.contains("\"name\":\"session_tranches\",\"value\":9"));
        assert!(json.contains("\"name\":\"session_early_stops\",\"value\":2"));
        assert!(json.contains("\"name\":\"batched_ops\",\"value\":40"));
        assert!(json.contains("\"name\":\"batch_passes\",\"value\":10"));
        assert!(json.contains("\"name\":\"pool_tasks\",\"value\":20"));
        assert!(json.contains("\"name\":\"pool_steals\",\"value\":3"));
    }

    #[test]
    fn metrics_render_and_serialize() {
        let mut r = ExperimentReport::new("sweep", "cache telemetry");
        r.metrics.push(Metric::new("program_cache_hits", 7.0));
        r.push_cache_metrics(qsim::CacheStats {
            hits: 3,
            misses: 1,
            evictions: 0,
            entries: 1,
        });
        let json = r.to_json();
        assert!(json.contains("\"name\":\"program_cache_hits\",\"value\":7"));
        assert!(json.contains("\"name\":\"program_cache_hit_rate\",\"value\":0.75"));
        let text = r.render();
        assert!(text.contains("metrics:"));
        assert!(text.contains("program_cache_misses"));
    }
}
