//! Machine-checked versions of the paper's Section 3 proofs.
//!
//! Every claim in the derivations of Sections 3.1–3.3 is asserted against
//! the exact simulator: intermediate states, ancilla outcome
//! probabilities, disentanglement of the ancilla, and the projection
//! ("automatic correction") effects of measuring the ancilla.

use qassert::{theory, AssertingCircuit, Parity, SuperpositionBasis};
use qcircuit::{Gate, QuantumCircuit, QubitId};
use qmath::Complex;
use qsim::{DensityMatrix, StateVector};

fn q(i: u32) -> QubitId {
    QubitId::new(i)
}

/// Builds `a|0⟩ + b|1⟩` on qubit 0 of an n-qubit register via Ry.
fn prepare_ry(n: usize, theta: f64) -> StateVector {
    let mut psi = StateVector::zero_state(n);
    psi.apply_gate(&Gate::Ry(theta), &[q(0)]).unwrap();
    psi
}

// ------------------------- Section 3.1 ---------------------------------

/// |ψ1⟩ = |ψ⟩⊗|0⟩ and |ψ2⟩ = a|00⟩ + b|11⟩: the CNOT entangles the
/// ancilla exactly as the proof states.
#[test]
fn s31_cnot_produces_entangled_intermediate_state() {
    let theta = 1.1f64;
    let (a, b) = ((theta / 2.0).cos(), (theta / 2.0).sin());
    let mut psi = prepare_ry(2, theta);
    psi.apply_gate(&Gate::Cx, &[q(0), q(1)]).unwrap();
    // amplitudes: index 0b00 → a, 0b11 → b, others 0.
    assert!(psi.amplitude(0b00).approx_eq(Complex::real(a), 1e-12));
    assert!(psi.amplitude(0b11).approx_eq(Complex::real(b), 1e-12));
    assert!(psi.amplitude(0b01).norm() < 1e-12);
    assert!(psi.amplitude(0b10).norm() < 1e-12);
}

/// Classical inputs: ancilla deterministically reproduces the qubit, so
/// measuring it flags exactly the (ψ == |0⟩) violations.
#[test]
fn s31_classical_inputs_give_deterministic_ancilla() {
    for (input_one, expected_error) in [(false, false), (true, true)] {
        let mut base = QuantumCircuit::new(1, 0);
        if input_one {
            base.x(0).unwrap();
        }
        let mut ac = AssertingCircuit::new(base);
        ac.assert_classical([0], [false]).unwrap();
        let dist = qsim::DensityMatrixBackend::ideal()
            .exact_distribution(ac.circuit())
            .unwrap();
        let p_error = dist.probability(1); // assertion clbit is bit 0
        assert!((p_error - f64::from(u8::from(expected_error))).abs() < 1e-12);
    }
}

/// Superposition input: P(error) = |b|² (the proof's probability
/// estimate), matching `theory::classical_error_probability`.
#[test]
fn s31_error_probability_matches_born_rule() {
    for theta in [0.0f64, 0.4, 1.0, std::f64::consts::FRAC_PI_2, 2.5] {
        let (a, b) = ((theta / 2.0).cos(), (theta / 2.0).sin());
        let mut base = QuantumCircuit::new(1, 0);
        base.ry(theta, 0).unwrap();
        let mut ac = AssertingCircuit::new(base);
        ac.assert_classical([0], [false]).unwrap();
        let dist = qsim::DensityMatrixBackend::ideal()
            .exact_distribution(ac.circuit())
            .unwrap();
        let predicted = theory::classical_error_probability(Complex::real(a), Complex::real(b));
        assert!(
            (dist.probability(1) - predicted).abs() < 1e-10,
            "theta={theta}"
        );
    }
}

/// The projection effect (Fig. 6): passing the check forces a
/// superposed qubit into |0⟩ — "the proposed circuit may have
/// automatically corrected the qubit".
#[test]
fn s31_passing_check_projects_qubit_to_zero() {
    let mut psi = prepare_ry(2, 1.3);
    psi.apply_gate(&Gate::Cx, &[q(0), q(1)]).unwrap();
    // Post-select the ancilla on 0 (QUIRK's post-select operator).
    psi.post_select(q(1), false).unwrap();
    assert!(psi.probability_of_one(q(0)).unwrap() < 1e-12);
    // And on assertion error, the qubit is |1⟩.
    let mut psi = prepare_ry(2, 1.3);
    psi.apply_gate(&Gate::Cx, &[q(0), q(1)]).unwrap();
    psi.post_select(q(1), true).unwrap();
    assert!((psi.probability_of_one(q(0)).unwrap() - 1.0).abs() < 1e-12);
}

/// Asserting (ψ == |1⟩) by initializing the ancilla to |1⟩ (paper:
/// "If we initialize the ancilla qubit to be |1⟩, the same circuit
/// asserts (|ψ⟩ == |1⟩)").
#[test]
fn s31_ancilla_initialized_one_asserts_one() {
    let mut base = QuantumCircuit::new(1, 0);
    base.x(0).unwrap();
    let mut ac = AssertingCircuit::new(base);
    ac.assert_classical([0], [true]).unwrap();
    let dist = qsim::DensityMatrixBackend::ideal()
        .exact_distribution(ac.circuit())
        .unwrap();
    assert!((dist.probability(0) - 1.0).abs() < 1e-12); // never fires
}

// ------------------------- Section 3.2 ---------------------------------

/// Entangled input a|00⟩+b|11⟩: |ψ3⟩ = |ψ⟩⊗|0⟩ — the ancilla
/// disentangles and the tested state is unaffected.
#[test]
fn s32_entangled_input_leaves_ancilla_unentangled_and_state_intact() {
    let theta = 0.9f64;
    // Prepare a|00⟩ + b|11⟩ with a = cos(θ/2).
    let mut psi = StateVector::zero_state(3);
    psi.apply_gate(&Gate::Ry(theta), &[q(0)]).unwrap();
    psi.apply_gate(&Gate::Cx, &[q(0), q(1)]).unwrap();
    let reference = psi.clone();

    // Parity check into ancilla q2 (two CNOTs).
    psi.apply_gate(&Gate::Cx, &[q(0), q(2)]).unwrap();
    psi.apply_gate(&Gate::Cx, &[q(1), q(2)]).unwrap();

    // Ancilla must be exactly |0⟩ and unentangled: the full state equals
    // the reference (which has the ancilla in |0⟩).
    assert!((psi.fidelity(&reference).unwrap() - 1.0).abs() < 1e-12);
    // Reduced ancilla state is pure |0⟩⟨0|.
    let rho = DensityMatrix::from_statevector(&psi);
    let anc = rho.trace_out(&[q(0), q(1)]).unwrap();
    assert!((anc.get(0, 0).re - 1.0).abs() < 1e-12);
    assert!((anc.purity() - 1.0).abs() < 1e-12);
}

/// Non-entangled input a|00⟩+b|11⟩+c|10⟩+d|01⟩: P(error) = |c|²+|d|²,
/// and each ancilla outcome forces the state into the corresponding
/// entangled subspace — the proof's |ψ3⟩ projection claims.
#[test]
fn s32_unentangled_input_probabilities_and_forcing() {
    // Product state (α|0⟩+β|1⟩)⊗(γ|0⟩+δ|1⟩) — generically unentangled.
    let mut psi = StateVector::zero_state(3);
    psi.apply_gate(&Gate::Ry(0.7), &[q(0)]).unwrap();
    psi.apply_gate(&Gate::Ry(1.9), &[q(1)]).unwrap();
    let a = psi.amplitude(0b00);
    let b = psi.amplitude(0b11);
    let c = psi.amplitude(0b01); // q0=1, q1=0 → the paper's |10⟩ term
    let d = psi.amplitude(0b10);

    psi.apply_gate(&Gate::Cx, &[q(0), q(2)]).unwrap();
    psi.apply_gate(&Gate::Cx, &[q(1), q(2)]).unwrap();

    let predicted = theory::entanglement_error_probability(a, b, c, d);
    let p1 = psi.probability_of_one(q(2)).unwrap();
    assert!((p1 - predicted).abs() < 1e-10);

    // Outcome 0 forces a'|00⟩ + b'|11⟩.
    let mut pass = psi.clone();
    pass.post_select(q(2), false).unwrap();
    assert!(pass.amplitude(0b001).norm() < 1e-10);
    assert!(pass.amplitude(0b010).norm() < 1e-10);
    // Outcome 1 forces c'|10⟩ + d'|01⟩ (with the ancilla bit set).
    let mut fail = psi.clone();
    fail.post_select(q(2), true).unwrap();
    assert!(fail.amplitude(0b100).norm() < 1e-10);
    assert!(fail.amplitude(0b111).norm() < 1e-10);
}

/// Odd parity class: ancilla initialized |1⟩ asserts a|01⟩+b|10⟩.
#[test]
fn s32_odd_parity_assertion_accepts_anticorrelated_pairs() {
    // Prepare (|01⟩ + |10⟩)/√2.
    let mut base = QuantumCircuit::new(2, 0);
    base.h(0).unwrap().cx(0, 1).unwrap().x(1).unwrap();
    let mut ac = AssertingCircuit::new(base);
    ac.assert_entangled([0, 1], Parity::Odd).unwrap();
    let dist = qsim::DensityMatrixBackend::ideal()
        .exact_distribution(ac.circuit())
        .unwrap();
    assert!((dist.probability(0) - 1.0).abs() < 1e-12);
}

/// The even-CNOT rule (Fig. 4): with an odd number of CNOTs the ancilla
/// *remains entangled* with the qubits under test, which "would alter
/// the functionality of subsequent computations"; with the even count it
/// disentangles.
#[test]
fn s32_even_cnot_rule_on_three_qubits() {
    let ghz3 = |extra_cnots: &[u32]| {
        let mut psi = StateVector::zero_state(4);
        psi.apply_gate(&Gate::H, &[q(0)]).unwrap();
        psi.apply_gate(&Gate::Cx, &[q(0), q(1)]).unwrap();
        psi.apply_gate(&Gate::Cx, &[q(0), q(2)]).unwrap();
        for &ctl in extra_cnots {
            psi.apply_gate(&Gate::Cx, &[q(ctl), q(3)]).unwrap();
        }
        DensityMatrix::from_statevector(&psi)
    };

    // Odd (3 CNOTs): data subsystem becomes mixed — entangled ancilla.
    let odd = ghz3(&[0, 1, 2]);
    let data_odd = odd.trace_out(&[q(3)]).unwrap();
    assert!(data_odd.purity() < 0.9, "purity {}", data_odd.purity());

    // Even (4 CNOTs, Fig. 4): ancilla disentangles, data stays pure.
    let even = ghz3(&[0, 1, 2, 2]);
    let data_even = even.trace_out(&[q(3)]).unwrap();
    assert!((data_even.purity() - 1.0).abs() < 1e-10);
    let anc_even = even.trace_out(&[q(0), q(1), q(2)]).unwrap();
    assert!((anc_even.get(0, 0).re - 1.0).abs() < 1e-10);
}

/// The instrumenter applies the even-count rule automatically for GHZ(3).
#[test]
fn s32_instrumented_ghz3_assertion_is_silent_and_preserves_state() {
    let mut ac = AssertingCircuit::new(qcircuit::library::ghz(3));
    ac.assert_entangled([0, 1, 2], Parity::Even).unwrap();
    let dist = qsim::DensityMatrixBackend::ideal()
        .exact_distribution(ac.circuit())
        .unwrap();
    assert!((dist.probability(0) - 1.0).abs() < 1e-12);
}

// ------------------------- Section 3.3 ---------------------------------

/// Intermediate state |ψ4⟩ = ½[(a+b)|00⟩+(a−b)|01⟩+(a+b)|10⟩+(a−b)|11⟩]
/// — the proof's amplitude bookkeeping, checked exactly.
#[test]
fn s33_psi4_amplitudes_match_derivation() {
    let theta = 0.8f64;
    let (a, b) = ((theta / 2.0).cos(), (theta / 2.0).sin());
    let mut psi = prepare_ry(2, theta);
    // Fig. 5 circuit: CX(q→anc), H⊗H, CX(q→anc).
    psi.apply_gate(&Gate::Cx, &[q(0), q(1)]).unwrap();
    psi.apply_gate(&Gate::H, &[q(0)]).unwrap();
    psi.apply_gate(&Gate::H, &[q(1)]).unwrap();
    psi.apply_gate(&Gate::Cx, &[q(0), q(1)]).unwrap();

    // Paper's |xy⟩ = |qubit, ancilla⟩; our index bit0 = qubit, bit1 = anc.
    let plus = Complex::real((a + b) / 2.0);
    let minus = Complex::real((a - b) / 2.0);
    assert!(psi.amplitude(0b00).approx_eq(plus, 1e-12)); // |00⟩
    assert!(psi.amplitude(0b01).approx_eq(plus, 1e-12)); // qubit=1, anc=0 → |10⟩
    assert!(psi.amplitude(0b10).approx_eq(minus, 1e-12)); // |01⟩
    assert!(psi.amplitude(0b11).approx_eq(minus, 1e-12)); // |11⟩
}

/// |+⟩ input: ancilla always 0, qubit stays |+⟩, ancilla unentangled.
#[test]
fn s33_plus_state_passes_silently_and_survives() {
    let mut psi = StateVector::zero_state(2);
    psi.apply_gate(&Gate::H, &[q(0)]).unwrap();
    let reference = psi.clone();
    psi.apply_gate(&Gate::Cx, &[q(0), q(1)]).unwrap();
    psi.apply_gate(&Gate::H, &[q(0)]).unwrap();
    psi.apply_gate(&Gate::H, &[q(1)]).unwrap();
    psi.apply_gate(&Gate::Cx, &[q(0), q(1)]).unwrap();
    assert!(psi.probability_of_one(q(1)).unwrap() < 1e-12);
    assert!((psi.fidelity(&reference).unwrap() - 1.0).abs() < 1e-12);
}

/// |−⟩ input: ancilla always 1 (which the instrumenter's Minus basis
/// maps back to "no error").
#[test]
fn s33_minus_state_drives_ancilla_to_one() {
    let mut psi = StateVector::zero_state(2);
    psi.apply_gate(&Gate::X, &[q(0)]).unwrap();
    psi.apply_gate(&Gate::H, &[q(0)]).unwrap(); // |−⟩
    psi.apply_gate(&Gate::Cx, &[q(0), q(1)]).unwrap();
    psi.apply_gate(&Gate::H, &[q(0)]).unwrap();
    psi.apply_gate(&Gate::H, &[q(1)]).unwrap();
    psi.apply_gate(&Gate::Cx, &[q(0), q(1)]).unwrap();
    assert!((psi.probability_of_one(q(1)).unwrap() - 1.0).abs() < 1e-12);

    // And the instrumented Minus assertion reports no error.
    let mut base = QuantumCircuit::new(1, 0);
    base.x(0).unwrap();
    base.h(0).unwrap();
    let mut ac = AssertingCircuit::new(base);
    ac.assert_superposition(0, SuperpositionBasis::Minus)
        .unwrap();
    let dist = qsim::DensityMatrixBackend::ideal()
        .exact_distribution(ac.circuit())
        .unwrap();
    assert!((dist.probability(0) - 1.0).abs() < 1e-12);
}

/// Arbitrary real input: P(0) = (2+4ab)/4, P(1) = (2−4ab)/4, the
/// derivation's probability formulas.
#[test]
fn s33_outcome_probabilities_match_formula_across_sweep() {
    for theta in [
        0.0f64,
        0.3,
        0.9,
        std::f64::consts::FRAC_PI_2,
        2.2,
        std::f64::consts::PI,
        4.5,
    ] {
        let (a, b) = ((theta / 2.0).cos(), (theta / 2.0).sin());
        let mut psi = prepare_ry(2, theta);
        psi.apply_gate(&Gate::Cx, &[q(0), q(1)]).unwrap();
        psi.apply_gate(&Gate::H, &[q(0)]).unwrap();
        psi.apply_gate(&Gate::H, &[q(1)]).unwrap();
        psi.apply_gate(&Gate::Cx, &[q(0), q(1)]).unwrap();
        let (p0, p1) = theory::superposition_outcome_probabilities(a, b);
        let measured_p1 = psi.probability_of_one(q(1)).unwrap();
        assert!((measured_p1 - p1).abs() < 1e-10, "theta={theta}");
        assert!((1.0 - measured_p1 - p0).abs() < 1e-10, "theta={theta}");
    }
}

/// The forcing effect (Fig. 7): whatever the ancilla outcome, the tested
/// qubit ends in an equal-magnitude superposition, |k| = 1/√2.
#[test]
fn s33_qubit_is_forced_into_equal_magnitude_superposition() {
    for outcome in [false, true] {
        // Classical input |0⟩ — the buggy case of Fig. 7.
        let mut psi = StateVector::zero_state(2);
        psi.apply_gate(&Gate::Cx, &[q(0), q(1)]).unwrap();
        psi.apply_gate(&Gate::H, &[q(0)]).unwrap();
        psi.apply_gate(&Gate::H, &[q(1)]).unwrap();
        psi.apply_gate(&Gate::Cx, &[q(0), q(1)]).unwrap();
        psi.post_select(q(1), outcome).unwrap();
        let p1 = psi.probability_of_one(q(0)).unwrap();
        let k = theory::superposition_forced_magnitude();
        assert!(
            (p1 - k * k).abs() < 1e-10,
            "outcome {outcome}: P(1) = {p1}, expected {}",
            k * k
        );
    }
}

/// Classical inputs flag 50% of the time — the "equal probability of
/// 50% being |0⟩ or |1⟩" indicator for classical states.
#[test]
fn s33_classical_input_fires_half_the_time() {
    for input_one in [false, true] {
        let mut base = QuantumCircuit::new(1, 0);
        if input_one {
            base.x(0).unwrap();
        }
        let mut ac = AssertingCircuit::new(base);
        ac.assert_superposition(0, SuperpositionBasis::Plus)
            .unwrap();
        let dist = qsim::DensityMatrixBackend::ideal()
            .exact_distribution(ac.circuit())
            .unwrap();
        assert!((dist.probability(1) - 0.5).abs() < 1e-12);
    }
}
