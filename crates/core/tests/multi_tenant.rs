//! Concurrent multi-tenant sessions over *shared* infrastructure: N
//! tenant threads, each with its own [`AssertionSession`], all wired
//! to one [`ProgramCache`] and one [`PrefixRegistry`] (the serving
//! topology of `qassert-serve`).
//!
//! Pins two contracts:
//!
//! 1. **Bit-identity** — per-tenant counts and verdicts are identical
//!    to the same tenant running serially on private infrastructure.
//!    Sharing compiled programs and prefixes changes *work*, never
//!    *results*.
//! 2. **Exact telemetry attribution** — each session's counters
//!    reflect only its own runs (tenant families are structurally
//!    disjoint, so per-tenant telemetry must match the serial
//!    reference field for field), and the shared components' global
//!    counters are exactly the sum of the per-session ones: no event
//!    is lost, duplicated, or attributed to a bystander session.

use qassert::{
    AssertingCircuit, AssertionSession, AssertionVerdict, Parity, SessionTelemetry, ShotPlan,
};
use qcircuit::QuantumCircuit;
use qsim::{PrefixRegistry, ProgramCache, StatevectorBackend};
use std::sync::Arc;

const TENANTS: usize = 4;
/// Staged circuits per tenant; circuit k+1 extends circuit k exactly,
/// so a chain produces `CHAIN - 1` prefix reuses on first sight.
const CHAIN: usize = 3;
/// Each tenant runs its chain twice: the second pass is all cache
/// hits (and zero new prefix events).
const PASSES: usize = 2;
const SHOTS: u64 = 256;

/// Tenant `t`'s circuit family: a prefix-extension chain whose
/// rotation angles depend on the tenant, so no circuit is shared
/// *across* tenants — any cross-tenant cache or prefix event would be
/// a key collision, and any cross-tenant telemetry would show up as a
/// per-tenant mismatch against the serial reference.
fn tenant_circuits(t: usize) -> Vec<AssertingCircuit> {
    (1..=CHAIN)
        .map(|stages| {
            let mut ac = AssertingCircuit::new(QuantumCircuit::new(2, 0));
            for j in 0..stages {
                let theta = 0.17 + t as f64 * 0.59 + j as f64 * 0.13;
                ac.circuit_mut().ry(theta, 0).unwrap();
                ac.circuit_mut().cx(0, 1).unwrap();
                ac.assert_entangled([0, 1], Parity::Even).unwrap();
                ac.circuit_mut().cx(0, 1).unwrap();
            }
            ac
        })
        .collect()
}

/// What one tenant observed: per-run kept counts and verdicts, plus
/// the session's own telemetry.
struct TenantResult {
    counts: Vec<Vec<(String, u64)>>,
    verdicts: Vec<Vec<AssertionVerdict>>,
    telemetry: SessionTelemetry,
}

fn run_tenant<'c, F>(t: usize, configure: F) -> TenantResult
where
    F: FnOnce(AssertionSession<'c, StatevectorBackend>) -> AssertionSession<'c, StatevectorBackend>,
{
    let session = configure(
        AssertionSession::new(StatevectorBackend::new())
            .seed(0xA5A5 + t as u64)
            .shot_plan(ShotPlan::Fixed(SHOTS)),
    );
    let circuits = tenant_circuits(t);
    let mut counts = Vec::new();
    let mut verdicts = Vec::new();
    for _ in 0..PASSES {
        for circuit in &circuits {
            let outcome = session.run(circuit).expect("tenant run");
            counts.push(outcome.kept.to_sorted_vec());
            verdicts.push(outcome.verdicts.iter().map(|v| v.verdict).collect());
        }
    }
    TenantResult {
        counts,
        verdicts,
        telemetry: session.telemetry(),
    }
}

#[test]
fn concurrent_tenants_on_shared_infrastructure_match_serial_exactly() {
    // Serial reference: every tenant on private infrastructure.
    let serial: Vec<TenantResult> = (0..TENANTS)
        .map(|t| {
            let cache = ProgramCache::new(64);
            run_tenant(t, |session| session.cache(&cache))
        })
        .collect();

    // Concurrent: one cache, one prefix registry, N tenant threads.
    let cache = ProgramCache::new(64);
    let registry = Arc::new(PrefixRegistry::new());
    let concurrent: Vec<TenantResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..TENANTS)
            .map(|t| {
                let cache = &cache;
                let registry = Arc::clone(&registry);
                scope.spawn(move || {
                    run_tenant(t, |session| session.cache(cache).prefix_registry(registry))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("tenant thread"))
            .collect()
    });

    let runs_per_tenant = (CHAIN * PASSES) as u64;
    for (t, (concurrent, serial)) in concurrent.iter().zip(&serial).enumerate() {
        // Contract 1: bit-identical results.
        assert_eq!(
            concurrent.counts, serial.counts,
            "tenant {t}: kept counts diverged from the serial reference"
        );
        assert_eq!(
            concurrent.verdicts, serial.verdicts,
            "tenant {t}: verdicts diverged from the serial reference"
        );

        // Contract 2a: per-session telemetry attributes only this
        // tenant's events, exactly as if it had run alone.
        let (c, s) = (&concurrent.telemetry, &serial.telemetry);
        assert_eq!(c.runs, runs_per_tenant, "tenant {t}: runs");
        assert_eq!(c.shots, runs_per_tenant * SHOTS, "tenant {t}: shots");
        assert_eq!(c.tranches, s.tranches, "tenant {t}: tranches");
        assert_eq!(c.early_stops, s.early_stops, "tenant {t}: early_stops");
        assert_eq!(c.cache_hits, s.cache_hits, "tenant {t}: cache_hits");
        assert_eq!(c.cache_misses, s.cache_misses, "tenant {t}: cache_misses");
        assert_eq!(c.prefix_hits, s.prefix_hits, "tenant {t}: prefix_hits");
        // The chain shape makes the exact values predictable too.
        assert_eq!(
            c.cache_misses, CHAIN as u64,
            "tenant {t}: one miss per circuit"
        );
        assert_eq!(
            c.cache_hits,
            (CHAIN * (PASSES - 1)) as u64,
            "tenant {t}: later passes all hit"
        );
        assert_eq!(
            c.prefix_hits,
            (CHAIN - 1) as u64,
            "tenant {t}: each extension reuses its predecessor"
        );
    }

    // Contract 2b: the shared components saw exactly the sum of what
    // the sessions report — nothing lost, nothing double-counted.
    let stats = cache.stats();
    let sum = |f: fn(&SessionTelemetry) -> u64| -> u64 {
        concurrent.iter().map(|r| f(&r.telemetry)).sum()
    };
    assert_eq!(stats.hits, sum(|t| t.cache_hits), "shared cache hits");
    assert_eq!(stats.misses, sum(|t| t.cache_misses), "shared cache misses");
    assert_eq!(
        registry.hits(),
        sum(|t| t.prefix_hits),
        "shared prefix registry hits"
    );
    assert_eq!(
        stats.entries,
        TENANTS * CHAIN,
        "disjoint tenant families must not collide in the cache"
    );
}
