//! Stabilizer-backend session integration: [`AssertionSession`] over
//! [`qsim::StabilizerBackend`] composes with every execution feature
//! the amplitude backends already pinned — fixed and sequential shot
//! plans, serial and parallel sweeps on explicit pools of 0–3 workers,
//! prefix-extension chains, and Pauli noise — with the same
//! bit-identity contract (scheduling decides *where* a point runs,
//! never *what* it computes).
//!
//! The suite also pins the failure mode unique to this backend: a
//! compile-eligible but Clifford-*ineligible* program surfaces
//! [`qsim::SimError::NotClifford`] through [`AssertionSession::run`]
//! before any shot executes, leaving no partial run/shot telemetry.

use proptest::prelude::*;
use qassert::{
    AssertError, AssertingCircuit, AssertionSession, AssertionVerdict, FilterPolicy, Parity,
    SessionTelemetry, ShotPlan, StopReason, SweepOutcome, SweepPolicy,
};
use qcircuit::{library, QuantumCircuit};
use qsim::{Backend, BackendKind, ShardPool, SimError, StabilizerBackend, StatevectorBackend};

/// Clifford circuit families for generated sweeps (the instrumentation
/// itself adds only CX/H, so an all-Clifford base stays eligible).
#[derive(Clone, Copy, Debug)]
enum Family {
    /// One Bell assertion repeated at every point (cache-hit heavy).
    Repeated,
    /// Point k carries k+1 Bell stages; each point extends its
    /// predecessor exactly (prefix-extension chains through the
    /// Clifford-composition path of `compile_extension`).
    Staged,
    /// Distinct per-point circuits with a mid-circuit measurement.
    MidMeasure,
}

const FAMILIES: [Family; 3] = [Family::Repeated, Family::Staged, Family::MidMeasure];

fn bell_assertion() -> AssertingCircuit {
    let mut ac = AssertingCircuit::new(library::bell());
    ac.assert_entangled([0, 1], Parity::Even).unwrap();
    ac.measure_data();
    ac
}

fn family_circuits(family: Family, points: usize) -> Vec<AssertingCircuit> {
    match family {
        Family::Repeated => (0..points).map(|_| bell_assertion()).collect(),
        Family::Staged => {
            let staged = |stages: usize| {
                let mut ac = AssertingCircuit::new(QuantumCircuit::new(2, 0));
                for _ in 0..stages {
                    ac.circuit_mut().h(0).unwrap();
                    ac.circuit_mut().cx(0, 1).unwrap();
                    ac.assert_entangled([0, 1], Parity::Even).unwrap();
                    ac.circuit_mut().cx(0, 1).unwrap();
                }
                ac
            };
            (1..=points).map(staged).collect()
        }
        Family::MidMeasure => (0..points)
            .map(|i| {
                // Vary the preparation per point with Clifford gates
                // only; the mid-circuit measurement keeps the random
                // collapse path and per-shot RNG draws in play.
                let mut prep = QuantumCircuit::new(2, 1);
                prep.h(0).unwrap();
                if i % 2 == 1 {
                    prep.s(0).unwrap();
                    prep.h(0).unwrap();
                }
                prep.measure(0, 0).unwrap();
                prep.cx(0, 1).unwrap();
                let mut ac = AssertingCircuit::new(prep);
                ac.assert_classical([1], [i % 3 == 2]).unwrap();
                ac.measure_data();
                ac
            })
            .collect(),
    }
}

/// Deterministic telemetry fields only — pool task/steal splits are
/// scheduler-dependent (see `sweep_equivalence.rs`).
fn assert_telemetry_eq(parallel: &SessionTelemetry, serial: &SessionTelemetry, context: &str) {
    assert_eq!(parallel.runs, serial.runs, "{context}: runs");
    assert_eq!(parallel.shots, serial.shots, "{context}: shots");
    assert_eq!(parallel.tranches, serial.tranches, "{context}: tranches");
    assert_eq!(
        parallel.early_stops, serial.early_stops,
        "{context}: early_stops"
    );
    assert_eq!(
        parallel.cache_hits, serial.cache_hits,
        "{context}: cache_hits"
    );
    assert_eq!(
        parallel.cache_misses, serial.cache_misses,
        "{context}: cache_misses"
    );
    assert_eq!(
        parallel.prefix_hits, serial.prefix_hits,
        "{context}: prefix_hits"
    );
}

fn assert_outcomes_eq(parallel: &SweepOutcome, serial: &SweepOutcome, context: &str) {
    assert_eq!(parallel.len(), serial.len(), "{context}: point count");
    for (p, (a, b)) in parallel
        .outcomes()
        .iter()
        .zip(serial.outcomes())
        .enumerate()
    {
        assert_eq!(a.raw.counts, b.raw.counts, "{context}: point {p} raw");
        assert_eq!(
            a.raw.shots_discarded, b.raw.shots_discarded,
            "{context}: point {p} discarded"
        );
        assert_eq!(a.kept, b.kept, "{context}: point {p} kept");
        assert_eq!(a.data_kept, b.data_kept, "{context}: point {p} data_kept");
        assert_eq!(
            a.assertion_error_rate.to_bits(),
            b.assertion_error_rate.to_bits(),
            "{context}: point {p} error rate"
        );
        assert_eq!(a.plan, b.plan, "{context}: point {p} plan trace");
        assert_eq!(
            a.verdicts.len(),
            b.verdicts.len(),
            "{context}: point {p} verdict count"
        );
        for (x, y) in a.verdicts.iter().zip(&b.verdicts) {
            assert_eq!(x.verdict, y.verdict, "{context}: point {p} verdict");
            assert_eq!(x.shots, y.shots, "{context}: point {p} verdict shots");
            assert_eq!(x.fired, y.fired, "{context}: point {p} verdict fired");
        }
    }
    assert_telemetry_eq(&parallel.telemetry, &serial.telemetry, context);
}

/// One generated configuration, serial reference vs parallel on an
/// explicit pool of `workers`, fresh private caches, bit-identity.
fn check_stabilizer(
    backend: &StabilizerBackend,
    family: Family,
    points: usize,
    plan: ShotPlan,
    threads: usize,
    seed: Option<u64>,
    workers: usize,
) {
    fn configure<'c, 'b>(
        session: AssertionSession<'c, &'b StabilizerBackend>,
        plan: ShotPlan,
        threads: usize,
        seed: Option<u64>,
    ) -> AssertionSession<'c, &'b StabilizerBackend> {
        let session = session.private_cache(32).shot_plan(plan).threads(threads);
        match seed {
            Some(s) => session.seed(s),
            None => session,
        }
    }
    let serial = configure(AssertionSession::new(backend), plan, threads, seed)
        .sweep_policy(SweepPolicy::Serial)
        .run_sweep(family_circuits(family, points))
        .unwrap();
    let pool = ShardPool::new(workers);
    let parallel = configure(AssertionSession::new(backend), plan, threads, seed)
        .sweep_policy(SweepPolicy::Parallel)
        .pool(&pool)
        .run_sweep(family_circuits(family, points))
        .unwrap();
    let context = format!(
        "{family:?} x{points}, plan {plan}, {threads} threads, seed {seed:?}, {workers} workers"
    );
    assert_outcomes_eq(&parallel, &serial, &context);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn stabilizer_sweeps_are_policy_independent(
        family in 0usize..3,
        points in 1usize..6,
        shots in 1u64..160,
        threads in 1usize..4,
        raw_seed in any::<u64>(),
        with_seed in any::<bool>(),
        noisy in any::<bool>(),
        workers in 0usize..4,
    ) {
        let backend = if noisy {
            // Depolarizing + readout: lowers to stochastic Pauli
            // injections, so the program stays Clifford-eligible.
            let noise = qnoise::presets::uniform(3, 0.008, 0.03, 0.015).unwrap();
            StabilizerBackend::new(noise)
        } else {
            StabilizerBackend::ideal()
        }
        .with_seed(raw_seed ^ 0x51ab);
        check_stabilizer(
            &backend,
            FAMILIES[family],
            points,
            ShotPlan::Fixed(shots),
            threads,
            with_seed.then_some(raw_seed),
            workers,
        );
    }

    #[test]
    fn sequential_stabilizer_sweeps_are_policy_independent(
        family in 0usize..3,
        points in 1usize..5,
        min_shots in 1u64..64,
        extra_budget in 0u64..256,
        tranche in 1u64..48,
        threads in 1usize..4,
        raw_seed in any::<u64>(),
        workers in 0usize..4,
    ) {
        // Sequential stop points, plan traces, verdicts, and counts are
        // pure functions of (seed, plan, threads) on the tableau path
        // too — bit-identical under every policy and worker count.
        let plan = ShotPlan::Sequential {
            alpha: 0.05,
            min_shots,
            max_shots: min_shots + extra_budget,
            tranche,
        };
        let noise = qnoise::presets::uniform(3, 0.01, 0.04, 0.02).unwrap();
        let backend = StabilizerBackend::new(noise).with_seed(raw_seed ^ 0xb5);
        check_stabilizer(
            &backend,
            FAMILIES[family],
            points,
            plan,
            threads,
            Some(raw_seed),
            workers,
        );
    }
}

#[test]
fn verdicts_match_statevector_on_clear_cut_assertions() {
    // Clear-cut assertion outcomes are backend-independent even though
    // the RNG streams intentionally differ: a holding assertion never
    // fires and a violated one always fires, so firing counts, error
    // rates, and sequential verdicts agree exactly.
    let violated = || {
        let mut ac = AssertingCircuit::new(library::bell());
        ac.assert_entangled([0, 1], Parity::Odd).unwrap();
        ac.measure_data();
        ac
    };
    let stabilizer = StabilizerBackend::ideal().with_seed(11);
    let statevector = StatevectorBackend::new().with_seed(11);
    for (ac, expect, rate) in [
        (bell_assertion(), AssertionVerdict::Holds, 0.0),
        (violated(), AssertionVerdict::Violated, 1.0),
    ] {
        let run = |backend: &dyn Backend| {
            AssertionSession::new(backend)
                .private_cache(8)
                .shots(512)
                .filter_policy(FilterPolicy::AllowEmpty)
                .seed(3)
                .run(&ac)
                .unwrap()
        };
        let a = run(&stabilizer);
        let b = run(&statevector);
        for outcome in [&a, &b] {
            assert_eq!(outcome.assertion_error_rate, rate);
            assert_eq!(outcome.verdicts[0].verdict, expect);
        }
        assert_eq!(a.per_assertion[0].fired, b.per_assertion[0].fired);
        assert_eq!(a.verdicts[0].shots, b.verdicts[0].shots);
    }
}

#[test]
fn ineligible_program_errors_without_partial_telemetry() {
    // A T gate compiles fine (eligibility is carried as data on the
    // program), but executing it on the tableau backend must surface
    // the typed error through the session before any shot runs.
    let mut base = library::bell();
    base.t(0).unwrap();
    let mut ac = AssertingCircuit::new(base);
    ac.assert_entangled([0, 1], Parity::Even).unwrap();
    ac.measure_data();

    let session = AssertionSession::new(StabilizerBackend::ideal())
        .private_cache(8)
        .shots(64);
    let before = session.telemetry();
    let err = session.run(&ac).unwrap_err();
    match err {
        AssertError::Sim(SimError::NotClifford(block)) => {
            let rendered = block.to_string();
            assert!(rendered.contains('t'), "block names the gate: {rendered}");
        }
        other => panic!("expected NotClifford, got {other:?}"),
    }
    // Lowering happened (one cache miss) but nothing executed: no runs,
    // shots, or tranches were recorded.
    let delta = session.telemetry().since(&before);
    assert_eq!(delta.runs, 0, "no partial runs");
    assert_eq!(delta.shots, 0, "no partial shots");
    assert_eq!(delta.tranches, 0, "no partial tranches");
    assert_eq!(delta.cache_misses, 1);

    // The session stays fully usable for eligible programs.
    let outcome = session.run(&bell_assertion()).unwrap();
    assert_eq!(outcome.raw.counts.total(), 64);
}

#[test]
fn mid_sweep_ineligibility_propagates_under_both_policies() {
    let ineligible = || {
        let mut base = library::bell();
        base.t(1).unwrap();
        let mut ac = AssertingCircuit::new(base);
        ac.assert_entangled([0, 1], Parity::Even).unwrap();
        ac.measure_data();
        ac
    };
    for policy in [SweepPolicy::Serial, SweepPolicy::Parallel] {
        let session = AssertionSession::new(StabilizerBackend::ideal())
            .private_cache(8)
            .shots(64)
            .sweep_policy(policy);
        let before = session.telemetry();
        let result = session.run_sweep(vec![bell_assertion(), ineligible(), bell_assertion()]);
        assert!(
            matches!(result, Err(AssertError::Sim(SimError::NotClifford(_)))),
            "{policy:?}: ineligibility must surface as the typed error"
        );
        // Serial streams points in order: exactly the one point before
        // the failure ran. Parallel scheduling decides which of the two
        // eligible points completed first, but the failing point itself
        // never contributes runs or shots.
        let delta = session.telemetry().since(&before);
        assert!(delta.runs <= 2, "{policy:?}: runs {}", delta.runs);
        assert_eq!(delta.shots, delta.runs * 64, "{policy:?}");
        if policy == SweepPolicy::Serial {
            assert_eq!(delta.runs, 1, "serial streams in input order");
        }
        // The session recovers.
        let sweep = session
            .run_sweep(vec![bell_assertion(), bell_assertion()])
            .unwrap();
        assert_eq!(sweep.len(), 2);
    }
}

#[test]
fn ghz_parity_session_runs_at_1024_qubits() {
    // The scale the tentpole exists for: a 1,024-qubit GHZ state with
    // an even-parity assertion between the end qubits (1,025 qubits
    // once the ancilla is spliced in) runs through the full session
    // machinery — sequential plan, early stop, verdict — in tableau
    // memory an amplitude backend could never allocate.
    let mut ac = AssertingCircuit::new(library::ghz(1024));
    ac.assert_entangled([0, 1023], Parity::Even).unwrap();

    let session = AssertionSession::new(StabilizerBackend::ideal())
        .private_cache(4)
        .shot_plan(ShotPlan::Sequential {
            alpha: 0.05,
            min_shots: 64,
            max_shots: 4096,
            tranche: 64,
        })
        .seed(7)
        .threads(2);
    let outcome = session.run(&ac).unwrap();
    assert_eq!(outcome.plan.stop, StopReason::Decided);
    assert!(
        outcome.plan.shots_used < 4096,
        "a clean run stops early, used {}",
        outcome.plan.shots_used
    );
    assert_eq!(outcome.per_assertion[0].fired, 0);
    assert_eq!(outcome.verdicts[0].verdict, AssertionVerdict::Holds);
    assert_eq!(outcome.assertion_error_rate, 0.0);

    let t = session.telemetry();
    assert_eq!(t.runs, 1);
    assert_eq!(t.early_stops, 1);

    // The record identifies what produced these numbers: the stabilizer
    // backend, at the instrumented width.
    let record = session.record();
    assert_eq!(record.backend_kind, BackendKind::Stabilizer.as_str());
    assert_eq!(record.max_qubits, 1025);
    let json = format!(
        "{{\"backend_kind\":\"{}\",\"max_qubits\":{}}}",
        record.backend_kind, record.max_qubits
    );
    assert_eq!(
        json,
        "{\"backend_kind\":\"stabilizer\",\"max_qubits\":1025}"
    );
}
