//! Parallel-vs-serial sweep equivalence: the property suite proving
//! that [`AssertionSession::run_sweep`] under [`SweepPolicy::Parallel`]
//! produces per-point counts and telemetry **bit-identical** to
//! [`SweepPolicy::Serial`] — across all three backends, randomized
//! point counts, shot plans, thread counts, seeds, cache and
//! prefix-reuse configurations, and explicit pools of 0/1/N workers.
//!
//! This is the contract that makes the 2-D `points × shots` plan safe
//! to enable by default: scheduling decides only *where* a point runs,
//! never *what* it computes. Per-point seeds are pure functions of
//! `(session seed, point index)` (`qsim::sweep_point_seed`), shard
//! streams are pure functions of the point seed and shard index, and
//! lowering happens serially in input order under every policy — so
//! the only nondeterministic telemetry is the scheduling-dependent
//! pool-steal split, which the comparisons below exclude.
//!
//! The suite also covers the sweep edge cases: empty sweeps, single
//! points, a point whose circuit fails to lower mid-sweep, an
//! all-filtered point under both filter policies, and two sweeps
//! running concurrently on one shared session (the concurrent
//! `ProgramCache`/`PrefixRegistry` path).

use proptest::prelude::*;
use qassert::{
    AssertError, AssertingCircuit, AssertionSession, FilterPolicy, Parity, SessionTelemetry,
    ShotPlan, SweepOutcome, SweepPolicy,
};
use qcircuit::QuantumCircuit;
use qsim::{
    Backend, DensityMatrixBackend, ProgramCache, ShardPool, StatevectorBackend, TrajectoryBackend,
};

/// A family of instrumented circuits for one generated sweep.
#[derive(Clone, Copy, Debug)]
enum Family {
    /// One circuit repeated at every point (cache-hit heavy; identical
    /// circuits must still draw independent per-point streams under a
    /// session seed).
    Repeated,
    /// Distinct per-θ circuits (cache-miss heavy).
    Thetas,
    /// Each point extends the previous one by a stage + assertion
    /// (prefix-extension chains must survive any scheduling).
    Staged,
    /// Mid-circuit measurement defeats the statevector fast path, so
    /// points exercise the sharded per-shot path and nested pool tasks.
    MidMeasure,
}

const FAMILIES: [Family; 4] = [
    Family::Repeated,
    Family::Thetas,
    Family::Staged,
    Family::MidMeasure,
];

fn bell_assertion() -> AssertingCircuit {
    let mut ac = AssertingCircuit::new(qcircuit::library::bell());
    ac.assert_entangled([0, 1], Parity::Even).unwrap();
    ac.measure_data();
    ac
}

fn family_circuits(family: Family, points: usize) -> Vec<AssertingCircuit> {
    match family {
        Family::Repeated => (0..points).map(|_| bell_assertion()).collect(),
        Family::Thetas => (0..points)
            .map(|i| {
                let mut prep = QuantumCircuit::new(2, 0);
                prep.ry(0.2 + i as f64 * 0.41, 0).unwrap();
                prep.cx(0, 1).unwrap();
                let mut ac = AssertingCircuit::new(prep);
                ac.assert_entangled([0, 1], Parity::Even).unwrap();
                ac.measure_data();
                ac
            })
            .collect(),
        Family::Staged => {
            // Point k carries k+1 stages; every point past the first
            // extends its predecessor's instruction stream exactly, so
            // serial lowering records points-1 prefix reuses.
            let staged = |stages: usize| {
                let mut ac = AssertingCircuit::new(QuantumCircuit::new(2, 0));
                for _ in 0..stages {
                    ac.circuit_mut().h(0).unwrap();
                    ac.circuit_mut().cx(0, 1).unwrap();
                    ac.assert_entangled([0, 1], Parity::Even).unwrap();
                    ac.circuit_mut().cx(0, 1).unwrap();
                }
                ac
            };
            (1..=points).map(staged).collect()
        }
        Family::MidMeasure => (0..points)
            .map(|i| {
                let mut prep = QuantumCircuit::new(2, 1);
                prep.ry(0.3 + i as f64 * 0.29, 0).unwrap();
                prep.measure(0, 0).unwrap(); // defeats the fast path
                prep.cx(0, 1).unwrap();
                let mut ac = AssertingCircuit::new(prep);
                ac.assert_classical([1], [false]).unwrap();
                ac.measure_data();
                ac
            })
            .collect(),
    }
}

/// Asserts the deterministic telemetry fields equal; pool fields are
/// excluded (`pool_tasks` legitimately includes the whole-point tasks
/// only under `Parallel`, and the steal split is scheduler-dependent).
fn assert_telemetry_eq(parallel: &SessionTelemetry, serial: &SessionTelemetry, context: &str) {
    assert_eq!(parallel.runs, serial.runs, "{context}: runs");
    assert_eq!(parallel.shots, serial.shots, "{context}: shots");
    assert_eq!(parallel.tranches, serial.tranches, "{context}: tranches");
    assert_eq!(
        parallel.early_stops, serial.early_stops,
        "{context}: early_stops"
    );
    assert_eq!(
        parallel.cache_hits, serial.cache_hits,
        "{context}: cache_hits"
    );
    assert_eq!(
        parallel.cache_misses, serial.cache_misses,
        "{context}: cache_misses"
    );
    assert_eq!(
        parallel.prefix_hits, serial.prefix_hits,
        "{context}: prefix_hits"
    );
    assert_eq!(
        parallel.batched_ops, serial.batched_ops,
        "{context}: batched_ops"
    );
    assert_eq!(
        parallel.batch_passes, serial.batch_passes,
        "{context}: batch_passes"
    );
}

fn assert_outcomes_eq(parallel: &SweepOutcome, serial: &SweepOutcome, context: &str) {
    assert_eq!(parallel.len(), serial.len(), "{context}: point count");
    for (p, (a, b)) in parallel
        .outcomes()
        .iter()
        .zip(serial.outcomes())
        .enumerate()
    {
        assert_eq!(a.raw.counts, b.raw.counts, "{context}: point {p} raw");
        assert_eq!(
            a.raw.shots_discarded, b.raw.shots_discarded,
            "{context}: point {p} discarded"
        );
        assert_eq!(a.kept, b.kept, "{context}: point {p} kept");
        assert_eq!(a.data_raw, b.data_raw, "{context}: point {p} data_raw");
        assert_eq!(a.data_kept, b.data_kept, "{context}: point {p} data_kept");
        assert_eq!(
            a.assertion_error_rate.to_bits(),
            b.assertion_error_rate.to_bits(),
            "{context}: point {p} error rate"
        );
        assert_eq!(
            a.per_assertion.len(),
            b.per_assertion.len(),
            "{context}: point {p} per-assertion"
        );
        for (x, y) in a.per_assertion.iter().zip(&b.per_assertion) {
            assert_eq!(x.fired, y.fired, "{context}: point {p} fired");
        }
        assert_eq!(a.plan, b.plan, "{context}: point {p} plan trace");
        assert_eq!(
            a.verdicts.len(),
            b.verdicts.len(),
            "{context}: point {p} verdict count"
        );
        for (x, y) in a.verdicts.iter().zip(&b.verdicts) {
            assert_eq!(x.verdict, y.verdict, "{context}: point {p} verdict");
            assert_eq!(x.shots, y.shots, "{context}: point {p} verdict shots");
            assert_eq!(x.fired, y.fired, "{context}: point {p} verdict fired");
            assert_eq!(
                x.log_e_violated.to_bits(),
                y.log_e_violated.to_bits(),
                "{context}: point {p} e-value (violated)"
            );
            assert_eq!(
                x.log_e_holds.to_bits(),
                y.log_e_holds.to_bits(),
                "{context}: point {p} e-value (holds)"
            );
        }
    }
    assert_telemetry_eq(&parallel.telemetry, &serial.telemetry, context);
}

/// Runs one generated configuration on `backend` twice — serial
/// reference vs parallel on an explicit pool of `workers` — with fresh
/// private caches, and asserts bit-identity.
#[allow(clippy::too_many_arguments)]
fn check_backend<B: Backend + Sync>(
    backend: &B,
    family: Family,
    points: usize,
    plan: ShotPlan,
    threads: usize,
    seed: Option<u64>,
    prefix_reuse: bool,
    workers: usize,
) {
    fn configure<'c, B: Backend>(
        session: AssertionSession<'c, B>,
        plan: ShotPlan,
        threads: usize,
        prefix_reuse: bool,
        seed: Option<u64>,
    ) -> AssertionSession<'c, B> {
        let session = session
            .private_cache(32)
            .shot_plan(plan)
            .threads(threads)
            .prefix_reuse(prefix_reuse);
        match seed {
            Some(s) => session.seed(s),
            None => session,
        }
    }
    let serial = configure(
        AssertionSession::new(backend),
        plan,
        threads,
        prefix_reuse,
        seed,
    )
    .sweep_policy(SweepPolicy::Serial)
    .run_sweep(family_circuits(family, points))
    .unwrap();
    let pool = ShardPool::new(workers);
    let parallel = configure(
        AssertionSession::new(backend),
        plan,
        threads,
        prefix_reuse,
        seed,
    )
    .sweep_policy(SweepPolicy::Parallel)
    .pool(&pool)
    .run_sweep(family_circuits(family, points))
    .unwrap();
    let context = format!(
        "{family:?} x{points}, plan {plan}, {threads} threads, seed {seed:?}, \
         prefix {prefix_reuse}, {workers} workers"
    );
    assert_outcomes_eq(&parallel, &serial, &context);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn statevector_sweeps_are_policy_independent(
        family in 0usize..4,
        points in 1usize..7,
        shots in 1u64..160,
        threads in 1usize..4,
        raw_seed in any::<u64>(),
        with_seed in any::<bool>(),
        prefix_reuse in any::<bool>(),
        workers in 0usize..4,
    ) {
        let backend = StatevectorBackend::new().with_seed(raw_seed ^ 0x5a);
        check_backend(
            &backend,
            FAMILIES[family],
            points,
            ShotPlan::Fixed(shots),
            threads,
            with_seed.then_some(raw_seed),
            prefix_reuse,
            workers,
        );
    }

    #[test]
    fn trajectory_sweeps_are_policy_independent(
        family in 0usize..4,
        points in 1usize..6,
        shots in 1u64..120,
        threads in 1usize..4,
        raw_seed in any::<u64>(),
        with_seed in any::<bool>(),
        prefix_reuse in any::<bool>(),
        workers in 0usize..4,
    ) {
        let noise = qnoise::presets::uniform(4, 0.008, 0.03, 0.015).unwrap();
        let backend = TrajectoryBackend::new(noise).with_seed(raw_seed ^ 0xa5);
        check_backend(
            &backend,
            FAMILIES[family],
            points,
            ShotPlan::Fixed(shots),
            threads,
            with_seed.then_some(raw_seed),
            prefix_reuse,
            workers,
        );
    }

    #[test]
    fn density_matrix_sweeps_are_policy_independent(
        family in 0usize..4,
        points in 1usize..5,
        shots in 1u64..120,
        prefix_reuse in any::<bool>(),
        workers in 0usize..4,
    ) {
        // The exact executor ignores seeds and threads (deterministic
        // largest-remainder counts), so the policy comparison isolates
        // pure scheduling effects.
        let noise = qnoise::presets::uniform(4, 0.004, 0.02, 0.01).unwrap();
        let backend = DensityMatrixBackend::new(noise);
        check_backend(
            &backend,
            FAMILIES[family],
            points,
            ShotPlan::Fixed(shots),
            1,
            None,
            prefix_reuse,
            workers,
        );
    }

    #[test]
    fn sequential_sweeps_are_policy_independent(
        family in 0usize..4,
        points in 1usize..5,
        min_shots in 1u64..64,
        extra_budget in 0u64..256,
        tranche in 1u64..48,
        threads in 1usize..4,
        raw_seed in any::<u64>(),
        with_seed in any::<bool>(),
        prefix_reuse in any::<bool>(),
        workers in 0usize..4,
    ) {
        // The tentpole contract: sequential stop points, plan traces,
        // verdicts, and counts are pure functions of (seed, plan,
        // threads) — bit-identical under every policy and worker count.
        let plan = ShotPlan::Sequential {
            alpha: 0.05,
            min_shots,
            max_shots: min_shots + extra_budget,
            tranche,
        };
        let noise = qnoise::presets::uniform(4, 0.008, 0.03, 0.015).unwrap();
        let backend = TrajectoryBackend::new(noise).with_seed(raw_seed ^ 0x3c);
        check_backend(
            &backend,
            FAMILIES[family],
            points,
            plan,
            threads,
            with_seed.then_some(raw_seed),
            prefix_reuse,
            workers,
        );
    }

    #[test]
    fn sequential_statevector_sweeps_are_policy_independent(
        family in 0usize..4,
        points in 1usize..5,
        tranche in 1u64..48,
        threads in 1usize..4,
        raw_seed in any::<u64>(),
        workers in 0usize..4,
    ) {
        let plan = ShotPlan::Sequential {
            alpha: 0.05,
            min_shots: 32,
            max_shots: 192,
            tranche,
        };
        let backend = StatevectorBackend::new().with_seed(raw_seed ^ 0xc3);
        check_backend(
            &backend,
            FAMILIES[family],
            points,
            plan,
            threads,
            Some(raw_seed),
            true,
            workers,
        );
    }
}

#[test]
fn empty_sweep_returns_no_points_and_zero_telemetry() {
    for policy in [SweepPolicy::Serial, SweepPolicy::Parallel] {
        let sweep = AssertionSession::new(StatevectorBackend::new())
            .private_cache(4)
            .sweep_policy(policy)
            .run_sweep(Vec::<AssertingCircuit>::new())
            .unwrap();
        assert!(sweep.is_empty(), "{policy:?}");
        assert_eq!(sweep.telemetry, SessionTelemetry::default(), "{policy:?}");
    }
}

#[test]
fn single_point_sweep_matches_a_plain_run_with_the_derived_seed() {
    let noise = qnoise::presets::uniform(3, 0.01, 0.04, 0.02).unwrap();
    let backend = TrajectoryBackend::new(noise);
    let ac = bell_assertion();
    for policy in [SweepPolicy::Serial, SweepPolicy::Parallel] {
        let sweep = AssertionSession::new(&backend)
            .private_cache(4)
            .shots(200)
            .seed(31)
            .sweep_policy(policy)
            .run_sweep(vec![ac.clone()])
            .unwrap();
        assert_eq!(sweep.len(), 1);
        let isolated = AssertionSession::new(&backend)
            .private_cache(4)
            .shots(200)
            .seed(qsim::sweep_point_seed(31, 0))
            .run(&ac)
            .unwrap();
        assert_eq!(
            sweep.point(0).outcome().raw.counts,
            isolated.raw.counts,
            "{policy:?}"
        );
    }
    // Without a session seed there is nothing to derive from: the
    // single point runs under the backend's own seed, like run().
    for policy in [SweepPolicy::Serial, SweepPolicy::Parallel] {
        let sweep = AssertionSession::new(&backend)
            .private_cache(4)
            .shots(200)
            .sweep_policy(policy)
            .run_sweep(vec![ac.clone()])
            .unwrap();
        let isolated = AssertionSession::new(&backend)
            .private_cache(4)
            .shots(200)
            .run(&ac)
            .unwrap();
        assert_eq!(
            sweep.outcomes()[0].raw.counts,
            isolated.raw.counts,
            "{policy:?} unseeded"
        );
    }
}

/// A circuit the compiler rejects (more than 64 classical bits exceeds
/// the shot-record width).
fn unlowerable() -> AssertingCircuit {
    let mut wide = QuantumCircuit::new(1, 80);
    wide.h(0).unwrap();
    wide.measure(0, 0).unwrap();
    AssertingCircuit::new(wide)
}

#[test]
fn mid_sweep_lowering_failure_propagates_without_partial_results() {
    for policy in [SweepPolicy::Serial, SweepPolicy::Parallel] {
        let cache = ProgramCache::new(8);
        let session = AssertionSession::new(StatevectorBackend::new())
            .cache(&cache)
            .shots(64)
            .sweep_policy(policy);
        let before = session.telemetry();
        let result = session.run_sweep(vec![bell_assertion(), unlowerable(), bell_assertion()]);
        assert!(
            matches!(result, Err(AssertError::Sim(_))),
            "{policy:?}: lowering failure must surface as Sim error"
        );
        // The Err carries no partial outcomes or telemetry. Session
        // lifetime counters reflect each policy's documented execution
        // semantics: Parallel lowers everything before running anything
        // (no runs at all), Serial streams and has executed exactly the
        // points before the failure.
        let delta = session.telemetry().since(&before);
        let expected_runs = match policy {
            SweepPolicy::Parallel => 0,
            SweepPolicy::Serial => 1,
        };
        assert_eq!(delta.runs, expected_runs, "{policy:?}");
        assert_eq!(delta.shots, expected_runs * 64, "{policy:?}");
        // The session stays fully usable afterwards.
        let sweep = session
            .run_sweep(vec![bell_assertion(), bell_assertion()])
            .unwrap();
        assert_eq!(sweep.len(), 2);
        assert_eq!(sweep.telemetry.runs, 2);
    }
}

#[test]
fn all_filtered_point_honors_the_filter_policy_mid_sweep() {
    // The middle point always fires its assertion: RequireKept must
    // fail the sweep with NoShotsKept under either policy, AllowEmpty
    // must keep all three points with an empty kept histogram.
    let always_fires = || {
        let mut base = QuantumCircuit::new(1, 0);
        base.x(0).unwrap();
        let mut ac = AssertingCircuit::new(base);
        ac.assert_classical([0], [false]).unwrap();
        ac.measure_data();
        ac
    };
    for policy in [SweepPolicy::Serial, SweepPolicy::Parallel] {
        let strict = AssertionSession::new(StatevectorBackend::new().with_seed(5))
            .private_cache(8)
            .shots(64)
            .sweep_policy(policy);
        let result = strict.run_sweep(vec![bell_assertion(), always_fires(), bell_assertion()]);
        assert!(
            matches!(result, Err(AssertError::NoShotsKept)),
            "{policy:?}: RequireKept must reject the all-filtered point"
        );

        let lenient = AssertionSession::new(StatevectorBackend::new().with_seed(5))
            .private_cache(8)
            .shots(64)
            .filter_policy(FilterPolicy::AllowEmpty)
            .sweep_policy(policy);
        let sweep = lenient
            .run_sweep(vec![bell_assertion(), always_fires(), bell_assertion()])
            .unwrap();
        assert_eq!(sweep.len(), 3, "{policy:?}");
        assert_eq!(sweep.outcomes()[1].shots_kept(), 0, "{policy:?}");
        assert_eq!(sweep.outcomes()[1].assertion_error_rate, 1.0, "{policy:?}");
        assert_eq!(sweep.outcomes()[0].shots_kept(), 64, "{policy:?}");
    }
}

#[test]
fn concurrent_sweeps_on_one_session_stay_bit_identical() {
    // Two sweeps running simultaneously on one shared session exercise
    // the concurrent ProgramCache + PrefixRegistry path; each must
    // reproduce its isolated serial reference exactly.
    let noise = qnoise::presets::uniform(4, 0.01, 0.04, 0.02).unwrap();
    let backend = TrajectoryBackend::new(noise);
    let shared = AssertionSession::new(&backend)
        .private_cache(64)
        .shots(100)
        .seed(77)
        .threads(2);
    let families = [Family::Staged, Family::Thetas];
    let references: Vec<SweepOutcome> = families
        .iter()
        .map(|&family| {
            AssertionSession::new(&backend)
                .private_cache(64)
                .shots(100)
                .seed(77)
                .threads(2)
                .sweep_policy(SweepPolicy::Serial)
                .run_sweep(family_circuits(family, 4))
                .unwrap()
        })
        .collect();
    std::thread::scope(|threads| {
        let mut handles = Vec::new();
        for &family in &families {
            let shared = &shared;
            handles.push(threads.spawn(move || shared.run_sweep(family_circuits(family, 4))));
        }
        for (handle, reference) in handles.into_iter().zip(&references) {
            let sweep = handle.join().expect("sweep thread").unwrap();
            for (p, (a, b)) in sweep
                .outcomes()
                .iter()
                .zip(reference.outcomes())
                .enumerate()
            {
                assert_eq!(a.raw.counts, b.raw.counts, "concurrent point {p}");
                assert_eq!(a.kept, b.kept, "concurrent point {p}");
            }
            // Cache/prefix telemetry may differ (the sweeps share one
            // cache, so who misses first is timing-dependent), but the
            // deterministic execution fields must hold.
            assert_eq!(sweep.telemetry.runs, reference.telemetry.runs);
            assert_eq!(sweep.telemetry.shots, reference.telemetry.shots);
        }
    });
}

#[test]
fn fixed_plan_counts_are_pinned_to_the_pre_plan_stream() {
    // ShotPlan::Fixed must stay byte-identical to the pre-plan `.shots`
    // behavior: exactly one seeded backend call per point, same RNG
    // streams. These golden histograms were recorded when the plan API
    // was introduced; if this fails, the fixed path stopped being a
    // passthrough — fix the path, don't regenerate the goldens.
    fn histogram<B: Backend + Sync>(backend: &B) -> Vec<Vec<(u64, u64)>> {
        let sweep = AssertionSession::new(backend)
            .private_cache(16)
            .shot_plan(ShotPlan::Fixed(160))
            .seed(42)
            .threads(2)
            .run_sweep(family_circuits(Family::Thetas, 3))
            .unwrap();
        sweep
            .outcomes()
            .iter()
            .map(|o| {
                let mut pairs: Vec<(u64, u64)> = o.raw.counts.iter().collect();
                pairs.sort_unstable();
                pairs
            })
            .collect()
    }
    assert_eq!(
        histogram(&StatevectorBackend::new().with_seed(9)),
        vec![
            vec![(0, 160)],
            vec![(0, 143), (6, 17)],
            vec![(0, 123), (6, 37)],
        ],
        "statevector fixed-plan stream moved"
    );
    let noise = qnoise::presets::uniform(4, 0.008, 0.03, 0.015).unwrap();
    assert_eq!(
        histogram(&TrajectoryBackend::new(noise.clone()).with_seed(9)),
        vec![
            vec![(0, 139), (1, 5), (2, 2), (3, 2), (4, 5), (5, 1), (6, 6)],
            vec![(0, 127), (1, 5), (2, 3), (3, 3), (4, 5), (5, 6), (6, 11)],
            vec![(0, 120), (1, 4), (2, 2), (3, 5), (4, 3), (5, 1), (6, 25)],
        ],
        "trajectory fixed-plan stream moved"
    );
    assert_eq!(
        histogram(&DensityMatrixBackend::new(noise)),
        vec![
            vec![(0, 141), (1, 5), (2, 4), (3, 2), (4, 3), (5, 2), (6, 3)],
            vec![
                (0, 130),
                (1, 4),
                (2, 3),
                (3, 2),
                (4, 3),
                (5, 2),
                (6, 15),
                (7, 1)
            ],
            vec![
                (0, 109),
                (1, 4),
                (2, 4),
                (3, 2),
                (4, 3),
                (5, 2),
                (6, 35),
                (7, 1)
            ],
        ],
        "density-matrix fixed-plan stream moved"
    );
}

#[test]
fn staged_family_prefix_hits_are_policy_and_worker_independent() {
    // Serial lowering is shared by both policies, so the prefix-hit
    // count is exact (points - 1 for the staged family) regardless of
    // scheduling.
    for policy in [SweepPolicy::Serial, SweepPolicy::Parallel] {
        for workers in [0, 2] {
            let pool = ShardPool::new(workers);
            let sweep = AssertionSession::new(StatevectorBackend::new().with_seed(2))
                .private_cache(32)
                .shots(64)
                .sweep_policy(policy)
                .pool(&pool)
                .run_sweep(family_circuits(Family::Staged, 5))
                .unwrap();
            assert_eq!(
                sweep.telemetry.prefix_hits, 4,
                "{policy:?}, {workers} workers"
            );
            assert_eq!(sweep.telemetry.cache_misses, 5);
        }
    }
}
