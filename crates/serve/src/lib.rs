//! `qassert-serve`: an assertion service frontend over the session
//! layer.
//!
//! The server accepts OpenQASM 2.0 circuits plus assertion
//! specifications over HTTP, executes them through shared
//! [`AssertionSession`](qassert::AssertionSession) infrastructure (one
//! process-wide [`ProgramCache`](qsim::ProgramCache), prefix registry,
//! and [`ShardPool`](qsim::ShardPool) across all tenants), and streams
//! verdicts back as NDJSON. Everything is `std`-only: a hand-rolled
//! HTTP/1.1 subset on blocking sockets and a connection thread pool —
//! no async runtime.
//!
//! # Wire protocol
//!
//! Every connection carries exactly one request (`Connection: close`
//! semantics). Request bodies use `Content-Length`; streamed response
//! bodies use `Transfer-Encoding: chunked` with one chunk per NDJSON
//! record.
//!
//! ## Endpoints
//!
//! | Method | Path        | Purpose                                        |
//! |--------|-------------|------------------------------------------------|
//! | POST   | `/v1/jobs`  | Submit a job; streams NDJSON results           |
//! | GET    | `/healthz`  | Liveness + load gauges (queue depth, running)  |
//! | GET    | `/metrics`  | Lifetime counters + cache/pool statistics      |
//!
//! Tenancy: the `x-api-token` request header names the tenant for fair
//! queueing; absent, the job lands in the shared `anonymous` lane.
//!
//! ## Job document (`POST /v1/jobs` body, JSON)
//!
//! ```json
//! {
//!   "qasm": "OPENQASM 2.0; ... (required)",
//!   "backend": "statevector | trajectory | density-matrix | stabilizer",
//!   "plan": {"fixed": 1024},
//!   "seed": 7,
//!   "threads": 2,
//!   "filter": "require-kept | allow-empty",
//!   "noise": {"p1": 0.001, "p2": 0.01, "readout": 0.02},
//!   "measure_data": true,
//!   "assertions": [
//!     {"kind": "classical", "qubits": [0, 1], "expected": [false, false]},
//!     {"kind": "entangled", "qubits": [0, 1], "parity": "even"},
//!     {"kind": "superposition", "qubit": 0, "basis": "plus"}
//!   ]
//! }
//! ```
//!
//! Only `qasm` is required. The sequential plan form is
//! `{"sequential": {"alpha": 0.05, "min_shots": 64, "max_shots": 1024,
//! "tranche": 128}}` (each field optional). Per-job shot budgets are
//! capped at [`protocol::MAX_JOB_SHOTS`]; larger plans are rejected at
//! parse time with `budget_too_large`.
//!
//! ## NDJSON result stream (200 response)
//!
//! Records arrive in a fixed order, one JSON object per line, object
//! keys sorted — byte-identical responses for byte-identical outcomes:
//!
//! 1. one `{"type": "verdict", ...}` record **per assertion**, in
//!    instrumentation order: assertion index, kind, error rate, fired
//!    count, sequential verdict (`holds`/`violated`/`undecided`) and
//!    e-value logs;
//! 2. one `{"type": "counts", ...}` record: raw/kept/data histograms
//!    keyed by bitstring, shots recorded/kept, aggregate assertion
//!    error rate;
//! 3. one `{"type": "plan", ...}` record: the
//!    [`PlanTrace`](qassert::PlanTrace) — shots used, tranches, stop
//!    reason (`fixed`/`decided`/`budget`);
//! 4. one `{"type": "telemetry", ...}` trailer: the session's
//!    [`SessionTelemetry`](qassert::SessionTelemetry) (cache and
//!    prefix hits, pool counters, SIMD backend) plus server gauges.
//!
//! ## Errors and backpressure
//!
//! Failures are single JSON objects (`{"error", "message", ...}`):
//!
//! | Status | `error`             | Meaning                                     |
//! |--------|---------------------|---------------------------------------------|
//! | 400    | `invalid_json` etc. | Body unparseable / bad field                |
//! | 400    | `invalid_qasm`      | QASM rejected; `line`/`col` locate it       |
//! | 404/405| —                   | Unknown route / wrong method                |
//! | 413    | `body_too_large`    | Body exceeds the configured limit           |
//! | 422    | `execution_failed`  | Well-formed job the backend cannot run      |
//! | 429    | `queue_full`        | Admission control: job was **not** executed |
//! | 503    | `shutting_down`     | Server draining; retry elsewhere            |
//!
//! A 429 is decided before compilation or execution — rejection under
//! overload costs the server one queue-depth check. Graceful shutdown
//! (SIGTERM) drains admitted jobs before exit, so a streamed 200 never
//! terminates early because of shutdown.

pub mod client;
pub mod http;
pub mod json;
pub mod protocol;
pub mod queue;
pub mod server;

pub use client::{get, post_job, request, HttpResponse};
pub use json::Value;
pub use protocol::{ApiError, JobSpec};
pub use queue::{JobQueue, SubmitError};
pub use server::{Server, ServerConfig};
