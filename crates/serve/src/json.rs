//! A minimal JSON value model, parser, and renderer.
//!
//! The container has no serde; job bodies are small (a QASM string plus
//! a handful of options), so a straightforward recursive-descent parser
//! over an owned [`Value`] tree is plenty. The renderer produces the
//! compact one-line form the NDJSON stream requires (no interior
//! newlines, ever).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
///
/// Objects use a [`BTreeMap`] so rendering is deterministic (sorted
/// keys) — byte-identical responses for byte-identical outcomes, which
/// the end-to-end parity tests rely on.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`; integers round-trip exactly up
    /// to 2^53, far beyond any shot budget this crate accepts).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The value as a string slice, when it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a finite number, when it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, when it is a whole number
    /// in `u64` range.
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_num()?;
        if (0.0..=9_007_199_254_740_992.0).contains(&n) && n.fract() == 0.0 {
            Some(n as u64)
        } else {
            None
        }
    }

    /// The value as a bool, when it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an object map, when it is one.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The value as an array, when it is one.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Member `key` of this object (`None` for absent keys and
    /// non-objects).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj()?.get(key)
    }

    /// Renders the value as compact single-line JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => write_number(*n, out),
            Value::Str(s) => write_string(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Obj(members) => {
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Value {
        Value::Num(n)
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Value {
        Value::Num(n as f64)
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Value {
        Value::Num(n as f64)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

/// Builds a [`Value::Obj`] from key/value pairs.
pub fn obj<const N: usize>(members: [(&str, Value); N]) -> Value {
    Value::Obj(
        members
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn write_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; null is the conventional stand-in.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document (the whole input must be one value plus
/// whitespace).
///
/// # Errors
///
/// Returns a description of the first syntax problem and its byte
/// offset.
pub fn parse(src: &str) -> Result<Value, String> {
    let bytes = src.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(b) = bytes.get(*pos) {
        if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b't') => parse_literal(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Value::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: Value,
) -> Result<Value, String> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(format!("expected '{literal}' at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while let Some(b) = bytes.get(*pos) {
        if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
            *pos += 1;
        } else {
            break;
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii number bytes");
    text.parse::<f64>()
        .map(Value::Num)
        .map_err(|_| format!("bad number '{text}' at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes.get(*pos), Some(&b'"'));
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| "non-ascii \\u escape".to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape '{hex}'"))?;
                        // Surrogate pairs are not reconstructed (the
                        // protocol is ASCII QASM + identifiers); lone
                        // surrogates render as the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte safe).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| "invalid utf-8 in string".to_string())?;
                let c = rest.chars().next().expect("non-empty rest");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    debug_assert_eq!(bytes.get(*pos), Some(&b'{'));
    *pos += 1;
    let mut members = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}"));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}"));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        members.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    debug_assert_eq!(bytes.get(*pos), Some(&b'['));
    *pos += 1;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for src in ["null", "true", "false", "0", "-1.5", "\"hi\""] {
            let v = parse(src).unwrap();
            assert_eq!(parse(&v.render()).unwrap(), v, "{src}");
        }
    }

    #[test]
    fn nested_structures_round_trip() {
        let src = r#"{"a": [1, 2, {"b": null}], "c": "x\ny", "d": true}"#;
        let v = parse(src).unwrap();
        let rendered = v.render();
        assert_eq!(parse(&rendered).unwrap(), v);
        assert!(!rendered.contains('\n'), "compact form has no newlines");
    }

    #[test]
    fn object_keys_render_sorted() {
        let v = parse(r#"{"z": 1, "a": 2}"#).unwrap();
        assert_eq!(v.render(), r#"{"a":2,"z":1}"#);
    }

    #[test]
    fn escapes_decode() {
        let v = parse(r#""line\nbreak A \" \\""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "line\nbreak A \" \\");
    }

    #[test]
    fn integers_render_without_exponent() {
        assert_eq!(Value::from(1_000_000u64).render(), "1000000");
        assert_eq!(Value::Num(0.5).render(), "0.5");
    }

    #[test]
    fn syntax_errors_are_reported_not_panicked() {
        for src in ["{", "[1,", "\"unterminated", "{\"a\" 1}", "tru", "{]}", ""] {
            assert!(parse(src).is_err(), "{src:?} must fail");
        }
    }

    #[test]
    fn accessors_type_check() {
        let v = parse(r#"{"n": 3, "s": "x", "b": true, "a": [1]}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 1);
        assert_eq!(v.get("n").unwrap().as_str(), None);
        assert!(v.get("missing").is_none());
    }
}
