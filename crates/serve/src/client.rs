//! A minimal blocking HTTP/1.1 client for the serve wire protocol.
//!
//! Shared by the end-to-end tests, the `serve_throughput` bench, the
//! `serve_client` example, and the repro smoke — everything that talks
//! to the server in-process does it through this one code path, so
//! parity checks exercise the same bytes a real client would see.

use crate::http::decode_chunked;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A fully-read HTTP response.
#[derive(Debug)]
pub struct HttpResponse {
    /// The status code from the status line.
    pub status: u16,
    /// Lowercased header name/value pairs, in wire order.
    pub headers: Vec<(String, String)>,
    /// The body, chunked transfer coding already decoded.
    pub body: String,
}

impl HttpResponse {
    /// Case-insensitive header lookup (last occurrence wins).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .rev()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body split into NDJSON records (non-empty lines).
    pub fn ndjson_lines(&self) -> Vec<&str> {
        self.body.lines().filter(|l| !l.is_empty()).collect()
    }
}

/// Issues one request on a fresh connection and reads the response to
/// completion. `Connection: close` semantics — one request per socket,
/// matching the server.
///
/// # Errors
///
/// I/O failures, or a response that is not parseable HTTP/1.1.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: Option<&str>,
) -> std::io::Result<HttpResponse> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    stream.set_write_timeout(Some(Duration::from_secs(10)))?;
    let mut writer = stream.try_clone()?;

    let body = body.unwrap_or("");
    let mut head = format!("{method} {path} HTTP/1.1\r\nhost: qassert-serve\r\n");
    for (name, value) in headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str(&format!(
        "content-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    ));
    writer.write_all(head.as_bytes())?;
    writer.write_all(body.as_bytes())?;
    writer.flush()?;

    read_response(&stream)
}

/// Submits a job body to `POST /v1/jobs` under an API token.
///
/// # Errors
///
/// Propagates [`request`] failures.
pub fn post_job(addr: SocketAddr, token: &str, body: &str) -> std::io::Result<HttpResponse> {
    request(
        addr,
        "POST",
        "/v1/jobs",
        &[("x-api-token", token), ("content-type", "application/json")],
        Some(body),
    )
}

/// Fetches a GET endpoint (`/healthz`, `/metrics`).
///
/// # Errors
///
/// Propagates [`request`] failures.
pub fn get(addr: SocketAddr, path: &str) -> std::io::Result<HttpResponse> {
    request(addr, "GET", path, &[], None)
}

fn bad(reason: impl Into<String>) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, reason.into())
}

fn read_response(stream: &TcpStream) -> std::io::Result<HttpResponse> {
    let mut reader = BufReader::new(stream);

    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let mut parts = status_line.trim_end().splitn(3, ' ');
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/1.") {
        return Err(bad(format!("not an HTTP/1.x status line: {status_line:?}")));
    }
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("missing status code"))?;

    let mut headers = Vec::new();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line)?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
    }

    let chunked = headers
        .iter()
        .any(|(k, v)| k == "transfer-encoding" && v.eq_ignore_ascii_case("chunked"));
    let body_bytes = if chunked {
        decode_chunked(&mut reader)?
    } else {
        let length: usize = headers
            .iter()
            .rev()
            .find(|(k, _)| k == "content-length")
            .and_then(|(_, v)| v.parse().ok())
            .ok_or_else(|| bad("response has neither chunked coding nor content-length"))?;
        let mut body = vec![0u8; length];
        reader.read_exact(&mut body)?;
        body
    };
    let body = String::from_utf8(body_bytes).map_err(|_| bad("response body is not UTF-8"))?;

    Ok(HttpResponse {
        status,
        headers,
        body,
    })
}
