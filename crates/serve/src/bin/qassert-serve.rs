//! The `qassert-serve` binary: parse flags, start the server, wait
//! for SIGTERM/SIGINT, drain gracefully.

use qassert_serve::{Server, ServerConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Set from the signal handler; polled by the main loop.
static STOP: AtomicBool = AtomicBool::new(false);

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

extern "C" fn on_signal(_signum: i32) {
    // Only an atomic store: async-signal-safe.
    STOP.store(true, Ordering::Release);
}

fn install_signal_handlers() {
    // std exposes no signal API; registering a handler needs one libc
    // call, declared here to keep the crate dependency-free.
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    unsafe {
        signal(SIGTERM, on_signal as *const () as usize);
        signal(SIGINT, on_signal as *const () as usize);
    }
}

const HELP: &str = "\
qassert-serve: assertion service over the qassert session layer

Accepts OpenQASM 2.0 jobs with assertion specs over HTTP and streams
per-assertion verdicts, counts, the shot-plan trace, and session
telemetry back as NDJSON. See the qassert-serve crate docs for the
wire protocol.

USAGE:
    qassert-serve [OPTIONS]

OPTIONS:
    --addr <HOST:PORT>      Bind address [default: 127.0.0.1:7177]
                            (port 0 picks an ephemeral port)
    --job-workers <N>       Concurrent assertion sessions
                            [default: min(cores, 4)]
    --conn-workers <N>      Connection handler threads
                            [default: min(2*cores, 16)]
    --queue-capacity <N>    Admission bound on queued jobs; beyond it
                            submissions get a typed 429 [default: 64]
    --max-body-bytes <N>    Request body limit (413 beyond it)
                            [default: 1048576]
    --cache-capacity <N>    Shared compiled-program cache entries
                            [default: 512]
    -h, --help              Print this help

ENDPOINTS:
    POST /v1/jobs    submit a job (JSON body, x-api-token header
                     selects the fair-queue tenant lane)
    GET  /healthz    liveness + queue/pool gauges
    GET  /metrics    lifetime counters + cache statistics

SHUTDOWN:
    SIGTERM or SIGINT stops accepting connections, drains admitted
    jobs to completion, then exits.
";

fn fail(message: &str) -> ! {
    eprintln!("error: {message}\n\nRun with --help for usage.");
    std::process::exit(2);
}

fn parse_config(args: &[String]) -> ServerConfig {
    let mut config = ServerConfig::default();
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        if flag == "-h" || flag == "--help" {
            print!("{HELP}");
            std::process::exit(0);
        }
        let Some(value) = iter.next() else {
            fail(&format!("flag '{flag}' needs a value"));
        };
        let parse_usize = |value: &str| -> usize {
            value
                .parse()
                .unwrap_or_else(|_| fail(&format!("'{value}' is not a count")))
        };
        match flag.as_str() {
            "--addr" => config.addr = value.clone(),
            "--job-workers" => config.job_workers = parse_usize(value).max(1),
            "--conn-workers" => config.conn_workers = parse_usize(value).max(1),
            "--queue-capacity" => config.queue_capacity = parse_usize(value).max(1),
            "--max-body-bytes" => config.max_body_bytes = parse_usize(value).max(1024),
            "--cache-capacity" => config.cache_capacity = parse_usize(value).max(1),
            other => fail(&format!("unknown flag '{other}'")),
        }
    }
    config
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = parse_config(&args);
    install_signal_handlers();

    let server = match Server::start(config.clone()) {
        Ok(server) => server,
        Err(e) => fail(&format!("cannot bind {}: {e}", config.addr)),
    };
    eprintln!(
        "qassert-serve listening on {} ({} job workers, {} conn workers, queue {})",
        server.addr(),
        config.job_workers,
        config.conn_workers,
        config.queue_capacity
    );

    while !STOP.load(Ordering::Acquire) {
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("qassert-serve: signal received, draining in-flight jobs");
    server.shutdown();
    eprintln!("qassert-serve: drained, bye");
}
