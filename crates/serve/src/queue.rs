//! A bounded multi-tenant job queue with fair dequeue.
//!
//! Admission control happens at [`JobQueue::submit`]: the queue holds
//! at most `capacity` jobs *total*; a full queue rejects immediately
//! ([`SubmitError::Full`] — the server turns this into a typed 429
//! **before** any execution work happens), so latency under overload
//! is bounded by queue depth rather than unbounded buffering.
//!
//! Fairness happens at [`JobQueue::pop`]: jobs are grouped per tenant
//! (the API-token header) and dequeued round-robin across tenants, so
//! one tenant flooding the queue delays its *own* backlog, not other
//! tenants' next job. Within a tenant, order is FIFO.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a submission was not enqueued.
#[derive(Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at capacity; the job was NOT admitted.
    Full {
        /// The configured bound that tripped.
        capacity: usize,
    },
    /// The queue is closed (server draining); the job was NOT admitted.
    Closed,
}

struct Inner<T> {
    /// Per-tenant FIFO lanes, in first-appearance order. Lanes persist
    /// for the queue's lifetime: the tenant set is bounded by distinct
    /// API tokens seen, which admission control keeps small relative
    /// to job volume.
    lanes: Vec<(String, VecDeque<T>)>,
    /// Round-robin cursor over `lanes`.
    cursor: usize,
    /// Total queued jobs across all lanes.
    len: usize,
    closed: bool,
}

/// The bounded fair queue. `T` is the job payload.
pub struct JobQueue<T> {
    inner: Mutex<Inner<T>>,
    available: Condvar,
    capacity: usize,
}

impl<T> JobQueue<T> {
    /// Creates a queue admitting at most `capacity` queued jobs.
    ///
    /// # Panics
    ///
    /// Panics when `capacity == 0` (nothing could ever be admitted).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "queue capacity must be at least 1");
        JobQueue {
            inner: Mutex::new(Inner {
                lanes: Vec::new(),
                cursor: 0,
                len: 0,
                closed: false,
            }),
            available: Condvar::new(),
            capacity,
        }
    }

    /// The configured admission bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Jobs currently queued (momentary gauge for `/healthz`).
    pub fn depth(&self) -> usize {
        self.inner.lock().expect("queue lock").len
    }

    /// Admits a job for `tenant`, or rejects without side effects.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Full`] at capacity, [`SubmitError::Closed`] once
    /// [`JobQueue::close`] has been called. In both cases the job is
    /// returned to the caller untouched inside the error path — it
    /// never entered the queue.
    pub fn submit(&self, tenant: &str, job: T) -> Result<(), SubmitError> {
        let mut inner = self.inner.lock().expect("queue lock");
        if inner.closed {
            return Err(SubmitError::Closed);
        }
        if inner.len >= self.capacity {
            return Err(SubmitError::Full {
                capacity: self.capacity,
            });
        }
        match inner.lanes.iter_mut().find(|(name, _)| name == tenant) {
            Some((_, lane)) => lane.push_back(job),
            None => {
                let mut lane = VecDeque::new();
                lane.push_back(job);
                inner.lanes.push((tenant.to_string(), lane));
            }
        }
        inner.len += 1;
        drop(inner);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks until a job is available (fair round-robin across
    /// tenants) or the queue is closed *and* drained; `None` means the
    /// worker should exit.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            if inner.len > 0 {
                let lanes = inner.lanes.len();
                for probe in 0..lanes {
                    let lane = (inner.cursor + probe) % lanes;
                    if let Some(job) = inner.lanes[lane].1.pop_front() {
                        // Advance past the lane we served so the next
                        // pop starts at the following tenant.
                        inner.cursor = (lane + 1) % lanes;
                        inner.len -= 1;
                        return Some(job);
                    }
                }
                unreachable!("len > 0 implies a non-empty lane");
            }
            if inner.closed {
                return None;
            }
            inner = self.available.wait(inner).expect("queue wait");
        }
    }

    /// Closes the queue: new submissions fail with
    /// [`SubmitError::Closed`], but already-admitted jobs remain
    /// poppable — workers drain the backlog, then [`JobQueue::pop`]
    /// returns `None`. This is the graceful-shutdown half of the
    /// drain contract.
    pub fn close(&self) {
        self.inner.lock().expect("queue lock").closed = true;
        self.available.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn fifo_within_a_tenant() {
        let q = JobQueue::new(8);
        for i in 0..4 {
            q.submit("alice", i).unwrap();
        }
        q.close();
        assert_eq!(
            std::iter::from_fn(|| q.pop()).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
    }

    #[test]
    fn round_robin_across_tenants() {
        let q = JobQueue::new(16);
        // alice floods, bob and carol each submit one.
        for i in 0..5 {
            q.submit("alice", format!("a{i}")).unwrap();
        }
        q.submit("bob", "b0".to_string()).unwrap();
        q.submit("carol", "c0".to_string()).unwrap();
        q.close();
        let order: Vec<String> = std::iter::from_fn(|| q.pop()).collect();
        // bob and carol are served within the first rotation, not after
        // alice's whole backlog.
        let pos = |s: &str| order.iter().position(|x| x == s).unwrap();
        assert!(pos("b0") <= 2, "order: {order:?}");
        assert!(pos("c0") <= 2, "order: {order:?}");
        // Within alice's lane the order stays FIFO.
        let alice: Vec<&String> = order.iter().filter(|s| s.starts_with('a')).collect();
        assert_eq!(alice, ["a0", "a1", "a2", "a3", "a4"]);
    }

    #[test]
    fn full_queue_rejects_without_admitting() {
        let q = JobQueue::new(2);
        q.submit("t", 1).unwrap();
        q.submit("t", 2).unwrap();
        assert_eq!(q.submit("t", 3), Err(SubmitError::Full { capacity: 2 }));
        assert_eq!(q.depth(), 2, "the rejected job never entered");
        // Popping frees capacity again.
        assert_eq!(q.pop(), Some(1));
        q.submit("t", 4).unwrap();
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn close_drains_backlog_then_stops() {
        let q = JobQueue::new(4);
        q.submit("t", 1).unwrap();
        q.submit("t", 2).unwrap();
        q.close();
        assert_eq!(q.submit("t", 3), Err(SubmitError::Closed));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None, "drained and closed");
        assert_eq!(q.pop(), None, "stays closed");
    }

    #[test]
    fn blocked_workers_wake_on_submit_and_close() {
        let q = std::sync::Arc::new(JobQueue::new(4));
        let popped = std::sync::Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..3 {
            let q = std::sync::Arc::clone(&q);
            let popped = std::sync::Arc::clone(&popped);
            handles.push(std::thread::spawn(move || {
                while q.pop().is_some() {
                    popped.fetch_add(1, Ordering::Relaxed);
                }
            }));
        }
        for i in 0..10 {
            // Mixed tenants, racing the workers.
            while q.submit(if i % 2 == 0 { "x" } else { "y" }, i).is_err() {
                std::thread::yield_now();
            }
        }
        q.close();
        for h in handles {
            h.join().expect("worker");
        }
        assert_eq!(popped.load(Ordering::Relaxed), 10, "every job ran once");
    }
}
