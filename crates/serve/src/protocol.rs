//! The wire protocol: job specifications, typed error bodies, and the
//! NDJSON result records.
//!
//! See the crate-level docs for the full protocol reference. This
//! module is pure data transformation — JSON in, [`JobSpec`] out;
//! [`qassert::AssertionOutcome`] in, NDJSON records out — so both the
//! server and the parity tests (which must render a direct
//! `AssertionSession` run identically) share one implementation.

use crate::json::{self, Value};
use qassert::{
    AssertError, AssertingCircuit, AssertionOutcome, AssertionRecord, FilterPolicy, Parity,
    SessionTelemetry, ShotPlan, SuperpositionBasis,
};
use qcircuit::qasm::{self, QasmError};
use qsim::BackendKind;

/// A structured service error: HTTP status plus a machine-readable
/// JSON body (`error` code, `message`, and optional extra fields such
/// as the QASM source span or the queue capacity).
#[derive(Debug)]
pub struct ApiError {
    /// HTTP status to answer with.
    pub status: u16,
    /// Stable machine-readable error code.
    pub code: &'static str,
    /// Human-readable description.
    pub message: String,
    /// Extra structured fields merged into the body object.
    pub details: Vec<(&'static str, Value)>,
}

impl ApiError {
    /// A 400 with just a code and message.
    pub fn bad_request(code: &'static str, message: impl Into<String>) -> Self {
        ApiError {
            status: 400,
            code,
            message: message.into(),
            details: Vec::new(),
        }
    }

    /// The JSON body for this error.
    pub fn body(&self) -> String {
        let mut members = vec![
            ("error", Value::from(self.code)),
            ("message", Value::from(self.message.clone())),
        ];
        members.extend(self.details.iter().cloned());
        Value::Obj(
            members
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
        .render()
    }
}

impl From<QasmError> for ApiError {
    /// QASM parse failures become structured 400s carrying the
    /// offending source span, so clients can point at the exact token.
    fn from(e: QasmError) -> Self {
        let mut err = ApiError::bad_request("invalid_qasm", e.to_string());
        if let Some(span) = e.span() {
            err.details.push(("line", Value::from(span.line)));
            err.details.push(("col", Value::from(span.col)));
        }
        err
    }
}

impl From<AssertError> for ApiError {
    fn from(e: AssertError) -> Self {
        ApiError::bad_request("invalid_assertion", e.to_string())
    }
}

/// One assertion to instrument, in application order.
#[derive(Clone, Debug, PartialEq)]
pub enum AssertionSpec {
    /// `assert_classical(qubits, expected)`.
    Classical {
        /// Data qubits to check.
        qubits: Vec<usize>,
        /// Expected classical value per qubit.
        expected: Vec<bool>,
    },
    /// `assert_entangled(qubits, parity)`.
    Entangled {
        /// The entangled block.
        qubits: Vec<usize>,
        /// Expected GHZ parity class.
        parity: Parity,
    },
    /// `assert_superposition(qubit, basis)`.
    Superposition {
        /// The qubit expected in equal superposition.
        qubit: usize,
        /// `|+⟩` or `|−⟩`.
        basis: SuperpositionBasis,
    },
}

/// A fully parsed job submission.
#[derive(Clone, Debug, PartialEq)]
pub struct JobSpec {
    /// OpenQASM 2.0 source of the base (uninstrumented) circuit.
    pub qasm: String,
    /// Which backend executes the job.
    pub backend: BackendKind,
    /// Shot plan (fixed or sequential).
    pub plan: ShotPlan,
    /// Per-job RNG seed; jobs with the same spec and seed are
    /// bit-identical.
    pub seed: Option<u64>,
    /// Shard/thread override for per-shot execution.
    pub threads: Option<usize>,
    /// What analysis does when filtering removes every shot.
    pub filter: FilterPolicy,
    /// Uniform noise `(p1, p2, readout)` bound into the backend.
    pub noise: Option<(f64, f64, f64)>,
    /// Assertions to instrument, in order.
    pub assertions: Vec<AssertionSpec>,
    /// Whether to measure every data qubit at the end.
    pub measure_data: bool,
}

/// Default shots for jobs that specify no plan — deliberately modest
/// so an empty spec cannot occupy a worker for long.
pub const DEFAULT_JOB_SHOTS: u64 = 1024;

/// The hard ceiling on any job's shot budget (fixed shots or a
/// sequential plan's `max_shots`): one admission-control knob the
/// queue's depth bound cannot express — a single huge job would
/// otherwise monopolize a worker.
pub const MAX_JOB_SHOTS: u64 = 1 << 22;

fn qubit_list(value: &Value, field: &'static str) -> Result<Vec<usize>, ApiError> {
    let items = value.as_arr().ok_or_else(|| {
        ApiError::bad_request("invalid_job", format!("'{field}' must be an array"))
    })?;
    items
        .iter()
        .map(|v| {
            v.as_u64().map(|n| n as usize).ok_or_else(|| {
                ApiError::bad_request(
                    "invalid_job",
                    format!("'{field}' entries must be non-negative integers"),
                )
            })
        })
        .collect()
}

fn parse_assertion(value: &Value, index: usize) -> Result<AssertionSpec, ApiError> {
    let kind = value.get("kind").and_then(Value::as_str).ok_or_else(|| {
        ApiError::bad_request(
            "invalid_job",
            format!("assertion {index} has no 'kind' string"),
        )
    })?;
    match kind {
        "classical" => {
            let qubits = qubit_list(
                value.get("qubits").unwrap_or(&Value::Null),
                "assertions[].qubits",
            )?;
            let expected = value
                .get("expected")
                .and_then(Value::as_arr)
                .ok_or_else(|| {
                    ApiError::bad_request(
                        "invalid_job",
                        format!("classical assertion {index} needs an 'expected' bool array"),
                    )
                })?
                .iter()
                .map(|v| {
                    v.as_bool().ok_or_else(|| {
                        ApiError::bad_request(
                            "invalid_job",
                            format!("assertion {index}: 'expected' entries must be booleans"),
                        )
                    })
                })
                .collect::<Result<Vec<bool>, ApiError>>()?;
            Ok(AssertionSpec::Classical { qubits, expected })
        }
        "entangled" => {
            let qubits = qubit_list(
                value.get("qubits").unwrap_or(&Value::Null),
                "assertions[].qubits",
            )?;
            let parity = match value.get("parity").and_then(Value::as_str) {
                None | Some("even") => Parity::Even,
                Some("odd") => Parity::Odd,
                Some(other) => {
                    return Err(ApiError::bad_request(
                        "invalid_job",
                        format!("assertion {index}: unknown parity '{other}'"),
                    ))
                }
            };
            Ok(AssertionSpec::Entangled { qubits, parity })
        }
        "superposition" => {
            let qubit = value.get("qubit").and_then(Value::as_u64).ok_or_else(|| {
                ApiError::bad_request(
                    "invalid_job",
                    format!("superposition assertion {index} needs a 'qubit' integer"),
                )
            })? as usize;
            let basis = match value.get("basis").and_then(Value::as_str) {
                None | Some("plus") => SuperpositionBasis::Plus,
                Some("minus") => SuperpositionBasis::Minus,
                Some(other) => {
                    return Err(ApiError::bad_request(
                        "invalid_job",
                        format!("assertion {index}: unknown basis '{other}'"),
                    ))
                }
            };
            Ok(AssertionSpec::Superposition { qubit, basis })
        }
        other => Err(ApiError::bad_request(
            "invalid_job",
            format!("assertion {index}: unknown kind '{other}'"),
        )),
    }
}

fn parse_plan(value: Option<&Value>) -> Result<ShotPlan, ApiError> {
    let plan = match value {
        None => ShotPlan::Fixed(DEFAULT_JOB_SHOTS),
        Some(v) => {
            if let Some(shots) = v.get("fixed").and_then(Value::as_u64) {
                ShotPlan::Fixed(shots)
            } else if let Some(seq) = v.get("sequential") {
                let field = |name: &str| seq.get(name).and_then(Value::as_u64);
                ShotPlan::Sequential {
                    alpha: seq.get("alpha").and_then(Value::as_num).unwrap_or(0.05),
                    min_shots: field("min_shots").unwrap_or(64),
                    max_shots: field("max_shots").unwrap_or(DEFAULT_JOB_SHOTS),
                    tranche: field("tranche").unwrap_or(128),
                }
            } else {
                return Err(ApiError::bad_request(
                    "invalid_job",
                    "'plan' must be {\"fixed\": n} or {\"sequential\": {...}}",
                ));
            }
        }
    };
    if let Err(why) = plan.validate() {
        return Err(ApiError::bad_request(
            "invalid_plan",
            format!("invalid shot plan: {why}"),
        ));
    }
    if plan.budget() > MAX_JOB_SHOTS {
        return Err(ApiError {
            status: 400,
            code: "budget_too_large",
            message: format!(
                "shot budget {} exceeds the per-job ceiling {MAX_JOB_SHOTS}",
                plan.budget()
            ),
            details: vec![("max_shots", Value::from(MAX_JOB_SHOTS))],
        });
    }
    Ok(plan)
}

impl JobSpec {
    /// Parses a job submission body.
    ///
    /// # Errors
    ///
    /// Returns an [`ApiError`] (status 400) naming the first invalid
    /// field; QASM itself is *not* parsed here — that happens in
    /// [`JobSpec::build_circuit`] so its span-carrying errors stay
    /// separate from spec-shape errors.
    pub fn from_json(body: &str) -> Result<JobSpec, ApiError> {
        let root = json::parse(body).map_err(|why| {
            ApiError::bad_request("invalid_json", format!("body is not valid JSON: {why}"))
        })?;
        if root.as_obj().is_none() {
            return Err(ApiError::bad_request(
                "invalid_json",
                "body must be a JSON object",
            ));
        }
        let qasm = root
            .get("qasm")
            .and_then(Value::as_str)
            .ok_or_else(|| ApiError::bad_request("invalid_job", "'qasm' string is required"))?
            .to_string();
        let backend = match root.get("backend").and_then(Value::as_str) {
            None | Some("statevector") => BackendKind::Statevector,
            Some("trajectory") => BackendKind::Trajectory,
            Some("density-matrix") => BackendKind::DensityMatrix,
            Some("stabilizer") => BackendKind::Stabilizer,
            Some("hybrid") => BackendKind::Hybrid,
            Some(other) => {
                return Err(ApiError::bad_request(
                    "unknown_backend",
                    format!(
                        "unknown backend '{other}' (expected statevector, trajectory, \
                         density-matrix, stabilizer, or hybrid)"
                    ),
                ))
            }
        };
        let plan = parse_plan(root.get("plan"))?;
        let seed = match root.get("seed") {
            None | Some(Value::Null) => None,
            Some(v) => Some(v.as_u64().ok_or_else(|| {
                ApiError::bad_request("invalid_job", "'seed' must be a non-negative integer")
            })?),
        };
        let threads = match root.get("threads") {
            None | Some(Value::Null) => None,
            Some(v) => {
                let t = v.as_u64().ok_or_else(|| {
                    ApiError::bad_request("invalid_job", "'threads' must be a positive integer")
                })? as usize;
                if t == 0 {
                    return Err(ApiError::bad_request(
                        "invalid_job",
                        "'threads' must be at least 1",
                    ));
                }
                Some(t)
            }
        };
        let filter = match root.get("filter").and_then(Value::as_str) {
            None | Some("require-kept") => FilterPolicy::RequireKept,
            Some("allow-empty") => FilterPolicy::AllowEmpty,
            Some(other) => {
                return Err(ApiError::bad_request(
                    "invalid_job",
                    format!("unknown filter policy '{other}'"),
                ))
            }
        };
        let noise = match root.get("noise") {
            None | Some(Value::Null) => None,
            Some(v) => {
                let field = |name: &str| {
                    v.get(name).and_then(Value::as_num).ok_or_else(|| {
                        ApiError::bad_request(
                            "invalid_job",
                            format!("'noise.{name}' must be a number"),
                        )
                    })
                };
                Some((field("p1")?, field("p2")?, field("readout")?))
            }
        };
        let assertions = match root.get("assertions") {
            None => Vec::new(),
            Some(v) => v
                .as_arr()
                .ok_or_else(|| {
                    ApiError::bad_request("invalid_job", "'assertions' must be an array")
                })?
                .iter()
                .enumerate()
                .map(|(i, a)| parse_assertion(a, i))
                .collect::<Result<Vec<AssertionSpec>, ApiError>>()?,
        };
        let measure_data = root
            .get("measure_data")
            .and_then(Value::as_bool)
            .unwrap_or(true);
        Ok(JobSpec {
            qasm,
            backend,
            plan,
            seed,
            threads,
            filter,
            noise,
            assertions,
            measure_data,
        })
    }

    /// Parses the QASM source and applies the assertion specs in
    /// order, producing the instrumented circuit the session runs.
    ///
    /// Deterministic: the same spec always yields a structurally
    /// identical circuit, which (with the same seed and plan) makes
    /// wire submissions bit-identical to direct sessions — the
    /// end-to-end contract the parity tests pin.
    ///
    /// # Errors
    ///
    /// `invalid_qasm` (with span) on parse failures, `invalid_assertion`
    /// on instrumentation failures (bad qubit targets etc.).
    pub fn build_circuit(&self) -> Result<AssertingCircuit, ApiError> {
        let base = qasm::from_qasm(&self.qasm)?;
        let mut instrumented = AssertingCircuit::new(base);
        for spec in &self.assertions {
            match spec {
                AssertionSpec::Classical { qubits, expected } => {
                    instrumented
                        .assert_classical(qubits.iter().copied(), expected.iter().copied())?;
                }
                AssertionSpec::Entangled { qubits, parity } => {
                    instrumented.assert_entangled(qubits.iter().copied(), *parity)?;
                }
                AssertionSpec::Superposition { qubit, basis } => {
                    instrumented.assert_superposition(*qubit, *basis)?;
                }
            }
        }
        if self.measure_data {
            instrumented.measure_data();
        }
        Ok(instrumented)
    }
}

fn counts_value(counts: &qsim::Counts) -> Value {
    Value::Obj(
        counts
            .to_sorted_vec()
            .into_iter()
            .map(|(bits, n)| (bits, Value::from(n)))
            .collect(),
    )
}

fn verdict_name(v: qassert::AssertionVerdict) -> &'static str {
    match v {
        qassert::AssertionVerdict::Holds => "holds",
        qassert::AssertionVerdict::Violated => "violated",
        qassert::AssertionVerdict::Undecided => "undecided",
    }
}

/// Renders the per-job NDJSON records, in stream order: one `verdict`
/// record per assertion, one `counts` record, one `plan` record. The
/// `telemetry` trailer is rendered separately
/// ([`telemetry_record`]) because the server appends live gauge state.
pub fn outcome_records(outcome: &AssertionOutcome, records: &[AssertionRecord]) -> Vec<Value> {
    let mut out = Vec::new();
    for (i, stats) in outcome.per_assertion.iter().enumerate() {
        let kind = records
            .get(i)
            .map(|r| r.assertion.kind_name())
            .unwrap_or("unknown");
        let mut members = vec![
            ("type", Value::from("verdict")),
            ("assertion", Value::from(i)),
            ("kind", Value::from(kind)),
            ("error_rate", Value::Num(stats.error_rate)),
            ("fired", Value::from(stats.fired)),
        ];
        if let Some(v) = outcome.verdicts.get(i) {
            members.push(("verdict", Value::from(verdict_name(v.verdict))));
            members.push(("shots", Value::from(v.shots)));
            members.push(("log_e_violated", Value::Num(v.log_e_violated)));
            members.push(("log_e_holds", Value::Num(v.log_e_holds)));
        }
        out.push(obj_from(members));
    }
    out.push(obj_from(vec![
        ("type", Value::from("counts")),
        ("shots_recorded", Value::from(outcome.raw.counts.total())),
        ("shots_kept", Value::from(outcome.kept.total())),
        (
            "assertion_error_rate",
            Value::Num(outcome.assertion_error_rate),
        ),
        ("raw", counts_value(&outcome.raw.counts)),
        ("kept", counts_value(&outcome.kept)),
        ("data_kept", counts_value(&outcome.data_kept)),
    ]));
    out.push(obj_from(vec![
        ("type", Value::from("plan")),
        ("shots_used", Value::from(outcome.plan.shots_used)),
        ("tranches", Value::from(outcome.plan.tranches)),
        ("stop", Value::from(outcome.plan.stop.to_string())),
    ]));
    out
}

fn obj_from(members: Vec<(&str, Value)>) -> Value {
    Value::Obj(
        members
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Renders the `telemetry` trailer record: the session's own counters
/// plus whatever live server state the caller supplies in `extra`
/// (queue depth, pool gauges, backend name).
pub fn telemetry_record(telemetry: &SessionTelemetry, extra: Vec<(&str, Value)>) -> Value {
    let mut members = vec![
        ("type", Value::from("telemetry")),
        ("runs", Value::from(telemetry.runs)),
        ("shots", Value::from(telemetry.shots)),
        ("tranches", Value::from(telemetry.tranches)),
        ("early_stops", Value::from(telemetry.early_stops)),
        ("cache_hits", Value::from(telemetry.cache_hits)),
        ("cache_misses", Value::from(telemetry.cache_misses)),
        ("prefix_hits", Value::from(telemetry.prefix_hits)),
        ("simd", Value::from(telemetry.simd_backend)),
    ];
    members.extend(extra);
    obj_from(members)
}

/// The stable body of a queue-full rejection (429): names the bound
/// that tripped so clients can implement backoff against `capacity`.
pub fn queue_full_error(capacity: usize) -> ApiError {
    ApiError {
        status: 429,
        code: "queue_full",
        message: format!("job queue is at capacity ({capacity}); retry with backoff"),
        details: vec![("capacity", Value::from(capacity))],
    }
}

/// The body of a shutdown rejection (503): the server is draining.
pub fn shutting_down_error() -> ApiError {
    ApiError {
        status: 503,
        code: "shutting_down",
        message: "server is draining; no new jobs are admitted".to_string(),
        details: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GHZ: &str = "OPENQASM 2.0;\nqreg q[3];\nh q[0];\ncx q[0],q[1];\ncx q[1],q[2];\n";

    fn spec_json(extra: &str) -> String {
        format!("{{\"qasm\": \"OPENQASM 2.0;\\nqreg q[2];\\nh q[0];\\ncx q[0],q[1];\\n\"{extra}}}")
    }

    #[test]
    fn minimal_spec_gets_defaults() {
        let spec = JobSpec::from_json(&spec_json("")).unwrap();
        assert_eq!(spec.backend, BackendKind::Statevector);
        assert_eq!(spec.plan, ShotPlan::Fixed(DEFAULT_JOB_SHOTS));
        assert_eq!(spec.seed, None);
        assert_eq!(spec.filter, FilterPolicy::RequireKept);
        assert!(spec.measure_data);
        assert!(spec.assertions.is_empty());
    }

    #[test]
    fn full_spec_parses() {
        let body = format!(
            "{{\"qasm\": {:?}, \"backend\": \"stabilizer\", \
             \"plan\": {{\"sequential\": {{\"alpha\": 0.01, \"min_shots\": 32, \
             \"max_shots\": 2048, \"tranche\": 64}}}}, \
             \"seed\": 7, \"threads\": 2, \"filter\": \"allow-empty\", \
             \"assertions\": [ \
               {{\"kind\": \"entangled\", \"qubits\": [0, 1, 2], \"parity\": \"even\"}}, \
               {{\"kind\": \"superposition\", \"qubit\": 0, \"basis\": \"plus\"}}, \
               {{\"kind\": \"classical\", \"qubits\": [2], \"expected\": [false]}} ], \
             \"measure_data\": true}}",
            GHZ
        );
        let spec = JobSpec::from_json(&body).unwrap();
        assert_eq!(spec.backend, BackendKind::Stabilizer);
        assert_eq!(
            spec.plan,
            ShotPlan::Sequential {
                alpha: 0.01,
                min_shots: 32,
                max_shots: 2048,
                tranche: 64
            }
        );
        assert_eq!(spec.seed, Some(7));
        assert_eq!(spec.threads, Some(2));
        assert_eq!(spec.filter, FilterPolicy::AllowEmpty);
        assert_eq!(spec.assertions.len(), 3);
        let circuit = spec.build_circuit().unwrap();
        assert_eq!(circuit.records().len(), 3);
    }

    #[test]
    fn bad_json_is_a_400_with_code() {
        let err = JobSpec::from_json("{not json").unwrap_err();
        assert_eq!(err.status, 400);
        assert_eq!(err.code, "invalid_json");
        assert!(err.body().contains("\"error\":\"invalid_json\""));
    }

    #[test]
    fn qasm_errors_carry_the_span_into_the_body() {
        let spec =
            JobSpec::from_json("{\"qasm\": \"OPENQASM 2.0;\\nqreg q[1];\\nfrobnicate q[0];\\n\"}")
                .unwrap_err_or_build();
        assert_eq!(spec.status, 400);
        assert_eq!(spec.code, "invalid_qasm");
        let body = spec.body();
        assert!(body.contains("\"line\":3"), "body: {body}");
        assert!(body.contains("\"col\":1"), "body: {body}");
    }

    // Helper so the test above reads linearly: parse must succeed (the
    // spec shape is fine), building must fail (the QASM is not).
    trait UnwrapErrOrBuild {
        fn unwrap_err_or_build(self) -> ApiError;
    }
    impl UnwrapErrOrBuild for Result<JobSpec, ApiError> {
        fn unwrap_err_or_build(self) -> ApiError {
            match self {
                Ok(spec) => spec.build_circuit().expect_err("qasm must fail"),
                Err(e) => e,
            }
        }
    }

    #[test]
    fn unknown_backend_and_bad_plan_are_rejected() {
        let err = JobSpec::from_json(&spec_json(", \"backend\": \"quantum-cloud\"")).unwrap_err();
        assert_eq!(err.code, "unknown_backend");
        let err = JobSpec::from_json(&spec_json(", \"plan\": {\"fixed\": 0}")).unwrap_err();
        assert_eq!(err.code, "invalid_plan");
        let err =
            JobSpec::from_json(&spec_json(", \"plan\": {\"fixed\": 99999999999}")).unwrap_err();
        assert_eq!(err.code, "budget_too_large");
        assert_eq!(err.status, 400);
    }

    #[test]
    fn assertion_spec_errors_name_the_index() {
        let err = JobSpec::from_json(&spec_json(", \"assertions\": [{\"kind\": \"telepathy\"}]"))
            .unwrap_err();
        assert!(err.message.contains("assertion 0"), "{}", err.message);
        let err = JobSpec::from_json(&spec_json(
            ", \"assertions\": [{\"kind\": \"classical\", \"qubits\": [0]}]",
        ))
        .unwrap_err();
        assert!(err.message.contains("expected"), "{}", err.message);
    }

    #[test]
    fn out_of_range_assertion_fails_at_build() {
        let spec = JobSpec::from_json(&spec_json(
            ", \"assertions\": [{\"kind\": \"superposition\", \"qubit\": 99}]",
        ))
        .unwrap();
        let err = spec.build_circuit().unwrap_err();
        assert_eq!(err.code, "invalid_assertion");
    }

    #[test]
    fn queue_full_body_names_the_capacity() {
        let err = queue_full_error(32);
        assert_eq!(err.status, 429);
        let body = err.body();
        assert!(body.contains("\"error\":\"queue_full\""), "{body}");
        assert!(body.contains("\"capacity\":32"), "{body}");
    }

    #[test]
    fn records_render_deterministically() {
        use qassert::AssertionSession;
        use qsim::StatevectorBackend;

        let spec = JobSpec::from_json(&format!(
            "{{\"qasm\": {GHZ:?}, \"seed\": 11, \
             \"assertions\": [{{\"kind\": \"entangled\", \"qubits\": [0, 1, 2]}}]}}"
        ))
        .unwrap();
        let circuit = spec.build_circuit().unwrap();
        let session = AssertionSession::new(StatevectorBackend::new())
            .seed(11)
            .shot_plan(spec.plan);
        let a = session.run(&circuit).unwrap();
        let b = session.run(&circuit).unwrap();
        let render = |o: &AssertionOutcome| {
            outcome_records(o, circuit.records())
                .iter()
                .map(Value::render)
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(render(&a), render(&b), "seeded renders are byte-identical");
        assert!(render(&a).contains("\"type\":\"verdict\""));
        assert!(render(&a).contains("\"kind\":\"entanglement\""));
        assert!(render(&a).contains("\"type\":\"plan\""));
    }
}
