//! The server: listener, connection workers, job workers, shared
//! session infrastructure, and graceful shutdown.
//!
//! # Threading model
//!
//! ```text
//! accept loop ──> connection channel ──> conn workers (parse, route,
//!      │                                  admission, stream response)
//!      │                                        │ submit
//!      │                                        v
//!      │                                  JobQueue (bounded, fair)
//!      │                                        │ pop
//!      │                                        v
//!      └─ shutdown flag              job workers (AssertionSession
//!                                    over the shared cache/registry/
//!                                    shard pool) ──result channel──>
//!                                    the submitting conn worker
//! ```
//!
//! Connection workers block on their own connection's socket and on
//! the job result channel only; job workers block on the queue only.
//! Execution capacity is `job_workers` sessions; everything beyond
//! that waits in the queue, and everything beyond the queue bound is
//! rejected with a typed 429 **before** any compile or shot work.
//!
//! # Graceful shutdown
//!
//! [`Server::shutdown`] (also triggered by dropping the server):
//! 1. the accept loop stops taking connections and exits,
//! 2. connection workers finish the requests they already accepted —
//!    streams for queued jobs complete because job workers are still
//!    running — then exit as the connection channel drains,
//! 3. the queue closes: late submissions get 503, admitted jobs are
//!    drained to completion,
//! 4. job workers exit on the drained queue; every thread is joined.

use crate::http::{self, ChunkedWriter, Request, RequestError};
use crate::json::{obj, Value};
use crate::protocol::{
    outcome_records, queue_full_error, shutting_down_error, telemetry_record, ApiError, JobSpec,
};
use crate::queue::{JobQueue, SubmitError};
use qassert::{AssertingCircuit, AssertionSession, SessionTelemetry};
use qnoise::presets;
use qsim::PrefixRegistry;
use qsim::{
    Backend, BackendKind, DensityMatrixBackend, HybridBackend, ProgramCache, ShardPool,
    StabilizerBackend, StatevectorBackend, TrajectoryBackend,
};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

/// Server sizing and limits.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (tests, benches).
    pub addr: String,
    /// Threads executing jobs (concurrent `AssertionSession`s).
    pub job_workers: usize,
    /// Threads parsing/answering connections. Must exceed
    /// `job_workers` a little so queue-full rejections are answered
    /// while every job worker is busy.
    pub conn_workers: usize,
    /// Bound on queued (admitted, not yet executing) jobs.
    pub queue_capacity: usize,
    /// Bound on request body size in bytes (413 beyond it).
    pub max_body_bytes: usize,
    /// Capacity of the shared compiled-program cache.
    pub cache_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let cores = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        ServerConfig {
            addr: "127.0.0.1:7177".to_string(),
            job_workers: cores.clamp(1, 4),
            conn_workers: (2 * cores).clamp(4, 16),
            queue_capacity: 64,
            max_body_bytes: 1 << 20,
            cache_capacity: 512,
        }
    }
}

/// One admitted job: the parsed spec, the instrumented circuit, and
/// the channel its results flow back on.
struct Job {
    spec: JobSpec,
    circuit: AssertingCircuit,
    results: mpsc::Sender<Result<Vec<String>, ApiError>>,
}

/// State shared by every worker thread.
struct ServeState {
    cache: ProgramCache,
    prefixes: Arc<PrefixRegistry>,
    queue: JobQueue<Job>,
    max_body_bytes: usize,
    /// Jobs currently executing on a job worker (gauge).
    jobs_running: AtomicUsize,
    /// Jobs completed (success or execution failure) since start.
    jobs_done: AtomicU64,
    /// Submissions rejected by admission control (429) since start.
    jobs_rejected: AtomicU64,
}

impl ServeState {
    /// The `/healthz` body: liveness plus the load gauges an external
    /// admission controller or autoscaler needs.
    fn health_body(&self) -> String {
        let pool = ShardPool::global_gauges();
        obj([
            ("status", Value::from("ok")),
            ("queue_depth", Value::from(self.queue.depth())),
            ("queue_capacity", Value::from(self.queue.capacity())),
            (
                "jobs_running",
                Value::from(self.jobs_running.load(Ordering::Relaxed)),
            ),
            ("pool_workers", Value::from(pool.workers)),
            ("pool_queue_depth", Value::from(pool.queue_depth)),
        ])
        .render()
    }

    /// The `/metrics` body: everything in `/healthz` plus lifetime
    /// counters and shared-infrastructure statistics.
    fn metrics_body(&self) -> String {
        let pool = ShardPool::global_gauges();
        let cache = self.cache.stats();
        obj([
            ("queue_depth", Value::from(self.queue.depth())),
            ("queue_capacity", Value::from(self.queue.capacity())),
            (
                "jobs_running",
                Value::from(self.jobs_running.load(Ordering::Relaxed)),
            ),
            (
                "jobs_done",
                Value::from(self.jobs_done.load(Ordering::Relaxed)),
            ),
            (
                "jobs_rejected",
                Value::from(self.jobs_rejected.load(Ordering::Relaxed)),
            ),
            ("cache_hits", Value::from(cache.hits)),
            ("cache_misses", Value::from(cache.misses)),
            ("prefix_hits", Value::from(self.prefixes.hits())),
            ("pool_workers", Value::from(pool.workers)),
            ("pool_queue_depth", Value::from(pool.queue_depth)),
        ])
        .render()
    }
}

/// A running assertion server. Obtain with [`Server::start`]; stop
/// with [`Server::shutdown`] (or by dropping it).
pub struct Server {
    addr: SocketAddr,
    state: Arc<ServeState>,
    shutdown: Arc<AtomicBool>,
    accept_handle: Option<std::thread::JoinHandle<()>>,
    conn_handles: Vec<std::thread::JoinHandle<()>>,
    job_handles: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds the listener and spawns the worker threads.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn start(config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let state = Arc::new(ServeState {
            cache: ProgramCache::new(config.cache_capacity.max(1)),
            prefixes: Arc::new(PrefixRegistry::new()),
            queue: JobQueue::new(config.queue_capacity),
            max_body_bytes: config.max_body_bytes,
            jobs_running: AtomicUsize::new(0),
            jobs_done: AtomicU64::new(0),
            jobs_rejected: AtomicU64::new(0),
        });
        let shutdown = Arc::new(AtomicBool::new(false));

        // Connections flow accept loop -> channel -> conn workers; the
        // receiver is shared behind a mutex (a multi-consumer channel
        // out of std's single-consumer one).
        let (conn_tx, conn_rx) = mpsc::channel::<TcpStream>();
        let conn_rx = Arc::new(Mutex::new(conn_rx));

        let mut conn_handles = Vec::new();
        for i in 0..config.conn_workers.max(1) {
            let state = Arc::clone(&state);
            let conn_rx = Arc::clone(&conn_rx);
            conn_handles.push(
                std::thread::Builder::new()
                    .name(format!("serve-conn-{i}"))
                    .spawn(move || loop {
                        let next = conn_rx.lock().expect("conn channel lock").recv();
                        match next {
                            Ok(stream) => handle_connection(&state, stream),
                            Err(_) => return, // accept loop gone: drain done
                        }
                    })
                    .expect("spawn conn worker"),
            );
        }

        let mut job_handles = Vec::new();
        for i in 0..config.job_workers.max(1) {
            let state = Arc::clone(&state);
            job_handles.push(
                std::thread::Builder::new()
                    .name(format!("serve-job-{i}"))
                    .spawn(move || {
                        while let Some(job) = state.queue.pop() {
                            state.jobs_running.fetch_add(1, Ordering::SeqCst);
                            let result = execute(&state, &job.spec, &job.circuit);
                            state.jobs_running.fetch_sub(1, Ordering::SeqCst);
                            state.jobs_done.fetch_add(1, Ordering::Relaxed);
                            // The conn worker may have gone away (client
                            // hangup); the job's work is done either way.
                            let _ = job.results.send(result);
                        }
                    })
                    .expect("spawn job worker"),
            );
        }

        let accept_shutdown = Arc::clone(&shutdown);
        let accept_handle = std::thread::Builder::new()
            .name("serve-accept".to_string())
            .spawn(move || {
                while !accept_shutdown.load(Ordering::Acquire) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            // The listener is nonblocking; the accepted
                            // stream must not be.
                            if stream.set_nonblocking(false).is_ok()
                                && conn_tx.send(stream).is_err()
                            {
                                return; // workers gone; nothing to serve
                            }
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => std::thread::sleep(Duration::from_millis(5)),
                    }
                }
                // conn_tx drops here, letting conn workers drain out.
            })
            .expect("spawn accept loop");

        Ok(Server {
            addr,
            state,
            shutdown,
            accept_handle: Some(accept_handle),
            conn_handles,
            job_handles,
        })
    }

    /// The bound address (resolves port 0 to the ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests shutdown without waiting: the accept loop stops, the
    /// drain proceeds in the background. [`Server::shutdown`] (or
    /// drop) still must run to join the threads. Signal handlers use
    /// this — it is async-signal-safe to *request* from anywhere.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
    }

    /// Gracefully stops the server: no new connections, already
    /// accepted requests finish, admitted jobs drain, all threads
    /// join. Idempotent via drop (shutdown then drop is fine).
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        // Conn workers exit once the (now sender-less) channel drains;
        // their queued jobs still execute because job workers are
        // alive until the queue closes *and* drains below.
        for handle in self.conn_handles.drain(..) {
            let _ = handle.join();
        }
        self.state.queue.close();
        for handle in self.job_handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

/// Serves one connection: parse, route, respond, close.
fn handle_connection(state: &Arc<ServeState>, mut stream: TcpStream) {
    let request = match http::read_request(&stream, state.max_body_bytes) {
        Ok(request) => request,
        Err(RequestError::Closed) => return,
        Err(RequestError::Malformed(reason)) => {
            let err = ApiError::bad_request("malformed_request", reason);
            let _ = http::write_response(
                &mut stream,
                err.status,
                "application/json",
                err.body().as_bytes(),
            );
            return;
        }
        Err(RequestError::BodyTooLarge { announced, limit }) => {
            let err = ApiError {
                status: 413,
                code: "body_too_large",
                message: format!("body of {announced} bytes exceeds the {limit}-byte limit"),
                details: vec![("limit", Value::from(limit))],
            };
            let _ = http::write_response(
                &mut stream,
                err.status,
                "application/json",
                err.body().as_bytes(),
            );
            return;
        }
        Err(RequestError::Io(_)) => return,
    };

    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/v1/jobs") => handle_job(state, stream, &request),
        ("GET", "/healthz") => {
            let _ = http::write_response(
                &mut stream,
                200,
                "application/json",
                state.health_body().as_bytes(),
            );
        }
        ("GET", "/metrics") => {
            let _ = http::write_response(
                &mut stream,
                200,
                "application/json",
                state.metrics_body().as_bytes(),
            );
        }
        (_, "/v1/jobs" | "/healthz" | "/metrics") => {
            let err = ApiError {
                status: 405,
                code: "method_not_allowed",
                message: format!("method {} not allowed here", request.method),
                details: Vec::new(),
            };
            let _ = http::write_response(
                &mut stream,
                err.status,
                "application/json",
                err.body().as_bytes(),
            );
        }
        (_, path) => {
            let err = ApiError {
                status: 404,
                code: "not_found",
                message: format!("no route for '{path}'"),
                details: Vec::new(),
            };
            let _ = http::write_response(
                &mut stream,
                err.status,
                "application/json",
                err.body().as_bytes(),
            );
        }
    }
}

/// Parses, admits, and streams one job submission.
fn handle_job(state: &Arc<ServeState>, mut stream: TcpStream, request: &Request) {
    let answer = |stream: &mut TcpStream, err: ApiError| {
        let _ = http::write_response(
            stream,
            err.status,
            "application/json",
            err.body().as_bytes(),
        );
    };

    let body = match std::str::from_utf8(&request.body) {
        Ok(body) => body,
        Err(_) => {
            answer(
                &mut stream,
                ApiError::bad_request("invalid_json", "body is not valid UTF-8"),
            );
            return;
        }
    };
    let spec = match JobSpec::from_json(body) {
        Ok(spec) => spec,
        Err(err) => {
            answer(&mut stream, err);
            return;
        }
    };
    // Parse the QASM and instrument the assertions *before* admission:
    // a malformed job must cost a 400, never a queue slot.
    let circuit = match spec.build_circuit() {
        Ok(circuit) => circuit,
        Err(err) => {
            answer(&mut stream, err);
            return;
        }
    };

    let tenant = request.header("x-api-token").unwrap_or("anonymous");
    let (results_tx, results_rx) = mpsc::channel();
    let job = Job {
        spec,
        circuit,
        results: results_tx,
    };
    match state.queue.submit(tenant, job) {
        Err(SubmitError::Full { capacity }) => {
            state.jobs_rejected.fetch_add(1, Ordering::Relaxed);
            answer(&mut stream, queue_full_error(capacity));
            return;
        }
        Err(SubmitError::Closed) => {
            answer(&mut stream, shutting_down_error());
            return;
        }
        Ok(()) => {}
    }

    // The job is admitted; the status line depends on whether execution
    // succeeds, so wait for the result before writing anything.
    match results_rx.recv() {
        Ok(Ok(lines)) => {
            let Ok(mut writer) = ChunkedWriter::start(&mut stream, 200, "application/x-ndjson")
            else {
                return;
            };
            for line in &lines {
                if writer.write_record(line).is_err() {
                    return; // client hung up mid-stream
                }
            }
            let _ = writer.finish();
        }
        Ok(Err(err)) => answer(&mut stream, err),
        Err(_) => {
            // The job worker died (it never does without a panic in
            // execution, which execute() converts to an error — this is
            // strictly a belt-and-braces path).
            answer(
                &mut stream,
                ApiError {
                    status: 500,
                    code: "internal",
                    message: "job worker failed".to_string(),
                    details: Vec::new(),
                },
            );
        }
    }
}

/// Executes one admitted job on the requested backend through a
/// session sharing the server-wide cache and prefix registry, and
/// renders the full NDJSON record stream (telemetry trailer included).
fn execute(
    state: &ServeState,
    spec: &JobSpec,
    circuit: &AssertingCircuit,
) -> Result<Vec<String>, ApiError> {
    let n = circuit.circuit().num_qubits();
    let noise_for = |spec: &JobSpec| -> Result<Option<qnoise::NoiseModel>, ApiError> {
        match spec.noise {
            None => Ok(None),
            Some((p1, p2, readout)) => presets::uniform(n, p1, p2, readout)
                .map(Some)
                .map_err(|e| ApiError::bad_request("invalid_noise", e.to_string())),
        }
    };
    match spec.backend {
        BackendKind::Statevector => run_session(state, spec, circuit, StatevectorBackend::new()),
        BackendKind::Trajectory => {
            let noise = noise_for(spec)?
                .unwrap_or_else(|| presets::uniform(n, 0.0, 0.0, 0.0).expect("zero noise model"));
            run_session(state, spec, circuit, TrajectoryBackend::new(noise))
        }
        BackendKind::DensityMatrix => match noise_for(spec)? {
            Some(noise) => run_session(state, spec, circuit, DensityMatrixBackend::new(noise)),
            None => run_session(state, spec, circuit, DensityMatrixBackend::ideal()),
        },
        BackendKind::Stabilizer => match noise_for(spec)? {
            Some(noise) => run_session(state, spec, circuit, StabilizerBackend::new(noise)),
            None => run_session(state, spec, circuit, StabilizerBackend::ideal()),
        },
        BackendKind::Hybrid => match noise_for(spec)? {
            Some(noise) => run_session(state, spec, circuit, HybridBackend::new(noise)),
            None => run_session(state, spec, circuit, HybridBackend::ideal()),
        },
        BackendKind::Other => Err(ApiError::bad_request(
            "unknown_backend",
            "unsupported backend kind",
        )),
    }
}

/// The generic leg of [`execute`]: builds the session, runs the
/// circuit, renders records. Execution failures (non-Clifford programs
/// on the stabilizer backend, every shot filtered under
/// `require-kept`, …) map to a 422 — the job was well-formed but not
/// processable as submitted.
fn run_session<B: Backend>(
    state: &ServeState,
    spec: &JobSpec,
    circuit: &AssertingCircuit,
    backend: B,
) -> Result<Vec<String>, ApiError> {
    let mut session = AssertionSession::new(backend)
        .cache(&state.cache)
        .prefix_registry(Arc::clone(&state.prefixes))
        .shot_plan(spec.plan)
        .filter_policy(spec.filter);
    if let Some(seed) = spec.seed {
        session = session.seed(seed);
    }
    if let Some(threads) = spec.threads {
        session = session.threads(threads);
    }
    let outcome = session.run(circuit).map_err(|e| ApiError {
        status: 422,
        code: "execution_failed",
        message: e.to_string(),
        details: Vec::new(),
    })?;
    let telemetry: SessionTelemetry = session.telemetry();
    let pool = ShardPool::global_gauges();
    let mut lines: Vec<String> = outcome_records(&outcome, circuit.records())
        .iter()
        .map(Value::render)
        .collect();
    lines.push(
        telemetry_record(
            &telemetry,
            vec![
                ("backend", Value::from(spec.backend.as_str())),
                ("queue_depth", Value::from(state.queue.depth())),
                ("pool_workers", Value::from(pool.workers)),
            ],
        )
        .render(),
    );
    Ok(lines)
}
