//! A hand-rolled HTTP/1.1 subset over `std::net`.
//!
//! The container has no tokio (or any crates registry at all), so this
//! is the same std-only style as the workspace's other shims: blocking
//! sockets with read timeouts, a request parser covering exactly what
//! the service needs (request line, headers, `Content-Length` bodies),
//! and response writers for fixed bodies and `chunked` NDJSON streams.
//!
//! Not supported, deliberately: request pipelining (each connection
//! serves one request — the server answers `Connection: close`),
//! `Transfer-Encoding` on *requests*, multi-line headers, and TLS
//! (terminate it in front).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// How long a connection may sit idle mid-request before the read
/// fails: slow-loris protection for the blocking worker threads.
pub const READ_TIMEOUT: Duration = Duration::from_secs(10);

/// A parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method token as sent (`GET`, `POST`, …).
    pub method: String,
    /// Request target path, query string stripped.
    pub path: String,
    /// Header names lowercased; last occurrence wins.
    headers: Vec<(String, String)>,
    /// The body, when `Content-Length` announced one.
    pub body: Vec<u8>,
}

impl Request {
    /// Header `name` (ASCII case-insensitive), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .rev()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum RequestError {
    /// The peer closed before sending a complete request.
    Closed,
    /// The request was syntactically invalid (maps to 400).
    Malformed(String),
    /// The announced body exceeds the server's limit (maps to 413).
    BodyTooLarge {
        /// Announced `Content-Length`.
        announced: usize,
        /// The configured cap.
        limit: usize,
    },
    /// The socket failed mid-read (timeout included).
    Io(std::io::Error),
}

/// Reads one request from `stream`, capping bodies at `max_body`.
///
/// # Errors
///
/// See [`RequestError`]; `Malformed` and `BodyTooLarge` should be
/// answered with 400/413 before closing.
pub fn read_request(stream: &TcpStream, max_body: usize) -> Result<Request, RequestError> {
    stream
        .set_read_timeout(Some(READ_TIMEOUT))
        .map_err(RequestError::Io)?;
    let mut reader = BufReader::new(stream);

    let mut line = String::new();
    if reader.read_line(&mut line).map_err(RequestError::Io)? == 0 {
        return Err(RequestError::Closed);
    }
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| RequestError::Malformed("empty request line".into()))?
        .to_string();
    let target = parts
        .next()
        .ok_or_else(|| RequestError::Malformed("request line has no target".into()))?;
    let version = parts
        .next()
        .ok_or_else(|| RequestError::Malformed("request line has no version".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(RequestError::Malformed(format!(
            "unsupported version '{version}'"
        )));
    }
    let path = target.split('?').next().unwrap_or(target).to_string();

    let mut headers = Vec::new();
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line).map_err(RequestError::Io)? == 0 {
            return Err(RequestError::Malformed("truncated headers".into()));
        }
        let line = line.trim_end_matches(['\r', '\n']);
        if line.is_empty() {
            break;
        }
        if headers.len() >= 128 {
            return Err(RequestError::Malformed("too many headers".into()));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| RequestError::Malformed(format!("header without ':': '{line}'")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = headers
        .iter()
        .rev()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| RequestError::Malformed(format!("bad content-length '{v}'")))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > max_body {
        return Err(RequestError::BodyTooLarge {
            announced: content_length,
            limit: max_body,
        });
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(RequestError::Io)?;

    Ok(Request {
        method,
        path,
        headers,
        body,
    })
}

/// The reason phrase for the status codes this service emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Writes a complete response with a fixed body and closes the
/// exchange (`Connection: close`). Write errors are returned so the
/// caller can log them; the peer may legitimately have gone away.
///
/// # Errors
///
/// Propagates socket write failures.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &[u8],
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {}\r\ncontent-type: {content_type}\r\n\
         content-length: {}\r\nconnection: close\r\n\r\n",
        reason(status),
        body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// An in-progress `Transfer-Encoding: chunked` response: one chunk per
/// NDJSON record, so the client sees each record as soon as the job
/// produces it.
pub struct ChunkedWriter<'s> {
    stream: &'s mut TcpStream,
}

impl<'s> ChunkedWriter<'s> {
    /// Writes the response head and returns the chunk writer.
    ///
    /// # Errors
    ///
    /// Propagates socket write failures.
    pub fn start(
        stream: &'s mut TcpStream,
        status: u16,
        content_type: &str,
    ) -> std::io::Result<Self> {
        let head = format!(
            "HTTP/1.1 {status} {}\r\ncontent-type: {content_type}\r\n\
             transfer-encoding: chunked\r\nconnection: close\r\n\r\n",
            reason(status),
        );
        stream.write_all(head.as_bytes())?;
        stream.flush()?;
        Ok(ChunkedWriter { stream })
    }

    /// Sends `line` plus its newline as one flushed chunk.
    ///
    /// # Errors
    ///
    /// Propagates socket write failures (the client hung up).
    pub fn write_record(&mut self, line: &str) -> std::io::Result<()> {
        let payload_len = line.len() + 1;
        write!(self.stream, "{payload_len:x}\r\n")?;
        self.stream.write_all(line.as_bytes())?;
        self.stream.write_all(b"\n\r\n")?;
        self.stream.flush()
    }

    /// Terminates the stream with the zero-length chunk.
    ///
    /// # Errors
    ///
    /// Propagates socket write failures.
    pub fn finish(self) -> std::io::Result<()> {
        self.stream.write_all(b"0\r\n\r\n")?;
        self.stream.flush()
    }
}

/// Reads `reader` to end-of-stream and decodes a chunked body into the
/// raw payload bytes. Used by the loopback client; tolerates (ignores)
/// trailers.
///
/// # Errors
///
/// Fails on syntactically invalid chunk framing or socket errors.
pub fn decode_chunked(reader: &mut impl BufRead) -> std::io::Result<Vec<u8>> {
    let mut out = Vec::new();
    loop {
        let mut size_line = String::new();
        if reader.read_line(&mut size_line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "eof before terminating chunk",
            ));
        }
        let size_text = size_line.trim().split(';').next().unwrap_or("").trim();
        let size = usize::from_str_radix(size_text, 16).map_err(|_| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("bad chunk size '{size_text}'"),
            )
        })?;
        if size == 0 {
            // Consume the (possibly empty) trailer section.
            loop {
                let mut trailer = String::new();
                if reader.read_line(&mut trailer)? == 0 || trailer.trim().is_empty() {
                    return Ok(out);
                }
            }
        }
        let mut chunk = vec![0u8; size];
        reader.read_exact(&mut chunk)?;
        out.extend_from_slice(&chunk);
        let mut crlf = [0u8; 2];
        reader.read_exact(&mut crlf)?;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    /// Runs `client` against a socket pair, returning what the other
    /// end received after `server` wrote to it.
    fn pipe(server: impl FnOnce(&mut TcpStream) + Send + 'static) -> Vec<u8> {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let writer = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().expect("accept");
            server(&mut stream);
        });
        let mut client = TcpStream::connect(addr).expect("connect");
        let mut received = Vec::new();
        client.read_to_end(&mut received).expect("read");
        writer.join().expect("server thread");
        received
    }

    #[test]
    fn request_round_trips_through_a_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).expect("connect");
            stream
                .write_all(
                    b"POST /v1/jobs?debug=1 HTTP/1.1\r\nHost: x\r\nX-Api-Token: alice\r\n\
                      Content-Length: 4\r\n\r\nbody",
                )
                .expect("write");
        });
        let (stream, _) = listener.accept().expect("accept");
        let request = read_request(&stream, 1024).expect("parse");
        client.join().expect("client thread");
        assert_eq!(request.method, "POST");
        assert_eq!(request.path, "/v1/jobs", "query string is stripped");
        assert_eq!(request.header("x-api-token"), Some("alice"));
        assert_eq!(request.header("X-API-TOKEN"), Some("alice"));
        assert_eq!(request.body, b"body");
    }

    #[test]
    fn oversized_bodies_are_rejected_before_reading() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).expect("connect");
            // The body itself is never sent: the cap must trip on the
            // announced length alone.
            stream
                .write_all(b"POST / HTTP/1.1\r\nContent-Length: 99999\r\n\r\n")
                .expect("write");
        });
        let (stream, _) = listener.accept().expect("accept");
        let err = read_request(&stream, 1024).unwrap_err();
        client.join().expect("client thread");
        match err {
            RequestError::BodyTooLarge { announced, limit } => {
                assert_eq!(announced, 99999);
                assert_eq!(limit, 1024);
            }
            other => panic!("expected BodyTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn malformed_requests_are_typed_errors() {
        for (raw, what) in [
            (&b"GARBAGE\r\n\r\n"[..], "no target"),
            (&b"GET / SPDY/3\r\n\r\n"[..], "bad version"),
            (
                &b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n"[..],
                "bad header",
            ),
        ] {
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
            let addr = listener.local_addr().expect("addr");
            let client = std::thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).expect("connect");
                stream.write_all(raw).expect("write");
            });
            let (stream, _) = listener.accept().expect("accept");
            let err = read_request(&stream, 1024).unwrap_err();
            client.join().expect("client thread");
            assert!(
                matches!(err, RequestError::Malformed(_)),
                "{what}: expected Malformed, got {err:?}"
            );
        }
    }

    #[test]
    fn fixed_response_has_content_length_framing() {
        let received = pipe(|stream| {
            write_response(stream, 429, "application/json", b"{\"x\":1}").expect("write");
        });
        let text = String::from_utf8(received).expect("utf-8");
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("content-length: 7\r\n"));
        assert!(text.ends_with("{\"x\":1}"));
    }

    #[test]
    fn chunked_stream_decodes_to_the_records() {
        let received = pipe(|stream| {
            let mut w = ChunkedWriter::start(stream, 200, "application/x-ndjson").expect("start");
            w.write_record("{\"a\":1}").expect("record");
            w.write_record("{\"b\":2}").expect("record");
            w.finish().expect("finish");
        });
        let text = String::from_utf8(received).expect("utf-8");
        assert!(text.contains("transfer-encoding: chunked"));
        let body_start = text.find("\r\n\r\n").expect("head end") + 4;
        let mut body = std::io::BufReader::new(&text.as_bytes()[body_start..]);
        let decoded = decode_chunked(&mut body).expect("decode");
        assert_eq!(
            String::from_utf8(decoded).expect("utf-8"),
            "{\"a\":1}\n{\"b\":2}\n"
        );
    }
}
