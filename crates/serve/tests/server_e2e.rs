//! End-to-end tests: a real server on an ephemeral port, real sockets,
//! the crate's own blocking client.

use qassert::AssertionSession;
use qassert_serve::json::Value;
use qassert_serve::protocol::outcome_records;
use qassert_serve::{client, JobSpec, Server, ServerConfig};
use qsim::StatevectorBackend;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

const GHZ_QASM: &str = "OPENQASM 2.0;\\nqreg q[3];\\nh q[0];\\ncx q[0],q[1];\\ncx q[1],q[2];\\n";

fn test_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        job_workers: 2,
        conn_workers: 8,
        queue_capacity: 8,
        max_body_bytes: 64 * 1024,
        cache_capacity: 64,
    }
}

fn ghz_job(extra: &str) -> String {
    format!(
        "{{\"qasm\": \"{GHZ_QASM}\", \"seed\": 7, \"plan\": {{\"fixed\": 512}}, \
         \"assertions\": [ \
           {{\"kind\": \"entangled\", \"qubits\": [0, 1, 2], \"parity\": \"even\"}}, \
           {{\"kind\": \"superposition\", \"qubit\": 0}} ]{extra}}}"
    )
}

/// Polls `/metrics` until `pred` on the parsed body holds (or panics
/// after `deadline`).
fn wait_for_metrics(addr: SocketAddr, deadline: Duration, pred: impl Fn(&Value) -> bool) -> Value {
    let start = Instant::now();
    let mut last = String::new();
    loop {
        if let Ok(response) = client::get(addr, "/metrics") {
            let metrics = qassert_serve::json::parse(&response.body).expect("metrics JSON");
            if pred(&metrics) {
                return metrics;
            }
            last = metrics.render();
        }
        assert!(
            start.elapsed() < deadline,
            "metrics never reached the expected state; last seen: {last}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn field(value: &Value, name: &str) -> u64 {
    value.get(name).and_then(Value::as_u64).unwrap_or_else(|| {
        panic!("metrics field {name} missing in {}", value.render());
    })
}

#[test]
fn ghz_job_streams_verdicts_bit_identical_to_direct_session() {
    let server = Server::start(test_config()).expect("start");
    let body = ghz_job("");

    let response = client::post_job(server.addr(), "tenant-a", &body).expect("post");
    assert_eq!(response.status, 200, "body: {}", response.body);
    assert_eq!(
        response.header("content-type"),
        Some("application/x-ndjson")
    );
    let wire_lines: Vec<&str> = response
        .ndjson_lines()
        .into_iter()
        .filter(|l| !l.contains("\"type\":\"telemetry\""))
        .collect();

    // The same spec executed directly through the session layer must
    // render the exact same bytes for every non-telemetry record.
    let spec = JobSpec::from_json(&body).expect("spec");
    let circuit = spec.build_circuit().expect("circuit");
    let session = AssertionSession::new(StatevectorBackend::new())
        .seed(spec.seed.expect("seed"))
        .shot_plan(spec.plan)
        .filter_policy(spec.filter);
    let outcome = session.run(&circuit).expect("direct run");
    let direct_lines: Vec<String> = outcome_records(&outcome, circuit.records())
        .iter()
        .map(Value::render)
        .collect();

    assert_eq!(wire_lines, direct_lines, "wire and direct renders differ");
    // Sanity on the stream shape: verdict records first (one per
    // assertion), then counts, then plan, then the trailer we filtered.
    assert!(wire_lines[0].contains("\"type\":\"verdict\""));
    assert!(wire_lines[0].contains("\"kind\":\"entanglement\""));
    assert!(wire_lines[1].contains("\"kind\":\"superposition\""));
    assert!(wire_lines[2].contains("\"type\":\"counts\""));
    assert!(wire_lines[3].contains("\"type\":\"plan\""));

    server.shutdown();
}

#[test]
fn repeated_jobs_hit_the_shared_program_cache() {
    let server = Server::start(test_config()).expect("start");
    let body = ghz_job("");

    let first = client::post_job(server.addr(), "t", &body).expect("post");
    assert_eq!(first.status, 200);
    let second = client::post_job(server.addr(), "t", &body).expect("post");
    assert_eq!(second.status, 200);

    let trailer = second
        .ndjson_lines()
        .into_iter()
        .find(|l| l.contains("\"type\":\"telemetry\""))
        .expect("telemetry trailer")
        .to_string();
    let trailer = qassert_serve::json::parse(&trailer).expect("trailer JSON");
    assert!(
        field(&trailer, "cache_hits") > 0,
        "second identical job must reuse the shared compiled program: {}",
        trailer.render()
    );

    let metrics = client::get(server.addr(), "/metrics").expect("metrics");
    let metrics = qassert_serve::json::parse(&metrics.body).expect("metrics JSON");
    assert_eq!(field(&metrics, "jobs_done"), 2);
    assert!(field(&metrics, "cache_hits") > 0);

    server.shutdown();
}

#[test]
fn queue_full_gets_typed_429_without_executing() {
    let server = Server::start(ServerConfig {
        job_workers: 1,
        queue_capacity: 1,
        ..test_config()
    })
    .expect("start");
    let addr = server.addr();

    // Two slow trajectory jobs: one occupies the single worker, the
    // other the single queue slot. Admit them one at a time — waiting
    // for the first to be *popped* before submitting the second —
    // otherwise the second can race the worker for the lone queue slot
    // and take the 429 meant for the probe.
    let slow = format!(
        "{{\"qasm\": \"{GHZ_QASM}\", \"backend\": \"trajectory\", \
         \"noise\": {{\"p1\": 0.001, \"p2\": 0.01, \"readout\": 0.01}}, \
         \"plan\": {{\"fixed\": 300000}}, \"seed\": 1}}"
    );
    let slow_jobs: Vec<_> = (0..2)
        .map(|i| {
            let slow = slow.clone();
            let admitted = if i == 0 {
                |m: &Value| field(m, "jobs_running") == 1
            } else {
                |m: &Value| field(m, "queue_depth") == 1
            };
            let handle =
                std::thread::spawn(move || client::post_job(addr, "flooder", &slow).expect("post"));
            wait_for_metrics(addr, Duration::from_secs(60), admitted);
            handle
        })
        .collect();
    let probe = client::post_job(addr, "victim", &ghz_job("")).expect("probe");
    assert_eq!(probe.status, 429, "body: {}", probe.body);
    assert!(
        probe.body.contains("\"error\":\"queue_full\""),
        "{}",
        probe.body
    );
    assert!(probe.body.contains("\"capacity\":1"), "{}", probe.body);

    for job in slow_jobs {
        let response = job.join().expect("slow job thread");
        assert_eq!(response.status, 200, "body: {}", response.body);
    }
    // The rejected probe never executed: exactly the two admitted jobs
    // ran, and the rejection was counted.
    let metrics = wait_for_metrics(addr, Duration::from_secs(5), |m| {
        field(m, "jobs_running") == 0
    });
    assert_eq!(field(&metrics, "jobs_done"), 2, "{}", metrics.render());
    assert_eq!(field(&metrics, "jobs_rejected"), 1, "{}", metrics.render());

    server.shutdown();
}

#[test]
fn graceful_shutdown_drains_admitted_jobs() {
    let server = Server::start(ServerConfig {
        job_workers: 1,
        queue_capacity: 8,
        ..test_config()
    })
    .expect("start");
    let addr = server.addr();

    let body = format!(
        "{{\"qasm\": \"{GHZ_QASM}\", \"backend\": \"trajectory\", \
         \"noise\": {{\"p1\": 0.001, \"p2\": 0.01, \"readout\": 0.01}}, \
         \"plan\": {{\"fixed\": 15000}}, \"seed\": 2}}"
    );
    let jobs: Vec<_> = (0..4)
        .map(|i| {
            let body = body.clone();
            let tenant = format!("tenant-{i}");
            std::thread::spawn(move || client::post_job(addr, &tenant, &body).expect("post"))
        })
        .collect();

    // All four admitted (done + running + queued accounts for them)…
    wait_for_metrics(addr, Duration::from_secs(20), |m| {
        field(m, "jobs_done") + field(m, "jobs_running") + field(m, "queue_depth") == 4
    });
    // …then shut down while most are still queued behind one worker.
    server.shutdown();

    // Every admitted job still produced a complete 200 stream.
    for job in jobs {
        let response = job.join().expect("job thread");
        assert_eq!(response.status, 200, "body: {}", response.body);
        let lines = response.ndjson_lines();
        assert!(
            lines.iter().any(|l| l.contains("\"type\":\"counts\"")),
            "stream incomplete: {lines:?}"
        );
        assert!(
            lines
                .last()
                .expect("lines")
                .contains("\"type\":\"telemetry\""),
            "missing trailer: {lines:?}"
        );
    }

    // The listener is gone: new connections fail outright.
    assert!(client::get(addr, "/healthz").is_err());
}

#[test]
fn wire_errors_carry_typed_bodies() {
    let server = Server::start(test_config()).expect("start");
    let addr = server.addr();

    // Malformed QASM: 400 with the parse span in the details.
    let bad_qasm = "{\"qasm\": \"OPENQASM 2.0;\\nqreg q[1];\\nfrobnicate q[0];\\n\"}";
    let response = client::post_job(addr, "t", bad_qasm).expect("post");
    assert_eq!(response.status, 400);
    assert!(
        response.body.contains("\"error\":\"invalid_qasm\""),
        "{}",
        response.body
    );
    assert!(response.body.contains("\"line\":3"), "{}", response.body);
    assert!(response.body.contains("\"col\":1"), "{}", response.body);

    // Non-JSON body.
    let response = client::post_job(addr, "t", "this is not json").expect("post");
    assert_eq!(response.status, 400);
    assert!(
        response.body.contains("\"error\":\"invalid_json\""),
        "{}",
        response.body
    );

    // A well-formed job the backend cannot run: 422, not 400.
    let non_clifford =
        "{\"qasm\": \"OPENQASM 2.0;\\nqreg q[2];\\nh q[0];\\nrz(0.3) q[0];\\ncx q[0],q[1];\\n\", \
         \"backend\": \"stabilizer\", \"plan\": {\"fixed\": 64}}";
    let response = client::post_job(addr, "t", non_clifford).expect("post");
    assert_eq!(response.status, 422, "body: {}", response.body);
    assert!(
        response.body.contains("\"error\":\"execution_failed\""),
        "{}",
        response.body
    );

    // Unknown route and wrong method.
    let response = client::get(addr, "/v2/nope").expect("get");
    assert_eq!(response.status, 404);
    let response = client::get(addr, "/v1/jobs").expect("get");
    assert_eq!(response.status, 405);

    // Oversized body: rejected by the announced length, 413.
    let huge = format!("{{\"qasm\": \"{}\"}}", "x".repeat(128 * 1024));
    let response = client::post_job(addr, "t", &huge).expect("post");
    assert_eq!(response.status, 413);
    assert!(
        response.body.contains("\"error\":\"body_too_large\""),
        "{}",
        response.body
    );

    server.shutdown();
}

#[test]
fn health_reports_liveness_and_gauges() {
    let server = Server::start(test_config()).expect("start");
    let response = client::get(server.addr(), "/healthz").expect("healthz");
    assert_eq!(response.status, 200);
    let health = qassert_serve::json::parse(&response.body).expect("health JSON");
    assert_eq!(health.get("status").and_then(Value::as_str), Some("ok"));
    assert_eq!(field(&health, "queue_depth"), 0);
    assert_eq!(field(&health, "queue_capacity"), 8);
    server.shutdown();
}
