//! Logical-to-physical qubit layouts.
//!
//! The router tracks where each logical qubit currently lives as SWAPs
//! accumulate. A [`Layout`] is a permutation `logical → physical`.

use qcircuit::QubitId;
use std::fmt;

/// A bijective map from logical circuit qubits to physical device
/// qubits.
///
/// # Example
///
/// ```
/// use qdevice::Layout;
/// let mut layout = Layout::trivial(3);
/// layout.swap_physical(0.into(), 2.into());
/// assert_eq!(layout.physical(0.into()).index(), 2);
/// assert_eq!(layout.logical(2.into()).unwrap().index(), 0);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Layout {
    /// `logical_to_physical[l]` is the physical home of logical qubit
    /// `l`.
    logical_to_physical: Vec<u32>,
    /// Inverse map; `u32::MAX` marks a physical qubit hosting no logical
    /// qubit (device larger than circuit).
    physical_to_logical: Vec<u32>,
}

impl Layout {
    /// The identity layout of `num_logical` qubits on a device with
    /// `num_physical ≥ num_logical` qubits.
    ///
    /// # Panics
    ///
    /// Panics when the device is smaller than the circuit.
    pub fn trivial_on(num_logical: usize, num_physical: usize) -> Self {
        assert!(
            num_physical >= num_logical,
            "device has {num_physical} qubits, circuit needs {num_logical}"
        );
        let mut physical_to_logical = vec![u32::MAX; num_physical];
        for (l, slot) in physical_to_logical.iter_mut().take(num_logical).enumerate() {
            *slot = l as u32;
        }
        Layout {
            logical_to_physical: (0..num_logical as u32).collect(),
            physical_to_logical,
        }
    }

    /// The identity layout on an equally sized device.
    pub fn trivial(num_qubits: usize) -> Self {
        Layout::trivial_on(num_qubits, num_qubits)
    }

    /// Number of logical qubits.
    pub fn num_logical(&self) -> usize {
        self.logical_to_physical.len()
    }

    /// Number of physical qubits.
    pub fn num_physical(&self) -> usize {
        self.physical_to_logical.len()
    }

    /// The physical home of a logical qubit.
    ///
    /// # Panics
    ///
    /// Panics when `logical` is out of range.
    pub fn physical(&self, logical: QubitId) -> QubitId {
        QubitId::new(self.logical_to_physical[logical.index()])
    }

    /// The logical occupant of a physical qubit, or `None` for spare
    /// device qubits.
    ///
    /// # Panics
    ///
    /// Panics when `physical` is out of range.
    pub fn logical(&self, physical: QubitId) -> Option<QubitId> {
        match self.physical_to_logical[physical.index()] {
            u32::MAX => None,
            l => Some(QubitId::new(l)),
        }
    }

    /// Records a SWAP between two physical locations: whatever logical
    /// qubits live there exchange homes.
    ///
    /// # Panics
    ///
    /// Panics when either location is out of range.
    pub fn swap_physical(&mut self, a: QubitId, b: QubitId) {
        let la = self.physical_to_logical[a.index()];
        let lb = self.physical_to_logical[b.index()];
        self.physical_to_logical.swap(a.index(), b.index());
        if la != u32::MAX {
            self.logical_to_physical[la as usize] = b.index() as u32;
        }
        if lb != u32::MAX {
            self.logical_to_physical[lb as usize] = a.index() as u32;
        }
    }
}

impl fmt::Display for Layout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let pairs: Vec<String> = self
            .logical_to_physical
            .iter()
            .enumerate()
            .map(|(l, p)| format!("q{l}→Q{p}"))
            .collect();
        write!(f, "layout({})", pairs.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(i: u32) -> QubitId {
        QubitId::new(i)
    }

    #[test]
    fn trivial_layout_is_identity() {
        let layout = Layout::trivial(3);
        for i in 0..3u32 {
            assert_eq!(layout.physical(q(i)), q(i));
            assert_eq!(layout.logical(q(i)), Some(q(i)));
        }
    }

    #[test]
    fn oversized_device_has_spares() {
        let layout = Layout::trivial_on(2, 5);
        assert_eq!(layout.num_logical(), 2);
        assert_eq!(layout.num_physical(), 5);
        assert_eq!(layout.logical(q(4)), None);
    }

    #[test]
    #[should_panic(expected = "device has")]
    fn undersized_device_panics() {
        let _ = Layout::trivial_on(5, 2);
    }

    #[test]
    fn swap_updates_both_directions() {
        let mut layout = Layout::trivial(3);
        layout.swap_physical(q(0), q(2));
        assert_eq!(layout.physical(q(0)), q(2));
        assert_eq!(layout.physical(q(2)), q(0));
        assert_eq!(layout.physical(q(1)), q(1));
        assert_eq!(layout.logical(q(0)), Some(q(2)));
        assert_eq!(layout.logical(q(2)), Some(q(0)));
    }

    #[test]
    fn swap_with_spare_slot() {
        let mut layout = Layout::trivial_on(1, 3);
        layout.swap_physical(q(0), q(2));
        assert_eq!(layout.physical(q(0)), q(2));
        assert_eq!(layout.logical(q(0)), None);
        assert_eq!(layout.logical(q(2)), Some(q(0)));
    }

    #[test]
    fn swaps_compose_like_permutations() {
        let mut layout = Layout::trivial(3);
        layout.swap_physical(q(0), q(1));
        layout.swap_physical(q(1), q(2));
        // logical 0: 0→1→2; logical 1: 1→0; logical 2: 2→1.
        assert_eq!(layout.physical(q(0)), q(2));
        assert_eq!(layout.physical(q(1)), q(0));
        assert_eq!(layout.physical(q(2)), q(1));
    }

    #[test]
    fn display_shows_mapping() {
        let layout = Layout::trivial(2);
        assert_eq!(layout.to_string(), "layout(q0→Q0, q1→Q1)");
    }
}
