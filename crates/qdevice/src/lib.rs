//! Device topologies and transpilation.
//!
//! Substrate S6 of the dynamic-assertion reproduction (see the workspace
//! `DESIGN.md`). The paper notes that "due to the constraints on
//! connectivity of the IBM Q computer, we used qubit q2 as the ancilla" —
//! this crate models exactly those constraints and the rewrites needed to
//! satisfy them:
//!
//! * [`Topology`] — directed coupling graphs, with the `ibmqx4`
//!   (Tenerife) preset the paper ran on ([`presets`]),
//! * [`Layout`] — logical→physical qubit tracking through routing,
//! * [`transpile`] — the pass pipeline: decomposition to `{1q, CX}`,
//!   greedy SWAP routing, CX direction fixing via H-sandwiches, peephole
//!   optimization, and optional `U3` basis translation,
//! * [`verify`] — conformance checks and unitary-equivalence testing of
//!   every rewrite.
//!
//! # Example
//!
//! ```
//! use qcircuit::library;
//! use qdevice::{presets, transpile, verify};
//!
//! # fn main() -> Result<(), qdevice::TranspileError> {
//! let bell = library::bell();
//! let result = transpile::transpile(&bell, &presets::ibmqx4())?;
//! verify::check_native(&result.circuit, &presets::ibmqx4())?;
//! # Ok(())
//! # }
//! ```

pub mod layout;
pub mod presets;
pub mod topology;
pub mod transpile;
pub mod verify;

pub use layout::Layout;
pub use topology::Topology;
pub use transpile::{transpile as transpile_for, Pass, TranspileError, TranspileResult};
