//! Transpilation verification.
//!
//! Two kinds of checks: *conformance* (does a circuit respect a device's
//! gate set and coupling?) and *equivalence* (does the rewritten circuit
//! implement the same unitary, up to global phase and the router's qubit
//! permutation?). Every pass in [`crate::transpile`] is tested against
//! these.

use crate::layout::Layout;
use crate::topology::Topology;
use crate::transpile::TranspileError;
use qcircuit::{Gate, OpKind, QuantumCircuit, QubitId};
use qmath::approx::approx_eq_up_to_global_phase;
use qmath::{CMatrix, Complex};
use qsim::StateVector;

/// Checks undirected coupling: every two-qubit gate acts on an adjacent
/// pair; gates on three or more qubits are rejected.
///
/// # Errors
///
/// Returns [`TranspileError::NotNative`] describing the first violation.
pub fn check_connectivity(
    circuit: &QuantumCircuit,
    topology: &Topology,
) -> Result<(), TranspileError> {
    for instr in circuit.instructions() {
        let qs = instr.qubits();
        match qs.len() {
            0 | 1 => {}
            2 if matches!(instr.kind(), OpKind::Gate(_)) => {
                if !topology.are_connected(qs[0], qs[1]) {
                    return Err(TranspileError::NotNative {
                        reason: format!("gate on unconnected pair ({}, {})", qs[0], qs[1]),
                    });
                }
            }
            _ if matches!(instr.kind(), OpKind::Barrier) => {}
            _ => {
                return Err(TranspileError::NotNative {
                    reason: format!("{}-qubit operation '{}'", qs.len(), instr.kind().name()),
                });
            }
        }
    }
    Ok(())
}

/// Checks full hardware conformance: single-qubit gates anywhere, CX
/// only along *directed* edges, no other multi-qubit gates.
///
/// # Errors
///
/// Returns [`TranspileError::NotNative`] describing the first violation.
pub fn check_native(circuit: &QuantumCircuit, topology: &Topology) -> Result<(), TranspileError> {
    for instr in circuit.instructions() {
        match instr.kind() {
            OpKind::Gate(g) => match g.num_qubits() {
                1 => {}
                2 => {
                    if !matches!(g, Gate::Cx) {
                        return Err(TranspileError::NotNative {
                            reason: format!("two-qubit gate '{}' is not CX", g.name()),
                        });
                    }
                    let (c, t) = (instr.qubits()[0], instr.qubits()[1]);
                    if !topology.has_directed_edge(c, t) {
                        return Err(TranspileError::NotNative {
                            reason: format!("cx({c}, {t}) is not a directed hardware edge"),
                        });
                    }
                }
                n => {
                    return Err(TranspileError::NotNative {
                        reason: format!("{n}-qubit gate '{}'", g.name()),
                    });
                }
            },
            OpKind::Measure | OpKind::Reset | OpKind::Barrier | OpKind::PostSelect { .. } => {}
        }
    }
    Ok(())
}

/// Builds the full unitary of a measurement-free circuit by evolving
/// every basis state (practical for ≤ 10 qubits).
///
/// # Errors
///
/// Returns [`TranspileError::UnsupportedOperation`] when the circuit
/// contains a non-unitary operation or a conditioned gate.
pub fn circuit_unitary(circuit: &QuantumCircuit) -> Result<CMatrix, TranspileError> {
    let n = circuit.num_qubits();
    let dim = 1usize << n;
    let mut u = CMatrix::zeros(dim);
    for j in 0..dim {
        let mut amps = vec![Complex::ZERO; dim];
        amps[j] = Complex::ONE;
        let mut psi = StateVector::from_amplitudes(amps).expect("basis state is normalized");
        for instr in circuit.instructions() {
            if instr.condition().is_some() {
                return Err(TranspileError::UnsupportedOperation {
                    op: "conditioned gate".to_string(),
                });
            }
            match instr.kind() {
                OpKind::Gate(g) => psi.apply_gate(g, instr.qubits()).map_err(|_| {
                    TranspileError::UnsupportedOperation {
                        op: g.name().to_string(),
                    }
                })?,
                OpKind::Barrier => {}
                other => {
                    return Err(TranspileError::UnsupportedOperation {
                        op: other.name().to_string(),
                    });
                }
            }
        }
        for (i, a) in psi.amplitudes().iter().enumerate() {
            u.set(i, j, *a);
        }
    }
    Ok(u)
}

/// Returns `true` when two equal-width, measurement-free circuits
/// implement the same unitary up to a global phase.
///
/// # Errors
///
/// Returns [`TranspileError::UnsupportedOperation`] for non-unitary
/// circuits or a width mismatch.
pub fn circuits_equivalent(
    a: &QuantumCircuit,
    b: &QuantumCircuit,
    tol: f64,
) -> Result<bool, TranspileError> {
    if a.num_qubits() != b.num_qubits() {
        return Err(TranspileError::UnsupportedOperation {
            op: format!(
                "width mismatch: {} vs {} qubits",
                a.num_qubits(),
                b.num_qubits()
            ),
        });
    }
    let ua = circuit_unitary(a)?;
    let ub = circuit_unitary(b)?;
    Ok(approx_eq_up_to_global_phase(
        ua.as_slice(),
        ub.as_slice(),
        tol,
    ))
}

/// Returns `true` when a routed circuit implements the original unitary
/// modulo the router's final qubit permutation: amplitude of logical
/// index `k` must appear at the physical index obtained by placing bit
/// `l` of `k` at `final_layout.physical(l)`, with spare device qubits
/// left in `|0⟩`.
///
/// # Errors
///
/// Returns [`TranspileError::UnsupportedOperation`] for non-unitary
/// circuits.
pub fn routed_equivalent(
    original: &QuantumCircuit,
    transpiled: &QuantumCircuit,
    final_layout: &Layout,
    tol: f64,
) -> Result<bool, TranspileError> {
    let n = original.num_qubits();
    let dim = 1usize << n;
    let u_orig = circuit_unitary(original)?;
    let u_trans = circuit_unitary(transpiled)?;

    let place = |logical_index: usize| -> usize {
        let mut phys = 0usize;
        for l in 0..n {
            if (logical_index >> l) & 1 == 1 {
                phys |= 1 << final_layout.physical(QubitId::from(l)).index();
            }
        }
        phys
    };

    // Extract the effective logical unitary from the transpiled one:
    // column j (logical input j = physical input j under the trivial
    // initial layout) restricted to rows in the image of `place`.
    let big_dim = u_trans.dim();
    let mut effective = CMatrix::zeros(dim);
    for j in 0..dim {
        let mut seen_mass = 0.0;
        for k in 0..dim {
            let amp = u_trans.get(place(k), j);
            effective.set(k, j, amp);
            seen_mass += amp.norm_sqr();
        }
        // All probability mass must live inside the layout image
        // (spare qubits stay |0⟩).
        let total: f64 = (0..big_dim).map(|r| u_trans.get(r, j).norm_sqr()).sum();
        if (total - seen_mass).abs() > tol {
            return Ok(false);
        }
    }
    Ok(approx_eq_up_to_global_phase(
        u_orig.as_slice(),
        effective.as_slice(),
        tol,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use crate::transpile::{route, transpile};
    use qcircuit::library;

    #[test]
    fn connectivity_check_accepts_adjacent_and_rejects_distant() {
        let topo = presets::linear(3);
        let mut ok = QuantumCircuit::new(3, 0);
        ok.cx(0, 1).unwrap().cx(2, 1).unwrap();
        assert!(check_connectivity(&ok, &topo).is_ok());

        let mut bad = QuantumCircuit::new(3, 0);
        bad.cx(0, 2).unwrap();
        assert!(check_connectivity(&bad, &topo).is_err());
    }

    #[test]
    fn connectivity_check_rejects_three_qubit_gates() {
        let topo = presets::fully_connected(3);
        let mut c = QuantumCircuit::new(3, 0);
        c.ccx(0, 1, 2).unwrap();
        assert!(check_connectivity(&c, &topo).is_err());
    }

    #[test]
    fn native_check_enforces_direction() {
        let topo = presets::ibmqx4();
        let mut ok = QuantumCircuit::new(5, 0);
        ok.cx(1, 0).unwrap().h(3).unwrap();
        assert!(check_native(&ok, &topo).is_ok());

        let mut bad = QuantumCircuit::new(5, 0);
        bad.cx(0, 1).unwrap(); // reversed direction
        assert!(check_native(&bad, &topo).is_err());

        let mut swap = QuantumCircuit::new(5, 0);
        swap.swap(0, 1).unwrap();
        assert!(check_native(&swap, &topo).is_err());
    }

    #[test]
    fn circuit_unitary_of_bell_prep() {
        let u = circuit_unitary(&library::bell()).unwrap();
        // Column 0 is the Bell state.
        let s = qmath::FRAC_1_SQRT_2;
        assert!(u.get(0, 0).approx_eq(Complex::real(s), 1e-12));
        assert!(u.get(3, 0).approx_eq(Complex::real(s), 1e-12));
        assert!(u.is_unitary(1e-10));
    }

    #[test]
    fn circuit_unitary_rejects_measurement() {
        let mut c = QuantumCircuit::new(1, 1);
        c.measure(0, 0).unwrap();
        assert!(circuit_unitary(&c).is_err());
    }

    #[test]
    fn equivalence_detects_difference() {
        let mut a = QuantumCircuit::new(1, 0);
        a.h(0).unwrap();
        let mut b = QuantumCircuit::new(1, 0);
        b.x(0).unwrap();
        assert!(!circuits_equivalent(&a, &b, 1e-9).unwrap());
        assert!(circuits_equivalent(&a, &a, 1e-9).unwrap());
    }

    #[test]
    fn equivalence_ignores_global_phase() {
        let mut a = QuantumCircuit::new(1, 0);
        a.rz(1.0, 0).unwrap();
        let mut b = QuantumCircuit::new(1, 0);
        b.p(1.0, 0).unwrap(); // P = e^{iθ/2}·Rz
        assert!(circuits_equivalent(&a, &b, 1e-9).unwrap());
    }

    #[test]
    fn routed_ghz_is_equivalent_via_layout() {
        let topo = presets::linear(4);
        let ghz = library::ghz(4); // cx(0,2), cx(0,3) need routing
        let (routed, layout) = route(&ghz, &topo).unwrap();
        assert!(routed_equivalent(&ghz, &routed, &layout, 1e-8).unwrap());
    }

    #[test]
    fn routed_equivalence_catches_wrong_layout() {
        let topo = presets::linear(4);
        let ghz = library::ghz(4);
        let (routed, _) = route(&ghz, &topo).unwrap();
        // The trivial layout is wrong after routing inserted swaps.
        let wrong = Layout::trivial_on(4, 4);
        assert!(!routed_equivalent(&ghz, &routed, &wrong, 1e-8).unwrap());
    }

    #[test]
    fn full_pipeline_qft_equivalence_on_ring() {
        let topo = presets::ring(4);
        let qft = library::qft(3);
        let result = transpile(&qft, &topo).unwrap();
        check_native(&result.circuit, &topo).unwrap();
        assert!(routed_equivalent(&qft, &result.circuit, &result.final_layout, 1e-7).unwrap());
    }
}
