//! Transpilation passes.
//!
//! [`transpile`] lowers an abstract circuit onto a [`Topology`] the way
//! IBM's toolchain did for the paper's `ibmqx4` runs:
//!
//! 1. **Decompose** multi-qubit and exotic controlled gates to
//!    `{1q, CX, SWAP}`,
//! 2. **Route** with greedy shortest-path SWAP insertion (trivial initial
//!    layout, deterministic tie-breaking),
//! 3. **Decompose SWAPs** into three CXs,
//! 4. **Fix CX direction** with Hadamard sandwiches where the hardware
//!    edge points the other way,
//! 5. **Peephole-optimize**: cancel adjacent inverse pairs, merge
//!    same-axis rotations, drop identities.
//!
//! The optional [`BasisTranslationPass`] additionally rewrites every
//! single-qubit gate into `U3` angles (ZYZ-style extraction), yielding
//! the historical IBM `{u3, cx}` basis.

use crate::layout::Layout;
use crate::topology::Topology;
use qcircuit::{CircuitError, Gate, Instruction, OpKind, QuantumCircuit, QubitId};
use qmath::Mat2;
use std::f64::consts::{FRAC_PI_4, PI};
use std::fmt;

/// Error produced by the transpiler.
#[derive(Clone, Debug, PartialEq)]
pub enum TranspileError {
    /// The circuit needs more qubits than the device provides.
    TooManyQubits {
        /// Qubits in the circuit.
        circuit: usize,
        /// Qubits on the device.
        device: usize,
    },
    /// Two operands cannot be connected on the device.
    Unroutable {
        /// First physical qubit.
        a: usize,
        /// Second physical qubit.
        b: usize,
    },
    /// An operation is not supported by a pass (e.g. a ≥3-qubit gate
    /// reaching the router).
    UnsupportedOperation {
        /// The operation's mnemonic.
        op: String,
    },
    /// The circuit violates the native gate set or coupling constraints.
    NotNative {
        /// Human-readable reason.
        reason: String,
    },
    /// Rebuilding the circuit failed (should not happen for valid
    /// inputs).
    Circuit(CircuitError),
}

impl fmt::Display for TranspileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TranspileError::TooManyQubits { circuit, device } => {
                write!(
                    f,
                    "circuit needs {circuit} qubits but the device has {device}"
                )
            }
            TranspileError::Unroutable { a, b } => {
                write!(f, "no path between physical qubits Q{a} and Q{b}")
            }
            TranspileError::UnsupportedOperation { op } => {
                write!(f, "operation '{op}' is not supported by this pass")
            }
            TranspileError::NotNative { reason } => write!(f, "not native: {reason}"),
            TranspileError::Circuit(e) => write!(f, "circuit rebuild failed: {e}"),
        }
    }
}

impl std::error::Error for TranspileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TranspileError::Circuit(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CircuitError> for TranspileError {
    fn from(e: CircuitError) -> Self {
        TranspileError::Circuit(e)
    }
}

/// A circuit-to-circuit rewrite.
pub trait Pass {
    /// The pass name for diagnostics.
    fn name(&self) -> &'static str;

    /// Rewrites the circuit.
    ///
    /// # Errors
    ///
    /// Returns a [`TranspileError`] when the circuit contains operations
    /// the pass cannot handle.
    fn run(&self, circuit: &QuantumCircuit) -> Result<QuantumCircuit, TranspileError>;
}

/// Output of the full pipeline.
#[derive(Clone, Debug)]
pub struct TranspileResult {
    /// The hardware-conformant circuit (width = device qubits).
    pub circuit: QuantumCircuit,
    /// Where each logical qubit ended up after routing SWAPs.
    pub final_layout: Layout,
}

/// Runs the full pipeline for `topology`.
///
/// # Errors
///
/// Returns a [`TranspileError`] when the circuit does not fit the device
/// or contains unsupported operations.
///
/// # Example
///
/// ```
/// use qcircuit::library;
/// use qdevice::{presets, transpile};
///
/// # fn main() -> Result<(), qdevice::TranspileError> {
/// let ghz = library::ghz(3);
/// let result = transpile::transpile(&ghz, &presets::ibmqx4())?;
/// qdevice::verify::check_native(&result.circuit, &presets::ibmqx4())?;
/// # Ok(())
/// # }
/// ```
pub fn transpile(
    circuit: &QuantumCircuit,
    topology: &Topology,
) -> Result<TranspileResult, TranspileError> {
    let decomposed = DecomposePass.run(circuit)?;
    let (routed, final_layout) = route(&decomposed, topology)?;
    let unswapped = DecomposeSwapPass.run(&routed)?;
    let directed = FixDirectionPass {
        topology: topology.clone(),
    }
    .run(&unswapped)?;
    let optimized = OptimizePass.run(&directed)?;
    Ok(TranspileResult {
        circuit: optimized,
        final_layout,
    })
}

/// Lowers `{CZ, CY, CH, CP, CCX, CSWAP}` to `{1q, CX, SWAP}`.
#[derive(Clone, Copy, Debug, Default)]
pub struct DecomposePass;

impl DecomposePass {
    fn lower(gate: &Gate, qs: &[QubitId], out: &mut Vec<Instruction>) {
        let g = |gate: Gate, qubits: &[QubitId]| Instruction::gate(gate, qubits.iter().copied());
        match gate {
            Gate::Cz => {
                // CZ = (I⊗H)·CX·(I⊗H)
                out.push(g(Gate::H, &[qs[1]]));
                out.push(g(Gate::Cx, &[qs[0], qs[1]]));
                out.push(g(Gate::H, &[qs[1]]));
            }
            Gate::Cy => {
                // CY = (I⊗S)·CX·(I⊗S†)
                out.push(g(Gate::Sdg, &[qs[1]]));
                out.push(g(Gate::Cx, &[qs[0], qs[1]]));
                out.push(g(Gate::S, &[qs[1]]));
            }
            Gate::Ch => {
                // CH = (I⊗Ry(−π/4))·CX·(I⊗Ry(π/4)) — exact (H is a
                // π rotation about the (X+Z)/√2 axis).
                out.push(g(Gate::Ry(FRAC_PI_4), &[qs[1]]));
                out.push(g(Gate::Cx, &[qs[0], qs[1]]));
                out.push(g(Gate::Ry(-FRAC_PI_4), &[qs[1]]));
            }
            Gate::Cp(l) => {
                // Standard cu1 identity.
                out.push(g(Gate::P(l / 2.0), &[qs[0]]));
                out.push(g(Gate::Cx, &[qs[0], qs[1]]));
                out.push(g(Gate::P(-l / 2.0), &[qs[1]]));
                out.push(g(Gate::Cx, &[qs[0], qs[1]]));
                out.push(g(Gate::P(l / 2.0), &[qs[1]]));
            }
            Gate::Ccx => {
                // Standard 6-CX Toffoli decomposition.
                let (a, b, c) = (qs[0], qs[1], qs[2]);
                out.push(g(Gate::H, &[c]));
                out.push(g(Gate::Cx, &[b, c]));
                out.push(g(Gate::Tdg, &[c]));
                out.push(g(Gate::Cx, &[a, c]));
                out.push(g(Gate::T, &[c]));
                out.push(g(Gate::Cx, &[b, c]));
                out.push(g(Gate::Tdg, &[c]));
                out.push(g(Gate::Cx, &[a, c]));
                out.push(g(Gate::T, &[b]));
                out.push(g(Gate::T, &[c]));
                out.push(g(Gate::H, &[c]));
                out.push(g(Gate::Cx, &[a, b]));
                out.push(g(Gate::T, &[a]));
                out.push(g(Gate::Tdg, &[b]));
                out.push(g(Gate::Cx, &[a, b]));
            }
            Gate::Cswap => {
                // Fredkin = CX sandwich around a Toffoli.
                let (c, a, b) = (qs[0], qs[1], qs[2]);
                out.push(g(Gate::Cx, &[b, a]));
                Self::lower(&Gate::Ccx, &[c, a, b], out);
                out.push(g(Gate::Cx, &[b, a]));
            }
            other => out.push(g(*other, qs)),
        }
    }
}

impl Pass for DecomposePass {
    fn name(&self) -> &'static str {
        "decompose"
    }

    fn run(&self, circuit: &QuantumCircuit) -> Result<QuantumCircuit, TranspileError> {
        let mut out = QuantumCircuit::with_name(
            circuit.name().to_string(),
            circuit.num_qubits(),
            circuit.num_clbits(),
        );
        for instr in circuit.instructions() {
            match instr.kind() {
                OpKind::Gate(gate) if instr.condition().is_none() => {
                    let mut lowered = Vec::new();
                    Self::lower(gate, instr.qubits(), &mut lowered);
                    for li in lowered {
                        out.append(li)?;
                    }
                }
                _ => {
                    out.append(instr.clone())?;
                }
            }
        }
        Ok(out)
    }
}

/// Lowers every SWAP into three CXs (run after routing).
#[derive(Clone, Copy, Debug, Default)]
pub struct DecomposeSwapPass;

impl Pass for DecomposeSwapPass {
    fn name(&self) -> &'static str {
        "decompose-swap"
    }

    fn run(&self, circuit: &QuantumCircuit) -> Result<QuantumCircuit, TranspileError> {
        let mut out = QuantumCircuit::with_name(
            circuit.name().to_string(),
            circuit.num_qubits(),
            circuit.num_clbits(),
        );
        for instr in circuit.instructions() {
            if let (OpKind::Gate(Gate::Swap), None) = (instr.kind(), instr.condition()) {
                let (a, b) = (instr.qubits()[0], instr.qubits()[1]);
                out.cx(a, b)?.cx(b, a)?.cx(a, b)?;
            } else {
                out.append(instr.clone())?;
            }
        }
        Ok(out)
    }
}

/// Routes a circuit onto `topology` with greedy SWAP insertion and a
/// trivial initial layout, returning the rewritten circuit (width =
/// device qubits) and the final logical→physical layout.
///
/// # Errors
///
/// Returns [`TranspileError::TooManyQubits`] when the circuit does not
/// fit, [`TranspileError::Unroutable`] for disconnected operand pairs, or
/// [`TranspileError::UnsupportedOperation`] for ≥3-qubit gates (run
/// [`DecomposePass`] first).
pub fn route(
    circuit: &QuantumCircuit,
    topology: &Topology,
) -> Result<(QuantumCircuit, Layout), TranspileError> {
    if circuit.num_qubits() > topology.num_qubits() {
        return Err(TranspileError::TooManyQubits {
            circuit: circuit.num_qubits(),
            device: topology.num_qubits(),
        });
    }
    let mut layout = Layout::trivial_on(circuit.num_qubits(), topology.num_qubits());
    let mut out = QuantumCircuit::with_name(
        circuit.name().to_string(),
        topology.num_qubits(),
        circuit.num_clbits(),
    );
    for instr in circuit.instructions() {
        match instr.qubits().len() {
            0 | 1 => {
                let mapped = instr.remapped(|q| layout.physical(q), |c| c);
                out.append(mapped)?;
            }
            2 => {
                let pa = layout.physical(instr.qubits()[0]);
                let pb = layout.physical(instr.qubits()[1]);
                if !topology.are_connected(pa, pb) {
                    let path =
                        topology
                            .shortest_path(pa, pb)
                            .ok_or(TranspileError::Unroutable {
                                a: pa.index(),
                                b: pb.index(),
                            })?;
                    // Walk the first operand down the path until it is
                    // adjacent to the second.
                    for w in path.windows(2).take(path.len().saturating_sub(2)) {
                        out.swap(w[0], w[1])?;
                        layout.swap_physical(w[0], w[1]);
                    }
                }
                let mapped = instr.remapped(|q| layout.physical(q), |c| c);
                out.append(mapped)?;
            }
            n if matches!(instr.kind(), OpKind::Barrier) => {
                let _ = n;
                let mapped = instr.remapped(|q| layout.physical(q), |c| c);
                out.append(mapped)?;
            }
            _ => {
                return Err(TranspileError::UnsupportedOperation {
                    op: instr.kind().name().to_string(),
                });
            }
        }
    }
    Ok((out, layout))
}

/// Replaces wrong-direction CXs with the H-sandwich identity
/// `CX(a→b) = (H⊗H)·CX(b→a)·(H⊗H)`.
#[derive(Clone, Debug)]
pub struct FixDirectionPass {
    /// The device whose directed edges constrain CX orientation.
    pub topology: Topology,
}

impl Pass for FixDirectionPass {
    fn name(&self) -> &'static str {
        "fix-direction"
    }

    fn run(&self, circuit: &QuantumCircuit) -> Result<QuantumCircuit, TranspileError> {
        let mut out = QuantumCircuit::with_name(
            circuit.name().to_string(),
            circuit.num_qubits(),
            circuit.num_clbits(),
        );
        for instr in circuit.instructions() {
            if let (OpKind::Gate(Gate::Cx), None) = (instr.kind(), instr.condition()) {
                let (c, t) = (instr.qubits()[0], instr.qubits()[1]);
                if self.topology.has_directed_edge(c, t) {
                    out.append(instr.clone())?;
                } else if self.topology.has_directed_edge(t, c) {
                    out.h(c)?.h(t)?.cx(t, c)?.h(c)?.h(t)?;
                } else {
                    return Err(TranspileError::Unroutable {
                        a: c.index(),
                        b: t.index(),
                    });
                }
            } else {
                out.append(instr.clone())?;
            }
        }
        Ok(out)
    }
}

/// Peephole optimizer: cancels adjacent inverse pairs, merges same-axis
/// rotations, and removes identity gates.
#[derive(Clone, Copy, Debug, Default)]
pub struct OptimizePass;

impl OptimizePass {
    /// One sweep; returns `None` when nothing changed.
    fn sweep(circuit: &QuantumCircuit) -> Option<QuantumCircuit> {
        let instrs = circuit.instructions();
        let n = instrs.len();
        // next[i] = for each qubit of i, the next instruction touching it.
        let mut removed = vec![false; n];
        let mut merged: Vec<Option<Instruction>> = vec![None; n];
        let mut changed = false;

        // Last instruction index seen per qubit, scanned backward to get
        // successor links.
        let mut next_on_qubit: Vec<Option<usize>> = vec![None; circuit.num_qubits()];
        let mut successors: Vec<Vec<Option<usize>>> = vec![Vec::new(); n];
        for i in (0..n).rev() {
            let qs = instrs[i].qubits();
            successors[i] = qs.iter().map(|q| next_on_qubit[q.index()]).collect();
            for q in qs {
                next_on_qubit[q.index()] = Some(i);
            }
        }

        for i in 0..n {
            if removed[i] {
                continue;
            }
            let a = &instrs[i];
            let (ga, cond) = match (a.as_gate(), a.condition()) {
                (Some(g), None) => (g, false),
                _ => continue,
            };
            let _ = cond;
            // Drop explicit identities immediately.
            if is_identity_gate(ga) {
                removed[i] = true;
                changed = true;
                continue;
            }
            // All wires must lead to the same next instruction.
            let succ = &successors[i];
            let j = match succ.first().copied().flatten() {
                Some(j) if succ.iter().all(|s| *s == Some(j)) => j,
                _ => continue,
            };
            if removed[j] {
                continue;
            }
            let b = &instrs[j];
            let gb = match (b.as_gate(), b.condition()) {
                (Some(g), None) => g,
                _ => continue,
            };
            if a.qubits() != b.qubits() {
                // Symmetric two-qubit gates may cancel with reversed
                // operands.
                let symmetric = matches!(ga, Gate::Cz | Gate::Swap | Gate::Cp(_));
                let reversed: Vec<QubitId> = b.qubits().iter().rev().copied().collect();
                if !(symmetric && a.qubits() == reversed.as_slice()) {
                    continue;
                }
            }
            // Inverse pair: remove both.
            if gates_cancel(ga, gb) {
                removed[i] = true;
                removed[j] = true;
                changed = true;
                continue;
            }
            // Same-axis rotation merge.
            if let Some(m) = merge_rotations(ga, gb) {
                removed[j] = true;
                if is_identity_gate(&m) {
                    removed[i] = true;
                } else {
                    merged[i] = Some(Instruction::gate(m, a.qubits().iter().copied()));
                }
                changed = true;
            }
        }

        if !changed {
            return None;
        }
        let mut out = QuantumCircuit::with_name(
            circuit.name().to_string(),
            circuit.num_qubits(),
            circuit.num_clbits(),
        );
        for i in 0..n {
            if removed[i] {
                continue;
            }
            let instr = merged[i].clone().unwrap_or_else(|| instrs[i].clone());
            out.append(instr).expect("rewrite preserves validity");
        }
        Some(out)
    }
}

/// Returns `true` for gates that act as the identity (up to global
/// phase, which is unobservable).
fn is_identity_gate(g: &Gate) -> bool {
    const EPS: f64 = 1e-12;
    match g {
        Gate::I => true,
        Gate::Rx(t) | Gate::Ry(t) | Gate::Rz(t) | Gate::P(t) | Gate::Cp(t) => t.abs() < EPS,
        Gate::U3(t, p, l) => t.abs() < EPS && (p + l).abs() < EPS,
        _ => false,
    }
}

/// Returns `true` when `b` undoes `a` exactly.
fn gates_cancel(a: &Gate, b: &Gate) -> bool {
    match (a, b) {
        // Parameterized gates compare within float tolerance.
        (Gate::Rx(x), Gate::Rx(y))
        | (Gate::Ry(x), Gate::Ry(y))
        | (Gate::Rz(x), Gate::Rz(y))
        | (Gate::P(x), Gate::P(y))
        | (Gate::Cp(x), Gate::Cp(y)) => (x + y).abs() < 1e-12,
        _ => a.inverse() == *b,
    }
}

/// Merges two same-axis rotations into one, if possible.
fn merge_rotations(a: &Gate, b: &Gate) -> Option<Gate> {
    match (a, b) {
        (Gate::Rx(x), Gate::Rx(y)) => Some(Gate::Rx(x + y)),
        (Gate::Ry(x), Gate::Ry(y)) => Some(Gate::Ry(x + y)),
        (Gate::Rz(x), Gate::Rz(y)) => Some(Gate::Rz(x + y)),
        (Gate::P(x), Gate::P(y)) => Some(Gate::P(x + y)),
        (Gate::Cp(x), Gate::Cp(y)) => Some(Gate::Cp(x + y)),
        _ => None,
    }
}

impl Pass for OptimizePass {
    fn name(&self) -> &'static str {
        "optimize"
    }

    fn run(&self, circuit: &QuantumCircuit) -> Result<QuantumCircuit, TranspileError> {
        let mut current = circuit.clone();
        while let Some(next) = Self::sweep(&current) {
            current = next;
        }
        Ok(current)
    }
}

/// Rewrites every single-qubit gate as a `U3`, producing the historical
/// IBM `{U3, CX}` basis.
#[derive(Clone, Copy, Debug, Default)]
pub struct BasisTranslationPass;

/// Extracts `U3(θ, φ, λ)` angles from a single-qubit unitary, dropping
/// the global phase. The returned angles satisfy
/// `U3(θ, φ, λ) = e^{-iα}·m` for some real `α`.
pub fn u3_angles(m: &Mat2) -> (f64, f64, f64) {
    let na = m.a.norm();
    let nc = m.c.norm();
    let theta = 2.0 * nc.atan2(na);
    if na > 1e-12 {
        let g = m.a.arg();
        let phi = if nc > 1e-12 { m.c.arg() - g } else { 0.0 };
        let lambda = if m.b.norm() > 1e-12 {
            (-m.b).arg() - g
        } else {
            // θ ≈ 0: only φ+λ matters; put it all in λ.
            m.d.arg() - g - phi
        };
        (theta, phi, lambda)
    } else {
        // θ ≈ π: anchor the phase on the lower-left entry.
        let g = m.c.arg();
        (PI, 0.0, (-m.b).arg() - g)
    }
}

impl Pass for BasisTranslationPass {
    fn name(&self) -> &'static str {
        "basis-translation"
    }

    fn run(&self, circuit: &QuantumCircuit) -> Result<QuantumCircuit, TranspileError> {
        let mut out = QuantumCircuit::with_name(
            circuit.name().to_string(),
            circuit.num_qubits(),
            circuit.num_clbits(),
        );
        for instr in circuit.instructions() {
            match (instr.kind(), instr.condition()) {
                (OpKind::Gate(g), None) if g.num_qubits() == 1 && !matches!(g, Gate::U3(..)) => {
                    if is_identity_gate(g) {
                        continue;
                    }
                    let m = g.mat2().expect("1q gate has a 2x2 matrix");
                    let (t, p, l) = u3_angles(&m);
                    out.u3(t, p, l, instr.qubits()[0])?;
                }
                _ => {
                    out.append(instr.clone())?;
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use crate::verify;

    #[test]
    fn decompose_removes_exotic_gates() {
        let mut c = QuantumCircuit::new(3, 0);
        c.cz(0, 1).unwrap();
        c.cy(1, 2).unwrap();
        c.ch(0, 2).unwrap();
        c.cp(0.7, 0, 1).unwrap();
        c.ccx(0, 1, 2).unwrap();
        c.cswap(2, 0, 1).unwrap();
        let lowered = DecomposePass.run(&c).unwrap();
        for instr in lowered.instructions() {
            let g = instr.as_gate().unwrap();
            assert!(
                g.num_qubits() == 1 || matches!(g, Gate::Cx | Gate::Swap),
                "unexpected {g:?} after decompose"
            );
        }
    }

    #[test]
    fn decompositions_are_exact_unitaries() {
        for (builder, n) in [
            (
                Box::new(|c: &mut QuantumCircuit| c.cz(0, 1).map(|_| ()))
                    as Box<dyn Fn(&mut QuantumCircuit) -> Result<(), CircuitError>>,
                2usize,
            ),
            (Box::new(|c: &mut QuantumCircuit| c.cy(0, 1).map(|_| ())), 2),
            (Box::new(|c: &mut QuantumCircuit| c.ch(0, 1).map(|_| ())), 2),
            (
                Box::new(|c: &mut QuantumCircuit| c.cp(1.3, 0, 1).map(|_| ())),
                2,
            ),
            (
                Box::new(|c: &mut QuantumCircuit| c.ccx(0, 1, 2).map(|_| ())),
                3,
            ),
            (
                Box::new(|c: &mut QuantumCircuit| c.cswap(0, 1, 2).map(|_| ())),
                3,
            ),
        ] {
            let mut original = QuantumCircuit::new(n, 0);
            builder(&mut original).unwrap();
            let lowered = DecomposePass.run(&original).unwrap();
            assert!(
                verify::circuits_equivalent(&original, &lowered, 1e-9).unwrap(),
                "decomposition of {:?} is wrong",
                original.instructions()[0]
            );
        }
    }

    #[test]
    fn swap_decomposition_is_exact() {
        let mut original = QuantumCircuit::new(2, 0);
        original.swap(0, 1).unwrap();
        let lowered = DecomposeSwapPass.run(&original).unwrap();
        assert_eq!(lowered.count_ops()["cx"], 3);
        assert!(verify::circuits_equivalent(&original, &lowered, 1e-9).unwrap());
    }

    #[test]
    fn route_adjacent_gates_unchanged() {
        let topo = presets::linear(3);
        let mut c = QuantumCircuit::new(2, 0);
        c.cx(0, 1).unwrap();
        let (routed, layout) = route(&c, &topo).unwrap();
        assert_eq!(routed.count_ops().get("swap"), None);
        assert_eq!(layout.physical(QubitId::new(0)), QubitId::new(0));
    }

    #[test]
    fn route_inserts_swaps_for_distant_pairs() {
        let topo = presets::linear(4);
        let mut c = QuantumCircuit::new(4, 0);
        c.cx(0, 3).unwrap();
        let (routed, layout) = route(&c, &topo).unwrap();
        assert!(routed.count_ops()["swap"] >= 2);
        // Logical 0 moved toward logical 3.
        assert_ne!(layout.physical(QubitId::new(0)), QubitId::new(0));
    }

    #[test]
    fn route_rejects_oversized_circuits() {
        let topo = presets::linear(2);
        let c = QuantumCircuit::new(5, 0);
        assert!(matches!(
            route(&c, &topo),
            Err(TranspileError::TooManyQubits {
                circuit: 5,
                device: 2
            })
        ));
    }

    #[test]
    fn route_rejects_disconnected_operands() {
        let mut topo = Topology::new(4);
        topo.add_edge(0, 1); // 2,3 isolated
        let mut c = QuantumCircuit::new(4, 0);
        c.cx(0, 3).unwrap();
        assert!(matches!(
            route(&c, &topo),
            Err(TranspileError::Unroutable { .. })
        ));
    }

    #[test]
    fn route_remaps_measurements_with_layout() {
        let topo = presets::linear(3);
        let mut c = QuantumCircuit::new(3, 3);
        c.cx(0, 2).unwrap(); // forces a swap
        c.measure(0, 0).unwrap();
        let (routed, layout) = route(&c, &topo).unwrap();
        let m = routed
            .instructions()
            .iter()
            .find(|i| matches!(i.kind(), OpKind::Measure))
            .unwrap();
        assert_eq!(m.qubits()[0], layout.physical(QubitId::new(0)));
        assert_eq!(m.clbits()[0].index(), 0); // clbits unchanged
    }

    #[test]
    fn fix_direction_keeps_native_and_flips_reversed() {
        let topo = presets::ibmqx4(); // has 1→0 but not 0→1
        let mut c = QuantumCircuit::new(5, 0);
        c.cx(1, 0).unwrap();
        c.cx(0, 1).unwrap();
        let fixed = FixDirectionPass {
            topology: topo.clone(),
        }
        .run(&c)
        .unwrap();
        // First CX unchanged; second becomes H·H CX(1,0) H·H.
        assert_eq!(fixed.count_ops()["cx"], 2);
        assert_eq!(fixed.count_ops()["h"], 4);
        for instr in fixed.instructions() {
            if instr.as_gate() == Some(&Gate::Cx) {
                assert!(topo.has_directed_edge(instr.qubits()[0], instr.qubits()[1]));
            }
        }
        assert!(verify::circuits_equivalent(&c, &fixed, 1e-9).unwrap());
    }

    #[test]
    fn optimize_cancels_adjacent_self_inverse_pairs() {
        let mut c = QuantumCircuit::new(2, 0);
        c.h(0)
            .unwrap()
            .h(0)
            .unwrap()
            .cx(0, 1)
            .unwrap()
            .cx(0, 1)
            .unwrap()
            .x(1)
            .unwrap();
        let opt = OptimizePass.run(&c).unwrap();
        assert_eq!(opt.len(), 1);
        assert_eq!(opt.instructions()[0].as_gate(), Some(&Gate::X));
    }

    #[test]
    fn optimize_does_not_cancel_across_blockers() {
        let mut c = QuantumCircuit::new(2, 0);
        c.h(0).unwrap().cx(0, 1).unwrap().h(0).unwrap();
        let opt = OptimizePass.run(&c).unwrap();
        assert_eq!(opt.len(), 3);
    }

    #[test]
    fn optimize_merges_rotations_and_drops_zero() {
        let mut c = QuantumCircuit::new(1, 0);
        c.rz(0.3, 0).unwrap().rz(0.4, 0).unwrap();
        let opt = OptimizePass.run(&c).unwrap();
        assert_eq!(opt.len(), 1);
        match opt.instructions()[0].as_gate() {
            Some(Gate::Rz(t)) => assert!((t - 0.7).abs() < 1e-12),
            other => panic!("expected merged rz, got {other:?}"),
        }

        let mut c = QuantumCircuit::new(1, 0);
        c.rx(0.5, 0).unwrap().rx(-0.5, 0).unwrap();
        let opt = OptimizePass.run(&c).unwrap();
        assert!(opt.is_empty());
    }

    #[test]
    fn optimize_cancels_s_sdg_and_symmetric_reversals() {
        let mut c = QuantumCircuit::new(2, 0);
        c.s(0).unwrap().sdg(0).unwrap();
        c.cz(0, 1).unwrap();
        c.cz(1, 0).unwrap(); // symmetric: cancels despite reversed operands
        let opt = OptimizePass.run(&c).unwrap();
        assert!(opt.is_empty(), "left: {opt}");
    }

    #[test]
    fn optimize_removes_identity_gates() {
        let mut c = QuantumCircuit::new(1, 0);
        c.id(0).unwrap().rz(0.0, 0).unwrap().x(0).unwrap();
        let opt = OptimizePass.run(&c).unwrap();
        assert_eq!(opt.len(), 1);
    }

    #[test]
    fn optimize_preserves_measurements() {
        let mut c = QuantumCircuit::new(1, 1);
        c.h(0).unwrap().measure(0, 0).unwrap().h(0).unwrap();
        let opt = OptimizePass.run(&c).unwrap();
        assert_eq!(opt.len(), 3);
    }

    #[test]
    fn u3_angles_reconstruct_standard_gates() {
        for g in [
            Gate::X,
            Gate::Y,
            Gate::Z,
            Gate::H,
            Gate::S,
            Gate::Tdg,
            Gate::Sx,
            Gate::Rx(0.7),
            Gate::Ry(-1.1),
            Gate::Rz(2.9),
            Gate::P(0.4),
        ] {
            let m = g.mat2().unwrap();
            let (t, p, l) = u3_angles(&m);
            let rebuilt = Gate::U3(t, p, l).mat2().unwrap();
            // Compare up to global phase by aligning on the largest entry.
            let mut c1 = QuantumCircuit::new(1, 0);
            c1.gate(g, [0usize]).unwrap();
            let mut c2 = QuantumCircuit::new(1, 0);
            c2.gate(Gate::U3(t, p, l), [0usize]).unwrap();
            assert!(
                verify::circuits_equivalent(&c1, &c2, 1e-9).unwrap(),
                "u3 angles wrong for {g:?}: rebuilt {rebuilt:?}"
            );
        }
    }

    #[test]
    fn basis_translation_leaves_only_u3_and_cx() {
        let mut c = QuantumCircuit::new(2, 0);
        c.h(0)
            .unwrap()
            .t(1)
            .unwrap()
            .cx(0, 1)
            .unwrap()
            .sdg(0)
            .unwrap();
        let translated = BasisTranslationPass.run(&c).unwrap();
        for instr in translated.instructions() {
            match instr.as_gate().unwrap() {
                Gate::U3(..) | Gate::Cx => {}
                other => panic!("non-basis gate {other:?} survived"),
            }
        }
        assert!(verify::circuits_equivalent(&c, &translated, 1e-9).unwrap());
    }

    #[test]
    fn full_pipeline_on_ibmqx4_is_native_and_equivalent() {
        let topo = presets::ibmqx4();
        let mut c = QuantumCircuit::new(3, 0);
        c.h(0).unwrap().ccx(0, 1, 2).unwrap().cz(2, 0).unwrap();
        let result = transpile(&c, &topo).unwrap();
        verify::check_native(&result.circuit, &topo).unwrap();
        assert!(
            verify::routed_equivalent(&c, &result.circuit, &result.final_layout, 1e-8).unwrap()
        );
    }

    #[test]
    fn pipeline_handles_measured_circuits() {
        let topo = presets::ibmqx4();
        let mut c = qcircuit::library::ghz(3);
        c.measure_all();
        let result = transpile(&c, &topo).unwrap();
        verify::check_native(&result.circuit, &topo).unwrap();
        assert_eq!(result.circuit.measurement_count(), 3);
    }
}
