//! Device coupling topologies.
//!
//! NISQ devices permit two-qubit gates only between coupled qubits, and —
//! on the `ibmqx4` generation — only in one *direction* per edge (the
//! paper had to pick q2 as its assertion ancilla because of exactly this).
//! [`Topology`] is a directed graph over physical qubits with the
//! reachability queries the router and direction-fixer need.

use qcircuit::QubitId;
use std::collections::{BTreeSet, VecDeque};
use std::fmt;

/// A directed coupling graph over `num_qubits` physical qubits.
///
/// An edge `(c, t)` means the hardware natively implements `CX` with
/// control `c` and target `t`. Undirected adjacency (either direction)
/// is what routing cares about; direction matters to the
/// direction-fixing pass.
///
/// # Example
///
/// ```
/// use qdevice::Topology;
/// let mut topo = Topology::new(3);
/// topo.add_edge(0, 1);
/// topo.add_edge(1, 2);
/// assert!(topo.has_directed_edge(0.into(), 1.into()));
/// assert!(!topo.has_directed_edge(1.into(), 0.into()));
/// assert!(topo.are_connected(1.into(), 0.into()));
/// assert_eq!(topo.distance(0.into(), 2.into()), Some(2));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Topology {
    num_qubits: usize,
    edges: BTreeSet<(u32, u32)>,
}

impl Topology {
    /// Creates a topology with no edges.
    pub fn new(num_qubits: usize) -> Self {
        Topology {
            num_qubits,
            edges: BTreeSet::new(),
        }
    }

    /// Number of physical qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Adds a directed edge `control → target`.
    ///
    /// # Panics
    ///
    /// Panics when an endpoint is out of range or the edge is a
    /// self-loop.
    pub fn add_edge(&mut self, control: u32, target: u32) -> &mut Self {
        assert!(
            (control as usize) < self.num_qubits && (target as usize) < self.num_qubits,
            "edge ({control},{target}) out of range for {} qubits",
            self.num_qubits
        );
        assert_ne!(control, target, "self-loop edges are not allowed");
        self.edges.insert((control, target));
        self
    }

    /// The directed edges in sorted order.
    pub fn edges(&self) -> impl Iterator<Item = (QubitId, QubitId)> + '_ {
        self.edges
            .iter()
            .map(|(c, t)| (QubitId::new(*c), QubitId::new(*t)))
    }

    /// Number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` when the hardware has the directed edge `c → t`.
    pub fn has_directed_edge(&self, control: QubitId, target: QubitId) -> bool {
        self.edges
            .contains(&(control.index() as u32, target.index() as u32))
    }

    /// Returns `true` when the qubits are coupled in either direction.
    pub fn are_connected(&self, a: QubitId, b: QubitId) -> bool {
        self.has_directed_edge(a, b) || self.has_directed_edge(b, a)
    }

    /// The undirected neighbors of `q`.
    pub fn neighbors(&self, q: QubitId) -> Vec<QubitId> {
        let qi = q.index() as u32;
        let mut out: Vec<QubitId> = Vec::new();
        for (c, t) in &self.edges {
            if *c == qi && !out.contains(&QubitId::new(*t)) {
                out.push(QubitId::new(*t));
            }
            if *t == qi && !out.contains(&QubitId::new(*c)) {
                out.push(QubitId::new(*c));
            }
        }
        out.sort_unstable();
        out
    }

    /// Undirected shortest-path distance in hops, or `None` when
    /// unreachable.
    pub fn distance(&self, a: QubitId, b: QubitId) -> Option<usize> {
        self.shortest_path(a, b).map(|p| p.len() - 1)
    }

    /// An undirected shortest path from `a` to `b` inclusive, or `None`
    /// when unreachable. Ties break toward lower qubit indices, so
    /// routing is deterministic.
    pub fn shortest_path(&self, a: QubitId, b: QubitId) -> Option<Vec<QubitId>> {
        if a.index() >= self.num_qubits || b.index() >= self.num_qubits {
            return None;
        }
        if a == b {
            return Some(vec![a]);
        }
        let mut prev: Vec<Option<QubitId>> = vec![None; self.num_qubits];
        let mut visited = vec![false; self.num_qubits];
        let mut queue = VecDeque::new();
        visited[a.index()] = true;
        queue.push_back(a);
        while let Some(cur) = queue.pop_front() {
            for nb in self.neighbors(cur) {
                if !visited[nb.index()] {
                    visited[nb.index()] = true;
                    prev[nb.index()] = Some(cur);
                    if nb == b {
                        let mut path = vec![b];
                        let mut node = b;
                        while let Some(p) = prev[node.index()] {
                            path.push(p);
                            node = p;
                        }
                        path.reverse();
                        return Some(path);
                    }
                    queue.push_back(nb);
                }
            }
        }
        None
    }

    /// Returns `true` when every qubit can reach every other (undirected).
    pub fn is_connected(&self) -> bool {
        if self.num_qubits <= 1 {
            return true;
        }
        let start = QubitId::new(0);
        (1..self.num_qubits).all(|q| self.distance(start, QubitId::from(q)).is_some())
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "topology({} qubits; ", self.num_qubits)?;
        let rendered: Vec<String> = self
            .edges
            .iter()
            .map(|(c, t)| format!("{c}->{t}"))
            .collect();
        write!(f, "{})", rendered.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(i: u32) -> QubitId {
        QubitId::new(i)
    }

    fn line4() -> Topology {
        let mut t = Topology::new(4);
        t.add_edge(0, 1).add_edge(1, 2).add_edge(2, 3);
        t
    }

    #[test]
    fn directed_and_undirected_queries() {
        let t = line4();
        assert!(t.has_directed_edge(q(0), q(1)));
        assert!(!t.has_directed_edge(q(1), q(0)));
        assert!(t.are_connected(q(1), q(0)));
        assert!(!t.are_connected(q(0), q(2)));
    }

    #[test]
    fn neighbors_are_undirected_and_sorted() {
        let t = line4();
        assert_eq!(t.neighbors(q(1)), vec![q(0), q(2)]);
        assert_eq!(t.neighbors(q(0)), vec![q(1)]);
    }

    #[test]
    fn distances_along_a_line() {
        let t = line4();
        assert_eq!(t.distance(q(0), q(0)), Some(0));
        assert_eq!(t.distance(q(0), q(1)), Some(1));
        assert_eq!(t.distance(q(0), q(3)), Some(3));
        assert_eq!(t.distance(q(3), q(0)), Some(3));
    }

    #[test]
    fn shortest_path_endpoints_inclusive() {
        let t = line4();
        assert_eq!(t.shortest_path(q(0), q(2)), Some(vec![q(0), q(1), q(2)]));
        assert_eq!(t.shortest_path(q(2), q(0)), Some(vec![q(2), q(1), q(0)]));
    }

    #[test]
    fn unreachable_pairs_return_none() {
        let mut t = Topology::new(4);
        t.add_edge(0, 1); // 2, 3 isolated
        assert_eq!(t.distance(q(0), q(2)), None);
        assert!(!t.is_connected());
        assert!(line4().is_connected());
    }

    #[test]
    fn out_of_range_queries_are_none() {
        let t = line4();
        assert_eq!(t.distance(q(0), q(9)), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn adding_out_of_range_edge_panics() {
        Topology::new(2).add_edge(0, 5);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loops_are_rejected() {
        Topology::new(2).add_edge(1, 1);
    }

    #[test]
    fn display_lists_edges() {
        let t = line4();
        let s = t.to_string();
        assert!(s.contains("0->1"));
        assert!(s.contains("4 qubits"));
    }

    #[test]
    fn duplicate_edges_collapse() {
        let mut t = Topology::new(2);
        t.add_edge(0, 1).add_edge(0, 1);
        assert_eq!(t.edge_count(), 1);
    }
}
