//! Topology presets.

use crate::topology::Topology;

/// The IBM Q 5 "Tenerife" (`ibmqx4`) coupling map the paper ran on:
/// five qubits, directed CX edges
/// `1→0, 2→0, 2→1, 3→2, 3→4, 4→2`.
pub fn ibmqx4() -> Topology {
    let mut t = Topology::new(5);
    for (c, tgt) in qnoise_edges() {
        t.add_edge(c, tgt);
    }
    t
}

/// The `ibmqx4` edges; kept in one place so the noise preset
/// (`qnoise::presets::IBMQX4_EDGES`) and this topology cannot drift
/// apart (asserted in tests).
fn qnoise_edges() -> [(u32, u32); 6] {
    [(1, 0), (2, 0), (2, 1), (3, 2), (3, 4), (4, 2)]
}

/// The IBM Q 5 "Yorktown" (`ibmqx2`) coupling map: a bow-tie of five
/// qubits with directed edges
/// `0→1, 0→2, 1→2, 3→2, 3→4, 4→2`.
pub fn ibmqx2() -> Topology {
    let mut t = Topology::new(5);
    for (c, tgt) in [(0, 1), (0, 2), (1, 2), (3, 2), (3, 4), (4, 2)] {
        t.add_edge(c, tgt);
    }
    t
}

/// An IBM Q 16 "Melbourne"-style ladder: two seven-qubit rails with
/// rungs, 14 qubits total (directionality follows the published map's
/// pattern: top rail rightward, bottom rail leftward, rungs downward).
pub fn melbourne() -> Topology {
    let mut t = Topology::new(14);
    // Top rail 0→1→…→6, bottom rail 13→12→…→7 (reversed direction).
    for i in 0..6 {
        t.add_edge(i, i + 1);
    }
    for i in (8..14).rev() {
        t.add_edge(i as u32, i as u32 - 1);
    }
    // Rungs: top qubit i couples down to 13−i.
    for i in 1..7u32 {
        t.add_edge(i, 13 - i);
    }
    t
}

/// A linear chain `0 → 1 → … → n−1`.
///
/// # Panics
///
/// Panics when `n == 0`.
pub fn linear(n: usize) -> Topology {
    assert!(n >= 1, "linear topology needs at least one qubit");
    let mut t = Topology::new(n);
    for i in 0..n.saturating_sub(1) {
        t.add_edge(i as u32, i as u32 + 1);
    }
    t
}

/// A ring of `n` qubits (`i → i+1 mod n`).
///
/// # Panics
///
/// Panics when `n < 3`.
pub fn ring(n: usize) -> Topology {
    assert!(n >= 3, "ring topology needs at least three qubits");
    let mut t = Topology::new(n);
    for i in 0..n {
        t.add_edge(i as u32, ((i + 1) % n) as u32);
    }
    t
}

/// A `width × height` grid with edges rightward and downward.
///
/// # Panics
///
/// Panics when either dimension is zero.
pub fn grid(width: usize, height: usize) -> Topology {
    assert!(
        width >= 1 && height >= 1,
        "grid dimensions must be positive"
    );
    let mut t = Topology::new(width * height);
    for y in 0..height {
        for x in 0..width {
            let idx = (y * width + x) as u32;
            if x + 1 < width {
                t.add_edge(idx, idx + 1);
            }
            if y + 1 < height {
                t.add_edge(idx, idx + width as u32);
            }
        }
    }
    t
}

/// All-to-all connectivity (both directions on every pair).
///
/// # Panics
///
/// Panics when `n == 0`.
pub fn fully_connected(n: usize) -> Topology {
    assert!(n >= 1, "topology needs at least one qubit");
    let mut t = Topology::new(n);
    for a in 0..n as u32 {
        for b in 0..n as u32 {
            if a != b {
                t.add_edge(a, b);
            }
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcircuit::QubitId;

    #[test]
    fn ibmqx4_matches_published_coupling_map() {
        let t = ibmqx4();
        assert_eq!(t.num_qubits(), 5);
        assert_eq!(t.edge_count(), 6);
        assert!(t.has_directed_edge(QubitId::new(1), QubitId::new(0)));
        assert!(t.has_directed_edge(QubitId::new(4), QubitId::new(2)));
        assert!(!t.has_directed_edge(QubitId::new(0), QubitId::new(1)));
        assert!(t.is_connected());
    }

    #[test]
    fn ibmqx4_edges_agree_with_noise_preset() {
        let from_topo: Vec<(u32, u32)> = ibmqx4()
            .edges()
            .map(|(c, t)| (c.index() as u32, t.index() as u32))
            .collect();
        let mut from_noise = qnoise::presets::IBMQX4_EDGES.to_vec();
        from_noise.sort_unstable();
        assert_eq!(from_topo, from_noise);
    }

    #[test]
    fn ibmqx2_bowtie_structure() {
        let t = ibmqx2();
        assert_eq!(t.num_qubits(), 5);
        assert_eq!(t.edge_count(), 6);
        assert!(t.is_connected());
        // Qubit 2 is the hub: coupled to all four others.
        assert_eq!(t.neighbors(QubitId::new(2)).len(), 4);
    }

    #[test]
    fn melbourne_ladder_structure() {
        let t = melbourne();
        assert_eq!(t.num_qubits(), 14);
        assert!(t.is_connected());
        // Rails + rungs: 6 + 6 + 6 edges.
        assert_eq!(t.edge_count(), 18);
        // Opposite corners are far apart.
        assert!(t.distance(QubitId::new(0), QubitId::new(7)).unwrap() >= 4);
    }

    #[test]
    fn melbourne_routes_wide_circuits() {
        let t = melbourne();
        let ghz = qcircuit::library::ghz(10);
        let result = crate::transpile::transpile(&ghz, &t).unwrap();
        crate::verify::check_native(&result.circuit, &t).unwrap();
    }

    #[test]
    fn linear_chain_distances() {
        let t = linear(5);
        assert_eq!(t.distance(QubitId::new(0), QubitId::new(4)), Some(4));
        assert_eq!(t.edge_count(), 4);
    }

    #[test]
    fn ring_wraps_around() {
        let t = ring(6);
        assert_eq!(t.distance(QubitId::new(0), QubitId::new(5)), Some(1));
        assert_eq!(t.distance(QubitId::new(0), QubitId::new(3)), Some(3));
    }

    #[test]
    fn grid_adjacency() {
        let t = grid(3, 2);
        assert_eq!(t.num_qubits(), 6);
        // (0,0) connects right to 1 and down to 3.
        assert!(t.are_connected(QubitId::new(0), QubitId::new(1)));
        assert!(t.are_connected(QubitId::new(0), QubitId::new(3)));
        assert!(!t.are_connected(QubitId::new(0), QubitId::new(4)));
    }

    #[test]
    fn fully_connected_distance_is_one() {
        let t = fully_connected(4);
        for a in 0..4u32 {
            for b in 0..4u32 {
                if a != b {
                    assert_eq!(t.distance(QubitId::new(a), QubitId::new(b)), Some(1));
                }
            }
        }
    }

    #[test]
    fn single_qubit_presets() {
        assert!(linear(1).is_connected());
        assert_eq!(grid(1, 1).edge_count(), 0);
    }
}
