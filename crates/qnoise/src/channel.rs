//! Quantum noise channels in Kraus form.
//!
//! A channel `E(ρ) = Σᵢ Kᵢ ρ Kᵢ†` is represented by its Kraus operators
//! [`Kraus`]. The constructors cover the standard NISQ error processes:
//! depolarizing (1- and 2-qubit), bit/phase flips, amplitude and phase
//! damping, and thermal relaxation parameterized by `T1`/`T2` and a gate
//! duration — the ingredients of the `ibmqx4`-like device model used to
//! reproduce the paper's Tables 1–2.

use qmath::{is_cptp, CMatrix, Complex};
use std::fmt;

/// Error produced when constructing an invalid channel.
#[derive(Clone, Debug, PartialEq)]
pub enum ChannelError {
    /// A probability parameter is outside `[0, 1]`.
    InvalidProbability {
        /// Name of the parameter.
        param: &'static str,
        /// The offending value.
        value: f64,
    },
    /// Probabilities sum to more than 1.
    ProbabilitySumExceedsOne {
        /// The offending sum.
        sum: f64,
    },
    /// Relaxation times are unphysical (T1 ≤ 0, T2 ≤ 0, or T2 > 2·T1).
    InvalidRelaxation {
        /// Longitudinal relaxation time.
        t1: f64,
        /// Transverse relaxation time.
        t2: f64,
    },
    /// Gate duration must be non-negative.
    InvalidDuration {
        /// The offending duration.
        duration: f64,
    },
}

impl fmt::Display for ChannelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChannelError::InvalidProbability { param, value } => {
                write!(f, "probability '{param}' must lie in [0, 1], got {value}")
            }
            ChannelError::ProbabilitySumExceedsOne { sum } => {
                write!(f, "pauli error probabilities sum to {sum} > 1")
            }
            ChannelError::InvalidRelaxation { t1, t2 } => {
                write!(
                    f,
                    "relaxation times are unphysical: t1={t1}, t2={t2} (need 0 < t2 <= 2*t1)"
                )
            }
            ChannelError::InvalidDuration { duration } => {
                write!(f, "gate duration must be non-negative, got {duration}")
            }
        }
    }
}

impl std::error::Error for ChannelError {}

/// A single-qubit factor of a Pauli string, as detected by
/// [`Kraus::as_pauli_channel`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PauliTerm {
    /// Identity factor.
    I,
    /// Pauli-X factor.
    X,
    /// Pauli-Y factor.
    Y,
    /// Pauli-Z factor.
    Z,
}

impl PauliTerm {
    /// The term's single-qubit matrix.
    pub fn matrix(self) -> CMatrix {
        pauli(self as usize)
    }
}

/// Rotation axis for [`Kraus::coherent_overrotation`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RotationAxis {
    /// Rotation about X.
    X,
    /// Rotation about Y.
    Y,
    /// Rotation about Z.
    Z,
}

/// A completely positive trace-preserving map in Kraus form.
///
/// # Example
///
/// ```
/// use qnoise::Kraus;
/// let flip = Kraus::bit_flip(0.1)?;
/// assert_eq!(flip.num_qubits(), 1);
/// assert_eq!(flip.ops().len(), 2);
/// # Ok::<(), qnoise::ChannelError>(())
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Kraus {
    ops: Vec<CMatrix>,
    num_qubits: usize,
}

/// The four single-qubit Pauli matrices in index order I, X, Y, Z.
fn pauli(i: usize) -> CMatrix {
    let mut m = CMatrix::zeros(2);
    match i {
        0 => {
            m.set(0, 0, Complex::ONE);
            m.set(1, 1, Complex::ONE);
        }
        1 => {
            m.set(0, 1, Complex::ONE);
            m.set(1, 0, Complex::ONE);
        }
        2 => {
            m.set(0, 1, -Complex::I);
            m.set(1, 0, Complex::I);
        }
        3 => {
            m.set(0, 0, Complex::ONE);
            m.set(1, 1, -Complex::ONE);
        }
        _ => unreachable!("pauli index must be 0..4"),
    }
    m
}

fn check_prob(param: &'static str, value: f64) -> Result<(), ChannelError> {
    if !(0.0..=1.0).contains(&value) || !value.is_finite() {
        return Err(ChannelError::InvalidProbability { param, value });
    }
    Ok(())
}

impl Kraus {
    /// Builds a channel from raw Kraus operators.
    ///
    /// The operators are trusted to satisfy CPTP; use [`Kraus::is_cptp`]
    /// to verify when they come from an untrusted source.
    ///
    /// # Panics
    ///
    /// Panics when `ops` is empty or the operators' dimensions differ or
    /// are not a power of two.
    pub fn from_ops(ops: Vec<CMatrix>) -> Self {
        let dim = ops.first().expect("kraus set must be non-empty").dim();
        assert!(
            dim.is_power_of_two(),
            "kraus dimension must be a power of two"
        );
        assert!(
            ops.iter().all(|k| k.dim() == dim),
            "kraus operators must share one dimension"
        );
        Kraus {
            ops,
            num_qubits: dim.trailing_zeros() as usize,
        }
    }

    /// The identity (no-noise) channel on one qubit.
    pub fn identity() -> Self {
        Kraus::from_ops(vec![CMatrix::identity(2)])
    }

    /// Single-qubit depolarizing channel:
    /// `ρ → (1−p)·ρ + p·I/2`.
    ///
    /// # Errors
    ///
    /// Returns [`ChannelError::InvalidProbability`] when `p ∉ [0, 1]`.
    pub fn depolarizing(p: f64) -> Result<Self, ChannelError> {
        check_prob("p", p)?;
        let mut ops = vec![pauli(0).scale((1.0 - 0.75 * p).sqrt())];
        for i in 1..4 {
            ops.push(pauli(i).scale((p / 4.0).sqrt()));
        }
        Ok(Kraus::from_ops(ops))
    }

    /// Two-qubit depolarizing channel:
    /// `ρ → (1−p)·ρ + p·I/4`.
    ///
    /// # Errors
    ///
    /// Returns [`ChannelError::InvalidProbability`] when `p ∉ [0, 1]`.
    pub fn depolarizing2(p: f64) -> Result<Self, ChannelError> {
        check_prob("p", p)?;
        let mut ops = Vec::with_capacity(16);
        for i in 0..4 {
            for j in 0..4 {
                let coeff = if i == 0 && j == 0 {
                    (1.0 - 15.0 * p / 16.0).sqrt()
                } else {
                    (p / 16.0).sqrt()
                };
                if coeff > 0.0 {
                    ops.push(pauli(i).kron(&pauli(j)).scale(coeff));
                }
            }
        }
        Ok(Kraus::from_ops(ops))
    }

    /// Bit-flip channel: applies X with probability `p`.
    ///
    /// # Errors
    ///
    /// Returns [`ChannelError::InvalidProbability`] when `p ∉ [0, 1]`.
    pub fn bit_flip(p: f64) -> Result<Self, ChannelError> {
        check_prob("p", p)?;
        Ok(Kraus::from_ops(vec![
            pauli(0).scale((1.0 - p).sqrt()),
            pauli(1).scale(p.sqrt()),
        ]))
    }

    /// Phase-flip channel: applies Z with probability `p`.
    ///
    /// # Errors
    ///
    /// Returns [`ChannelError::InvalidProbability`] when `p ∉ [0, 1]`.
    pub fn phase_flip(p: f64) -> Result<Self, ChannelError> {
        check_prob("p", p)?;
        Ok(Kraus::from_ops(vec![
            pauli(0).scale((1.0 - p).sqrt()),
            pauli(3).scale(p.sqrt()),
        ]))
    }

    /// General Pauli channel: applies X, Y, Z with probabilities `px`,
    /// `py`, `pz` (identity otherwise).
    ///
    /// # Errors
    ///
    /// Returns a [`ChannelError`] when any probability is invalid or they
    /// sum past 1.
    pub fn pauli_channel(px: f64, py: f64, pz: f64) -> Result<Self, ChannelError> {
        check_prob("px", px)?;
        check_prob("py", py)?;
        check_prob("pz", pz)?;
        let sum = px + py + pz;
        if sum > 1.0 + 1e-12 {
            return Err(ChannelError::ProbabilitySumExceedsOne { sum });
        }
        Ok(Kraus::from_ops(vec![
            pauli(0).scale((1.0 - sum).max(0.0).sqrt()),
            pauli(1).scale(px.sqrt()),
            pauli(2).scale(py.sqrt()),
            pauli(3).scale(pz.sqrt()),
        ]))
    }

    /// Amplitude-damping channel with decay probability `gamma`
    /// (models T1 energy relaxation toward `|0⟩`).
    ///
    /// # Errors
    ///
    /// Returns [`ChannelError::InvalidProbability`] when `gamma ∉ [0, 1]`.
    pub fn amplitude_damping(gamma: f64) -> Result<Self, ChannelError> {
        check_prob("gamma", gamma)?;
        let mut k0 = CMatrix::zeros(2);
        k0.set(0, 0, Complex::ONE);
        k0.set(1, 1, Complex::real((1.0 - gamma).sqrt()));
        let mut k1 = CMatrix::zeros(2);
        k1.set(0, 1, Complex::real(gamma.sqrt()));
        Ok(Kraus::from_ops(vec![k0, k1]))
    }

    /// Phase-damping channel with dephasing probability `lambda`
    /// (models pure T2 dephasing).
    ///
    /// # Errors
    ///
    /// Returns [`ChannelError::InvalidProbability`] when `lambda ∉ [0, 1]`.
    pub fn phase_damping(lambda: f64) -> Result<Self, ChannelError> {
        check_prob("lambda", lambda)?;
        let mut k0 = CMatrix::zeros(2);
        k0.set(0, 0, Complex::ONE);
        k0.set(1, 1, Complex::real((1.0 - lambda).sqrt()));
        let mut k1 = CMatrix::zeros(2);
        k1.set(1, 1, Complex::real(lambda.sqrt()));
        Ok(Kraus::from_ops(vec![k0, k1]))
    }

    /// Coherent over-rotation error: a *unitary* error channel applying
    /// `Rx(ε)`-style rotation after every gate (one Kraus operator).
    ///
    /// Coherent errors accumulate quadratically with depth rather than
    /// linearly — a different error signature than the stochastic
    /// channels, and one the assertion circuits still catch (the
    /// ancilla measures population leakage regardless of its origin).
    ///
    /// # Errors
    ///
    /// Returns [`ChannelError::InvalidProbability`] when `epsilon` is
    /// not finite.
    pub fn coherent_overrotation(axis: RotationAxis, epsilon: f64) -> Result<Self, ChannelError> {
        if !epsilon.is_finite() {
            return Err(ChannelError::InvalidProbability {
                param: "epsilon",
                value: epsilon,
            });
        }
        let (c, s) = ((epsilon / 2.0).cos(), (epsilon / 2.0).sin());
        let mut m = CMatrix::zeros(2);
        match axis {
            RotationAxis::X => {
                m.set(0, 0, Complex::real(c));
                m.set(0, 1, Complex::new(0.0, -s));
                m.set(1, 0, Complex::new(0.0, -s));
                m.set(1, 1, Complex::real(c));
            }
            RotationAxis::Y => {
                m.set(0, 0, Complex::real(c));
                m.set(0, 1, Complex::real(-s));
                m.set(1, 0, Complex::real(s));
                m.set(1, 1, Complex::real(c));
            }
            RotationAxis::Z => {
                m.set(0, 0, Complex::cis(-epsilon / 2.0));
                m.set(1, 1, Complex::cis(epsilon / 2.0));
            }
        }
        Ok(Kraus::from_ops(vec![m]))
    }

    /// Thermal-relaxation channel for a gate of `duration` on a qubit with
    /// relaxation times `t1` and `t2` (all in consistent units, e.g.
    /// nanoseconds).
    ///
    /// Modeled as amplitude damping with `γ = 1 − e^{−t/T1}` composed with
    /// pure dephasing `λ = 1 − e^{−t/Tφ}` where `1/Tφ = 1/T2 − 1/(2·T1)`.
    ///
    /// # Errors
    ///
    /// Returns [`ChannelError::InvalidRelaxation`] for unphysical times
    /// (requires `0 < T2 ≤ 2·T1`) or [`ChannelError::InvalidDuration`]
    /// for negative durations.
    pub fn thermal_relaxation(t1: f64, t2: f64, duration: f64) -> Result<Self, ChannelError> {
        if t1 <= 0.0 || t2 <= 0.0 || t2 > 2.0 * t1 {
            return Err(ChannelError::InvalidRelaxation { t1, t2 });
        }
        if duration < 0.0 || !duration.is_finite() {
            return Err(ChannelError::InvalidDuration { duration });
        }
        let gamma = 1.0 - (-duration / t1).exp();
        // 1/Tφ = 1/T2 − 1/(2 T1); when T2 = 2·T1 there is no pure
        // dephasing beyond amplitude damping.
        let inv_tphi = 1.0 / t2 - 1.0 / (2.0 * t1);
        let lambda = if inv_tphi <= 0.0 {
            0.0
        } else {
            1.0 - (-duration * inv_tphi).exp()
        };
        let ad = Kraus::amplitude_damping(gamma)?;
        let pd = Kraus::phase_damping(lambda)?;
        Ok(ad.then(&pd))
    }

    /// Sequential composition: the channel applying `self` first, then
    /// `other` (Kraus set `{Lⱼ·Kᵢ}` with near-zero products pruned).
    ///
    /// # Panics
    ///
    /// Panics when the channels act on different qubit counts.
    pub fn then(&self, other: &Kraus) -> Kraus {
        assert_eq!(
            self.num_qubits, other.num_qubits,
            "composed channels must act on the same qubits"
        );
        let mut ops = Vec::with_capacity(self.ops.len() * other.ops.len());
        for l in &other.ops {
            for k in &self.ops {
                let prod = l.mul(k).expect("dimensions match");
                if !prod.is_zero(1e-15) {
                    ops.push(prod);
                }
            }
        }
        Kraus::from_ops(ops)
    }

    /// Tensor product of two channels acting on disjoint qubits:
    /// `self` on the low-order local qubit(s), `other` on the high-order
    /// ones. Kraus set `{Lⱼ ⊗ Kᵢ}`.
    pub fn kron(&self, other: &Kraus) -> Kraus {
        let mut ops = Vec::with_capacity(self.ops.len() * other.ops.len());
        for l in &other.ops {
            for k in &self.ops {
                // CMatrix::kron puts the left operand on the most
                // significant digits, so `other` (high qubits) goes left.
                let prod = l.kron(k);
                if !prod.is_zero(1e-15) {
                    ops.push(prod);
                }
            }
        }
        Kraus::from_ops(ops)
    }

    /// The Kraus operators.
    pub fn ops(&self) -> &[CMatrix] {
        &self.ops
    }

    /// Number of qubits the channel acts on.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Verifies the trace-preservation condition `Σ Kᵢ†Kᵢ = I`.
    pub fn is_cptp(&self, tol: f64) -> bool {
        is_cptp(&self.ops, tol).unwrap_or(false)
    }

    /// Detects whether this channel is a **Pauli channel** — every Kraus
    /// operator a scalar multiple of a Pauli string — and returns its
    /// probability table `[(pᵢ, Pᵢ)]` with `pᵢ = |cᵢ|²` when it is.
    ///
    /// Entry `j` of each returned string is the factor on local qubit
    /// `j` (the channel's low-order qubit first, matching the gate
    /// local-basis convention). Zero-weight operators (e.g. the pruned
    /// `p = 0` Paulis of [`Kraus::depolarizing`]) are dropped from the
    /// table; the remaining probabilities must sum to 1 within `1e-9`
    /// or the channel is rejected.
    ///
    /// Returns `None` for anything else — amplitude/phase damping,
    /// thermal relaxation, and generic coherent errors all mix Pauli
    /// strings coherently and cannot be sampled as stochastic Pauli
    /// injections. `tol` bounds the per-entry matrix comparison.
    pub fn as_pauli_channel(&self, tol: f64) -> Option<Vec<(f64, Vec<PauliTerm>)>> {
        const TERMS: [PauliTerm; 4] = [PauliTerm::I, PauliTerm::X, PauliTerm::Y, PauliTerm::Z];
        let n = self.num_qubits;
        let codes = 4usize.pow(n as u32);
        let mut table = Vec::with_capacity(self.ops.len());
        let mut total = 0.0;
        'ops: for k in &self.ops {
            if k.is_zero(tol) {
                continue; // zero-weight operator: probability 0
            }
            for code in 0..codes {
                // Build the candidate string (qubit n−1 is the leftmost
                // Kronecker factor, matching CMatrix::kron's MSB-left
                // convention and the local-basis qubit-j-is-bit-j rule).
                let mut p = pauli((code >> (2 * (n - 1))) & 3);
                for j in (0..n - 1).rev() {
                    p = p.kron(&pauli((code >> (2 * j)) & 3));
                }
                // Pauli strings have exactly one nonzero entry per row,
                // of unit modulus: the scalar, if K = c·P, is read off
                // row 0 as c = K₀ⱼ / P₀ⱼ.
                let col = (0..p.dim())
                    .find(|&j| p.get(0, j) != Complex::ZERO)
                    .expect("pauli strings have a nonzero entry per row");
                let c = k.get(0, col) / p.get(0, col);
                if c.norm_sqr() > tol * tol && k.approx_eq(&p.scale_c(c), tol) {
                    let string: Vec<PauliTerm> =
                        (0..n).map(|j| TERMS[(code >> (2 * j)) & 3]).collect();
                    total += c.norm_sqr();
                    table.push((c.norm_sqr(), string));
                    continue 'ops;
                }
            }
            return None; // this operator is not a scaled Pauli string
        }
        if (total - 1.0).abs() > 1e-9 || table.is_empty() {
            return None;
        }
        Some(table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_standard_channels_are_cptp() {
        let channels = [
            Kraus::identity(),
            Kraus::depolarizing(0.1).unwrap(),
            Kraus::depolarizing2(0.05).unwrap(),
            Kraus::bit_flip(0.2).unwrap(),
            Kraus::phase_flip(0.3).unwrap(),
            Kraus::pauli_channel(0.1, 0.05, 0.2).unwrap(),
            Kraus::amplitude_damping(0.25).unwrap(),
            Kraus::phase_damping(0.15).unwrap(),
            Kraus::thermal_relaxation(50_000.0, 30_000.0, 100.0).unwrap(),
        ];
        for ch in &channels {
            assert!(ch.is_cptp(1e-10), "{ch:?} violates CPTP");
        }
    }

    #[test]
    fn probability_bounds_are_enforced() {
        assert!(Kraus::depolarizing(-0.1).is_err());
        assert!(Kraus::depolarizing(1.1).is_err());
        assert!(Kraus::bit_flip(f64::NAN).is_err());
        assert!(Kraus::pauli_channel(0.5, 0.4, 0.3).is_err());
    }

    #[test]
    fn relaxation_parameter_validation() {
        assert!(Kraus::thermal_relaxation(-1.0, 1.0, 1.0).is_err());
        assert!(Kraus::thermal_relaxation(10.0, 25.0, 1.0).is_err()); // T2 > 2 T1
        assert!(Kraus::thermal_relaxation(10.0, 5.0, -1.0).is_err());
        assert!(Kraus::thermal_relaxation(10.0, 20.0, 0.0).is_ok()); // T2 = 2 T1 allowed
    }

    #[test]
    fn zero_probability_channels_are_identity_like() {
        for ch in [
            Kraus::depolarizing(0.0).unwrap(),
            Kraus::bit_flip(0.0).unwrap(),
            Kraus::amplitude_damping(0.0).unwrap(),
        ] {
            // One Kraus operator carries all the weight and equals I.
            let dominant = ch
                .ops()
                .iter()
                .find(|k| (k.get(0, 0).norm() - 1.0).abs() < 1e-12)
                .expect("identity-weight operator");
            assert!(dominant.approx_eq(&CMatrix::identity(2), 1e-12));
        }
    }

    #[test]
    fn full_depolarizing_has_uniform_paulis() {
        let ch = Kraus::depolarizing(1.0).unwrap();
        // At p=1, all four Paulis carry weight 1/4 each.
        for k in ch.ops() {
            let weight = k.adjoint().mul(k).unwrap().trace().re / 2.0;
            assert!((weight - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn amplitude_damping_kills_excited_population() {
        // K0|1⟩ shrinks by √(1−γ); K1|1⟩ → √γ|0⟩.
        let ch = Kraus::amplitude_damping(0.36).unwrap();
        let k0 = &ch.ops()[0];
        let k1 = &ch.ops()[1];
        assert!((k0.get(1, 1).re - 0.8).abs() < 1e-12);
        assert!((k1.get(0, 1).re - 0.6).abs() < 1e-12);
    }

    #[test]
    fn thermal_relaxation_limits() {
        // Very long T1/T2 relative to the duration ≈ identity channel.
        let ch = Kraus::thermal_relaxation(1e12, 1e12, 1.0).unwrap();
        assert!(ch.is_cptp(1e-10));
        let sum_weight: f64 = ch.ops()[0].get(0, 0).norm_sqr();
        assert!((sum_weight - 1.0).abs() < 1e-9);
    }

    #[test]
    fn composition_is_cptp_and_prunes_zeros() {
        let a = Kraus::bit_flip(0.5).unwrap();
        let b = Kraus::phase_flip(0.5).unwrap();
        let ab = a.then(&b);
        assert!(ab.is_cptp(1e-10));
        assert_eq!(ab.ops().len(), 4);
    }

    #[test]
    fn two_qubit_depolarizing_has_sixteen_ops() {
        let ch = Kraus::depolarizing2(0.2).unwrap();
        assert_eq!(ch.ops().len(), 16);
        assert_eq!(ch.num_qubits(), 2);
    }

    #[test]
    fn coherent_overrotation_is_unitary_and_cptp() {
        for axis in [RotationAxis::X, RotationAxis::Y, RotationAxis::Z] {
            let ch = Kraus::coherent_overrotation(axis, 0.05).unwrap();
            assert_eq!(ch.ops().len(), 1);
            assert!(ch.ops()[0].is_unitary(1e-12), "{axis:?}");
            assert!(ch.is_cptp(1e-12));
        }
        assert!(Kraus::coherent_overrotation(RotationAxis::X, f64::NAN).is_err());
    }

    #[test]
    fn coherent_x_overrotation_matches_rx() {
        // ε-rotation about X must equal the Rx(ε) gate matrix.
        let ch = Kraus::coherent_overrotation(RotationAxis::X, 0.3).unwrap();
        let rx = qcircuit::Gate::Rx(0.3).matrix();
        assert!(ch.ops()[0].approx_eq(&rx, 1e-12));
    }

    #[test]
    fn coherent_errors_compose_coherently() {
        // Two ε rotations = one 2ε rotation (phase-coherent growth).
        let one = Kraus::coherent_overrotation(RotationAxis::Y, 0.1).unwrap();
        let two = one.then(&one);
        let expected = Kraus::coherent_overrotation(RotationAxis::Y, 0.2).unwrap();
        assert!(two.ops()[0].approx_eq(&expected.ops()[0], 1e-12));
    }

    #[test]
    fn kron_of_channels_is_cptp_with_product_arity() {
        let a = Kraus::amplitude_damping(0.1).unwrap();
        let b = Kraus::depolarizing(0.2).unwrap();
        let ab = a.kron(&b);
        assert_eq!(ab.num_qubits(), 2);
        assert!(ab.is_cptp(1e-10));
    }

    #[test]
    fn pauli_channels_are_detected_with_exact_probabilities() {
        let table = Kraus::pauli_channel(0.1, 0.05, 0.2)
            .unwrap()
            .as_pauli_channel(1e-9)
            .expect("pauli_channel is a Pauli channel");
        let prob_of = |term: PauliTerm| {
            table
                .iter()
                .find(|(_, s)| s == &vec![term])
                .map(|(p, _)| *p)
                .unwrap_or(0.0)
        };
        assert!((prob_of(PauliTerm::I) - 0.65).abs() < 1e-12);
        assert!((prob_of(PauliTerm::X) - 0.1).abs() < 1e-12);
        assert!((prob_of(PauliTerm::Y) - 0.05).abs() < 1e-12);
        assert!((prob_of(PauliTerm::Z) - 0.2).abs() < 1e-12);

        // Two-qubit depolarizing: 16 strings of weight p/16 plus the
        // dominant identity, each of length 2.
        let table = Kraus::depolarizing2(0.16)
            .unwrap()
            .as_pauli_channel(1e-9)
            .expect("depolarizing2 is a Pauli channel");
        assert_eq!(table.len(), 16);
        assert!(table.iter().all(|(_, s)| s.len() == 2));
        let sum: f64 = table.iter().map(|(p, _)| p).sum();
        assert!((sum - 1.0).abs() < 1e-12);

        // Zero-probability ops are dropped, not reported.
        let table = Kraus::depolarizing(0.0)
            .unwrap()
            .as_pauli_channel(1e-9)
            .expect("p=0 depolarizing is the identity channel");
        assert_eq!(table, vec![(1.0, vec![PauliTerm::I])]);
    }

    #[test]
    fn non_pauli_channels_are_rejected() {
        for ch in [
            Kraus::amplitude_damping(0.25).unwrap(),
            Kraus::phase_damping(0.15).unwrap(),
            Kraus::thermal_relaxation(50_000.0, 30_000.0, 100.0).unwrap(),
            Kraus::coherent_overrotation(RotationAxis::X, 0.3).unwrap(),
        ] {
            assert_eq!(ch.as_pauli_channel(1e-9), None, "{ch:?}");
        }
        // A coherent rotation that happens to *be* a Pauli (Rx(π) =
        // −iX) is legitimately a unit-probability Pauli channel.
        let table = Kraus::coherent_overrotation(RotationAxis::X, std::f64::consts::PI)
            .unwrap()
            .as_pauli_channel(1e-9)
            .expect("Rx(pi) is -iX, a pure Pauli");
        assert_eq!(table.len(), 1);
        assert_eq!(table[0].1, vec![PauliTerm::X]);
        assert!((table[0].0 - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_kraus_set_is_rejected() {
        let _ = Kraus::from_ops(Vec::new());
    }

    #[test]
    #[should_panic(expected = "same qubits")]
    fn composing_mismatched_arities_panics() {
        let a = Kraus::depolarizing(0.1).unwrap();
        let b = Kraus::depolarizing2(0.1).unwrap();
        let _ = a.then(&b);
    }
}
