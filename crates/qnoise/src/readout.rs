//! Measurement (readout) assignment errors.
//!
//! NISQ devices misreport measurement outcomes with qubit-dependent
//! probabilities — on the `ibmqx4` generation this was the *largest* error
//! source (3–5% per qubit), and it is what the paper's assertion-based
//! filtering partially removes. [`ReadoutError`] models the 2×2 stochastic
//! assignment matrix of one qubit.

use std::fmt;

/// Per-qubit readout assignment error.
///
/// `p_meas1_given0` is the probability of recording 1 when the true state
/// was `|0⟩`; `p_meas0_given1` the reverse. The assignment matrix
/// `[[1−ε₀, ε₁], [ε₀, 1−ε₁]]` is column-stochastic.
///
/// # Example
///
/// ```
/// use qnoise::ReadoutError;
/// let ro = ReadoutError::new(0.03, 0.05)?;
/// assert!((ro.p_recorded_one(0.0) - 0.03).abs() < 1e-12);
/// assert!((ro.p_recorded_one(1.0) - 0.95).abs() < 1e-12);
/// # Ok::<(), qnoise::ChannelError>(())
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReadoutError {
    p_meas1_given0: f64,
    p_meas0_given1: f64,
}

impl ReadoutError {
    /// Creates a readout error from its two flip probabilities.
    ///
    /// # Errors
    ///
    /// Returns [`crate::ChannelError::InvalidProbability`] when either
    /// probability lies outside `[0, 1]`.
    pub fn new(p_meas1_given0: f64, p_meas0_given1: f64) -> Result<Self, crate::ChannelError> {
        for (name, v) in [
            ("p_meas1_given0", p_meas1_given0),
            ("p_meas0_given1", p_meas0_given1),
        ] {
            if !(0.0..=1.0).contains(&v) || !v.is_finite() {
                return Err(crate::ChannelError::InvalidProbability {
                    param: name,
                    value: v,
                });
            }
        }
        Ok(ReadoutError {
            p_meas1_given0,
            p_meas0_given1,
        })
    }

    /// A perfect readout (no assignment error).
    pub fn ideal() -> Self {
        ReadoutError {
            p_meas1_given0: 0.0,
            p_meas0_given1: 0.0,
        }
    }

    /// Symmetric readout error flipping either outcome with probability
    /// `p`.
    ///
    /// # Errors
    ///
    /// Returns [`crate::ChannelError::InvalidProbability`] when
    /// `p ∉ [0, 1]`.
    pub fn symmetric(p: f64) -> Result<Self, crate::ChannelError> {
        ReadoutError::new(p, p)
    }

    /// Probability of recording 1 when the true state is `|0⟩`.
    pub fn p_meas1_given0(&self) -> f64 {
        self.p_meas1_given0
    }

    /// Probability of recording 0 when the true state is `|1⟩`.
    pub fn p_meas0_given1(&self) -> f64 {
        self.p_meas0_given1
    }

    /// Probability that the *recorded* bit is 1 given the true
    /// probability `p_true_one` of the qubit being `|1⟩`.
    pub fn p_recorded_one(&self, p_true_one: f64) -> f64 {
        (1.0 - p_true_one) * self.p_meas1_given0 + p_true_one * (1.0 - self.p_meas0_given1)
    }

    /// Probability that the recorded bit equals `recorded` given the true
    /// outcome `actual`.
    pub fn p_record(&self, actual: bool, recorded: bool) -> f64 {
        match (actual, recorded) {
            (false, false) => 1.0 - self.p_meas1_given0,
            (false, true) => self.p_meas1_given0,
            (true, false) => self.p_meas0_given1,
            (true, true) => 1.0 - self.p_meas0_given1,
        }
    }

    /// Returns `true` when both flip probabilities are zero.
    pub fn is_ideal(&self) -> bool {
        self.p_meas1_given0 == 0.0 && self.p_meas0_given1 == 0.0
    }

    /// Samples a recorded bit for a true outcome using `rand_value`
    /// drawn uniformly from `[0, 1)`.
    pub fn sample_recorded(&self, actual: bool, rand_value: f64) -> bool {
        let flip = if actual {
            self.p_meas0_given1
        } else {
            self.p_meas1_given0
        };
        if rand_value < flip {
            !actual
        } else {
            actual
        }
    }
}

impl Default for ReadoutError {
    fn default() -> Self {
        ReadoutError::ideal()
    }
}

impl fmt::Display for ReadoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "readout(P(1|0)={:.4}, P(0|1)={:.4})",
            self.p_meas1_given0, self.p_meas0_given1
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_rejects_bad_probabilities() {
        assert!(ReadoutError::new(-0.1, 0.0).is_err());
        assert!(ReadoutError::new(0.0, 1.5).is_err());
        assert!(ReadoutError::new(f64::INFINITY, 0.0).is_err());
    }

    #[test]
    fn ideal_readout_never_flips() {
        let ro = ReadoutError::ideal();
        assert!(ro.is_ideal());
        assert_eq!(ro.p_record(false, true), 0.0);
        assert_eq!(ro.p_record(true, true), 1.0);
        assert!(!ro.sample_recorded(false, 0.0));
        assert!(ro.sample_recorded(true, 0.999));
    }

    #[test]
    fn record_probabilities_sum_to_one() {
        let ro = ReadoutError::new(0.03, 0.07).unwrap();
        for actual in [false, true] {
            let sum = ro.p_record(actual, false) + ro.p_record(actual, true);
            assert!((sum - 1.0).abs() < 1e-15);
        }
    }

    #[test]
    fn recorded_one_interpolates() {
        let ro = ReadoutError::new(0.1, 0.2).unwrap();
        assert!((ro.p_recorded_one(0.0) - 0.1).abs() < 1e-15);
        assert!((ro.p_recorded_one(1.0) - 0.8).abs() < 1e-15);
        assert!((ro.p_recorded_one(0.5) - 0.45).abs() < 1e-15);
    }

    #[test]
    fn sampling_respects_thresholds() {
        let ro = ReadoutError::new(0.25, 0.5).unwrap();
        // True 0: flips when r < 0.25.
        assert!(ro.sample_recorded(false, 0.2));
        assert!(!ro.sample_recorded(false, 0.3));
        // True 1: flips when r < 0.5.
        assert!(!ro.sample_recorded(true, 0.4));
        assert!(ro.sample_recorded(true, 0.6));
    }

    #[test]
    fn symmetric_constructor() {
        let ro = ReadoutError::symmetric(0.05).unwrap();
        assert_eq!(ro.p_meas1_given0(), 0.05);
        assert_eq!(ro.p_meas0_given1(), 0.05);
    }

    #[test]
    fn display_shows_both_probabilities() {
        let ro = ReadoutError::new(0.03, 0.05).unwrap();
        let s = ro.to_string();
        assert!(s.contains("0.0300"));
        assert!(s.contains("0.0500"));
    }
}
