//! Calibrated noise-model presets.
//!
//! [`ibmqx4`] approximates the 5-qubit IBM Q "Tenerife" device the paper
//! evaluated on, using era-appropriate public calibration ballparks
//! (single-qubit error ~10⁻³, CX error a few 10⁻², readout 3–5%,
//! T1 ≈ 50 µs, T2 ≈ 40 µs). The exact hardware snapshot behind the
//! paper's Tables 1–2 is not recoverable, so these magnitudes are tuned to
//! land in the same regime; `EXPERIMENTS.md` reports paper-vs-measured for
//! every experiment.

use crate::channel::Kraus;
use crate::model::NoiseModel;
use crate::readout::ReadoutError;
use qcircuit::QubitId;

/// Number of qubits on the `ibmqx4` (Tenerife) device.
pub const IBMQX4_QUBITS: usize = 5;

/// Directed CX edges of `ibmqx4`: `(control, target)` pairs the hardware
/// natively supports. Mirrored in `qdevice::presets::ibmqx4`.
pub const IBMQX4_EDGES: [(u32, u32); 6] = [(1, 0), (2, 0), (2, 1), (3, 2), (3, 4), (4, 2)];

/// Calibration constants for [`ibmqx4`], exposed so ablation experiments
/// can scale them.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Ibmqx4Calibration {
    /// Depolarizing probability after each single-qubit gate.
    pub p_gate1: f64,
    /// Depolarizing probability after each CX, per directed edge (same
    /// order as [`IBMQX4_EDGES`]).
    pub p_cx: [f64; 6],
    /// Longitudinal relaxation time, ns.
    pub t1_ns: f64,
    /// Transverse relaxation time, ns.
    pub t2_ns: f64,
    /// Single-qubit gate duration, ns.
    pub gate1_ns: f64,
    /// CX gate duration, ns.
    pub cx_ns: f64,
    /// Per-qubit readout errors `(P(1|0), P(0|1))`.
    pub readout: [(f64, f64); IBMQX4_QUBITS],
}

impl Ibmqx4Calibration {
    /// The default calibration used by [`ibmqx4`].
    pub fn nominal() -> Self {
        Ibmqx4Calibration {
            p_gate1: 0.0015,
            p_cx: [0.045, 0.052, 0.048, 0.058, 0.046, 0.052],
            t1_ns: 50_000.0,
            t2_ns: 40_000.0,
            gate1_ns: 60.0,
            cx_ns: 350.0,
            readout: [
                (0.032, 0.041),
                (0.021, 0.035),
                (0.025, 0.044),
                (0.029, 0.039),
                (0.034, 0.048),
            ],
        }
    }

    /// Returns a copy with every error probability scaled by `factor`
    /// (clamped to `[0, 1]`); coherence times are divided by the factor.
    /// Used by the noise-sweep ablation.
    pub fn scaled(&self, factor: f64) -> Self {
        let clamp = |p: f64| (p * factor).clamp(0.0, 1.0);
        let mut p_cx = self.p_cx;
        for p in &mut p_cx {
            *p = clamp(*p);
        }
        let mut readout = self.readout;
        for (a, b) in &mut readout {
            *a = clamp(*a);
            *b = clamp(*b);
        }
        Ibmqx4Calibration {
            p_gate1: clamp(self.p_gate1),
            p_cx,
            t1_ns: if factor > 0.0 {
                self.t1_ns / factor
            } else {
                f64::INFINITY
            },
            t2_ns: if factor > 0.0 {
                self.t2_ns / factor
            } else {
                f64::INFINITY
            },
            ..*self
        }
    }
}

/// An ideal (noise-free) model.
pub fn ideal() -> NoiseModel {
    NoiseModel::with_name("ideal")
}

/// The `ibmqx4`-like device model with nominal calibration.
pub fn ibmqx4() -> NoiseModel {
    ibmqx4_with(Ibmqx4Calibration::nominal())
}

/// Builds the `ibmqx4`-like model from explicit calibration constants.
pub fn ibmqx4_with(cal: Ibmqx4Calibration) -> NoiseModel {
    let mut model = NoiseModel::with_name("ibmqx4");

    let thermal_1q = Kraus::thermal_relaxation(cal.t1_ns, cal.t2_ns, cal.gate1_ns)
        .expect("nominal relaxation times are physical");
    let thermal_cx_1q = Kraus::thermal_relaxation(cal.t1_ns, cal.t2_ns, cal.cx_ns)
        .expect("nominal relaxation times are physical");

    // Single-qubit gates: depolarizing + relaxation over the gate time.
    let gate1 = Kraus::depolarizing(cal.p_gate1)
        .expect("calibrated probability in range")
        .then(&thermal_1q);
    model.with_default_1q(gate1);

    // CX gates: per-edge depolarizing composed with relaxation on both
    // operands over the (much longer) CX duration.
    let thermal_pair = thermal_cx_1q.kron(&thermal_cx_1q);
    for (&(c, t), &p) in IBMQX4_EDGES.iter().zip(cal.p_cx.iter()) {
        let channel = Kraus::depolarizing2(p)
            .expect("calibrated probability in range")
            .then(&thermal_pair);
        model.with_gate_error_on("cx", [QubitId::new(c), QubitId::new(t)], channel);
    }
    // Fallback for CX on non-calibrated pairs (un-transpiled circuits):
    // the average edge error.
    let avg = cal.p_cx.iter().sum::<f64>() / cal.p_cx.len() as f64;
    model.with_default_2q(
        Kraus::depolarizing2(avg)
            .expect("average probability in range")
            .then(&thermal_pair),
    );

    for (q, &(e01, e10)) in cal.readout.iter().enumerate() {
        model.with_readout_error(
            q,
            ReadoutError::new(e01, e10).expect("calibrated probabilities in range"),
        );
    }
    model
}

/// The `ibmqx4` model with all error magnitudes scaled by `factor`
/// (used by the noise-sweep ablation, experiment `abl-noise`).
pub fn ibmqx4_scaled(factor: f64) -> NoiseModel {
    let mut model = ibmqx4_with(Ibmqx4Calibration::nominal().scaled(factor));
    model.set_name(format!("ibmqx4 x{factor:.2}"));
    model
}

/// A simple uniform model: depolarizing `p1` after 1q gates, `p2` after
/// 2q gates, symmetric readout error `p_readout` on the first
/// `num_qubits` qubits.
///
/// # Errors
///
/// Returns a [`crate::ChannelError`] when any probability is out of
/// range.
pub fn uniform(
    num_qubits: usize,
    p1: f64,
    p2: f64,
    p_readout: f64,
) -> Result<NoiseModel, crate::ChannelError> {
    let mut model = NoiseModel::with_name("uniform");
    model
        .with_default_1q(Kraus::depolarizing(p1)?)
        .with_default_2q(Kraus::depolarizing2(p2)?);
    let ro = ReadoutError::symmetric(p_readout)?;
    for q in 0..num_qubits {
        model.with_readout_error(q, ro);
    }
    Ok(model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcircuit::{Gate, Instruction};

    #[test]
    fn ideal_preset_is_ideal() {
        assert!(ideal().is_ideal());
    }

    #[test]
    fn ibmqx4_has_noise_on_every_edge() {
        let model = ibmqx4();
        assert!(!model.is_ideal());
        for (c, t) in IBMQX4_EDGES {
            let instr = Instruction::gate(Gate::Cx, [c, t]);
            let channels = model.channels_for(&instr);
            assert!(!channels.is_empty(), "edge ({c},{t}) has no noise");
            for ch in &channels {
                assert!(ch.kraus.is_cptp(1e-9));
            }
        }
    }

    #[test]
    fn ibmqx4_single_qubit_noise_is_cptp() {
        let model = ibmqx4();
        let channels = model.channels_for(&Instruction::gate(Gate::H, [3]));
        assert_eq!(channels.len(), 1);
        assert!(channels[0].kraus.is_cptp(1e-9));
    }

    #[test]
    fn ibmqx4_readout_errors_match_calibration() {
        let model = ibmqx4();
        let cal = Ibmqx4Calibration::nominal();
        for q in 0..IBMQX4_QUBITS {
            let ro = model.readout_error(QubitId::from(q));
            assert!((ro.p_meas1_given0() - cal.readout[q].0).abs() < 1e-12);
            assert!((ro.p_meas0_given1() - cal.readout[q].1).abs() < 1e-12);
        }
    }

    #[test]
    fn uncalibrated_cx_edge_falls_back_to_average() {
        let model = ibmqx4();
        // (0, 3) is not a hardware edge; default-2q channel applies.
        let channels = model.channels_for(&Instruction::gate(Gate::Cx, [0, 3]));
        assert_eq!(channels.len(), 1);
        assert!(channels[0].kraus.is_cptp(1e-9));
    }

    #[test]
    fn scaling_clamps_probabilities() {
        let cal = Ibmqx4Calibration::nominal().scaled(100.0);
        assert!(cal.p_cx.iter().all(|p| *p <= 1.0));
        assert!(cal.readout.iter().all(|(a, b)| *a <= 1.0 && *b <= 1.0));
        let zero = Ibmqx4Calibration::nominal().scaled(0.0);
        assert_eq!(zero.p_gate1, 0.0);
    }

    #[test]
    fn scaled_model_builds_and_is_noisier() {
        let model = ibmqx4_scaled(2.0);
        assert!(!model.is_ideal());
    }

    #[test]
    fn uniform_preset_validates() {
        assert!(uniform(3, 0.01, 0.05, 0.02).is_ok());
        assert!(uniform(3, 1.5, 0.05, 0.02).is_err());
    }
}
