//! Per-gate noise models.
//!
//! A [`NoiseModel`] attaches [`Kraus`] channels to gate applications and
//! [`ReadoutError`]s to measurements, mirroring how device calibration data
//! is reported: per-gate error rates, per-qubit coherence times, per-qubit
//! readout fidelities. The noisy executors in `qsim` query
//! [`NoiseModel::channels_for`] after applying each ideal gate.
//!
//! Lookup precedence, most specific first:
//! 1. channel registered for `(gate name, exact qubits)`,
//! 2. channel registered for `gate name` on any qubits,
//! 3. default channel for the gate's arity (1q / 2q).
//!
//! All channels found at the *most specific non-empty tier* are applied in
//! registration order (so depolarizing + thermal relaxation can stack).

use crate::channel::Kraus;
use crate::readout::ReadoutError;
use qcircuit::{Instruction, OpKind, QuantumCircuit, QubitId};
use std::collections::HashMap;
use std::fmt;

/// A noise channel bound to the qubits it should act on.
#[derive(Clone, Debug, PartialEq)]
pub struct AppliedChannel {
    /// The channel.
    pub kraus: Kraus,
    /// The circuit qubits the channel acts on, in the channel's local
    /// order.
    pub qubits: Vec<QubitId>,
}

/// How a registered channel selects its target qubits.
#[derive(Clone, Debug, PartialEq)]
enum ChannelScope {
    /// Acts on the instruction's qubits (arity must match).
    GateQubits(Kraus),
    /// Acts independently on each of the instruction's qubits
    /// (1-qubit channel broadcast over the operands).
    EachQubit(Kraus),
}

/// Noise description for a simulated device.
///
/// # Example
///
/// ```
/// use qnoise::{Kraus, NoiseModel, ReadoutError};
/// # fn main() -> Result<(), qnoise::ChannelError> {
/// let mut model = NoiseModel::new();
/// model
///     .with_default_1q(Kraus::depolarizing(0.001)?)
///     .with_default_2q(Kraus::depolarizing2(0.02)?)
///     .with_readout_error(0, ReadoutError::symmetric(0.03)?);
/// assert!(!model.is_ideal());
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, Default)]
pub struct NoiseModel {
    name: String,
    default_1q: Vec<Kraus>,
    default_2q: Vec<Kraus>,
    per_gate: HashMap<String, Vec<ChannelScope>>,
    per_gate_qubits: HashMap<(String, Vec<QubitId>), Vec<Kraus>>,
    readout: HashMap<QubitId, ReadoutError>,
}

impl NoiseModel {
    /// Creates an empty (ideal) noise model.
    pub fn new() -> Self {
        NoiseModel {
            name: String::from("custom"),
            ..NoiseModel::default()
        }
    }

    /// Creates an empty noise model with a display name.
    pub fn with_name(name: impl Into<String>) -> Self {
        NoiseModel {
            name: name.into(),
            ..NoiseModel::default()
        }
    }

    /// The model's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the model (used by sweep presets).
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Registers a channel applied after every single-qubit gate.
    ///
    /// # Panics
    ///
    /// Panics if the channel is not a 1-qubit channel.
    pub fn with_default_1q(&mut self, kraus: Kraus) -> &mut Self {
        assert_eq!(
            kraus.num_qubits(),
            1,
            "default 1q channel must act on one qubit"
        );
        self.default_1q.push(kraus);
        self
    }

    /// Registers a channel applied after every two-qubit gate.
    ///
    /// Accepts either a 2-qubit channel (applied to the gate's qubit
    /// pair) or a 1-qubit channel (broadcast to both operands).
    ///
    /// # Panics
    ///
    /// Panics if the channel acts on more than two qubits.
    pub fn with_default_2q(&mut self, kraus: Kraus) -> &mut Self {
        assert!(
            kraus.num_qubits() <= 2,
            "default 2q channel must act on 1 or 2 qubits"
        );
        self.default_2q.push(kraus);
        self
    }

    /// Registers a channel applied after every occurrence of the named
    /// gate. A channel whose arity matches the gate acts on the gate's
    /// qubits; a 1-qubit channel on a multi-qubit gate is broadcast to
    /// each operand.
    pub fn with_gate_error(&mut self, gate_name: impl Into<String>, kraus: Kraus) -> &mut Self {
        self.per_gate
            .entry(gate_name.into())
            .or_default()
            .push(ChannelScope::GateQubits(kraus));
        self
    }

    /// Registers a 1-qubit channel applied to *each operand* of the named
    /// gate (e.g. thermal relaxation on both qubits of a CX).
    ///
    /// # Panics
    ///
    /// Panics if the channel is not a 1-qubit channel.
    pub fn with_gate_error_each_qubit(
        &mut self,
        gate_name: impl Into<String>,
        kraus: Kraus,
    ) -> &mut Self {
        assert_eq!(
            kraus.num_qubits(),
            1,
            "per-operand channel must act on one qubit"
        );
        self.per_gate
            .entry(gate_name.into())
            .or_default()
            .push(ChannelScope::EachQubit(kraus));
        self
    }

    /// Registers a channel applied only when the named gate acts on
    /// exactly the given qubits (calibration data is edge-specific on
    /// real devices).
    pub fn with_gate_error_on(
        &mut self,
        gate_name: impl Into<String>,
        qubits: impl IntoIterator<Item = QubitId>,
        kraus: Kraus,
    ) -> &mut Self {
        self.per_gate_qubits
            .entry((gate_name.into(), qubits.into_iter().collect()))
            .or_default()
            .push(kraus);
        self
    }

    /// Sets the readout error of one qubit.
    pub fn with_readout_error(
        &mut self,
        qubit: impl Into<QubitId>,
        error: ReadoutError,
    ) -> &mut Self {
        self.readout.insert(qubit.into(), error);
        self
    }

    /// The readout error of a qubit (ideal when unset).
    pub fn readout_error(&self, qubit: QubitId) -> ReadoutError {
        self.readout.get(&qubit).copied().unwrap_or_default()
    }

    /// Returns `true` when no channels or readout errors are registered.
    pub fn is_ideal(&self) -> bool {
        self.default_1q.is_empty()
            && self.default_2q.is_empty()
            && self.per_gate.is_empty()
            && self.per_gate_qubits.is_empty()
            && self.readout.values().all(ReadoutError::is_ideal)
    }

    /// The noise channels to apply after executing `instruction`, in
    /// application order.
    ///
    /// Non-gate instructions (measure, reset, barrier, post-select)
    /// produce no channels — measurement noise is modeled by
    /// [`NoiseModel::readout_error`] instead.
    pub fn channels_for(&self, instruction: &Instruction) -> Vec<AppliedChannel> {
        let gate = match instruction.kind() {
            OpKind::Gate(g) => g,
            _ => return Vec::new(),
        };
        let qubits = instruction.qubits();

        // Tier 1: exact (gate, qubits) registration.
        if let Some(channels) = self
            .per_gate_qubits
            .get(&(gate.name().to_string(), qubits.to_vec()))
        {
            return channels.iter().map(|k| bind(k.clone(), qubits)).collect();
        }
        // Tier 2: per-gate-name registration.
        if let Some(scopes) = self.per_gate.get(gate.name()) {
            let mut out = Vec::new();
            for scope in scopes {
                match scope {
                    ChannelScope::GateQubits(k) => out.push(bind(k.clone(), qubits)),
                    ChannelScope::EachQubit(k) => {
                        for q in qubits {
                            out.push(AppliedChannel {
                                kraus: k.clone(),
                                qubits: vec![*q],
                            });
                        }
                    }
                }
            }
            return out;
        }
        // Tier 3: defaults by arity.
        let defaults = match qubits.len() {
            1 => &self.default_1q,
            2 => &self.default_2q,
            _ => return Vec::new(),
        };
        defaults.iter().map(|k| bind(k.clone(), qubits)).collect()
    }

    /// A 128-bit content fingerprint of the model: every registered
    /// channel's Kraus matrices (exact f64 bit patterns), scope, and
    /// target, plus all readout errors. Models with identical noise
    /// semantics fingerprint identically regardless of display name or
    /// registration-map iteration order; `qsim`'s program cache uses
    /// this as the noise component of its key.
    ///
    /// Two independently-seeded 64-bit mix streams, matching the width
    /// of `qcircuit`'s structural hash: sweeps hold the circuit fixed
    /// and vary only the noise, so the noise component alone must make
    /// silent key collisions (and thus silently wrong pre-bound
    /// channels) unreachable in practice, not merely improbable.
    pub fn fingerprint(&self) -> u128 {
        let mut lo = Fingerprint::new(0xA409_3822_299F_31D0); // pi, third chunk
        let mut hi = Fingerprint::new(0x082E_FA98_EC4E_6C89); // pi, fourth chunk
        for h in [&mut lo, &mut hi] {
            self.write_fingerprint(h);
        }
        (u128::from(hi.finish()) << 64) | u128::from(lo.finish())
    }

    /// Feeds the model's entire noise content into one hash stream.
    fn write_fingerprint(&self, h: &mut Fingerprint) {
        h.write(self.default_1q.len() as u64);
        for k in &self.default_1q {
            h.write_kraus(k);
        }
        h.write(self.default_2q.len() as u64);
        for k in &self.default_2q {
            h.write_kraus(k);
        }
        // HashMap iteration order is unspecified: sort rule keys first.
        let mut gate_names: Vec<&String> = self.per_gate.keys().collect();
        gate_names.sort_unstable();
        for name in gate_names {
            h.write_str(name);
            h.write(self.per_gate[name].len() as u64);
            for scope in &self.per_gate[name] {
                match scope {
                    ChannelScope::GateQubits(k) => {
                        h.write(1);
                        h.write_kraus(k);
                    }
                    ChannelScope::EachQubit(k) => {
                        h.write(2);
                        h.write_kraus(k);
                    }
                }
            }
        }
        let mut edges: Vec<&(String, Vec<QubitId>)> = self.per_gate_qubits.keys().collect();
        edges.sort_unstable_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        for key in edges {
            h.write_str(&key.0);
            h.write(key.1.len() as u64);
            for q in &key.1 {
                h.write(q.index() as u64);
            }
            h.write(self.per_gate_qubits[key].len() as u64);
            for k in &self.per_gate_qubits[key] {
                h.write_kraus(k);
            }
        }
        let mut readouts: Vec<(&QubitId, &ReadoutError)> = self.readout.iter().collect();
        readouts.sort_unstable_by_key(|(q, _)| **q);
        for (q, r) in readouts {
            h.write(q.index() as u64);
            h.write(r.p_meas1_given0().to_bits());
            h.write(r.p_meas0_given1().to_bits());
        }
    }

    /// Binds the model to a whole circuit at once: entry `i` holds the
    /// channels to apply after instruction `i`.
    ///
    /// This is the compile-time entry point used by `qsim`'s lowering
    /// pipeline — the rule lookup (gate-name maps, edge-specific rules,
    /// arity defaults) runs **once per instruction per compilation**
    /// instead of once per gate per shot.
    pub fn bind_circuit(&self, circuit: &QuantumCircuit) -> Vec<Vec<AppliedChannel>> {
        circuit
            .instructions()
            .iter()
            .map(|instr| self.channels_for(instr))
            .collect()
    }
}

/// Binds a channel to an instruction's qubits: a channel of matching
/// arity targets all of them; a 1-qubit channel on a wider gate is
/// broadcast per operand.
fn bind(kraus: Kraus, qubits: &[QubitId]) -> AppliedChannel {
    if kraus.num_qubits() == qubits.len() {
        AppliedChannel {
            kraus,
            qubits: qubits.to_vec(),
        }
    } else {
        assert_eq!(
            kraus.num_qubits(),
            1,
            "channel arity {} does not match gate arity {}",
            kraus.num_qubits(),
            qubits.len()
        );
        // Broadcast handled by caller for per-gate scopes; defaults with
        // one qubit on a 2q gate bind to the first operand's pair-wise
        // application below.
        AppliedChannel {
            kraus,
            qubits: vec![qubits[0]],
        }
    }
}

/// SplitMix64-based accumulator for [`NoiseModel::fingerprint`].
struct Fingerprint {
    state: u64,
}

impl Fingerprint {
    fn new(seed: u64) -> Self {
        Fingerprint { state: seed }
    }

    fn write(&mut self, value: u64) {
        let mut z = self
            .state
            .rotate_left(23)
            .wrapping_add(value)
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        self.state = z ^ (z >> 31);
    }

    fn write_str(&mut self, s: &str) {
        self.write(s.len() as u64);
        for b in s.as_bytes() {
            self.write(u64::from(*b));
        }
    }

    fn write_kraus(&mut self, kraus: &Kraus) {
        let ops = kraus.ops();
        self.write(ops.len() as u64);
        for op in ops {
            self.write(op.dim() as u64);
            for c in op.as_slice() {
                self.write(c.re.to_bits());
                self.write(c.im.to_bits());
            }
        }
    }

    fn finish(&self) -> u64 {
        self.state
    }
}

impl fmt::Display for NoiseModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "noise model '{}' (1q defaults: {}, 2q defaults: {}, gate rules: {}, edge rules: {}, readout: {})",
            self.name,
            self.default_1q.len(),
            self.default_2q.len(),
            self.per_gate.len(),
            self.per_gate_qubits.len(),
            self.readout.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcircuit::{Gate, Instruction};

    fn dep1() -> Kraus {
        Kraus::depolarizing(0.01).unwrap()
    }

    fn dep2() -> Kraus {
        Kraus::depolarizing2(0.05).unwrap()
    }

    #[test]
    fn empty_model_is_ideal_and_silent() {
        let model = NoiseModel::new();
        assert!(model.is_ideal());
        let instr = Instruction::gate(Gate::H, [0]);
        assert!(model.channels_for(&instr).is_empty());
        assert!(model.readout_error(QubitId::new(0)).is_ideal());
    }

    #[test]
    fn default_tiers_dispatch_by_arity() {
        let mut model = NoiseModel::new();
        model.with_default_1q(dep1()).with_default_2q(dep2());
        let one = model.channels_for(&Instruction::gate(Gate::H, [0]));
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].kraus.num_qubits(), 1);
        let two = model.channels_for(&Instruction::gate(Gate::Cx, [0, 1]));
        assert_eq!(two.len(), 1);
        assert_eq!(two[0].kraus.num_qubits(), 2);
        assert_eq!(two[0].qubits, vec![QubitId::new(0), QubitId::new(1)]);
    }

    #[test]
    fn per_gate_rule_overrides_default() {
        let mut model = NoiseModel::new();
        model
            .with_default_2q(dep2())
            .with_gate_error("cx", Kraus::depolarizing2(0.2).unwrap());
        let channels = model.channels_for(&Instruction::gate(Gate::Cx, [0, 1]));
        assert_eq!(channels.len(), 1);
        // The override (p = 0.2), not the default (p = 0.05).
        let weight = channels[0].kraus.ops()[0].get(0, 0).norm_sqr();
        assert!((weight - (1.0 - 15.0 * 0.2 / 16.0)).abs() < 1e-12);
    }

    #[test]
    fn edge_specific_rule_overrides_per_gate() {
        let mut model = NoiseModel::new();
        model.with_gate_error("cx", dep2()).with_gate_error_on(
            "cx",
            [QubitId::new(1), QubitId::new(0)],
            Kraus::depolarizing2(0.3).unwrap(),
        );
        // The registered edge (1, 0).
        let hit = model.channels_for(&Instruction::gate(Gate::Cx, [1, 0]));
        let weight = hit[0].kraus.ops()[0].get(0, 0).norm_sqr();
        assert!((weight - (1.0 - 15.0 * 0.3 / 16.0)).abs() < 1e-12);
        // A different edge falls back to the per-gate rule.
        let miss = model.channels_for(&Instruction::gate(Gate::Cx, [0, 1]));
        let weight = miss[0].kraus.ops()[0].get(0, 0).norm_sqr();
        assert!((weight - (1.0 - 15.0 * 0.05 / 16.0)).abs() < 1e-12);
    }

    #[test]
    fn each_qubit_scope_broadcasts() {
        let mut model = NoiseModel::new();
        model.with_gate_error_each_qubit("cx", dep1());
        let channels = model.channels_for(&Instruction::gate(Gate::Cx, [2, 4]));
        assert_eq!(channels.len(), 2);
        assert_eq!(channels[0].qubits, vec![QubitId::new(2)]);
        assert_eq!(channels[1].qubits, vec![QubitId::new(4)]);
    }

    #[test]
    fn channels_stack_in_registration_order() {
        let mut model = NoiseModel::new();
        model
            .with_gate_error("h", dep1())
            .with_gate_error_each_qubit("h", Kraus::amplitude_damping(0.1).unwrap());
        let channels = model.channels_for(&Instruction::gate(Gate::H, [0]));
        assert_eq!(channels.len(), 2);
    }

    #[test]
    fn non_gate_instructions_get_no_channels() {
        let mut model = NoiseModel::new();
        model.with_default_1q(dep1());
        assert!(model.channels_for(&Instruction::measure(0, 0)).is_empty());
        assert!(model.channels_for(&Instruction::barrier([0, 1])).is_empty());
        assert!(model
            .channels_for(&Instruction::post_select(0, false))
            .is_empty());
    }

    #[test]
    fn readout_errors_are_per_qubit() {
        let mut model = NoiseModel::new();
        model.with_readout_error(1, ReadoutError::symmetric(0.04).unwrap());
        assert!(model.readout_error(QubitId::new(0)).is_ideal());
        assert_eq!(model.readout_error(QubitId::new(1)).p_meas1_given0(), 0.04);
        assert!(!model.is_ideal());
    }

    #[test]
    fn three_qubit_gates_get_no_default_noise() {
        let mut model = NoiseModel::new();
        model.with_default_1q(dep1()).with_default_2q(dep2());
        let channels = model.channels_for(&Instruction::gate(Gate::Ccx, [0, 1, 2]));
        assert!(channels.is_empty());
    }

    #[test]
    fn bind_circuit_matches_per_instruction_lookup() {
        let mut model = NoiseModel::new();
        model.with_default_1q(dep1()).with_default_2q(dep2());
        let mut c = QuantumCircuit::new(2, 2);
        c.h(0).unwrap().cx(0, 1).unwrap();
        c.measure(0, 0).unwrap().measure(1, 1).unwrap();
        let bound = model.bind_circuit(&c);
        assert_eq!(bound.len(), c.len());
        for (instr, channels) in c.instructions().iter().zip(&bound) {
            assert_eq!(channels, &model.channels_for(instr));
        }
        // Gates get channels, measurements do not.
        assert_eq!(bound[0].len(), 1);
        assert_eq!(bound[1].len(), 1);
        assert!(bound[2].is_empty() && bound[3].is_empty());
    }

    #[test]
    fn fingerprint_is_content_addressed_and_name_blind() {
        let mut a = NoiseModel::with_name("alpha");
        a.with_default_1q(dep1())
            .with_gate_error("cx", dep2())
            .with_readout_error(1, ReadoutError::symmetric(0.04).unwrap());
        let mut b = NoiseModel::with_name("beta");
        b.with_default_1q(dep1())
            .with_gate_error("cx", dep2())
            .with_readout_error(1, ReadoutError::symmetric(0.04).unwrap());
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.fingerprint(), a.fingerprint());
    }

    #[test]
    fn fingerprint_separates_different_noise() {
        let ideal = NoiseModel::new();
        let mut weak = NoiseModel::new();
        weak.with_default_1q(dep1());
        let mut strong = NoiseModel::new();
        strong.with_default_1q(Kraus::depolarizing(0.011).unwrap());
        let mut scoped = NoiseModel::new();
        scoped.with_gate_error_each_qubit("h", dep1());
        let mut gate = NoiseModel::new();
        gate.with_gate_error("h", dep1());
        let mut readout = NoiseModel::new();
        readout.with_readout_error(0, ReadoutError::new(0.1, 0.0).unwrap());
        let mut readout_flipped = NoiseModel::new();
        readout_flipped.with_readout_error(0, ReadoutError::new(0.0, 0.1).unwrap());
        let fps = [
            ideal.fingerprint(),
            weak.fingerprint(),
            strong.fingerprint(),
            scoped.fingerprint(),
            gate.fingerprint(),
            readout.fingerprint(),
            readout_flipped.fingerprint(),
        ];
        for (i, a) in fps.iter().enumerate() {
            for b in &fps[i + 1..] {
                assert_ne!(a, b, "distinct noise models collided");
            }
        }
    }

    #[test]
    fn fingerprint_ignores_map_insertion_order() {
        let mut ab = NoiseModel::new();
        ab.with_gate_error("h", dep1()).with_gate_error("x", dep1());
        ab.with_readout_error(0, ReadoutError::symmetric(0.01).unwrap())
            .with_readout_error(3, ReadoutError::symmetric(0.02).unwrap());
        let mut ba = NoiseModel::new();
        ba.with_gate_error("x", dep1()).with_gate_error("h", dep1());
        ba.with_readout_error(3, ReadoutError::symmetric(0.02).unwrap())
            .with_readout_error(0, ReadoutError::symmetric(0.01).unwrap());
        assert_eq!(ab.fingerprint(), ba.fingerprint());
    }

    #[test]
    fn display_summarizes_contents() {
        let mut model = NoiseModel::with_name("test-device");
        model.with_default_1q(dep1());
        let s = model.to_string();
        assert!(s.contains("test-device"));
        assert!(s.contains("1q defaults: 1"));
    }
}
