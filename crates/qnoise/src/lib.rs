//! Noise models for NISQ-device simulation.
//!
//! This crate is substrate S5 of the dynamic-assertion reproduction (see
//! the workspace `DESIGN.md`): it stands in for the IBM Q `ibmqx4`
//! hardware the paper evaluated on.
//!
//! * [`Kraus`] — channels in Kraus form: depolarizing, bit/phase flip,
//!   amplitude/phase damping, thermal relaxation, with sequential
//!   ([`Kraus::then`]) and tensor ([`Kraus::kron`]) composition,
//! * [`ReadoutError`] — per-qubit measurement assignment errors,
//! * [`NoiseModel`] — binds channels to gates (per-edge, per-gate, or by
//!   arity) and readout errors to qubits,
//! * [`presets`] — the calibrated `ibmqx4`-like model plus ideal/uniform
//!   models and a scaled variant for noise sweeps.
//!
//! The noisy executors in `qsim` consume these models; this crate holds
//! only data and math, no simulation.
//!
//! # Example
//!
//! ```
//! use qnoise::presets;
//! use qcircuit::{Gate, Instruction};
//!
//! let device = presets::ibmqx4();
//! let cx = Instruction::gate(Gate::Cx, [1, 0]);
//! let channels = device.channels_for(&cx);
//! assert!(!channels.is_empty());
//! assert!(channels.iter().all(|c| c.kraus.is_cptp(1e-9)));
//! ```

pub mod channel;
pub mod model;
pub mod presets;
pub mod readout;

pub use channel::{ChannelError, Kraus, PauliTerm, RotationAxis};
pub use model::{AppliedChannel, NoiseModel};
pub use readout::ReadoutError;
