//! Wire-dependency DAG over a circuit's instructions.
//!
//! Instructions depend on the previous instruction touching any shared
//! wire (qubit, classical bit, or condition bit). The DAG exposes
//! predecessor/successor queries, per-wire chains (used by the peephole
//! optimizer), and greedy layering (used by the ASCII renderer and for
//! depth-style scheduling).

use crate::circuit::QuantumCircuit;
use crate::instruction::OpKind;
use crate::register::QubitId;

/// Dependency graph of a circuit; node `i` is instruction `i`.
#[derive(Clone, Debug)]
pub struct CircuitDag {
    preds: Vec<Vec<usize>>,
    succs: Vec<Vec<usize>>,
    qubit_chains: Vec<Vec<usize>>,
    layers: Vec<Vec<usize>>,
}

impl CircuitDag {
    /// Builds the DAG for `circuit`.
    pub fn build(circuit: &QuantumCircuit) -> Self {
        let n = circuit.len();
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut qubit_chains: Vec<Vec<usize>> = vec![Vec::new(); circuit.num_qubits()];

        let mut last_on_qubit: Vec<Option<usize>> = vec![None; circuit.num_qubits()];
        let mut last_on_clbit: Vec<Option<usize>> = vec![None; circuit.num_clbits()];

        for (i, instr) in circuit.instructions().iter().enumerate() {
            let add_edge =
                |from: Option<usize>, preds: &mut Vec<Vec<usize>>, succs: &mut Vec<Vec<usize>>| {
                    if let Some(p) = from {
                        if !preds[i].contains(&p) {
                            preds[i].push(p);
                            succs[p].push(i);
                        }
                    }
                };
            for q in instr.qubits() {
                add_edge(last_on_qubit[q.index()], &mut preds, &mut succs);
            }
            for c in instr.clbits() {
                add_edge(last_on_clbit[c.index()], &mut preds, &mut succs);
            }
            if let Some(cond) = instr.condition() {
                add_edge(last_on_clbit[cond.clbit.index()], &mut preds, &mut succs);
            }
            for q in instr.qubits() {
                last_on_qubit[q.index()] = Some(i);
                qubit_chains[q.index()].push(i);
            }
            for c in instr.clbits() {
                last_on_clbit[c.index()] = Some(i);
            }
            if let Some(cond) = instr.condition() {
                last_on_clbit[cond.clbit.index()] = Some(i);
            }
        }

        // Greedy layering: a node's layer is one past its deepest
        // predecessor. Instructions were appended in a topological order,
        // so a single forward pass suffices.
        let mut level = vec![0usize; n];
        let mut max_level = 0usize;
        for i in 0..n {
            let l = preds[i].iter().map(|p| level[*p] + 1).max().unwrap_or(0);
            level[i] = l;
            max_level = max_level.max(l);
        }
        let mut layers: Vec<Vec<usize>> = vec![Vec::new(); if n == 0 { 0 } else { max_level + 1 }];
        for i in 0..n {
            layers[level[i]].push(i);
        }

        CircuitDag {
            preds,
            succs,
            qubit_chains,
            layers,
        }
    }

    /// Number of nodes (instructions).
    pub fn len(&self) -> usize {
        self.preds.len()
    }

    /// Returns `true` when the circuit had no instructions.
    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }

    /// Direct predecessors of node `i`.
    pub fn predecessors(&self, i: usize) -> &[usize] {
        &self.preds[i]
    }

    /// Direct successors of node `i`.
    pub fn successors(&self, i: usize) -> &[usize] {
        &self.succs[i]
    }

    /// Instruction indices touching `qubit`, in program order.
    pub fn qubit_chain(&self, qubit: QubitId) -> &[usize] {
        &self.qubit_chains[qubit.index()]
    }

    /// Greedy layering of the instructions: `layers()[k]` lists the
    /// instructions whose deepest dependency chain has length `k`.
    pub fn layers(&self) -> &[Vec<usize>] {
        &self.layers
    }

    /// A topological ordering of the nodes (program order, which is
    /// topological by construction).
    pub fn topological_order(&self) -> impl Iterator<Item = usize> {
        0..self.preds.len()
    }

    /// Maximal runs (length ≥ 2) of instructions that are adjacent on one
    /// qubit's wire and are all *unconditioned single-qubit gates* —
    /// exactly the candidates for 2×2 gate fusion in the compiled
    /// execution layer.
    ///
    /// Adjacency is wire adjacency, not program adjacency: instructions on
    /// other qubits may interleave in program order, but since every run
    /// member acts only on this qubit it commutes past them, so fusing the
    /// run into one matrix preserves semantics. Barriers, measurements,
    /// resets, multi-qubit gates, and conditioned gates all appear in the
    /// qubit's chain and therefore break runs.
    pub fn single_qubit_runs(&self, circuit: &QuantumCircuit) -> Vec<Vec<usize>> {
        let instrs = circuit.instructions();
        let mut runs = Vec::new();
        for chain in &self.qubit_chains {
            let mut current: Vec<usize> = Vec::new();
            for &i in chain {
                let instr = &instrs[i];
                let fusable = instr.condition().is_none()
                    && matches!(instr.kind(), OpKind::Gate(g) if g.num_qubits() == 1);
                if fusable {
                    current.push(i);
                } else {
                    if current.len() >= 2 {
                        runs.push(std::mem::take(&mut current));
                    }
                    current.clear();
                }
            }
            if current.len() >= 2 {
                runs.push(current);
            }
        }
        runs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::QuantumCircuit;

    fn sample() -> QuantumCircuit {
        let mut c = QuantumCircuit::new(3, 1);
        c.h(0).unwrap(); // 0
        c.cx(0, 1).unwrap(); // 1 (depends on 0)
        c.x(2).unwrap(); // 2 (independent)
        c.cx(1, 2).unwrap(); // 3 (depends on 1 and 2)
        c.measure(2, 0).unwrap(); // 4 (depends on 3)
        c
    }

    #[test]
    fn edges_follow_wire_dependencies() {
        let dag = CircuitDag::build(&sample());
        assert!(dag.predecessors(0).is_empty());
        assert_eq!(dag.predecessors(1), &[0]);
        assert!(dag.predecessors(2).is_empty());
        let mut p3 = dag.predecessors(3).to_vec();
        p3.sort_unstable();
        assert_eq!(p3, vec![1, 2]);
        assert_eq!(dag.predecessors(4), &[3]);
        assert_eq!(dag.successors(0), &[1]);
    }

    #[test]
    fn layers_group_independent_instructions() {
        let dag = CircuitDag::build(&sample());
        let layers = dag.layers();
        assert_eq!(layers[0], vec![0, 2]); // h(0) and x(2) are parallel
        assert_eq!(layers[1], vec![1]);
        assert_eq!(layers[2], vec![3]);
        assert_eq!(layers[3], vec![4]);
    }

    #[test]
    fn qubit_chains_list_program_order() {
        let dag = CircuitDag::build(&sample());
        assert_eq!(dag.qubit_chain(QubitId::new(0)), &[0, 1]);
        assert_eq!(dag.qubit_chain(QubitId::new(1)), &[1, 3]);
        assert_eq!(dag.qubit_chain(QubitId::new(2)), &[2, 3, 4]);
    }

    #[test]
    fn classical_condition_creates_dependency() {
        let mut c = QuantumCircuit::new(2, 1);
        c.measure(0, 0).unwrap(); // 0
        c.gate_if(crate::Gate::X, [1], 0, true).unwrap(); // 1 depends on 0 via c0
        let dag = CircuitDag::build(&c);
        assert_eq!(dag.predecessors(1), &[0]);
    }

    #[test]
    fn multi_edge_collapses_to_single_dependency() {
        let mut c = QuantumCircuit::new(2, 0);
        c.cx(0, 1).unwrap(); // 0
        c.cx(0, 1).unwrap(); // 1 shares both wires with 0
        let dag = CircuitDag::build(&c);
        assert_eq!(dag.predecessors(1), &[0]); // one edge, not two
    }

    #[test]
    fn empty_circuit_yields_empty_dag() {
        let dag = CircuitDag::build(&QuantumCircuit::new(2, 0));
        assert!(dag.is_empty());
        assert!(dag.layers().is_empty());
    }

    #[test]
    fn single_qubit_runs_found_per_wire() {
        let mut c = QuantumCircuit::new(2, 1);
        c.h(0).unwrap(); // 0 ┐ run on q0
        c.t(0).unwrap(); // 1 ┘
        c.cx(0, 1).unwrap(); // 2 breaks both wires
        c.s(0).unwrap(); // 3 singleton on q0 — not a run
        c.x(1).unwrap(); // 4 ┐ run on q1
        c.z(1).unwrap(); // 5 │
        c.h(1).unwrap(); // 6 ┘
        let dag = CircuitDag::build(&c);
        let runs = dag.single_qubit_runs(&c);
        assert_eq!(runs, vec![vec![0, 1], vec![4, 5, 6]]);
    }

    #[test]
    fn conditions_measures_and_barriers_break_runs() {
        let mut c = QuantumCircuit::new(1, 1);
        c.h(0).unwrap(); // 0
        c.barrier([0usize]).unwrap(); // 1 breaks
        c.t(0).unwrap(); // 2
        c.gate_if(crate::Gate::X, [0usize], 0, true).unwrap(); // 3 breaks
        c.s(0).unwrap(); // 4
        c.measure(0, 0).unwrap(); // 5 breaks
        c.z(0).unwrap(); // 6
        let dag = CircuitDag::build(&c);
        assert!(dag.single_qubit_runs(&c).is_empty());

        let mut c2 = QuantumCircuit::new(1, 0);
        c2.h(0).unwrap();
        c2.t(0).unwrap();
        c2.s(0).unwrap();
        let dag2 = CircuitDag::build(&c2);
        assert_eq!(dag2.single_qubit_runs(&c2), vec![vec![0, 1, 2]]);
    }

    #[test]
    fn interleaved_other_wire_instructions_do_not_break_runs() {
        let mut c = QuantumCircuit::new(2, 0);
        c.h(0).unwrap(); // 0 ┐ run on q0 despite the x(1) in between
        c.x(1).unwrap(); // 1
        c.t(0).unwrap(); // 2 ┘
        let dag = CircuitDag::build(&c);
        assert_eq!(dag.single_qubit_runs(&c), vec![vec![0, 2]]);
    }

    #[test]
    fn topological_order_respects_dependencies() {
        let dag = CircuitDag::build(&sample());
        let pos: Vec<usize> = dag.topological_order().collect();
        for i in 0..dag.len() {
            for &p in dag.predecessors(i) {
                assert!(pos.iter().position(|&x| x == p) < pos.iter().position(|&x| x == i));
            }
        }
    }
}
