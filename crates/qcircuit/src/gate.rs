//! The gate set.
//!
//! [`Gate`] covers the standard single-qubit gates (Pauli, Hadamard,
//! phase-family, rotations, the IBM `U3`), the two-qubit controlled gates
//! and SWAP, and the three-qubit Toffoli/Fredkin gates — everything the
//! paper's circuits and the transpiler's `{U3, CX}` basis need.
//!
//! # Matrix convention
//!
//! [`Gate::matrix`] returns the unitary in the *local* basis of the
//! instruction's qubit list: **qubit `qubits[j]` corresponds to bit `j`
//! (the 2^j place) of the local basis index**. For `Gate::Cx` applied to
//! `[control, target]`, the control is bit 0 and the target is bit 1, so
//! `|control=1, target=0⟩` is local index 1 and maps to local index 3.
//! Simulators and verifiers in this workspace all share this convention.

use qmath::{CMatrix, Complex, Mat2, FRAC_1_SQRT_2};
use std::fmt;

/// A quantum gate (unitary operation) with bound parameters.
///
/// # Example
///
/// ```
/// use qcircuit::Gate;
/// assert_eq!(Gate::H.num_qubits(), 1);
/// assert_eq!(Gate::Ccx.num_qubits(), 3);
/// assert_eq!(Gate::S.inverse(), Gate::Sdg);
/// assert!(Gate::Rx(0.3).matrix().is_unitary(1e-12));
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Gate {
    /// Identity.
    I,
    /// Pauli-X (NOT).
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
    /// Hadamard.
    H,
    /// Phase gate √Z = diag(1, i).
    S,
    /// Inverse phase gate diag(1, −i).
    Sdg,
    /// T gate (π/8): diag(1, e^{iπ/4}).
    T,
    /// Inverse T gate.
    Tdg,
    /// √X gate.
    Sx,
    /// Inverse √X gate.
    Sxdg,
    /// Rotation about X by the given angle.
    Rx(f64),
    /// Rotation about Y by the given angle.
    Ry(f64),
    /// Rotation about Z by the given angle.
    Rz(f64),
    /// Phase rotation diag(1, e^{iλ}) (OpenQASM `u1`/`p`).
    P(f64),
    /// General single-qubit unitary `U3(θ, φ, λ)` (IBM convention).
    U3(f64, f64, f64),
    /// Controlled-X (CNOT); qubit order `[control, target]`.
    Cx,
    /// Controlled-Y; qubit order `[control, target]`.
    Cy,
    /// Controlled-Z (symmetric in its qubits).
    Cz,
    /// Controlled-Hadamard; qubit order `[control, target]`.
    Ch,
    /// Controlled phase diag(1,1,1,e^{iλ}) (symmetric).
    Cp(f64),
    /// SWAP (symmetric).
    Swap,
    /// Toffoli (CCX); qubit order `[control, control, target]`.
    Ccx,
    /// Fredkin (controlled-SWAP); qubit order `[control, a, b]`.
    Cswap,
}

impl Gate {
    /// Number of qubits the gate acts on.
    pub const fn num_qubits(&self) -> usize {
        match self {
            Gate::I
            | Gate::X
            | Gate::Y
            | Gate::Z
            | Gate::H
            | Gate::S
            | Gate::Sdg
            | Gate::T
            | Gate::Tdg
            | Gate::Sx
            | Gate::Sxdg
            | Gate::Rx(_)
            | Gate::Ry(_)
            | Gate::Rz(_)
            | Gate::P(_)
            | Gate::U3(..) => 1,
            Gate::Cx | Gate::Cy | Gate::Cz | Gate::Ch | Gate::Cp(_) | Gate::Swap => 2,
            Gate::Ccx | Gate::Cswap => 3,
        }
    }

    /// The OpenQASM-style lowercase name of the gate.
    pub const fn name(&self) -> &'static str {
        match self {
            Gate::I => "id",
            Gate::X => "x",
            Gate::Y => "y",
            Gate::Z => "z",
            Gate::H => "h",
            Gate::S => "s",
            Gate::Sdg => "sdg",
            Gate::T => "t",
            Gate::Tdg => "tdg",
            Gate::Sx => "sx",
            Gate::Sxdg => "sxdg",
            Gate::Rx(_) => "rx",
            Gate::Ry(_) => "ry",
            Gate::Rz(_) => "rz",
            Gate::P(_) => "p",
            Gate::U3(..) => "u3",
            Gate::Cx => "cx",
            Gate::Cy => "cy",
            Gate::Cz => "cz",
            Gate::Ch => "ch",
            Gate::Cp(_) => "cp",
            Gate::Swap => "swap",
            Gate::Ccx => "ccx",
            Gate::Cswap => "cswap",
        }
    }

    /// The gate's real-valued parameters, in declaration order.
    pub fn params(&self) -> Vec<f64> {
        match self {
            Gate::Rx(t) | Gate::Ry(t) | Gate::Rz(t) | Gate::P(t) | Gate::Cp(t) => vec![*t],
            Gate::U3(t, p, l) => vec![*t, *p, *l],
            _ => Vec::new(),
        }
    }

    /// The inverse gate `G⁻¹`, such that `G·G⁻¹ = I`.
    pub fn inverse(&self) -> Gate {
        match self {
            Gate::S => Gate::Sdg,
            Gate::Sdg => Gate::S,
            Gate::T => Gate::Tdg,
            Gate::Tdg => Gate::T,
            Gate::Sx => Gate::Sxdg,
            Gate::Sxdg => Gate::Sx,
            Gate::Rx(t) => Gate::Rx(-t),
            Gate::Ry(t) => Gate::Ry(-t),
            Gate::Rz(t) => Gate::Rz(-t),
            Gate::P(t) => Gate::P(-t),
            Gate::Cp(t) => Gate::Cp(-t),
            Gate::U3(t, p, l) => Gate::U3(-t, -l, -p),
            // All remaining gates are involutions.
            g => *g,
        }
    }

    /// Returns `true` for gates that are their own inverse.
    pub fn is_self_inverse(&self) -> bool {
        self.inverse() == *self
    }

    /// The 2×2 matrix of a single-qubit gate, or `None` for multi-qubit
    /// gates.
    pub fn mat2(&self) -> Option<Mat2> {
        let c = Complex::new;
        let m = match self {
            Gate::I => Mat2::identity(),
            Gate::X => Mat2::from_real(0.0, 1.0, 1.0, 0.0),
            Gate::Y => Mat2::new(Complex::ZERO, -Complex::I, Complex::I, Complex::ZERO),
            Gate::Z => Mat2::from_real(1.0, 0.0, 0.0, -1.0),
            Gate::H => Mat2::from_real(1.0, 1.0, 1.0, -1.0).scale(FRAC_1_SQRT_2),
            Gate::S => Mat2::new(Complex::ONE, Complex::ZERO, Complex::ZERO, Complex::I),
            Gate::Sdg => Mat2::new(Complex::ONE, Complex::ZERO, Complex::ZERO, -Complex::I),
            Gate::T => Mat2::new(
                Complex::ONE,
                Complex::ZERO,
                Complex::ZERO,
                Complex::cis(std::f64::consts::FRAC_PI_4),
            ),
            Gate::Tdg => Mat2::new(
                Complex::ONE,
                Complex::ZERO,
                Complex::ZERO,
                Complex::cis(-std::f64::consts::FRAC_PI_4),
            ),
            Gate::Sx => Mat2::new(c(0.5, 0.5), c(0.5, -0.5), c(0.5, -0.5), c(0.5, 0.5)),
            Gate::Sxdg => Mat2::new(c(0.5, -0.5), c(0.5, 0.5), c(0.5, 0.5), c(0.5, -0.5)),
            Gate::Rx(t) => {
                let (s, co) = ((t / 2.0).sin(), (t / 2.0).cos());
                Mat2::new(c(co, 0.0), c(0.0, -s), c(0.0, -s), c(co, 0.0))
            }
            Gate::Ry(t) => {
                let (s, co) = ((t / 2.0).sin(), (t / 2.0).cos());
                Mat2::from_real(co, -s, s, co)
            }
            Gate::Rz(t) => Mat2::new(
                Complex::cis(-t / 2.0),
                Complex::ZERO,
                Complex::ZERO,
                Complex::cis(t / 2.0),
            ),
            Gate::P(l) => Mat2::new(Complex::ONE, Complex::ZERO, Complex::ZERO, Complex::cis(*l)),
            Gate::U3(t, p, l) => {
                let (s, co) = ((t / 2.0).sin(), (t / 2.0).cos());
                Mat2::new(
                    c(co, 0.0),
                    -Complex::cis(*l).scale(s),
                    Complex::cis(*p).scale(s),
                    Complex::cis(p + l).scale(co),
                )
            }
            _ => return None,
        };
        Some(m)
    }

    /// The full unitary matrix of the gate in the local-qubit convention
    /// described in the [module docs](self) (qubit `j` of the instruction's
    /// qubit list is local bit `j`).
    pub fn matrix(&self) -> CMatrix {
        if let Some(m) = self.mat2() {
            return m.to_cmatrix();
        }
        match self {
            Gate::Cx => controlled_1q(&Gate::X.mat2().expect("X is 1q")),
            Gate::Cy => controlled_1q(&Gate::Y.mat2().expect("Y is 1q")),
            Gate::Cz => controlled_1q(&Gate::Z.mat2().expect("Z is 1q")),
            Gate::Ch => controlled_1q(&Gate::H.mat2().expect("H is 1q")),
            Gate::Cp(l) => controlled_1q(&Gate::P(*l).mat2().expect("P is 1q")),
            Gate::Swap => {
                let mut m = CMatrix::zeros(4);
                m.set(0, 0, Complex::ONE);
                m.set(3, 3, Complex::ONE);
                // |01⟩ (local index 1: bit0=1) ↔ |10⟩ (local index 2: bit1=1)
                m.set(1, 2, Complex::ONE);
                m.set(2, 1, Complex::ONE);
                m
            }
            Gate::Ccx => {
                // Controls are bits 0 and 1, target is bit 2: indices 3 and
                // 7 (both controls set) exchange the target bit.
                let mut m = CMatrix::identity(8);
                m.set(3, 3, Complex::ZERO);
                m.set(7, 7, Complex::ZERO);
                m.set(3, 7, Complex::ONE);
                m.set(7, 3, Complex::ONE);
                m
            }
            Gate::Cswap => {
                // Control is bit 0; when set, bits 1 and 2 swap: indices
                // 3 (c=1, a=1, b=0) and 5 (c=1, a=0, b=1) exchange.
                let mut m = CMatrix::identity(8);
                m.set(3, 3, Complex::ZERO);
                m.set(5, 5, Complex::ZERO);
                m.set(3, 5, Complex::ONE);
                m.set(5, 3, Complex::ONE);
                m
            }
            _ => unreachable!("1q gates handled via mat2"),
        }
    }
}

/// Builds the 4×4 matrix of a controlled single-qubit gate with the control
/// on local bit 0 and the target on local bit 1.
fn controlled_1q(u: &Mat2) -> CMatrix {
    let mut m = CMatrix::zeros(4);
    // Control clear (local indices 0 and 2): identity on the target bit.
    m.set(0, 0, Complex::ONE);
    m.set(2, 2, Complex::ONE);
    // Control set (local indices 1 and 3): apply `u` on the target bit.
    // Local index 1 = |target=0, control=1⟩, 3 = |target=1, control=1⟩.
    m.set(1, 1, u.a);
    m.set(1, 3, u.b);
    m.set(3, 1, u.c);
    m.set(3, 3, u.d);
    m
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let params = self.params();
        if params.is_empty() {
            write!(f, "{}", self.name())
        } else {
            let rendered: Vec<String> = params.iter().map(|p| format!("{p:.6}")).collect();
            write!(f, "{}({})", self.name(), rendered.join(", "))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    const ALL_GATES: &[Gate] = &[
        Gate::I,
        Gate::X,
        Gate::Y,
        Gate::Z,
        Gate::H,
        Gate::S,
        Gate::Sdg,
        Gate::T,
        Gate::Tdg,
        Gate::Sx,
        Gate::Sxdg,
        Gate::Rx(0.3),
        Gate::Ry(-1.2),
        Gate::Rz(2.2),
        Gate::P(0.7),
        Gate::U3(0.4, 1.1, -0.6),
        Gate::Cx,
        Gate::Cy,
        Gate::Cz,
        Gate::Ch,
        Gate::Cp(0.9),
        Gate::Swap,
        Gate::Ccx,
        Gate::Cswap,
    ];

    #[test]
    fn every_gate_matrix_is_unitary() {
        for g in ALL_GATES {
            assert!(g.matrix().is_unitary(1e-12), "{g:?} is not unitary");
        }
    }

    #[test]
    fn every_gate_times_its_inverse_is_identity() {
        for g in ALL_GATES {
            let prod = g.matrix().mul(&g.inverse().matrix()).unwrap();
            let dim = prod.dim();
            assert!(
                prod.approx_eq(&CMatrix::identity(dim), 1e-12),
                "{g:?}·{:?} != I",
                g.inverse()
            );
        }
    }

    #[test]
    fn matrix_dimension_matches_arity() {
        for g in ALL_GATES {
            assert_eq!(g.matrix().dim(), 1 << g.num_qubits(), "{g:?}");
        }
    }

    #[test]
    fn cx_truth_table_in_local_convention() {
        // Control = bit 0, target = bit 1.
        let m = Gate::Cx.matrix();
        let basis = |i: usize| {
            let mut v = vec![Complex::ZERO; 4];
            v[i] = Complex::ONE;
            v
        };
        // |c=0,t=0⟩ (0) → itself
        assert_eq!(m.matvec(&basis(0)).unwrap()[0], Complex::ONE);
        // |c=1,t=0⟩ (1) → |c=1,t=1⟩ (3)
        assert_eq!(m.matvec(&basis(1)).unwrap()[3], Complex::ONE);
        // |c=0,t=1⟩ (2) → itself
        assert_eq!(m.matvec(&basis(2)).unwrap()[2], Complex::ONE);
        // |c=1,t=1⟩ (3) → |c=1,t=0⟩ (1)
        assert_eq!(m.matvec(&basis(3)).unwrap()[1], Complex::ONE);
    }

    #[test]
    fn swap_exchanges_local_bits() {
        let m = Gate::Swap.matrix();
        let mut v = vec![Complex::ZERO; 4];
        v[1] = Complex::ONE; // |bit0=1, bit1=0⟩
        let out = m.matvec(&v).unwrap();
        assert_eq!(out[2], Complex::ONE); // |bit0=0, bit1=1⟩
    }

    #[test]
    fn toffoli_flips_only_when_both_controls_set() {
        let m = Gate::Ccx.matrix();
        for i in 0..8usize {
            let mut v = vec![Complex::ZERO; 8];
            v[i] = Complex::ONE;
            let out = m.matvec(&v).unwrap();
            let expected = if i & 0b011 == 0b011 { i ^ 0b100 } else { i };
            assert_eq!(out[expected], Complex::ONE, "input index {i}");
        }
    }

    #[test]
    fn fredkin_swaps_targets_only_when_control_set() {
        let m = Gate::Cswap.matrix();
        for i in 0..8usize {
            let mut v = vec![Complex::ZERO; 8];
            v[i] = Complex::ONE;
            let out = m.matvec(&v).unwrap();
            let expected = if i & 1 == 1 {
                // swap bits 1 and 2
                let a = (i >> 1) & 1;
                let b = (i >> 2) & 1;
                (i & 1) | (b << 1) | (a << 2)
            } else {
                i
            };
            assert_eq!(out[expected], Complex::ONE, "input index {i}");
        }
    }

    #[test]
    fn hadamard_squares_to_identity() {
        let h = Gate::H.matrix();
        assert!(h.mul(&h).unwrap().approx_eq(&CMatrix::identity(2), 1e-12));
    }

    #[test]
    fn s_is_sqrt_z_and_t_is_sqrt_s() {
        let s2 = Gate::S.matrix().mul(&Gate::S.matrix()).unwrap();
        assert!(s2.approx_eq(&Gate::Z.matrix(), 1e-12));
        let t2 = Gate::T.matrix().mul(&Gate::T.matrix()).unwrap();
        assert!(t2.approx_eq(&Gate::S.matrix(), 1e-12));
    }

    #[test]
    fn sx_squares_to_x() {
        let sx2 = Gate::Sx.matrix().mul(&Gate::Sx.matrix()).unwrap();
        assert!(sx2.approx_eq(&Gate::X.matrix(), 1e-12));
    }

    #[test]
    fn rotation_gates_match_pauli_at_pi_up_to_phase() {
        // Rx(π) = -iX
        let rx = Gate::Rx(PI).matrix();
        let x = Gate::X.matrix().scale_c(Complex::new(0.0, -1.0));
        assert!(rx.approx_eq(&x, 1e-12));
        // Rz(π) = -iZ
        let rz = Gate::Rz(PI).matrix();
        let z = Gate::Z.matrix().scale_c(Complex::new(0.0, -1.0));
        assert!(rz.approx_eq(&z, 1e-12));
    }

    #[test]
    fn u3_special_cases() {
        // U3(π/2, 0, π) = H
        let u = Gate::U3(FRAC_PI_2, 0.0, PI).matrix();
        assert!(u.approx_eq(&Gate::H.matrix(), 1e-12));
        // U3(0, 0, λ) = P(λ)
        let u = Gate::U3(0.0, 0.0, 0.8).matrix();
        assert!(u.approx_eq(&Gate::P(0.8).matrix(), 1e-12));
        // U3(π, 0, π) = X
        let u = Gate::U3(PI, 0.0, PI).matrix();
        assert!(u.approx_eq(&Gate::X.matrix(), 1e-12));
    }

    #[test]
    fn p_and_rz_differ_by_global_phase_only() {
        let p = Gate::P(0.6).matrix();
        let rz = Gate::Rz(0.6).matrix().scale_c(Complex::cis(0.3));
        assert!(p.approx_eq(&rz, 1e-12));
    }

    #[test]
    fn cz_is_symmetric_and_diagonal() {
        let m = Gate::Cz.matrix();
        assert!(m.approx_eq(&m.transpose(), 1e-15));
        assert_eq!(m.get(3, 3), -Complex::ONE);
        assert_eq!(m.get(1, 1), Complex::ONE);
        assert_eq!(m.get(2, 2), Complex::ONE);
    }

    #[test]
    fn cp_at_pi_equals_cz() {
        assert!(Gate::Cp(PI).matrix().approx_eq(&Gate::Cz.matrix(), 1e-12));
    }

    #[test]
    fn inverse_round_trips() {
        for g in ALL_GATES {
            assert_eq!(g.inverse().inverse(), *g, "{g:?}");
        }
    }

    #[test]
    fn u3_inverse_swaps_phi_lambda() {
        assert_eq!(
            Gate::U3(0.4, 1.1, -0.6).inverse(),
            Gate::U3(-0.4, 0.6, -1.1)
        );
    }

    #[test]
    fn names_are_qasm_style() {
        assert_eq!(Gate::H.name(), "h");
        assert_eq!(Gate::Sdg.name(), "sdg");
        assert_eq!(Gate::U3(0.0, 0.0, 0.0).name(), "u3");
        assert_eq!(Gate::Ccx.name(), "ccx");
    }

    #[test]
    fn params_extraction() {
        assert!(Gate::H.params().is_empty());
        assert_eq!(Gate::Rx(0.5).params(), vec![0.5]);
        assert_eq!(Gate::U3(1.0, 2.0, 3.0).params(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn display_includes_params() {
        assert_eq!(Gate::H.to_string(), "h");
        assert_eq!(Gate::Rx(0.5).to_string(), "rx(0.500000)");
    }

    #[test]
    fn self_inverse_classification() {
        assert!(Gate::X.is_self_inverse());
        assert!(Gate::Cx.is_self_inverse());
        assert!(!Gate::S.is_self_inverse());
        assert!(!Gate::Rx(0.5).is_self_inverse());
        assert!(Gate::Rx(0.0).is_self_inverse());
    }
}
