//! The gate set.
//!
//! [`Gate`] covers the standard single-qubit gates (Pauli, Hadamard,
//! phase-family, rotations, the IBM `U3`), the two-qubit controlled gates
//! and SWAP, and the three-qubit Toffoli/Fredkin gates — everything the
//! paper's circuits and the transpiler's `{U3, CX}` basis need.
//!
//! # Matrix convention
//!
//! [`Gate::matrix`] returns the unitary in the *local* basis of the
//! instruction's qubit list: **qubit `qubits[j]` corresponds to bit `j`
//! (the 2^j place) of the local basis index**. For `Gate::Cx` applied to
//! `[control, target]`, the control is bit 0 and the target is bit 1, so
//! `|control=1, target=0⟩` is local index 1 and maps to local index 3.
//! Simulators and verifiers in this workspace all share this convention.

use qmath::{CMatrix, Complex, Mat2, FRAC_1_SQRT_2};
use std::fmt;

/// Exact Clifford classification of a gate, by enum variant.
///
/// Each variant names a generator of the Clifford group with a known
/// tableau action; a stabilizer simulator can dispatch on it without
/// ever inspecting a gate matrix. The classification is **structural**
/// metadata carried by the [`Gate`] variant itself — never derived from
/// floating-point matrix entries — so an eligibility pass can trust it
/// bit-for-bit. The flip side is that it is deliberately conservative:
/// parametrized gates classify as non-Clifford even at Clifford angles
/// (`Rz(π/2)` *is* a Clifford unitary, but recognizing it would require
/// float comparison, which this metadata refuses by contract).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CliffordKind {
    /// Identity.
    I,
    /// Pauli-X.
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
    /// Hadamard.
    H,
    /// Phase gate √Z.
    S,
    /// Inverse phase gate.
    Sdg,
    /// √X.
    Sx,
    /// Inverse √X.
    Sxdg,
    /// Controlled-X; qubit order `[control, target]`.
    Cx,
    /// Controlled-Y; qubit order `[control, target]`.
    Cy,
    /// Controlled-Z (symmetric).
    Cz,
    /// SWAP (symmetric).
    Swap,
}

/// A quantum gate (unitary operation) with bound parameters.
///
/// # Example
///
/// ```
/// use qcircuit::Gate;
/// assert_eq!(Gate::H.num_qubits(), 1);
/// assert_eq!(Gate::Ccx.num_qubits(), 3);
/// assert_eq!(Gate::S.inverse(), Gate::Sdg);
/// assert!(Gate::Rx(0.3).matrix().is_unitary(1e-12));
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Gate {
    /// Identity.
    I,
    /// Pauli-X (NOT).
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
    /// Hadamard.
    H,
    /// Phase gate √Z = diag(1, i).
    S,
    /// Inverse phase gate diag(1, −i).
    Sdg,
    /// T gate (π/8): diag(1, e^{iπ/4}).
    T,
    /// Inverse T gate.
    Tdg,
    /// √X gate.
    Sx,
    /// Inverse √X gate.
    Sxdg,
    /// Rotation about X by the given angle.
    Rx(f64),
    /// Rotation about Y by the given angle.
    Ry(f64),
    /// Rotation about Z by the given angle.
    Rz(f64),
    /// Phase rotation diag(1, e^{iλ}) (OpenQASM `u1`/`p`).
    P(f64),
    /// General single-qubit unitary `U3(θ, φ, λ)` (IBM convention).
    U3(f64, f64, f64),
    /// Controlled-X (CNOT); qubit order `[control, target]`.
    Cx,
    /// Controlled-Y; qubit order `[control, target]`.
    Cy,
    /// Controlled-Z (symmetric in its qubits).
    Cz,
    /// Controlled-Hadamard; qubit order `[control, target]`.
    Ch,
    /// Controlled phase diag(1,1,1,e^{iλ}) (symmetric).
    Cp(f64),
    /// SWAP (symmetric).
    Swap,
    /// Toffoli (CCX); qubit order `[control, control, target]`.
    Ccx,
    /// Fredkin (controlled-SWAP); qubit order `[control, a, b]`.
    Cswap,
}

impl Gate {
    /// Number of qubits the gate acts on.
    pub const fn num_qubits(&self) -> usize {
        match self {
            Gate::I
            | Gate::X
            | Gate::Y
            | Gate::Z
            | Gate::H
            | Gate::S
            | Gate::Sdg
            | Gate::T
            | Gate::Tdg
            | Gate::Sx
            | Gate::Sxdg
            | Gate::Rx(_)
            | Gate::Ry(_)
            | Gate::Rz(_)
            | Gate::P(_)
            | Gate::U3(..) => 1,
            Gate::Cx | Gate::Cy | Gate::Cz | Gate::Ch | Gate::Cp(_) | Gate::Swap => 2,
            Gate::Ccx | Gate::Cswap => 3,
        }
    }

    /// The OpenQASM-style lowercase name of the gate.
    pub const fn name(&self) -> &'static str {
        match self {
            Gate::I => "id",
            Gate::X => "x",
            Gate::Y => "y",
            Gate::Z => "z",
            Gate::H => "h",
            Gate::S => "s",
            Gate::Sdg => "sdg",
            Gate::T => "t",
            Gate::Tdg => "tdg",
            Gate::Sx => "sx",
            Gate::Sxdg => "sxdg",
            Gate::Rx(_) => "rx",
            Gate::Ry(_) => "ry",
            Gate::Rz(_) => "rz",
            Gate::P(_) => "p",
            Gate::U3(..) => "u3",
            Gate::Cx => "cx",
            Gate::Cy => "cy",
            Gate::Cz => "cz",
            Gate::Ch => "ch",
            Gate::Cp(_) => "cp",
            Gate::Swap => "swap",
            Gate::Ccx => "ccx",
            Gate::Cswap => "cswap",
        }
    }

    /// The gate's real-valued parameters, in declaration order.
    pub fn params(&self) -> Vec<f64> {
        match self {
            Gate::Rx(t) | Gate::Ry(t) | Gate::Rz(t) | Gate::P(t) | Gate::Cp(t) => vec![*t],
            Gate::U3(t, p, l) => vec![*t, *p, *l],
            _ => Vec::new(),
        }
    }

    /// The inverse gate `G⁻¹`, such that `G·G⁻¹ = I`.
    pub fn inverse(&self) -> Gate {
        match self {
            Gate::S => Gate::Sdg,
            Gate::Sdg => Gate::S,
            Gate::T => Gate::Tdg,
            Gate::Tdg => Gate::T,
            Gate::Sx => Gate::Sxdg,
            Gate::Sxdg => Gate::Sx,
            Gate::Rx(t) => Gate::Rx(-t),
            Gate::Ry(t) => Gate::Ry(-t),
            Gate::Rz(t) => Gate::Rz(-t),
            Gate::P(t) => Gate::P(-t),
            Gate::Cp(t) => Gate::Cp(-t),
            Gate::U3(t, p, l) => Gate::U3(-t, -l, -p),
            // All remaining gates are involutions.
            g => *g,
        }
    }

    /// Returns `true` for gates that are their own inverse.
    pub fn is_self_inverse(&self) -> bool {
        self.inverse() == *self
    }

    /// The gate's exact [`CliffordKind`], or `None` for gates outside
    /// the Clifford group (and for all parametrized gates, which carry
    /// float parameters this classification refuses to inspect — see
    /// [`CliffordKind`] for the exactness contract).
    pub const fn clifford_kind(&self) -> Option<CliffordKind> {
        match self {
            Gate::I => Some(CliffordKind::I),
            Gate::X => Some(CliffordKind::X),
            Gate::Y => Some(CliffordKind::Y),
            Gate::Z => Some(CliffordKind::Z),
            Gate::H => Some(CliffordKind::H),
            Gate::S => Some(CliffordKind::S),
            Gate::Sdg => Some(CliffordKind::Sdg),
            Gate::Sx => Some(CliffordKind::Sx),
            Gate::Sxdg => Some(CliffordKind::Sxdg),
            Gate::Cx => Some(CliffordKind::Cx),
            Gate::Cy => Some(CliffordKind::Cy),
            Gate::Cz => Some(CliffordKind::Cz),
            Gate::Swap => Some(CliffordKind::Swap),
            Gate::T
            | Gate::Tdg
            | Gate::Rx(_)
            | Gate::Ry(_)
            | Gate::Rz(_)
            | Gate::P(_)
            | Gate::U3(..)
            | Gate::Ch
            | Gate::Cp(_)
            | Gate::Ccx
            | Gate::Cswap => None,
        }
    }

    /// The 2×2 matrix of a single-qubit gate, or `None` for multi-qubit
    /// gates.
    pub fn mat2(&self) -> Option<Mat2> {
        let c = Complex::new;
        let m = match self {
            Gate::I => Mat2::identity(),
            Gate::X => Mat2::from_real(0.0, 1.0, 1.0, 0.0),
            Gate::Y => Mat2::new(Complex::ZERO, -Complex::I, Complex::I, Complex::ZERO),
            Gate::Z => Mat2::from_real(1.0, 0.0, 0.0, -1.0),
            Gate::H => Mat2::from_real(1.0, 1.0, 1.0, -1.0).scale(FRAC_1_SQRT_2),
            Gate::S => Mat2::new(Complex::ONE, Complex::ZERO, Complex::ZERO, Complex::I),
            Gate::Sdg => Mat2::new(Complex::ONE, Complex::ZERO, Complex::ZERO, -Complex::I),
            Gate::T => Mat2::new(
                Complex::ONE,
                Complex::ZERO,
                Complex::ZERO,
                Complex::cis(std::f64::consts::FRAC_PI_4),
            ),
            Gate::Tdg => Mat2::new(
                Complex::ONE,
                Complex::ZERO,
                Complex::ZERO,
                Complex::cis(-std::f64::consts::FRAC_PI_4),
            ),
            Gate::Sx => Mat2::new(c(0.5, 0.5), c(0.5, -0.5), c(0.5, -0.5), c(0.5, 0.5)),
            Gate::Sxdg => Mat2::new(c(0.5, -0.5), c(0.5, 0.5), c(0.5, 0.5), c(0.5, -0.5)),
            Gate::Rx(t) => {
                let (s, co) = ((t / 2.0).sin(), (t / 2.0).cos());
                Mat2::new(c(co, 0.0), c(0.0, -s), c(0.0, -s), c(co, 0.0))
            }
            Gate::Ry(t) => {
                let (s, co) = ((t / 2.0).sin(), (t / 2.0).cos());
                Mat2::from_real(co, -s, s, co)
            }
            Gate::Rz(t) => Mat2::new(
                Complex::cis(-t / 2.0),
                Complex::ZERO,
                Complex::ZERO,
                Complex::cis(t / 2.0),
            ),
            Gate::P(l) => Mat2::new(Complex::ONE, Complex::ZERO, Complex::ZERO, Complex::cis(*l)),
            Gate::U3(t, p, l) => {
                let (s, co) = ((t / 2.0).sin(), (t / 2.0).cos());
                Mat2::new(
                    c(co, 0.0),
                    -Complex::cis(*l).scale(s),
                    Complex::cis(*p).scale(s),
                    Complex::cis(p + l).scale(co),
                )
            }
            _ => return None,
        };
        Some(m)
    }

    /// The full unitary matrix of the gate in the local-qubit convention
    /// described in the [module docs](self) (qubit `j` of the instruction's
    /// qubit list is local bit `j`).
    pub fn matrix(&self) -> CMatrix {
        if let Some(m) = self.mat2() {
            return m.to_cmatrix();
        }
        match self {
            Gate::Cx => controlled_1q(&Gate::X.mat2().expect("X is 1q")),
            Gate::Cy => controlled_1q(&Gate::Y.mat2().expect("Y is 1q")),
            Gate::Cz => controlled_1q(&Gate::Z.mat2().expect("Z is 1q")),
            Gate::Ch => controlled_1q(&Gate::H.mat2().expect("H is 1q")),
            Gate::Cp(l) => controlled_1q(&Gate::P(*l).mat2().expect("P is 1q")),
            Gate::Swap => {
                let mut m = CMatrix::zeros(4);
                m.set(0, 0, Complex::ONE);
                m.set(3, 3, Complex::ONE);
                // |01⟩ (local index 1: bit0=1) ↔ |10⟩ (local index 2: bit1=1)
                m.set(1, 2, Complex::ONE);
                m.set(2, 1, Complex::ONE);
                m
            }
            Gate::Ccx => {
                // Controls are bits 0 and 1, target is bit 2: indices 3 and
                // 7 (both controls set) exchange the target bit.
                let mut m = CMatrix::identity(8);
                m.set(3, 3, Complex::ZERO);
                m.set(7, 7, Complex::ZERO);
                m.set(3, 7, Complex::ONE);
                m.set(7, 3, Complex::ONE);
                m
            }
            Gate::Cswap => {
                // Control is bit 0; when set, bits 1 and 2 swap: indices
                // 3 (c=1, a=1, b=0) and 5 (c=1, a=0, b=1) exchange.
                let mut m = CMatrix::identity(8);
                m.set(3, 3, Complex::ZERO);
                m.set(5, 5, Complex::ZERO);
                m.set(3, 5, Complex::ONE);
                m.set(5, 3, Complex::ONE);
                m
            }
            _ => unreachable!("1q gates handled via mat2"),
        }
    }
}

/// Builds the 4×4 matrix of a controlled single-qubit gate with the control
/// on local bit 0 and the target on local bit 1.
fn controlled_1q(u: &Mat2) -> CMatrix {
    let mut m = CMatrix::zeros(4);
    // Control clear (local indices 0 and 2): identity on the target bit.
    m.set(0, 0, Complex::ONE);
    m.set(2, 2, Complex::ONE);
    // Control set (local indices 1 and 3): apply `u` on the target bit.
    // Local index 1 = |target=0, control=1⟩, 3 = |target=1, control=1⟩.
    m.set(1, 1, u.a);
    m.set(1, 3, u.b);
    m.set(3, 1, u.c);
    m.set(3, 3, u.d);
    m
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let params = self.params();
        if params.is_empty() {
            write!(f, "{}", self.name())
        } else {
            let rendered: Vec<String> = params.iter().map(|p| format!("{p:.6}")).collect();
            write!(f, "{}({})", self.name(), rendered.join(", "))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    const ALL_GATES: &[Gate] = &[
        Gate::I,
        Gate::X,
        Gate::Y,
        Gate::Z,
        Gate::H,
        Gate::S,
        Gate::Sdg,
        Gate::T,
        Gate::Tdg,
        Gate::Sx,
        Gate::Sxdg,
        Gate::Rx(0.3),
        Gate::Ry(-1.2),
        Gate::Rz(2.2),
        Gate::P(0.7),
        Gate::U3(0.4, 1.1, -0.6),
        Gate::Cx,
        Gate::Cy,
        Gate::Cz,
        Gate::Ch,
        Gate::Cp(0.9),
        Gate::Swap,
        Gate::Ccx,
        Gate::Cswap,
    ];

    #[test]
    fn every_gate_matrix_is_unitary() {
        for g in ALL_GATES {
            assert!(g.matrix().is_unitary(1e-12), "{g:?} is not unitary");
        }
    }

    #[test]
    fn every_gate_times_its_inverse_is_identity() {
        for g in ALL_GATES {
            let prod = g.matrix().mul(&g.inverse().matrix()).unwrap();
            let dim = prod.dim();
            assert!(
                prod.approx_eq(&CMatrix::identity(dim), 1e-12),
                "{g:?}·{:?} != I",
                g.inverse()
            );
        }
    }

    #[test]
    fn matrix_dimension_matches_arity() {
        for g in ALL_GATES {
            assert_eq!(g.matrix().dim(), 1 << g.num_qubits(), "{g:?}");
        }
    }

    #[test]
    fn cx_truth_table_in_local_convention() {
        // Control = bit 0, target = bit 1.
        let m = Gate::Cx.matrix();
        let basis = |i: usize| {
            let mut v = vec![Complex::ZERO; 4];
            v[i] = Complex::ONE;
            v
        };
        // |c=0,t=0⟩ (0) → itself
        assert_eq!(m.matvec(&basis(0)).unwrap()[0], Complex::ONE);
        // |c=1,t=0⟩ (1) → |c=1,t=1⟩ (3)
        assert_eq!(m.matvec(&basis(1)).unwrap()[3], Complex::ONE);
        // |c=0,t=1⟩ (2) → itself
        assert_eq!(m.matvec(&basis(2)).unwrap()[2], Complex::ONE);
        // |c=1,t=1⟩ (3) → |c=1,t=0⟩ (1)
        assert_eq!(m.matvec(&basis(3)).unwrap()[1], Complex::ONE);
    }

    #[test]
    fn swap_exchanges_local_bits() {
        let m = Gate::Swap.matrix();
        let mut v = vec![Complex::ZERO; 4];
        v[1] = Complex::ONE; // |bit0=1, bit1=0⟩
        let out = m.matvec(&v).unwrap();
        assert_eq!(out[2], Complex::ONE); // |bit0=0, bit1=1⟩
    }

    #[test]
    fn toffoli_flips_only_when_both_controls_set() {
        let m = Gate::Ccx.matrix();
        for i in 0..8usize {
            let mut v = vec![Complex::ZERO; 8];
            v[i] = Complex::ONE;
            let out = m.matvec(&v).unwrap();
            let expected = if i & 0b011 == 0b011 { i ^ 0b100 } else { i };
            assert_eq!(out[expected], Complex::ONE, "input index {i}");
        }
    }

    #[test]
    fn fredkin_swaps_targets_only_when_control_set() {
        let m = Gate::Cswap.matrix();
        for i in 0..8usize {
            let mut v = vec![Complex::ZERO; 8];
            v[i] = Complex::ONE;
            let out = m.matvec(&v).unwrap();
            let expected = if i & 1 == 1 {
                // swap bits 1 and 2
                let a = (i >> 1) & 1;
                let b = (i >> 2) & 1;
                (i & 1) | (b << 1) | (a << 2)
            } else {
                i
            };
            assert_eq!(out[expected], Complex::ONE, "input index {i}");
        }
    }

    #[test]
    fn hadamard_squares_to_identity() {
        let h = Gate::H.matrix();
        assert!(h.mul(&h).unwrap().approx_eq(&CMatrix::identity(2), 1e-12));
    }

    #[test]
    fn s_is_sqrt_z_and_t_is_sqrt_s() {
        let s2 = Gate::S.matrix().mul(&Gate::S.matrix()).unwrap();
        assert!(s2.approx_eq(&Gate::Z.matrix(), 1e-12));
        let t2 = Gate::T.matrix().mul(&Gate::T.matrix()).unwrap();
        assert!(t2.approx_eq(&Gate::S.matrix(), 1e-12));
    }

    #[test]
    fn sx_squares_to_x() {
        let sx2 = Gate::Sx.matrix().mul(&Gate::Sx.matrix()).unwrap();
        assert!(sx2.approx_eq(&Gate::X.matrix(), 1e-12));
    }

    #[test]
    fn rotation_gates_match_pauli_at_pi_up_to_phase() {
        // Rx(π) = -iX
        let rx = Gate::Rx(PI).matrix();
        let x = Gate::X.matrix().scale_c(Complex::new(0.0, -1.0));
        assert!(rx.approx_eq(&x, 1e-12));
        // Rz(π) = -iZ
        let rz = Gate::Rz(PI).matrix();
        let z = Gate::Z.matrix().scale_c(Complex::new(0.0, -1.0));
        assert!(rz.approx_eq(&z, 1e-12));
    }

    #[test]
    fn u3_special_cases() {
        // U3(π/2, 0, π) = H
        let u = Gate::U3(FRAC_PI_2, 0.0, PI).matrix();
        assert!(u.approx_eq(&Gate::H.matrix(), 1e-12));
        // U3(0, 0, λ) = P(λ)
        let u = Gate::U3(0.0, 0.0, 0.8).matrix();
        assert!(u.approx_eq(&Gate::P(0.8).matrix(), 1e-12));
        // U3(π, 0, π) = X
        let u = Gate::U3(PI, 0.0, PI).matrix();
        assert!(u.approx_eq(&Gate::X.matrix(), 1e-12));
    }

    #[test]
    fn p_and_rz_differ_by_global_phase_only() {
        let p = Gate::P(0.6).matrix();
        let rz = Gate::Rz(0.6).matrix().scale_c(Complex::cis(0.3));
        assert!(p.approx_eq(&rz, 1e-12));
    }

    #[test]
    fn cz_is_symmetric_and_diagonal() {
        let m = Gate::Cz.matrix();
        assert!(m.approx_eq(&m.transpose(), 1e-15));
        assert_eq!(m.get(3, 3), -Complex::ONE);
        assert_eq!(m.get(1, 1), Complex::ONE);
        assert_eq!(m.get(2, 2), Complex::ONE);
    }

    #[test]
    fn cp_at_pi_equals_cz() {
        assert!(Gate::Cp(PI).matrix().approx_eq(&Gate::Cz.matrix(), 1e-12));
    }

    #[test]
    fn inverse_round_trips() {
        for g in ALL_GATES {
            assert_eq!(g.inverse().inverse(), *g, "{g:?}");
        }
    }

    #[test]
    fn u3_inverse_swaps_phi_lambda() {
        assert_eq!(
            Gate::U3(0.4, 1.1, -0.6).inverse(),
            Gate::U3(-0.4, 0.6, -1.1)
        );
    }

    #[test]
    fn names_are_qasm_style() {
        assert_eq!(Gate::H.name(), "h");
        assert_eq!(Gate::Sdg.name(), "sdg");
        assert_eq!(Gate::U3(0.0, 0.0, 0.0).name(), "u3");
        assert_eq!(Gate::Ccx.name(), "ccx");
    }

    #[test]
    fn params_extraction() {
        assert!(Gate::H.params().is_empty());
        assert_eq!(Gate::Rx(0.5).params(), vec![0.5]);
        assert_eq!(Gate::U3(1.0, 2.0, 3.0).params(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn display_includes_params() {
        assert_eq!(Gate::H.to_string(), "h");
        assert_eq!(Gate::Rx(0.5).to_string(), "rx(0.500000)");
    }

    /// The single-qubit Pauli matrices, indexed I, X, Y, Z.
    fn pauli(code: usize) -> CMatrix {
        match code {
            0 => CMatrix::identity(2),
            1 => Gate::X.matrix(),
            2 => Gate::Y.matrix(),
            3 => Gate::Z.matrix(),
            _ => unreachable!(),
        }
    }

    /// The n-qubit Pauli string whose qubit-`j` factor is digit `j`
    /// (base 4) of `code`, in the local-basis convention (qubit `j` is
    /// bit `j`, so the highest qubit is the leftmost Kronecker factor).
    fn pauli_string(code: usize, n: usize) -> CMatrix {
        let mut m = pauli((code >> (2 * (n - 1))) & 3);
        for j in (0..n - 1).rev() {
            m = m.kron(&pauli((code >> (2 * j)) & 3));
        }
        m
    }

    /// Whether `u` is a Clifford unitary: conjugating every Pauli
    /// generator (X_q and Z_q for each qubit) must land back in the
    /// Pauli group up to sign.
    fn is_clifford_by_matrix(u: &CMatrix) -> bool {
        let n = u.dim().trailing_zeros() as usize;
        let udg = u.adjoint();
        for q in 0..n {
            for gen in [1usize, 3] {
                let p = pauli_string(gen << (2 * q), n);
                let conj = u.mul(&p).unwrap().mul(&udg).unwrap();
                let in_group = (0..4usize.pow(n as u32)).any(|code| {
                    let candidate = pauli_string(code, n);
                    conj.approx_eq(&candidate, 1e-12)
                        || conj.approx_eq(&candidate.scale(-1.0), 1e-12)
                });
                if !in_group {
                    return false;
                }
            }
        }
        true
    }

    #[test]
    fn clifford_classification_matches_matrix_conjugation() {
        // The classification table is exact variant metadata; this pins
        // it against ground truth: a gate classifies as Clifford iff its
        // matrix conjugates every Pauli generator to a signed Pauli
        // string. (The parametrized instances in ALL_GATES sit at
        // non-Clifford angles, so the equivalence is exact here; the
        // conservative parametrized case is pinned separately below.)
        for g in ALL_GATES {
            assert_eq!(
                g.clifford_kind().is_some(),
                is_clifford_by_matrix(&g.matrix()),
                "{g:?} classification disagrees with its matrix"
            );
        }
    }

    #[test]
    fn clifford_classification_table() {
        use CliffordKind as K;
        let expected: &[(Gate, Option<CliffordKind>)] = &[
            (Gate::I, Some(K::I)),
            (Gate::X, Some(K::X)),
            (Gate::Y, Some(K::Y)),
            (Gate::Z, Some(K::Z)),
            (Gate::H, Some(K::H)),
            (Gate::S, Some(K::S)),
            (Gate::Sdg, Some(K::Sdg)),
            (Gate::Sx, Some(K::Sx)),
            (Gate::Sxdg, Some(K::Sxdg)),
            (Gate::Cx, Some(K::Cx)),
            (Gate::Cy, Some(K::Cy)),
            (Gate::Cz, Some(K::Cz)),
            (Gate::Swap, Some(K::Swap)),
            (Gate::T, None),
            (Gate::Tdg, None),
            (Gate::Ch, None),
            (Gate::Ccx, None),
            (Gate::Cswap, None),
        ];
        for (gate, kind) in expected {
            assert_eq!(gate.clifford_kind(), *kind, "{gate:?}");
        }
    }

    #[test]
    fn parametrized_clifford_angles_stay_unclassified() {
        // Rz(π/2) and P(π/2) are Clifford *unitaries* (P(π/2) ≈ S up to
        // the float value of π/2), but classification is structural: a
        // parametrized gate never classifies, because recognizing the
        // angle would make eligibility depend on float comparison.
        for g in [
            Gate::Rz(FRAC_PI_2),
            Gate::Rx(PI),
            Gate::P(FRAC_PI_2),
            Gate::Cp(PI),
            Gate::U3(FRAC_PI_2, 0.0, PI),
        ] {
            assert!(is_clifford_by_matrix(&g.matrix()), "{g:?}");
            assert_eq!(g.clifford_kind(), None, "{g:?} must stay unclassified");
        }
    }

    #[test]
    fn self_inverse_classification() {
        assert!(Gate::X.is_self_inverse());
        assert!(Gate::Cx.is_self_inverse());
        assert!(!Gate::S.is_self_inverse());
        assert!(!Gate::Rx(0.5).is_self_inverse());
        assert!(Gate::Rx(0.0).is_self_inverse());
    }
}
