//! The circuit container and fluent builder.

use crate::error::CircuitError;
use crate::gate::Gate;
use crate::instruction::{Condition, Instruction, OpKind};
use crate::register::{ClbitId, QubitId};
use std::collections::BTreeMap;
use std::fmt;

/// An ordered list of instructions over a fixed set of quantum and
/// classical wires.
///
/// Gate helpers validate operands and return `&mut Self` for chaining:
///
/// ```
/// use qcircuit::QuantumCircuit;
/// # fn main() -> Result<(), qcircuit::CircuitError> {
/// let mut bell = QuantumCircuit::new(2, 2);
/// bell.h(0)?.cx(0, 1)?.measure(0, 0)?.measure(1, 1)?;
/// assert_eq!(bell.len(), 4);
/// assert_eq!(bell.depth(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct QuantumCircuit {
    name: String,
    num_qubits: usize,
    num_clbits: usize,
    instructions: Vec<Instruction>,
}

impl QuantumCircuit {
    /// Creates an empty circuit with the given wire counts.
    pub fn new(num_qubits: usize, num_clbits: usize) -> Self {
        QuantumCircuit {
            name: String::from("circuit"),
            num_qubits,
            num_clbits,
            instructions: Vec::new(),
        }
    }

    /// Creates an empty named circuit.
    pub fn with_name(name: impl Into<String>, num_qubits: usize, num_clbits: usize) -> Self {
        QuantumCircuit {
            name: name.into(),
            num_qubits,
            num_clbits,
            instructions: Vec::new(),
        }
    }

    /// The circuit's name (used in reports and rendering).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the circuit.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of classical bits.
    pub fn num_clbits(&self) -> usize {
        self.num_clbits
    }

    /// The instruction sequence.
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Number of instructions (including barriers).
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// Returns `true` when the circuit contains no instructions.
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// Adds a fresh qubit wire and returns its id.
    ///
    /// This is how the assertion instrumenter allocates ancilla qubits.
    pub fn add_qubit(&mut self) -> QubitId {
        let id = QubitId::from(self.num_qubits);
        self.num_qubits += 1;
        id
    }

    /// Adds a fresh classical wire and returns its id.
    pub fn add_clbit(&mut self) -> ClbitId {
        let id = ClbitId::from(self.num_clbits);
        self.num_clbits += 1;
        id
    }

    /// Validates and appends an instruction.
    ///
    /// # Errors
    ///
    /// Returns a [`CircuitError`] when operands are out of range or
    /// duplicated, the gate arity is wrong, or a condition is attached to
    /// an operation that cannot carry one.
    pub fn append(&mut self, instruction: Instruction) -> Result<&mut Self, CircuitError> {
        self.validate(&instruction)?;
        self.instructions.push(instruction);
        Ok(self)
    }

    fn validate(&self, instruction: &Instruction) -> Result<(), CircuitError> {
        for q in instruction.qubits() {
            if q.index() >= self.num_qubits {
                return Err(CircuitError::QubitOutOfRange {
                    qubit: q.index(),
                    num_qubits: self.num_qubits,
                });
            }
        }
        for c in instruction.clbits() {
            if c.index() >= self.num_clbits {
                return Err(CircuitError::ClbitOutOfRange {
                    clbit: c.index(),
                    num_clbits: self.num_clbits,
                });
            }
        }
        // Multi-qubit operations need distinct operands.
        let qs = instruction.qubits();
        for (i, q) in qs.iter().enumerate() {
            if qs[i + 1..].contains(q) {
                return Err(CircuitError::DuplicateQubit { qubit: q.index() });
            }
        }
        if let OpKind::Gate(g) = instruction.kind() {
            if g.num_qubits() != qs.len() {
                return Err(CircuitError::ArityMismatch {
                    gate: g.name(),
                    expected: g.num_qubits(),
                    got: qs.len(),
                });
            }
        }
        if let Some(cond) = instruction.condition() {
            if !matches!(instruction.kind(), OpKind::Gate(_) | OpKind::Reset) {
                return Err(CircuitError::UnsupportedCondition {
                    op: instruction.kind().name(),
                });
            }
            if cond.clbit.index() >= self.num_clbits {
                return Err(CircuitError::ClbitOutOfRange {
                    clbit: cond.clbit.index(),
                    num_clbits: self.num_clbits,
                });
            }
        }
        Ok(())
    }

    /// Appends a gate on the given qubits.
    ///
    /// # Errors
    ///
    /// See [`QuantumCircuit::append`].
    pub fn gate<Q, I>(&mut self, gate: Gate, qubits: I) -> Result<&mut Self, CircuitError>
    where
        Q: Into<QubitId>,
        I: IntoIterator<Item = Q>,
    {
        self.append(Instruction::gate(gate, qubits))
    }

    /// Appends a classically-conditioned gate: applied only when `clbit`
    /// holds `value` at runtime.
    ///
    /// # Errors
    ///
    /// See [`QuantumCircuit::append`].
    pub fn gate_if<Q, I>(
        &mut self,
        gate: Gate,
        qubits: I,
        clbit: impl Into<ClbitId>,
        value: bool,
    ) -> Result<&mut Self, CircuitError>
    where
        Q: Into<QubitId>,
        I: IntoIterator<Item = Q>,
    {
        self.append(Instruction::gate(gate, qubits).with_condition(Condition {
            clbit: clbit.into(),
            value,
        }))
    }

    /// Appends a measurement of `qubit` into `clbit`.
    ///
    /// # Errors
    ///
    /// See [`QuantumCircuit::append`].
    pub fn measure(
        &mut self,
        qubit: impl Into<QubitId>,
        clbit: impl Into<ClbitId>,
    ) -> Result<&mut Self, CircuitError> {
        self.append(Instruction::measure(qubit, clbit))
    }

    /// Measures every qubit `i` into classical bit `i`, growing the
    /// classical register if it is too small.
    pub fn measure_all(&mut self) -> &mut Self {
        while self.num_clbits < self.num_qubits {
            self.add_clbit();
        }
        for q in 0..self.num_qubits {
            self.instructions.push(Instruction::measure(q, q));
        }
        self
    }

    /// Appends a reset of `qubit` to `|0⟩`.
    ///
    /// # Errors
    ///
    /// See [`QuantumCircuit::append`].
    pub fn reset(&mut self, qubit: impl Into<QubitId>) -> Result<&mut Self, CircuitError> {
        self.append(Instruction::reset(qubit))
    }

    /// Appends a barrier over the given qubits.
    ///
    /// # Errors
    ///
    /// See [`QuantumCircuit::append`].
    pub fn barrier<Q, I>(&mut self, qubits: I) -> Result<&mut Self, CircuitError>
    where
        Q: Into<QubitId>,
        I: IntoIterator<Item = Q>,
    {
        self.append(Instruction::barrier(qubits))
    }

    /// Appends a barrier across every qubit.
    pub fn barrier_all(&mut self) -> &mut Self {
        let instr = Instruction::barrier(0..self.num_qubits);
        self.instructions.push(instr);
        self
    }

    /// Appends a post-selection of `qubit` on `outcome` (simulator only).
    ///
    /// # Errors
    ///
    /// See [`QuantumCircuit::append`].
    pub fn post_select(
        &mut self,
        qubit: impl Into<QubitId>,
        outcome: bool,
    ) -> Result<&mut Self, CircuitError> {
        self.append(Instruction::post_select(qubit, outcome))
    }

    /// Inlines `other` into this circuit, mapping its qubit `i` to
    /// `qubit_map[i]` and its clbit `j` to `clbit_map[j]`.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::MappingSizeMismatch`] when a map does not
    /// cover the inlined circuit's wires, or a validation error when a
    /// mapped operand is out of range for `self`.
    pub fn compose(
        &mut self,
        other: &QuantumCircuit,
        qubit_map: &[QubitId],
        clbit_map: &[ClbitId],
    ) -> Result<&mut Self, CircuitError> {
        if qubit_map.len() != other.num_qubits {
            return Err(CircuitError::MappingSizeMismatch {
                wire_kind: "qubit",
                expected: other.num_qubits,
                got: qubit_map.len(),
            });
        }
        if clbit_map.len() != other.num_clbits {
            return Err(CircuitError::MappingSizeMismatch {
                wire_kind: "clbit",
                expected: other.num_clbits,
                got: clbit_map.len(),
            });
        }
        for instr in &other.instructions {
            let mapped = instr.remapped(|q| qubit_map[q.index()], |c| clbit_map[c.index()]);
            self.append(mapped)?;
        }
        Ok(self)
    }

    /// Returns the inverse circuit: gates reversed and individually
    /// inverted.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::NotInvertible`] when the circuit contains a
    /// measurement, reset, post-selection, or conditioned gate. Barriers
    /// are preserved.
    pub fn inverse(&self) -> Result<QuantumCircuit, CircuitError> {
        let mut inv = QuantumCircuit::with_name(
            format!("{}_dg", self.name),
            self.num_qubits,
            self.num_clbits,
        );
        for instr in self.instructions.iter().rev() {
            if instr.condition().is_some() {
                return Err(CircuitError::NotInvertible {
                    op: "conditioned gate",
                });
            }
            match instr.kind() {
                OpKind::Gate(g) => {
                    inv.instructions.push(Instruction::gate(
                        g.inverse(),
                        instr.qubits().iter().copied(),
                    ));
                }
                OpKind::Barrier => {
                    inv.instructions
                        .push(Instruction::barrier(instr.qubits().iter().copied()));
                }
                other => {
                    return Err(CircuitError::NotInvertible { op: other.name() });
                }
            }
        }
        Ok(inv)
    }

    /// Returns a copy with all trailing measurements removed (useful for
    /// computing the pre-measurement state of a sampled circuit).
    pub fn without_final_measurements(&self) -> QuantumCircuit {
        let mut trimmed = self.clone();
        while let Some(last) = trimmed.instructions.last() {
            if matches!(last.kind(), OpKind::Measure | OpKind::Barrier) {
                trimmed.instructions.pop();
            } else {
                break;
            }
        }
        trimmed
    }

    /// Circuit depth: the length of the longest wire-dependency chain.
    /// Barriers count as synchronization points but contribute no depth.
    pub fn depth(&self) -> usize {
        let mut q_level = vec![0usize; self.num_qubits];
        let mut c_level = vec![0usize; self.num_clbits];
        let mut depth = 0usize;
        for instr in &self.instructions {
            let wires_max = instr
                .qubits()
                .iter()
                .map(|q| q_level[q.index()])
                .chain(instr.clbits().iter().map(|c| c_level[c.index()]))
                .chain(instr.condition().map(|cond| c_level[cond.clbit.index()]))
                .max()
                .unwrap_or(0);
            let level = if matches!(instr.kind(), OpKind::Barrier) {
                wires_max
            } else {
                wires_max + 1
            };
            for q in instr.qubits() {
                q_level[q.index()] = level;
            }
            for c in instr.clbits() {
                c_level[c.index()] = level;
            }
            if let Some(cond) = instr.condition() {
                c_level[cond.clbit.index()] = level;
            }
            depth = depth.max(level);
        }
        depth
    }

    /// Histogram of operation names to occurrence counts.
    pub fn count_ops(&self) -> BTreeMap<&'static str, usize> {
        let mut counts = BTreeMap::new();
        for instr in &self.instructions {
            *counts.entry(instr.kind().name()).or_insert(0) += 1;
        }
        counts
    }

    /// Number of gates acting on two or more qubits (the dominant error
    /// source on NISQ hardware; used for assertion-overhead reporting).
    pub fn multi_qubit_gate_count(&self) -> usize {
        self.instructions
            .iter()
            .filter(|i| matches!(i.kind(), OpKind::Gate(g) if g.num_qubits() >= 2))
            .count()
    }

    /// Number of measurement instructions.
    pub fn measurement_count(&self) -> usize {
        self.instructions
            .iter()
            .filter(|i| matches!(i.kind(), OpKind::Measure))
            .count()
    }

    /// Returns `true` when the circuit contains any non-unitary operation
    /// other than barriers.
    pub fn has_nonunitary_ops(&self) -> bool {
        self.instructions.iter().any(|i| {
            matches!(
                i.kind(),
                OpKind::Measure | OpKind::Reset | OpKind::PostSelect { .. }
            )
        })
    }

    /// A 128-bit structural hash of the circuit: register widths plus
    /// every instruction's operation, exact parameter bit patterns,
    /// operands, and condition. Circuits that execute identically hash
    /// identically; the circuit *name* is ignored.
    ///
    /// This is the circuit component of `qsim`'s program-cache key, so
    /// it is built from two independently-seeded 64-bit mix streams —
    /// a single 64-bit hash would make silent cache collisions (and
    /// thus silently wrong programs) merely improbable; 128 bits makes
    /// them unreachable in practice.
    pub fn structural_hash(&self) -> u128 {
        let mut lo = StructuralHasher::new(0x243F_6A88_85A3_08D3); // pi
        let mut hi = StructuralHasher::new(0x1319_8A2E_0370_7344); // more pi
        for h in [&mut lo, &mut hi] {
            h.write(self.num_qubits as u64);
            h.write(self.num_clbits as u64);
            h.write(self.instructions.len() as u64);
            for instr in &self.instructions {
                h.write_instruction(instr);
            }
        }
        (u128::from(hi.finish()) << 64) | u128::from(lo.finish())
    }

    /// Rolling 128-bit structural hashes of the circuit's instruction
    /// prefixes: element `k` hashes `instructions[0..k]`, so element `0`
    /// covers the empty stream and element `len()` the whole stream.
    ///
    /// Unlike [`QuantumCircuit::structural_hash`] (which also folds in
    /// the register widths and instruction count up front, making it
    /// non-incremental), these hashes satisfy the prefix property:
    /// circuit `A`'s instruction stream is an exact prefix of `B`'s iff
    /// `A.prefix_hashes().last() == B.prefix_hashes()[A.len()]`. The
    /// register widths are deliberately excluded — an instrumented
    /// circuit family grows ancilla wires and clbits as assertions are
    /// appended, yet each member's stream still extends the previous
    /// one. Sweep harnesses use this to detect shared lowered prefixes
    /// across a family without comparing instruction streams.
    pub fn prefix_hashes(&self) -> Vec<u128> {
        let mut lo = StructuralHasher::new(0x4528_21E6_38D0_1377); // pi, fifth chunk
        let mut hi = StructuralHasher::new(0xBE54_66CF_34E9_0C6C); // pi, sixth chunk
        let mut out = Vec::with_capacity(self.instructions.len() + 1);
        out.push((u128::from(hi.finish()) << 64) | u128::from(lo.finish()));
        for instr in &self.instructions {
            lo.write_instruction(instr);
            hi.write_instruction(instr);
            out.push((u128::from(hi.finish()) << 64) | u128::from(lo.finish()));
        }
        out
    }
}

/// SplitMix64-based accumulator for [`QuantumCircuit::structural_hash`].
struct StructuralHasher {
    state: u64,
}

impl StructuralHasher {
    fn new(seed: u64) -> Self {
        StructuralHasher { state: seed }
    }

    fn write(&mut self, value: u64) {
        let mut z = self
            .state
            .rotate_left(23)
            .wrapping_add(value)
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        self.state = z ^ (z >> 31);
    }

    fn write_instruction(&mut self, instr: &Instruction) {
        // Operation tag + payload. Gate parameters hash by exact f64 bit
        // pattern: Rx(0.1) and Rx(0.1 + 1e-17) are different circuits.
        match instr.kind() {
            OpKind::Gate(g) => {
                self.write(1);
                self.write_str(g.name());
                for p in g.params() {
                    self.write(p.to_bits());
                }
            }
            OpKind::Measure => self.write(2),
            OpKind::Reset => self.write(3),
            OpKind::Barrier => self.write(4),
            OpKind::PostSelect { outcome } => {
                self.write(5);
                self.write(u64::from(*outcome));
            }
        }
        self.write(instr.qubits().len() as u64);
        for q in instr.qubits() {
            self.write(q.index() as u64);
        }
        self.write(instr.clbits().len() as u64);
        for c in instr.clbits() {
            self.write(c.index() as u64);
        }
        match instr.condition() {
            Some(cond) => {
                self.write(6);
                self.write(cond.clbit.index() as u64);
                self.write(u64::from(cond.value));
            }
            None => self.write(7),
        }
    }

    fn write_str(&mut self, s: &str) {
        self.write(s.len() as u64);
        for b in s.as_bytes() {
            self.write(u64::from(*b));
        }
    }

    fn finish(&self) -> u64 {
        self.state
    }
}

macro_rules! gate_method {
    ($(#[$doc:meta])* $name:ident, $gate:expr) => {
        impl QuantumCircuit {
            $(#[$doc])*
            ///
            /// # Errors
            ///
            /// Returns a [`CircuitError`] when the qubit is out of range.
            pub fn $name(&mut self, q: impl Into<QubitId>) -> Result<&mut Self, CircuitError> {
                self.gate($gate, [q.into()])
            }
        }
    };
    ($(#[$doc:meta])* $name:ident, param, $gate:path) => {
        impl QuantumCircuit {
            $(#[$doc])*
            ///
            /// # Errors
            ///
            /// Returns a [`CircuitError`] when the qubit is out of range.
            pub fn $name(
                &mut self,
                theta: f64,
                q: impl Into<QubitId>,
            ) -> Result<&mut Self, CircuitError> {
                self.gate($gate(theta), [q.into()])
            }
        }
    };
    ($(#[$doc:meta])* $name:ident, two, $gate:expr) => {
        impl QuantumCircuit {
            $(#[$doc])*
            ///
            /// # Errors
            ///
            /// Returns a [`CircuitError`] when an operand is out of range
            /// or the operands coincide.
            pub fn $name(
                &mut self,
                a: impl Into<QubitId>,
                b: impl Into<QubitId>,
            ) -> Result<&mut Self, CircuitError> {
                self.gate($gate, [a.into(), b.into()])
            }
        }
    };
}

gate_method!(
    /// Appends an identity gate.
    id,
    Gate::I
);
gate_method!(
    /// Appends a Pauli-X (NOT) gate.
    x,
    Gate::X
);
gate_method!(
    /// Appends a Pauli-Y gate.
    y,
    Gate::Y
);
gate_method!(
    /// Appends a Pauli-Z gate.
    z,
    Gate::Z
);
gate_method!(
    /// Appends a Hadamard gate.
    h,
    Gate::H
);
gate_method!(
    /// Appends an S (phase) gate.
    s,
    Gate::S
);
gate_method!(
    /// Appends an S† gate.
    sdg,
    Gate::Sdg
);
gate_method!(
    /// Appends a T gate.
    t,
    Gate::T
);
gate_method!(
    /// Appends a T† gate.
    tdg,
    Gate::Tdg
);
gate_method!(
    /// Appends a √X gate.
    sx,
    Gate::Sx
);
gate_method!(
    /// Appends a √X† gate.
    sxdg,
    Gate::Sxdg
);
gate_method!(
    /// Appends an X-rotation by `theta`.
    rx,
    param,
    Gate::Rx
);
gate_method!(
    /// Appends a Y-rotation by `theta`.
    ry,
    param,
    Gate::Ry
);
gate_method!(
    /// Appends a Z-rotation by `theta`.
    rz,
    param,
    Gate::Rz
);
gate_method!(
    /// Appends a phase gate `diag(1, e^{iθ})`.
    p,
    param,
    Gate::P
);
gate_method!(
    /// Appends a CNOT with `a` as control and `b` as target.
    cx,
    two,
    Gate::Cx
);
gate_method!(
    /// Appends a controlled-Y with `a` as control and `b` as target.
    cy,
    two,
    Gate::Cy
);
gate_method!(
    /// Appends a controlled-Z (symmetric).
    cz,
    two,
    Gate::Cz
);
gate_method!(
    /// Appends a controlled-Hadamard with `a` as control and `b` as
    /// target.
    ch,
    two,
    Gate::Ch
);
gate_method!(
    /// Appends a SWAP gate.
    swap,
    two,
    Gate::Swap
);

impl QuantumCircuit {
    /// Appends a general single-qubit unitary `U3(θ, φ, λ)`.
    ///
    /// # Errors
    ///
    /// Returns a [`CircuitError`] when the qubit is out of range.
    pub fn u3(
        &mut self,
        theta: f64,
        phi: f64,
        lambda: f64,
        q: impl Into<QubitId>,
    ) -> Result<&mut Self, CircuitError> {
        self.gate(Gate::U3(theta, phi, lambda), [q.into()])
    }

    /// Appends a controlled-phase gate `diag(1,1,1,e^{iλ})`.
    ///
    /// # Errors
    ///
    /// Returns a [`CircuitError`] when an operand is invalid.
    pub fn cp(
        &mut self,
        lambda: f64,
        a: impl Into<QubitId>,
        b: impl Into<QubitId>,
    ) -> Result<&mut Self, CircuitError> {
        self.gate(Gate::Cp(lambda), [a.into(), b.into()])
    }

    /// Appends a Toffoli gate with controls `a`, `b` and target `t`.
    ///
    /// # Errors
    ///
    /// Returns a [`CircuitError`] when an operand is invalid.
    pub fn ccx(
        &mut self,
        a: impl Into<QubitId>,
        b: impl Into<QubitId>,
        t: impl Into<QubitId>,
    ) -> Result<&mut Self, CircuitError> {
        self.gate(Gate::Ccx, [a.into(), b.into(), t.into()])
    }

    /// Appends a Fredkin (controlled-SWAP) gate with control `c` swapping
    /// `a` and `b`.
    ///
    /// # Errors
    ///
    /// Returns a [`CircuitError`] when an operand is invalid.
    pub fn cswap(
        &mut self,
        c: impl Into<QubitId>,
        a: impl Into<QubitId>,
        b: impl Into<QubitId>,
    ) -> Result<&mut Self, CircuitError> {
        self.gate(Gate::Cswap, [c.into(), a.into(), b.into()])
    }
}

impl fmt::Display for QuantumCircuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} (qubits: {}, clbits: {}, ops: {})",
            self.name,
            self.num_qubits,
            self.num_clbits,
            self.instructions.len()
        )?;
        for instr in &self.instructions {
            writeln!(f, "  {instr}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bell() -> QuantumCircuit {
        let mut c = QuantumCircuit::new(2, 2);
        c.h(0).unwrap().cx(0, 1).unwrap();
        c
    }

    #[test]
    fn new_circuit_is_empty() {
        let c = QuantumCircuit::new(3, 1);
        assert!(c.is_empty());
        assert_eq!(c.num_qubits(), 3);
        assert_eq!(c.num_clbits(), 1);
        assert_eq!(c.depth(), 0);
    }

    #[test]
    fn structural_hash_is_stable_and_name_blind() {
        let a = bell();
        let mut b = bell();
        b.set_name("renamed");
        assert_eq!(a.structural_hash(), b.structural_hash());
        assert_eq!(a.structural_hash(), a.structural_hash());
    }

    #[test]
    fn structural_hash_separates_distinct_circuits() {
        let base = bell();
        let mut wider = QuantumCircuit::new(3, 2);
        wider.h(0).unwrap().cx(0, 1).unwrap();
        let mut reordered = QuantumCircuit::new(2, 2);
        reordered.cx(0, 1).unwrap().h(0).unwrap();
        let mut param_a = QuantumCircuit::new(1, 0);
        param_a.rx(0.5, 0).unwrap();
        let mut param_b = QuantumCircuit::new(1, 0);
        param_b.rx(0.5 + 1e-15, 0).unwrap();
        let mut conditioned = bell();
        conditioned.gate_if(Gate::X, [0usize], 0, true).unwrap();
        let mut unconditioned = bell();
        unconditioned.x(0).unwrap();
        let hashes = [
            base.structural_hash(),
            wider.structural_hash(),
            reordered.structural_hash(),
            param_a.structural_hash(),
            param_b.structural_hash(),
            conditioned.structural_hash(),
            unconditioned.structural_hash(),
        ];
        for (i, a) in hashes.iter().enumerate() {
            for b in &hashes[i + 1..] {
                assert_ne!(a, b, "distinct circuits collided");
            }
        }
    }

    #[test]
    fn prefix_hashes_satisfy_the_prefix_property() {
        let mut prefix = QuantumCircuit::new(3, 0);
        prefix.ry(0.7, 0).unwrap().ry(0.8, 1).unwrap();
        let mut full = prefix.clone();
        full.cx(0, 2).unwrap().cx(1, 2).unwrap();
        let ph = prefix.prefix_hashes();
        let fh = full.prefix_hashes();
        assert_eq!(ph.len(), prefix.len() + 1);
        assert_eq!(fh.len(), full.len() + 1);
        // Shared prefix ⇒ shared chain values, diverging afterwards.
        assert_eq!(&ph[..], &fh[..ph.len()]);
        assert_ne!(fh[2], fh[3]);
        // Register widths do NOT participate: instrumented families grow
        // ancilla wires while their streams keep extending each other.
        let mut wider = QuantumCircuit::new(4, 1);
        wider.ry(0.7, 0).unwrap().ry(0.8, 1).unwrap();
        assert_eq!(wider.prefix_hashes()[2], ph[2]);
        // Different parameters diverge at the instruction that differs.
        let mut other = QuantumCircuit::new(3, 0);
        other.ry(0.7, 0).unwrap().ry(0.9, 1).unwrap();
        let oh = other.prefix_hashes();
        assert_eq!(oh[1], ph[1]);
        assert_ne!(oh[2], ph[2]);
    }

    #[test]
    fn structural_hash_distinguishes_operand_order() {
        let mut ab = QuantumCircuit::new(2, 0);
        ab.cx(0, 1).unwrap();
        let mut ba = QuantumCircuit::new(2, 0);
        ba.cx(1, 0).unwrap();
        assert_ne!(ab.structural_hash(), ba.structural_hash());
    }

    #[test]
    fn builder_chains() {
        let mut c = QuantumCircuit::new(2, 2);
        c.h(0)
            .unwrap()
            .cx(0, 1)
            .unwrap()
            .measure(0, 0)
            .unwrap()
            .measure(1, 1)
            .unwrap();
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn qubit_out_of_range_is_rejected() {
        let mut c = QuantumCircuit::new(1, 0);
        assert_eq!(
            c.h(1).unwrap_err(),
            CircuitError::QubitOutOfRange {
                qubit: 1,
                num_qubits: 1
            }
        );
    }

    #[test]
    fn clbit_out_of_range_is_rejected() {
        let mut c = QuantumCircuit::new(1, 0);
        assert_eq!(
            c.measure(0, 0).unwrap_err(),
            CircuitError::ClbitOutOfRange {
                clbit: 0,
                num_clbits: 0
            }
        );
    }

    #[test]
    fn duplicate_qubits_are_rejected() {
        let mut c = QuantumCircuit::new(2, 0);
        assert_eq!(
            c.cx(1, 1).unwrap_err(),
            CircuitError::DuplicateQubit { qubit: 1 }
        );
    }

    #[test]
    fn arity_is_checked() {
        let mut c = QuantumCircuit::new(3, 0);
        let err = c.gate(Gate::Cx, [0, 1, 2]).unwrap_err();
        assert_eq!(
            err,
            CircuitError::ArityMismatch {
                gate: "cx",
                expected: 2,
                got: 3
            }
        );
    }

    #[test]
    fn conditions_only_on_gates_and_resets() {
        let mut c = QuantumCircuit::new(1, 1);
        let cond = Condition {
            clbit: ClbitId::new(0),
            value: true,
        };
        let err = c
            .append(Instruction::measure(0, 0).with_condition(cond))
            .unwrap_err();
        assert_eq!(err, CircuitError::UnsupportedCondition { op: "measure" });
        assert!(c.gate_if(Gate::X, [0], 0, true).is_ok());
    }

    #[test]
    fn condition_clbit_is_validated() {
        let mut c = QuantumCircuit::new(1, 1);
        let err = c.gate_if(Gate::X, [0], 5, true).unwrap_err();
        assert_eq!(
            err,
            CircuitError::ClbitOutOfRange {
                clbit: 5,
                num_clbits: 1
            }
        );
    }

    #[test]
    fn add_wires_extends_capacity() {
        let mut c = QuantumCircuit::new(1, 0);
        let anc = c.add_qubit();
        assert_eq!(anc.index(), 1);
        assert!(c.cx(0, anc).is_ok());
        let cb = c.add_clbit();
        assert!(c.measure(anc, cb).is_ok());
    }

    #[test]
    fn measure_all_grows_classical_register() {
        let mut c = QuantumCircuit::new(3, 0);
        c.measure_all();
        assert_eq!(c.num_clbits(), 3);
        assert_eq!(c.measurement_count(), 3);
    }

    #[test]
    fn depth_counts_longest_chain() {
        let mut c = bell(); // h(0); cx(0,1) — depth 2
        assert_eq!(c.depth(), 2);
        c.x(1).unwrap(); // extends qubit 1's chain: depth 3
        assert_eq!(c.depth(), 3);
        c.x(0).unwrap(); // parallel with the previous x: still 3
        assert_eq!(c.depth(), 3);
    }

    #[test]
    fn barriers_do_not_add_depth_but_synchronize() {
        let mut c = QuantumCircuit::new(2, 0);
        c.h(0).unwrap();
        c.barrier_all();
        c.x(1).unwrap();
        // x(1) must come after the barrier, which waits on h(0): depth 2.
        assert_eq!(c.depth(), 2);
    }

    #[test]
    fn count_ops_histograms_names() {
        let mut c = bell();
        c.h(1).unwrap();
        let counts = c.count_ops();
        assert_eq!(counts["h"], 2);
        assert_eq!(counts["cx"], 1);
    }

    #[test]
    fn multi_qubit_gate_count_ignores_single_qubit_gates() {
        let mut c = bell();
        c.ccx(0, 1, 1).unwrap_err(); // duplicate, not appended
        assert_eq!(c.multi_qubit_gate_count(), 1);
    }

    #[test]
    fn compose_remaps_wires() {
        let mut host = QuantumCircuit::new(3, 2);
        let frag = bell();
        host.compose(
            &frag,
            &[QubitId::new(2), QubitId::new(0)],
            &[ClbitId::new(0), ClbitId::new(1)],
        )
        .unwrap();
        assert_eq!(host.len(), 2);
        assert_eq!(host.instructions()[0].qubits(), &[QubitId::new(2)]);
        assert_eq!(
            host.instructions()[1].qubits(),
            &[QubitId::new(2), QubitId::new(0)]
        );
    }

    #[test]
    fn compose_validates_mapping_sizes() {
        let mut host = QuantumCircuit::new(2, 0);
        let frag = bell();
        let err = host.compose(&frag, &[QubitId::new(0)], &[]).unwrap_err();
        assert!(matches!(
            err,
            CircuitError::MappingSizeMismatch {
                wire_kind: "qubit",
                ..
            }
        ));
    }

    #[test]
    fn inverse_reverses_and_inverts() {
        let mut c = QuantumCircuit::new(1, 0);
        c.h(0).unwrap().s(0).unwrap();
        let inv = c.inverse().unwrap();
        assert_eq!(inv.instructions()[0].as_gate(), Some(&Gate::Sdg));
        assert_eq!(inv.instructions()[1].as_gate(), Some(&Gate::H));
    }

    #[test]
    fn inverse_rejects_measurement() {
        let mut c = QuantumCircuit::new(1, 1);
        c.h(0).unwrap().measure(0, 0).unwrap();
        assert_eq!(
            c.inverse().unwrap_err(),
            CircuitError::NotInvertible { op: "measure" }
        );
    }

    #[test]
    fn without_final_measurements_strips_suffix_only() {
        let mut c = QuantumCircuit::new(2, 2);
        c.measure(0, 0).unwrap(); // mid-circuit measurement stays
        c.h(0).unwrap();
        c.measure(0, 0).unwrap();
        c.measure(1, 1).unwrap();
        let trimmed = c.without_final_measurements();
        assert_eq!(trimmed.len(), 2);
        assert_eq!(trimmed.measurement_count(), 1);
    }

    #[test]
    fn has_nonunitary_ops_detection() {
        let mut c = bell();
        assert!(!c.has_nonunitary_ops());
        c.barrier_all();
        assert!(!c.has_nonunitary_ops());
        c.post_select(0, false).unwrap();
        assert!(c.has_nonunitary_ops());
    }

    #[test]
    fn display_lists_instructions() {
        let c = bell();
        let s = c.to_string();
        assert!(s.contains("h q0"));
        assert!(s.contains("cx q0, q1"));
    }

    #[test]
    fn all_parameterized_helpers_apply() {
        let mut c = QuantumCircuit::new(3, 0);
        c.rx(0.1, 0)
            .unwrap()
            .ry(0.2, 0)
            .unwrap()
            .rz(0.3, 1)
            .unwrap()
            .p(0.4, 1)
            .unwrap()
            .u3(0.1, 0.2, 0.3, 2)
            .unwrap()
            .cp(0.5, 0, 1)
            .unwrap()
            .cswap(0, 1, 2)
            .unwrap();
        assert_eq!(c.len(), 7);
    }
}
