//! OpenQASM 2.0 export and import.
//!
//! The exporter targets the `qelib1.inc` gate vocabulary; the importer
//! accepts the same subset plus common aliases (`p`/`u1`, `cp`/`cu1`,
//! `u`/`u3`). Post-selection — which has no QASM representation — round
//! trips through a `// pragma qassert post_select` comment.
//!
//! Classically-conditioned gates are exported by declaring one
//! single-bit classical register per circuit clbit (`creg c3[1];`), since
//! OpenQASM 2 conditions apply to whole registers.

use crate::circuit::QuantumCircuit;
use crate::error::CircuitError;
use crate::gate::Gate;
use crate::instruction::{Condition, Instruction, OpKind};
use crate::register::{ClbitId, QubitId};
use std::fmt;

/// Error produced while parsing OpenQASM source.
#[derive(Clone, Debug, PartialEq)]
pub enum QasmError {
    /// The source is missing the `OPENQASM 2.0;` header.
    MissingHeader,
    /// A statement could not be parsed.
    Malformed {
        /// Line number (1-based).
        line: usize,
        /// Description of the problem.
        reason: String,
    },
    /// A gate name is not in the supported vocabulary.
    UnknownGate {
        /// Line number (1-based).
        line: usize,
        /// The unrecognized name.
        name: String,
    },
    /// A register reference was not declared.
    UnknownRegister {
        /// Line number (1-based).
        line: usize,
        /// The unrecognized register name.
        name: String,
    },
    /// The parsed program failed circuit validation.
    Invalid(CircuitError),
}

impl fmt::Display for QasmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QasmError::MissingHeader => write!(f, "missing OPENQASM 2.0 header"),
            QasmError::Malformed { line, reason } => {
                write!(f, "malformed statement on line {line}: {reason}")
            }
            QasmError::UnknownGate { line, name } => {
                write!(f, "unknown gate '{name}' on line {line}")
            }
            QasmError::UnknownRegister { line, name } => {
                write!(f, "unknown register '{name}' on line {line}")
            }
            QasmError::Invalid(e) => write!(f, "invalid circuit: {e}"),
        }
    }
}

impl std::error::Error for QasmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QasmError::Invalid(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CircuitError> for QasmError {
    fn from(e: CircuitError) -> Self {
        QasmError::Invalid(e)
    }
}

/// Serializes a circuit to OpenQASM 2.0 source.
///
/// # Example
///
/// ```
/// use qcircuit::{QuantumCircuit, qasm};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut c = QuantumCircuit::new(2, 2);
/// c.h(0)?.cx(0, 1)?.measure(0, 0)?;
/// let src = qasm::to_qasm(&c);
/// assert!(src.contains("cx q[0],q[1];"));
/// let back = qasm::from_qasm(&src)?;
/// assert_eq!(back.len(), c.len());
/// # Ok(())
/// # }
/// ```
pub fn to_qasm(circuit: &QuantumCircuit) -> String {
    let mut out = String::from("OPENQASM 2.0;\ninclude \"qelib1.inc\";\n");
    let per_bit_cregs = circuit
        .instructions()
        .iter()
        .any(|i| i.condition().is_some());
    out.push_str(&format!("qreg q[{}];\n", circuit.num_qubits().max(1)));
    if per_bit_cregs {
        for c in 0..circuit.num_clbits() {
            out.push_str(&format!("creg c{c}[1];\n"));
        }
    } else if circuit.num_clbits() > 0 {
        out.push_str(&format!("creg c[{}];\n", circuit.num_clbits()));
    }

    let clbit = |c: ClbitId| {
        if per_bit_cregs {
            format!("c{}[0]", c.index())
        } else {
            format!("c[{}]", c.index())
        }
    };

    for instr in circuit.instructions() {
        if let Some(cond) = instr.condition() {
            out.push_str(&format!(
                "if(c{}=={}) ",
                cond.clbit.index(),
                u8::from(cond.value)
            ));
        }
        match instr.kind() {
            OpKind::Gate(g) => {
                let name = match g {
                    Gate::P(_) => "u1",
                    Gate::Cp(_) => "cu1",
                    other => other.name(),
                };
                let params = g.params();
                if params.is_empty() {
                    out.push_str(name);
                } else {
                    let rendered: Vec<String> = params.iter().map(|p| format!("{p:.17}")).collect();
                    out.push_str(&format!("{name}({})", rendered.join(",")));
                }
                let qs: Vec<String> = instr
                    .qubits()
                    .iter()
                    .map(|q| format!("q[{}]", q.index()))
                    .collect();
                out.push_str(&format!(" {};\n", qs.join(",")));
            }
            OpKind::Measure => {
                out.push_str(&format!(
                    "measure q[{}] -> {};\n",
                    instr.qubits()[0].index(),
                    clbit(instr.clbits()[0])
                ));
            }
            OpKind::Reset => {
                out.push_str(&format!("reset q[{}];\n", instr.qubits()[0].index()));
            }
            OpKind::Barrier => {
                let qs: Vec<String> = instr
                    .qubits()
                    .iter()
                    .map(|q| format!("q[{}]", q.index()))
                    .collect();
                out.push_str(&format!("barrier {};\n", qs.join(",")));
            }
            OpKind::PostSelect { outcome } => {
                out.push_str(&format!(
                    "// pragma qassert post_select q[{}] {}\n",
                    instr.qubits()[0].index(),
                    u8::from(*outcome)
                ));
            }
        }
    }
    out
}

/// A declared register: name and flat offset into the circuit's wires.
struct Register {
    name: String,
    offset: usize,
    size: usize,
}

/// Parses OpenQASM 2.0 source into a circuit.
///
/// Supports the statement subset produced by [`to_qasm`]: register
/// declarations, the qelib1 gates used by this workspace, `measure`,
/// `reset`, `barrier`, single-register `if(c==v)` conditions, and the
/// `post_select` pragma.
///
/// # Errors
///
/// Returns a [`QasmError`] describing the first offending line.
pub fn from_qasm(source: &str) -> Result<QuantumCircuit, QasmError> {
    let mut qregs: Vec<Register> = Vec::new();
    let mut cregs: Vec<Register> = Vec::new();
    let mut num_qubits = 0usize;
    let mut num_clbits = 0usize;
    let mut body: Vec<(usize, String, Option<Condition>)> = Vec::new();
    let mut saw_header = false;
    let mut pragmas: Vec<(usize, String)> = Vec::new();

    for (lineno, raw) in source.lines().enumerate() {
        let lineno = lineno + 1;
        let line = raw.trim();
        if let Some(rest) = line.strip_prefix("// pragma qassert ") {
            pragmas.push((lineno, rest.to_string()));
            continue;
        }
        let line = match line.find("//") {
            Some(pos) => line[..pos].trim(),
            None => line,
        };
        if line.is_empty() {
            continue;
        }
        for stmt in line.split(';') {
            let stmt = stmt.trim();
            if stmt.is_empty() {
                continue;
            }
            if stmt.starts_with("OPENQASM") {
                saw_header = true;
            } else if stmt.starts_with("include") {
                // qelib1.inc is implied.
            } else if let Some(rest) = stmt.strip_prefix("qreg ") {
                let (name, size) = parse_reg_decl(rest, lineno)?;
                qregs.push(Register {
                    name,
                    offset: num_qubits,
                    size,
                });
                num_qubits += size;
            } else if let Some(rest) = stmt.strip_prefix("creg ") {
                let (name, size) = parse_reg_decl(rest, lineno)?;
                cregs.push(Register {
                    name,
                    offset: num_clbits,
                    size,
                });
                num_clbits += size;
            } else {
                body.push((lineno, stmt.to_string(), None));
            }
        }
    }
    if !saw_header {
        return Err(QasmError::MissingHeader);
    }

    let mut circuit = QuantumCircuit::new(num_qubits, num_clbits);

    let lookup_q =
        |name: &str, idx: usize, line: usize| -> Result<QubitId, QasmError> {
            let reg = qregs.iter().find(|r| r.name == name).ok_or_else(|| {
                QasmError::UnknownRegister {
                    line,
                    name: name.to_string(),
                }
            })?;
            if idx >= reg.size {
                return Err(QasmError::Malformed {
                    line,
                    reason: format!("index {idx} out of range for register {name}[{}]", reg.size),
                });
            }
            Ok(QubitId::from(reg.offset + idx))
        };
    let lookup_c =
        |name: &str, idx: usize, line: usize| -> Result<ClbitId, QasmError> {
            let reg = cregs.iter().find(|r| r.name == name).ok_or_else(|| {
                QasmError::UnknownRegister {
                    line,
                    name: name.to_string(),
                }
            })?;
            if idx >= reg.size {
                return Err(QasmError::Malformed {
                    line,
                    reason: format!("index {idx} out of range for register {name}[{}]", reg.size),
                });
            }
            Ok(ClbitId::from(reg.offset + idx))
        };

    // Interleave pragmas back into the body by line number.
    let mut stream: Vec<(usize, String)> = body
        .into_iter()
        .map(|(l, s, _)| (l, s))
        .chain(pragmas.into_iter().map(|(l, p)| (l, format!("@{p}"))))
        .collect();
    stream.sort_by_key(|(l, _)| *l);

    for (line, stmt) in stream {
        if let Some(p) = stmt.strip_prefix('@') {
            // post_select q[i] v
            let parts: Vec<&str> = p.split_whitespace().collect();
            if parts.len() != 3 || parts[0] != "post_select" {
                return Err(QasmError::Malformed {
                    line,
                    reason: format!("unrecognized pragma '{p}'"),
                });
            }
            let (name, idx) = parse_indexed(parts[1], line)?;
            let q = lookup_q(&name, idx, line)?;
            let outcome = parts[2] == "1";
            circuit.append(Instruction::post_select(q, outcome))?;
            continue;
        }

        let (stmt, condition) = if let Some(rest) = stmt.strip_prefix("if(") {
            let close = rest.find(')').ok_or_else(|| QasmError::Malformed {
                line,
                reason: "unterminated if(...)".to_string(),
            })?;
            let cond_src = &rest[..close];
            let tail = rest[close + 1..].trim().to_string();
            let eq = cond_src.find("==").ok_or_else(|| QasmError::Malformed {
                line,
                reason: "condition must use ==".to_string(),
            })?;
            let reg_name = cond_src[..eq].trim();
            let value: u64 =
                cond_src[eq + 2..]
                    .trim()
                    .parse()
                    .map_err(|_| QasmError::Malformed {
                        line,
                        reason: "condition value must be an integer".to_string(),
                    })?;
            let clbit = lookup_c(reg_name, 0, line)?;
            (
                tail,
                Some(Condition {
                    clbit,
                    value: value != 0,
                }),
            )
        } else {
            (stmt, None)
        };

        if let Some(rest) = stmt.strip_prefix("measure ") {
            let arrow = rest.find("->").ok_or_else(|| QasmError::Malformed {
                line,
                reason: "measure requires '->'".to_string(),
            })?;
            let (qname, qidx) = parse_indexed(rest[..arrow].trim(), line)?;
            let (cname, cidx) = parse_indexed(rest[arrow + 2..].trim(), line)?;
            let instr =
                Instruction::measure(lookup_q(&qname, qidx, line)?, lookup_c(&cname, cidx, line)?);
            circuit.append(instr)?;
            continue;
        }
        if let Some(rest) = stmt.strip_prefix("reset ") {
            let (qname, qidx) = parse_indexed(rest.trim(), line)?;
            let mut instr = Instruction::reset(lookup_q(&qname, qidx, line)?);
            if let Some(c) = condition {
                instr = instr.with_condition(c);
            }
            circuit.append(instr)?;
            continue;
        }
        if let Some(rest) = stmt.strip_prefix("barrier ") {
            let mut qs = Vec::new();
            for operand in rest.split(',') {
                let (qname, qidx) = parse_indexed(operand.trim(), line)?;
                qs.push(lookup_q(&qname, qidx, line)?);
            }
            circuit.append(Instruction::barrier(qs))?;
            continue;
        }

        // Gate application: name[(params)] operands
        let (head, operands) = match stmt.find(' ') {
            Some(pos) => (&stmt[..pos], stmt[pos + 1..].trim()),
            None => {
                return Err(QasmError::Malformed {
                    line,
                    reason: format!("unrecognized statement '{stmt}'"),
                })
            }
        };
        let (name, params) = if let Some(open) = head.find('(') {
            let close = head.rfind(')').ok_or_else(|| QasmError::Malformed {
                line,
                reason: "unterminated parameter list".to_string(),
            })?;
            let params: Result<Vec<f64>, QasmError> = head[open + 1..close]
                .split(',')
                .map(|e| {
                    parse_param_expr(e).map_err(|reason| QasmError::Malformed { line, reason })
                })
                .collect();
            (&head[..open], params?)
        } else {
            (head, Vec::new())
        };

        let gate = gate_from_name(name, &params).ok_or_else(|| QasmError::UnknownGate {
            line,
            name: name.to_string(),
        })?;
        let mut qs = Vec::new();
        for operand in operands.split(',') {
            let (qname, qidx) = parse_indexed(operand.trim(), line)?;
            qs.push(lookup_q(&qname, qidx, line)?);
        }
        let mut instr = Instruction::gate(gate, qs);
        if let Some(c) = condition {
            instr = instr.with_condition(c);
        }
        circuit.append(instr)?;
    }

    Ok(circuit)
}

/// Parses `name[size]` from a register declaration.
fn parse_reg_decl(src: &str, line: usize) -> Result<(String, usize), QasmError> {
    let (name, idx) = parse_indexed(src.trim(), line)?;
    Ok((name, idx))
}

/// Parses `name[index]` into its parts.
fn parse_indexed(src: &str, line: usize) -> Result<(String, usize), QasmError> {
    let open = src.find('[').ok_or_else(|| QasmError::Malformed {
        line,
        reason: format!("expected name[index], got '{src}'"),
    })?;
    let close = src.rfind(']').ok_or_else(|| QasmError::Malformed {
        line,
        reason: format!("missing ']' in '{src}'"),
    })?;
    let name = src[..open].trim().to_string();
    let idx: usize = src[open + 1..close]
        .trim()
        .parse()
        .map_err(|_| QasmError::Malformed {
            line,
            reason: format!("index in '{src}' is not an integer"),
        })?;
    Ok((name, idx))
}

/// Maps a QASM gate name plus parsed parameters onto [`Gate`].
fn gate_from_name(name: &str, params: &[f64]) -> Option<Gate> {
    let g = match (name, params.len()) {
        ("id", 0) => Gate::I,
        ("x", 0) => Gate::X,
        ("y", 0) => Gate::Y,
        ("z", 0) => Gate::Z,
        ("h", 0) => Gate::H,
        ("s", 0) => Gate::S,
        ("sdg", 0) => Gate::Sdg,
        ("t", 0) => Gate::T,
        ("tdg", 0) => Gate::Tdg,
        ("sx", 0) => Gate::Sx,
        ("sxdg", 0) => Gate::Sxdg,
        ("rx", 1) => Gate::Rx(params[0]),
        ("ry", 1) => Gate::Ry(params[0]),
        ("rz", 1) => Gate::Rz(params[0]),
        ("p" | "u1", 1) => Gate::P(params[0]),
        ("u3" | "u", 3) => Gate::U3(params[0], params[1], params[2]),
        ("cx", 0) => Gate::Cx,
        ("cy", 0) => Gate::Cy,
        ("cz", 0) => Gate::Cz,
        ("ch", 0) => Gate::Ch,
        ("cp" | "cu1", 1) => Gate::Cp(params[0]),
        ("swap", 0) => Gate::Swap,
        ("ccx", 0) => Gate::Ccx,
        ("cswap", 0) => Gate::Cswap,
        _ => return None,
    };
    Some(g)
}

/// Evaluates a QASM parameter expression: numbers, `pi`, unary minus,
/// `+ - * /`, and parentheses.
fn parse_param_expr(src: &str) -> Result<f64, String> {
    let tokens = tokenize(src)?;
    let mut pos = 0;
    let v = parse_sum(&tokens, &mut pos)?;
    if pos != tokens.len() {
        return Err(format!("trailing tokens in expression '{src}'"));
    }
    Ok(v)
}

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Num(f64),
    Pi,
    Plus,
    Minus,
    Star,
    Slash,
    LParen,
    RParen,
}

fn tokenize(src: &str) -> Result<Vec<Tok>, String> {
    let mut out = Vec::new();
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            ' ' | '\t' => i += 1,
            '+' => {
                out.push(Tok::Plus);
                i += 1;
            }
            '-' => {
                out.push(Tok::Minus);
                i += 1;
            }
            '*' => {
                out.push(Tok::Star);
                i += 1;
            }
            '/' => {
                out.push(Tok::Slash);
                i += 1;
            }
            '(' => {
                out.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                out.push(Tok::RParen);
                i += 1;
            }
            'p' if chars.get(i + 1) == Some(&'i') => {
                out.push(Tok::Pi);
                i += 2;
            }
            c if c.is_ascii_digit() || c == '.' => {
                let start = i;
                while i < chars.len()
                    && (chars[i].is_ascii_digit()
                        || chars[i] == '.'
                        || chars[i] == 'e'
                        || chars[i] == 'E'
                        || (i > start
                            && (chars[i] == '+' || chars[i] == '-')
                            && matches!(chars[i - 1], 'e' | 'E')))
                {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                let v: f64 = text.parse().map_err(|_| format!("bad number '{text}'"))?;
                out.push(Tok::Num(v));
            }
            other => return Err(format!("unexpected character '{other}'")),
        }
    }
    Ok(out)
}

fn parse_sum(tokens: &[Tok], pos: &mut usize) -> Result<f64, String> {
    let mut acc = parse_product(tokens, pos)?;
    while let Some(tok) = tokens.get(*pos) {
        match tok {
            Tok::Plus => {
                *pos += 1;
                acc += parse_product(tokens, pos)?;
            }
            Tok::Minus => {
                *pos += 1;
                acc -= parse_product(tokens, pos)?;
            }
            _ => break,
        }
    }
    Ok(acc)
}

fn parse_product(tokens: &[Tok], pos: &mut usize) -> Result<f64, String> {
    let mut acc = parse_atom(tokens, pos)?;
    while let Some(tok) = tokens.get(*pos) {
        match tok {
            Tok::Star => {
                *pos += 1;
                acc *= parse_atom(tokens, pos)?;
            }
            Tok::Slash => {
                *pos += 1;
                acc /= parse_atom(tokens, pos)?;
            }
            _ => break,
        }
    }
    Ok(acc)
}

fn parse_atom(tokens: &[Tok], pos: &mut usize) -> Result<f64, String> {
    match tokens.get(*pos) {
        Some(Tok::Num(v)) => {
            *pos += 1;
            Ok(*v)
        }
        Some(Tok::Pi) => {
            *pos += 1;
            Ok(std::f64::consts::PI)
        }
        Some(Tok::Minus) => {
            *pos += 1;
            Ok(-parse_atom(tokens, pos)?)
        }
        Some(Tok::Plus) => {
            *pos += 1;
            parse_atom(tokens, pos)
        }
        Some(Tok::LParen) => {
            *pos += 1;
            let v = parse_sum(tokens, pos)?;
            if tokens.get(*pos) != Some(&Tok::RParen) {
                return Err("missing closing parenthesis".to_string());
            }
            *pos += 1;
            Ok(v)
        }
        other => Err(format!("unexpected token {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn sample() -> QuantumCircuit {
        let mut c = QuantumCircuit::new(3, 3);
        c.h(0)
            .unwrap()
            .cx(0, 1)
            .unwrap()
            .rx(0.25, 2)
            .unwrap()
            .u3(0.1, 0.2, 0.3, 2)
            .unwrap()
            .cp(1.5, 0, 2)
            .unwrap()
            .barrier([0usize, 1, 2])
            .unwrap()
            .measure(0, 0)
            .unwrap()
            .measure(1, 1)
            .unwrap();
        c
    }

    #[test]
    fn export_contains_expected_statements() {
        let src = to_qasm(&sample());
        assert!(src.starts_with("OPENQASM 2.0;"));
        assert!(src.contains("qreg q[3];"));
        assert!(src.contains("creg c[3];"));
        assert!(src.contains("h q[0];"));
        assert!(src.contains("cx q[0],q[1];"));
        assert!(src.contains("measure q[0] -> c[0];"));
        assert!(src.contains("barrier q[0],q[1],q[2];"));
    }

    #[test]
    fn round_trip_preserves_instruction_stream() {
        let original = sample();
        let parsed = from_qasm(&to_qasm(&original)).unwrap();
        assert_eq!(parsed.num_qubits(), original.num_qubits());
        assert_eq!(parsed.num_clbits(), original.num_clbits());
        assert_eq!(parsed.len(), original.len());
        for (a, b) in original.instructions().iter().zip(parsed.instructions()) {
            match (a.as_gate(), b.as_gate()) {
                (Some(ga), Some(gb)) => {
                    assert_eq!(ga.name(), gb.name());
                    for (pa, pb) in ga.params().iter().zip(gb.params()) {
                        assert!((pa - pb).abs() < 1e-12);
                    }
                }
                _ => assert_eq!(a.kind().name(), b.kind().name()),
            }
            assert_eq!(a.qubits(), b.qubits());
            assert_eq!(a.clbits(), b.clbits());
        }
    }

    #[test]
    fn conditions_round_trip_via_per_bit_registers() {
        let mut c = QuantumCircuit::new(2, 2);
        c.measure(0, 1).unwrap();
        c.gate_if(Gate::X, [1], 1, true).unwrap();
        let src = to_qasm(&c);
        assert!(src.contains("creg c1[1];"));
        assert!(src.contains("if(c1==1) x q[1];"));
        let parsed = from_qasm(&src).unwrap();
        let cond = parsed.instructions()[1].condition().unwrap();
        assert_eq!(cond.clbit.index(), 1);
        assert!(cond.value);
    }

    #[test]
    fn post_select_round_trips_through_pragma() {
        let mut c = QuantumCircuit::new(1, 0);
        c.h(0).unwrap().post_select(0, true).unwrap();
        let src = to_qasm(&c);
        assert!(src.contains("// pragma qassert post_select q[0] 1"));
        let parsed = from_qasm(&src).unwrap();
        assert_eq!(
            parsed.instructions()[1].kind(),
            &OpKind::PostSelect { outcome: true }
        );
    }

    #[test]
    fn missing_header_is_rejected() {
        assert_eq!(
            from_qasm("qreg q[1];\nh q[0];"),
            Err(QasmError::MissingHeader)
        );
    }

    #[test]
    fn unknown_gate_is_reported_with_line() {
        let src = "OPENQASM 2.0;\nqreg q[1];\nfrobnicate q[0];";
        match from_qasm(src) {
            Err(QasmError::UnknownGate { line, name }) => {
                assert_eq!(line, 3);
                assert_eq!(name, "frobnicate");
            }
            other => panic!("expected UnknownGate, got {other:?}"),
        }
    }

    #[test]
    fn unknown_register_is_reported() {
        let src = "OPENQASM 2.0;\nqreg q[1];\nh r[0];";
        assert!(matches!(
            from_qasm(src),
            Err(QasmError::UnknownRegister { .. })
        ));
    }

    #[test]
    fn index_out_of_range_is_reported() {
        let src = "OPENQASM 2.0;\nqreg q[1];\nh q[3];";
        assert!(matches!(from_qasm(src), Err(QasmError::Malformed { .. })));
    }

    #[test]
    fn pi_expressions_evaluate() {
        assert!((parse_param_expr("pi").unwrap() - PI).abs() < 1e-15);
        assert!((parse_param_expr("pi/2").unwrap() - PI / 2.0).abs() < 1e-15);
        assert!((parse_param_expr("-pi/4").unwrap() + PI / 4.0).abs() < 1e-15);
        assert!((parse_param_expr("3*pi/2").unwrap() - 3.0 * PI / 2.0).abs() < 1e-15);
        assert!((parse_param_expr("0.5").unwrap() - 0.5).abs() < 1e-15);
        assert!((parse_param_expr("1e-3").unwrap() - 1e-3).abs() < 1e-18);
        assert!((parse_param_expr("(pi+1)/2").unwrap() - (PI + 1.0) / 2.0).abs() < 1e-15);
        assert!((parse_param_expr("1-2").unwrap() + 1.0).abs() < 1e-15);
    }

    #[test]
    fn bad_expressions_are_rejected() {
        assert!(parse_param_expr("pi pi").is_err());
        assert!(parse_param_expr("(1").is_err());
        assert!(parse_param_expr("&").is_err());
        assert!(parse_param_expr("").is_err());
    }

    #[test]
    fn gates_with_pi_params_parse() {
        let src = "OPENQASM 2.0;\nqreg q[1];\nrx(pi/2) q[0];\nu3(pi,0,pi) q[0];";
        let c = from_qasm(src).unwrap();
        assert_eq!(c.len(), 2);
        match c.instructions()[0].as_gate() {
            Some(Gate::Rx(t)) => assert!((t - PI / 2.0).abs() < 1e-15),
            other => panic!("expected rx, got {other:?}"),
        }
    }

    #[test]
    fn multiple_registers_map_to_flat_indices() {
        let src =
            "OPENQASM 2.0;\nqreg a[1];\nqreg b[2];\ncreg m[2];\nh b[1];\nmeasure b[1] -> m[0];";
        let c = from_qasm(src).unwrap();
        // a occupies index 0, b occupies 1..3, so b[1] is flat qubit 2.
        assert_eq!(c.instructions()[0].qubits()[0].index(), 2);
    }

    #[test]
    fn u_and_p_aliases_are_accepted() {
        let src = "OPENQASM 2.0;\nqreg q[1];\np(0.5) q[0];\nu(0.1,0.2,0.3) q[0];\nu1(0.4) q[0];";
        let c = from_qasm(src).unwrap();
        assert_eq!(c.len(), 3);
    }
}
