//! OpenQASM 2.0 export and import.
//!
//! The exporter targets the `qelib1.inc` gate vocabulary; the importer
//! accepts the same subset plus common aliases (`p`/`u1`, `cp`/`cu1`,
//! `u`/`u3`). Post-selection — which has no QASM representation — round
//! trips through a `// pragma qassert post_select` comment.
//!
//! Classically-conditioned gates are exported by declaring one
//! single-bit classical register per circuit clbit (`creg c3[1];`), since
//! OpenQASM 2 conditions apply to whole registers.
//!
//! Parse failures are always a typed [`QasmError`] carrying a
//! [`Span`] (1-based line and column of the offending token), never a
//! panic — services that accept QASM over the wire turn them into
//! structured 400 bodies.

use crate::circuit::QuantumCircuit;
use crate::error::CircuitError;
use crate::gate::Gate;
use crate::instruction::{Condition, Instruction, OpKind};
use crate::register::{ClbitId, QubitId};
use std::fmt;

/// A source location: 1-based line and 1-based byte column.
///
/// Columns count bytes from the start of the line (identical to
/// character columns for the ASCII sources OpenQASM 2.0 programs are in
/// practice).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    /// Line number (1-based).
    pub line: usize,
    /// Byte column within the line (1-based).
    pub col: usize,
}

impl Span {
    /// A span at `line:col`.
    pub fn new(line: usize, col: usize) -> Self {
        Span { line, col }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}, col {}", self.line, self.col)
    }
}

/// The span of `token` given the span of the `parent` slice that
/// contains it (`token` must be a subslice of `parent`).
fn sub_span(parent: &str, token: &str, parent_span: Span) -> Span {
    let rel = (token.as_ptr() as usize).saturating_sub(parent.as_ptr() as usize);
    Span {
        line: parent_span.line,
        col: parent_span.col + rel,
    }
}

/// Error produced while parsing OpenQASM source.
#[derive(Clone, Debug, PartialEq)]
pub enum QasmError {
    /// The source is missing the `OPENQASM 2.0;` header.
    MissingHeader,
    /// A statement could not be parsed.
    Malformed {
        /// Location of the offending statement or token.
        span: Span,
        /// Description of the problem.
        reason: String,
    },
    /// A gate name is not in the supported vocabulary.
    UnknownGate {
        /// Location of the gate name.
        span: Span,
        /// The unrecognized name.
        name: String,
    },
    /// A register reference was not declared.
    UnknownRegister {
        /// Location of the register reference.
        span: Span,
        /// The unrecognized register name.
        name: String,
    },
    /// The parsed program failed circuit validation.
    Invalid(CircuitError),
}

impl QasmError {
    /// The source location of the failure, when it has one
    /// ([`QasmError::MissingHeader`] and [`QasmError::Invalid`] are
    /// whole-program conditions).
    pub fn span(&self) -> Option<Span> {
        match self {
            QasmError::Malformed { span, .. }
            | QasmError::UnknownGate { span, .. }
            | QasmError::UnknownRegister { span, .. } => Some(*span),
            QasmError::MissingHeader | QasmError::Invalid(_) => None,
        }
    }
}

impl fmt::Display for QasmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QasmError::MissingHeader => write!(f, "missing OPENQASM 2.0 header"),
            QasmError::Malformed { span, reason } => {
                write!(f, "malformed statement at {span}: {reason}")
            }
            QasmError::UnknownGate { span, name } => {
                write!(f, "unknown gate '{name}' at {span}")
            }
            QasmError::UnknownRegister { span, name } => {
                write!(f, "unknown register '{name}' at {span}")
            }
            QasmError::Invalid(e) => write!(f, "invalid circuit: {e}"),
        }
    }
}

impl std::error::Error for QasmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QasmError::Invalid(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CircuitError> for QasmError {
    fn from(e: CircuitError) -> Self {
        QasmError::Invalid(e)
    }
}

/// Serializes a circuit to OpenQASM 2.0 source.
///
/// # Example
///
/// ```
/// use qcircuit::{QuantumCircuit, qasm};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut c = QuantumCircuit::new(2, 2);
/// c.h(0)?.cx(0, 1)?.measure(0, 0)?;
/// let src = qasm::to_qasm(&c);
/// assert!(src.contains("cx q[0],q[1];"));
/// let back = qasm::from_qasm(&src)?;
/// assert_eq!(back.len(), c.len());
/// # Ok(())
/// # }
/// ```
pub fn to_qasm(circuit: &QuantumCircuit) -> String {
    let mut out = String::from("OPENQASM 2.0;\ninclude \"qelib1.inc\";\n");
    let per_bit_cregs = circuit
        .instructions()
        .iter()
        .any(|i| i.condition().is_some());
    out.push_str(&format!("qreg q[{}];\n", circuit.num_qubits().max(1)));
    if per_bit_cregs {
        for c in 0..circuit.num_clbits() {
            out.push_str(&format!("creg c{c}[1];\n"));
        }
    } else if circuit.num_clbits() > 0 {
        out.push_str(&format!("creg c[{}];\n", circuit.num_clbits()));
    }

    let clbit = |c: ClbitId| {
        if per_bit_cregs {
            format!("c{}[0]", c.index())
        } else {
            format!("c[{}]", c.index())
        }
    };

    for instr in circuit.instructions() {
        if let Some(cond) = instr.condition() {
            out.push_str(&format!(
                "if(c{}=={}) ",
                cond.clbit.index(),
                u8::from(cond.value)
            ));
        }
        match instr.kind() {
            OpKind::Gate(g) => {
                let name = match g {
                    Gate::P(_) => "u1",
                    Gate::Cp(_) => "cu1",
                    other => other.name(),
                };
                let params = g.params();
                if params.is_empty() {
                    out.push_str(name);
                } else {
                    let rendered: Vec<String> = params.iter().map(|p| format!("{p:.17}")).collect();
                    out.push_str(&format!("{name}({})", rendered.join(",")));
                }
                let qs: Vec<String> = instr
                    .qubits()
                    .iter()
                    .map(|q| format!("q[{}]", q.index()))
                    .collect();
                out.push_str(&format!(" {};\n", qs.join(",")));
            }
            OpKind::Measure => {
                out.push_str(&format!(
                    "measure q[{}] -> {};\n",
                    instr.qubits()[0].index(),
                    clbit(instr.clbits()[0])
                ));
            }
            OpKind::Reset => {
                out.push_str(&format!("reset q[{}];\n", instr.qubits()[0].index()));
            }
            OpKind::Barrier => {
                let qs: Vec<String> = instr
                    .qubits()
                    .iter()
                    .map(|q| format!("q[{}]", q.index()))
                    .collect();
                out.push_str(&format!("barrier {};\n", qs.join(",")));
            }
            OpKind::PostSelect { outcome } => {
                out.push_str(&format!(
                    "// pragma qassert post_select q[{}] {}\n",
                    instr.qubits()[0].index(),
                    u8::from(*outcome)
                ));
            }
        }
    }
    out
}

/// A declared register: name and flat offset into the circuit's wires.
struct Register {
    name: String,
    offset: usize,
    size: usize,
}

/// One body statement awaiting the second parse pass.
enum Stmt {
    /// A `// pragma qassert …` directive (the pragma text, prefix
    /// stripped).
    Pragma(String),
    /// An ordinary `;`-terminated statement.
    Code(String),
}

/// Parses OpenQASM 2.0 source into a circuit.
///
/// Supports the statement subset produced by [`to_qasm`]: register
/// declarations, the qelib1 gates used by this workspace, `measure`,
/// `reset`, `barrier`, single-register `if(c==v)` conditions, and the
/// `post_select` pragma.
///
/// # Errors
///
/// Returns a [`QasmError`] describing the first offending statement,
/// with the [`Span`] (line and column) of the token that broke. Never
/// panics on malformed input.
pub fn from_qasm(source: &str) -> Result<QuantumCircuit, QasmError> {
    let mut qregs: Vec<Register> = Vec::new();
    let mut cregs: Vec<Register> = Vec::new();
    let mut num_qubits = 0usize;
    let mut num_clbits = 0usize;
    let mut stream: Vec<(Span, Stmt)> = Vec::new();
    let mut saw_header = false;

    for (lineno, raw) in source.lines().enumerate() {
        let lineno = lineno + 1;
        let line_span = |token: &str| sub_span(raw, token, Span::new(lineno, 1));
        let line = raw.trim();
        if let Some(rest) = line.strip_prefix("// pragma qassert ") {
            stream.push((line_span(rest), Stmt::Pragma(rest.to_string())));
            continue;
        }
        let line = match line.find("//") {
            Some(pos) => line[..pos].trim(),
            None => line,
        };
        if line.is_empty() {
            continue;
        }
        for stmt in line.split(';') {
            let stmt = stmt.trim();
            if stmt.is_empty() {
                continue;
            }
            let span = line_span(stmt);
            if stmt.starts_with("OPENQASM") {
                saw_header = true;
            } else if stmt.starts_with("include") {
                // qelib1.inc is implied.
            } else if let Some(rest) = stmt.strip_prefix("qreg ") {
                let (name, size) = parse_reg_decl(rest, line_span(rest))?;
                qregs.push(Register {
                    name,
                    offset: num_qubits,
                    size,
                });
                num_qubits += size;
            } else if let Some(rest) = stmt.strip_prefix("creg ") {
                let (name, size) = parse_reg_decl(rest, line_span(rest))?;
                cregs.push(Register {
                    name,
                    offset: num_clbits,
                    size,
                });
                num_clbits += size;
            } else {
                stream.push((span, Stmt::Code(stmt.to_string())));
            }
        }
    }
    if !saw_header {
        return Err(QasmError::MissingHeader);
    }

    let mut circuit = QuantumCircuit::new(num_qubits, num_clbits);

    let lookup_q =
        |name: &str, idx: usize, span: Span| -> Result<QubitId, QasmError> {
            let reg = qregs.iter().find(|r| r.name == name).ok_or_else(|| {
                QasmError::UnknownRegister {
                    span,
                    name: name.to_string(),
                }
            })?;
            if idx >= reg.size {
                return Err(QasmError::Malformed {
                    span,
                    reason: format!("index {idx} out of range for register {name}[{}]", reg.size),
                });
            }
            Ok(QubitId::from(reg.offset + idx))
        };
    let lookup_c =
        |name: &str, idx: usize, span: Span| -> Result<ClbitId, QasmError> {
            let reg = cregs.iter().find(|r| r.name == name).ok_or_else(|| {
                QasmError::UnknownRegister {
                    span,
                    name: name.to_string(),
                }
            })?;
            if idx >= reg.size {
                return Err(QasmError::Malformed {
                    span,
                    reason: format!("index {idx} out of range for register {name}[{}]", reg.size),
                });
            }
            Ok(ClbitId::from(reg.offset + idx))
        };

    for (span, stmt) in stream {
        match stmt {
            Stmt::Pragma(p) => {
                // post_select q[i] v
                let parts: Vec<&str> = p.split_whitespace().collect();
                if parts.len() != 3 || parts[0] != "post_select" {
                    return Err(QasmError::Malformed {
                        span,
                        reason: format!("unrecognized pragma '{p}'"),
                    });
                }
                let operand_span = sub_span(&p, parts[1], span);
                let (name, idx) = parse_indexed(parts[1], operand_span)?;
                let q = lookup_q(&name, idx, operand_span)?;
                let outcome = parts[2] == "1";
                circuit.append(Instruction::post_select(q, outcome))?;
            }
            Stmt::Code(stmt) => {
                parse_code_statement(&stmt, span, &mut circuit, &lookup_q, &lookup_c)?;
            }
        }
    }

    Ok(circuit)
}

/// Parses one non-pragma body statement (gate application, `measure`,
/// `reset`, `barrier`, optionally behind an `if(c==v)` condition) and
/// appends it to `circuit`.
fn parse_code_statement(
    stmt: &str,
    span: Span,
    circuit: &mut QuantumCircuit,
    lookup_q: &impl Fn(&str, usize, Span) -> Result<QubitId, QasmError>,
    lookup_c: &impl Fn(&str, usize, Span) -> Result<ClbitId, QasmError>,
) -> Result<(), QasmError> {
    let whole = stmt;
    let token_span = |token: &str| sub_span(whole, token, span);

    let (stmt, condition) = if let Some(rest) = stmt.strip_prefix("if(") {
        let close = rest.find(')').ok_or_else(|| QasmError::Malformed {
            span,
            reason: "unterminated if(...)".to_string(),
        })?;
        let cond_src = &rest[..close];
        let tail = rest[close + 1..].trim();
        let eq = cond_src.find("==").ok_or_else(|| QasmError::Malformed {
            span: token_span(cond_src),
            reason: "condition must use ==".to_string(),
        })?;
        let reg_name = cond_src[..eq].trim();
        let value_src = cond_src[eq + 2..].trim();
        let value: u64 = value_src.parse().map_err(|_| QasmError::Malformed {
            span: token_span(value_src),
            reason: "condition value must be an integer".to_string(),
        })?;
        let clbit = lookup_c(reg_name, 0, token_span(reg_name))?;
        (
            tail,
            Some(Condition {
                clbit,
                value: value != 0,
            }),
        )
    } else {
        (stmt, None)
    };
    let span = token_span(stmt);

    if let Some(rest) = stmt.strip_prefix("measure ") {
        let arrow = rest.find("->").ok_or_else(|| QasmError::Malformed {
            span,
            reason: "measure requires '->'".to_string(),
        })?;
        let q_src = rest[..arrow].trim();
        let c_src = rest[arrow + 2..].trim();
        let (qname, qidx) = parse_indexed(q_src, token_span(q_src))?;
        let (cname, cidx) = parse_indexed(c_src, token_span(c_src))?;
        let instr = Instruction::measure(
            lookup_q(&qname, qidx, token_span(q_src))?,
            lookup_c(&cname, cidx, token_span(c_src))?,
        );
        circuit.append(instr)?;
        return Ok(());
    }
    if let Some(rest) = stmt.strip_prefix("reset ") {
        let operand = rest.trim();
        let (qname, qidx) = parse_indexed(operand, token_span(operand))?;
        let mut instr = Instruction::reset(lookup_q(&qname, qidx, token_span(operand))?);
        if let Some(c) = condition {
            instr = instr.with_condition(c);
        }
        circuit.append(instr)?;
        return Ok(());
    }
    if let Some(rest) = stmt.strip_prefix("barrier ") {
        let mut qs = Vec::new();
        for operand in rest.split(',') {
            let operand = operand.trim();
            let (qname, qidx) = parse_indexed(operand, token_span(operand))?;
            qs.push(lookup_q(&qname, qidx, token_span(operand))?);
        }
        circuit.append(Instruction::barrier(qs))?;
        return Ok(());
    }

    // Gate application: name[(params)] operands
    let (head, operands) = match stmt.find(' ') {
        Some(pos) => (&stmt[..pos], stmt[pos + 1..].trim()),
        None => {
            return Err(QasmError::Malformed {
                span,
                reason: format!("unrecognized statement '{stmt}'"),
            })
        }
    };
    let (name, params) = if let Some(open) = head.find('(') {
        let close = head
            .rfind(')')
            .filter(|close| *close > open)
            .ok_or_else(|| QasmError::Malformed {
                span: token_span(head),
                reason: "unterminated parameter list".to_string(),
            })?;
        let param_src = &head[open + 1..close];
        let params: Result<Vec<f64>, QasmError> = param_src
            .split(',')
            .map(|e| {
                parse_param_expr(e).map_err(|reason| QasmError::Malformed {
                    span: token_span(e),
                    reason,
                })
            })
            .collect();
        (&head[..open], params?)
    } else {
        (head, Vec::new())
    };

    let gate = gate_from_name(name, &params).ok_or_else(|| QasmError::UnknownGate {
        span: token_span(name),
        name: name.to_string(),
    })?;
    let mut qs = Vec::new();
    for operand in operands.split(',') {
        let operand = operand.trim();
        let (qname, qidx) = parse_indexed(operand, token_span(operand))?;
        qs.push(lookup_q(&qname, qidx, token_span(operand))?);
    }
    let mut instr = Instruction::gate(gate, qs);
    if let Some(c) = condition {
        instr = instr.with_condition(c);
    }
    circuit.append(instr)?;
    Ok(())
}

/// Parses `name[size]` from a register declaration.
fn parse_reg_decl(src: &str, span: Span) -> Result<(String, usize), QasmError> {
    let (name, idx) = parse_indexed(src.trim(), span)?;
    Ok((name, idx))
}

/// Parses `name[index]` into its parts.
fn parse_indexed(src: &str, span: Span) -> Result<(String, usize), QasmError> {
    let open = src.find('[').ok_or_else(|| QasmError::Malformed {
        span,
        reason: format!("expected name[index], got '{src}'"),
    })?;
    let close = src
        .rfind(']')
        .filter(|close| *close > open)
        .ok_or_else(|| QasmError::Malformed {
            span,
            reason: format!("missing ']' in '{src}'"),
        })?;
    let name = src[..open].trim().to_string();
    let idx_src = src[open + 1..close].trim();
    let idx: usize = idx_src.parse().map_err(|_| QasmError::Malformed {
        span: sub_span(src, idx_src, span),
        reason: format!("index in '{src}' is not an integer"),
    })?;
    Ok((name, idx))
}

/// Maps a QASM gate name plus parsed parameters onto [`Gate`].
fn gate_from_name(name: &str, params: &[f64]) -> Option<Gate> {
    let g = match (name, params.len()) {
        ("id", 0) => Gate::I,
        ("x", 0) => Gate::X,
        ("y", 0) => Gate::Y,
        ("z", 0) => Gate::Z,
        ("h", 0) => Gate::H,
        ("s", 0) => Gate::S,
        ("sdg", 0) => Gate::Sdg,
        ("t", 0) => Gate::T,
        ("tdg", 0) => Gate::Tdg,
        ("sx", 0) => Gate::Sx,
        ("sxdg", 0) => Gate::Sxdg,
        ("rx", 1) => Gate::Rx(params[0]),
        ("ry", 1) => Gate::Ry(params[0]),
        ("rz", 1) => Gate::Rz(params[0]),
        ("p" | "u1", 1) => Gate::P(params[0]),
        ("u3" | "u", 3) => Gate::U3(params[0], params[1], params[2]),
        ("cx", 0) => Gate::Cx,
        ("cy", 0) => Gate::Cy,
        ("cz", 0) => Gate::Cz,
        ("ch", 0) => Gate::Ch,
        ("cp" | "cu1", 1) => Gate::Cp(params[0]),
        ("swap", 0) => Gate::Swap,
        ("ccx", 0) => Gate::Ccx,
        ("cswap", 0) => Gate::Cswap,
        _ => return None,
    };
    Some(g)
}

/// Evaluates a QASM parameter expression: numbers, `pi`, unary minus,
/// `+ - * /`, and parentheses.
fn parse_param_expr(src: &str) -> Result<f64, String> {
    let tokens = tokenize(src)?;
    let mut pos = 0;
    let v = parse_sum(&tokens, &mut pos)?;
    if pos != tokens.len() {
        return Err(format!("trailing tokens in expression '{src}'"));
    }
    Ok(v)
}

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Num(f64),
    Pi,
    Plus,
    Minus,
    Star,
    Slash,
    LParen,
    RParen,
}

fn tokenize(src: &str) -> Result<Vec<Tok>, String> {
    let mut out = Vec::new();
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            ' ' | '\t' => i += 1,
            '+' => {
                out.push(Tok::Plus);
                i += 1;
            }
            '-' => {
                out.push(Tok::Minus);
                i += 1;
            }
            '*' => {
                out.push(Tok::Star);
                i += 1;
            }
            '/' => {
                out.push(Tok::Slash);
                i += 1;
            }
            '(' => {
                out.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                out.push(Tok::RParen);
                i += 1;
            }
            'p' if chars.get(i + 1) == Some(&'i') => {
                out.push(Tok::Pi);
                i += 2;
            }
            c if c.is_ascii_digit() || c == '.' => {
                let start = i;
                while i < chars.len()
                    && (chars[i].is_ascii_digit()
                        || chars[i] == '.'
                        || chars[i] == 'e'
                        || chars[i] == 'E'
                        || (i > start
                            && (chars[i] == '+' || chars[i] == '-')
                            && matches!(chars[i - 1], 'e' | 'E')))
                {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                let v: f64 = text.parse().map_err(|_| format!("bad number '{text}'"))?;
                out.push(Tok::Num(v));
            }
            other => return Err(format!("unexpected character '{other}'")),
        }
    }
    Ok(out)
}

fn parse_sum(tokens: &[Tok], pos: &mut usize) -> Result<f64, String> {
    let mut acc = parse_product(tokens, pos)?;
    while let Some(tok) = tokens.get(*pos) {
        match tok {
            Tok::Plus => {
                *pos += 1;
                acc += parse_product(tokens, pos)?;
            }
            Tok::Minus => {
                *pos += 1;
                acc -= parse_product(tokens, pos)?;
            }
            _ => break,
        }
    }
    Ok(acc)
}

fn parse_product(tokens: &[Tok], pos: &mut usize) -> Result<f64, String> {
    let mut acc = parse_atom(tokens, pos)?;
    while let Some(tok) = tokens.get(*pos) {
        match tok {
            Tok::Star => {
                *pos += 1;
                acc *= parse_atom(tokens, pos)?;
            }
            Tok::Slash => {
                *pos += 1;
                acc /= parse_atom(tokens, pos)?;
            }
            _ => break,
        }
    }
    Ok(acc)
}

fn parse_atom(tokens: &[Tok], pos: &mut usize) -> Result<f64, String> {
    match tokens.get(*pos) {
        Some(Tok::Num(v)) => {
            *pos += 1;
            Ok(*v)
        }
        Some(Tok::Pi) => {
            *pos += 1;
            Ok(std::f64::consts::PI)
        }
        Some(Tok::Minus) => {
            *pos += 1;
            Ok(-parse_atom(tokens, pos)?)
        }
        Some(Tok::Plus) => {
            *pos += 1;
            parse_atom(tokens, pos)
        }
        Some(Tok::LParen) => {
            *pos += 1;
            let v = parse_sum(tokens, pos)?;
            if tokens.get(*pos) != Some(&Tok::RParen) {
                return Err("missing closing parenthesis".to_string());
            }
            *pos += 1;
            Ok(v)
        }
        other => Err(format!("unexpected token {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn sample() -> QuantumCircuit {
        let mut c = QuantumCircuit::new(3, 3);
        c.h(0)
            .unwrap()
            .cx(0, 1)
            .unwrap()
            .rx(0.25, 2)
            .unwrap()
            .u3(0.1, 0.2, 0.3, 2)
            .unwrap()
            .cp(1.5, 0, 2)
            .unwrap()
            .barrier([0usize, 1, 2])
            .unwrap()
            .measure(0, 0)
            .unwrap()
            .measure(1, 1)
            .unwrap();
        c
    }

    #[test]
    fn export_contains_expected_statements() {
        let src = to_qasm(&sample());
        assert!(src.starts_with("OPENQASM 2.0;"));
        assert!(src.contains("qreg q[3];"));
        assert!(src.contains("creg c[3];"));
        assert!(src.contains("h q[0];"));
        assert!(src.contains("cx q[0],q[1];"));
        assert!(src.contains("measure q[0] -> c[0];"));
        assert!(src.contains("barrier q[0],q[1],q[2];"));
    }

    #[test]
    fn round_trip_preserves_instruction_stream() {
        let original = sample();
        let parsed = from_qasm(&to_qasm(&original)).unwrap();
        assert_eq!(parsed.num_qubits(), original.num_qubits());
        assert_eq!(parsed.num_clbits(), original.num_clbits());
        assert_eq!(parsed.len(), original.len());
        for (a, b) in original.instructions().iter().zip(parsed.instructions()) {
            match (a.as_gate(), b.as_gate()) {
                (Some(ga), Some(gb)) => {
                    assert_eq!(ga.name(), gb.name());
                    for (pa, pb) in ga.params().iter().zip(gb.params()) {
                        assert!((pa - pb).abs() < 1e-12);
                    }
                }
                _ => assert_eq!(a.kind().name(), b.kind().name()),
            }
            assert_eq!(a.qubits(), b.qubits());
            assert_eq!(a.clbits(), b.clbits());
        }
    }

    #[test]
    fn conditions_round_trip_via_per_bit_registers() {
        let mut c = QuantumCircuit::new(2, 2);
        c.measure(0, 1).unwrap();
        c.gate_if(Gate::X, [1], 1, true).unwrap();
        let src = to_qasm(&c);
        assert!(src.contains("creg c1[1];"));
        assert!(src.contains("if(c1==1) x q[1];"));
        let parsed = from_qasm(&src).unwrap();
        let cond = parsed.instructions()[1].condition().unwrap();
        assert_eq!(cond.clbit.index(), 1);
        assert!(cond.value);
    }

    #[test]
    fn post_select_round_trips_through_pragma() {
        let mut c = QuantumCircuit::new(1, 0);
        c.h(0).unwrap().post_select(0, true).unwrap();
        let src = to_qasm(&c);
        assert!(src.contains("// pragma qassert post_select q[0] 1"));
        let parsed = from_qasm(&src).unwrap();
        assert_eq!(
            parsed.instructions()[1].kind(),
            &OpKind::PostSelect { outcome: true }
        );
    }

    #[test]
    fn missing_header_is_rejected() {
        assert_eq!(
            from_qasm("qreg q[1];\nh q[0];"),
            Err(QasmError::MissingHeader)
        );
    }

    #[test]
    fn truncated_header_is_rejected_not_panicked() {
        // A header cut mid-keyword is not a header; the file's first
        // statement becomes an unknown gate application and the parse
        // must fail typed (header missing is detected first).
        assert_eq!(from_qasm("OPENQ"), Err(QasmError::MissingHeader));
        assert_eq!(from_qasm(""), Err(QasmError::MissingHeader));
        // Header truncated after the version number still identifies
        // itself (the exporter always writes the semicolon, but hand-cut
        // files arrive over the wire).
        assert!(from_qasm("OPENQASM 2.0\nqreg q[1];\nh q[0];").is_ok());
    }

    #[test]
    fn truncated_declaration_reports_span() {
        // The qreg statement is cut before its closing bracket.
        let src = "OPENQASM 2.0;\nqreg q[";
        match from_qasm(src) {
            Err(QasmError::Malformed { span, reason }) => {
                assert_eq!(span, Span::new(2, 6));
                assert!(reason.contains("missing ']'"), "reason: {reason}");
            }
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn unknown_gate_is_reported_with_line_and_col() {
        let src = "OPENQASM 2.0;\nqreg q[1];\nfrobnicate q[0];";
        match from_qasm(src) {
            Err(QasmError::UnknownGate { span, name }) => {
                assert_eq!(span, Span::new(3, 1));
                assert_eq!(name, "frobnicate");
            }
            other => panic!("expected UnknownGate, got {other:?}"),
        }
        // Column points at the gate name even behind indentation and a
        // condition prefix.
        let src = "OPENQASM 2.0;\nqreg q[1];\ncreg c0[1];\n   if(c0==1) frob q[0];";
        match from_qasm(src) {
            Err(QasmError::UnknownGate { span, name }) => {
                assert_eq!(span, Span::new(4, 14));
                assert_eq!(name, "frob");
            }
            other => panic!("expected UnknownGate, got {other:?}"),
        }
    }

    #[test]
    fn unknown_register_is_reported_with_span() {
        let src = "OPENQASM 2.0;\nqreg q[1];\nh r[0];";
        match from_qasm(src) {
            Err(QasmError::UnknownRegister { span, name }) => {
                assert_eq!(span, Span::new(3, 3));
                assert_eq!(name, "r");
            }
            other => panic!("expected UnknownRegister, got {other:?}"),
        }
    }

    #[test]
    fn index_out_of_range_is_reported_with_span() {
        let src = "OPENQASM 2.0;\nqreg q[1];\nh q[3];";
        match from_qasm(src) {
            Err(QasmError::Malformed { span, reason }) => {
                assert_eq!(span, Span::new(3, 3));
                assert!(reason.contains("out of range"), "reason: {reason}");
            }
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn non_integer_index_reports_the_index_span() {
        let src = "OPENQASM 2.0;\nqreg q[2];\ncx q[0],q[abc];";
        match from_qasm(src) {
            Err(QasmError::Malformed { span, reason }) => {
                // Column of `abc` inside the second operand.
                assert_eq!(span, Span::new(3, 11));
                assert!(reason.contains("not an integer"), "reason: {reason}");
            }
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn reversed_brackets_do_not_panic() {
        // `]` before `[` used to slice out of order and panic.
        for stmt in ["h q]0[;", "h q][;", "measure q]0[ -> c[0];"] {
            let src = format!("OPENQASM 2.0;\nqreg q[1];\ncreg c[1];\n{stmt}");
            assert!(
                matches!(from_qasm(&src), Err(QasmError::Malformed { .. })),
                "statement {stmt:?} must fail typed"
            );
        }
        // Same for `)` before `(` in a parameter list.
        let src = "OPENQASM 2.0;\nqreg q[1];\nrx)0.5( q[0];";
        assert!(matches!(from_qasm(src), Err(QasmError::Malformed { .. })));
    }

    #[test]
    fn error_span_accessor_exposes_location() {
        let src = "OPENQASM 2.0;\nqreg q[1];\nfrobnicate q[0];";
        let err = from_qasm(src).unwrap_err();
        assert_eq!(err.span(), Some(Span::new(3, 1)));
        assert_eq!(from_qasm("").unwrap_err().span(), None);
    }

    #[test]
    fn second_statement_on_a_line_gets_its_own_column() {
        let src = "OPENQASM 2.0;\nqreg q[2];\nh q[0]; zz q[1];";
        match from_qasm(src) {
            Err(QasmError::UnknownGate { span, name }) => {
                assert_eq!(span, Span::new(3, 9));
                assert_eq!(name, "zz");
            }
            other => panic!("expected UnknownGate, got {other:?}"),
        }
    }

    #[test]
    fn malformed_pragma_reports_pragma_span() {
        let src = "OPENQASM 2.0;\nqreg q[1];\n// pragma qassert bogus q[0] 1 2";
        match from_qasm(src) {
            Err(QasmError::Malformed { span, reason }) => {
                assert_eq!(span.line, 3);
                assert!(reason.contains("unrecognized pragma"), "reason: {reason}");
            }
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn pi_expressions_evaluate() {
        assert!((parse_param_expr("pi").unwrap() - PI).abs() < 1e-15);
        assert!((parse_param_expr("pi/2").unwrap() - PI / 2.0).abs() < 1e-15);
        assert!((parse_param_expr("-pi/4").unwrap() + PI / 4.0).abs() < 1e-15);
        assert!((parse_param_expr("3*pi/2").unwrap() - 3.0 * PI / 2.0).abs() < 1e-15);
        assert!((parse_param_expr("0.5").unwrap() - 0.5).abs() < 1e-15);
        assert!((parse_param_expr("1e-3").unwrap() - 1e-3).abs() < 1e-18);
        assert!((parse_param_expr("(pi+1)/2").unwrap() - (PI + 1.0) / 2.0).abs() < 1e-15);
        assert!((parse_param_expr("1-2").unwrap() + 1.0).abs() < 1e-15);
    }

    #[test]
    fn bad_expressions_are_rejected() {
        assert!(parse_param_expr("pi pi").is_err());
        assert!(parse_param_expr("(1").is_err());
        assert!(parse_param_expr("&").is_err());
        assert!(parse_param_expr("").is_err());
    }

    #[test]
    fn gates_with_pi_params_parse() {
        let src = "OPENQASM 2.0;\nqreg q[1];\nrx(pi/2) q[0];\nu3(pi,0,pi) q[0];";
        let c = from_qasm(src).unwrap();
        assert_eq!(c.len(), 2);
        match c.instructions()[0].as_gate() {
            Some(Gate::Rx(t)) => assert!((t - PI / 2.0).abs() < 1e-15),
            other => panic!("expected rx, got {other:?}"),
        }
    }

    #[test]
    fn multiple_registers_map_to_flat_indices() {
        let src =
            "OPENQASM 2.0;\nqreg a[1];\nqreg b[2];\ncreg m[2];\nh b[1];\nmeasure b[1] -> m[0];";
        let c = from_qasm(src).unwrap();
        // a occupies index 0, b occupies 1..3, so b[1] is flat qubit 2.
        assert_eq!(c.instructions()[0].qubits()[0].index(), 2);
    }

    #[test]
    fn u_and_p_aliases_are_accepted() {
        let src = "OPENQASM 2.0;\nqreg q[1];\np(0.5) q[0];\nu(0.1,0.2,0.3) q[0];\nu1(0.4) q[0];";
        let c = from_qasm(src).unwrap();
        assert_eq!(c.len(), 3);
    }
}
