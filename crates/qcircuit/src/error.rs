//! Error types for circuit construction and manipulation.

use std::fmt;

/// Error produced when building or transforming a circuit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CircuitError {
    /// A qubit operand references a wire the circuit does not have.
    QubitOutOfRange {
        /// The offending qubit index.
        qubit: usize,
        /// The circuit's qubit count.
        num_qubits: usize,
    },
    /// A classical operand references a bit the circuit does not have.
    ClbitOutOfRange {
        /// The offending classical index.
        clbit: usize,
        /// The circuit's classical bit count.
        num_clbits: usize,
    },
    /// A multi-qubit instruction lists the same qubit twice.
    DuplicateQubit {
        /// The repeated qubit index.
        qubit: usize,
    },
    /// A gate received the wrong number of qubit operands.
    ArityMismatch {
        /// Gate name.
        gate: &'static str,
        /// Number of qubits the gate acts on.
        expected: usize,
        /// Number of operands supplied.
        got: usize,
    },
    /// A classical condition was attached to an operation that cannot be
    /// conditioned (measure, barrier, post-select).
    UnsupportedCondition {
        /// The operation's mnemonic.
        op: &'static str,
    },
    /// The circuit cannot be inverted because it contains a non-unitary
    /// operation.
    NotInvertible {
        /// The first offending operation's mnemonic.
        op: &'static str,
    },
    /// A composition mapping has the wrong size for the circuit being
    /// inlined.
    MappingSizeMismatch {
        /// What the mapping addresses ("qubit" or "clbit").
        wire_kind: &'static str,
        /// Wires the inlined circuit declares.
        expected: usize,
        /// Mapping entries supplied.
        got: usize,
    },
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::QubitOutOfRange { qubit, num_qubits } => {
                write!(
                    f,
                    "qubit q{qubit} out of range for a circuit with {num_qubits} qubits"
                )
            }
            CircuitError::ClbitOutOfRange { clbit, num_clbits } => {
                write!(
                    f,
                    "clbit c{clbit} out of range for a circuit with {num_clbits} clbits"
                )
            }
            CircuitError::DuplicateQubit { qubit } => {
                write!(
                    f,
                    "qubit q{qubit} appears more than once in one instruction"
                )
            }
            CircuitError::ArityMismatch {
                gate,
                expected,
                got,
            } => {
                write!(
                    f,
                    "gate '{gate}' acts on {expected} qubit(s) but received {got}"
                )
            }
            CircuitError::UnsupportedCondition { op } => {
                write!(f, "operation '{op}' cannot carry a classical condition")
            }
            CircuitError::NotInvertible { op } => {
                write!(
                    f,
                    "circuit contains non-unitary operation '{op}' and cannot be inverted"
                )
            }
            CircuitError::MappingSizeMismatch {
                wire_kind,
                expected,
                got,
            } => {
                write!(
                    f,
                    "{wire_kind} mapping has {got} entries but the circuit declares {expected}"
                )
            }
        }
    }
}

impl std::error::Error for CircuitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_specific() {
        let e = CircuitError::QubitOutOfRange {
            qubit: 7,
            num_qubits: 3,
        };
        assert_eq!(
            e.to_string(),
            "qubit q7 out of range for a circuit with 3 qubits"
        );
        let e = CircuitError::ArityMismatch {
            gate: "cx",
            expected: 2,
            got: 3,
        };
        assert!(e.to_string().contains("'cx'"));
    }

    #[test]
    fn errors_are_std_errors() {
        fn assert_error<E: std::error::Error>() {}
        assert_error::<CircuitError>();
    }
}
