//! Typed wire identifiers.
//!
//! Qubit and classical-bit indices are distinct newtypes so that a qubit
//! index can never be passed where a classical index is expected (and vice
//! versa) — a real bug class in measurement-heavy assertion circuits.

use std::fmt;

/// Identifier of a qubit (quantum wire) within a circuit.
///
/// Construct from a plain index with `QubitId::from(3)` or `3.into()`.
///
/// # Example
///
/// ```
/// use qcircuit::QubitId;
/// let q = QubitId::new(2);
/// assert_eq!(q.index(), 2);
/// assert_eq!(q.to_string(), "q2");
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QubitId(u32);

impl QubitId {
    /// Creates a qubit identifier from its index.
    #[inline]
    pub const fn new(index: u32) -> Self {
        QubitId(index)
    }

    /// The raw index of this qubit.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for QubitId {
    #[inline]
    fn from(index: u32) -> Self {
        QubitId(index)
    }
}

impl From<usize> for QubitId {
    /// # Panics
    ///
    /// Panics if `index` exceeds `u32::MAX` (circuits that large are not
    /// representable).
    #[inline]
    fn from(index: usize) -> Self {
        QubitId(u32::try_from(index).expect("qubit index exceeds u32::MAX"))
    }
}

impl From<i32> for QubitId {
    /// Convenience for integer literals in builder calls (`circuit.h(0)`).
    ///
    /// # Panics
    ///
    /// Panics if `index` is negative.
    #[inline]
    fn from(index: i32) -> Self {
        QubitId(u32::try_from(index).expect("qubit index must be non-negative"))
    }
}

impl fmt::Display for QubitId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// Identifier of a classical bit within a circuit.
///
/// # Example
///
/// ```
/// use qcircuit::ClbitId;
/// let c = ClbitId::new(0);
/// assert_eq!(c.to_string(), "c0");
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClbitId(u32);

impl ClbitId {
    /// Creates a classical-bit identifier from its index.
    #[inline]
    pub const fn new(index: u32) -> Self {
        ClbitId(index)
    }

    /// The raw index of this classical bit.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for ClbitId {
    #[inline]
    fn from(index: u32) -> Self {
        ClbitId(index)
    }
}

impl From<usize> for ClbitId {
    /// # Panics
    ///
    /// Panics if `index` exceeds `u32::MAX`.
    #[inline]
    fn from(index: usize) -> Self {
        ClbitId(u32::try_from(index).expect("clbit index exceeds u32::MAX"))
    }
}

impl From<i32> for ClbitId {
    /// Convenience for integer literals in builder calls
    /// (`circuit.measure(0, 0)`).
    ///
    /// # Panics
    ///
    /// Panics if `index` is negative.
    #[inline]
    fn from(index: i32) -> Self {
        ClbitId(u32::try_from(index).expect("clbit index must be non-negative"))
    }
}

impl fmt::Display for ClbitId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qubit_id_round_trips_index() {
        assert_eq!(QubitId::new(5).index(), 5);
        assert_eq!(QubitId::from(7u32).index(), 7);
        assert_eq!(QubitId::from(9usize).index(), 9);
    }

    #[test]
    fn clbit_id_round_trips_index() {
        assert_eq!(ClbitId::new(5).index(), 5);
        assert_eq!(ClbitId::from(3u32).index(), 3);
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(QubitId::new(1) < QubitId::new(2));
        assert!(ClbitId::new(0) < ClbitId::new(9));
    }

    #[test]
    fn display_uses_wire_prefixes() {
        assert_eq!(QubitId::new(11).to_string(), "q11");
        assert_eq!(ClbitId::new(4).to_string(), "c4");
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_usize_panics() {
        let _ = QubitId::from(usize::MAX);
    }
}
